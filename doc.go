// Package pvfscache is a from-scratch reproduction of "Kernel-Level
// Caching for Optimizing I/O by Exploiting Inter-Application Data Sharing"
// (Vilayannur, Kandemir, Sivasubramaniam; IEEE CLUSTER 2002).
//
// The repository contains two complete systems that share one
// buffer-manager implementation:
//
//   - a live, runnable PVFS-like parallel file system (metadata server,
//     I/O daemons, client library) with the paper's per-node cache module
//     interposed between the client library and the network
//     (internal/mgr, internal/iod, internal/pvfs, internal/cachemod,
//     assembled by internal/cluster); and
//
//   - a deterministic discrete-event model of the paper's 6-node testbed
//     (internal/sim, internal/simcluster) that regenerates every figure of
//     the evaluation via internal/harness and cmd/experiments.
//
// The live data path is built for throughput: every request/response
// rides one multiplexed RPC core (internal/rpc) with tagged out-of-order
// responses; misses leave the per-node cache as vectored multi-extent
// reads (wire.ReadBlocks); and a sequential-readahead prefetcher keeps a
// window of upcoming blocks in flight ahead of ascending scans.
//
// See README.md for a tour and DESIGN.md for the system inventory, the
// read-path architecture, and the experiment index. The benchmarks in
// bench_test.go regenerate each figure and measure the live data path;
// run them with
//
//	go test -bench=. -benchmem
package pvfscache
