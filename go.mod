module pvfscache

go 1.24
