package pvfscache_test

// One benchmark per table/figure of the paper (see DESIGN.md §9 for the
// experiment index):
//
//	BenchmarkFigure4ReadOverhead / BenchmarkFigure4WriteOverhead  — Fig 4(a,b)
//	BenchmarkFigure5Read / BenchmarkFigure5Write                  — Fig 5(a,b)
//	BenchmarkFigure6 / BenchmarkFigure7 / BenchmarkFigure8        — Figs 6-8
//	BenchmarkBlockLookupCopy                                      — §4.2 "<400 µs per 4 KB block"
//	BenchmarkAblation*                                            — DESIGN.md A1-A3
//	BenchmarkLive*                                                — live-system data path
//
// The figure benchmarks drive the discrete-event model; their interesting
// output is the regenerated series (printed once via b.Logf — run with
// -v, or run cmd/experiments) and the reported virtual-time metrics. The
// live benchmarks measure the real implementation wall-clock.

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pvfscache/internal/blockio"
	"pvfscache/internal/cachemod/buffer"
	"pvfscache/internal/cluster"
	"pvfscache/internal/harness"
	"pvfscache/internal/pvfs"
)

// benchOpts keeps figure regeneration fast enough for benchmarking while
// preserving steady-state behaviour.
func benchOpts() harness.Options {
	return harness.Options{TotalBytes: 4 << 20, IODs: 4, Seed: 1}
}

var logOnce sync.Map

func logFigures(b *testing.B, key string, figs []harness.Figure) {
	b.Helper()
	if _, done := logOnce.LoadOrStore(key, true); !done {
		b.Logf("\n%s", harness.RenderAll(figs))
	}
}

// reportSeries exports a reference point (largest request size of the
// first and last series) as benchmark metrics, in virtual milliseconds.
func reportSeries(b *testing.B, figs []harness.Figure) {
	if len(figs) == 0 {
		return
	}
	fig := figs[0]
	if len(fig.Series) == 0 {
		return
	}
	first := fig.Series[0]
	last := fig.Series[len(fig.Series)-1]
	if len(first.Points) > 0 {
		pt := first.Points[len(first.Points)-1]
		b.ReportMetric(float64(pt.Value)/1e6, "vms/"+metricName(first.Label))
	}
	if len(last.Points) > 0 && len(fig.Series) > 1 {
		pt := last.Points[len(last.Points)-1]
		b.ReportMetric(float64(pt.Value)/1e6, "vms/"+metricName(last.Label))
	}
}

func metricName(label string) string {
	out := make([]rune, 0, len(label))
	for _, r := range label {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			out = append(out, r)
		}
	}
	if len(out) > 16 {
		out = out[:16]
	}
	return string(out)
}

func benchFigure(b *testing.B, key string, gen func(harness.Options) ([]harness.Figure, error)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		figs, err := gen(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			logFigures(b, key, figs)
			reportSeries(b, figs)
		}
	}
}

// BenchmarkFigure4ReadOverhead regenerates Figure 4(a): caching overhead
// for reads, single instance, p=4, l=0.
func BenchmarkFigure4ReadOverhead(b *testing.B) {
	benchFigure(b, "fig4r", func(o harness.Options) ([]harness.Figure, error) {
		figs, err := harness.Figure4(o)
		if err != nil {
			return nil, err
		}
		return figs[:1], nil
	})
}

// BenchmarkFigure4WriteOverhead regenerates Figure 4(b): write-behind
// versus direct writes, single instance, p=4, l=0.
func BenchmarkFigure4WriteOverhead(b *testing.B) {
	benchFigure(b, "fig4w", func(o harness.Options) ([]harness.Figure, error) {
		figs, err := harness.Figure4(o)
		if err != nil {
			return nil, err
		}
		return figs[1:], nil
	})
}

// BenchmarkFigure5Read regenerates Figure 5(a): reads at l=1.
func BenchmarkFigure5Read(b *testing.B) {
	benchFigure(b, "fig5r", func(o harness.Options) ([]harness.Figure, error) {
		figs, err := harness.Figure5(o)
		if err != nil {
			return nil, err
		}
		return figs[:1], nil
	})
}

// BenchmarkFigure5Write regenerates Figure 5(b): writes at l=1.
func BenchmarkFigure5Write(b *testing.B) {
	benchFigure(b, "fig5w", func(o harness.Options) ([]harness.Figure, error) {
		figs, err := harness.Figure5(o)
		if err != nil {
			return nil, err
		}
		return figs[1:], nil
	})
}

// BenchmarkFigure6 regenerates Figure 6 (two instances, p=4, all three
// locality panels, four sharing degrees plus baseline).
func BenchmarkFigure6(b *testing.B) { benchFigure(b, "fig6", harness.Figure6) }

// BenchmarkFigure7 regenerates Figure 7 (two instances, p=2).
func BenchmarkFigure7(b *testing.B) { benchFigure(b, "fig7", harness.Figure7) }

// BenchmarkFigure8 regenerates Figure 8 (caching versus parallelism).
func BenchmarkFigure8(b *testing.B) { benchFigure(b, "fig8", harness.Figure8) }

// BenchmarkAblationEviction regenerates ablation A1 (clock vs exact LRU).
func BenchmarkAblationEviction(b *testing.B) {
	benchFigure(b, "abl1", func(o harness.Options) ([]harness.Figure, error) {
		fig, err := harness.AblationEviction(o)
		return []harness.Figure{fig}, err
	})
}

// BenchmarkAblationFlushPeriod regenerates ablation A2 (flusher period).
func BenchmarkAblationFlushPeriod(b *testing.B) {
	benchFigure(b, "abl2", func(o harness.Options) ([]harness.Figure, error) {
		fig, err := harness.AblationFlushPeriod(o)
		return []harness.Figure{fig}, err
	})
}

// BenchmarkAblationWatermarks regenerates ablation A3 (harvester
// watermarks).
func BenchmarkAblationWatermarks(b *testing.B) {
	benchFigure(b, "abl3", func(o harness.Options) ([]harness.Figure, error) {
		fig, err := harness.AblationWatermarks(o)
		return []harness.Figure{fig}, err
	})
}

// BenchmarkBlockLookupCopy measures the real buffer manager's hit path —
// lookup plus copying one 4 KB block — the cost the paper bounds by 400 µs
// on its 800 MHz Pentium-III (experiment T0).
func BenchmarkBlockLookupCopy(b *testing.B) {
	// Shards: 1 — this is the paper's serial lookup+copy cost on one
	// manager (and the working set fills capacity exactly, which only a
	// single shard can hold without hash-skew evictions); the sharded
	// scaling pairs live in internal/cachemod/buffer and the LiveReadCachedHitParallel pair.
	m := buffer.New(buffer.Config{BlockSize: 4096, Capacity: 300, Shards: 1})
	data := make([]byte, 4096)
	for i := 0; i < 300; i++ {
		m.InsertClean(blockio.BlockKey{File: 1, Index: int64(i)}, 0, data)
	}
	dst := make([]byte, 4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		key := blockio.BlockKey{File: 1, Index: int64(i % 300)}
		if !m.ReadSpan(key, 0, dst) {
			b.Fatal("unexpected miss")
		}
	}
	b.SetBytes(4096)
}

// liveCluster boots an in-memory live cluster with a seeded file for the
// data-path benchmarks.
func liveCluster(b *testing.B, caching bool) (*cluster.Cluster, *pvfs.File) {
	return liveClusterCfg(b, cluster.Config{
		IODs:        4,
		ClientNodes: 1,
		Caching:     caching,
		FlushPeriod: 50 * time.Millisecond,
	})
}

func liveClusterCfg(b *testing.B, cfg cluster.Config) (*cluster.Cluster, *pvfs.File) {
	b.Helper()
	c, err := cluster.Start(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { c.Close() })
	p, err := c.NewProcess(0)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { p.Close() })
	f, err := p.Create(fmt.Sprintf("bench-%v-%v.dat", cfg.Caching, cfg.DisableZeroCopy), pvfs.StripeSpec{})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := f.WriteAt(make([]byte, 1<<20), 0); err != nil {
		b.Fatal(err)
	}
	return c, f
}

// BenchmarkLiveReadCachedHit measures a 64 KB read served by the live
// cache module from a warm cache.
func BenchmarkLiveReadCachedHit(b *testing.B) {
	_, f := liveCluster(b, true)
	buf := make([]byte, 64<<10)
	if _, err := f.ReadAt(buf, 0); err != nil { // warm the cache
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.ReadAt(buf, 0); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(64 << 10)
}

// BenchmarkLiveReadCachedHitCopying is the zero-copy ablation baseline:
// the same warm 64 KB read with Config.DisableZeroCopy, so the cache
// module assembles a fresh response buffer per request and libpvfs copies
// it into the caller's memory — the pre-zero-copy data path. The pair
// with BenchmarkLiveReadCachedHit quantifies the allocation and copy cost
// the leased-buffer path removes.
func BenchmarkLiveReadCachedHitCopying(b *testing.B) {
	_, f := liveClusterCfg(b, cluster.Config{
		IODs:            4,
		ClientNodes:     1,
		Caching:         true,
		FlushPeriod:     50 * time.Millisecond,
		DisableZeroCopy: true,
	})
	buf := make([]byte, 64<<10)
	if _, err := f.ReadAt(buf, 0); err != nil { // warm the cache
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.ReadAt(buf, 0); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(64 << 10)
}

// benchLiveCachedHitParallel measures 8 application processes on one node
// reading disjoint warm 64 KB regions concurrently — every byte is served
// from the shared cache, so the node's throughput is bounded by the buffer
// manager's locking. shards selects the stripe count (0 = default
// striping, 1 = the single-global-mutex ablation the seed used).
func benchLiveCachedHitParallel(b *testing.B, shards int) {
	c, err := cluster.Start(cluster.Config{
		IODs:        4,
		ClientNodes: 1,
		Caching:     true,
		CacheBlocks: 300,
		CacheShards: shards,
		FlushPeriod: 50 * time.Millisecond,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { c.Close() })
	const workers = 8
	const region = 64 << 10 // per-worker warm region
	seed, err := c.NewProcess(0)
	if err != nil {
		b.Fatal(err)
	}
	f, err := seed.Create("parhit.dat", pvfs.StripeSpec{})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := f.WriteAt(make([]byte, workers*region), 0); err != nil {
		b.Fatal(err)
	}
	if err := c.Module(0).FlushAll(); err != nil {
		b.Fatal(err)
	}
	files := make([]*pvfs.File, workers)
	for w := 0; w < workers; w++ {
		p, err := c.NewProcess(0)
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { p.Close() })
		if files[w], err = p.Open("parhit.dat"); err != nil {
			b.Fatal(err)
		}
		// Warm this worker's region through its own transport.
		if _, err := files[w].ReadAt(make([]byte, region), int64(w)*region); err != nil {
			b.Fatal(err)
		}
	}
	var next atomic.Int64
	b.ResetTimer()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int, f *pvfs.File) {
			defer wg.Done()
			buf := make([]byte, region)
			for next.Add(1) <= int64(b.N) {
				if _, err := f.ReadAt(buf, int64(w)*region); err != nil {
					b.Error(err)
					return
				}
			}
		}(w, files[w])
	}
	wg.Wait()
	b.SetBytes(region)
}

// BenchmarkLiveReadCachedHitParallel is the sharded (default-striping)
// side of the node-level cache-hit scaling pair.
func BenchmarkLiveReadCachedHitParallel(b *testing.B) { benchLiveCachedHitParallel(b, 0) }

// BenchmarkLiveReadCachedHitParallelSingleShard pins the buffer manager to
// one lock stripe — the seed's single global mutex — as the ablation
// baseline for the pair.
func BenchmarkLiveReadCachedHitParallelSingleShard(b *testing.B) {
	benchLiveCachedHitParallel(b, 1)
}

// BenchmarkLiveReadDirect measures the same 64 KB read through original
// (uncached) PVFS over the in-memory transport.
func BenchmarkLiveReadDirect(b *testing.B) {
	_, f := liveCluster(b, false)
	buf := make([]byte, 64<<10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.ReadAt(buf, 0); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(64 << 10)
}

// BenchmarkLiveWriteBehind measures a 64 KB write absorbed by the cache
// module (acknowledged from memory, flushed in the background).
func BenchmarkLiveWriteBehind(b *testing.B) {
	_, f := liveCluster(b, true)
	buf := make([]byte, 64<<10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.WriteAt(buf, int64(i%8)*(64<<10)); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(64 << 10)
}

// benchStridedMisses measures a miss-heavy strided read against a cold
// cache: an 8-block strided read per iod. The file is striped in
// single-block strips over four iods, so a 128 KB read decomposes into 8
// non-consecutive single-block runs on each iod — the striding the
// paper's data-parallel workloads induce. The vectored path sends each
// iod ONE ReadBlocks carrying its 8 runs as extents; the per-block
// (legacy) path sends each iod 8 concurrent Reads. The working set (4 MB)
// is 16x the cache, so every window is cold by the time the scan revisits
// it. Readahead is off so the numbers isolate the miss engine.
func benchStridedMisses(b *testing.B, disableVector bool) {
	c, err := cluster.Start(cluster.Config{
		IODs:            4,
		ClientNodes:     1,
		Caching:         true,
		CacheBlocks:     64, // 256 KB: far below the 4 MB working set
		FlushPeriod:     50 * time.Millisecond,
		ReadaheadWindow: -1,
		DisableVector:   disableVector,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { c.Close() })
	p, err := c.NewProcess(0)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { p.Close() })
	f, err := p.Create("strided.dat", pvfs.StripeSpec{PCount: 4, SSize: 4096})
	if err != nil {
		b.Fatal(err)
	}
	const fileBytes = 4 << 20
	data := make([]byte, fileBytes)
	for i := range data {
		data[i] = byte(i)
	}
	if _, err := f.WriteAt(data, 0); err != nil {
		b.Fatal(err)
	}
	if err := c.Module(0).FlushAll(); err != nil {
		b.Fatal(err)
	}

	buf := make([]byte, 128<<10) // 32 blocks: 8 strided blocks on each of the 4 iods
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		off := int64(i) * int64(len(buf)) % fileBytes
		if _, err := f.ReadAt(buf, off); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(len(buf)))
}

// BenchmarkLiveReadMissStrided is the vectored miss engine on the strided
// cold-cache pattern (one ReadBlocks per iod, 8 extents each).
func BenchmarkLiveReadMissStrided(b *testing.B) { benchStridedMisses(b, false) }

// BenchmarkLiveReadMissStridedPerBlock is the same pattern on the legacy
// per-run path (8 Reads per iod per request) — the ablation baseline.
func BenchmarkLiveReadMissStridedPerBlock(b *testing.B) { benchStridedMisses(b, true) }

// benchScanSink keeps the scan's checksum pass from being optimized away.
var benchScanSink byte

// benchSequentialScan measures a sequential 4 KB-request scan of a 4 MB
// file through a 1 MB cache, with and without readahead. Each request's
// data is checksummed (the per-request compute of a real scanning
// application). Without readahead every 4 KB request pays its own fetch
// round trip; with readahead the prefetcher batches the window into large
// vectored fetches issued ahead of the scan, so most requests land on
// resident blocks — the canonical small-read-amortization win. The
// prefetchhits/op and fullhits/op metrics report the conversion rate.
func benchSequentialScan(b *testing.B, window int) {
	c, err := cluster.Start(cluster.Config{
		IODs:            4,
		ClientNodes:     1,
		Caching:         true,
		CacheBlocks:     256, // 1 MB: the scan cannot fit, readahead must keep up
		FlushPeriod:     50 * time.Millisecond,
		ReadaheadWindow: window,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { c.Close() })
	p, err := c.NewProcess(0)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { p.Close() })
	f, err := p.Create("scan.dat", pvfs.StripeSpec{})
	if err != nil {
		b.Fatal(err)
	}
	const fileBytes = 4 << 20
	if _, err := f.WriteAt(make([]byte, fileBytes), 0); err != nil {
		b.Fatal(err)
	}
	if err := c.Module(0).FlushAll(); err != nil {
		b.Fatal(err)
	}
	buf := make([]byte, 4<<10)
	before := c.Reg.Snapshot()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		off := int64(i) * int64(len(buf)) % fileBytes
		if _, err := f.ReadAt(buf, off); err != nil {
			b.Fatal(err)
		}
		// Process the data (checksum): identical in both variants.
		var sum byte
		for _, x := range buf {
			sum += x
		}
		benchScanSink = sum
	}
	b.StopTimer()
	d := c.Reg.Snapshot().Diff(before)
	b.ReportMetric(float64(d["module.prefetch_hits"])/float64(b.N), "prefetchhits/op")
	b.ReportMetric(float64(d["module.read_full_hits"])/float64(b.N), "fullhits/op")

	b.SetBytes(int64(len(buf)))
}

// BenchmarkLiveReadSequentialReadahead scans with a 32-block window —
// deep enough that a refill covers many 4 KB requests (the default window
// of 8 is tuned for larger requests).
func BenchmarkLiveReadSequentialReadahead(b *testing.B) { benchSequentialScan(b, 32) }

// BenchmarkLiveReadSequentialNoReadahead is the same scan with readahead
// disabled: every request pays its own fetch round trip.
func BenchmarkLiveReadSequentialNoReadahead(b *testing.B) { benchSequentialScan(b, -1) }

// benchScanVsWorkingSet interleaves a streaming scan four times the
// cache's size with round-robin re-reads of a warm 128-block working
// set, then reports what fraction of the working set is still resident
// ("wsresident", 0..1). Under the ghost policy the scan can only churn
// the probation segment, so the working set stays near fully resident
// and its reads stay hits; under the exact-LRU ablation one list serves
// both, and the scan flushes the working set as fast as it is re-read.
func benchScanVsWorkingSet(b *testing.B, pol buffer.Policy) {
	const blockSize = 4096
	const wsBlocks = 128    // 512 KB working set: fits the protected segment
	const scanBlocks = 1024 // 4 MB scan: four times the whole cache
	c, err := cluster.Start(cluster.Config{
		IODs:            4,
		ClientNodes:     1,
		Caching:         true,
		CacheBlocks:     256,
		CacheShards:     1, // one stripe: deterministic replacement order
		Policy:          pol,
		ReadaheadWindow: -1, // block-by-block reads isolate admission
		FlushPeriod:     time.Hour,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { c.Close() })
	p, err := c.NewProcess(0)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { p.Close() })
	create := func(name string, blocks int) *pvfs.File {
		f, err := p.Create(name, pvfs.StripeSpec{})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := f.WriteAt(make([]byte, blocks*blockSize), 0); err != nil {
			b.Fatal(err)
		}
		return f
	}
	ws := create("wsbench.dat", wsBlocks)
	scan := create("scanbench.dat", scanBlocks)
	if err := c.Module(0).FlushAll(); err != nil {
		b.Fatal(err)
	}
	buf := make([]byte, blockSize)
	readBlock := func(f *pvfs.File, idx int) {
		if _, err := f.ReadAt(buf, int64(idx)*blockSize); err != nil {
			b.Fatal(err)
		}
	}
	// Warm the working set (the second pass promotes it to protected
	// under the ghost policy), then run one full untimed scan so the
	// residency outcome is established even at b.N == 1.
	for pass := 0; pass < 2; pass++ {
		for i := 0; i < wsBlocks; i++ {
			readBlock(ws, i)
		}
	}
	for i := 0; i < scanBlocks; i++ {
		readBlock(scan, i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for k := 0; k < 4; k++ {
			readBlock(scan, (i*4+k)%scanBlocks)
		}
		readBlock(ws, i%wsBlocks)
	}
	b.StopTimer()
	resident := 0
	for i := 0; i < wsBlocks; i++ {
		if c.Module(0).Buffer().Contains(blockio.BlockKey{File: ws.ID(), Index: int64(i)}, 0, blockSize) {
			resident++
		}
	}
	b.ReportMetric(float64(resident)/wsBlocks, "wsresident")
	b.SetBytes(5 * blockSize)
}

// BenchmarkLiveScanVsWorkingSet runs the scan-vs-working-set storm under
// the scan-resistant ghost policy.
func BenchmarkLiveScanVsWorkingSet(b *testing.B) { benchScanVsWorkingSet(b, buffer.PolicyGhost) }

// BenchmarkLiveScanVsWorkingSetLRU is the single-list ablation: the same
// storm under exact LRU, where the scan displaces the working set.
func BenchmarkLiveScanVsWorkingSetLRU(b *testing.B) { benchScanVsWorkingSet(b, buffer.PolicyLRU) }

// BenchmarkLiveReadMultiClientMisses measures aggregate read throughput of
// eight application processes sharing one node's cache module while their
// working set (4 MB) far exceeds the cache (256 KB), so nearly every read
// goes to the iods. This is the funnel the refactor widens: the seed
// serialized all of a node's traffic to each iod behind one FIFO
// connection, while internal/rpc keeps ≥2 pooled connections per iod with
// tag-demultiplexed, out-of-order responses, letting the processes'
// fetches overlap. Compare against the seed baseline in CHANGES.md.
func BenchmarkLiveReadMultiClientMisses(b *testing.B) {
	c, err := cluster.Start(cluster.Config{
		IODs:        4,
		ClientNodes: 1,
		Caching:     true,
		CacheBlocks: 64, // 256 KB: forces misses against the 4 MB file
		FlushPeriod: 50 * time.Millisecond,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { c.Close() })
	seed, err := c.NewProcess(0)
	if err != nil {
		b.Fatal(err)
	}
	f, err := seed.Create("multiclient.dat", pvfs.StripeSpec{})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := f.WriteAt(make([]byte, 4<<20), 0); err != nil {
		b.Fatal(err)
	}
	if err := c.Module(0).FlushAll(); err != nil {
		b.Fatal(err)
	}

	const workers = 8
	files := make([]*pvfs.File, workers)
	for w := 0; w < workers; w++ {
		p, err := c.NewProcess(0)
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { p.Close() })
		if files[w], err = p.Open("multiclient.dat"); err != nil {
			b.Fatal(err)
		}
	}

	var next atomic.Int64
	b.ResetTimer()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(f *pvfs.File) {
			defer wg.Done()
			buf := make([]byte, 64<<10)
			for {
				i := next.Add(1)
				if i > int64(b.N) {
					return
				}
				// Stride through the 64 distinct 64 KB chunks so the
				// workers' requests interleave across iods.
				off := ((i * 7) % 64) * (64 << 10)
				if _, err := f.ReadAt(buf, off); err != nil {
					b.Error(err)
					return
				}
			}
		}(files[w])
	}
	wg.Wait()
	b.SetBytes(64 << 10)
}

// BenchmarkGlobalCacheRemoteRead measures the global-cache extension
// (experiment X1): node 1 reads data that only node 0 has cached, served
// by peer-gets instead of iod fetches.
func BenchmarkGlobalCacheRemoteRead(b *testing.B) {
	c, err := cluster.Start(cluster.Config{
		IODs:        2,
		ClientNodes: 2,
		Caching:     true,
		GlobalCache: true,
		FlushPeriod: 50 * time.Millisecond,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { c.Close() })
	seed, err := c.NewProcess(0)
	if err != nil {
		b.Fatal(err)
	}
	f, err := seed.Create("gcbench.dat", pvfs.StripeSpec{})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := f.WriteAt(make([]byte, 256<<10), 0); err != nil {
		b.Fatal(err)
	}
	if err := c.Module(0).FlushAll(); err != nil {
		b.Fatal(err)
	}
	seed.Close()
	// Node 0 holds everything; node 1 reads and re-reads with its local
	// cache dropped each round, so every iteration exercises peer-gets.
	p1, err := c.NewProcess(1)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { p1.Close() })
	f1, err := p1.Open("gcbench.dat")
	if err != nil {
		b.Fatal(err)
	}
	buf := make([]byte, 64<<10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Module(1).Buffer().InvalidateFile(f1.ID())
		if _, err := f1.ReadAt(buf, 0); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(64 << 10)
}

// benchLiveWriteStorm measures a write storm through the full live
// stack: fill 2 MB of dirty blocks through the cache module (striped
// over 4 iods), then drain them with FlushAll. Only the drain is timed.
// The pair isolates the pipelined write-behind engine on the real data
// path — over the in-memory transport the win is mostly in wire framing
// and fewer round trips (runs coalesce into contiguous frames); the
// latency-overlap win is measured by internal/cachemod's
// BenchmarkFlushDrain pair, whose flush ports model disk service time.
func benchLiveWriteStorm(b *testing.B, streams, window int) {
	benchLiveWriteStormBackend(b, streams, window, "")
}

func benchLiveWriteStormBackend(b *testing.B, streams, window int, backend string) {
	cfg := cluster.Config{
		IODs:         4,
		ClientNodes:  1,
		Caching:      true,
		CacheBlocks:  1024, // 4 MB: the 2 MB storm fits without pressure
		FlushPeriod:  time.Hour,
		FlushStreams: streams,
		FlushWindow:  window,
		Backend:      backend,
	}
	if backend == "disk" {
		cfg.DataDir = b.TempDir()
	}
	c, err := cluster.Start(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { c.Close() })
	p, err := c.NewProcess(0)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { p.Close() })
	f, err := p.Create("writestorm.dat", pvfs.StripeSpec{})
	if err != nil {
		b.Fatal(err)
	}
	const storm = 2 << 20
	buf := make([]byte, 256<<10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		for off := int64(0); off < storm; off += int64(len(buf)) {
			if _, err := f.WriteAt(buf, off); err != nil {
				b.Fatal(err)
			}
		}
		b.StartTimer()
		if err := c.Module(0).FlushAll(); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(storm)
}

// BenchmarkLiveWriteStormDrain: the pipelined engine (all iod streams in
// parallel, default window).
func BenchmarkLiveWriteStormDrain(b *testing.B) { benchLiveWriteStorm(b, 0, 0) }

// BenchmarkLiveWriteStormDrainSerial is the seed-shape ablation: one
// stream, one blocking frame at a time.
func BenchmarkLiveWriteStormDrainSerial(b *testing.B) { benchLiveWriteStorm(b, 1, 1) }

// BenchmarkLiveWriteStormDrainDisk / SerialDisk: the same storm drained
// into WAL-backed on-disk iods — every flushed byte is journaled and
// pushed to the OS before the ack comes back.
func BenchmarkLiveWriteStormDrainDisk(b *testing.B) {
	benchLiveWriteStormBackend(b, 0, 0, "disk")
}

func BenchmarkLiveWriteStormDrainSerialDisk(b *testing.B) {
	benchLiveWriteStormBackend(b, 1, 1, "disk")
}

// BenchmarkLiveWriteDirect measures the same write through original PVFS.
func BenchmarkLiveWriteDirect(b *testing.B) {
	_, f := liveCluster(b, false)
	buf := make([]byte, 64<<10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.WriteAt(buf, int64(i%8)*(64<<10)); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(64 << 10)
}
