package cachemod

// The module-level half of the concurrency test wall (CI runs it under
// -race): concurrent readers, writers, the module's own flusher and
// harvester threads, readahead claims and coherence invalidations all
// storm one sharded cache module. Afterwards the frame-accounting
// invariants must hold — free + resident == capacity, the buffer
// manager's structural consistency check passes — and, because dirty
// blocks are never evictable, every writer's last generation must be
// durable at the iod once FlushAll returns.

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"pvfscache/internal/blockio"
	"pvfscache/internal/cachemod/buffer"
	"pvfscache/internal/testseed"
	"pvfscache/internal/wire"
)

const (
	stormBS         = 4096
	stormCapacity   = 64  // blocks: far below the combined working set
	stormScanBlocks = 128 // scan file length in blocks
	stormWriterBlks = 32  // blocks owned by each writer
)

// stormPattern is the uniform fill byte for one generation of one block;
// uniform fills make torn reads detectable from the data alone.
func stormPattern(file blockio.FileID, blk int, gen int) byte {
	return byte(int(file)*37 + blk*11 + gen*101)
}

func TestModuleConcurrencyStorm(t *testing.T) {
	seed := testseed.Base(t)
	r := newRig(t, func(c *Config) {
		c.Buffer = buffer.Config{BlockSize: stormBS, Capacity: stormCapacity, Shards: 8}
		c.FlushPeriod = 2 * time.Millisecond // flusher + harvester churn constantly
		c.ReadaheadWindow = 8
	})
	mod := r.mod

	// The scan file (file 3) stripes block-round-robin over the two iods:
	// block idx lives on iod idx%2, matching the stripe hint below, so
	// both demand reads and prefetches route to the daemon holding the
	// data.
	scanFile := blockio.FileID(3)
	for blk := 0; blk < stormScanBlocks; blk++ {
		pat := bytes.Repeat([]byte{stormPattern(scanFile, blk, 0)}, stormBS)
		r.seed(blk%2, scanFile, int64(blk)*stormBS, pat)
	}
	mod.SetStripeHint(scanFile, wire.FileMeta{
		Size:   stormScanBlocks * stormBS,
		Base:   0,
		PCount: 2,
		SSize:  stormBS,
	}, 2)

	var wg sync.WaitGroup
	fail := func(format string, args ...any) {
		t.Error(fmt.Errorf(format, args...))
	}

	// Two writers, each owning a disjoint block range of its own file, so
	// the last generation written per block is well defined.
	lastGen := make([][]int, 2)
	for w := 0; w < 2; w++ {
		lastGen[w] = make([]int, stormWriterBlks)
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			file := blockio.FileID(w + 1)
			iodIdx := w % 2
			tr := mod.NewTransport()
			rng := rand.New(rand.NewSource(seed + int64(w)))
			for gen := 1; gen <= 400; gen++ {
				blk := rng.Intn(stormWriterBlks)
				data := bytes.Repeat([]byte{stormPattern(file, blk, gen)}, stormBS)
				id, err := tr.Send(iodIdx, &wire.Write{File: file, Offset: int64(blk) * stormBS, Data: data})
				if err != nil {
					fail("writer %d: %v", w, err)
					return
				}
				resp, err := tr.Recv(id)
				if err != nil {
					fail("writer %d: %v", w, err)
					return
				}
				if ack, ok := resp.(*wire.WriteAck); !ok || ack.Status != wire.StatusOK {
					fail("writer %d: ack %v", w, resp)
					return
				}
				lastGen[w][blk] = gen
			}
		}(w)
	}

	// Four readers over the writers' files: any single block they see must
	// be untorn (one uniform generation fill, or zero if never written).
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			tr := mod.NewTransport()
			rng := rand.New(rand.NewSource(seed + int64(100+g)))
			for i := 0; i < 400; i++ {
				w := rng.Intn(2)
				file := blockio.FileID(w + 1)
				blk := rng.Intn(stormWriterBlks)
				nblocks := 1 + rng.Intn(2)
				length := int64(nblocks) * stormBS
				id, err := tr.Send(w%2, &wire.Read{File: file, Offset: int64(blk) * stormBS, Length: length})
				if err != nil {
					fail("reader %d: %v", g, err)
					return
				}
				resp, err := tr.Recv(id)
				if err != nil {
					fail("reader %d: %v", g, err)
					return
				}
				rr, ok := resp.(*wire.ReadResp)
				if !ok || rr.Status != wire.StatusOK {
					fail("reader %d: resp %v", g, resp)
					return
				}
				for b := 0; b < nblocks; b++ {
					blockBytes := rr.Data[b*stormBS : (b+1)*stormBS]
					for _, v := range blockBytes {
						if v != blockBytes[0] {
							fail("reader %d: torn block %d of file %d", g, blk+b, file)
							return
						}
					}
				}
			}
		}(g)
	}

	// A scanner walking the striped file engages the readahead prefetcher
	// (claims land in the shared fetch table on this goroutine, transfers
	// run on prefetch goroutines) while invalidations yank its blocks.
	wg.Add(1)
	go func() {
		defer wg.Done()
		tr := mod.NewTransport()
		for pass := 0; pass < 3; pass++ {
			for blk := 0; blk < stormScanBlocks; blk++ {
				off := int64(blk) * stormBS
				tr.NoteRead(scanFile, off, stormBS) // the libpvfs-level hint stream
				id, err := tr.Send(blk%2, &wire.Read{File: scanFile, Offset: off, Length: stormBS})
				if err != nil {
					fail("scanner: %v", err)
					return
				}
				resp, err := tr.Recv(id)
				if err != nil {
					fail("scanner: %v", err)
					return
				}
				rr, ok := resp.(*wire.ReadResp)
				if !ok || rr.Status != wire.StatusOK {
					fail("scanner: resp %v", resp)
					return
				}
				want := stormPattern(scanFile, blk, 0)
				for _, v := range rr.Data {
					if v != want {
						fail("scanner: block %d read %#x, want %#x", blk, v, want)
						return
					}
				}
			}
		}
	}()

	// An invalidator fires coherence invalidations at the scan file — the
	// path an iod takes when a foreign client sync-writes. Only clean
	// blocks are targeted (the writers' files stay untouched), so no
	// acknowledged write-behind data is ever discarded.
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(seed + 9))
		for i := 0; i < 500; i++ {
			blk := int64(rng.Intn(stormScanBlocks))
			mod.handleInvalidate(&wire.Invalidate{File: scanFile, Indices: []int64{blk}})
		}
	}()

	wg.Wait()
	if t.Failed() {
		return
	}
	if err := mod.FlushAll(); err != nil {
		t.Fatal(err)
	}

	// Frame accounting after the storm.
	st := mod.Buffer().Stats()
	if st.Free+st.Resident != stormCapacity {
		t.Fatalf("frames leaked: free=%d resident=%d capacity=%d", st.Free, st.Resident, stormCapacity)
	}
	if err := mod.Buffer().CheckConsistency(); err != nil {
		t.Fatal(err)
	}

	// No dirty block was evicted: after FlushAll every writer block's last
	// acknowledged generation must be durable at its iod. (If cache
	// pressure ever forced a write through, ordering against an in-flight
	// flush of an older generation is not defined — skip the byte oracle
	// rather than flake; the storm is sized so this does not happen.)
	snap := r.reg.Snapshot()
	if wt := snap.Counters["module.write_through"]; wt > 0 {
		t.Logf("skipping durability oracle: %d writes fell back to write-through", wt)
		return
	}
	for w := 0; w < 2; w++ {
		file := blockio.FileID(w + 1)
		got := make([]byte, stormBS)
		for blk := 0; blk < stormWriterBlks; blk++ {
			gen := lastGen[w][blk]
			if gen == 0 {
				continue
			}
			want := stormPattern(file, blk, gen)
			if n, _ := r.iods[w%2].Store().ReadAt(file, int64(blk)*stormBS, got); n != stormBS {
				t.Fatalf("file %d block %d: short store read %d", file, blk, n)
			}
			for _, v := range got {
				if v != want {
					t.Fatalf("file %d block %d: stored %#x, want gen %d (%#x) — dirty data lost",
						file, blk, v, gen, want)
				}
			}
		}
	}
}
