package cachemod

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"pvfscache/internal/cachemod/buffer"
	"pvfscache/internal/metrics"
	"pvfscache/internal/transport"
	"pvfscache/internal/wire"
)

// waitTenantInflight polls until the tenant's in-flight charge reaches
// want. Budget release happens on the request's completion goroutine, so
// assertions after Recv must tolerate a scheduling gap.
func waitTenantInflight(t *testing.T, m *Module, tenant uint32, want int64) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		got := m.TenantInflight(tenant)
		if got == want {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("tenant %d inflight = %d, want %d", tenant, got, want)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestTenantWriteQuotaShedsAndRecovers drives one tagged tenant into its
// dirty quota: over-quota writes must shed with StatusOverload instead of
// queueing, the tenant's dirty residency must never exceed the quota, and
// after a drain the same tenant buffers again.
func TestTenantWriteQuotaShedsAndRecovers(t *testing.T) {
	r := newRig(t, func(c *Config) {
		c.TenantDirtyQuota = 0.25         // 16 of the rig's 64 frames
		c.OverloadStall = time.Nanosecond // shed immediately, don't wait for drain
		c.FlushPeriod = time.Hour         // only shed-kicked drains run
	})
	const quota = 16
	r.mod.SetTenant(7, 1, 1)
	tr := r.mod.NewTransport()

	oks, sheds := 0, 0
	for i := 0; i < 48; i++ {
		ack := sendRecv(t, tr, 0, &wire.Write{
			Client: 1, File: 7, Offset: int64(i) * 4096, Data: bytes.Repeat([]byte{byte(i)}, 4096),
		}).(*wire.WriteAck)
		switch ack.Status {
		case wire.StatusOK:
			oks++
		case wire.StatusOverload:
			sheds++
		default:
			t.Fatalf("write %d: status %v", i, ack.Status)
		}
		if got := r.mod.Buffer().DirtyCountTenant(1); got > quota {
			t.Fatalf("tenant dirty residency %d exceeds quota %d", got, quota)
		}
	}
	if sheds == 0 {
		t.Fatal("no writes shed: the quota never engaged")
	}
	if oks < quota {
		t.Fatalf("only %d writes buffered, want at least the quota %d", oks, quota)
	}
	if v := r.reg.Counter(metrics.Labeled("module.tenant_write_sheds", "tenant", "1")).Value(); v == 0 {
		t.Fatal("tenant_write_sheds counter never incremented")
	}

	// Recovery: a full drain releases the quota and the tenant is
	// admitted again — shedding is load feedback, not a penalty box.
	if err := r.mod.FlushAll(); err != nil {
		t.Fatal(err)
	}
	ack := sendRecv(t, tr, 0, &wire.Write{
		Client: 1, File: 7, Offset: 1 << 20, Data: bytes.Repeat([]byte{0xEE}, 4096),
	}).(*wire.WriteAck)
	if ack.Status != wire.StatusOK {
		t.Fatalf("post-drain write: status %v, want OK", ack.Status)
	}

	// Untagged traffic is never shed: tenant 0 has no quota.
	for i := 0; i < 20; i++ {
		ack := sendRecv(t, tr, 0, &wire.Write{
			Client: 1, File: 8, Offset: int64(i) * 4096, Data: bytes.Repeat([]byte{0xAA}, 4096),
		}).(*wire.WriteAck)
		if ack.Status != wire.StatusOK {
			t.Fatalf("untagged write %d: status %v, want OK", i, ack.Status)
		}
	}
}

// TestTenantFetchBudget pins the read-side budget protocol: a tenant's
// concurrent miss fetches are capped, a request that would exceed the cap
// sheds retryably, the charge is released on completion (including the
// full-cache-hit path), and an oversized request is still admitted when
// the tenant is otherwise idle so it cannot be starved forever.
func TestTenantFetchBudget(t *testing.T) {
	r := newRig(t, func(c *Config) {
		c.TenantFetchBudget = 4
		c.ReadaheadWindow = -1 // keep fetch counts exactly the demand misses
	})
	r.mod.SetTenant(9, 3, 1)
	tr := r.mod.NewTransport()

	// Hold a 3-block fetch in flight: the charge is taken synchronously
	// at Send, before any round trip completes.
	id1, err := tr.Send(0, &wire.Read{File: 9, Offset: 0, Length: 3 * 4096})
	if err != nil {
		t.Fatal(err)
	}
	if got := r.mod.TenantInflight(3); got != 3 {
		t.Fatalf("inflight after first Send = %d, want 3", got)
	}

	// A second 3-block read would put the tenant at 6 > 4: shed.
	resp := sendRecv(t, tr, 0, &wire.Read{File: 9, Offset: 1 << 20, Length: 3 * 4096}).(*wire.ReadResp)
	if resp.Status != wire.StatusOverload {
		t.Fatalf("over-budget read: status %v, want Overload", resp.Status)
	}
	if got := r.mod.TenantInflight(3); got != 3 {
		t.Fatalf("inflight after shed = %d, want 3 (shed must not charge)", got)
	}
	if v := r.reg.Counter(metrics.Labeled("module.tenant_read_sheds", "tenant", "3")).Value(); v == 0 {
		t.Fatal("tenant_read_sheds counter never incremented")
	}

	// Completing the first read releases its whole charge.
	if _, err := tr.Recv(id1); err != nil {
		t.Fatal(err)
	}
	waitTenantInflight(t, r.mod, 3, 0)

	// Oversized request (8 blocks > budget 4) admitted when the tenant
	// has nothing else in flight, and fully released afterwards.
	resp = sendRecv(t, tr, 0, &wire.Read{File: 9, Offset: 2 << 20, Length: 8 * 4096}).(*wire.ReadResp)
	if resp.Status != wire.StatusOK {
		t.Fatalf("oversized idle read: status %v, want OK", resp.Status)
	}
	waitTenantInflight(t, r.mod, 3, 0)

	// A full cache hit takes and releases the budget on the synchronous
	// path — re-read what the oversized fetch just cached.
	resp = sendRecv(t, tr, 0, &wire.Read{File: 9, Offset: 2 << 20, Length: 8 * 4096}).(*wire.ReadResp)
	if resp.Status != wire.StatusOK {
		t.Fatalf("cached re-read: status %v, want OK", resp.Status)
	}
	waitTenantInflight(t, r.mod, 3, 0)

	// Untagged files never charge any tenant.
	sendRecv(t, tr, 0, &wire.Read{File: 10, Offset: 0, Length: 2 * 4096})
	if got := r.mod.TenantInflight(0); got != 0 {
		t.Fatalf("tenant 0 inflight = %d, want 0 (untagged is never charged)", got)
	}
}

// TestFetchBudgetReleasedOnError pins the leak-proofing of the budget
// protocol: when every fetch fails (iod unreachable), the tenant's charge
// must still return to zero — a leaked charge would throttle the tenant
// forever on a transient outage.
func TestFetchBudgetReleasedOnError(t *testing.T) {
	net := transport.NewMem()
	mod, err := New(Config{
		Network:           net,
		ClientID:          1,
		IODDataAddrs:      []string{"dead:0"}, // nothing listens: dials are refused
		IODFlushAddrs:     []string{"dead:1"},
		Buffer:            buffer.Config{BlockSize: 4096, Capacity: 16},
		DisableCoherence:  true,
		TenantFetchBudget: 8,
		Registry:          metrics.NewRegistry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer mod.Close()
	mod.SetTenant(5, 2, 1)
	tr := mod.NewTransport()

	id, err := tr.Send(0, &wire.Read{File: 5, Offset: 0, Length: 2 * 4096})
	if err == nil {
		if _, rerr := tr.Recv(id); rerr == nil {
			t.Fatal("read against an unreachable iod succeeded")
		}
	}
	waitTenantInflight(t, mod, 2, 0)
}

// TestTraceModeCapturesRequests smoke-tests per-request trace mode
// end-to-end at the module seam: arm, run ops, drain, and verify one-shot
// consumption semantics.
func TestTraceModeCapturesRequests(t *testing.T) {
	r := newRig(t, nil)
	tr := r.mod.NewTransport()
	r.mod.ArmTrace(2)

	ack := sendRecv(t, tr, 0, &wire.Write{
		Client: 1, File: 6, Offset: 0, Data: bytes.Repeat([]byte{1}, 4096),
	}).(*wire.WriteAck)
	if ack.Status != wire.StatusOK {
		t.Fatalf("write status %v", ack.Status)
	}
	sendRecv(t, tr, 0, &wire.Read{File: 6, Offset: 0, Length: 4096})

	if got := r.mod.TraceArmed(); got != 0 {
		t.Fatalf("TraceArmed = %d after two traced requests, want 0", got)
	}
	text := r.mod.TraceText()
	if !strings.Contains(text, "write file=6") {
		t.Errorf("trace output missing the write request:\n%s", text)
	}
	if !strings.Contains(text, "read file=6") {
		t.Errorf("trace output missing the read request:\n%s", text)
	}
	if !strings.Contains(text, "done:") {
		t.Errorf("trace output missing completion hops:\n%s", text)
	}
	if again := r.mod.TraceText(); again != "" {
		t.Fatalf("second drain not empty:\n%s", again)
	}
	// Disarmed: nothing further is captured.
	sendRecv(t, tr, 0, &wire.Read{File: 6, Offset: 0, Length: 4096})
	if text := r.mod.TraceText(); text != "" {
		t.Fatalf("disarmed request captured a trace:\n%s", text)
	}
}
