// Package cachemod implements the paper's contribution: a per-node cache
// module that interposes between libpvfs and the I/O daemons and services
// the requests of every application process on the node from one shared
// block cache.
//
// The kernel module of the paper intercepts libpvfs's socket calls; here
// the same interception happens at the pvfs.Transport boundary, which
// carries exactly the traffic those socket calls carry. Per request the
// module:
//
//   - checks which blocks are already cached and discounts them, then
//     fetches all the missing runs of the request in one vectored
//     sub-request per iod (wire.ReadBlocks) — a cached block in the middle
//     of a request costs an extent boundary, not an extra round trip;
//   - returns control to libpvfs with the transfers marked pending, and
//     fakes the acknowledgments locally — libpvfs's subsequent receive
//     calls complete from the cache module's state machine;
//   - detects ascending per-file scans and prefetches a configurable
//     window of upcoming blocks through the same vectored path
//     (sequential readahead; see readahead.go), never displacing dirty
//     data;
//   - performs writes into the cache and returns immediately, leaving the
//     propagation to the pipelined write-behind engine: one flush stream
//     per iod, each keeping a bounded window of coalesced-run Flush
//     frames in flight, all iods draining in parallel (see flusher.go);
//   - runs a harvester thread that refills the free list between a low and
//     a high watermark so allocations do not pay eviction latency;
//   - moves read bytes zero-copy: libpvfs hands down the caller's buffer
//     regions (pvfs.ReadSinker) and every span — cache hit, fetch join,
//     fetched run — is copied straight into them, while fetched images
//     live in pooled, reference-counted slabs rather than per-request
//     allocations (see DESIGN.md §4 "Buffer ownership and lifetimes";
//     Config.DisableZeroCopy restores the copying shape for ablation).
//
// One Module runs per node. Each application process obtains its own
// pvfs.Transport from NewTransport; all of them share the cache — which is
// what makes inter-application data sharing pay off — as well as the fetch
// table that deduplicates concurrent fetches of the same block across
// processes and the prefetcher.
package cachemod

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"pvfscache/internal/blockio"
	"pvfscache/internal/cachemod/buffer"
	"pvfscache/internal/globalcache"
	"pvfscache/internal/membership"
	"pvfscache/internal/metrics"
	"pvfscache/internal/pvfs"
	"pvfscache/internal/rpc"
	"pvfscache/internal/transport"
	"pvfscache/internal/wire"
)

// Config assembles a Module.
type Config struct {
	// Network reaches the iods and hosts the invalidation listener.
	Network transport.Network
	// ClientID identifies this node's cache to the iods. Must be nonzero.
	ClientID uint32
	// IODDataAddrs lists every iod data-port address, in cluster order.
	IODDataAddrs []string
	// IODFlushAddrs lists every iod flush-port address, in cluster order.
	// Empty disables write-behind (writes go through synchronously).
	IODFlushAddrs []string
	// Buffer sizes the block cache (see buffer.Config for defaults: 300
	// blocks of 4 KB — the paper's 1.2 MB cache).
	Buffer buffer.Config
	// FlushPeriod is each flush stream's wake-up interval (default 1s).
	FlushPeriod time.Duration
	// FlushBatch is the write-behind engine's take granularity: each
	// stream pulls up to FlushBatch×FlushWindow dirty blocks per burst
	// (default 64 — with 4 KB blocks one batch is one ~256 KB frame).
	FlushBatch int
	// FlushStreams bounds how many per-iod flush streams may drain
	// concurrently. Default (0): one stream per iod, all iods draining
	// in parallel. 1 serializes the drains across iods — combined with
	// FlushWindow=1 this is the seed's serial write-behind shape, kept
	// as the ablation baseline.
	FlushStreams int
	// FlushWindow is each stream's bound on concurrent Flush frames in
	// flight to its iod (default 4). 1 restores one blocking round trip
	// at a time (ablation baseline).
	FlushWindow int
	// WriteStall bounds how long a write blocks waiting for cache space
	// before falling back to write-through (default 2s).
	WriteStall time.Duration
	// TenantDirtyQuota bounds one tagged tenant's share of the cache's
	// dirty frames: a tenant may hold at most TenantDirtyQuota × capacity
	// × weight dirty blocks before its buffered writes are shed with
	// StatusOverload (after a bounded OverloadStall wait for flush
	// progress). 0 (the default) disables the quota. Untagged traffic
	// (tenant 0) is never shed — quotas only constrain principals that
	// opted into tagging, so existing workloads see no behaviour change.
	TenantDirtyQuota float64
	// TenantFetchBudget bounds one tagged tenant's in-flight read blocks:
	// a read whose block count would push the tenant past
	// TenantFetchBudget × weight outstanding blocks is shed with
	// StatusOverload instead of queueing unboundedly. A request larger
	// than the whole budget is admitted alone (when nothing else is in
	// flight) rather than wedged forever. 0 (the default) disables the
	// budget.
	TenantFetchBudget int
	// OverloadStall bounds how long an over-quota write waits for flush
	// progress before shedding (default 20ms). Deliberately much shorter
	// than WriteStall: a shed is a fast, explicit retry signal
	// (wire.StatusOverload → pvfs.Client backoff), not a stall.
	OverloadStall time.Duration
	// RPCConns is the connection-pool size per iod port (default
	// rpc.DefaultConns). More connections let more of the node's
	// processes keep requests in flight against one iod concurrently.
	RPCConns int
	// ReadaheadWindow is how many blocks the scan-readahead prefetcher
	// keeps in flight ahead of a detected scan — ascending, strided or
	// backward (default 8, capped at 1024; negative disables readahead).
	// Prefetches travel the same vectored read path as demand misses and
	// never displace dirty data: insertion only evicts clean blocks, and
	// a prefetched copy of a partially dirty block preserves the dirty
	// bytes. Readahead needs striping hints (see CachedTransport
	// StripeHint) to know which iod holds each upcoming block; files
	// without a hint are never prefetched.
	ReadaheadWindow int
	// BypassThreshold is the streaming-bypass trigger: once a file's
	// detected scan streak (ascending, strided or backward — the same
	// state machine that drives readahead) reaches this many requests,
	// its demand reads and prefetches are served read-around — pooled
	// transient buffers, never admitted, never evicting dirty or
	// protected frames — until the pattern breaks. 0 (the default)
	// disables the bypass; per-open hints (CacheNone/CacheMust) override
	// it either way.
	BypassThreshold int
	// DisableVector reverts the miss engine to the legacy shape: one
	// Read per run of consecutive missing blocks instead of one
	// ReadBlocks covering every run. Kept for the ablation benchmarks
	// that quantify the vectored path's win.
	DisableVector bool
	// DisableZeroCopy reverts the data path to the copying shape: cache
	// hits assemble into a freshly allocated response buffer that libpvfs
	// copies into the caller's memory (instead of scattering straight into
	// it), and miss slabs, prefetch blocks and read-modify-write blocks
	// are allocated per fetch instead of leased from pools. Kept as the
	// ablation baseline that quantifies the zero-copy path's win.
	DisableZeroCopy bool
	// DisableCoherence skips the invalidation listener and iod
	// registration; sync-writes then behave like plain writes plus a
	// server write-through.
	DisableCoherence bool
	// GlobalCache, when non-nil, enables the cooperative global cache
	// extension (the paper's §5 ongoing work): this module serves its
	// blocks to peers and probes a block's replica set before fetching
	// from the iods. The options select the membership mode — Peers pins
	// a static view, MgrAddr joins the mgr-coordinated epoch-versioned
	// view (see globalcache.Options).
	GlobalCache *globalcache.Options
	// Registry receives the module's counters; nil uses a private one.
	Registry *metrics.Registry
}

func (c *Config) fillDefaults() error {
	if c.Network == nil {
		return errors.New("cachemod: Config.Network is required")
	}
	if c.ClientID == 0 {
		return errors.New("cachemod: Config.ClientID must be nonzero")
	}
	if len(c.IODDataAddrs) == 0 {
		return errors.New("cachemod: Config.IODDataAddrs is required")
	}
	if c.FlushPeriod <= 0 {
		c.FlushPeriod = time.Second
	}
	if c.FlushBatch <= 0 {
		c.FlushBatch = 64
	}
	if c.FlushStreams <= 0 || c.FlushStreams > len(c.IODFlushAddrs) {
		c.FlushStreams = len(c.IODFlushAddrs)
	}
	if c.FlushWindow <= 0 {
		c.FlushWindow = 4
	}
	if c.WriteStall <= 0 {
		c.WriteStall = 2 * time.Second
	}
	if c.TenantDirtyQuota < 0 {
		c.TenantDirtyQuota = 0 // disabled
	}
	if c.TenantDirtyQuota > 1 {
		c.TenantDirtyQuota = 1
	}
	if c.TenantFetchBudget < 0 {
		c.TenantFetchBudget = 0 // disabled
	}
	if c.OverloadStall <= 0 {
		c.OverloadStall = 20 * time.Millisecond
	}
	if c.ReadaheadWindow == 0 {
		c.ReadaheadWindow = 8
	}
	if c.ReadaheadWindow < 0 {
		c.ReadaheadWindow = 0 // disabled
	}
	if c.ReadaheadWindow > 1024 {
		c.ReadaheadWindow = 1024
	}
	if c.BypassThreshold < 0 {
		c.BypassThreshold = 0 // disabled
	}
	if c.Registry == nil {
		c.Registry = metrics.NewRegistry()
	}
	c.Buffer.Registry = c.Registry
	return nil
}

// memRef counts the readers of one pooled buffer shared by one or more
// fetchStates — a miss run's slab, or a single prefetched/peer-fetched
// block. The buffer returns to its pool when the count drains to zero.
// With zero-copy disabled (plain allocations) pool is nil and release is
// a no-op: the garbage collector owns the buffer, exactly as before.
type memRef struct {
	buf  []byte
	pool *rpc.BufPool
	refs atomic.Int32
}

// newMemRef wraps buf with one reference held by the creator.
func newMemRef(buf []byte, pool *rpc.BufPool) *memRef {
	r := &memRef{buf: buf, pool: pool}
	r.refs.Store(1)
	return r
}

func (r *memRef) retain() { r.refs.Add(1) }

func (r *memRef) release() {
	if r.refs.Add(-1) == 0 && r.pool != nil {
		r.pool.Put(r.buf)
	}
}

// fetchState coordinates one in-flight block fetch across processes: the
// first requester owns the network transfer, later requesters wait on done
// and then read the block from data (which survives even if the insert was
// bypassed for lack of space). The readahead prefetcher registers its
// transfers in the same table, so a demand miss on a block already being
// prefetched joins the prefetch instead of fetching twice.
//
// Lifetime protocol (zero-copy): data may be backed by a pooled buffer
// (mem). refs counts the holders entitled to read data after done closes —
// the owner's publish path plus every joiner. A joiner must acquire its
// reference with refs.Add(1) while it still holds fetchMu and sees the
// state in the fetch table; the owner only drops its own reference after
// the entry left the table, so a joiner's reference is always registered
// before the owner's release can drain the count. Each holder calls decref
// exactly once when it is done with data; the backing buffer returns to
// its pool when the count reaches zero.
type fetchState struct {
	done     chan struct{}
	data     []byte // full block, zero-padded; set before done closes
	err      error
	prefetch bool // transfer issued by the readahead prefetcher

	// stamp is the block's buffer write stamp recorded when the fetch was
	// registered in the table; the install presents it so an image that
	// predates a write applied (and possibly flushed and evicted) during
	// the flight is refused and re-read (buffer.OutcomeStale). finalStamp
	// is the stamp the successful install validated against — set before
	// done closes, it lets late joiners detect writes that landed after
	// publication and fall back to a synchronous fetch.
	stamp      uint32
	finalStamp uint32

	refs atomic.Int32
	mem  *memRef // backing allocation of data; nil when GC-managed
}

// newFetchState returns a state with one reference, held by the fetch
// owner.
func newFetchState(prefetch bool) *fetchState {
	st := &fetchState{done: make(chan struct{}), prefetch: prefetch}
	st.refs.Store(1)
	return st
}

// decref drops one holder; the last one out releases the backing buffer.
func (st *fetchState) decref() {
	if st.refs.Add(-1) == 0 && st.mem != nil {
		st.mem.release()
	}
}

// Module is the per-node cache module.
type Module struct {
	cfg Config
	buf *buffer.Manager

	data  []*rpc.Client // per-iod data-port clients (module-owned, pooled)
	flush []*rpc.Client // per-iod flush-port clients

	// slabs recycles miss-run assembly buffers, blocks recycles
	// whole-block buffers (prefetch installs, peer gets, read-modify-write
	// fetches). Both are bypassed when Config.DisableZeroCopy is set.
	slabs  rpc.BufPool
	blocks rpc.BufPool

	fetchMu sync.Mutex
	fetches map[blockio.BlockKey]*fetchState

	stripeMu sync.Mutex
	stripes  map[blockio.FileID]stripeHint

	raMu       sync.Mutex
	ra         map[blockio.FileID]*raState
	prefetched map[blockio.BlockKey]struct{} // resident blocks not yet hit

	// policies holds the per-file cache-policy hints (pvfs open flags →
	// CachePolicyHint). polCount mirrors the non-default entry count so
	// the per-request lookup skips the mutex when no hints are set — the
	// common case.
	polMu    sync.Mutex
	policies map[blockio.FileID]pvfs.CachePolicy
	polCount atomic.Int64

	// prefetchMarks mirrors len(prefetched) (updated under raMu) so the
	// per-span hit path can skip the mutex entirely when no marks are
	// outstanding — the common case for non-scan workloads.
	prefetchMarks atomic.Int64

	// tenants holds the per-file tenant tags (pvfs open tags →
	// TenantHint) and qos the per-tenant QoS state (weight, in-flight
	// read blocks, shed counters; see qos.go). tenantCount mirrors the
	// tag count so untagged workloads skip the mutex — the policies
	// pattern.
	tenantMu    sync.Mutex
	tenants     map[blockio.FileID]uint32
	qos         map[uint32]*tenantState
	tenantCount atomic.Int64

	// traceArm counts requests still to be traced (ArmTrace); traces is
	// the bounded ring of captured per-request hop logs (see trace.go).
	traceArm atomic.Int64
	traceMu  sync.Mutex
	traces   []string

	spaceMu   sync.Mutex
	spaceCond *sync.Cond

	invalListener transport.Listener
	invalServer   *rpc.Server

	gcNode *globalcache.Node // nil without the global cache

	// streams is the pipelined write-behind engine: one flush stream per
	// iod (see flusher.go), gated by streamSem (capacity FlushStreams).
	streams   []*flushStream
	streamSem chan struct{}

	harvestKick chan struct{}
	stop        chan struct{}
	stopOnce    sync.Once
	wg          sync.WaitGroup
}

// New builds and starts a module: background threads launch, the
// invalidation listener opens, and the module registers with every iod
// (unless coherence is disabled).
func New(cfg Config) (*Module, error) {
	if err := cfg.fillDefaults(); err != nil {
		return nil, err
	}
	m := &Module{
		cfg:         cfg,
		buf:         buffer.New(cfg.Buffer),
		fetches:     make(map[blockio.BlockKey]*fetchState),
		stripes:     make(map[blockio.FileID]stripeHint),
		ra:          make(map[blockio.FileID]*raState),
		prefetched:  make(map[blockio.BlockKey]struct{}),
		policies:    make(map[blockio.FileID]pvfs.CachePolicy),
		tenants:     make(map[blockio.FileID]uint32),
		qos:         make(map[uint32]*tenantState),
		harvestKick: make(chan struct{}, 1),
		stop:        make(chan struct{}),
	}
	m.spaceCond = sync.NewCond(&m.spaceMu)
	for _, addr := range cfg.IODDataAddrs {
		m.data = append(m.data, rpc.NewClient(rpc.ClientConfig{
			Network: cfg.Network, Addr: addr, Conns: cfg.RPCConns,
		}))
	}
	for _, addr := range cfg.IODFlushAddrs {
		m.flush = append(m.flush, rpc.NewClient(rpc.ClientConfig{
			Network: cfg.Network, Addr: addr, Conns: cfg.RPCConns,
		}))
	}

	if !cfg.DisableCoherence {
		l, err := cfg.Network.Listen(":0")
		if err != nil {
			return nil, fmt.Errorf("cachemod: invalidation listener: %w", err)
		}
		m.invalListener = l
		m.invalServer = rpc.NewServer(rpc.HandlerFunc(m.handleInvalidate), rpc.ServerConfig{})
		m.wg.Add(1)
		go func() {
			defer m.wg.Done()
			m.invalServer.Serve(l)
		}()
		for i, rc := range m.data {
			res := rc.Call(&wire.Register{Client: cfg.ClientID, Addr: l.Addr()})
			if res.Err != nil {
				m.Close()
				return nil, fmt.Errorf("cachemod: registering with iod %d: %w", i, res.Err)
			}
			if _, ok := res.Msg.(*wire.RegisterAck); !ok {
				m.Close()
				return nil, fmt.Errorf("cachemod: iod %d register reply %v", i, res.Msg.WireType())
			}
		}
	}

	if cfg.GlobalCache != nil {
		opts := *cfg.GlobalCache
		// Static mode listens at this member's published address; dynamic
		// mode listens wherever it can (":0") and advertises the result to
		// the mgr when it joins.
		listenAddr := opts.SelfAddr
		if opts.MgrAddr == "" {
			if i := (membership.View{Members: opts.Peers}).IndexOf(opts.SelfID); i >= 0 {
				listenAddr = opts.Peers[i].Addr
			}
		}
		if listenAddr == "" {
			listenAddr = ":0"
		}
		l, err := cfg.Network.Listen(listenAddr)
		if err != nil {
			m.Close()
			return nil, fmt.Errorf("cachemod: global-cache listener: %w", err)
		}
		m.gcNode, err = globalcache.Start(opts, m.buf, l, cfg.Network, cfg.Registry)
		if err != nil {
			l.Close()
			m.Close()
			return nil, err
		}
	}

	if len(m.flush) > 0 {
		m.streamSem = make(chan struct{}, cfg.FlushStreams)
		for i, rc := range m.flush {
			s := &flushStream{m: m, iod: i, client: rc, kick: make(chan struct{}, 1)}
			m.streams = append(m.streams, s)
			m.wg.Add(1)
			go s.loop()
		}
	}
	m.wg.Add(1)
	go m.harvesterLoop()
	return m, nil
}

// Buffer exposes the underlying buffer manager (stats, tests).
func (m *Module) Buffer() *buffer.Manager { return m.buf }

// Registry returns the module's metrics registry.
func (m *Module) Registry() *metrics.Registry { return m.cfg.Registry }

// WriteBehind reports whether the module buffers writes (flush ports were
// configured).
func (m *Module) WriteBehind() bool { return len(m.flush) > 0 }

// StreamHealth reports each flush stream's failure state, one entry per
// iod in cluster order (empty without write-behind). Tests and the chaos
// harness use it to watch a stream enter backoff when its daemon dies and
// recover when the daemon returns.
func (m *Module) StreamHealth() []StreamHealth {
	out := make([]StreamHealth, len(m.streams))
	for i, s := range m.streams {
		out[i] = StreamHealth{
			IOD:     s.iod,
			Failing: s.failing.Load(),
			Errors:  s.errors.Load(),
			Backoff: time.Duration(s.backoff.Load()),
		}
	}
	return out
}

// Close flushes all dirty blocks, stops the background threads and closes
// every connection.
func (m *Module) Close() error {
	var err error
	m.stopOnce.Do(func() {
		// Final flush: drain the dirty list before tearing down.
		if len(m.flush) > 0 {
			err = m.FlushAll()
		}
		close(m.stop)
		if m.gcNode != nil {
			m.gcNode.Close()
		}
		if m.invalListener != nil {
			m.invalListener.Close()
		}
		if m.invalServer != nil {
			m.invalServer.Close()
		}
		m.spaceCond.Broadcast()
		m.wg.Wait()
		for _, rc := range m.data {
			rc.Close()
		}
		for _, rc := range m.flush {
			rc.Close()
		}
	})
	return err
}

// --- background threads ---

// flushAllTimeout bounds how long FlushAll tolerates a complete stall: no
// drop in the dirty count at all. It is a deadline on progress, not a
// retry budget — it resets every time the dirty count reaches a new low,
// so a large backlog draining slowly (or a single in-flight round slower
// than the timeout's worth of other rounds) never trips it.
const flushAllTimeout = 30 * time.Second

// FlushAll synchronously drains the entire dirty list (used on Close and
// by tests needing durability): it kicks every flush stream and waits for
// the dirty count to reach zero, so the drain runs at the full pipelined
// width — all iods in parallel, FlushWindow frames each — rather than as
// one serial sweep. Blocks already in flight on a stream are invisible to
// TakeDirtyOwned, so FlushAll simply waits for those frames to land; it
// errors only after flushAllTimeout passes without the dirty count making
// any progress — which means a flush port is persistently failing, since
// every failed chunk re-queues its blocks for the stream's next (backed
// off) attempt. (With concurrent writers continuously re-dirtying the
// cache, "progress" means a new low-water mark of the dirty count; a
// steady state that never drains still errors after the timeout rather
// than blocking forever.)
func (m *Module) FlushAll() error {
	if len(m.streams) == 0 {
		return nil
	}
	minSeen := m.buf.DirtyCount()
	if minSeen == 0 {
		return nil
	}
	deadline := time.Now().Add(flushAllTimeout)
	m.kickAllStreams()
	lastKick := time.Now()
	for {
		// Event-driven wait: every acked chunk broadcasts signalSpace, so
		// the common case wakes on drain progress; the short deadline
		// bounds the wait when no acks are flowing (chunks failing, or
		// the tail of the backlog in flight on a slow port).
		m.waitForSpace(time.Now().Add(5 * time.Millisecond))
		n := m.buf.DirtyCount()
		if n == 0 {
			return nil
		}
		if n < minSeen {
			minSeen = n
			deadline = time.Now().Add(flushAllTimeout)
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("cachemod: %d dirty blocks remain after FlushAll stalled for %v", n, flushAllTimeout)
		}
		// Re-kick sparingly. A kicked stream drains its whole backlog and
		// a failing stream re-kicks itself after backoff, so most
		// wake-ups need no new kick — constant kicking would have every
		// idle stream re-scanning all shards for nothing. But concurrent
		// writers can dirty blocks after a stream's round ended, and a
		// block re-dirtied while in flight becomes eligible only once its
		// ack lands, so nudge the streams periodically.
		if time.Since(lastKick) >= 50*time.Millisecond {
			m.kickAllStreams()
			lastKick = time.Now()
		}
	}
}

// harvesterLoop is the paper's harvester kernel thread: whenever the free
// list falls below the low watermark it frees blocks up to the high
// watermark, preferring clean victims; if everything evictable is dirty it
// kicks the flusher.
func (m *Module) harvesterLoop() {
	defer m.wg.Done()
	ticker := time.NewTicker(m.cfg.FlushPeriod / 4)
	defer ticker.Stop()
	for {
		select {
		case <-m.stop:
			return
		case <-ticker.C:
		case <-m.harvestKick:
		}
		if m.buf.NeedsHarvest() {
			freed := m.buf.Harvest()
			m.cfg.Registry.Counter("module.harvested").Add(int64(freed))
			if m.buf.NeedsHarvest() {
				m.kickFlusher()
			}
			if freed > 0 {
				m.signalSpace()
			}
		}
	}
}

// handleInvalidate serves one Invalidate from an iod (via the module's
// rpc server on the invalidation listener).
func (m *Module) handleInvalidate(msg wire.Message) wire.Message {
	inv, ok := msg.(*wire.Invalidate)
	if !ok {
		return nil
	}
	for _, idx := range inv.Indices {
		key := blockio.BlockKey{File: inv.File, Index: idx}
		if inv.Drain {
			m.buf.InvalidateClean(key)
		} else {
			m.buf.Invalidate(key)
		}
		m.dropPrefetchMark(key)
	}
	m.cfg.Registry.Counter("module.invalidations_rx").Inc()
	return &wire.InvalidAck{Status: wire.StatusOK}
}

// --- helpers shared with the transport FSM ---

// kickFlusher wakes the write-behind engine under space pressure. The
// kick is directed: eviction pressure wants the blocks the replacement
// policy will free next, so the stream owning the oldest dirty data is
// kicked rather than every stream with a global batch — the other iods'
// streams keep their period (or their own kicks) and the node does not
// burst-flush young data that eviction does not need gone. Two escape
// hatches keep the directed kick from starving writers: when the target
// stream is failing (its iod is down, so waking it frees nothing —
// FlushFailed keeps its old blocks eligible, which would pin the probe
// on it forever), every stream is kicked instead; and when nothing is
// eligible (clean cache, or every dirty block already in flight) no
// kick is sent at all.
func (m *Module) kickFlusher() {
	if len(m.streams) == 0 {
		return
	}
	owner, ok := m.buf.OldestDirtyOwner()
	if !ok {
		return
	}
	if owner < 0 || owner >= len(m.streams) {
		// A block owned by an iod with no flush stream (mismatched
		// data/flush address lists) can never drain; waking everyone at
		// least frees what the flushable owners hold, as the old global
		// batch did.
		m.kickAllStreams()
		return
	}
	target := m.streams[owner]
	if target.failing.Load() {
		m.kickAllStreams()
		return
	}
	target.kickStream()
}

// GlobalCacheNode exposes the module's global-cache node, or nil when the
// global cache is disabled. Chaos harnesses and tests use it to inspect
// the membership ring or fail-stop the peer service.
func (m *Module) GlobalCacheNode() *globalcache.Node { return m.gcNode }

// KillPeerService fail-stops this node's global-cache service without
// touching the rest of the module: peers see connection errors and fail
// over, while this node keeps serving its applications (and keeps its
// client side, so its own reads still probe the surviving peers).
func (m *Module) KillPeerService() {
	if m.gcNode != nil {
		m.gcNode.KillService()
	}
}

// DrainIOD flushes every dirty block owned by iod and waits until none
// remain or the deadline passes. It is the cache-module half of a graceful
// iod drain: the caller quiesces writers for the target iod, drains here,
// and only then retires the daemon. Unlike FlushAll it is directed — only
// the target iod's stream is kicked, so the other streams keep their
// write-behind period.
func (m *Module) DrainIOD(iod int, deadline time.Time) error {
	if iod < 0 || iod >= len(m.streams) {
		if n := m.buf.DirtyCountOwned(iod); n > 0 {
			return fmt.Errorf("cachemod: iod %d has %d dirty blocks but no flush stream", iod, n)
		}
		return nil
	}
	for {
		n := m.buf.DirtyCountOwned(iod)
		if n == 0 {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("cachemod: drain iod %d: %d dirty blocks remain at deadline", iod, n)
		}
		m.streams[iod].kickStream()
		// Flush acks arrive on the stream goroutine; poll with a short
		// sleep rather than a condvar — drains are rare and bounded.
		time.Sleep(2 * time.Millisecond)
	}
}

// kickAllStreams wakes every flush stream (FlushAll's full-width drain).
func (m *Module) kickAllStreams() {
	for _, s := range m.streams {
		s.kickStream()
	}
}

func (m *Module) kickHarvester() {
	select {
	case m.harvestKick <- struct{}{}:
	default:
	}
}

func (m *Module) signalSpace() {
	m.spaceMu.Lock()
	m.spaceCond.Broadcast()
	m.spaceMu.Unlock()
}

// waitForSpace blocks until signalSpace or the deadline; it returns false
// on timeout or shutdown.
func (m *Module) waitForSpace(deadline time.Time) bool {
	done := make(chan struct{})
	timer := time.AfterFunc(time.Until(deadline), func() {
		close(done)
		m.signalSpace()
	})
	defer timer.Stop()
	m.spaceMu.Lock()
	defer m.spaceMu.Unlock()
	select {
	case <-m.stop:
		return false
	case <-done:
		return false
	default:
	}
	m.spaceCond.Wait()
	select {
	case <-m.stop:
		return false
	case <-done:
		return false
	default:
		return true
	}
}

// getSlab returns an n-byte assembly buffer: pooled and refcounted on the
// zero-copy path, a plain (GC-managed) allocation with a nil ref when
// zero-copy is disabled.
func (m *Module) getSlab(n int) ([]byte, *memRef) {
	if m.cfg.DisableZeroCopy {
		return make([]byte, n), nil
	}
	buf := m.slabs.Get(n)
	return buf, newMemRef(buf, &m.slabs)
}

// getBlock is getSlab for whole-block buffers, drawing on the block pool.
func (m *Module) getBlock() ([]byte, *memRef) {
	bs := m.buf.BlockSize()
	if m.cfg.DisableZeroCopy {
		return make([]byte, bs), nil
	}
	buf := m.blocks.Get(bs)
	return buf, newMemRef(buf, &m.blocks)
}

// publishFetched hands a fetched block image to the state's waiters: it
// records the data (retaining a reference on its backing buffer for the
// state's holders), removes the fetch-table entry so no new joiner can
// arrive, and wakes everyone waiting on done. The caller still holds its
// own state reference and must decref once it has finished reading data.
func (m *Module) publishFetched(st *fetchState, key blockio.BlockKey, data []byte, mem *memRef) {
	if mem != nil {
		mem.retain()
		st.mem = mem
	}
	st.data = data
	m.fetchMu.Lock()
	if m.fetches[key] == st {
		delete(m.fetches, key)
	}
	m.fetchMu.Unlock()
	close(st.done)
}

// SetCachePolicy records a file's per-open cache-policy hint (the
// discretionary knob; see pvfs.CachePolicy). CacheDefault clears the
// entry. The table is bounded like the hint tables: hints re-arrive on
// the next open, so resetting a full table costs a brief lapse, not
// correctness.
func (m *Module) SetCachePolicy(file blockio.FileID, policy pvfs.CachePolicy) {
	m.polMu.Lock()
	if policy == pvfs.CacheDefault {
		if _, ok := m.policies[file]; ok {
			delete(m.policies, file)
			m.polCount.Add(-1)
		}
	} else {
		if len(m.policies) >= maxHintedFiles {
			m.policies = make(map[blockio.FileID]pvfs.CachePolicy)
			m.polCount.Store(0)
		}
		if _, ok := m.policies[file]; !ok {
			m.polCount.Add(1)
		}
		m.policies[file] = policy
	}
	m.polMu.Unlock()
}

// cachePolicy returns a file's hinted policy (CacheDefault when none).
// The racy polCount fast path is safe: hints are advisory, and a request
// racing a hint change may legitimately see either side of it.
func (m *Module) cachePolicy(file blockio.FileID) pvfs.CachePolicy {
	if m.polCount.Load() == 0 {
		return pvfs.CacheDefault
	}
	m.polMu.Lock()
	p := m.policies[file]
	m.polMu.Unlock()
	return p
}

// admitMode is a read request's admission decision, fixed once per
// request so every block of the request is treated alike.
type admitMode uint8

const (
	admitDefault admitMode = iota // normal install (policy decides eviction)
	admitMust                     // always admit, pinned protected
	admitNever                    // read-around: serve, never install
)

// readAdmitMode decides how a file's fetched blocks enter the cache:
// per-open hints first (must-cache always admits, don't-cache never
// does), then the streaming bypass — a file whose detected scan streak
// has reached BypassThreshold reads around the cache until the pattern
// breaks.
func (m *Module) readAdmitMode(file blockio.FileID) admitMode {
	switch m.cachePolicy(file) {
	case pvfs.CacheMust:
		return admitMust
	case pvfs.CacheNone:
		return admitNever
	}
	if t := m.cfg.BypassThreshold; t > 0 && m.streamStreak(file) >= t {
		m.cfg.Registry.Counter("module.stream_bypasses").Inc()
		return admitNever
	}
	return admitDefault
}

// fetchBlockSpan fetches one whole block from its iod, installs it in the
// cache, and — when dst is non-nil — copies [off, off+len(dst)) of the
// installed (resident-wins patched) image into dst. Used for
// read-modify-write and for stragglers whose fetch owner failed; both
// need the block resident afterwards (the write path retries its merge
// against it), so this path always admits — don't-cache and bypassed
// files only reach it through read-modify-write, where admission is what
// makes the merge converge. The fetched image lives in a pooled block
// buffer for exactly the duration of the call.
func (m *Module) fetchBlockSpan(iod int, key blockio.BlockKey, off int, dst []byte) error {
	data, mem := m.getBlock()
	defer func() {
		if mem != nil {
			mem.release()
		}
	}()
	must := m.cachePolicy(key.File) == pvfs.CacheMust
	for {
		// The stamp must be read before the iod does: any write applied
		// after this point is detected at install time and retried.
		stamp := m.buf.WriteStamp(key)
		if err := m.readBlockInto(iod, key, data); err != nil {
			return err
		}
		// Resident bytes outrank the fetch; a stale image (the block was
		// written — and possibly flushed and evicted — mid-flight) is
		// refused whole and re-read against the now-current store.
		if m.buf.InstallFetchedAdmit(key, iod, data, must, stamp) != buffer.OutcomeStale {
			break
		}
		m.cfg.Registry.Counter("module.fetch_stale_retries").Inc()
	}
	if dst != nil {
		copy(dst, data[off:off+len(dst)])
	}
	m.cfg.Registry.Counter("module.sync_fetches").Inc()
	return nil
}

// readBlockInto reads one whole block synchronously from its iod into dst
// (a whole-block buffer), zero-filling past what the iod stores.
func (m *Module) readBlockInto(iod int, key blockio.BlockKey, dst []byte) error {
	bs := int64(m.buf.BlockSize())
	res := m.data[iod].Call(&wire.Read{
		Client: m.cfg.ClientID,
		File:   key.File,
		Offset: key.Index * bs,
		Length: bs,
		Track:  true,
	})
	if res.Err != nil {
		return res.Err
	}
	defer res.Release()
	rr, ok := res.Msg.(*wire.ReadResp)
	if !ok {
		return fmt.Errorf("cachemod: unexpected fetch reply %v", res.Msg.WireType())
	}
	if err := rr.Status.Err(); err != nil {
		return err
	}
	n := copy(dst, rr.Data)
	zeroFill(dst[n:]) // pooled buffers carry the previous tenant's bytes
	return nil
}

// zeroFill clears p (the tail of a recycled buffer whose previous contents
// must not masquerade as file data).
func zeroFill(p []byte) { clear(p) }
