package cachemod

// Sequential readahead: the module watches each file's application-level
// read stream — reported by libpvfs through pvfs.ReadPatternHinter, the
// only layer that knows where one request ends and the next begins; the
// pieces of a single striped read would masquerade as a scan at the
// transport. Once requests arrive in ascending, gap-free order the
// prefetcher asynchronously pre-issues the next ReadaheadWindow blocks
// through the same vectored ReadBlocks path the miss engine uses,
// grouped into one request per iod. Prefetched transfers register in the
// shared fetch table, so a demand read arriving while the prefetch is in
// flight joins it, and a demand read arriving after it completes hits
// the cache.
//
// Striping makes this subtle: the module sits below libpvfs, so block
// index arithmetic alone cannot tell which iod stores an upcoming block —
// and an iod served a read for a range it does not hold would answer with
// zeros from the sparse hole in its local store, which must never enter
// the cache as real data. The prefetcher therefore only acts on files
// whose striping geometry libpvfs has hinted (pvfs.StripeHinter →
// CachedTransport.StripeHint) and maps every candidate block to its
// owning iod with the same round-robin arithmetic libpvfs uses.

import (
	"sort"

	"pvfscache/internal/blockio"
	"pvfscache/internal/cachemod/buffer"
	"pvfscache/internal/wire"
)

// raMinStreak is how many pattern-consistent requests must be observed on
// a file before prefetching starts. High enough that workloads which only
// occasionally chain two requests (e.g. 50% locality re-read patterns)
// never engage the prefetcher — prefetching into a cache that locality is
// already using well evicts exactly the blocks about to be re-read.
const raMinStreak = 4

// stripeHint is a file's striping geometry as learned from libpvfs.
type stripeHint struct {
	meta  wire.FileMeta
	total int
}

// Detected stream kinds. Dense ascending scans keep their own kind (their
// window logic tracks coverage, not starts); everything with a constant
// start-to-start delta — forward with gaps, or backward (negative stride)
// — shares raStrided.
const (
	raNone    = iota // no established pattern
	raAscend         // dense ascending scan
	raStrided        // constant-stride scan; stride < 0 is a backward scan
)

// raState tracks one file's access-pattern detector: the shared streak
// machine behind both readahead and the streaming-bypass decision.
type raState struct {
	next   int64 // block index a continuing dense ascending scan would start at
	streak int   // consecutive requests following the detected pattern
	issued int64 // raAscend: exclusive high-water mark of blocks already prefetched

	kind      int   // raNone, raAscend or raStrided
	stride    int64 // raStrided: the constant start-to-start delta
	prevFirst int64 // previous request's first block
	farthest  int64 // raStrided: farthest predicted start already prefetched
	hasFar    bool  // farthest is meaningful
}

// SetStripeHint records a file's striping geometry so the prefetcher can
// route block fetches to the right iod. libpvfs calls it (through
// CachedTransport.StripeHint) whenever it opens or refreshes a file.
func (m *Module) SetStripeHint(file blockio.FileID, meta wire.FileMeta, totalIODs int) {
	if meta.SSize == 0 || meta.PCount == 0 || totalIODs <= 0 {
		return // unusable geometry; leave the file unprefetchable
	}
	m.stripeMu.Lock()
	// Bounded: hints are re-learned on the next open/refresh, so resetting
	// a full table only pauses prefetch briefly instead of letting a
	// many-file workload grow it forever.
	if len(m.stripes) >= maxHintedFiles {
		m.stripes = make(map[blockio.FileID]stripeHint)
	}
	m.stripes[file] = stripeHint{meta: meta, total: totalIODs}
	m.stripeMu.Unlock()
}

// maxHintedFiles bounds the stripe-hint and scan-detector tables; both
// rebuild organically (hints on open/refresh, streaks within a few
// requests), so eviction by reset costs little.
const maxHintedFiles = 4096

// noteAccess feeds one read request's block range [first, last] to the
// file's pattern detector and returns the sorted block indices to
// prefetch now (empty when the access is not part of an established
// scan, or when the window is already in flight). The detector runs even
// with prefetching disabled when the streaming bypass needs its streaks.
func (m *Module) noteAccess(file blockio.FileID, first, last int64) []int64 {
	if m.cfg.ReadaheadWindow == 0 && m.cfg.BypassThreshold <= 0 {
		return nil
	}
	m.raMu.Lock()
	defer m.raMu.Unlock()
	st := m.ra[file]
	if st == nil {
		if len(m.ra) >= maxHintedFiles {
			m.ra = make(map[blockio.FileID]*raState)
		}
		st = &raState{}
		m.ra[file] = st
		st.next = last + 1
		st.streak = 1
		st.prevFirst = first
		return nil
	}
	// A continuation starts exactly where the scan left off, or one block
	// earlier with new ground covered: an unaligned scan (request size
	// not a block multiple) re-touches the previous request's tail block
	// every time and must not read as random. A request entirely inside
	// the tail block (a sub-block-request scan still filling it) is
	// neutral — neither progress nor a reset — so 1 KB sequential reads
	// build their streak on block crossings instead of resetting on
	// every request. Anything else is judged by its start-to-start delta:
	// a delta repeating the established stride continues a strided or
	// backward scan, and any nonzero delta seeds a new strided candidate
	// at streak 2 (two points define a stride) instead of collapsing to 1
	// — the old detector's bug, which made every non-ascending pattern
	// permanently undetectable.
	switch {
	case first == st.next || (first == st.next-1 && last >= st.next):
		if st.kind == raStrided {
			// Pattern change: stride evidence does not carry over, but
			// the previous request and this one already form a pair.
			st.streak = 1
			st.issued = 0
			st.hasFar = false
		}
		st.kind = raAscend
		st.streak++
		st.next = last + 1
	case first >= st.next-1 && last < st.next:
		return nil // neutral: still inside the covered tail block
	default:
		delta := first - st.prevFirst
		if st.kind == raStrided && delta == st.stride {
			st.streak++
			st.next = last + 1
		} else {
			if st.streak >= raMinStreak {
				m.cfg.Registry.Counter("module.readahead_resets").Inc()
			}
			st.issued = 0
			st.hasFar = false
			st.next = last + 1
			if delta != 0 {
				st.kind = raStrided
				st.stride = delta
				st.streak = 2
			} else {
				st.kind = raNone
				st.streak = 1
			}
		}
	}
	st.prevFirst = first
	if st.streak < raMinStreak || m.cfg.ReadaheadWindow == 0 {
		return nil
	}
	window := int64(m.cfg.ReadaheadWindow)
	if st.kind == raAscend {
		// Batched refill: issue nothing while more than half the window
		// is still ahead of the scan, then top the window up in one
		// piece. One prefetch round trip thus covers several demand
		// requests instead of trickling a few blocks per request.
		if remaining := st.issued - (last + 1); remaining > window/2 {
			return nil
		}
		lo := last + 1
		if st.issued > lo {
			lo = st.issued
		}
		hi := last + 1 + window
		if hi <= lo {
			return nil
		}
		st.issued = hi
		pred := make([]int64, 0, hi-lo)
		for idx := lo; idx < hi; idx++ {
			pred = append(pred, idx)
		}
		return pred
	}
	// Strided or backward: replay the stride ahead of the scan, one
	// request's span per step, up to a window's worth of blocks. farthest
	// remembers the last predicted start so the steady state issues one
	// step per access instead of re-predicting the whole window.
	span := last - first + 1
	if span <= 0 {
		return nil
	}
	maxSteps := window / span
	if maxSteps < 1 {
		maxSteps = 1
	}
	var pred []int64
	for k := int64(1); k <= maxSteps; k++ {
		start := first + k*st.stride
		if start < 0 {
			break // a backward scan ran off the file's front
		}
		if st.hasFar &&
			((st.stride > 0 && start <= st.farthest) ||
				(st.stride < 0 && start >= st.farthest)) {
			continue // already predicted on an earlier access
		}
		for j := int64(0); j < span; j++ {
			pred = append(pred, start+j)
		}
		st.farthest = start
		st.hasFar = true
	}
	if st.stride < 0 {
		// Backward predictions come out descending; the per-iod extent
		// grouping downstream assumes ascending indices.
		sort.Slice(pred, func(i, j int) bool { return pred[i] < pred[j] })
	}
	return pred
}

// streamStreak reports the current detector streak for a file — the
// bypass decision's input. Zero when the file has no established pattern.
func (m *Module) streamStreak(file blockio.FileID) int {
	m.raMu.Lock()
	st := m.ra[file]
	streak := 0
	if st != nil && st.kind != raNone {
		streak = st.streak
	}
	m.raMu.Unlock()
	return streak
}

// maybeReadahead runs the detector for one application-level read (via
// CachedTransport.NoteRead) and launches the prefetcher when a scan is
// established. The window's blocks are CLAIMED in the fetch table
// synchronously, on the caller's thread, before the demand read proceeds
// — if the claims were left to a goroutine, a fast scan could race past
// the window before the goroutine ran, find nothing claimed, duplicate
// every fetch, and starve the prefetcher permanently. With the claims in
// place, a demand read that catches up simply joins the in-flight
// prefetch. Only the network round trips run asynchronously.
func (m *Module) maybeReadahead(file blockio.FileID, first, last int64) {
	pred := m.noteAccess(file, first, last)
	if len(pred) == 0 {
		return
	}
	m.stripeMu.Lock()
	hint, ok := m.stripes[file]
	m.stripeMu.Unlock()
	if !ok {
		return // no geometry: cannot route blocks to iods safely
	}
	m.prefetchRange(file, hint, pred)
}

// iodForBlock maps one block to the iod storing it, or -1 when the block
// does not map cleanly to a single daemon (strip size not a multiple of
// the block size, or corrupt geometry). Same round-robin arithmetic as
// pvfs.PiecesFor, specialized to one block so the per-refill routing
// loop stays allocation-free.
func (m *Module) iodForBlock(hint stripeHint, idx int64) int {
	bs := int64(m.buf.BlockSize())
	ssize := int64(hint.meta.SSize)
	pcount := int64(hint.meta.PCount)
	if ssize <= 0 || pcount <= 0 || ssize%bs != 0 {
		return -1 // a block straddling strips has no single owner
	}
	strip := idx * bs / ssize
	iod := int((int64(hint.meta.Base) + strip%pcount) % int64(hint.total))
	if iod < 0 || iod >= len(m.data) {
		return -1
	}
	return iod
}

// prefetchRange claims the uncached, un-inflight blocks of the predicted
// index list (sorted ascending, duplicates tolerated) synchronously,
// groups them per owning iod, and issues one asynchronous vectored read
// per iod. Prefetches inherit the file's admission mode: a stream being
// bypassed keeps its readahead pipelining, but the prefetched blocks are
// served around the cache like its demand reads.
func (m *Module) prefetchRange(file blockio.FileID, hint stripeHint, idxs []int64) {
	bs := m.buf.BlockSize()
	mode := m.readAdmitMode(file)
	type claim struct {
		key blockio.BlockKey
		st  *fetchState
	}
	perIOD := make(map[int][]claim)
	for _, idx := range idxs {
		iod := m.iodForBlock(hint, idx)
		if iod < 0 {
			continue
		}
		key := blockio.BlockKey{File: file, Index: idx}
		if m.buf.Contains(key, 0, bs) {
			continue
		}
		// Stamp before registration: a write applied after this point is
		// detected at install time (see fetchState.stamp).
		stamp := m.buf.WriteStamp(key)
		m.fetchMu.Lock()
		if m.fetches[key] != nil {
			m.fetchMu.Unlock()
			continue // a demand fetch or earlier prefetch owns it
		}
		st := newFetchState(true)
		st.stamp = stamp
		m.fetches[key] = st
		m.fetchMu.Unlock()
		perIOD[iod] = append(perIOD[iod], claim{key: key, st: st})
	}
	// One asynchronous request per iod, chunked so no request's extents
	// can exceed what a response frame carries (large windows over large
	// blocks would otherwise be rejected whole by the iod).
	maxBlocks := maxFetchBlocks(bs)
	for iod, claims := range perIOD {
		for start := 0; start < len(claims); start += maxBlocks {
			end := start + maxBlocks
			if end > len(claims) {
				end = len(claims)
			}
			chunk := claims[start:end]
			keys := make([]blockio.BlockKey, len(chunk))
			states := make([]*fetchState, len(chunk))
			for i, c := range chunk {
				keys[i] = c.key
				states[i] = c.st
			}
			go m.prefetchIOD(iod, file, keys, states, mode)
		}
	}
}

// prefetchIOD fetches the claimed blocks (ascending, possibly with gaps)
// from one iod in a single vectored round trip and installs the results
// (or, for a bypassed stream, serves them to joiners without admission).
func (m *Module) prefetchIOD(iod int, file blockio.FileID, keys []blockio.BlockKey, states []*fetchState, mode admitMode) {
	bs := m.buf.BlockSize()
	// Group consecutive block indices into extents.
	var exts []wire.ReadExtent
	runStart := 0
	flush := func(end int) {
		exts = append(exts, wire.ReadExtent{
			Offset: keys[runStart].Index * int64(bs),
			Length: int64(end-runStart) * int64(bs),
		})
		runStart = end
	}
	for i := 1; i < len(keys); i++ {
		if keys[i].Index != keys[i-1].Index+1 {
			flush(i)
		}
	}
	flush(len(keys))

	publishFail := func(err error) {
		m.fetchMu.Lock()
		for i, key := range keys {
			if m.fetches[key] == states[i] {
				delete(m.fetches, key)
			}
			states[i].err = err
		}
		m.fetchMu.Unlock()
		for _, st := range states {
			close(st.done)
			st.decref() // the prefetcher's hold; no data was published
		}
	}

	res := m.data[iod].Call(&wire.ReadBlocks{
		Client: m.cfg.ClientID,
		File:   file,
		Track:  mode != admitNever, // bypassed blocks never enter the cache
		Exts:   exts,
	})
	if res.Err != nil {
		publishFail(res.Err)
		return
	}
	defer res.Release() // response payload is copied per block below
	rr, ok := res.Msg.(*wire.ReadBlocksResp)
	if !ok || rr.Status != wire.StatusOK || len(rr.Lens) != len(exts) {
		publishFail(wire.ErrBadRequest)
		return
	}
	m.cfg.Registry.Counter("module.prefetch_issued").Inc()

	// Walk the packed response extent by extent, block by block. An
	// overlong per-extent length (hostile iod; decode only checks that
	// the lengths tile Data) would shift later extents' bytes into the
	// wrong blocks — reject the whole response instead.
	for ei, ext := range exts {
		if int64(rr.Lens[ei]) > ext.Length {
			publishFail(wire.ErrBadRequest)
			return
		}
	}
	data := rr.Data
	ki := 0
	for ei, ext := range exts {
		served := int(rr.Lens[ei])
		nblocks := int(ext.Length) / bs
		for j := 0; j < nblocks; j++ {
			key, st := keys[ki], states[ki]
			ki++
			start := j * bs
			if start >= served {
				// Nothing stored here: do not cache. A genuine hole
				// would be safe to cache as zeros, but a response this
				// short can also mean the extent fell outside the data
				// the iod holds, so drop it and let a demand read
				// decide.
				m.fetchMu.Lock()
				if m.fetches[key] == st {
					delete(m.fetches, key)
				}
				m.fetchMu.Unlock()
				close(st.done)
				st.decref()
				continue
			}
			// One copy: leased response frame to a pooled whole-block
			// buffer, which backs the cache install, any fetch joiners,
			// and the readahead mark — and returns to the pool when the
			// last of them lets go.
			blockData, mem := m.getBlock()
			n := copy(blockData, data[start:served])
			zeroFill(blockData[n:])
			var oc buffer.Outcome
			switch mode {
			case admitNever:
				// Read-around: the stream's blocks never enter the
				// cache, but any newer resident bytes still outrank the
				// fetched image before joiners see it.
				oc = m.buf.PatchResident(key, blockData, st.stamp)
			case admitMust:
				oc = m.buf.InstallFetchedAdmit(key, iod, blockData, true, st.stamp)
			default:
				// resident bytes outrank the prefetch
				oc = m.buf.InstallFetched(key, iod, blockData, st.stamp)
			}
			if oc == buffer.OutcomeStale {
				// The block was written while the prefetch was in flight
				// (and the write may already be flushed and evicted): the
				// image must not be installed or served. A prefetch is
				// speculative — drop it rather than re-read; joiners see
				// no data and fall back to their own synchronous fetch,
				// and a demand miss re-reads the current store.
				m.cfg.Registry.Counter("module.prefetch_stale_drops").Inc()
				m.fetchMu.Lock()
				if m.fetches[key] == st {
					delete(m.fetches, key)
				}
				m.fetchMu.Unlock()
				close(st.done)
				st.decref()
				if mem != nil {
					mem.release()
				}
				continue
			}
			st.finalStamp = st.stamp
			m.publishFetched(st, key, blockData, mem)
			if mode != admitNever {
				m.raMu.Lock()
				// The marks are accounting only; evicted-before-hit
				// blocks leave stale entries behind, so reset rather
				// than grow without bound.
				if len(m.prefetched) >= 2*m.buf.Capacity() {
					m.prefetched = make(map[blockio.BlockKey]struct{})
					m.prefetchMarks.Store(0)
				}
				if _, dup := m.prefetched[key]; !dup {
					m.prefetched[key] = struct{}{}
					m.prefetchMarks.Add(1)
				}
				m.raMu.Unlock()
			}
			st.decref() // the prefetcher's hold; joiners keep the block alive
			if mem != nil {
				mem.release() // the creator's hold
			}
			m.cfg.Registry.Counter("module.prefetch_blocks").Inc()
		}
		data = data[served:]
	}
}

// notePrefetchHit counts a demand access served by a prefetched block
// (once per block: the mark clears on first use). It runs on every
// cache-hit span, so the no-marks case — every workload that is not
// mid-scan — must not touch the shared mutex. The racy fast-path load is
// safe because the marks are accounting only.
func (m *Module) notePrefetchHit(key blockio.BlockKey) {
	if m.prefetchMarks.Load() == 0 {
		return
	}
	m.raMu.Lock()
	_, ok := m.prefetched[key]
	if ok {
		delete(m.prefetched, key)
		m.prefetchMarks.Add(-1)
	}
	m.raMu.Unlock()
	if ok {
		m.cfg.Registry.Counter("module.prefetch_hits").Inc()
	}
}

// dropPrefetchMark forgets a block's prefetched mark (invalidation).
func (m *Module) dropPrefetchMark(key blockio.BlockKey) {
	if m.prefetchMarks.Load() == 0 {
		return
	}
	m.raMu.Lock()
	if _, ok := m.prefetched[key]; ok {
		delete(m.prefetched, key)
		m.prefetchMarks.Add(-1)
	}
	m.raMu.Unlock()
}
