package cachemod

// Sequential readahead: the module watches each file's application-level
// read stream — reported by libpvfs through pvfs.ReadPatternHinter, the
// only layer that knows where one request ends and the next begins; the
// pieces of a single striped read would masquerade as a scan at the
// transport. Once requests arrive in ascending, gap-free order the
// prefetcher asynchronously pre-issues the next ReadaheadWindow blocks
// through the same vectored ReadBlocks path the miss engine uses,
// grouped into one request per iod. Prefetched transfers register in the
// shared fetch table, so a demand read arriving while the prefetch is in
// flight joins it, and a demand read arriving after it completes hits
// the cache.
//
// Striping makes this subtle: the module sits below libpvfs, so block
// index arithmetic alone cannot tell which iod stores an upcoming block —
// and an iod served a read for a range it does not hold would answer with
// zeros from the sparse hole in its local store, which must never enter
// the cache as real data. The prefetcher therefore only acts on files
// whose striping geometry libpvfs has hinted (pvfs.StripeHinter →
// CachedTransport.StripeHint) and maps every candidate block to its
// owning iod with the same round-robin arithmetic libpvfs uses.

import (
	"pvfscache/internal/blockio"
	"pvfscache/internal/wire"
)

// raMinStreak is how many gap-free ascending requests must be observed on
// a file before prefetching starts. High enough that workloads which only
// occasionally chain two requests (e.g. 50% locality re-read patterns)
// never engage the prefetcher — prefetching into a cache that locality is
// already using well evicts exactly the blocks about to be re-read.
const raMinStreak = 4

// stripeHint is a file's striping geometry as learned from libpvfs.
type stripeHint struct {
	meta  wire.FileMeta
	total int
}

// raState tracks one file's sequential-access detector.
type raState struct {
	next   int64 // block index a continuing scan would start at
	streak int   // consecutive gap-free ascending requests seen
	issued int64 // exclusive high-water mark of blocks already prefetched
}

// SetStripeHint records a file's striping geometry so the prefetcher can
// route block fetches to the right iod. libpvfs calls it (through
// CachedTransport.StripeHint) whenever it opens or refreshes a file.
func (m *Module) SetStripeHint(file blockio.FileID, meta wire.FileMeta, totalIODs int) {
	if meta.SSize == 0 || meta.PCount == 0 || totalIODs <= 0 {
		return // unusable geometry; leave the file unprefetchable
	}
	m.stripeMu.Lock()
	// Bounded: hints are re-learned on the next open/refresh, so resetting
	// a full table only pauses prefetch briefly instead of letting a
	// many-file workload grow it forever.
	if len(m.stripes) >= maxHintedFiles {
		m.stripes = make(map[blockio.FileID]stripeHint)
	}
	m.stripes[file] = stripeHint{meta: meta, total: totalIODs}
	m.stripeMu.Unlock()
}

// maxHintedFiles bounds the stripe-hint and scan-detector tables; both
// rebuild organically (hints on open/refresh, streaks within a few
// requests), so eviction by reset costs little.
const maxHintedFiles = 4096

// noteAccess feeds one read request's block range [first, last] to the
// file's sequential detector and returns the half-open block range
// [lo, hi) to prefetch now (empty when the access is not part of an
// established ascending scan, or when the window is already in flight).
func (m *Module) noteAccess(file blockio.FileID, first, last int64) (lo, hi int64) {
	if m.cfg.ReadaheadWindow == 0 {
		return 0, 0
	}
	m.raMu.Lock()
	defer m.raMu.Unlock()
	st := m.ra[file]
	if st == nil {
		if len(m.ra) >= maxHintedFiles {
			m.ra = make(map[blockio.FileID]*raState)
		}
		st = &raState{}
		m.ra[file] = st
		st.next = last + 1
		st.streak = 1
		return 0, 0
	}
	// A continuation starts exactly where the scan left off, or one block
	// earlier with new ground covered: an unaligned scan (request size
	// not a block multiple) re-touches the previous request's tail block
	// every time and must not read as random. A request entirely inside
	// the tail block (a sub-block-request scan still filling it) is
	// neutral — neither progress nor a reset — so 1 KB sequential reads
	// build their streak on block crossings instead of resetting on
	// every request.
	switch {
	case first == st.next || (first == st.next-1 && last >= st.next):
		st.streak++
		st.next = last + 1
	case first >= st.next-1 && last < st.next:
		return 0, 0 // neutral: still inside the covered tail block
	default:
		if st.streak >= raMinStreak {
			m.cfg.Registry.Counter("module.readahead_resets").Inc()
		}
		st.streak = 1
		st.issued = 0
		st.next = last + 1
	}
	if st.streak < raMinStreak {
		return 0, 0
	}
	// Batched refill: issue nothing while more than half the window is
	// still ahead of the scan, then top the window up in one piece. One
	// prefetch round trip thus covers several demand requests instead of
	// trickling a few blocks per request.
	window := int64(m.cfg.ReadaheadWindow)
	if remaining := st.issued - (last + 1); remaining > window/2 {
		return 0, 0
	}
	lo = last + 1
	if st.issued > lo {
		lo = st.issued
	}
	hi = last + 1 + window
	if hi <= lo {
		return 0, 0
	}
	st.issued = hi
	return lo, hi
}

// maybeReadahead runs the detector for one application-level read (via
// CachedTransport.NoteRead) and launches the prefetcher when a scan is
// established. The window's blocks are CLAIMED in the fetch table
// synchronously, on the caller's thread, before the demand read proceeds
// — if the claims were left to a goroutine, a fast scan could race past
// the window before the goroutine ran, find nothing claimed, duplicate
// every fetch, and starve the prefetcher permanently. With the claims in
// place, a demand read that catches up simply joins the in-flight
// prefetch. Only the network round trips run asynchronously.
func (m *Module) maybeReadahead(file blockio.FileID, first, last int64) {
	lo, hi := m.noteAccess(file, first, last)
	if hi <= lo {
		return
	}
	m.stripeMu.Lock()
	hint, ok := m.stripes[file]
	m.stripeMu.Unlock()
	if !ok {
		return // no geometry: cannot route blocks to iods safely
	}
	m.prefetchRange(file, hint, lo, hi)
}

// iodForBlock maps one block to the iod storing it, or -1 when the block
// does not map cleanly to a single daemon (strip size not a multiple of
// the block size, or corrupt geometry). Same round-robin arithmetic as
// pvfs.PiecesFor, specialized to one block so the per-refill routing
// loop stays allocation-free.
func (m *Module) iodForBlock(hint stripeHint, idx int64) int {
	bs := int64(m.buf.BlockSize())
	ssize := int64(hint.meta.SSize)
	pcount := int64(hint.meta.PCount)
	if ssize <= 0 || pcount <= 0 || ssize%bs != 0 {
		return -1 // a block straddling strips has no single owner
	}
	strip := idx * bs / ssize
	iod := int((int64(hint.meta.Base) + strip%pcount) % int64(hint.total))
	if iod < 0 || iod >= len(m.data) {
		return -1
	}
	return iod
}

// prefetchRange claims the uncached, un-inflight blocks of [lo, hi)
// synchronously, groups them per owning iod, and issues one asynchronous
// vectored read per iod.
func (m *Module) prefetchRange(file blockio.FileID, hint stripeHint, lo, hi int64) {
	bs := m.buf.BlockSize()
	type claim struct {
		key blockio.BlockKey
		st  *fetchState
	}
	perIOD := make(map[int][]claim)
	for idx := lo; idx < hi; idx++ {
		iod := m.iodForBlock(hint, idx)
		if iod < 0 {
			continue
		}
		key := blockio.BlockKey{File: file, Index: idx}
		if m.buf.Contains(key, 0, bs) {
			continue
		}
		m.fetchMu.Lock()
		if m.fetches[key] != nil {
			m.fetchMu.Unlock()
			continue // a demand fetch or earlier prefetch owns it
		}
		st := newFetchState(true)
		m.fetches[key] = st
		m.fetchMu.Unlock()
		perIOD[iod] = append(perIOD[iod], claim{key: key, st: st})
	}
	// One asynchronous request per iod, chunked so no request's extents
	// can exceed what a response frame carries (large windows over large
	// blocks would otherwise be rejected whole by the iod).
	maxBlocks := maxFetchBlocks(bs)
	for iod, claims := range perIOD {
		for start := 0; start < len(claims); start += maxBlocks {
			end := start + maxBlocks
			if end > len(claims) {
				end = len(claims)
			}
			chunk := claims[start:end]
			keys := make([]blockio.BlockKey, len(chunk))
			states := make([]*fetchState, len(chunk))
			for i, c := range chunk {
				keys[i] = c.key
				states[i] = c.st
			}
			go m.prefetchIOD(iod, file, keys, states)
		}
	}
}

// prefetchIOD fetches the claimed blocks (ascending, possibly with gaps)
// from one iod in a single vectored round trip and installs the results.
func (m *Module) prefetchIOD(iod int, file blockio.FileID, keys []blockio.BlockKey, states []*fetchState) {
	bs := m.buf.BlockSize()
	// Group consecutive block indices into extents.
	var exts []wire.ReadExtent
	runStart := 0
	flush := func(end int) {
		exts = append(exts, wire.ReadExtent{
			Offset: keys[runStart].Index * int64(bs),
			Length: int64(end-runStart) * int64(bs),
		})
		runStart = end
	}
	for i := 1; i < len(keys); i++ {
		if keys[i].Index != keys[i-1].Index+1 {
			flush(i)
		}
	}
	flush(len(keys))

	publishFail := func(err error) {
		m.fetchMu.Lock()
		for i, key := range keys {
			if m.fetches[key] == states[i] {
				delete(m.fetches, key)
			}
			states[i].err = err
		}
		m.fetchMu.Unlock()
		for _, st := range states {
			close(st.done)
			st.decref() // the prefetcher's hold; no data was published
		}
	}

	res := m.data[iod].Call(&wire.ReadBlocks{
		Client: m.cfg.ClientID,
		File:   file,
		Track:  true,
		Exts:   exts,
	})
	if res.Err != nil {
		publishFail(res.Err)
		return
	}
	defer res.Release() // response payload is copied per block below
	rr, ok := res.Msg.(*wire.ReadBlocksResp)
	if !ok || rr.Status != wire.StatusOK || len(rr.Lens) != len(exts) {
		publishFail(wire.ErrBadRequest)
		return
	}
	m.cfg.Registry.Counter("module.prefetch_issued").Inc()

	// Walk the packed response extent by extent, block by block. An
	// overlong per-extent length (hostile iod; decode only checks that
	// the lengths tile Data) would shift later extents' bytes into the
	// wrong blocks — reject the whole response instead.
	for ei, ext := range exts {
		if int64(rr.Lens[ei]) > ext.Length {
			publishFail(wire.ErrBadRequest)
			return
		}
	}
	data := rr.Data
	ki := 0
	for ei, ext := range exts {
		served := int(rr.Lens[ei])
		nblocks := int(ext.Length) / bs
		for j := 0; j < nblocks; j++ {
			key, st := keys[ki], states[ki]
			ki++
			start := j * bs
			if start >= served {
				// Nothing stored here: do not cache. A genuine hole
				// would be safe to cache as zeros, but a response this
				// short can also mean the extent fell outside the data
				// the iod holds, so drop it and let a demand read
				// decide.
				m.fetchMu.Lock()
				if m.fetches[key] == st {
					delete(m.fetches, key)
				}
				m.fetchMu.Unlock()
				close(st.done)
				st.decref()
				continue
			}
			// One copy: leased response frame to a pooled whole-block
			// buffer, which backs the cache install, any fetch joiners,
			// and the readahead mark — and returns to the pool when the
			// last of them lets go.
			blockData, mem := m.getBlock()
			n := copy(blockData, data[start:served])
			zeroFill(blockData[n:])
			m.buf.InstallFetched(key, iod, blockData) // resident bytes outrank the prefetch
			m.publishFetched(st, key, blockData, mem)
			m.raMu.Lock()
			// The marks are accounting only; evicted-before-hit blocks
			// leave stale entries behind, so reset rather than grow
			// without bound.
			if len(m.prefetched) >= 2*m.buf.Capacity() {
				m.prefetched = make(map[blockio.BlockKey]struct{})
				m.prefetchMarks.Store(0)
			}
			if _, dup := m.prefetched[key]; !dup {
				m.prefetched[key] = struct{}{}
				m.prefetchMarks.Add(1)
			}
			m.raMu.Unlock()
			st.decref() // the prefetcher's hold; joiners keep the block alive
			if mem != nil {
				mem.release() // the creator's hold
			}
			m.cfg.Registry.Counter("module.prefetch_blocks").Inc()
		}
		data = data[served:]
	}
}

// notePrefetchHit counts a demand access served by a prefetched block
// (once per block: the mark clears on first use). It runs on every
// cache-hit span, so the no-marks case — every workload that is not
// mid-scan — must not touch the shared mutex. The racy fast-path load is
// safe because the marks are accounting only.
func (m *Module) notePrefetchHit(key blockio.BlockKey) {
	if m.prefetchMarks.Load() == 0 {
		return
	}
	m.raMu.Lock()
	_, ok := m.prefetched[key]
	if ok {
		delete(m.prefetched, key)
		m.prefetchMarks.Add(-1)
	}
	m.raMu.Unlock()
	if ok {
		m.cfg.Registry.Counter("module.prefetch_hits").Inc()
	}
}

// dropPrefetchMark forgets a block's prefetched mark (invalidation).
func (m *Module) dropPrefetchMark(key blockio.BlockKey) {
	if m.prefetchMarks.Load() == 0 {
		return
	}
	m.raMu.Lock()
	if _, ok := m.prefetched[key]; ok {
		delete(m.prefetched, key)
		m.prefetchMarks.Add(-1)
	}
	m.raMu.Unlock()
}
