package cachemod

import (
	"fmt"
	"sync"

	"pvfscache/internal/transport"
	"pvfscache/internal/wire"
)

// rpcResult is a completed round trip.
type rpcResult struct {
	msg wire.Message
	err error
}

// rpcClient multiplexes the cache module's own traffic to one iod port over
// a single connection. Requests from every application process on the node
// funnel through it — the module is the per-node serializing point the
// paper places in the kernel. Responses arrive in request order (the iod is
// a FIFO request/response server), so a reader goroutine hands each
// incoming message to the oldest waiter.
type rpcClient struct {
	network transport.Network
	addr    string

	mu     sync.Mutex
	conn   transport.Conn
	queue  []chan rpcResult
	broken error // sticky failure until redial
}

func newRPCClient(network transport.Network, addr string) *rpcClient {
	return &rpcClient{network: network, addr: addr}
}

// call writes req and returns a channel that yields the response. The
// channel receives exactly one result.
func (r *rpcClient) call(req wire.Message) (<-chan rpcResult, error) {
	ch := make(chan rpcResult, 1)
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.broken != nil {
		// One redial attempt per call after a failure.
		r.broken = nil
	}
	if r.conn == nil {
		conn, err := r.network.Dial(r.addr)
		if err != nil {
			return nil, fmt.Errorf("cachemod: dialing %s: %w", r.addr, err)
		}
		r.conn = conn
		go r.readLoop(conn)
	}
	if err := wire.WriteMessage(r.conn, req); err != nil {
		r.failLocked(err)
		return nil, fmt.Errorf("cachemod: sending %v to %s: %w", req.WireType(), r.addr, err)
	}
	r.queue = append(r.queue, ch)
	return ch, nil
}

// roundTrip is the synchronous form of call.
func (r *rpcClient) roundTrip(req wire.Message) (wire.Message, error) {
	ch, err := r.call(req)
	if err != nil {
		return nil, err
	}
	res := <-ch
	return res.msg, res.err
}

// readLoop delivers responses from conn to waiters in FIFO order.
func (r *rpcClient) readLoop(conn transport.Conn) {
	for {
		msg, err := wire.ReadMessage(conn)
		r.mu.Lock()
		if r.conn != conn {
			// A newer connection replaced this one; stop quietly.
			r.mu.Unlock()
			return
		}
		if err != nil {
			r.failLocked(err)
			r.mu.Unlock()
			return
		}
		if len(r.queue) == 0 {
			// Response with no waiter: protocol corruption.
			r.failLocked(fmt.Errorf("cachemod: unsolicited %v from %s", msg.WireType(), r.addr))
			r.mu.Unlock()
			return
		}
		ch := r.queue[0]
		r.queue = r.queue[1:]
		r.mu.Unlock()
		ch <- rpcResult{msg: msg}
	}
}

// failLocked tears down the connection and fails every waiter.
func (r *rpcClient) failLocked(err error) {
	if r.conn != nil {
		r.conn.Close()
		r.conn = nil
	}
	r.broken = err
	for _, ch := range r.queue {
		ch <- rpcResult{err: err}
	}
	r.queue = nil
}

// close shuts the connection down; in-flight calls fail.
func (r *rpcClient) close() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.failLocked(transport.ErrClosed)
}
