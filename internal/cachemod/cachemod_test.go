package cachemod

import (
	"bytes"
	"sync"
	"testing"
	"time"

	"pvfscache/internal/blockio"
	"pvfscache/internal/cachemod/buffer"
	"pvfscache/internal/iod"
	"pvfscache/internal/metrics"
	"pvfscache/internal/pvfs"
	"pvfscache/internal/transport"
	"pvfscache/internal/wire"
)

// rig is a two-iod test harness with one cache module.
type rig struct {
	net   *transport.MemNetwork
	iods  []*iod.Server
	mod   *Module
	reg   *metrics.Registry
	addrs []string
}

func newRig(t *testing.T, cfgEdit func(*Config)) *rig {
	t.Helper()
	net := transport.NewMem()
	reg := metrics.NewRegistry()
	r := &rig{net: net, reg: reg}
	var dataAddrs, flushAddrs []string
	for i := 0; i < 2; i++ {
		d := iod.New(i, 4096, net, reg)
		r.iods = append(r.iods, d)
		dl, err := net.Listen("")
		if err != nil {
			t.Fatal(err)
		}
		fl, err := net.Listen("")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { dl.Close(); fl.Close() })
		go d.ServeData(dl)
		go d.ServeFlush(fl)
		dataAddrs = append(dataAddrs, dl.Addr())
		flushAddrs = append(flushAddrs, fl.Addr())
	}
	r.addrs = dataAddrs
	cfg := Config{
		Network:       net,
		ClientID:      1,
		IODDataAddrs:  dataAddrs,
		IODFlushAddrs: flushAddrs,
		Buffer:        buffer.Config{BlockSize: 4096, Capacity: 64},
		FlushPeriod:   20 * time.Millisecond,
		Registry:      reg,
	}
	if cfgEdit != nil {
		cfgEdit(&cfg)
	}
	mod, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { mod.Close() })
	r.mod = mod
	return r
}

// seed stores bytes directly at an iod.
func (r *rig) seed(iodIdx int, file blockio.FileID, off int64, data []byte) {
	r.iods[iodIdx].Store().WriteAt(file, off, data)
}

// sendRecv runs one Send/Recv pair on a transport.
func sendRecv(t *testing.T, tr pvfs.Transport, iodIdx int, req wire.Message) wire.Message {
	t.Helper()
	id, err := tr.Send(iodIdx, req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := tr.Recv(id)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func TestReadMissThenHit(t *testing.T) {
	r := newRig(t, nil)
	data := bytes.Repeat([]byte{0xAD}, 8192)
	r.seed(0, 5, 0, data)

	tr := r.mod.NewTransport()
	before := r.reg.Snapshot()
	resp := sendRecv(t, tr, 0, &wire.Read{File: 5, Offset: 0, Length: 8192}).(*wire.ReadResp)
	if !bytes.Equal(resp.Data, data) {
		t.Fatal("first read wrong data")
	}
	mid := r.reg.Snapshot()
	if d := mid.Diff(before); d["iod.reads"] == 0 {
		t.Fatal("first read should reach the iod")
	}
	resp = sendRecv(t, tr, 0, &wire.Read{File: 5, Offset: 0, Length: 8192}).(*wire.ReadResp)
	if !bytes.Equal(resp.Data, data) {
		t.Fatal("second read wrong data")
	}
	if d := r.reg.Snapshot().Diff(mid); d["iod.reads"] != 0 {
		t.Fatalf("second read hit the network (%d iod reads)", d["iod.reads"])
	}
}

func TestPartialHitSplitsRequest(t *testing.T) {
	// Cache the middle block of a three-block range, then read the whole
	// range: the cached block splits the misses into two runs, but both
	// runs leave in ONE vectored sub-request carrying two extents — a
	// cache hit in the middle of a request costs an extent boundary, not
	// an extra round trip.
	r := newRig(t, nil)
	data := bytes.Repeat([]byte{7}, 3*4096)
	r.seed(0, 9, 0, data)

	tr := r.mod.NewTransport()
	// Fault in just the middle block.
	sendRecv(t, tr, 0, &wire.Read{File: 9, Offset: 4096, Length: 4096})

	before := r.reg.Snapshot()
	resp := sendRecv(t, tr, 0, &wire.Read{File: 9, Offset: 0, Length: 3 * 4096}).(*wire.ReadResp)
	if !bytes.Equal(resp.Data, data) {
		t.Fatal("split read wrong data")
	}
	d := r.reg.Snapshot().Diff(before)
	if d["module.read_subrequests"] != 1 {
		t.Fatalf("sub-requests = %d, want 1 (vectored)", d["module.read_subrequests"])
	}
	if d["module.read_vector_fetches"] != 1 {
		t.Fatalf("vector fetches = %d, want 1", d["module.read_vector_fetches"])
	}
	if d["iod.reads"] != 1 || d["iod.vector_extents"] != 2 {
		t.Fatalf("iod reads = %d (vector extents %d), want one round trip with 2 extents",
			d["iod.reads"], d["iod.vector_extents"])
	}
}

func TestPartialHitLegacySplitsRequest(t *testing.T) {
	// With DisableVector the module reverts to the seed shape: one Read
	// per run of consecutive missing blocks.
	r := newRig(t, func(c *Config) { c.DisableVector = true })
	data := bytes.Repeat([]byte{7}, 3*4096)
	r.seed(0, 9, 0, data)

	tr := r.mod.NewTransport()
	sendRecv(t, tr, 0, &wire.Read{File: 9, Offset: 4096, Length: 4096})

	before := r.reg.Snapshot()
	resp := sendRecv(t, tr, 0, &wire.Read{File: 9, Offset: 0, Length: 3 * 4096}).(*wire.ReadResp)
	if !bytes.Equal(resp.Data, data) {
		t.Fatal("split read wrong data")
	}
	d := r.reg.Snapshot().Diff(before)
	if d["module.read_subrequests"] != 2 {
		t.Fatalf("sub-requests = %d, want 2 (split around cached block)", d["module.read_subrequests"])
	}
	if d["iod.reads"] != 2 {
		t.Fatalf("iod reads = %d, want 2", d["iod.reads"])
	}
}

func TestSplitRunsBoundsFetchSize(t *testing.T) {
	mkRun := func(first int64, n int) fetchRun {
		run := fetchRun{firstIdx: first}
		for i := 0; i < n; i++ {
			idx := first + int64(i)
			run.keys = append(run.keys, blockio.BlockKey{File: 1, Index: idx})
			run.states = append(run.states, newFetchState(false))
			run.spans = append(run.spans, tgtSpan{sp: blockio.Span{Key: blockio.BlockKey{File: 1, Index: idx}, Len: 1024}})
		}
		return run
	}
	small := mkRun(0, 3)
	big := mkRun(10, 10)
	out := splitRuns([]fetchRun{small, big}, 4)
	if len(out) != 4 { // 3-block run intact, 10-block run split 4+4+2
		t.Fatalf("split into %d runs, want 4", len(out))
	}
	wantFirst := []int64{0, 10, 14, 18}
	wantN := []int{3, 4, 4, 2}
	for i, run := range out {
		if run.firstIdx != wantFirst[i] || len(run.keys) != wantN[i] || len(run.states) != wantN[i] {
			t.Fatalf("run %d = first %d n %d, want first %d n %d",
				i, run.firstIdx, len(run.keys), wantFirst[i], wantN[i])
		}
		if len(run.spans) != wantN[i] {
			t.Fatalf("run %d carries %d spans, want %d", i, len(run.spans), wantN[i])
		}
		for _, ts := range run.spans {
			if ts.sp.Key.Index < run.firstIdx || ts.sp.Key.Index > run.keys[len(run.keys)-1].Index {
				t.Fatalf("run %d span for block %d out of range", i, ts.sp.Key.Index)
			}
		}
	}
}

// TestSubBlockStridedReadSplitsFetches reproduces the rounding-inflation
// regression: sub-block extents at block stride each round up to a full
// cache block, so a ~9 MB request inflates to ~37 MB of block fetches —
// past what one response frame may carry. The miss engine must split the
// fetch into several round trips instead of letting the iod reject it.
func TestSubBlockStridedReadSplitsFetches(t *testing.T) {
	r := newRig(t, nil)
	const file = 40
	const nblocks = 9000 // 9000 × 4 KB of rounded blocks ≈ 36.9 MB > 32 MB
	data := bytes.Repeat([]byte{0xE7}, nblocks*4096)
	r.seed(0, file, 0, data)

	tr := r.mod.NewTransport()
	exts := make([]wire.ReadExtent, nblocks)
	for i := range exts {
		exts[i] = wire.ReadExtent{Offset: int64(i) * 4096, Length: 1024}
	}
	before := r.reg.Snapshot()
	resp := sendRecv(t, tr, 0, &wire.ReadBlocks{File: file, Exts: exts}).(*wire.ReadBlocksResp)
	if resp.Status != wire.StatusOK {
		t.Fatalf("status %d", resp.Status)
	}
	pos := 0
	for i, l := range resp.Lens {
		if l != 1024 {
			t.Fatalf("extent %d served %d bytes", i, l)
		}
		if !bytes.Equal(resp.Data[pos:pos+1024], data[i*4096:i*4096+1024]) {
			t.Fatalf("extent %d data wrong", i)
		}
		pos += 1024
	}
	d := r.reg.Snapshot().Diff(before)
	if d["iod.reads"] != 2 { // 8191-block batch + 809-block batch
		t.Fatalf("iod reads = %d, want 2 (split fetch)", d["iod.reads"])
	}
}

// TestFillFromResponseRejectsOverlongLens: the wire decode only checks
// that the per-extent lengths tile Data; a hostile iod could still claim
// more bytes for one extent than were requested, shifting every later
// run's bytes and poisoning the shared cache. The requester must reject
// such a response.
func TestFillFromResponseRejectsOverlongLens(t *testing.T) {
	r := newRig(t, nil)
	tr := r.mod.NewTransport()
	mkRun := func(first int64, n int) fetchRun {
		run := fetchRun{firstIdx: first}
		for i := 0; i < n; i++ {
			run.keys = append(run.keys, blockio.BlockKey{File: 7, Index: first + int64(i)})
			run.states = append(run.states, &fetchState{done: make(chan struct{})})
		}
		return run
	}
	runs := []fetchRun{mkRun(0, 1), mkRun(5, 1)}
	pr := &pendingRead{result: make([]byte, 2*4096)}
	rr := &wire.ReadBlocksResp{
		Status: wire.StatusOK,
		Lens:   []uint32{4096 + 1024, 3072}, // extent 0 overlong; sum still tiles
		Data:   make([]byte, 2*4096),
	}
	err := tr.fillFromResponse(pr, fetch{iod: 0, runs: runs}, rr)
	if err == nil {
		t.Fatal("overlong extent length accepted")
	}
}

func TestWriteFakedAckAndFlush(t *testing.T) {
	r := newRig(t, nil)
	tr := r.mod.NewTransport()
	payload := bytes.Repeat([]byte{0x3C}, 4096)

	before := r.reg.Snapshot()
	ack := sendRecv(t, tr, 1, &wire.Write{File: 2, Offset: 0, Data: payload}).(*wire.WriteAck)
	if ack.Status != wire.StatusOK {
		t.Fatalf("ack status %d", ack.Status)
	}
	// The ack was faked: no iod write happened yet.
	if d := r.reg.Snapshot().Diff(before); d["iod.writes"] != 0 {
		t.Fatal("write went straight to the iod (not write-behind)")
	}
	if err := r.mod.FlushAll(); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 4096)
	if n, _ := r.iods[1].Store().ReadAt(2, 0, got); n != 4096 || !bytes.Equal(got, payload) {
		t.Fatalf("flush did not persist data (n=%d)", n)
	}
}

func TestWriteReadYourOwn(t *testing.T) {
	r := newRig(t, nil)
	tr := r.mod.NewTransport()
	payload := bytes.Repeat([]byte{0x11}, 10000)
	sendRecv(t, tr, 0, &wire.Write{File: 3, Offset: 500, Data: payload})
	resp := sendRecv(t, tr, 0, &wire.Read{File: 3, Offset: 500, Length: 10000}).(*wire.ReadResp)
	if !bytes.Equal(resp.Data, payload) {
		t.Fatal("read-your-own-write failed")
	}
}

func TestUnalignedWriteRMW(t *testing.T) {
	// Writing two disjoint spans of one block forces a read-modify-write
	// fetch; both spans and the iod's original bytes must survive.
	r := newRig(t, nil)
	orig := bytes.Repeat([]byte{0xEE}, 4096)
	r.seed(0, 4, 0, orig)

	tr := r.mod.NewTransport()
	sendRecv(t, tr, 0, &wire.Write{File: 4, Offset: 100, Data: []byte("aaaa")})
	sendRecv(t, tr, 0, &wire.Write{File: 4, Offset: 3000, Data: []byte("bbbb")})
	if err := r.mod.FlushAll(); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 4096)
	r.iods[0].Store().ReadAt(4, 0, got)
	if string(got[100:104]) != "aaaa" || string(got[3000:3004]) != "bbbb" {
		t.Fatal("spans lost")
	}
	if got[0] != 0xEE || got[200] != 0xEE || got[4095] != 0xEE {
		t.Fatal("original bytes clobbered by RMW")
	}
}

// TestReadMergesUnflushedWriteWithFetch is the regression test for the
// stale-read bug the cluster consistency oracle uncovered: a block that is
// only partially valid (one buffered write, not yet flushed) misses on a
// whole-block read, the whole block is fetched from the iod — which still
// holds the pre-write bytes — and the response used to be assembled from
// the fetched image alone, surfacing stale bytes for the written range.
// The fetched image must be patched with the resident bytes before it
// reaches the reader (buffer.InstallFetched).
func TestReadMergesUnflushedWriteWithFetch(t *testing.T) {
	r := newRig(t, func(c *Config) { c.FlushPeriod = time.Hour }) // flusher never runs
	old := bytes.Repeat([]byte{0xAA}, 4096)
	r.seed(0, 15, 0, old)

	tr := r.mod.NewTransport()
	fresh := []byte("fresh bytes!")
	sendRecv(t, tr, 0, &wire.Write{File: 15, Offset: 100, Data: fresh})
	if r.mod.Buffer().DirtyCount() != 1 {
		t.Fatal("write was not buffered dirty")
	}

	resp := sendRecv(t, tr, 0, &wire.Read{File: 15, Offset: 0, Length: 4096}).(*wire.ReadResp)
	if !bytes.Equal(resp.Data[100:100+len(fresh)], fresh) {
		t.Fatalf("read returned stale bytes %q for the unflushed write", resp.Data[100:100+len(fresh)])
	}
	if !bytes.Equal(resp.Data[:100], old[:100]) || !bytes.Equal(resp.Data[100+len(fresh):], old[100+len(fresh):]) {
		t.Fatal("bytes outside the write were not served from the fetch")
	}
}

func TestConcurrentTransportsShareCache(t *testing.T) {
	r := newRig(t, nil)
	data := bytes.Repeat([]byte{0x55}, 64*1024)
	r.seed(0, 8, 0, data)

	// Process A faults the data in; processes B..E read concurrently and
	// must all be served without extra iod traffic.
	trA := r.mod.NewTransport()
	sendRecv(t, trA, 0, &wire.Read{File: 8, Offset: 0, Length: 64 * 1024})

	before := r.reg.Snapshot()
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			tr := r.mod.NewTransport()
			id, err := tr.Send(0, &wire.Read{File: 8, Offset: 0, Length: 64 * 1024})
			if err != nil {
				t.Error(err)
				return
			}
			resp, err := tr.Recv(id)
			if err != nil {
				t.Error(err)
				return
			}
			if !bytes.Equal(resp.(*wire.ReadResp).Data, data) {
				t.Error("wrong data")
			}
		}()
	}
	wg.Wait()
	if d := r.reg.Snapshot().Diff(before); d["iod.reads"] != 0 {
		t.Fatalf("shared reads caused %d iod reads", d["iod.reads"])
	}
}

func TestFetchDeduplication(t *testing.T) {
	// Two processes missing the same cold blocks concurrently: the module
	// must not fetch them twice.
	r := newRig(t, nil)
	data := bytes.Repeat([]byte{0x99}, 128*1024)
	r.seed(0, 12, 0, data)

	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			tr := r.mod.NewTransport()
			resp := sendRecv(t, tr, 0, &wire.Read{File: 12, Offset: 0, Length: 128 * 1024})
			if !bytes.Equal(resp.(*wire.ReadResp).Data, data) {
				t.Error("wrong data")
			}
		}()
	}
	wg.Wait()
	snap := r.reg.Snapshot()
	blocks := int64(128 * 1024 / 4096)
	fetched := snap.Counters["iod.read_bytes"]
	// At most the data once plus a small slack for races on the last
	// block boundary.
	if fetched > int64(128*1024)+8192 {
		t.Errorf("fetched %d bytes for %d-byte file: duplicate fetches", fetched, 128*1024)
	}
	if snap.Counters["module.fetch_joins"] == 0 && snap.Counters["cache.hits"] < blocks {
		t.Error("no deduplication observed")
	}
}

func TestSyncWritePassesThrough(t *testing.T) {
	r := newRig(t, nil)
	tr := r.mod.NewTransport()
	payload := bytes.Repeat([]byte{0x77}, 4096)
	ack := sendRecv(t, tr, 0, &wire.SyncWrite{Client: 1, File: 6, Offset: 0, Data: payload}).(*wire.SyncWriteAck)
	if ack.Status != wire.StatusOK {
		t.Fatalf("ack %d", ack.Status)
	}
	// Sync-writes persist immediately — no flush needed.
	got := make([]byte, 4096)
	if n, _ := r.iods[0].Store().ReadAt(6, 0, got); n != 4096 || !bytes.Equal(got, payload) {
		t.Fatal("sync write not persisted")
	}
	// And the local cache holds a clean copy.
	if r.mod.Buffer().DirtyCount() != 0 {
		t.Fatal("sync write left dirty blocks")
	}
	before := r.reg.Snapshot()
	resp := sendRecv(t, tr, 0, &wire.Read{File: 6, Offset: 0, Length: 4096}).(*wire.ReadResp)
	if !bytes.Equal(resp.Data, payload) {
		t.Fatal("read after sync write wrong")
	}
	if d := r.reg.Snapshot().Diff(before); d["iod.reads"] != 0 {
		t.Fatal("read after sync write went to network")
	}
}

func TestInvalidationListener(t *testing.T) {
	r := newRig(t, nil)
	tr := r.mod.NewTransport()
	r.seed(0, 7, 0, make([]byte, 4096))
	sendRecv(t, tr, 0, &wire.Read{File: 7, Offset: 0, Length: 4096})
	if !r.mod.Buffer().Contains(blockio.BlockKey{File: 7, Index: 0}, 0, 4096) {
		t.Fatal("block not cached")
	}
	// Another client's sync write invalidates our copy via the iod.
	direct, err := r.net.Dial(r.addrs[0])
	if err != nil {
		t.Fatal(err)
	}
	defer direct.Close()
	if err := wire.WriteMessage(direct, &wire.SyncWrite{Client: 99, File: 7, Offset: 0, Data: make([]byte, 4096)}); err != nil {
		t.Fatal(err)
	}
	resp, err := wire.ReadMessage(direct)
	if err != nil {
		t.Fatal(err)
	}
	if ack := resp.(*wire.SyncWriteAck); ack.Invalidated != 1 {
		t.Fatalf("invalidated %d", ack.Invalidated)
	}
	if r.mod.Buffer().Contains(blockio.BlockKey{File: 7, Index: 0}, 0, 4096) {
		t.Fatal("block survived invalidation")
	}
}

func TestWriteLargerThanCacheCompletes(t *testing.T) {
	// 64-block cache (256 KB); write 1 MB. Stalls and write-through
	// fallbacks must keep the data intact.
	r := newRig(t, func(c *Config) {
		c.WriteStall = 200 * time.Millisecond
	})
	tr := r.mod.NewTransport()
	payload := bytes.Repeat([]byte{0xAB}, 1<<20)
	ack := sendRecv(t, tr, 0, &wire.Write{File: 13, Offset: 0, Data: payload}).(*wire.WriteAck)
	if ack.Status != wire.StatusOK {
		t.Fatalf("ack %d", ack.Status)
	}
	if err := r.mod.FlushAll(); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 1<<20)
	if n, _ := r.iods[0].Store().ReadAt(13, 0, got); n != 1<<20 || !bytes.Equal(got, payload) {
		t.Fatalf("large write corrupted (n=%d)", n)
	}
}

func TestDisableCoherenceSkipsRegistration(t *testing.T) {
	r := newRig(t, func(c *Config) { c.DisableCoherence = true })
	tr := r.mod.NewTransport()
	r.seed(0, 1, 0, make([]byte, 4096))
	resp := sendRecv(t, tr, 0, &wire.Read{File: 1, Offset: 0, Length: 4096}).(*wire.ReadResp)
	if resp.Status != wire.StatusOK {
		t.Fatalf("read status %d", resp.Status)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("missing network accepted")
	}
	if _, err := New(Config{Network: transport.NewMem()}); err == nil {
		t.Error("zero client id accepted")
	}
	if _, err := New(Config{Network: transport.NewMem(), ClientID: 1}); err == nil {
		t.Error("missing iods accepted")
	}
}

func TestRecvUnknownID(t *testing.T) {
	r := newRig(t, nil)
	tr := r.mod.NewTransport()
	if _, err := tr.Recv(12345); err == nil {
		t.Error("unknown id accepted")
	}
}

func TestPassthroughMessage(t *testing.T) {
	// Register is not a cached message type: it must pass through to the
	// iod untouched.
	r := newRig(t, nil)
	tr := r.mod.NewTransport()
	resp := sendRecv(t, tr, 0, &wire.Register{Client: 42, Addr: "x"})
	if _, ok := resp.(*wire.RegisterAck); !ok {
		t.Fatalf("passthrough reply %T", resp)
	}
}

func TestCloseFlushesDirtyBlocks(t *testing.T) {
	net := transport.NewMem()
	reg := metrics.NewRegistry()
	d := iod.New(0, 4096, net, reg)
	dl, _ := net.Listen("")
	fl, _ := net.Listen("")
	defer dl.Close()
	defer fl.Close()
	go d.ServeData(dl)
	go d.ServeFlush(fl)

	mod, err := New(Config{
		Network:       net,
		ClientID:      1,
		IODDataAddrs:  []string{dl.Addr()},
		IODFlushAddrs: []string{fl.Addr()},
		Buffer:        buffer.Config{BlockSize: 4096, Capacity: 16},
		FlushPeriod:   time.Hour, // flusher never fires on its own
		Registry:      reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	tr := mod.NewTransport()
	payload := bytes.Repeat([]byte{0xCD}, 4096)
	sendRecv(t, tr, 0, &wire.Write{File: 20, Offset: 0, Data: payload})
	if err := mod.Close(); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 4096)
	if n, _ := d.Store().ReadAt(20, 0, got); n != 4096 || !bytes.Equal(got, payload) {
		t.Fatal("Close lost dirty data")
	}
}
