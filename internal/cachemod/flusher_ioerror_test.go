package cachemod

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"pvfscache/internal/blockio"
	"pvfscache/internal/cachemod/buffer"
	"pvfscache/internal/chaos/waitfor"
	"pvfscache/internal/iod"
	"pvfscache/internal/metrics"
	"pvfscache/internal/storage"
	"pvfscache/internal/storage/mem"
	"pvfscache/internal/transport"
	"pvfscache/internal/wire"
)

// TestFlushIOErrorRequeuesAndRetries closes the loop on the PR 8
// silent-data-loss fix at the system level: an iod whose *backend*
// fails (connection healthy, ack carries StatusIOError) must drive the
// flush stream's existing FlushFailed re-queue + backoff machinery
// exactly like a dead connection does — the dirty blocks survive in the
// cache, and once the disk heals every byte drains and is durable. The
// seed acked StatusOK unconditionally, so this scenario silently lost
// the bytes.
func TestFlushIOErrorRequeuesAndRetries(t *testing.T) {
	net := transport.NewMem()
	reg := metrics.NewRegistry()
	fb := storage.NewFaulty(mem.New())
	d := iod.NewWithBackend(0, 4096, net, reg, fb)
	dl, err := net.Listen("")
	if err != nil {
		t.Fatal(err)
	}
	fl, err := net.Listen("")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { dl.Close(); fl.Close(); d.Close() })
	go d.ServeData(dl)
	go d.ServeFlush(fl)

	mod, err := New(Config{
		Network:       net,
		ClientID:      1,
		IODDataAddrs:  []string{dl.Addr()},
		IODFlushAddrs: []string{fl.Addr()},
		Buffer:        buffer.Config{BlockSize: 4096, Capacity: 64},
		FlushPeriod:   time.Hour,
		Registry:      reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { mod.Close() })

	const blocks = 8
	file := blockio.FileID(40)
	payload := func(blk int) []byte { return bytes.Repeat([]byte{byte(3 + blk)}, 4096) }
	tr := mod.NewTransport()
	for blk := 0; blk < blocks; blk++ {
		resp := sendRecv(t, tr, 0, &wire.Write{File: file, Offset: int64(blk) * 4096, Data: payload(blk)})
		if ack := resp.(*wire.WriteAck); ack.Status != wire.StatusOK {
			t.Fatalf("write ack %v", ack.Status)
		}
	}
	if got := mod.Buffer().DirtyCount(); got != blocks {
		t.Fatalf("dirty = %d, want %d", got, blocks)
	}

	// Disk failure: acks come back StatusIOError over a healthy
	// connection. The stream must count errors, re-queue, and keep the
	// blocks dirty no matter how often it is kicked.
	fb.SetErr(errors.New("medium error"))
	waitfor.Until(t, 10*time.Second, func() bool {
		mod.kickAllStreams()
		return reg.Snapshot().Counters["module.flush_errors"] > 0
	}, "flush stream reporting the backend failure")
	waitfor.Stable(t, 40*time.Millisecond, func() bool {
		mod.kickAllStreams()
		return mod.Buffer().DirtyCount() == blocks
	}, "backlog of %d dirty blocks surviving IO-error acks", blocks)
	snap := reg.Snapshot()
	if snap.Counters["module.flush_requeued"] == 0 {
		t.Fatal("no blocks re-queued on StatusIOError acks")
	}
	if snap.Counters["iod.io_errors"] == 0 {
		t.Fatal("iod did not count the backend failures")
	}

	// Heal: the backlog drains and every byte is durable in the store.
	fb.SetErr(nil)
	if err := mod.FlushAll(); err != nil {
		t.Fatalf("FlushAll after heal: %v", err)
	}
	got := make([]byte, 4096)
	for blk := 0; blk < blocks; blk++ {
		if n, _ := d.Store().ReadAt(file, int64(blk)*4096, got); n != 4096 || !bytes.Equal(got, payload(blk)) {
			t.Fatalf("block %d not durable after heal (n=%d)", blk, n)
		}
	}
	if err := mod.Buffer().CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}
