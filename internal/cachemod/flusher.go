package cachemod

// The pipelined write-behind engine: one flush stream per iod, each
// draining its own daemon's share of the dirty list with a bounded
// window of concurrent Flush frames in flight, all streams running in
// parallel. This is the write-side half of the architecture the read
// side already has — the miss engine fans a request's runs out to every
// iod at once (transport.go), and the streams fan the dirty list back
// the same way. The seed shape — one blocking Call per frame, serially
// across (iod, file) groups, where one slow iod head-of-line-blocked
// every other daemon's drain — is preserved as the FlushStreams=1 +
// FlushWindow=1 ablation.
//
// Lifecycle of a dirty block (see DESIGN.md "The write path"):
//
//	dirty ──TakeDirtyOwned──► taken ──frame──► in flight ──ack──► clean
//	  ▲                                            │
//	  └───────────── FlushFailed (re-queue, ───────┘ error / bad ack
//	                 original age priority)
//
// Failure isolation: a failed chunk re-queues only its own blocks
// (FlushFailed keeps their oldest-first priority), the stream stops
// framing the rest of its burst and backs off exponentially, and every
// other stream keeps draining — a down iod costs exactly its own
// backlog, not the node's.

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"pvfscache/internal/cachemod/buffer"
	"pvfscache/internal/rpc"
	"pvfscache/internal/wire"
)

const (
	// flushChunkTarget is the soft size of one Flush frame's accounted
	// bytes (run data + per-run overhead). It trades framing overhead
	// against pipelining granularity: frames this size are large enough
	// to amortize the round trip and small enough that a FlushWindow of
	// them overlaps usefully. The hard capacity bound is
	// wire.MaxFlushPayload, derived from wire.MaxMessageSize — the
	// compile-time assertion below keeps the two from drifting into
	// ErrTooLarge retry loops.
	flushChunkTarget = 256 << 10

	// flushBackoffMin/Max bound a failed stream's retry backoff.
	flushBackoffMin = 5 * time.Millisecond
	flushBackoffMax = 500 * time.Millisecond
)

// A chunk framed at the target can never exceed what a Flush frame may
// carry (conversion to uint fails to compile if the target outgrows the
// wire-derived capacity).
const _ = uint(wire.MaxFlushPayload - flushChunkTarget)

// flushStream is the write-behind pipeline of one iod: it owns the
// daemon's flush-port client and is the only goroutine that takes that
// daemon's dirty blocks, so per-iod drains are single-writer and the
// in-flight window never carries the same block twice.
type flushStream struct {
	m      *Module
	iod    int
	client *rpc.Client
	kick   chan struct{} // capacity 1: coalesced wake-ups

	// failing is set while the stream's drains are erroring (cleared by
	// the first clean drain). Pressure kicks consult it: a directed kick
	// at a failing stream cannot free space, so the kicker falls back to
	// waking every stream rather than letting healthy backlogs idle
	// behind a down iod's old dirty data.
	failing atomic.Bool

	// errors counts failed drains and backoff holds the current retry
	// delay in nanoseconds (0 while healthy) — the per-stream health the
	// chaos harness and Module.StreamHealth expose.
	errors  atomic.Int64
	backoff atomic.Int64
}

// StreamHealth is one flush stream's externally visible state.
type StreamHealth struct {
	IOD     int
	Failing bool          // last drain errored; stream is backing off
	Errors  int64         // cumulative failed drains
	Backoff time.Duration // current retry delay (0 while healthy)
}

// kickStream wakes the stream's loop if it is idle; kicks coalesce.
func (s *flushStream) kickStream() {
	select {
	case s.kick <- struct{}{}:
	default:
	}
}

// loop is the stream's goroutine: wake on the flush period, on a
// directed pressure kick, or on a FlushAll sweep; drain; on failure back
// off exponentially (isolated to this stream) and retry.
func (s *flushStream) loop() {
	m := s.m
	defer m.wg.Done()
	ticker := time.NewTicker(m.cfg.FlushPeriod)
	defer ticker.Stop()
	var backoff time.Duration
	for {
		select {
		case <-m.stop:
			return
		case <-ticker.C:
		case <-s.kick:
		}
		// FlushStreams gates how many streams drain at once; the default
		// (one slot per iod) never blocks here, FlushStreams=1 restores
		// the seed's serial cross-iod drain.
		select {
		case m.streamSem <- struct{}{}:
		case <-m.stop:
			return
		}
		err := s.drain()
		<-m.streamSem
		s.failing.Store(err != nil)
		if err == nil {
			backoff = 0
			s.backoff.Store(0)
			continue
		}
		m.cfg.Registry.Counter("module.flush_errors").Inc()
		s.errors.Add(1)
		backoff = min(max(2*backoff, flushBackoffMin), flushBackoffMax)
		s.backoff.Store(int64(backoff))
		t := time.NewTimer(backoff)
		select {
		case <-m.stop:
			t.Stop()
			return
		case <-t.C:
		}
		s.kickStream() // retry the backlog after the backoff
	}
}

// drain moves this iod's eligible dirty blocks out in pipelined bursts
// until none remain or a chunk fails. Each burst takes up to
// FlushBatch×FlushWindow blocks (run-ordered), coalesces them into
// contiguous runs, frames the runs into chunks and keeps FlushWindow
// frames in flight.
func (s *flushStream) drain() error {
	burst := s.m.cfg.FlushBatch * s.m.cfg.FlushWindow
	for {
		items := s.m.buf.TakeDirtyOwned(s.iod, burst)
		if len(items) == 0 {
			return nil
		}
		err := s.sendChunks(buildFlushChunks(s.m.cfg.ClientID, items, s.m.buf.BlockSize()))
		if err != nil {
			return err
		}
		if len(items) < burst {
			return nil
		}
	}
}

// flushChunk is one wire.Flush frame plus the taken items it carries —
// the unit of acknowledgment: the whole chunk is marked clean or
// re-queued together.
type flushChunk struct {
	msg   *wire.Flush
	items []buffer.FlushItem
}

// buildFlushChunks coalesces a run-ordered snapshot (TakeDirtyOwned's
// (file, index) order) into wire frames. Adjacent dirty blocks of one
// file whose spans tile the block boundary — the left block dirty to its
// end, the right dirty from its start — merge into one contiguous
// FlushBlock run, the write-side analogue of the read path's vectored
// runs: one length-prefixed entry and one iod store call instead of one
// per block. Runs pack into chunks of at most flushChunkTarget accounted
// bytes, one file per chunk (the Flush header names a single file).
func buildFlushChunks(client uint32, items []buffer.FlushItem, blockSize int) []flushChunk {
	var chunks []flushChunk
	var cur flushChunk
	curBytes := 0
	closeCur := func() {
		if len(cur.items) > 0 {
			chunks = append(chunks, cur)
			cur = flushChunk{}
			curBytes = 0
		}
	}
	for i := 0; i < len(items); {
		// Maximal contiguous run starting at i, bounded (run bytes plus
		// its framing overhead) by the chunk target so a run always fits
		// one frame.
		runBytes := len(items[i].Data)
		j := i + 1
		for j < len(items) &&
			items[j].Key.File == items[j-1].Key.File &&
			items[j].Key.Index == items[j-1].Key.Index+1 &&
			items[j-1].Off+len(items[j-1].Data) == blockSize &&
			items[j].Off == 0 &&
			runBytes+len(items[j].Data)+wire.FlushBlockOverhead <= flushChunkTarget {
			runBytes += len(items[j].Data)
			j++
		}
		run := items[i:j]
		if cur.msg != nil &&
			(cur.msg.File != run[0].Key.File ||
				curBytes+runBytes+wire.FlushBlockOverhead > flushChunkTarget) {
			closeCur()
		}
		if cur.msg == nil {
			cur.msg = &wire.Flush{Client: client, File: run[0].Key.File}
		}
		data := run[0].Data
		if len(run) > 1 {
			data = make([]byte, 0, runBytes)
			for _, it := range run {
				data = append(data, it.Data...)
			}
		}
		cur.msg.Blocks = append(cur.msg.Blocks, wire.FlushBlock{
			Index: run[0].Key.Index,
			Off:   uint32(run[0].Off),
			Data:  data,
		})
		cur.items = append(cur.items, run...)
		curBytes += runBytes + wire.FlushBlockOverhead
		i = j
	}
	closeCur()
	return chunks
}

// sendChunks pushes the chunks with at most FlushWindow frames in flight
// to this stream's iod. Completions are handled as they land: an acked
// chunk's blocks are marked clean at once (waking stalled writers — a
// fast chunk's space is usable while slower chunks are still flying), a
// failed chunk's blocks are re-queued. After the first failure no
// further chunk is framed onto the wire; the remainder re-queues
// immediately so the stream backs off as a unit while the other streams
// keep draining.
func (s *flushStream) sendChunks(chunks []flushChunk) error {
	m := s.m
	reg := m.cfg.Registry
	sem := make(chan struct{}, m.cfg.FlushWindow)
	var (
		wg       sync.WaitGroup
		failed   atomic.Bool
		errMu    sync.Mutex
		firstErr error
	)
	fail := func(err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		errMu.Unlock()
		failed.Store(true)
	}
	for _, c := range chunks {
		if failed.Load() {
			m.buf.FlushFailed(c.items)
			reg.Counter("module.flush_requeued").Add(int64(len(c.items)))
			continue
		}
		sem <- struct{}{} // window slot
		wg.Add(1)
		go func(c flushChunk) {
			defer wg.Done()
			defer func() { <-sem }()
			res := s.client.Call(c.msg)
			err := res.Err
			if err == nil {
				if ack, ok := res.Msg.(*wire.FlushAck); !ok {
					err = fmt.Errorf("cachemod: unexpected flush reply %v from iod %d",
						res.Msg.WireType(), s.iod)
				} else {
					err = ack.Status.Err()
				}
			}
			if err != nil {
				fail(err)
				m.buf.FlushFailed(c.items)
				reg.Counter("module.flush_requeued").Add(int64(len(c.items)))
				return
			}
			m.buf.FlushDone(c.items)
			reg.Counter("module.flush_rounds").Inc()
			reg.Counter("module.flushed_blocks").Add(int64(len(c.items)))
			if merged := len(c.items) - len(c.msg.Blocks); merged > 0 {
				reg.Counter("module.flush_coalesced").Add(int64(merged))
			}
			m.signalSpace()
		}(c)
	}
	wg.Wait()
	return firstErr
}
