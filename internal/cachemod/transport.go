package cachemod

import (
	"fmt"
	"sync"
	"time"

	"pvfscache/internal/blockio"
	"pvfscache/internal/cachemod/buffer"
	"pvfscache/internal/pvfs"
	"pvfscache/internal/rpc"
	"pvfscache/internal/wire"
)

// CachedTransport is one application process's view of the cache module:
// it implements pvfs.Transport, so libpvfs uses it exactly like a socket,
// while every CachedTransport created from the same Module shares the
// node's block cache. This mirrors the paper's finite state machine per
// socket: Send transitions a request into the pending state (issuing
// network sub-requests only for the missing pieces) and Recv completes it
// (faking acknowledgments for whatever the cache absorbed).
type CachedTransport struct {
	m *Module

	mu      sync.Mutex
	next    pvfs.ReqID
	pending map[pvfs.ReqID]*pendingOp
}

// NewTransport returns a transport for one application process.
func (m *Module) NewTransport() *CachedTransport {
	return &CachedTransport{m: m, next: 1, pending: make(map[pvfs.ReqID]*pendingOp)}
}

// pendingOp is the per-request FSM state between Send and Recv.
type pendingOp struct {
	ready wire.Message      // response already known (fake ack, full cache hit)
	read  *pendingRead      // read with outstanding transfers
	call  <-chan rpc.Result // passthrough round trip
}

// pendingRead tracks a read whose missing pieces are in flight.
type pendingRead struct {
	result  []byte
	fetches []ownedFetch
	waits   []spanWait
	iod     int
}

// ownedFetch is one network sub-request this process issued for a run of
// consecutive missing blocks.
type ownedFetch struct {
	iod      int
	ch       <-chan rpc.Result
	firstIdx int64
	keys     []blockio.BlockKey
	states   []*fetchState
	spans    []blockio.Span // request spans served by this run
}

// spanWait is a span whose block another process is already fetching.
type spanWait struct {
	span blockio.Span
	st   *fetchState
	iod  int
}

// Send implements pvfs.Transport. For reads and writes it runs the cache
// FSM; any other message passes through to the iod untouched, keeping the
// module transparent to protocol extensions.
func (t *CachedTransport) Send(iod int, req wire.Message) (pvfs.ReqID, error) {
	if iod < 0 || iod >= len(t.m.data) {
		return 0, fmt.Errorf("cachemod: iod index %d out of range", iod)
	}
	var op *pendingOp
	var err error
	switch r := req.(type) {
	case *wire.Read:
		op, err = t.sendRead(iod, r)
	case *wire.Write:
		op, err = t.sendWrite(iod, r)
	case *wire.SyncWrite:
		op, err = t.sendSyncWrite(iod, r)
	default:
		ch, cerr := t.m.data[iod].Go(req)
		if cerr != nil {
			return 0, cerr
		}
		op = &pendingOp{call: ch}
	}
	if err != nil {
		return 0, err
	}
	t.mu.Lock()
	id := t.next
	t.next++
	t.pending[id] = op
	t.mu.Unlock()
	return id, nil
}

// Recv implements pvfs.Transport: it completes the pending request,
// waiting for outstanding transfers if necessary.
func (t *CachedTransport) Recv(id pvfs.ReqID) (wire.Message, error) {
	t.mu.Lock()
	op, ok := t.pending[id]
	delete(t.pending, id)
	t.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("cachemod: unknown request id %d", id)
	}
	switch {
	case op.ready != nil:
		return op.ready, nil
	case op.read != nil:
		return t.completeRead(op.read)
	case op.call != nil:
		res := <-op.call
		return res.Msg, res.Err
	default:
		return nil, fmt.Errorf("cachemod: empty pending op %d", id)
	}
}

// Close drops per-process state. The module (shared by every process on
// the node) stays up.
func (t *CachedTransport) Close() error {
	t.mu.Lock()
	t.pending = make(map[pvfs.ReqID]*pendingOp)
	t.mu.Unlock()
	return nil
}

// --- read path ---

// sendRead classifies each block span of the request as a cache hit, a
// join on another process's in-flight fetch, or a miss this process must
// fetch. Misses are grouped into runs of consecutive blocks; a cached
// block in the middle therefore splits the request into several network
// sub-requests, as the paper describes.
func (t *CachedTransport) sendRead(iod int, req *wire.Read) (*pendingOp, error) {
	bs := t.m.buf.BlockSize()
	spans := blockio.Spans(req.File, req.Offset, req.Length, bs)
	result := make([]byte, req.Length)
	pr := &pendingRead{result: result, iod: iod}
	var owned []blockio.Span // spans whose fetch this process owns

	for _, sp := range spans {
		dst := result[sp.Pos : sp.Pos+int64(sp.Len)]
		if t.m.buf.ReadSpan(sp.Key, sp.Off, dst) {
			continue
		}
		t.m.fetchMu.Lock()
		if st := t.m.fetches[sp.Key]; st != nil {
			t.m.fetchMu.Unlock()
			pr.waits = append(pr.waits, spanWait{span: sp, st: st, iod: iod})
			continue
		}
		st := &fetchState{done: make(chan struct{})}
		t.m.fetches[sp.Key] = st
		t.m.fetchMu.Unlock()
		// Global-cache extension: probe the block's home node before
		// resorting to the iod.
		if t.m.gcClient != nil {
			if data, ok := t.m.gcClient.Get(sp.Key); ok {
				t.m.buf.InsertClean(sp.Key, iod, data)
				copy(dst, data[sp.Off:sp.Off+sp.Len])
				st.data = data
				t.m.fetchMu.Lock()
				delete(t.m.fetches, sp.Key)
				t.m.fetchMu.Unlock()
				close(st.done)
				t.m.cfg.Registry.Counter("module.gcache_hits").Inc()
				continue
			}
		}
		owned = append(owned, sp)
	}

	// Group owned spans into runs of consecutive block indices and issue
	// one block-aligned sub-request per run.
	for start := 0; start < len(owned); {
		end := start + 1
		for end < len(owned) && owned[end].Key.Index == owned[end-1].Key.Index+1 {
			end++
		}
		run := owned[start:end]
		of := ownedFetch{iod: iod, firstIdx: run[0].Key.Index, spans: run}
		for _, sp := range run {
			of.keys = append(of.keys, sp.Key)
			t.m.fetchMu.Lock()
			of.states = append(of.states, t.m.fetches[sp.Key])
			t.m.fetchMu.Unlock()
		}
		sub := &wire.Read{
			Client: t.m.cfg.ClientID,
			File:   req.File,
			Offset: of.firstIdx * int64(bs),
			Length: int64(len(run)) * int64(bs),
			Track:  true,
		}
		ch, err := t.m.data[iod].Go(sub)
		if err != nil {
			t.abortFetches(pr.fetches, err)
			t.abortFetch(of, err)
			return nil, err
		}
		of.ch = ch
		pr.fetches = append(pr.fetches, of)
		t.m.cfg.Registry.Counter("module.read_subrequests").Inc()
		start = end
	}

	if len(pr.fetches) == 0 && len(pr.waits) == 0 {
		// Entire request served from the cache: the response is ready now;
		// libpvfs's receive call will be faked locally.
		t.m.cfg.Registry.Counter("module.read_full_hits").Inc()
		return &pendingOp{ready: &wire.ReadResp{Status: wire.StatusOK, Data: result}}, nil
	}
	return &pendingOp{read: pr}, nil
}

// completeRead waits for the pending transfers, installs fetched blocks in
// the cache, and assembles the response buffer.
func (t *CachedTransport) completeRead(pr *pendingRead) (wire.Message, error) {
	bs := t.m.buf.BlockSize()
	var firstErr error
	for _, of := range pr.fetches {
		res := <-of.ch
		if res.Err != nil {
			t.abortFetch(of, res.Err)
			if firstErr == nil {
				firstErr = res.Err
			}
			continue
		}
		rr, ok := res.Msg.(*wire.ReadResp)
		if !ok || rr.Status != wire.StatusOK {
			err := fmt.Errorf("cachemod: fetch failed: %v", res.Msg.WireType())
			if ok {
				if serr := rr.Status.Err(); serr != nil {
					err = serr
				}
			}
			t.abortFetch(of, err)
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		// Slice the run into blocks, install each, publish to waiters.
		for i, key := range of.keys {
			blockData := make([]byte, bs)
			lo := i * bs
			if lo < len(rr.Data) {
				copy(blockData, rr.Data[lo:])
			}
			t.m.buf.InsertClean(key, of.iod, blockData)
			if t.m.gcClient != nil {
				// Feed the global cache: the block's home node gets a copy.
				t.m.gcClient.Push(key, of.iod, blockData)
			}
			st := of.states[i]
			st.data = blockData
			t.m.fetchMu.Lock()
			delete(t.m.fetches, key)
			t.m.fetchMu.Unlock()
			close(st.done)
		}
		// Copy the request's spans out of the run.
		for _, sp := range of.spans {
			lo := int(sp.Key.Index-of.firstIdx)*bs + sp.Off
			n := copy(pr.result[sp.Pos:sp.Pos+int64(sp.Len)], rr.Data[minInt(lo, len(rr.Data)):])
			_ = n // short data reads as zero; result is pre-zeroed
		}
	}
	for _, w := range pr.waits {
		<-w.st.done
		dst := pr.result[w.span.Pos : w.span.Pos+int64(w.span.Len)]
		if w.st.err == nil && w.st.data != nil {
			copy(dst, w.st.data[w.span.Off:w.span.Off+w.span.Len])
			t.m.cfg.Registry.Counter("module.fetch_joins").Inc()
			continue
		}
		// The owner's fetch failed: fall back to a synchronous fetch of our
		// own.
		data, err := t.m.fetchBlockSync(w.iod, w.span.Key)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		copy(dst, data[w.span.Off:w.span.Off+w.span.Len])
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return &wire.ReadResp{Status: wire.StatusOK, Data: pr.result}, nil
}

// abortFetch publishes a fetch failure to waiters and clears the table.
func (t *CachedTransport) abortFetch(of ownedFetch, err error) {
	for i, key := range of.keys {
		st := of.states[i]
		if st == nil {
			continue
		}
		st.err = err
		t.m.fetchMu.Lock()
		if t.m.fetches[key] == st {
			delete(t.m.fetches, key)
		}
		t.m.fetchMu.Unlock()
		select {
		case <-st.done:
		default:
			close(st.done)
		}
	}
}

func (t *CachedTransport) abortFetches(ofs []ownedFetch, err error) {
	for _, of := range ofs {
		// No drain needed: responses demultiplex by tag and the result
		// channel is buffered, so an abandoned fetch cannot stall others.
		t.abortFetch(of, err)
	}
}

// --- write path ---

// sendWrite performs the write on the cache and fakes the acknowledgment;
// the flusher propagates the data later. A write that cannot get cache
// space blocks (bounded by WriteStall) and finally falls back to writing
// through, which matches the paper's "writes may need to block for
// availability of cache space" behaviour for requests larger than the
// cache.
func (t *CachedTransport) sendWrite(iod int, req *wire.Write) (*pendingOp, error) {
	if !t.m.WriteBehind() {
		ch, err := t.m.data[iod].Go(req)
		if err != nil {
			return nil, err
		}
		return &pendingOp{call: ch}, nil
	}
	bs := t.m.buf.BlockSize()
	spans := blockio.Spans(req.File, req.Offset, int64(len(req.Data)), bs)
	deadline := time.Now().Add(t.m.cfg.WriteStall)
	for _, sp := range spans {
		src := req.Data[sp.Pos : sp.Pos+int64(sp.Len)]
		if err := t.writeSpan(iod, sp, src, deadline); err != nil {
			return nil, err
		}
	}
	// Keep the flusher ahead of demand when the dirty list grows large.
	if t.m.buf.DirtyCount() > t.m.buf.Capacity()/2 {
		t.m.kickFlusher()
	}
	t.m.cfg.Registry.Counter("module.writes_buffered").Inc()
	return &pendingOp{ready: &wire.WriteAck{Status: wire.StatusOK}}, nil
}

// writeSpan applies one block span to the cache, handling read-modify-
// write and cache-full conditions.
func (t *CachedTransport) writeSpan(iod int, sp blockio.Span, src []byte, deadline time.Time) error {
	for {
		switch t.m.buf.WriteSpan(sp.Key, iod, sp.Off, src, true) {
		case buffer.OutcomeOK:
			return nil
		case buffer.OutcomeNeedFetch:
			// Another process may already be fetching this block.
			t.m.fetchMu.Lock()
			st := t.m.fetches[sp.Key]
			t.m.fetchMu.Unlock()
			if st != nil {
				<-st.done
				continue
			}
			if _, err := t.m.fetchBlockSync(iod, sp.Key); err != nil {
				// Cannot complete the merge: write this span through.
				return t.writeThrough(iod, sp, src)
			}
		case buffer.OutcomeNoSpace:
			t.m.kickHarvester()
			t.m.kickFlusher()
			t.m.cfg.Registry.Counter("module.write_stalls").Inc()
			if !t.m.waitForSpace(deadline) {
				return t.writeThrough(iod, sp, src)
			}
		}
	}
}

// writeThrough sends one span straight to the iod, bypassing the cache.
func (t *CachedTransport) writeThrough(iod int, sp blockio.Span, src []byte) error {
	t.m.cfg.Registry.Counter("module.write_through").Inc()
	resp, err := t.m.data[iod].Call(&wire.Write{
		Client: t.m.cfg.ClientID,
		File:   sp.Key.File,
		Offset: sp.FileOffset(t.m.buf.BlockSize()),
		Data:   src,
	})
	if err != nil {
		return err
	}
	ack, ok := resp.(*wire.WriteAck)
	if !ok {
		return fmt.Errorf("cachemod: unexpected write-through reply %v", resp.WireType())
	}
	return ack.Status.Err()
}

// --- sync-write path ---

// sendSyncWrite propagates the write both to the cache and to the iod; the
// iod invalidates every other cache before acknowledging. The local cache
// copy is updated as clean (the iod already holds these bytes when the ack
// arrives).
func (t *CachedTransport) sendSyncWrite(iod int, req *wire.SyncWrite) (*pendingOp, error) {
	bs := t.m.buf.BlockSize()
	spans := blockio.Spans(req.File, req.Offset, int64(len(req.Data)), bs)
	for _, sp := range spans {
		src := req.Data[sp.Pos : sp.Pos+int64(sp.Len)]
		switch t.m.buf.WriteSpan(sp.Key, iod, sp.Off, src, false) {
		case buffer.OutcomeOK:
		case buffer.OutcomeNeedFetch:
			// Merging would leave an unknown gap inside the block. The
			// resident valid bytes are untouched by this write, so they
			// remain correct; simply skip caching the new span rather than
			// fetch on the critical path of a coherent write.
		case buffer.OutcomeNoSpace:
			// Not cacheable right now; the server still gets the data.
		}
	}
	ch, err := t.m.data[iod].Go(req)
	if err != nil {
		return nil, err
	}
	t.m.cfg.Registry.Counter("module.sync_writes").Inc()
	return &pendingOp{call: ch}, nil
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
