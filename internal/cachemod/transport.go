package cachemod

import (
	"fmt"
	"sync"
	"time"

	"pvfscache/internal/blockio"
	"pvfscache/internal/cachemod/buffer"
	"pvfscache/internal/pvfs"
	"pvfscache/internal/rpc"
	"pvfscache/internal/wire"
)

// CachedTransport is one application process's view of the cache module:
// it implements pvfs.Transport, so libpvfs uses it exactly like a socket,
// while every CachedTransport created from the same Module shares the
// node's block cache. This mirrors the paper's finite state machine per
// socket: Send transitions a request into the pending state (issuing
// network sub-requests only for the missing pieces) and Recv completes it
// (faking acknowledgments for whatever the cache absorbed).
type CachedTransport struct {
	m *Module

	mu      sync.Mutex
	next    pvfs.ReqID
	pending map[pvfs.ReqID]*pendingOp
}

// NewTransport returns a transport for one application process.
func (m *Module) NewTransport() *CachedTransport {
	return &CachedTransport{m: m, next: 1, pending: make(map[pvfs.ReqID]*pendingOp)}
}

// StripeHint implements pvfs.StripeHinter: libpvfs announces a file's
// striping geometry whenever it opens or refreshes a file, which is what
// lets the module's readahead prefetcher route upcoming blocks to the
// iods that hold them.
func (t *CachedTransport) StripeHint(file blockio.FileID, meta wire.FileMeta, totalIODs int) {
	t.m.SetStripeHint(file, meta, totalIODs)
}

// NoteRead implements pvfs.ReadPatternHinter: libpvfs reports each whole
// application read, and the module's sequential detector keys on that
// stream. Detection cannot live on the Send path: the pieces of one
// striped read arrive as several ascending Sends, so a random workload
// of multi-piece requests would look like a scan and prefetch garbage.
func (t *CachedTransport) NoteRead(file blockio.FileID, offset, length int64) {
	if length <= 0 {
		return
	}
	first, count := blockio.BlockRange(offset, length, t.m.buf.BlockSize())
	t.m.maybeReadahead(file, first, first+count-1)
}

// CachePolicyHint implements pvfs.CachePolicyHinter: libpvfs forwards a
// file's per-open cache-policy hint (don't-cache / must-cache / default)
// and the module applies it to every admission decision for the file.
func (t *CachedTransport) CachePolicyHint(file blockio.FileID, policy pvfs.CachePolicy) {
	t.m.SetCachePolicy(file, policy)
}

// TenantHint implements pvfs.TenantHinter: libpvfs forwards a file's
// per-open tenant (principal) tag and scheduling weight, and the module
// charges the file's dirty frames and in-flight fetches to that principal
// (see qos.go).
func (t *CachedTransport) TenantHint(file blockio.FileID, tenant uint32, weight int) {
	t.m.SetTenant(file, tenant, weight)
}

// pendingOp is the per-request FSM state between Send and Recv.
type pendingOp struct {
	ready wire.Message      // response already known (fake ack, full cache hit)
	read  *pendingRead      // read with outstanding transfers
	call  <-chan rpc.Result // passthrough round trip
}

// pendingRead tracks a read whose missing pieces are in flight. Every
// span of the request resolved its destination slice at classification
// time: a region of the caller's own buffer on the zero-copy sink path
// (see SendRead), or of result — the freshly allocated response payload —
// on the copying path. For a vectored request (libpvfs sent a ReadBlocks)
// lens carries the per-extent byte counts for the response.
type pendingRead struct {
	result  []byte // response payload buffer; nil in sink mode
	sink    bool   // destinations are caller-owned: respond status-only
	fetches []fetch
	waits   []spanWait
	vector  bool
	lens    []uint32
	admit   admitMode // admission decision, fixed once per request

	// qos is the tenant state charged qosBlocks in-flight read blocks at
	// classification time (nil when budgets are off); trace is the armed
	// per-request trace, nil when disarmed.
	qos       *tenantState
	qosBlocks int
	trace     *reqTrace
}

// releaseBudget returns the request's in-flight read-block charge to its
// tenant. Idempotent: every exit from the read FSM — full hit, completed,
// issue error — calls it exactly where the request stops being in flight.
func (pr *pendingRead) releaseBudget() {
	if pr.qos != nil {
		pr.qos.inflight.Add(-int64(pr.qosBlocks))
		pr.qos = nil
	}
}

// tgtSpan is one block span of the request together with the destination
// it must be copied to.
type tgtSpan struct {
	sp  blockio.Span
	dst []byte
}

// fetchRun is a run of consecutive missing blocks this process owns: one
// extent of a vectored fetch (or the whole of a legacy one).
type fetchRun struct {
	firstIdx int64
	keys     []blockio.BlockKey
	states   []*fetchState
	spans    []tgtSpan // request spans served by this run
}

// fetch is one network round trip issued for a request's missing blocks:
// a ReadBlocks covering every run at once, or — with Config.DisableVector
// — a legacy Read carrying exactly one run.
type fetch struct {
	iod  int
	ch   <-chan rpc.Result
	runs []fetchRun
}

// ownedSpan pairs a missing span with the fetch-table entry this process
// claimed for its block.
type ownedSpan struct {
	sp  blockio.Span
	dst []byte
	st  *fetchState
}

// spanWait is a span whose block another process (or the prefetcher) is
// already fetching. The waiter holds a fetchState reference (acquired
// under fetchMu at join time) and must decref exactly once after done.
type spanWait struct {
	key blockio.BlockKey
	off int
	dst []byte
	st  *fetchState
	iod int
}

// Send implements pvfs.Transport. For reads and writes it runs the cache
// FSM; any other message passes through to the iod untouched, keeping the
// module transparent to protocol extensions.
func (t *CachedTransport) Send(iod int, req wire.Message) (pvfs.ReqID, error) {
	if iod < 0 || iod >= len(t.m.data) {
		return 0, fmt.Errorf("cachemod: iod index %d out of range", iod)
	}
	var op *pendingOp
	var err error
	switch r := req.(type) {
	case *wire.Read:
		op, err = t.sendRead(iod, r, nil)
	case *wire.ReadBlocks:
		op, err = t.sendVectorRead(iod, r, nil)
	case *wire.Write:
		op, err = t.sendWrite(iod, r)
	case *wire.SyncWrite:
		op, err = t.sendSyncWrite(iod, r)
	default:
		ch, cerr := t.m.data[iod].Go(req)
		if cerr != nil {
			return 0, cerr
		}
		op = &pendingOp{call: ch}
	}
	if err != nil {
		return 0, err
	}
	return t.register(op), nil
}

// SendRead implements pvfs.ReadSinker: the zero-copy read entry point.
// sink carries one destination slice per extent of the request (a single
// slice for a plain Read), and the FSM scatters every byte — cache hits,
// fetch joins, fetched runs — directly into them; the Recv response is
// then status-only. It declines (ok=false, caller falls back to
// Send/Recv) when zero-copy is disabled, the message is not a read, or
// the sink does not tile the request.
func (t *CachedTransport) SendRead(iod int, req wire.Message, sink [][]byte) (pvfs.ReqID, bool, error) {
	if t.m.cfg.DisableZeroCopy {
		return 0, false, nil
	}
	if iod < 0 || iod >= len(t.m.data) {
		return 0, false, fmt.Errorf("cachemod: iod index %d out of range", iod)
	}
	var op *pendingOp
	var err error
	switch r := req.(type) {
	case *wire.Read:
		if len(sink) != 1 || int64(len(sink[0])) != r.Length {
			return 0, false, nil
		}
		op, err = t.sendRead(iod, r, sink)
	case *wire.ReadBlocks:
		if len(sink) != len(r.Exts) {
			return 0, false, nil
		}
		for i, e := range r.Exts {
			if int64(len(sink[i])) != e.Length {
				return 0, false, nil
			}
		}
		op, err = t.sendVectorRead(iod, r, sink)
	default:
		return 0, false, nil
	}
	if err != nil {
		return 0, false, err
	}
	return t.register(op), true, nil
}

// register files a pending op and returns its request id.
func (t *CachedTransport) register(op *pendingOp) pvfs.ReqID {
	t.mu.Lock()
	id := t.next
	t.next++
	t.pending[id] = op
	t.mu.Unlock()
	return id
}

// Recv implements pvfs.Transport: it completes the pending request,
// waiting for outstanding transfers if necessary.
func (t *CachedTransport) Recv(id pvfs.ReqID) (wire.Message, error) {
	t.mu.Lock()
	op, ok := t.pending[id]
	delete(t.pending, id)
	t.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("cachemod: unknown request id %d", id)
	}
	switch {
	case op.ready != nil:
		return op.ready, nil
	case op.read != nil:
		return t.completeRead(op.read)
	case op.call != nil:
		res := <-op.call
		return res.Msg, res.Err
	default:
		return nil, fmt.Errorf("cachemod: empty pending op %d", id)
	}
}

// Close drops per-process state. The module (shared by every process on
// the node) stays up.
func (t *CachedTransport) Close() error {
	t.mu.Lock()
	t.pending = make(map[pvfs.ReqID]*pendingOp)
	t.mu.Unlock()
	return nil
}

// --- read path ---

// classifySpan classifies one block span of a read: a cache hit copies
// into dst now, an in-flight fetch (another process's miss or a prefetch)
// becomes a join, a global-cache hit is installed immediately, and
// everything else is an owned miss returned to the caller for fetching.
// dst is the span's destination — a slice of the caller's buffer on the
// sink path, of the response buffer otherwise.
func (t *CachedTransport) classifySpan(iod int, sp blockio.Span, dst []byte, pr *pendingRead, owned []ownedSpan) []ownedSpan {
	if t.m.buf.ReadSpan(sp.Key, sp.Off, dst) {
		t.m.notePrefetchHit(sp.Key)
		return owned
	}
	// The write stamp is snapshotted before the fetch is registered (and
	// so before any iod or peer reads the block on our behalf): a write
	// applied after this point — even one flushed and evicted before the
	// fetch lands — moves the stamp and forces the install to re-read.
	stamp := t.m.buf.WriteStamp(sp.Key)
	t.m.fetchMu.Lock()
	if st := t.m.fetches[sp.Key]; st != nil {
		// Join: the data reference must be acquired while the entry is
		// still in the table, so the owner (who removes it before dropping
		// its own reference) can never drain the count under us.
		st.refs.Add(1)
		t.m.fetchMu.Unlock()
		pr.waits = append(pr.waits, spanWait{key: sp.Key, off: sp.Off, dst: dst, st: st, iod: iod})
		return owned
	}
	st := newFetchState(false)
	st.stamp = stamp
	t.m.fetches[sp.Key] = st
	t.m.fetchMu.Unlock()
	// Global-cache extension: probe the block's home node before
	// resorting to the iod. A read-around request skips the probe: its
	// blocks must not be installed here, and a stream hammering the peer
	// ring would displace exactly the shared blocks the ring exists for.
	if t.m.gcNode != nil && pr.admit != admitNever {
		bs := t.m.buf.BlockSize()
		data, mem := t.m.getBlock()
		// A healthy peer always serves a whole block; anything else is a
		// buggy or hostile response whose bytes must not be installed or
		// sliced (an oversize block would panic InstallFetched, a short
		// one the span copy). Fall through to the iod fetch instead.
		if n, ok := t.m.gcNode.Get(sp.Key, data); ok && n != bs {
			t.m.cfg.Registry.Counter("module.gcache_bad_resp").Inc()
		} else if ok {
			// Resident bytes outrank the peer copy; a stale install (the
			// block was written here since the probe began) falls through
			// to the iod fetch, which revalidates against a fresh stamp.
			if t.m.buf.InstallFetchedAdmit(sp.Key, iod, data, pr.admit == admitMust, st.stamp) != buffer.OutcomeStale {
				st.finalStamp = st.stamp
				copy(dst, data[sp.Off:sp.Off+sp.Len])
				t.m.publishFetched(st, sp.Key, data, mem)
				st.decref() // the owner's hold; joiners keep the block alive
				if mem != nil {
					mem.release() // the creator's hold
				}
				t.m.cfg.Registry.Counter("module.gcache_hits").Inc()
				return owned
			}
		}
		if mem != nil {
			mem.release()
		}
	}
	return append(owned, ownedSpan{sp: sp, dst: dst, st: st})
}

// issueFetches groups the owned miss spans into runs of consecutive block
// indices and puts them on the wire: one vectored ReadBlocks carrying
// every run as an extent (the default), or — with Config.DisableVector —
// one legacy Read per run. Either way the sub-requests of a request are
// all in flight before the first response is awaited.
func (t *CachedTransport) issueFetches(iod int, file blockio.FileID, owned []ownedSpan, pr *pendingRead) error {
	if len(owned) == 0 {
		return nil
	}
	bs := t.m.buf.BlockSize()
	var runs []fetchRun
	for start := 0; start < len(owned); {
		end := start + 1
		for end < len(owned) && owned[end].sp.Key.Index == owned[end-1].sp.Key.Index+1 {
			end++
		}
		group := owned[start:end]
		run := fetchRun{firstIdx: group[0].sp.Key.Index}
		for _, o := range group {
			run.keys = append(run.keys, o.sp.Key)
			run.states = append(run.states, o.st)
			run.spans = append(run.spans, tgtSpan{sp: o.sp, dst: o.dst})
		}
		runs = append(runs, run)
		start = end
	}
	// Rounding spans up to whole blocks can inflate a fetch far past the
	// original request bytes (sub-block extents each cost a full block),
	// so bound every run — and every vectored batch of runs — by what one
	// response frame can carry, splitting into several round trips when
	// necessary.
	runs = splitRuns(runs, maxFetchBlocks(bs))

	if t.m.cfg.DisableVector {
		for i, run := range runs {
			sub := &wire.Read{
				Client: t.m.cfg.ClientID,
				File:   file,
				Offset: run.firstIdx * int64(bs),
				Length: int64(len(run.keys)) * int64(bs),
				Track:  pr.admit != admitNever,
			}
			ch, err := t.m.data[iod].Go(sub)
			if err != nil {
				t.abortFetches(pr.fetches, err)
				// The failing run AND the not-yet-issued ones: all their
				// fetch-table claims must be released, or later readers
				// of those blocks would wait forever.
				t.abortRuns(runs[i:], err)
				return err
			}
			pr.fetches = append(pr.fetches, fetch{iod: iod, ch: ch, runs: []fetchRun{run}})
			t.m.cfg.Registry.Counter("module.read_subrequests").Inc()
		}
		return nil
	}

	for start := 0; start < len(runs); {
		batch := runs[start : start+1]
		blocks := len(runs[start].keys)
		for end := start + 1; end < len(runs) && blocks+len(runs[end].keys) <= maxFetchBlocks(bs); end++ {
			blocks += len(runs[end].keys)
			batch = runs[start : end+1]
		}
		exts := make([]wire.ReadExtent, len(batch))
		for i, run := range batch {
			exts[i] = wire.ReadExtent{
				Offset: run.firstIdx * int64(bs),
				Length: int64(len(run.keys)) * int64(bs),
			}
		}
		ch, err := t.m.data[iod].Go(&wire.ReadBlocks{
			Client: t.m.cfg.ClientID,
			File:   file,
			Track:  pr.admit != admitNever,
			Exts:   exts,
		})
		if err != nil {
			t.abortFetches(pr.fetches, err)
			t.abortRuns(runs[start:], err)
			return err
		}
		pr.fetches = append(pr.fetches, fetch{iod: iod, ch: ch, runs: batch})
		t.m.cfg.Registry.Counter("module.read_subrequests").Inc()
		t.m.cfg.Registry.Counter("module.read_vector_fetches").Inc()
		start += len(batch)
	}
	return nil
}

// maxFetchBlocks is the most blocks one fetch (a run in legacy mode, a
// batch of runs in vectored mode) may carry and still fit a response
// frame (wire.ValidateExtents' bound), with one block of slack.
func maxFetchBlocks(bs int) int {
	n := wire.MaxMessageSize/2/bs - 1
	if n < 1 {
		n = 1
	}
	return n
}

// splitRuns bounds every run at maxBlocks consecutive blocks, splitting
// oversized ones (a sub-block-striped request can round up to far more
// block bytes than it asked for) into several runs that fetch separately.
func splitRuns(runs []fetchRun, maxBlocks int) []fetchRun {
	out := make([]fetchRun, 0, len(runs))
	for _, run := range runs {
		if len(run.keys) <= maxBlocks {
			out = append(out, run)
			continue
		}
		spanAt := 0
		for start := 0; start < len(run.keys); start += maxBlocks {
			end := start + maxBlocks
			if end > len(run.keys) {
				end = len(run.keys)
			}
			sub := fetchRun{
				firstIdx: run.keys[start].Index,
				keys:     run.keys[start:end],
				states:   run.states[start:end],
			}
			lastIdx := run.keys[end-1].Index
			// Spans are ordered by block, so a cursor partitions them.
			spanStart := spanAt
			for spanAt < len(run.spans) && run.spans[spanAt].sp.Key.Index <= lastIdx {
				spanAt++
			}
			sub.spans = run.spans[spanStart:spanAt]
			out = append(out, sub)
		}
	}
	return out
}

// sendRead classifies each block span of the request as a cache hit, a
// join on an in-flight fetch, or a miss this process must fetch. All the
// missing runs of the request leave in one vectored sub-request; a cached
// block in the middle of the request therefore costs an extent boundary,
// not an extra round trip. With a sink (zero-copy path) every span writes
// straight into the caller's buffer; otherwise a response buffer is
// allocated and the response carries it.
func (t *CachedTransport) sendRead(iod int, req *wire.Read, sink [][]byte) (*pendingOp, error) {
	// The request length is attacker-controlled at this boundary (the same
	// hostile-allocation guard the iod and the wire decoders apply):
	// reject anything that could not be framed back in a response before
	// allocating or spanning it.
	if req.Offset < 0 || req.Length < 0 || req.Length > wire.MaxMessageSize/2 {
		return &pendingOp{ready: &wire.ReadResp{Status: wire.StatusBadRequest}}, nil
	}
	bs := t.m.buf.BlockSize()
	spans := blockio.Spans(req.File, req.Offset, req.Length, bs)
	rt := t.m.traceStart("read", req.File, req.Offset, req.Length)
	tenant := t.m.tenantOf(req.File)
	qos, ok := t.m.acquireFetchBudget(tenant, len(spans))
	if !ok {
		rt.finish(fmt.Sprintf("shed overload tenant=%d (%d blocks over budget)", tenant, len(spans)))
		return &pendingOp{ready: &wire.ReadResp{Status: wire.StatusOverload}}, nil
	}
	pr := &pendingRead{admit: t.m.readAdmitMode(req.File), qos: qos, qosBlocks: len(spans), trace: rt}
	var dstBase []byte
	if sink != nil {
		pr.sink = true
		dstBase = sink[0]
	} else {
		pr.result = make([]byte, req.Length)
		dstBase = pr.result
	}
	var owned []ownedSpan // spans whose fetch this process owns
	for _, sp := range spans {
		owned = t.classifySpan(iod, sp, dstBase[sp.Pos:sp.Pos+int64(sp.Len)], pr, owned)
	}
	rt.hop("classified: %d spans, %d hits, %d joins, %d misses",
		len(spans), len(spans)-len(owned)-len(pr.waits), len(pr.waits), len(owned))
	if err := t.issueFetches(iod, req.File, owned, pr); err != nil {
		pr.releaseBudget()
		rt.finish(fmt.Sprintf("issue error: %v", err))
		return nil, err
	}
	if len(pr.fetches) == 0 && len(pr.waits) == 0 {
		// Entire request served from the cache: the response is ready now;
		// libpvfs's receive call will be faked locally.
		pr.releaseBudget()
		t.m.cfg.Registry.Counter("module.read_full_hits").Inc()
		rt.finish("full cache hit")
		return &pendingOp{ready: &wire.ReadResp{Status: wire.StatusOK, Data: pr.result}}, nil
	}
	rt.hop("issued %d fetches", len(pr.fetches))
	return &pendingOp{read: pr}, nil
}

// sendVectorRead runs the cache FSM for a vectored request: libpvfs sends
// one ReadBlocks per iod when several striping pieces of an operation land
// on the same daemon. Every extent's spans classify against the cache
// exactly as a plain read's do, and whatever is missing across all of
// them leaves in a single vectored sub-request. sink, when non-nil,
// carries one destination slice per extent.
func (t *CachedTransport) sendVectorRead(iod int, req *wire.ReadBlocks, sink [][]byte) (*pendingOp, error) {
	bs := t.m.buf.BlockSize()
	total, ok := wire.ValidateExtents(req.Exts)
	if !ok {
		return &pendingOp{ready: &wire.ReadBlocksResp{Status: wire.StatusBadRequest}}, nil
	}
	nblocks := 0
	for _, e := range req.Exts {
		if e.Length > 0 {
			_, count := blockio.BlockRange(e.Offset, e.Length, bs)
			nblocks += int(count)
		}
	}
	var firstOff int64
	if len(req.Exts) > 0 {
		firstOff = req.Exts[0].Offset
	}
	rt := t.m.traceStart("readv", req.File, firstOff, total)
	tenant := t.m.tenantOf(req.File)
	qos, budgetOK := t.m.acquireFetchBudget(tenant, nblocks)
	if !budgetOK {
		rt.finish(fmt.Sprintf("shed overload tenant=%d (%d blocks over budget)", tenant, nblocks))
		return &pendingOp{ready: &wire.ReadBlocksResp{Status: wire.StatusOverload}}, nil
	}
	pr := &pendingRead{
		vector:    true,
		lens:      make([]uint32, len(req.Exts)),
		admit:     t.m.readAdmitMode(req.File),
		qos:       qos,
		qosBlocks: nblocks,
		trace:     rt,
	}
	if sink != nil {
		pr.sink = true
	} else {
		pr.result = make([]byte, total)
	}
	var owned []ownedSpan
	base := int64(0)
	for i, e := range req.Exts {
		// The cache serves every requested byte (missing data reads as
		// zero), so extents complete at full length.
		pr.lens[i] = uint32(e.Length)
		var seg []byte
		if sink != nil {
			seg = sink[i]
		} else {
			seg = pr.result[base : base+e.Length]
		}
		for _, sp := range blockio.Spans(req.File, e.Offset, e.Length, bs) {
			owned = t.classifySpan(iod, sp, seg[sp.Pos:sp.Pos+int64(sp.Len)], pr, owned)
		}
		base += e.Length
	}
	rt.hop("classified: %d extents, %d joins, %d misses", len(req.Exts), len(pr.waits), len(owned))
	if err := t.issueFetches(iod, req.File, owned, pr); err != nil {
		pr.releaseBudget()
		rt.finish(fmt.Sprintf("issue error: %v", err))
		return nil, err
	}

	if len(pr.fetches) == 0 && len(pr.waits) == 0 {
		pr.releaseBudget()
		t.m.cfg.Registry.Counter("module.read_full_hits").Inc()
		rt.finish("full cache hit")
		return &pendingOp{ready: &wire.ReadBlocksResp{Status: wire.StatusOK, Lens: pr.lens, Data: pr.result}}, nil
	}
	rt.hop("issued %d fetches", len(pr.fetches))
	return &pendingOp{read: pr}, nil
}

// completeRead waits for the pending transfers, installs fetched blocks in
// the cache, and assembles the response (status-only in sink mode: the
// caller's buffers already hold every byte).
func (t *CachedTransport) completeRead(pr *pendingRead) (wire.Message, error) {
	// The request stops being in flight when this returns, success or not:
	// every fetch has landed or aborted and every join resolved, so the
	// tenant's budget charge is returned on all paths.
	defer pr.releaseBudget()
	var firstErr error
	for _, f := range pr.fetches {
		res := <-f.ch
		if res.Err != nil {
			t.abortRuns(f.runs, res.Err)
			if firstErr == nil {
				firstErr = res.Err
			}
			pr.trace.hop("fetch iod=%d failed: %v", f.iod, res.Err)
			continue
		}
		err := t.fillFromResponse(pr, f, res.Msg)
		// The response payload has been copied into the run slabs (or
		// rejected); its leased frame buffer is dead either way.
		res.Release()
		if err != nil {
			t.abortRuns(f.runs, err)
			if firstErr == nil {
				firstErr = err
			}
			pr.trace.hop("fetch iod=%d rejected: %v", f.iod, err)
			continue
		}
		pr.trace.hop("fetch iod=%d landed (%d runs)", f.iod, len(f.runs))
	}
	for _, w := range pr.waits {
		<-w.st.done
		if w.st.err == nil && w.st.data != nil {
			copy(w.dst, w.st.data[w.off:w.off+len(w.dst)])
			// The published image carries resident bytes only as of the
			// moment the fetch landed; this request may have joined after
			// later writes were acked into the cache. Re-overlay the
			// resident valid bytes so a write that completed before this
			// read began is never answered with the pre-write snapshot.
			t.m.buf.OverlaySpan(w.key, w.off, w.dst)
			// The overlay only helps while the newer bytes are resident. If
			// the block's write stamp moved past the published image's
			// (written after the install — and possibly flushed and evicted
			// since), fall back to a synchronous fetch, which revalidates
			// against the stamp itself.
			if t.m.buf.WriteStamp(w.key) != w.st.finalStamp {
				t.m.cfg.Registry.Counter("module.join_stale_refetches").Inc()
				if err := t.m.fetchBlockSpan(w.iod, w.key, w.off, w.dst); err != nil && firstErr == nil {
					firstErr = err
				}
			}
			w.st.decref()
			t.m.cfg.Registry.Counter("module.fetch_joins").Inc()
			if w.st.prefetch {
				t.m.notePrefetchHit(w.key)
			}
			continue
		}
		w.st.decref()
		// The owner's fetch failed (or a prefetch found no stored data):
		// fall back to a synchronous fetch of our own.
		if err := t.m.fetchBlockSpan(w.iod, w.key, w.off, w.dst); err != nil {
			if firstErr == nil {
				firstErr = err
			}
		}
	}
	if len(pr.waits) > 0 {
		pr.trace.hop("resolved %d joins", len(pr.waits))
	}
	if firstErr != nil {
		pr.trace.finish(fmt.Sprintf("error: %v", firstErr))
		return nil, firstErr
	}
	pr.trace.finish("ok")
	if pr.vector {
		return &wire.ReadBlocksResp{Status: wire.StatusOK, Lens: pr.lens, Data: pr.result}, nil
	}
	return &wire.ReadResp{Status: wire.StatusOK, Data: pr.result}, nil
}

// fillFromResponse installs a fetch's blocks from its response message,
// publishes them to waiters, and copies the request's spans into their
// destinations. The response must pair with how the fetch was issued: a
// ReadBlocksResp with one entry per run for a vectored fetch, a ReadResp
// for a legacy single-run fetch. Validation runs over every run before
// any run is filled, so a hostile response is rejected whole rather than
// half-published.
func (t *CachedTransport) fillFromResponse(pr *pendingRead, f fetch, msg wire.Message) error {
	switch rr := msg.(type) {
	case *wire.ReadBlocksResp:
		if rr.Status != wire.StatusOK {
			if err := rr.Status.Err(); err != nil {
				return err
			}
		}
		if len(rr.Lens) != len(f.runs) {
			return fmt.Errorf("cachemod: vectored fetch returned %d extents, want %d", len(rr.Lens), len(f.runs))
		}
		bs := t.m.buf.BlockSize()
		for i, run := range f.runs {
			// Decode guarantees the lengths tile Data, but only the
			// requester knows what was asked for: an overlong length
			// would shift every later run's bytes and poison the shared
			// cache with misattributed data.
			if int(rr.Lens[i]) > len(run.keys)*bs {
				return fmt.Errorf("cachemod: vectored fetch extent %d overlong (%d > %d)",
					i, int(rr.Lens[i]), len(run.keys)*bs)
			}
		}
		data := rr.Data
		for i, run := range f.runs {
			served := int(rr.Lens[i])
			if err := t.fillRun(f.iod, run, data[:served], pr.admit); err != nil {
				// fillRun settled its own run's states; the caller's
				// abortRuns sweep closes the runs that never filled.
				return err
			}
			data = data[served:]
		}
		return nil
	case *wire.ReadResp:
		if rr.Status != wire.StatusOK {
			if err := rr.Status.Err(); err != nil {
				return err
			}
		}
		if len(f.runs) != 1 {
			return fmt.Errorf("cachemod: single read response for %d runs", len(f.runs))
		}
		if len(rr.Data) > len(f.runs[0].keys)*t.m.buf.BlockSize() {
			return fmt.Errorf("cachemod: fetch response overlong (%d bytes for %d blocks)",
				len(rr.Data), len(f.runs[0].keys))
		}
		return t.fillRun(f.iod, f.runs[0], rr.Data, pr.admit)
	default:
		return fmt.Errorf("cachemod: fetch failed: %v", msg.WireType())
	}
}

// fillRun slices one run's bytes into blocks, installs each block in the
// cache (zero-padded: data past what the iod stores reads as zero),
// publishes them to joined waiters, and copies the run's request spans
// into their destinations. data aliases the fetch response's leased frame
// buffer; this is the single copy of the miss path — frame to pooled slab
// — and everything downstream (cache frame, waiters, global-cache push,
// span destinations) reads from the slab, which returns to its pool when
// the last published state's reference drains. A read-around run
// (admitNever: don't-cache hint or streaming bypass) skips the install
// and the global-cache push — the slab serves the request and any
// joiners, then returns to its pool.
func (t *CachedTransport) fillRun(iod int, run fetchRun, data []byte, admit admitMode) error {
	bs := t.m.buf.BlockSize()
	// One zero-padded slab for the whole run; the published per-block
	// buffers are read-only slices of it.
	slab, mem := t.m.getSlab(len(run.keys) * bs)
	n := copy(slab, data)
	if mem != nil {
		zeroFill(slab[n:])
	}
	for i, key := range run.keys {
		blockData := slab[i*bs : (i+1)*bs]
		st := run.states[i]
		stamp := st.stamp
		for {
			// The install (or, read-around, the resident patch) presents
			// the stamp snapshotted when the fetch was issued: the image
			// must be patched with any newer resident bytes before the
			// destinations, the waiters, or the global cache see it, and
			// if the block was written mid-flight — possibly flushed and
			// evicted, leaving nothing resident to patch from — the image
			// is refused whole (OutcomeStale) and re-read from the iod
			// against a fresh stamp. The loop terminates when a re-read
			// lands with no concurrent write to its block.
			var oc buffer.Outcome
			if admit == admitNever {
				oc = t.m.buf.PatchResident(key, blockData, stamp)
			} else {
				oc = t.m.buf.InstallFetchedAdmit(key, iod, blockData, admit == admitMust, stamp)
			}
			if oc != buffer.OutcomeStale {
				break
			}
			t.m.cfg.Registry.Counter("module.fetch_stale_retries").Inc()
			stamp = t.m.buf.WriteStamp(key)
			if err := t.m.readBlockInto(iod, key, blockData); err != nil {
				// Settle this run: earlier states were published (their
				// joiners and the done-channel protocol own them; drop
				// only our hold), the rest abort with the error.
				for j := 0; j < i; j++ {
					run.states[j].decref()
				}
				t.abortRuns([]fetchRun{{keys: run.keys[i:], states: run.states[i:]}}, err)
				if mem != nil {
					mem.release()
				}
				return err
			}
		}
		st.finalStamp = stamp
		switch admit {
		case admitNever:
			t.m.buf.NoteBypass(key)
		default:
			if t.m.gcNode != nil {
				// Feed the global cache: the block's home node gets a copy
				// (made before Push returns, so the slab's lifetime is not
				// extended by the asynchronous push).
				t.m.gcNode.Push(key, iod, blockData)
			}
		}
		t.m.publishFetched(st, key, blockData, mem)
	}
	for _, ts := range run.spans {
		lo := int(ts.sp.Key.Index-run.firstIdx)*bs + ts.sp.Off
		copy(ts.dst, slab[lo:])
	}
	// Drop the owner's hold on each state now that the spans are copied;
	// joined waiters keep the slab alive until they have copied too.
	for _, st := range run.states {
		st.decref()
	}
	if mem != nil {
		mem.release() // the creator's hold
	}
	return nil
}

// abortRuns publishes a fetch failure to waiters and clears the table.
// States already published by a successful fillRun are left untouched;
// for the rest, the owner's reference is dropped with the close.
func (t *CachedTransport) abortRuns(runs []fetchRun, err error) {
	for _, run := range runs {
		for i, key := range run.keys {
			st := run.states[i]
			if st == nil {
				continue
			}
			t.m.fetchMu.Lock()
			if t.m.fetches[key] == st {
				delete(t.m.fetches, key)
			}
			t.m.fetchMu.Unlock()
			select {
			case <-st.done:
			default:
				st.err = err
				close(st.done)
				st.decref()
			}
		}
	}
}

func (t *CachedTransport) abortFetches(fs []fetch, err error) {
	for _, f := range fs {
		// No drain needed: responses demultiplex by tag and the result
		// channel is buffered, so an abandoned fetch cannot stall others.
		t.abortRuns(f.runs, err)
	}
}

// --- write path ---

// sendWrite performs the write on the cache and fakes the acknowledgment;
// the flusher propagates the data later. A write that cannot get cache
// space blocks (bounded by WriteStall) and finally falls back to writing
// through, which matches the paper's "writes may need to block for
// availability of cache space" behaviour for requests larger than the
// cache.
func (t *CachedTransport) sendWrite(iod int, req *wire.Write) (*pendingOp, error) {
	if !t.m.WriteBehind() {
		ch, err := t.m.data[iod].Go(req)
		if err != nil {
			return nil, err
		}
		return &pendingOp{call: ch}, nil
	}
	if t.m.cachePolicy(req.File) == pvfs.CacheNone {
		// Write-around: a don't-cache file's writes go straight through —
		// buffering them would dirty frames for data the application
		// declared it will not reuse, and the flusher would pay to drain
		// them anyway.
		ch, err := t.m.data[iod].Go(req)
		if err != nil {
			return nil, err
		}
		t.m.cfg.Registry.Counter("module.write_around").Inc()
		return &pendingOp{call: ch}, nil
	}
	rt := t.m.traceStart("write", req.File, req.Offset, int64(len(req.Data)))
	tenant := t.m.tenantOf(req.File)
	if t.m.shedWrite(tenant) {
		// Overload shed: the tenant is over its dirty-frame quota and the
		// flusher made no room within OverloadStall. Shedding happens
		// before any span is buffered, so the whole operation is cleanly
		// re-issuable by the client's retry loop.
		rt.finish(fmt.Sprintf("shed overload tenant=%d (%d dirty)", tenant, t.m.buf.DirtyCountTenant(tenant)))
		return &pendingOp{ready: &wire.WriteAck{Status: wire.StatusOverload}}, nil
	}
	bs := t.m.buf.BlockSize()
	spans := blockio.Spans(req.File, req.Offset, int64(len(req.Data)), bs)
	deadline := time.Now().Add(t.m.cfg.WriteStall)
	for _, sp := range spans {
		src := req.Data[sp.Pos : sp.Pos+int64(sp.Len)]
		if err := t.writeSpan(iod, sp, src, deadline, tenant); err != nil {
			rt.finish(fmt.Sprintf("error: %v", err))
			return nil, err
		}
	}
	// Keep the flusher ahead of demand when the dirty list grows large.
	if t.m.buf.DirtyCount() > t.m.buf.Capacity()/2 {
		t.m.kickFlusher()
	}
	t.m.cfg.Registry.Counter("module.writes_buffered").Inc()
	rt.finish(fmt.Sprintf("buffered %d spans", len(spans)))
	return &pendingOp{ready: &wire.WriteAck{Status: wire.StatusOK}}, nil
}

// writeSpan applies one block span to the cache, handling read-modify-
// write and cache-full conditions. Dirty frames are charged to tenant
// (the per-principal quota and the flusher's weighted scheduling key on
// that attribution).
func (t *CachedTransport) writeSpan(iod int, sp blockio.Span, src []byte, deadline time.Time, tenant uint32) error {
	for {
		switch t.m.buf.WriteSpanTenant(sp.Key, iod, sp.Off, src, true, tenant) {
		case buffer.OutcomeOK:
			return nil
		case buffer.OutcomeNeedFetch:
			// Another process may already be fetching this block.
			t.m.fetchMu.Lock()
			st := t.m.fetches[sp.Key]
			t.m.fetchMu.Unlock()
			if st != nil {
				// Wait for the in-flight fetch to land; no data reference
				// is taken (the retry reads the cache, not st.data).
				<-st.done
				continue
			}
			if err := t.m.fetchBlockSpan(iod, sp.Key, 0, nil); err != nil {
				// Cannot complete the merge: write this span through.
				return t.writeThrough(iod, sp, src)
			}
		case buffer.OutcomeNoSpace:
			t.m.kickHarvester()
			t.m.kickFlusher()
			t.m.cfg.Registry.Counter("module.write_stalls").Inc()
			if !t.m.waitForSpace(deadline) {
				return t.writeThrough(iod, sp, src)
			}
		}
	}
}

// writeThrough sends one span straight to the iod, bypassing the cache.
func (t *CachedTransport) writeThrough(iod int, sp blockio.Span, src []byte) error {
	t.m.cfg.Registry.Counter("module.write_through").Inc()
	res := t.m.data[iod].Call(&wire.Write{
		Client: t.m.cfg.ClientID,
		File:   sp.Key.File,
		Offset: sp.FileOffset(t.m.buf.BlockSize()),
		Data:   src,
	})
	if res.Err != nil {
		return res.Err
	}
	ack, ok := res.Msg.(*wire.WriteAck)
	if !ok {
		return fmt.Errorf("cachemod: unexpected write-through reply %v", res.Msg.WireType())
	}
	return ack.Status.Err()
}

// --- sync-write path ---

// sendSyncWrite propagates the write both to the cache and to the iod; the
// iod invalidates every other cache before acknowledging. The local cache
// copy is updated as clean (the iod already holds these bytes when the ack
// arrives).
func (t *CachedTransport) sendSyncWrite(iod int, req *wire.SyncWrite) (*pendingOp, error) {
	bs := t.m.buf.BlockSize()
	spans := blockio.Spans(req.File, req.Offset, int64(len(req.Data)), bs)
	if t.m.cachePolicy(req.File) == pvfs.CacheNone {
		spans = nil // write-around: the iod gets the data, the cache does not
	}
	for _, sp := range spans {
		src := req.Data[sp.Pos : sp.Pos+int64(sp.Len)]
		switch t.m.buf.WriteSpan(sp.Key, iod, sp.Off, src, false) {
		case buffer.OutcomeOK:
		case buffer.OutcomeNeedFetch:
			// Merging would leave an unknown gap inside the block. The
			// resident valid bytes are untouched by this write, so they
			// remain correct; simply skip caching the new span rather than
			// fetch on the critical path of a coherent write.
		case buffer.OutcomeNoSpace:
			// Not cacheable right now; the server still gets the data.
		}
	}
	ch, err := t.m.data[iod].Go(req)
	if err != nil {
		return nil, err
	}
	t.m.cfg.Registry.Counter("module.sync_writes").Inc()
	return &pendingOp{call: ch}, nil
}
