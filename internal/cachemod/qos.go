package cachemod

import (
	"strconv"
	"sync/atomic"
	"time"

	"pvfscache/internal/blockio"
	"pvfscache/internal/metrics"
)

// Multi-tenant QoS: per-principal accounting and overload shedding.
//
// libpvfs tags a file with a tenant (principal) id and weight at open time
// (pvfs.TenantHinter → CachedTransport.TenantHint → SetTenant); the module
// then charges the file's dirty frames and in-flight read blocks to that
// principal. Two bounds keep an antagonist tenant from monopolizing the
// node:
//
//   - a dirty-frame quota (Config.TenantDirtyQuota): a tenant over its
//     share of the cache's dirty frames has its buffered writes shed with
//     wire.StatusOverload after a short OverloadStall wait for flush
//     progress, instead of stalling every other tenant's writes behind a
//     full dirty list;
//   - an in-flight read budget (Config.TenantFetchBudget): a tenant with
//     too many read blocks outstanding has further reads shed the same
//     way, instead of queueing unboundedly on the fetch path.
//
// Shedding is explicit and retryable — pvfs.Client backs off and re-issues
// the whole idempotent operation — so quota pressure degrades the
// offender, not the node. Tenant 0 (untagged) is never shed: QoS only
// constrains principals that opted into tagging. The flusher's weighted
// batch selection (buffer.SetTenantWeight → apportionByWeight) is the
// scheduling half of the same seam.

// tenantState is one principal's live QoS state. weight is stored
// atomically because hints may re-arrive concurrently with request-path
// reads.
type tenantState struct {
	tenant   uint32
	weight   atomic.Int64
	inflight atomic.Int64 // read blocks currently in flight

	readSheds  *metrics.Counter
	writeSheds *metrics.Counter
}

func (m *Module) newTenantState(tenant uint32, weight int) *tenantState {
	st := &tenantState{tenant: tenant}
	st.weight.Store(int64(weight))
	tag := strconv.FormatUint(uint64(tenant), 10)
	st.readSheds = m.cfg.Registry.Counter(metrics.Labeled("module.tenant_read_sheds", "tenant", tag))
	st.writeSheds = m.cfg.Registry.Counter(metrics.Labeled("module.tenant_write_sheds", "tenant", tag))
	return st
}

// SetTenant records a file's tenant tag and scheduling weight (the
// TenantHint seam). Tenant 0 clears the tag. The table is bounded like the
// other hint tables: tags re-arrive on the next open, so resetting a full
// table costs a brief attribution lapse, not correctness.
func (m *Module) SetTenant(file blockio.FileID, tenant uint32, weight int) {
	if weight < 1 {
		weight = 1
	}
	m.tenantMu.Lock()
	if tenant == 0 {
		if _, ok := m.tenants[file]; ok {
			delete(m.tenants, file)
			m.tenantCount.Add(-1)
		}
	} else {
		if len(m.tenants) >= maxHintedFiles {
			m.tenants = make(map[blockio.FileID]uint32)
			m.tenantCount.Store(0)
		}
		if _, ok := m.tenants[file]; !ok {
			m.tenantCount.Add(1)
		}
		m.tenants[file] = tenant
		st := m.qos[tenant]
		if st == nil {
			st = m.newTenantState(tenant, weight)
			m.qos[tenant] = st
		} else {
			st.weight.Store(int64(weight))
		}
	}
	m.tenantMu.Unlock()
	if tenant != 0 {
		// The flusher's weighted batch selection shares the same weight.
		m.buf.SetTenantWeight(tenant, weight)
	}
}

// tenantOf returns a file's tenant tag (0 when untagged). The racy
// tenantCount fast path is safe for the same reason cachePolicy's is:
// tags are advisory, and a request racing a tag change may legitimately
// see either side of it.
func (m *Module) tenantOf(file blockio.FileID) uint32 {
	if m.tenantCount.Load() == 0 {
		return 0
	}
	m.tenantMu.Lock()
	t := m.tenants[file]
	m.tenantMu.Unlock()
	return t
}

// tenantState returns (creating if needed) a tenant's QoS state. A state
// created here rather than by SetTenant starts at weight 1; the next hint
// updates it.
func (m *Module) tenantState(tenant uint32) *tenantState {
	m.tenantMu.Lock()
	st := m.qos[tenant]
	if st == nil {
		st = m.newTenantState(tenant, 1)
		m.qos[tenant] = st
	}
	m.tenantMu.Unlock()
	return st
}

// overDirtyQuota reports whether a tenant has reached its dirty-frame
// quota (TenantDirtyQuota × capacity × weight, minimum one frame).
func (m *Module) overDirtyQuota(tenant uint32) bool {
	if m.cfg.TenantDirtyQuota <= 0 || tenant == 0 {
		return false
	}
	st := m.tenantState(tenant)
	quota := int(m.cfg.TenantDirtyQuota*float64(m.buf.Capacity())) * int(st.weight.Load())
	if quota < 1 {
		quota = 1
	}
	return m.buf.DirtyCountTenant(tenant) >= quota
}

// shedWrite is the write-path overload gate: an over-quota tenant's write
// first kicks the flusher and waits up to OverloadStall for flush progress
// (every acked chunk signals space), then sheds if still over. Shedding
// before any span is buffered keeps the operation cleanly re-issuable.
func (m *Module) shedWrite(tenant uint32) bool {
	if !m.overDirtyQuota(tenant) {
		return false
	}
	m.kickFlusher()
	deadline := time.Now().Add(m.cfg.OverloadStall)
	for m.overDirtyQuota(tenant) {
		if !m.waitForSpace(deadline) {
			if m.overDirtyQuota(tenant) {
				m.tenantState(tenant).writeSheds.Inc()
				return true
			}
			return false
		}
	}
	return false
}

// acquireFetchBudget charges blocks read blocks to a tenant's in-flight
// budget. It returns the charged state (nil when budgets are off or the
// tenant untagged) and whether the request may proceed; a false return
// means the caller must shed with StatusOverload. A request larger than
// the whole budget is admitted when the tenant has nothing else in flight,
// so oversized reads retry until quiet instead of wedging forever. The
// caller must release exactly once via pendingRead.releaseBudget.
func (m *Module) acquireFetchBudget(tenant uint32, blocks int) (*tenantState, bool) {
	if m.cfg.TenantFetchBudget <= 0 || tenant == 0 || blocks <= 0 {
		return nil, true
	}
	st := m.tenantState(tenant)
	limit := int64(m.cfg.TenantFetchBudget) * st.weight.Load()
	for {
		cur := st.inflight.Load()
		if cur+int64(blocks) > limit && cur > 0 {
			st.readSheds.Inc()
			return nil, false
		}
		if st.inflight.CompareAndSwap(cur, cur+int64(blocks)) {
			return st, true
		}
	}
}

// TenantInflight reports a tenant's current in-flight read-block charge
// (tests and the admin endpoint).
func (m *Module) TenantInflight(tenant uint32) int64 {
	m.tenantMu.Lock()
	st := m.qos[tenant]
	m.tenantMu.Unlock()
	if st == nil {
		return 0
	}
	return st.inflight.Load()
}
