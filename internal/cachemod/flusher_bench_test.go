package cachemod

// The write-storm drain pair: FlushAll over a full dirty cache spread
// across 4 iods whose flush ports have a realistic per-frame service
// time (disk write + network, modeled as a sleep, the same technique as
// internal/rpc's FIFO-vs-multiplexed pair — on a single-core runner a
// sleep is the only latency that can genuinely overlap). The pipelined
// engine drains all four iods in parallel with FlushWindow frames in
// flight each; the serial ablation (FlushStreams=1, FlushWindow=1) is
// the seed's shape — one blocking frame at a time, head-of-line-blocked
// across iods. Acceptance target: pipelined ≥ 2× faster.
//
//	go test -run xxx -bench FlushDrain -benchmem ./internal/cachemod/

import (
	"bytes"
	"path/filepath"
	"testing"
	"time"

	"pvfscache/internal/blockio"
	"pvfscache/internal/cachemod/buffer"
	"pvfscache/internal/iod"
	"pvfscache/internal/metrics"
	"pvfscache/internal/rpc"
	"pvfscache/internal/storage/disk"
	"pvfscache/internal/transport"
	"pvfscache/internal/wire"
)

// flushServiceTime models the iod-side cost of absorbing one flush frame
// (queueing + disk write). 400 µs is conservative against the paper's
// IDE-class disks (a seek alone is 9 ms there).
const flushServiceTime = 400 * time.Microsecond

// benchFlushModule assembles a module whose 4 flush ports ack after
// flushServiceTime. Returns the module and a dirty-fill function that
// dirties `dirty` blocks (spread evenly across the 4 iods, one file per
// iod). The cache is sized with headroom above the dirty set so the fill
// itself never stalls on space pressure and kicks no mid-fill flush —
// the measured FlushAll sees the full backlog.
func benchFlushModule(b *testing.B, dirty, streams, window int) (*Module, func()) {
	b.Helper()
	net := transport.NewMem()
	reg := metrics.NewRegistry()
	d := iod.New(0, 4096, net, reg)
	dl, err := net.Listen("")
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { dl.Close() })
	go d.ServeData(dl)

	const iods = 4
	var dataAddrs, flushAddrs []string
	for i := 0; i < iods; i++ {
		fl, err := net.Listen("")
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { fl.Close() })
		srv := rpc.NewServer(rpc.HandlerFunc(func(msg wire.Message) wire.Message {
			if _, ok := msg.(*wire.Flush); !ok {
				return nil
			}
			time.Sleep(flushServiceTime)
			return &wire.FlushAck{Status: wire.StatusOK}
		}), rpc.ServerConfig{})
		go srv.Serve(fl)
		b.Cleanup(func() { srv.Close() })
		// All data ports reach the same backing iod; owners differ only
		// for flush routing.
		dataAddrs = append(dataAddrs, dl.Addr())
		flushAddrs = append(flushAddrs, fl.Addr())
	}

	mod, err := New(Config{
		Network:       net,
		ClientID:      1,
		IODDataAddrs:  dataAddrs,
		IODFlushAddrs: flushAddrs,
		Buffer: buffer.Config{
			BlockSize: 4096,
			Capacity:  dirty * 2, // headroom: hash skew cannot starve a shard
			Shards:    4,
		},
		FlushPeriod:      time.Hour, // drains run only on FlushAll's kicks
		FlushStreams:     streams,
		FlushWindow:      window,
		DisableCoherence: true,
		Registry:         reg,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { mod.Close() })

	tr := mod.NewTransport()
	per := dirty / iods
	block := bytes.Repeat([]byte{0xAB}, 4096)
	fill := func() {
		for iodIdx := 0; iodIdx < iods; iodIdx++ {
			file := blockio.FileID(10 + iodIdx)
			for blk := 0; blk < per; blk++ {
				if err := sendRecvNoT(tr, iodIdx, &wire.Write{
					File: file, Offset: int64(blk) * 4096, Data: block,
				}); err != nil {
					b.Fatal(err)
				}
			}
		}
		if got := mod.Buffer().DirtyCount(); got != per*iods {
			b.Fatalf("dirty = %d, want %d", got, per*iods)
		}
	}
	return mod, fill
}

// benchFlushDrain measures FlushAll wall time over a 2 MB dirty backlog
// (512 blocks, 128 per iod).
func benchFlushDrain(b *testing.B, streams, window int) {
	const dirty = 512
	mod, fill := benchFlushModule(b, dirty, streams, window)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		fill()
		b.StartTimer()
		if err := mod.FlushAll(); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(dirty * 4096)
}

// BenchmarkFlushDrainPipelined: all four streams drain in parallel,
// FlushWindow (default 4) frames in flight each.
func BenchmarkFlushDrainPipelined(b *testing.B) { benchFlushDrain(b, 0, 0) }

// BenchmarkFlushDrainSerial is the seed-shape ablation: one stream at a
// time, one blocking frame per round trip.
func BenchmarkFlushDrainSerial(b *testing.B) { benchFlushDrain(b, 1, 1) }

// benchFlushModuleDisk is the real-disk variant of benchFlushModule: the
// four flush ports are four real iods, each over its own WAL-backed disk
// backend in a temp directory. No modeled sleep — the service time is
// the journal append + page-cache write the engine actually pays.
func benchFlushModuleDisk(b *testing.B, dirty, streams, window int) (*Module, func()) {
	b.Helper()
	net := transport.NewMem()
	reg := metrics.NewRegistry()

	const iods = 4
	var dataAddrs, flushAddrs []string
	for i := 0; i < iods; i++ {
		store, err := disk.Open(disk.Options{Dir: filepath.Join(b.TempDir(), "iod")})
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { store.Close() })
		d := iod.NewWithBackend(i, 4096, net, reg, store)
		dl, err := net.Listen("")
		if err != nil {
			b.Fatal(err)
		}
		fl, err := net.Listen("")
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { dl.Close(); fl.Close(); d.Close() })
		go d.ServeData(dl)
		go d.ServeFlush(fl)
		dataAddrs = append(dataAddrs, dl.Addr())
		flushAddrs = append(flushAddrs, fl.Addr())
	}

	mod, err := New(Config{
		Network:       net,
		ClientID:      1,
		IODDataAddrs:  dataAddrs,
		IODFlushAddrs: flushAddrs,
		Buffer: buffer.Config{
			BlockSize: 4096,
			Capacity:  dirty * 2,
			Shards:    4,
		},
		FlushPeriod:      time.Hour,
		FlushStreams:     streams,
		FlushWindow:      window,
		DisableCoherence: true,
		Registry:         reg,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { mod.Close() })

	tr := mod.NewTransport()
	per := dirty / iods
	block := bytes.Repeat([]byte{0xAB}, 4096)
	fill := func() {
		for iodIdx := 0; iodIdx < iods; iodIdx++ {
			file := blockio.FileID(10 + iodIdx)
			for blk := 0; blk < per; blk++ {
				if err := sendRecvNoT(tr, iodIdx, &wire.Write{
					File: file, Offset: int64(blk) * 4096, Data: block,
				}); err != nil {
					b.Fatal(err)
				}
			}
		}
		if got := mod.Buffer().DirtyCount(); got != per*iods {
			b.Fatalf("dirty = %d, want %d", got, per*iods)
		}
	}
	return mod, fill
}

func benchFlushDrainDisk(b *testing.B, streams, window int) {
	const dirty = 512
	mod, fill := benchFlushModuleDisk(b, dirty, streams, window)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		fill()
		b.StartTimer()
		if err := mod.FlushAll(); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(dirty * 4096)
}

// BenchmarkFlushDrainPipelinedDisk / SerialDisk: the FlushDrain pair
// against real WAL-backed iods instead of modeled service time — the
// first benchmark numbers in the repo that touch an actual filesystem.
func BenchmarkFlushDrainPipelinedDisk(b *testing.B) { benchFlushDrainDisk(b, 0, 0) }
func BenchmarkFlushDrainSerialDisk(b *testing.B)    { benchFlushDrainDisk(b, 1, 1) }
