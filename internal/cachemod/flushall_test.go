package cachemod

import (
	"bytes"
	"testing"
	"time"

	"pvfscache/internal/blockio"
	"pvfscache/internal/cachemod/buffer"
	"pvfscache/internal/globalcache"
	"pvfscache/internal/iod"
	"pvfscache/internal/membership"
	"pvfscache/internal/metrics"
	"pvfscache/internal/rpc"
	"pvfscache/internal/transport"
	"pvfscache/internal/wire"
)

// TestHostilePeerBlockSizeRejected: a global-cache peer that answers
// PeerGet with anything but a whole block is buggy or hostile; installing
// or slicing its bytes used to panic the node (oversize data panics
// InstallFetched, short data the span copy). The read path must instead
// drop the response, count it, and fall through to the iod fetch.
func TestHostilePeerBlockSizeRejected(t *testing.T) {
	net := transport.NewMem()
	reg := metrics.NewRegistry()
	d := iod.New(0, 4096, net, reg)
	dl, err := net.Listen("")
	if err != nil {
		t.Fatal(err)
	}
	defer dl.Close()
	go d.ServeData(dl)

	// Peer 0 is a stub that always claims a hit with an oversize block.
	pl, err := net.Listen("gc-hostile-peer")
	if err != nil {
		t.Fatal(err)
	}
	defer pl.Close()
	stub := rpc.NewServer(rpc.HandlerFunc(func(msg wire.Message) wire.Message {
		if _, ok := msg.(*wire.PeerGet); ok {
			return &wire.PeerGetResp{Status: wire.StatusOK, Data: make([]byte, 8192)}
		}
		return nil
	}), rpc.ServerConfig{})
	go stub.Serve(pl)
	defer stub.Close()

	mod, err := New(Config{
		Network:          net,
		ClientID:         1,
		IODDataAddrs:     []string{dl.Addr()},
		Buffer:           buffer.Config{BlockSize: 4096, Capacity: 16},
		DisableCoherence: true,
		GlobalCache: &globalcache.Options{
			SelfID: 1,
			Peers: []membership.Member{
				{ID: 0, Addr: "gc-hostile-peer"},
				{ID: 1, Addr: "gc-self-node"},
			},
			Replicas: 1, // primary only: the walk must hit the hostile peer
		},
		Registry: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer mod.Close()

	// A block whose ring primary is the hostile peer.
	ring := membership.NewRing(membership.StaticView([]string{"gc-hostile-peer", "gc-self-node"}), 0, 1)
	var key blockio.BlockKey
	for f := blockio.FileID(1); ; f++ {
		key = blockio.BlockKey{File: f, Index: 0}
		if ring.Primary(key) == 0 {
			break
		}
	}
	payload := bytes.Repeat([]byte{0x42}, 4096)
	d.Store().WriteAt(key.File, 0, payload)

	tr := mod.NewTransport()
	resp := sendRecv(t, tr, 0, &wire.Read{File: key.File, Offset: 0, Length: 4096}).(*wire.ReadResp)
	if !bytes.Equal(resp.Data, payload) {
		t.Fatal("read did not fall through to the iod after the bad peer response")
	}
	snap := reg.Snapshot()
	if snap.Counters["module.gcache_bad_resp"] == 0 {
		t.Fatal("bad peer response not counted")
	}
	if snap.Counters["module.gcache_hits"] != 0 {
		t.Fatal("oversize peer response counted as a hit")
	}
}

// TestFlushAllWaitsForInFlightBlocks is the regression test for the race
// FlushAll's old fixed retry budget papered over: a block taken by a
// concurrent flusher round is invisible to TakeDirty (flushing=true), so
// FlushAll can only wait for that round to land. The old implementation
// retried 1000 times with a 1 ms sleep — a ~1 s budget that a slow flush
// port overruns, making FlushAll (and therefore Close) report falsely that
// dirty blocks were left behind while the flush was still in flight. The
// deadline-based wait must ride out a flush round far slower than that
// budget and return success once the data is durable.
func TestFlushAllWaitsForInFlightBlocks(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second in-flight flush delay")
	}
	const delay = 2 * time.Second // well past the old ~1 s retry budget

	net := transport.NewMem()
	reg := metrics.NewRegistry()
	d := iod.New(0, 4096, net, reg)
	dl, err := net.Listen("")
	if err != nil {
		t.Fatal(err)
	}
	defer dl.Close()
	go d.ServeData(dl)

	// The flush port is a stub that stalls every Flush for delay before
	// applying it to the iod's store — a slow disk behind the flush peer.
	started := make(chan struct{})
	fl, err := net.Listen("")
	if err != nil {
		t.Fatal(err)
	}
	defer fl.Close()
	stub := rpc.NewServer(rpc.HandlerFunc(func(msg wire.Message) wire.Message {
		fm, ok := msg.(*wire.Flush)
		if !ok {
			return nil
		}
		close(started)
		time.Sleep(delay)
		for _, blk := range fm.Blocks {
			d.Store().WriteAt(fm.File, blk.Index*4096+int64(blk.Off), blk.Data)
		}
		return &wire.FlushAck{Status: wire.StatusOK}
	}), rpc.ServerConfig{})
	go stub.Serve(fl)
	defer stub.Close()

	mod, err := New(Config{
		Network:       net,
		ClientID:      1,
		IODDataAddrs:  []string{dl.Addr()},
		IODFlushAddrs: []string{fl.Addr()},
		Buffer:        buffer.Config{BlockSize: 4096, Capacity: 16},
		FlushPeriod:   time.Hour, // only the kicked round runs
		Registry:      reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer mod.Close()

	tr := mod.NewTransport()
	payload := bytes.Repeat([]byte{0x5A}, 4096)
	sendRecv(t, tr, 0, &wire.Write{File: 30, Offset: 0, Data: payload})

	// Put the block in flight on a background flusher round, then make
	// sure the round has really taken it before FlushAll starts.
	mod.kickFlusher()
	select {
	case <-started:
	case <-time.After(5 * time.Second):
		t.Fatal("background flusher never picked up the dirty block")
	}

	t0 := time.Now()
	if err := mod.FlushAll(); err != nil {
		t.Fatalf("FlushAll failed while a flush was in flight: %v", err)
	}
	elapsed := time.Since(t0)
	if elapsed < delay/2 {
		t.Fatalf("FlushAll returned after %v without waiting for the in-flight round", elapsed)
	}
	if n := mod.Buffer().DirtyCount(); n != 0 {
		t.Fatalf("%d dirty blocks after FlushAll", n)
	}
	got := make([]byte, 4096)
	if n, _ := d.Store().ReadAt(30, 0, got); n != 4096 || !bytes.Equal(got, payload) {
		t.Fatalf("flushed data not durable (n=%d)", n)
	}
}
