package buffer

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"testing/quick"

	"pvfscache/internal/blockio"
)

func key(file, idx int) blockio.BlockKey {
	return blockio.BlockKey{File: blockio.FileID(file), Index: int64(idx)}
}

// mgr returns a single-shard manager. These unit tests assert exact
// replacement and flush-FIFO order, which is only deterministic within one
// shard — Shards: 1 is the pre-sharding manager, kept as the ablation
// baseline. Sharded behaviour is covered by sharded_test.go.
func mgr(capacity int, policy Policy) *Manager {
	return New(Config{BlockSize: 64, Capacity: capacity, Policy: policy, Shards: 1})
}

func fill(b byte, n int) []byte { return bytes.Repeat([]byte{b}, n) }

func TestMissThenInsertThenHit(t *testing.T) {
	m := mgr(4, PolicyClock)
	dst := make([]byte, 64)
	if m.ReadSpan(key(1, 0), 0, dst) {
		t.Fatal("read of empty cache hit")
	}
	if m.InsertClean(key(1, 0), 2, fill(7, 64)) != OutcomeOK {
		t.Fatal("insert failed")
	}
	if !m.ReadSpan(key(1, 0), 0, dst) {
		t.Fatal("read after insert missed")
	}
	if !bytes.Equal(dst, fill(7, 64)) {
		t.Fatal("wrong data")
	}
	st := m.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Errorf("hits=%d misses=%d", st.Hits, st.Misses)
	}
}

func TestInsertShortDataZeroFillsTail(t *testing.T) {
	m := mgr(4, PolicyClock)
	m.InsertClean(key(1, 0), 0, fill(9, 10))
	dst := make([]byte, 64)
	if !m.ReadSpan(key(1, 0), 0, dst) {
		t.Fatal("miss")
	}
	if !bytes.Equal(dst[:10], fill(9, 10)) {
		t.Error("head wrong")
	}
	if !bytes.Equal(dst[10:], make([]byte, 54)) {
		t.Error("tail not zeroed")
	}
}

func TestPartialValidityHitAndMiss(t *testing.T) {
	m := mgr(4, PolicyClock)
	if m.WriteSpan(key(1, 5), 0, 16, fill(3, 16), true) != OutcomeOK {
		t.Fatal("write failed")
	}
	dst := make([]byte, 8)
	if !m.ReadSpan(key(1, 5), 20, dst) {
		t.Fatal("read inside valid span missed")
	}
	if m.ReadSpan(key(1, 5), 0, dst) {
		t.Fatal("read outside valid span hit")
	}
	if m.ReadSpan(key(1, 5), 30, dst) {
		t.Fatal("read straddling valid end hit")
	}
}

func TestWriteSpanMergeTouching(t *testing.T) {
	m := mgr(4, PolicyClock)
	m.WriteSpan(key(1, 0), 0, 0, fill(1, 16), true)
	// adjacent: [16,32)
	if got := m.WriteSpan(key(1, 0), 0, 16, fill(2, 16), true); got != OutcomeOK {
		t.Fatalf("adjacent write outcome %v", got)
	}
	dst := make([]byte, 32)
	if !m.ReadSpan(key(1, 0), 0, dst) {
		t.Fatal("merged span not valid")
	}
	if !bytes.Equal(dst[:16], fill(1, 16)) || !bytes.Equal(dst[16:], fill(2, 16)) {
		t.Fatal("merged data wrong")
	}
}

func TestWriteSpanGapNeedsFetch(t *testing.T) {
	m := mgr(4, PolicyClock)
	m.WriteSpan(key(1, 0), 0, 0, fill(1, 8), true)
	if got := m.WriteSpan(key(1, 0), 0, 32, fill(2, 8), true); got != OutcomeNeedFetch {
		t.Fatalf("gap write outcome %v, want NeedFetch", got)
	}
	// After a fetch fills the block, the retry succeeds.
	if m.InsertClean(key(1, 0), 0, fill(9, 64)) != OutcomeOK {
		t.Fatal("insert")
	}
	if got := m.WriteSpan(key(1, 0), 0, 32, fill(2, 8), true); got != OutcomeOK {
		t.Fatalf("retry outcome %v", got)
	}
}

func TestInsertCleanPreservesDirtyBytes(t *testing.T) {
	m := mgr(4, PolicyClock)
	// Dirty span [8,16) with 5s.
	m.WriteSpan(key(1, 0), 0, 8, fill(5, 8), true)
	// Fetch arrives with all 9s.
	m.InsertClean(key(1, 0), 0, fill(9, 64))
	dst := make([]byte, 64)
	if !m.ReadSpan(key(1, 0), 0, dst) {
		t.Fatal("miss after insert")
	}
	if !bytes.Equal(dst[:8], fill(9, 8)) {
		t.Error("prefix should be fetched data")
	}
	if !bytes.Equal(dst[8:16], fill(5, 8)) {
		t.Error("dirty bytes clobbered by fetch")
	}
	if !bytes.Equal(dst[16:], fill(9, 48)) {
		t.Error("suffix should be fetched data")
	}
	// Block must still be dirty: its write-back is pending.
	if m.DirtyCount() != 1 {
		t.Error("block lost its dirty state")
	}
}

func TestInsertCleanPreservesCleanValidBytes(t *testing.T) {
	// Resident VALID bytes win over a fetched image even when clean: a
	// just-flushed block's bytes may have landed at the iod after the
	// fetch was served there, so the fetch can be stale for the valid
	// range (the data and flush ports race).
	m := mgr(4, PolicyClock)
	m.WriteSpan(key(1, 0), 0, 8, fill(5, 8), true)
	m.FlushDone(m.TakeDirty(0)) // now clean, valid [8,16)
	m.InsertClean(key(1, 0), 0, fill(9, 64))
	dst := make([]byte, 64)
	if !m.ReadSpan(key(1, 0), 0, dst) {
		t.Fatal("miss after insert")
	}
	if !bytes.Equal(dst[8:16], fill(5, 8)) {
		t.Error("clean valid bytes clobbered by fetch")
	}
	if !bytes.Equal(dst[:8], fill(9, 8)) || !bytes.Equal(dst[16:], fill(9, 48)) {
		t.Error("invalid ranges should come from the fetch")
	}
}

func TestInstallFetchedPatchesCallerBuffer(t *testing.T) {
	m := mgr(4, PolicyClock)
	// Absent block: the image installs untouched.
	buf := fill(9, 64)
	if m.InstallFetched(key(2, 0), 0, buf, m.WriteStamp(key(2, 0))) != OutcomeOK {
		t.Fatal("install of absent block failed")
	}
	if !bytes.Equal(buf, fill(9, 64)) {
		t.Error("absent-block install must not modify the image")
	}
	// Resident valid bytes win in BOTH copies: the cache's and the
	// caller's (which goes on to readers, waiters and the global cache).
	m.WriteSpan(key(1, 0), 0, 8, fill(5, 8), true)
	buf = fill(9, 64)
	if m.InstallFetched(key(1, 0), 0, buf, m.WriteStamp(key(1, 0))) != OutcomeOK {
		t.Fatal("install over resident block failed")
	}
	if !bytes.Equal(buf[8:16], fill(5, 8)) {
		t.Error("caller buffer missing resident valid bytes")
	}
	if !bytes.Equal(buf[:8], fill(9, 8)) || !bytes.Equal(buf[16:], fill(9, 48)) {
		t.Error("bytes outside the valid interval must come from the fetch")
	}
	dst := make([]byte, 64)
	if !m.ReadSpan(key(1, 0), 0, dst) {
		t.Fatal("block not whole-valid after install")
	}
	if !bytes.Equal(dst, buf) {
		t.Error("cache copy and caller copy diverged")
	}
}

func TestDirtyFlushCycle(t *testing.T) {
	m := mgr(8, PolicyClock)
	m.WriteSpan(key(1, 0), 3, 4, fill(1, 12), true)
	m.WriteSpan(key(1, 1), 3, 0, fill(2, 64), true)
	if m.DirtyCount() != 2 {
		t.Fatalf("dirty = %d", m.DirtyCount())
	}
	items := m.TakeDirty(0)
	if len(items) != 2 {
		t.Fatalf("items = %d", len(items))
	}
	// FIFO: oldest first.
	if items[0].Key != key(1, 0) || items[0].Off != 4 || len(items[0].Data) != 12 {
		t.Errorf("item0 = %+v", items[0])
	}
	if items[0].Owner != 3 {
		t.Errorf("owner = %d", items[0].Owner)
	}
	if !bytes.Equal(items[0].Data, fill(1, 12)) {
		t.Error("snapshot data wrong")
	}
	// While flushing, TakeDirty skips in-flight blocks.
	if extra := m.TakeDirty(0); len(extra) != 0 {
		t.Fatalf("second take got %d items", len(extra))
	}
	m.FlushDone(items)
	if m.DirtyCount() != 0 {
		t.Error("blocks still dirty after FlushDone")
	}
}

func TestTakeDirtyMaxBound(t *testing.T) {
	m := mgr(8, PolicyClock)
	for i := 0; i < 5; i++ {
		m.WriteSpan(key(1, i), 0, 0, fill(byte(i), 64), true)
	}
	items := m.TakeDirty(2)
	if len(items) != 2 {
		t.Fatalf("items = %d, want 2", len(items))
	}
	m.FlushDone(items)
	if m.DirtyCount() != 3 {
		t.Errorf("dirty = %d, want 3", m.DirtyCount())
	}
}

func TestReDirtyDuringFlightStaysDirty(t *testing.T) {
	m := mgr(8, PolicyClock)
	m.WriteSpan(key(1, 0), 0, 0, fill(1, 64), true)
	items := m.TakeDirty(0)
	// Re-dirty while the flush is in flight.
	m.WriteSpan(key(1, 0), 0, 0, fill(2, 64), true)
	m.FlushDone(items)
	if m.DirtyCount() != 1 {
		t.Fatal("re-dirtied block was marked clean — lost update")
	}
	// The next flush carries the new data.
	items = m.TakeDirty(0)
	if len(items) != 1 || !bytes.Equal(items[0].Data, fill(2, 64)) {
		t.Fatal("second flush has stale data")
	}
	m.FlushDone(items)
	if m.DirtyCount() != 0 {
		t.Fatal("still dirty")
	}
}

func TestFlushFailedRetries(t *testing.T) {
	m := mgr(8, PolicyClock)
	m.WriteSpan(key(1, 0), 0, 0, fill(1, 64), true)
	items := m.TakeDirty(0)
	m.FlushFailed(items)
	if m.DirtyCount() != 1 {
		t.Fatal("failed flush should leave block dirty")
	}
	items = m.TakeDirty(0)
	if len(items) != 1 {
		t.Fatal("retry take failed")
	}
}

func TestInvalidate(t *testing.T) {
	m := mgr(4, PolicyClock)
	m.InsertClean(key(1, 0), 0, fill(1, 64))
	if !m.Invalidate(key(1, 0)) {
		t.Fatal("invalidate of resident block returned false")
	}
	if m.Invalidate(key(1, 0)) {
		t.Fatal("invalidate of absent block returned true")
	}
	if m.ReadSpan(key(1, 0), 0, make([]byte, 4)) {
		t.Fatal("read after invalidate hit")
	}
}

func TestInvalidateDirtyBlockDropsFromDirtyList(t *testing.T) {
	m := mgr(4, PolicyClock)
	m.WriteSpan(key(1, 0), 0, 0, fill(1, 64), true)
	m.Invalidate(key(1, 0))
	if m.DirtyCount() != 0 {
		t.Fatal("invalidated block still on dirty list")
	}
	if len(m.TakeDirty(0)) != 0 {
		t.Fatal("TakeDirty returned invalidated block")
	}
}

func TestInvalidateFile(t *testing.T) {
	m := mgr(8, PolicyClock)
	for i := 0; i < 3; i++ {
		m.InsertClean(key(1, i), 0, fill(1, 64))
	}
	m.InsertClean(key(2, 0), 0, fill(2, 64))
	if n := m.InvalidateFile(1); n != 3 {
		t.Fatalf("invalidated %d, want 3", n)
	}
	if !m.Contains(key(2, 0), 0, 64) {
		t.Fatal("other file's block dropped")
	}
}

func TestFlushDoneAfterInvalidateIsNoop(t *testing.T) {
	m := mgr(4, PolicyClock)
	m.WriteSpan(key(1, 0), 0, 0, fill(1, 64), true)
	items := m.TakeDirty(0)
	m.Invalidate(key(1, 0))
	m.FlushDone(items) // must not panic or resurrect
	if m.Contains(key(1, 0), 0, 1) {
		t.Fatal("block resurrected")
	}
}

func TestEvictionPrefersCleanClock(t *testing.T) {
	m := mgr(4, PolicyClock)
	m.WriteSpan(key(1, 0), 0, 0, fill(1, 64), true) // dirty
	m.InsertClean(key(1, 1), 0, fill(2, 64))        // clean
	m.WriteSpan(key(1, 2), 0, 0, fill(3, 64), true) // dirty
	m.InsertClean(key(1, 3), 0, fill(4, 64))        // clean
	// Cache full. Allocating two more blocks must evict the clean ones.
	if m.InsertClean(key(1, 4), 0, fill(5, 64)) != OutcomeOK {
		t.Fatal("insert with clean victims failed")
	}
	if m.InsertClean(key(1, 5), 0, fill(6, 64)) != OutcomeOK {
		t.Fatal("second insert failed")
	}
	if !m.Contains(key(1, 0), 0, 64) || !m.Contains(key(1, 2), 0, 64) {
		t.Fatal("dirty block was evicted")
	}
	if m.Contains(key(1, 1), 0, 64) || m.Contains(key(1, 3), 0, 64) {
		t.Fatal("clean blocks should have been evicted")
	}
}

func TestAllDirtyNoSpace(t *testing.T) {
	m := mgr(2, PolicyClock)
	m.WriteSpan(key(1, 0), 0, 0, fill(1, 64), true)
	m.WriteSpan(key(1, 1), 0, 0, fill(2, 64), true)
	if got := m.InsertClean(key(1, 2), 0, fill(3, 64)); got != OutcomeNoSpace {
		t.Fatalf("outcome %v, want NoSpace", got)
	}
	if got := m.WriteSpan(key(1, 3), 0, 0, fill(4, 64), true); got != OutcomeNoSpace {
		t.Fatalf("outcome %v, want NoSpace", got)
	}
	// Flushing unblocks allocation.
	items := m.TakeDirty(0)
	m.FlushDone(items)
	if got := m.InsertClean(key(1, 2), 0, fill(3, 64)); got != OutcomeOK {
		t.Fatalf("after flush outcome %v", got)
	}
}

func TestFlushingBlockNotEvicted(t *testing.T) {
	m := mgr(1, PolicyClock)
	m.WriteSpan(key(1, 0), 0, 0, fill(1, 64), true)
	items := m.TakeDirty(0)
	m.FlushDone(items) // now clean
	// Dirty it again and take a snapshot: flushing=true, but FlushDone not
	// yet called.
	m.WriteSpan(key(1, 0), 0, 0, fill(2, 64), true)
	_ = m.TakeDirty(0)
	if got := m.InsertClean(key(2, 0), 0, fill(3, 64)); got != OutcomeNoSpace {
		t.Fatalf("in-flight block evicted: %v", got)
	}
}

func TestClockSecondChance(t *testing.T) {
	m := mgr(3, PolicyClock)
	m.InsertClean(key(1, 0), 0, fill(1, 64))
	m.InsertClean(key(1, 1), 0, fill(2, 64))
	m.InsertClean(key(1, 2), 0, fill(3, 64))
	// Reference 0 and 2 repeatedly; 1 is untouched after its insert's ref
	// decays over the first sweep.
	dst := make([]byte, 4)
	for i := 0; i < 3; i++ {
		m.ReadSpan(key(1, 0), 0, dst)
		m.ReadSpan(key(1, 2), 0, dst)
	}
	// Force an eviction. The hand sweeps: everyone has ref=1 from insert/
	// touch, so the first sweep clears; the victim must not be 0 or 2 if
	// they get re-referenced... after one full clearing sweep the first
	// unreferenced clean block is chosen. We only assert: some block was
	// evicted and the cache still works.
	if m.InsertClean(key(1, 3), 0, fill(4, 64)) != OutcomeOK {
		t.Fatal("insert failed")
	}
	st := m.Stats()
	if st.Evictions != 1 || st.Resident != 3 {
		t.Errorf("stats %+v", st)
	}
}

func TestExactLRUEvictsLeastRecent(t *testing.T) {
	m := mgr(3, PolicyLRU)
	m.InsertClean(key(1, 0), 0, fill(1, 64))
	m.InsertClean(key(1, 1), 0, fill(2, 64))
	m.InsertClean(key(1, 2), 0, fill(3, 64))
	dst := make([]byte, 4)
	// Touch 0 and 1; 2 becomes least recent.
	m.ReadSpan(key(1, 0), 0, dst)
	m.ReadSpan(key(1, 1), 0, dst)
	m.InsertClean(key(1, 3), 0, fill(4, 64))
	if m.Contains(key(1, 2), 0, 64) {
		t.Fatal("LRU victim should be block 2")
	}
	if !m.Contains(key(1, 0), 0, 64) || !m.Contains(key(1, 1), 0, 64) {
		t.Fatal("recently used blocks evicted")
	}
}

func TestHarvestWatermarks(t *testing.T) {
	m := New(Config{BlockSize: 64, Capacity: 10, LowWater: 2, HighWater: 5, Shards: 1})
	for i := 0; i < 9; i++ {
		m.InsertClean(key(1, i), 0, fill(byte(i), 64))
	}
	if !m.NeedsHarvest() {
		t.Fatal("free=1 < low=2 should need harvest")
	}
	freed := m.Harvest()
	if got := m.FreeCount(); got != 5 {
		t.Fatalf("free after harvest = %d, want 5 (freed %d)", got, freed)
	}
	if m.NeedsHarvest() {
		t.Fatal("harvest did not clear the trigger")
	}
}

func TestHarvestSkipsDirty(t *testing.T) {
	m := New(Config{BlockSize: 64, Capacity: 4, LowWater: 2, HighWater: 4, Shards: 1})
	for i := 0; i < 4; i++ {
		m.WriteSpan(key(1, i), 0, 0, fill(byte(i), 64), true)
	}
	if freed := m.Harvest(); freed != 0 {
		t.Fatalf("harvest evicted %d dirty blocks", freed)
	}
	items := m.TakeDirty(0)
	m.FlushDone(items)
	if freed := m.Harvest(); freed != 4 {
		t.Fatalf("freed %d, want 4", freed)
	}
}

func TestStatsAccounting(t *testing.T) {
	m := mgr(4, PolicyClock)
	st := m.Stats()
	if st.Capacity != 4 || st.Free != 4 || st.Resident != 0 {
		t.Errorf("initial stats %+v", st)
	}
	m.InsertClean(key(1, 0), 0, fill(1, 64))
	m.WriteSpan(key(1, 1), 0, 0, fill(2, 64), true)
	st = m.Stats()
	if st.Resident != 2 || st.Free != 2 || st.Dirty != 1 {
		t.Errorf("stats %+v", st)
	}
}

func TestZeroLengthOps(t *testing.T) {
	m := mgr(4, PolicyClock)
	if !m.ReadSpan(key(1, 0), 0, nil) {
		t.Error("zero-length read should trivially hit")
	}
	if m.WriteSpan(key(1, 0), 0, 0, nil, true) != OutcomeOK {
		t.Error("zero-length write should be OK")
	}
	if m.Contains(key(1, 0), 0, 1) {
		t.Error("zero-length write must not allocate")
	}
}

func TestWriteSpanOutOfBoundsPanics(t *testing.T) {
	m := mgr(4, PolicyClock)
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	m.WriteSpan(key(1, 0), 0, 60, fill(1, 8), true)
}

func TestConcurrentMixedOps(t *testing.T) {
	m := New(Config{BlockSize: 64, Capacity: 32})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			dst := make([]byte, 64)
			for i := 0; i < 200; i++ {
				k := key(1, (g*7+i)%64)
				switch i % 4 {
				case 0:
					m.WriteSpan(k, 0, 0, fill(byte(i), 64), true)
				case 1:
					m.ReadSpan(k, 0, dst)
				case 2:
					m.InsertClean(k, 0, fill(byte(i), 64))
				case 3:
					items := m.TakeDirty(4)
					m.FlushDone(items)
				}
				if m.NeedsHarvest() {
					m.Harvest()
				}
			}
		}(g)
	}
	wg.Wait()
	st := m.Stats()
	if st.Resident+st.Free != 32 {
		t.Fatalf("frames leaked: resident=%d free=%d", st.Resident, st.Free)
	}
	if err := m.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

// Property: resident + free == capacity after any operation sequence, and
// dirty <= resident.
func TestFrameConservationProperty(t *testing.T) {
	type op struct {
		Kind byte
		Blk  uint8
		Off  uint8
		Len  uint8
	}
	f := func(ops []op) bool {
		m := New(Config{BlockSize: 64, Capacity: 8})
		for _, o := range ops {
			k := key(1, int(o.Blk%16))
			off := int(o.Off) % 64
			length := int(o.Len)%(64-off) + 1
			switch o.Kind % 6 {
			case 0:
				m.WriteSpan(k, 0, off, fill(1, length), true)
			case 1:
				m.ReadSpan(k, off, make([]byte, length))
			case 2:
				m.InsertClean(k, 0, fill(2, 64))
			case 3:
				m.FlushDone(m.TakeDirty(3))
			case 4:
				m.Invalidate(k)
			case 5:
				m.Harvest()
			}
			st := m.Stats()
			if st.Resident+st.Free != 8 {
				return false
			}
			if st.Dirty > st.Resident {
				return false
			}
			if m.CheckConsistency() != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: data written then read back (within one block, marked dirty,
// no eviction pressure) round-trips.
func TestWriteReadRoundTripProperty(t *testing.T) {
	f := func(off uint8, raw []byte, blk uint8) bool {
		m := New(Config{BlockSize: 256, Capacity: 4})
		o := int(off) % 256
		max := 256 - o
		if len(raw) == 0 {
			return true
		}
		data := raw
		if len(data) > max {
			data = data[:max]
		}
		k := key(2, int(blk%2))
		if m.WriteSpan(k, 0, o, data, true) != OutcomeOK {
			return false
		}
		dst := make([]byte, len(data))
		if !m.ReadSpan(k, o, dst) {
			return false
		}
		return bytes.Equal(dst, data)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPolicyString(t *testing.T) {
	if PolicyClock.String() != "clock" || PolicyLRU.String() != "lru" {
		t.Error("policy names")
	}
	if Policy(9).String() == "" {
		t.Error("unknown policy should render")
	}
	if OutcomeOK.String() != "ok" || OutcomeNeedFetch.String() != "need-fetch" ||
		OutcomeNoSpace.String() != "no-space" || Outcome(9).String() == "" {
		t.Error("outcome names")
	}
}

func TestDefaultsApplied(t *testing.T) {
	m := New(Config{})
	if m.BlockSize() != blockio.DefaultBlockSize {
		t.Errorf("block size = %d", m.BlockSize())
	}
	if m.Capacity() != 300 {
		t.Errorf("capacity = %d", m.Capacity())
	}
}

func TestManyFilesNoKeyCollisions(t *testing.T) {
	m := New(Config{BlockSize: 64, Capacity: 100})
	for f := 0; f < 10; f++ {
		for b := 0; b < 5; b++ {
			m.InsertClean(key(f+1, b), 0, fill(byte(f*16+b), 64))
		}
	}
	dst := make([]byte, 64)
	for f := 0; f < 10; f++ {
		for b := 0; b < 5; b++ {
			if !m.ReadSpan(key(f+1, b), 0, dst) {
				t.Fatalf("file %d block %d missing", f+1, b)
			}
			if dst[0] != byte(f*16+b) {
				t.Fatalf("file %d block %d data mixed up", f+1, b)
			}
		}
	}
}

func ExampleManager() {
	m := New(Config{BlockSize: 4096, Capacity: 300}) // the paper's 1.2 MB cache
	k := blockio.BlockKey{File: 1, Index: 0}
	m.WriteSpan(k, 0, 0, []byte("hello"), true)
	dst := make([]byte, 5)
	m.ReadSpan(k, 0, dst)
	fmt.Println(string(dst), m.DirtyCount())
	// Output: hello 1
}
