// Package buffer implements the paper's "full-fledged buffer manager of
// blocks": a fixed-capacity cache of 4 KB blocks with a hash table for
// lookup, a free list refilled by the harvester between a low and a high
// watermark, a dirty list drained by the flusher, and an approximate-LRU
// (clock, second-chance) replacement policy that prefers evicting clean
// blocks over dirty ones. An exact-LRU policy is also provided for the
// ablation study — the paper explicitly chose approximate LRU because
// "exact LRU can result in a significant overhead at each read/write
// invocation".
//
// The manager is pure policy: every method is non-blocking and returns an
// explicit outcome. The live cache module wraps it with goroutines and
// waiting; the discrete-event simulator drives the same code in virtual
// time. Both therefore exercise identical replacement behaviour.
//
// Each block tracks a single valid interval and a single dirty interval
// (dirty ⊆ valid). Flushing any valid byte is safe — clean valid bytes
// equal the stored data — so a write merging with resident valid data only
// needs the dirty hull. A write that would leave an unknown gap inside the
// dirty hull reports OutcomeNeedFetch and the caller performs a
// read-modify-write.
package buffer

import (
	"container/list"
	"fmt"
	"sync"

	"pvfscache/internal/blockio"
	"pvfscache/internal/metrics"
)

// Policy selects the replacement algorithm.
type Policy int

const (
	// PolicyClock is the paper's approximate LRU: a second-chance sweep
	// that prefers clean victims.
	PolicyClock Policy = iota
	// PolicyLRU is exact LRU (ablation baseline).
	PolicyLRU
)

// String names the policy.
func (p Policy) String() string {
	switch p {
	case PolicyClock:
		return "clock"
	case PolicyLRU:
		return "lru"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// Outcome reports the result of a cache mutation.
type Outcome int

const (
	// OutcomeOK means the operation was applied to the cache.
	OutcomeOK Outcome = iota
	// OutcomeNeedFetch means the write would leave an unknown gap in the
	// block; the caller must fetch the block and retry (read-modify-write).
	OutcomeNeedFetch
	// OutcomeNoSpace means no free block was available and no clean block
	// could be evicted. The caller should flush and retry, or bypass.
	OutcomeNoSpace
)

// String names the outcome.
func (o Outcome) String() string {
	switch o {
	case OutcomeOK:
		return "ok"
	case OutcomeNeedFetch:
		return "need-fetch"
	case OutcomeNoSpace:
		return "no-space"
	default:
		return fmt.Sprintf("Outcome(%d)", int(o))
	}
}

// Config sizes a Manager.
type Config struct {
	// BlockSize is the cache block size in bytes (default 4 KB).
	BlockSize int
	// Capacity is the total number of blocks (default 300 = 1.2 MB / 4 KB,
	// the paper's per-node cache size).
	Capacity int
	// LowWater triggers harvesting when the free list falls below it
	// (default Capacity/10).
	LowWater int
	// HighWater is the harvester's refill target (default Capacity/4).
	HighWater int
	// Policy selects the replacement algorithm (default PolicyClock).
	Policy Policy
	// Registry receives hit/miss/eviction counters; nil uses a private one.
	Registry *metrics.Registry
}

func (c *Config) fillDefaults() {
	if c.BlockSize <= 0 {
		c.BlockSize = blockio.DefaultBlockSize
	}
	if c.Capacity <= 0 {
		c.Capacity = 300
	}
	if c.LowWater <= 0 {
		c.LowWater = c.Capacity / 10
	}
	if c.HighWater <= 0 {
		c.HighWater = c.Capacity / 4
	}
	if c.HighWater > c.Capacity {
		c.HighWater = c.Capacity
	}
	if c.LowWater > c.HighWater {
		c.LowWater = c.HighWater
	}
	if c.Registry == nil {
		c.Registry = metrics.NewRegistry()
	}
}

// block is one cache frame.
type block struct {
	key   blockio.BlockKey
	owner int // iod index holding this block's data on disk
	data  []byte

	validOff, validLen int
	dirtyOff, dirtyLen int
	flushGen           uint64 // bumped on every dirtying write
	flushing           bool   // a snapshot is in flight to the iod

	ref bool // clock referenced bit

	lruEl   *list.Element // position in lru list (front = most recent)
	clockEl *list.Element // position in clock ring
	dirtyEl *list.Element // position in dirty FIFO, nil when clean
}

func (b *block) dirty() bool { return b.dirtyLen > 0 }

// FlushItem is a snapshot of one dirty span handed to the flusher.
type FlushItem struct {
	Key   blockio.BlockKey
	Owner int
	Off   int
	Data  []byte
	gen   uint64
}

// Stats is a point-in-time summary of manager state.
type Stats struct {
	Capacity  int
	Resident  int
	Free      int
	Dirty     int
	Hits      int64
	Misses    int64
	Evictions int64
}

// Manager is the buffer manager. All methods are safe for concurrent use.
// (The in-kernel implementation used finer-grained locks; a single mutex
// preserves the same externally visible behaviour.)
type Manager struct {
	cfg Config

	mu        sync.Mutex
	table     map[blockio.BlockKey]*block
	free      []*block
	lru       *list.List // exact-LRU order, front = most recently used
	clockRing *list.List // resident blocks in insertion order
	clockHand *list.Element
	dirtyFIFO *list.List // blocks awaiting flush, front = oldest

	hits, misses, evictions int64
}

// New returns a manager with cfg (zero fields take defaults).
func New(cfg Config) *Manager {
	cfg.fillDefaults()
	m := &Manager{
		cfg:       cfg,
		table:     make(map[blockio.BlockKey]*block, cfg.Capacity),
		free:      make([]*block, 0, cfg.Capacity),
		lru:       list.New(),
		clockRing: list.New(),
		dirtyFIFO: list.New(),
	}
	// Pre-allocate every frame, as the kernel module does: allocation at
	// request time only pops the free list.
	backing := make([]byte, cfg.Capacity*cfg.BlockSize)
	for i := 0; i < cfg.Capacity; i++ {
		m.free = append(m.free, &block{data: backing[i*cfg.BlockSize : (i+1)*cfg.BlockSize]})
	}
	return m
}

// BlockSize returns the configured block size.
func (m *Manager) BlockSize() int { return m.cfg.BlockSize }

// Capacity returns the total number of frames.
func (m *Manager) Capacity() int { return m.cfg.Capacity }

// ReadSpan copies the bytes [off, off+len(dst)) of the block into dst if
// they are all valid in the cache. It returns false — and counts a miss —
// otherwise. A hit marks the block referenced and refreshes its LRU
// position.
func (m *Manager) ReadSpan(key blockio.BlockKey, off int, dst []byte) bool {
	if len(dst) == 0 {
		return true
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	b, ok := m.table[key]
	if !ok || !covers(b.validOff, b.validLen, off, len(dst)) {
		m.misses++
		m.cfg.Registry.Counter("cache.misses").Inc()
		return false
	}
	copy(dst, b.data[off:off+len(dst)])
	m.touch(b)
	m.hits++
	m.cfg.Registry.Counter("cache.hits").Inc()
	return true
}

// Contains reports whether the whole span is valid in the cache without
// copying or disturbing replacement state.
func (m *Manager) Contains(key blockio.BlockKey, off, length int) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	b, ok := m.table[key]
	return ok && covers(b.validOff, b.validLen, off, length)
}

// WriteSpan applies src at offset off of the block, marking the span dirty
// when markDirty is set (the write-behind path) or merely valid when it is
// clear (the sync-write path, whose data is simultaneously persisted at the
// iod). owner is the iod that stores the block.
func (m *Manager) WriteSpan(key blockio.BlockKey, owner, off int, src []byte, markDirty bool) Outcome {
	if len(src) == 0 {
		return OutcomeOK
	}
	if off < 0 || off+len(src) > m.cfg.BlockSize {
		panic(fmt.Sprintf("buffer: span [%d,%d) outside block", off, off+len(src)))
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	b, ok := m.table[key]
	if !ok {
		b = m.allocate(key, owner)
		if b == nil {
			m.cfg.Registry.Counter("cache.write_nospace").Inc()
			return OutcomeNoSpace
		}
		copy(b.data[off:], src)
		b.validOff, b.validLen = off, len(src)
		if markDirty {
			m.markDirty(b, off, len(src))
		}
		m.touch(b)
		return OutcomeOK
	}
	// Merging with resident data: the write must touch the valid interval,
	// otherwise an unknown gap would sit inside the flush hull.
	if b.validLen > 0 && !touches(b.validOff, b.validLen, off, len(src)) {
		m.cfg.Registry.Counter("cache.write_rmw").Inc()
		return OutcomeNeedFetch
	}
	copy(b.data[off:], src)
	b.validOff, b.validLen = hull(b.validOff, b.validLen, off, len(src))
	if markDirty {
		m.markDirty(b, off, len(src))
	}
	m.touch(b)
	return OutcomeOK
}

// InsertClean installs a freshly fetched whole block. Bytes inside the
// block's current dirty interval are preserved: cached dirty data is newer
// than anything the iod returned. Fetched data shorter than the block size
// leaves the tail zeroed (sparse files read as zero).
func (m *Manager) InsertClean(key blockio.BlockKey, owner int, data []byte) Outcome {
	if len(data) > m.cfg.BlockSize {
		panic("buffer: InsertClean data exceeds block size")
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	b, ok := m.table[key]
	if !ok {
		b = m.allocate(key, owner)
		if b == nil {
			m.cfg.Registry.Counter("cache.insert_nospace").Inc()
			return OutcomeNoSpace
		}
		n := copy(b.data, data)
		zero(b.data[n:])
		b.validOff, b.validLen = 0, m.cfg.BlockSize
		m.touch(b)
		return OutcomeOK
	}
	// Merge: preserve dirty bytes, refresh everything else.
	var saved []byte
	if b.dirty() {
		saved = append(saved, b.data[b.dirtyOff:b.dirtyOff+b.dirtyLen]...)
	}
	n := copy(b.data, data)
	zero(b.data[n:])
	if saved != nil {
		copy(b.data[b.dirtyOff:], saved)
	}
	b.validOff, b.validLen = 0, m.cfg.BlockSize
	m.touch(b)
	return OutcomeOK
}

// TakeDirty snapshots up to max dirty blocks (oldest first) for flushing.
// The blocks stay resident and readable; a subsequent FlushDone marks each
// clean unless it was re-dirtied while the flush was in flight. Blocks
// already being flushed are skipped.
func (m *Manager) TakeDirty(max int) []FlushItem {
	m.mu.Lock()
	defer m.mu.Unlock()
	if max <= 0 {
		max = m.dirtyFIFO.Len()
	}
	items := make([]FlushItem, 0, min(max, m.dirtyFIFO.Len()))
	for el := m.dirtyFIFO.Front(); el != nil && len(items) < max; el = el.Next() {
		b := el.Value.(*block)
		if b.flushing {
			continue
		}
		b.flushing = true
		data := make([]byte, b.dirtyLen)
		copy(data, b.data[b.dirtyOff:b.dirtyOff+b.dirtyLen])
		items = append(items, FlushItem{
			Key:   b.key,
			Owner: b.owner,
			Off:   b.dirtyOff,
			Data:  data,
			gen:   b.flushGen,
		})
	}
	return items
}

// FlushDone marks the snapshot's blocks clean. A block whose flushGen
// advanced since TakeDirty was re-dirtied concurrently and stays on the
// dirty list (its next flush will carry the new data).
func (m *Manager) FlushDone(items []FlushItem) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, it := range items {
		b, ok := m.table[it.Key]
		if !ok {
			continue // evicted or invalidated meanwhile
		}
		b.flushing = false
		if b.flushGen != it.gen {
			continue // re-dirtied during flight
		}
		m.markClean(b)
	}
}

// FlushFailed clears the in-flight mark without cleaning, so the blocks are
// retried on the next flusher round.
func (m *Manager) FlushFailed(items []FlushItem) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, it := range items {
		if b, ok := m.table[it.Key]; ok {
			b.flushing = false
		}
	}
}

// Invalidate drops the block, returning whether it was resident. Dirty data
// is discarded — the iod-side writer that triggered the invalidation holds
// the authoritative bytes (the paper's sync-write semantics).
func (m *Manager) Invalidate(key blockio.BlockKey) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	b, ok := m.table[key]
	if !ok {
		return false
	}
	m.removeBlock(b)
	m.cfg.Registry.Counter("cache.invalidations").Inc()
	return true
}

// InvalidateFile drops every resident block of a file and returns how many
// were dropped.
func (m *Manager) InvalidateFile(file blockio.FileID) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	var victims []*block
	for key, b := range m.table {
		if key.File == file {
			victims = append(victims, b)
		}
	}
	for _, b := range victims {
		m.removeBlock(b)
	}
	return len(victims)
}

// NeedsHarvest reports whether the free list has fallen below the low
// watermark.
func (m *Manager) NeedsHarvest() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.free) < m.cfg.LowWater
}

// Harvest evicts clean blocks until the free list reaches the high
// watermark or no evictable block remains. It returns the number of blocks
// freed. Dirty blocks are never evicted here — the caller should flush and
// call Harvest again (the paper's harvester/flusher cooperation).
func (m *Manager) Harvest() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	freed := 0
	for len(m.free) < m.cfg.HighWater {
		v := m.pickVictim()
		if v == nil {
			break
		}
		m.removeBlock(v)
		m.evictions++
		m.cfg.Registry.Counter("cache.evictions").Inc()
		freed++
	}
	return freed
}

// Stats returns a snapshot of occupancy and activity.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return Stats{
		Capacity:  m.cfg.Capacity,
		Resident:  len(m.table),
		Free:      len(m.free),
		Dirty:     m.dirtyFIFO.Len(),
		Hits:      m.hits,
		Misses:    m.misses,
		Evictions: m.evictions,
	}
}

// DirtyCount returns the dirty-list length.
func (m *Manager) DirtyCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.dirtyFIFO.Len()
}

// FreeCount returns the free-list length.
func (m *Manager) FreeCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.free)
}

// --- internal (m.mu held) ---

// allocate pops a free frame or inline-evicts a clean block. It returns nil
// when neither is possible (everything resident is dirty or flushing).
func (m *Manager) allocate(key blockio.BlockKey, owner int) *block {
	var b *block
	if n := len(m.free); n > 0 {
		b = m.free[n-1]
		m.free = m.free[:n-1]
	} else {
		v := m.pickVictim()
		if v == nil {
			return nil
		}
		m.removeBlock(v)
		m.evictions++
		m.cfg.Registry.Counter("cache.evictions").Inc()
		b = m.free[len(m.free)-1]
		m.free = m.free[:len(m.free)-1]
	}
	b.key = key
	b.owner = owner
	b.validOff, b.validLen = 0, 0
	b.dirtyOff, b.dirtyLen = 0, 0
	b.flushGen = 0
	b.flushing = false
	b.ref = false
	m.table[key] = b
	b.lruEl = m.lru.PushFront(b)
	b.clockEl = m.clockRing.PushBack(b)
	return b
}

// removeBlock detaches a block from every structure and returns its frame
// to the free list.
func (m *Manager) removeBlock(b *block) {
	delete(m.table, b.key)
	if b.lruEl != nil {
		m.lru.Remove(b.lruEl)
		b.lruEl = nil
	}
	if b.clockEl != nil {
		if m.clockHand == b.clockEl {
			m.clockHand = b.clockEl.Next()
		}
		m.clockRing.Remove(b.clockEl)
		b.clockEl = nil
	}
	if b.dirtyEl != nil {
		m.dirtyFIFO.Remove(b.dirtyEl)
		b.dirtyEl = nil
	}
	b.dirtyOff, b.dirtyLen = 0, 0
	b.validOff, b.validLen = 0, 0
	m.free = append(m.free, b)
}

// touch refreshes replacement state after an access.
func (m *Manager) touch(b *block) {
	b.ref = true
	m.lru.MoveToFront(b.lruEl)
}

// markDirty extends the block's dirty hull and enqueues it for flushing.
func (m *Manager) markDirty(b *block, off, length int) {
	b.dirtyOff, b.dirtyLen = hull(b.dirtyOff, b.dirtyLen, off, length)
	b.flushGen++
	if b.dirtyEl == nil {
		b.dirtyEl = m.dirtyFIFO.PushBack(b)
	}
}

// markClean clears the dirty state after a successful flush.
func (m *Manager) markClean(b *block) {
	b.dirtyOff, b.dirtyLen = 0, 0
	if b.dirtyEl != nil {
		m.dirtyFIFO.Remove(b.dirtyEl)
		b.dirtyEl = nil
	}
}

// pickVictim chooses a clean, non-flushing resident block according to the
// policy, or nil if none exists.
func (m *Manager) pickVictim() *block {
	if m.cfg.Policy == PolicyLRU {
		for el := m.lru.Back(); el != nil; el = el.Prev() {
			b := el.Value.(*block)
			if !b.dirty() && !b.flushing {
				return b
			}
		}
		return nil
	}
	// Clock (second chance), preferring clean blocks: sweep at most two
	// full revolutions. First revolution gives referenced blocks a second
	// chance; the second picks any clean block.
	n := m.clockRing.Len()
	if n == 0 {
		return nil
	}
	advance := func(el *list.Element) *list.Element {
		if el == nil || el.Next() == nil {
			return m.clockRing.Front()
		}
		return el.Next()
	}
	if m.clockHand == nil {
		m.clockHand = m.clockRing.Front()
	}
	for pass := 0; pass < 2; pass++ {
		for i := 0; i < n; i++ {
			el := m.clockHand
			m.clockHand = advance(el)
			b := el.Value.(*block)
			if b.dirty() || b.flushing {
				continue
			}
			if pass == 0 && b.ref {
				b.ref = false
				continue
			}
			return b
		}
	}
	return nil
}

// --- interval helpers ---

// covers reports whether [off, off+length) lies inside [vOff, vOff+vLen).
func covers(vOff, vLen, off, length int) bool {
	return vLen > 0 && off >= vOff && off+length <= vOff+vLen
}

// touches reports whether the two intervals overlap or are adjacent.
func touches(aOff, aLen, bOff, bLen int) bool {
	return bOff <= aOff+aLen && aOff <= bOff+bLen
}

// hull returns the smallest interval containing both inputs. A zero-length
// first interval yields the second.
func hull(aOff, aLen, bOff, bLen int) (int, int) {
	if aLen == 0 {
		return bOff, bLen
	}
	lo := aOff
	if bOff < lo {
		lo = bOff
	}
	hi := aOff + aLen
	if bOff+bLen > hi {
		hi = bOff + bLen
	}
	return lo, hi - lo
}

func zero(p []byte) {
	for i := range p {
		p[i] = 0
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
