// Package buffer implements the paper's "full-fledged buffer manager of
// blocks": a fixed-capacity cache of 4 KB blocks with a hash table for
// lookup, a free list refilled by the harvester between a low and a high
// watermark, a dirty list drained by the flusher, and an approximate-LRU
// (clock, second-chance) replacement policy that prefers evicting clean
// blocks over dirty ones. An exact-LRU policy is also provided for the
// ablation study — the paper explicitly chose approximate LRU because
// "exact LRU can result in a significant overhead at each read/write
// invocation". A third, scan-resistant policy (PolicyGhost, see ghost.go)
// implements the paper's discretionary-admission idea: blocks must prove
// reuse against a bounded ghost list of evicted keys before they may
// displace the protected working set.
//
// The manager is pure policy: every method is non-blocking and returns an
// explicit outcome. The live cache module wraps it with goroutines and
// waiting; the discrete-event simulator drives the same code in virtual
// time. Both therefore exercise identical replacement behaviour.
//
// Concurrency: the manager is lock-striped into Config.Shards independent
// shards (see shard.go), mirroring the paper's in-kernel fine-grained
// locking. Every block key routes to exactly one shard by the same mix
// hash the global cache homes blocks with (blockio.BlockKey.Mix), and each
// shard owns its slice of the pre-allocated frames together with its own
// hash table, LRU/clock lists, dirty FIFO and free list. Per-block
// operations touch a single shard lock; cross-shard operations (TakeDirty,
// InvalidateFile, Harvest, Stats) explicitly aggregate over the shards.
// Shards = 1 reproduces the previous single-mutex behaviour exactly and is
// kept as the ablation baseline and for the deterministic simulator.
//
// Each block tracks a single valid interval and a single dirty interval
// (dirty ⊆ valid). Flushing any valid byte is safe — clean valid bytes
// equal the stored data — so a write merging with resident valid data only
// needs the dirty hull. A write that would leave an unknown gap inside the
// dirty hull reports OutcomeNeedFetch and the caller performs a
// read-modify-write.
package buffer

import (
	"container/list"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"pvfscache/internal/blockio"
	"pvfscache/internal/metrics"
)

// Policy selects the replacement algorithm.
type Policy int

const (
	// PolicyClock is the paper's approximate LRU: a second-chance sweep
	// that prefers clean victims.
	PolicyClock Policy = iota
	// PolicyLRU is exact LRU (ablation baseline).
	PolicyLRU
	// PolicyGhost is the scan-resistant discretionary-admission policy
	// (2Q/ARC-flavoured, see ghost.go): residents are segmented into a
	// probationary queue and a protected working set, and each shard keeps
	// a bounded metadata-only ghost list of recently evicted keys. A block
	// must prove reuse — a hit while resident, or a ghost hit on
	// re-admission — before it may occupy or displace protected frames, so
	// one large scan can no longer flush a node's working set.
	PolicyGhost
)

// String names the policy.
func (p Policy) String() string {
	switch p {
	case PolicyClock:
		return "clock"
	case PolicyLRU:
		return "lru"
	case PolicyGhost:
		return "ghost"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// ParsePolicy maps a policy name ("clock", "lru", "ghost") to its Policy,
// for command-line flags.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "clock":
		return PolicyClock, nil
	case "lru":
		return PolicyLRU, nil
	case "ghost":
		return PolicyGhost, nil
	default:
		return 0, fmt.Errorf("buffer: unknown policy %q (want clock, lru or ghost)", s)
	}
}

// Outcome reports the result of a cache mutation.
type Outcome int

const (
	// OutcomeOK means the operation was applied to the cache.
	OutcomeOK Outcome = iota
	// OutcomeNeedFetch means the write would leave an unknown gap in the
	// block; the caller must fetch the block and retry (read-modify-write).
	OutcomeNeedFetch
	// OutcomeNoSpace means no free block was available and no clean block
	// could be evicted. The caller should flush and retry, or bypass.
	OutcomeNoSpace
	// OutcomeStale means the install was rejected because the block's
	// write stamp moved past the caller's snapshot: a write was applied —
	// and possibly flushed and evicted — after the fetch carrying this
	// image was issued, so the image may predate data the iod already
	// acknowledged. The caller must re-read the block and retry with a
	// fresh stamp. Nothing was installed or patched.
	OutcomeStale
)

// String names the outcome.
func (o Outcome) String() string {
	switch o {
	case OutcomeOK:
		return "ok"
	case OutcomeNeedFetch:
		return "need-fetch"
	case OutcomeNoSpace:
		return "no-space"
	case OutcomeStale:
		return "stale"
	default:
		return fmt.Sprintf("Outcome(%d)", int(o))
	}
}

// Config sizes a Manager.
type Config struct {
	// BlockSize is the cache block size in bytes (default 4 KB).
	BlockSize int
	// Capacity is the total number of blocks (default 300 = 1.2 MB / 4 KB,
	// the paper's per-node cache size).
	Capacity int
	// LowWater triggers harvesting when the free list falls below it
	// (default Capacity/10). Watermarks are apportioned across shards
	// pro rata to each shard's capacity.
	LowWater int
	// HighWater is the harvester's refill target (default Capacity/4).
	HighWater int
	// Shards is the number of lock stripes. Keys route to shards by
	// blockio.BlockKey.Mix. 0 picks a power of two ≥ GOMAXPROCS (at least
	// 4, so a cache built early in a program's life still scales when
	// more threads appear); explicit values are rounded up to a power of
	// two and capped so every shard owns at least one frame. 1 is the
	// single-mutex ablation baseline and the deterministic-simulation
	// setting: replacement order then matches the pre-sharding manager
	// exactly.
	Shards int
	// Policy selects the replacement algorithm (default PolicyClock).
	Policy Policy
	// GhostFrac sizes PolicyGhost's per-shard ghost list as a fraction of
	// the shard's frame count (entries are metadata only: one key plus two
	// pointers). 0 takes the default of 1.0 — remember as many evicted
	// keys as there are frames, the classic ARC history budget. Negative
	// disables ghost memory entirely (a segmented-LRU ablation: nothing
	// ever proves reuse after eviction); values above 4 are clamped.
	// Ignored by the other policies.
	GhostFrac float64
	// Registry receives hit/miss/eviction counters; nil uses a private one.
	Registry *metrics.Registry
}

func (c *Config) fillDefaults() {
	if c.BlockSize <= 0 {
		c.BlockSize = blockio.DefaultBlockSize
	}
	if c.Capacity <= 0 {
		c.Capacity = 300
	}
	if c.LowWater <= 0 {
		c.LowWater = c.Capacity / 10
	}
	if c.HighWater <= 0 {
		c.HighWater = c.Capacity / 4
	}
	if c.HighWater > c.Capacity {
		c.HighWater = c.Capacity
	}
	if c.LowWater > c.HighWater {
		c.LowWater = c.HighWater
	}
	if c.Shards <= 0 {
		n := runtime.GOMAXPROCS(0)
		if n < 4 {
			n = 4
		}
		c.Shards = n
	}
	c.Shards = ceilPow2(c.Shards)
	for c.Shards > 1 && c.Shards > c.Capacity {
		c.Shards >>= 1
	}
	switch {
	case c.GhostFrac == 0:
		c.GhostFrac = 1.0
	case c.GhostFrac < 0:
		c.GhostFrac = -1 // normalized "no ghost memory" ablation
	case c.GhostFrac > 4:
		c.GhostFrac = 4
	}
	if c.Registry == nil {
		c.Registry = metrics.NewRegistry()
	}
}

// ceilPow2 rounds n up to the next power of two (n ≥ 1).
func ceilPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// block is one cache frame.
type block struct {
	key    blockio.BlockKey
	owner  int    // iod index holding this block's data on disk
	tenant uint32 // principal charged for the dirty residency (0 = untagged)
	data   []byte

	validOff, validLen int
	dirtyOff, dirtyLen int
	written            bool   // any write this residency (dirtying or sync)
	flushGen           uint64 // bumped on every dirtying write
	dirtySeq           uint64 // manager-wide age stamp of the dirty enqueue
	flushing           bool   // a snapshot is in flight to the iod

	ref bool // clock referenced bit

	// PolicyGhost segment state: which queue the block sits on and where.
	// segEl is nil under the other policies.
	protected bool
	segEl     *list.Element

	lruEl   *list.Element // position in lru list (front = most recent)
	clockEl *list.Element // position in clock ring
	dirtyEl *list.Element // position in dirty FIFO, nil when clean
}

func (b *block) dirty() bool { return b.dirtyLen > 0 }

// FlushItem is a snapshot of one dirty span handed to the flusher.
type FlushItem struct {
	Key   blockio.BlockKey
	Owner int
	Off   int
	Data  []byte
	gen   uint64
}

// Stats is a point-in-time summary of manager state. With several shards
// it is an aggregate: each shard is sampled consistently under its own
// lock, but the shards are sampled one after another.
type Stats struct {
	Capacity  int
	Resident  int
	Free      int
	Dirty     int
	Ghosts    int // PolicyGhost: remembered evicted keys across shards
	Hits      int64
	Misses    int64
	Evictions int64

	// PolicyGhost admission/eviction activity (see shard.go); BypassReads
	// counts blocks the module intentionally served around the cache.
	GhostHits          int64
	AdmissionRejects   int64
	ProtectedEvictions int64
	BypassReads        int64
}

// counters caches the registry counter pointers so the per-operation hot
// paths never take the registry's lookup mutex.
type counters struct {
	hits          *metrics.Counter
	misses        *metrics.Counter
	evictions     *metrics.Counter
	invalidations *metrics.Counter
	writeNoSpace  *metrics.Counter
	insertNoSpace *metrics.Counter
	writeRMW      *metrics.Counter
	staleInstalls *metrics.Counter

	ghostHits          *metrics.Counter
	admissionRejects   *metrics.Counter
	protectedEvictions *metrics.Counter
	bypassReads        *metrics.Counter
}

// Manager is the buffer manager. All methods are safe for concurrent use;
// per-block operations contend only within the owning shard.
type Manager struct {
	cfg    Config
	shards []*shard
	mask   uint64 // len(shards)-1; len is a power of two

	dirtySeq atomic.Uint64 // cross-shard dirty-age stamps for TakeDirty

	// Tenant flush weights (SetTenantWeight). hasWeights lets the flusher's
	// TakeDirty path skip the weighted apportioning entirely until the
	// first weight is registered.
	weightMu   sync.Mutex
	weights    map[uint32]int
	hasWeights atomic.Bool
}

// New returns a manager with cfg (zero fields take defaults).
func New(cfg Config) *Manager {
	cfg.fillDefaults()
	m := &Manager{cfg: cfg, mask: uint64(cfg.Shards - 1)}
	ctrs := &counters{
		hits:          cfg.Registry.Counter("cache.hits"),
		misses:        cfg.Registry.Counter("cache.misses"),
		evictions:     cfg.Registry.Counter("cache.evictions"),
		invalidations: cfg.Registry.Counter("cache.invalidations"),
		writeNoSpace:  cfg.Registry.Counter("cache.write_nospace"),
		insertNoSpace: cfg.Registry.Counter("cache.insert_nospace"),
		writeRMW:      cfg.Registry.Counter("cache.write_rmw"),
		staleInstalls: cfg.Registry.Counter("cache.stale_installs"),

		ghostHits:          cfg.Registry.Counter("cache.ghost_hits"),
		admissionRejects:   cfg.Registry.Counter("cache.admission_rejects"),
		protectedEvictions: cfg.Registry.Counter("cache.protected_evictions"),
		bypassReads:        cfg.Registry.Counter("cache.bypass_reads"),
	}
	// Pre-allocate every frame in one slab, as the kernel module does:
	// allocation at request time only pops a shard's free list. Frames are
	// dealt out across shards; the remainder goes to the first shards.
	backing := make([]byte, cfg.Capacity*cfg.BlockSize)
	next := 0
	for i := 0; i < cfg.Shards; i++ {
		capacity := cfg.Capacity / cfg.Shards
		if i < cfg.Capacity%cfg.Shards {
			capacity++
		}
		low := cfg.LowWater * capacity / cfg.Capacity
		high := cfg.HighWater * capacity / cfg.Capacity
		// Pro-rata rounding must not disable harvesting: a shard with a
		// handful of frames still needs low ≥ 1 ("len(free) < 0" is never
		// true) or the background harvester would never run and every
		// allocation would pay inline eviction under the shard lock.
		if low < 1 && cfg.LowWater > 0 {
			low = 1
		}
		if high < low {
			high = low
		}
		if high > capacity {
			high = capacity
		}
		if cfg.Shards > 1 {
			// A striped shard must never target 100% free: with low ≥ 1
			// and high == capacity, any resident block would re-trigger
			// the harvester, which would evict it — every block routed
			// there would survive at most one harvester tick. Capping
			// high at capacity-1 turns the degenerate one-frame shard
			// into low = high = 0 (harvest disabled there; allocation
			// falls back to inline eviction), and leaves the single-shard
			// ablation's semantics untouched.
			if high > capacity-1 {
				high = capacity - 1
			}
		}
		if low > high {
			low = high
		}
		// PolicyGhost sizing: the probation segment keeps at least a
		// quarter of the shard's frames (so there is always somewhere for
		// unproven blocks to live and be evicted from); the ghost list
		// remembers GhostFrac × capacity evicted keys.
		probTarget := capacity / 4
		if probTarget < 1 {
			probTarget = 1
		}
		ghostCap := 0
		if cfg.GhostFrac > 0 {
			ghostCap = int(cfg.GhostFrac*float64(capacity) + 0.5)
			if ghostCap < 1 {
				ghostCap = 1
			}
		}
		s := &shard{
			cfg:           &m.cfg,
			ctrs:          ctrs,
			seq:           &m.dirtySeq,
			capacity:      capacity,
			lowWater:      low,
			highWater:     high,
			protCap:       capacity - probTarget,
			ghostCap:      ghostCap,
			table:         make(map[blockio.BlockKey]*block, capacity),
			stamps:        make(map[blockio.BlockKey]uint32),
			free:          make([]*block, 0, capacity),
			dirtyByTenant: make(map[uint32]int),
			lru:           list.New(),
			clockRing:     list.New(),
			dirtyFIFO:     list.New(),
			probList:      list.New(),
			protList:      list.New(),
			ghost:         list.New(),
			ghostIdx:      make(map[blockio.BlockKey]*list.Element),
		}
		for j := 0; j < capacity; j++ {
			s.free = append(s.free, &block{data: backing[next*cfg.BlockSize : (next+1)*cfg.BlockSize]})
			next++
		}
		m.shards = append(m.shards, s)
	}
	return m
}

// shardFor routes a key to its owning shard: the HIGH 32 bits of the mix
// hash whose low bits choose the block's global-cache home node
// (Ring.Home computes Mix() % peers). Disjoint bits keep the two layers
// independent — taking the low bits for both would, with a peer count
// divisible by the shard count (e.g. 4 nodes, 4 shards), collapse every
// block homed at one node into a single shard of that node, re-serializing
// all its PeerGet/PeerPut traffic on one mutex.
func (m *Manager) shardFor(key blockio.BlockKey) *shard {
	return m.shards[(key.Mix()>>32)&m.mask]
}

// BlockSize returns the configured block size.
func (m *Manager) BlockSize() int { return m.cfg.BlockSize }

// Capacity returns the total number of frames across all shards.
func (m *Manager) Capacity() int { return m.cfg.Capacity }

// ShardCount returns the number of lock stripes in use.
func (m *Manager) ShardCount() int { return len(m.shards) }

// ReadSpan copies the bytes [off, off+len(dst)) of the block into dst if
// they are all valid in the cache. It returns false — and counts a miss —
// otherwise. A hit marks the block referenced and refreshes its LRU
// position within its shard.
func (m *Manager) ReadSpan(key blockio.BlockKey, off int, dst []byte) bool {
	if len(dst) == 0 {
		return true
	}
	return m.shardFor(key).readSpan(key, off, dst)
}

// Contains reports whether the whole span is valid in the cache without
// copying or disturbing replacement state.
func (m *Manager) Contains(key blockio.BlockKey, off, length int) bool {
	return m.shardFor(key).contains(key, off, length)
}

// WriteSpan applies src at offset off of the block, marking the span dirty
// when markDirty is set (the write-behind path) or merely valid when it is
// clear (the sync-write path, whose data is simultaneously persisted at the
// iod). owner is the iod that stores the block.
func (m *Manager) WriteSpan(key blockio.BlockKey, owner, off int, src []byte, markDirty bool) Outcome {
	return m.WriteSpanTenant(key, owner, off, src, markDirty, 0)
}

// WriteSpanTenant is WriteSpan with a principal tag: if the write dirties a
// clean block, the block's dirty residency is charged to tenant until the
// flush that cleans it (or an invalidation that drops it). A block dirtied
// by one tenant and re-written by another keeps its original attribution —
// first-dirtier pays — which keeps the per-tenant counts conserved without
// a transfer protocol. Tenant 0 is the untagged default.
func (m *Manager) WriteSpanTenant(key blockio.BlockKey, owner, off int, src []byte, markDirty bool, tenant uint32) Outcome {
	if len(src) == 0 {
		return OutcomeOK
	}
	if off < 0 || off+len(src) > m.cfg.BlockSize {
		panic(fmt.Sprintf("buffer: span [%d,%d) outside block", off, off+len(src)))
	}
	return m.shardFor(key).writeSpan(key, owner, off, src, markDirty, tenant)
}

// InsertClean installs a freshly fetched whole block. Bytes inside the
// block's current valid interval are preserved: resident data is this
// node's newest view of the block (see InstallFetched), so the fetch only
// fills the invalid remainder. Fetched data shorter than the block size
// leaves the tail zeroed (sparse files read as zero). Callers that go on
// to hand the fetched image out (to readers, waiters, peers) must use
// InstallFetched instead, so their copy gets the same resident-wins patch.
func (m *Manager) InsertClean(key blockio.BlockKey, owner int, data []byte) Outcome {
	if len(data) > m.cfg.BlockSize {
		panic("buffer: InsertClean data exceeds block size")
	}
	return m.shardFor(key).insertClean(key, owner, data, false)
}

// WriteStamp returns the block's current write stamp. The stamp advances
// under the shard lock on every dirtying write and again when a block
// that was written this residency leaves the table (eviction or
// invalidation) — the two events after which an image fetched from the
// iod earlier may no longer be the newest acknowledged data (a write the
// fetch predates can be applied, flushed, and evicted entirely within the
// fetch's flight, leaving nothing resident to patch it from). A fetch
// records the stamp when it is issued and presents it at install time;
// the install is refused (OutcomeStale) if the stamp moved. The stamp map
// keeps one word per written key for the manager's lifetime — bounded by
// file blocks ever dirtied on this node, never by cache capacity.
func (m *Manager) WriteStamp(key blockio.BlockKey) uint32 {
	return m.shardFor(key).writeStamp(key)
}

// InstallFetched installs a freshly fetched whole-block image and patches
// the caller's buffer to the canonical bytes, in one shard-lock
// acquisition. data should be a whole-block buffer; it is mutated in
// place so that the copy the caller goes on to hand out — to readers,
// fetch-join waiters, the readahead marks, the global cache — matches
// what the cache holds: resident valid bytes win over the fetch. They are
// this node's newest view of the block (unflushed dirty data has not
// reached the iod at all, and even just-cleaned data may have landed at
// the iod after the fetch was served there — the data and flush ports
// race); foreign writers are handled by coherence invalidation, which
// drops the resident block entirely. Every fetch-install path must use
// this instead of a bare InsertClean, or a read of a partially valid
// block can surface the iod's stale bytes for the valid range.
//
// stamp is the block's WriteStamp from when the fetch was issued; if the
// block was written since (even if that write has already been flushed
// and its frame evicted — the resident-wins patch then has nothing left
// to win with), the install is refused with OutcomeStale and data is left
// untouched. Callers re-read the block and retry with a fresh stamp.
func (m *Manager) InstallFetched(key blockio.BlockKey, owner int, data []byte, stamp uint32) Outcome {
	// Whole-block images only: a short buffer could not receive the
	// resident-wins patch, silently diverging the caller's copy from the
	// cache — the very bug this API exists to prevent. (InsertClean, which
	// hands nothing back, accepts short data and zero-fills the tail.)
	if len(data) != m.cfg.BlockSize {
		panic("buffer: InstallFetched requires a whole-block image")
	}
	return m.shardFor(key).installFetched(key, owner, data, false, stamp)
}

// InstallFetchedAdmit is InstallFetched with the discretionary-admission
// override: must set means the caller carries a must-cache hint, so under
// PolicyGhost the block is admitted into the protected segment directly
// (its reuse is asserted by the application, not proven by history) and is
// never rejected by the admission gate. Under the other policies must has
// no effect.
func (m *Manager) InstallFetchedAdmit(key blockio.BlockKey, owner int, data []byte, must bool, stamp uint32) Outcome {
	if len(data) != m.cfg.BlockSize {
		panic("buffer: InstallFetchedAdmit requires a whole-block image")
	}
	return m.shardFor(key).installFetched(key, owner, data, must, stamp)
}

// PatchResident overlays the block's resident valid bytes onto data (a
// whole-block image) without admitting anything: the read-around path's
// half of InstallFetched's resident-wins patch. A bypassed fetch must
// still serve this node's newest view of the block — resident bytes may be
// dirtier or newer than what the iod returned — even though the fetched
// image is never installed. The stamp check is the same as
// InstallFetched's: a bypassed image whose block was written mid-flight
// is refused (OutcomeStale), because the newer write may already have
// been flushed and evicted, leaving no resident bytes to patch from.
func (m *Manager) PatchResident(key blockio.BlockKey, data []byte, stamp uint32) Outcome {
	if len(data) != m.cfg.BlockSize {
		panic("buffer: PatchResident requires a whole-block image")
	}
	return m.shardFor(key).patchResident(key, data, stamp)
}

// OverlaySpan copies the intersection of the block's resident valid bytes
// with the span [off, off+len(dst)) into dst, where dst holds the span's
// bytes from some earlier snapshot (a joined fetch's published image). The
// snapshot was patched with resident bytes when the fetch landed, but a
// request that joined later may have begun after further writes were
// acked into the cache; re-overlaying at copy time serves the node's
// newest view instead of the pre-write snapshot. A non-resident block
// leaves dst untouched.
func (m *Manager) OverlaySpan(key blockio.BlockKey, off int, dst []byte) {
	m.shardFor(key).overlaySpan(key, off, dst)
}

// NoteBypass counts one block intentionally served around the cache (the
// streaming-bypass and don't-cache read paths). The count lands on the
// shard the block would have occupied, so per-shard bypass pressure is
// visible in the folded stats.
func (m *Manager) NoteBypass(key blockio.BlockKey) {
	s := m.shardFor(key)
	s.bypassReads.Add(1)
	s.ctrs.bypassReads.Inc()
}

// dirtyCand is one shard's dirty block offered to a cross-shard TakeDirty
// merge: enough to order globally by age, apportion by tenant weight, and
// come back for the snapshot.
type dirtyCand struct {
	seq    uint64
	key    blockio.BlockKey
	shard  int
	tenant uint32
}

// TakeDirty snapshots up to max dirty blocks (oldest first) for flushing.
// The blocks stay resident and readable; a subsequent FlushDone marks each
// clean unless it was re-dirtied while the flush was in flight. Blocks
// already being flushed are skipped. Across shards the batch drains by
// dirty age: every dirty enqueue is stamped from one manager-wide counter,
// and the batch is built in two passes — collect each shard's oldest
// candidates (one lock per shard, no data copied), merge by stamp, then
// snapshot the winners (one more lock per shard) — so sharding neither
// lets one shard's old dirty data linger behind another's fresh writes
// nor makes the flusher's round quadratic in the dirty count. A block
// that a concurrent TakeDirty claims between the passes is simply skipped;
// the next round picks up whatever this one under-returned.
//
// Ownership contract: every returned item is in flight — the block is
// marked so no concurrent round can take it again — and MUST be handed
// back exactly once, to FlushDone (the iod acknowledged the bytes) or
// FlushFailed (it did not). An item that is never handed back wedges its
// block: still dirty, never evictable, never flushable again.
func (m *Manager) TakeDirty(max int) []FlushItem {
	if len(m.shards) == 1 && !m.hasWeights.Load() {
		// Fast path; with registered tenant weights even a single shard
		// must go through the merged path for weighted apportioning.
		return m.shards[0].takeDirty(max)
	}
	return m.takeDirtyMerged(anyOwner, max, false)
}

// anyOwner disables the owner filter in the candidate collection.
const anyOwner = -1

// TakeDirtyOwned is TakeDirty restricted to the blocks stored by iod
// owner — the pipelined write-behind engine runs one flush stream per
// iod, and each stream drains its own daemon's share of the dirty list
// independently of the others. Selection keeps the manager-wide
// oldest-first priority, but the returned batch is ordered by (file,
// block index) rather than by age ("run-aware ordering"): adjacent dirty
// blocks of a file arrive adjacent, so the flusher can coalesce them
// into contiguous wire runs without re-sorting. The TakeDirty ownership
// contract applies unchanged: every item must reach FlushDone or
// FlushFailed exactly once.
func (m *Manager) TakeDirtyOwned(owner, max int) []FlushItem {
	return m.takeDirtyMerged(owner, max, true)
}

// takeDirtyMerged is the two-pass collect/merge/snapshot body shared by
// TakeDirty (sharded) and TakeDirtyOwned. runOrder re-sorts the final
// batch by (file, index) for the per-iod flush streams.
func (m *Manager) takeDirtyMerged(owner, max int, runOrder bool) []FlushItem {
	collect := max
	if max > 0 && m.hasWeights.Load() {
		// Weighted apportioning must see candidates younger than the
		// oldest max, or a low-weight tenant's aged backlog would hide
		// every other tenant from the batch. Candidates are cheap (no
		// data copied) and bounded by capacity, so collect them all.
		collect = 0
	}
	var cands []dirtyCand
	for i, s := range m.shards {
		cands = s.collectDirtyCandidates(collect, i, owner, cands)
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].seq < cands[j].seq })
	if max > 0 && len(cands) > max {
		if m.hasWeights.Load() {
			cands = m.apportionByWeight(cands, max)
		} else {
			cands = cands[:max]
		}
	}
	perShard := make([][]blockio.BlockKey, len(m.shards))
	for _, c := range cands {
		perShard[c.shard] = append(perShard[c.shard], c.key)
	}
	taken := make(map[blockio.BlockKey]FlushItem, len(cands))
	for i, keys := range perShard {
		if len(keys) > 0 {
			m.shards[i].takeKeys(keys, owner, taken)
		}
	}
	items := make([]FlushItem, 0, len(taken))
	for _, c := range cands {
		if it, ok := taken[c.key]; ok {
			items = append(items, it)
		}
	}
	if runOrder {
		sort.Slice(items, func(i, j int) bool {
			if items[i].Key.File != items[j].Key.File {
				return items[i].Key.File < items[j].Key.File
			}
			return items[i].Key.Index < items[j].Key.Index
		})
	}
	return items
}

// SetTenantWeight sets the flush-scheduling weight of a tenant (default 1;
// values below 1 are clamped). When any weight is registered, oversubscribed
// TakeDirty batches are apportioned across the tenants present in the
// candidate set proportionally to their weights instead of purely by age —
// a heavy low-weight writer can no longer monopolize every flush round and
// starve another tenant's dirty blocks behind its own backlog.
func (m *Manager) SetTenantWeight(tenant uint32, weight int) {
	if weight < 1 {
		weight = 1
	}
	m.weightMu.Lock()
	if m.weights == nil {
		m.weights = make(map[uint32]int)
	}
	m.weights[tenant] = weight
	m.weightMu.Unlock()
	m.hasWeights.Store(true)
}

// apportionByWeight selects max candidates from the age-sorted cands:
// each tenant present gets a slot share proportional to its weight
// (unregistered tenants weigh 1), filled oldest-first within the tenant;
// slots a tenant cannot fill spill over to the globally oldest remaining
// candidates. The result is re-sorted by age so downstream batching sees
// the same oldest-first order as the unweighted path.
func (m *Manager) apportionByWeight(cands []dirtyCand, max int) []dirtyCand {
	byTenant := make(map[uint32][]int) // tenant -> indexes into cands, age order
	for i, c := range cands {
		byTenant[c.tenant] = append(byTenant[c.tenant], i)
	}
	m.weightMu.Lock()
	total := 0
	weight := make(map[uint32]int, len(byTenant))
	for t := range byTenant {
		w := m.weights[t]
		if w < 1 {
			w = 1
		}
		weight[t] = w
		total += w
	}
	m.weightMu.Unlock()

	picked := make([]bool, len(cands))
	n := 0
	for t, idxs := range byTenant {
		share := max * weight[t] / total
		for j := 0; j < share && j < len(idxs); j++ {
			picked[idxs[j]] = true
			n++
		}
	}
	// Rounding slack and underfilled tenants spill to global age order.
	for i := 0; n < max && i < len(cands); i++ {
		if !picked[i] {
			picked[i] = true
			n++
		}
	}
	out := make([]dirtyCand, 0, n)
	for i, c := range cands {
		if picked[i] {
			out = append(out, c)
		}
	}
	return out
}

// OldestDirtyOwner reports the iod storing the oldest eligible (not
// in-flight) dirty block. Eviction pressure uses it to kick the one
// flush stream whose drain frees the blocks the replacement policy wants
// next, instead of waking every stream for a global batch. ok is false
// when nothing is eligible (clean cache, or every dirty block already in
// flight).
func (m *Manager) OldestDirtyOwner() (owner int, ok bool) {
	var best uint64
	for _, s := range m.shards {
		if o, seq, sok := s.oldestDirty(); sok && (!ok || seq < best) {
			owner, best, ok = o, seq, true
		}
	}
	return owner, ok
}

// FlushDone marks the snapshot's blocks clean: the iod has acknowledged
// the snapshotted bytes. A block whose flushGen advanced since TakeDirty
// was re-dirtied concurrently and stays on the dirty list (its next
// flush will carry the new data). Each TakeDirty item must reach exactly
// one of FlushDone or FlushFailed; a chunked flusher may split one take
// into several calls, as long as every item lands in one of them.
func (m *Manager) FlushDone(items []FlushItem) {
	for _, it := range items {
		m.shardFor(it.Key).flushDone(it)
	}
}

// FlushFailed re-queues the snapshot's blocks: the in-flight mark is
// cleared without cleaning, and each block keeps both its dirty-FIFO
// position and its manager-wide age stamp — a failed block is retried
// with its original oldest-first priority, never demoted behind younger
// writes. No retry timing lives here: the flusher owns backoff, the
// manager only guarantees the block stays flushable and unevictable.
func (m *Manager) FlushFailed(items []FlushItem) {
	for _, it := range items {
		m.shardFor(it.Key).flushFailed(it)
	}
}

// Invalidate drops the block, returning whether it was resident. Dirty data
// is discarded — the iod-side writer that triggered the invalidation holds
// the authoritative bytes (the paper's sync-write semantics).
func (m *Manager) Invalidate(key blockio.BlockKey) bool {
	return m.shardFor(key).invalidate(key)
}

// InvalidateClean drops the block only if it holds no unflushed writes:
// dirty (or mid-flush) blocks are kept, because discarding one would lose
// an acknowledged write. Graceful drains use this — a sync-write conflict
// uses Invalidate, whose unconditional drop is last-writer-wins by design.
// It reports whether a block was dropped.
func (m *Manager) InvalidateClean(key blockio.BlockKey) bool {
	return m.shardFor(key).invalidateClean(key)
}

// InvalidateFile drops every resident block of a file and returns how many
// were dropped. The sweep visits the shards one at a time; blocks inserted
// concurrently into an already-swept shard survive, exactly as a block
// inserted right after a single-lock sweep would.
func (m *Manager) InvalidateFile(file blockio.FileID) int {
	dropped := 0
	for _, s := range m.shards {
		dropped += s.invalidateFile(file)
	}
	return dropped
}

// NeedsHarvest reports whether any shard's free list has fallen below its
// low watermark.
func (m *Manager) NeedsHarvest() bool {
	for _, s := range m.shards {
		if s.needsHarvest() {
			return true
		}
	}
	return false
}

// Harvest refills the free list of every shard that has fallen below its
// low watermark, evicting clean blocks until that shard reaches its high
// watermark or no evictable block remains in it; shards still above their
// low watermark keep their warm blocks. It returns the total number of
// blocks freed. Dirty blocks are never evicted here — the caller should
// flush and call Harvest again (the paper's harvester/flusher
// cooperation).
func (m *Manager) Harvest() int {
	freed := 0
	for _, s := range m.shards {
		freed += s.harvest()
	}
	return freed
}

// Stats returns a snapshot of occupancy and activity, aggregated over the
// shards.
func (m *Manager) Stats() Stats {
	st := Stats{Capacity: m.cfg.Capacity}
	for _, s := range m.shards {
		s.mu.Lock()
		st.Resident += len(s.table)
		st.Free += len(s.free)
		st.Dirty += s.dirtyFIFO.Len()
		st.Ghosts += s.ghost.Len()
		s.mu.Unlock()
		st.Hits += s.hits.Load()
		st.Misses += s.misses.Load()
		st.Evictions += s.evictions.Load()
		st.GhostHits += s.ghostHits.Load()
		st.AdmissionRejects += s.admissionRejects.Load()
		st.ProtectedEvictions += s.protectedEvictions.Load()
		st.BypassReads += s.bypassReads.Load()
	}
	return st
}

// DirtyCount returns the total dirty-list length across shards.
func (m *Manager) DirtyCount() int {
	n := 0
	for _, s := range m.shards {
		s.mu.Lock()
		n += s.dirtyFIFO.Len()
		s.mu.Unlock()
	}
	return n
}

// DirtyCountOwned returns the number of dirty blocks (in-flight flushes
// included — a block leaves the FIFO only when its ack lands) stored by
// one iod. The drain path polls it to decide when a departing iod's dirty
// data is fully durable.
func (m *Manager) DirtyCountOwned(owner int) int {
	n := 0
	for _, s := range m.shards {
		s.mu.Lock()
		for el := s.dirtyFIFO.Front(); el != nil; el = el.Next() {
			if el.Value.(*block).owner == owner {
				n++
			}
		}
		s.mu.Unlock()
	}
	return n
}

// DirtyCountTenant returns the number of dirty blocks charged to one
// tenant (in-flight flushes included, matching DirtyCountOwned). The QoS
// quota gate polls it per write, so it reads each shard's per-tenant count
// map rather than walking the FIFOs: O(shards), not O(dirty).
func (m *Manager) DirtyCountTenant(tenant uint32) int {
	n := 0
	for _, s := range m.shards {
		s.mu.Lock()
		n += s.dirtyByTenant[tenant]
		s.mu.Unlock()
	}
	return n
}

// DirtyByTenant returns the dirty-block count of every tenant with at
// least one dirty block, aggregated over the shards.
func (m *Manager) DirtyByTenant() map[uint32]int {
	out := make(map[uint32]int)
	for _, s := range m.shards {
		s.mu.Lock()
		for t, n := range s.dirtyByTenant {
			out[t] += n
		}
		s.mu.Unlock()
	}
	return out
}

// FreeCount returns the total free-list length across shards.
func (m *Manager) FreeCount() int {
	n := 0
	for _, s := range m.shards {
		s.mu.Lock()
		n += len(s.free)
		s.mu.Unlock()
	}
	return n
}

// CheckConsistency verifies the manager's structural invariants: every
// shard's frames are conserved (free + resident == shard capacity), every
// resident block routes to the shard holding it and sits on exactly the
// lists its state demands, and the dirty FIFOs track exactly the dirty
// blocks. It is meant for tests (the concurrency stress wall calls it
// after every storm); it takes each shard's lock in turn.
func (m *Manager) CheckConsistency() error {
	total := 0
	for i, s := range m.shards {
		if err := s.checkConsistency(i, m.mask); err != nil {
			return err
		}
		total += s.capacity
	}
	if total != m.cfg.Capacity {
		return fmt.Errorf("buffer: shard capacities sum to %d, want %d", total, m.cfg.Capacity)
	}
	return nil
}

// --- interval helpers ---

// covers reports whether [off, off+length) lies inside [vOff, vOff+vLen).
func covers(vOff, vLen, off, length int) bool {
	return vLen > 0 && off >= vOff && off+length <= vOff+vLen
}

// touches reports whether the two intervals overlap or are adjacent.
func touches(aOff, aLen, bOff, bLen int) bool {
	return bOff <= aOff+aLen && aOff <= bOff+bLen
}

// hull returns the smallest interval containing both inputs. A zero-length
// first interval yields the second.
func hull(aOff, aLen, bOff, bLen int) (int, int) {
	if aLen == 0 {
		return bOff, bLen
	}
	lo := aOff
	if bOff < lo {
		lo = bOff
	}
	hi := aOff + aLen
	if bOff+bLen > hi {
		hi = bOff + bLen
	}
	return lo, hi - lo
}

func zero(p []byte) {
	for i := range p {
		p[i] = 0
	}
}
