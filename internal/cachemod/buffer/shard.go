package buffer

import (
	"container/list"
	"fmt"
	"sync"
	"sync/atomic"

	"pvfscache/internal/blockio"
)

// shard is one lock stripe of the manager: it owns a fixed slice of the
// pre-allocated frames and runs the full buffer-manager policy (hash
// table, exact-LRU list, clock ring, dirty FIFO, free list) over them
// under its own mutex. A shard never touches another shard's state, so
// operations on blocks that route to different shards proceed fully in
// parallel. This recovers the paper's in-kernel fine-grained locking,
// which the first reproduction had collapsed to one global mutex.
type shard struct {
	cfg       *Config        // shared, read-only after New
	ctrs      *counters      // shared registry counters, resolved once
	seq       *atomic.Uint64 // manager-wide dirty-age stamp
	capacity  int
	lowWater  int
	highWater int
	protCap   int // PolicyGhost: max protected residents before demotion
	ghostCap  int // PolicyGhost: max remembered evicted keys

	mu    sync.Mutex
	table map[blockio.BlockKey]*block
	// stamps is the per-key write-stamp table (see Manager.WriteStamp): a
	// key's stamp advances on every dirtying write and when a written
	// block leaves the table, and installs of fetched images are refused
	// when the stamp moved past the fetcher's snapshot. Entries persist
	// after eviction — that is the point: the stamp must outlive the frame
	// so a fetch that straddled a write+flush+evict cycle is detectably
	// stale. One uint32 per key ever written on this node.
	stamps    map[blockio.BlockKey]uint32
	free      []*block
	lru       *list.List // exact-LRU order, front = most recently used
	clockRing *list.List // resident blocks in insertion order
	clockHand *list.Element
	dirtyFIFO *list.List // blocks awaiting flush, front = oldest

	// dirtyByTenant counts this shard's dirty blocks per charged tenant
	// (entries are deleted at zero). It is the QoS quota gate's O(shards)
	// answer to "how much dirty residency does this principal hold" and is
	// conserved against the dirty FIFO by checkConsistency.
	dirtyByTenant map[uint32]int

	// PolicyGhost state (see ghost.go): the resident segments and the
	// bounded metadata-only history of evicted keys. Always allocated,
	// only populated under that policy.
	probList *list.List // unproven residents, front = most recent
	protList *list.List // proven working set, front = most recent
	ghost    *list.List // evicted keys, front = most recently evicted
	ghostIdx map[blockio.BlockKey]*list.Element

	// Activity counters are per-shard atomics folded by Manager.Stats, so
	// the hot paths never touch shared cache lines of other shards.
	hits, misses, evictions atomic.Int64

	ghostHits, admissionRejects, protectedEvictions, bypassReads atomic.Int64
}

// readSpan is ReadSpan for keys routed to this shard.
func (s *shard) readSpan(key blockio.BlockKey, off int, dst []byte) bool {
	s.mu.Lock()
	b, ok := s.table[key]
	if !ok || !covers(b.validOff, b.validLen, off, len(dst)) {
		s.mu.Unlock()
		s.misses.Add(1)
		s.ctrs.misses.Inc()
		return false
	}
	copy(dst, b.data[off:off+len(dst)])
	s.touch(b)
	s.mu.Unlock()
	s.hits.Add(1)
	s.ctrs.hits.Inc()
	return true
}

// contains is Contains for keys routed to this shard.
func (s *shard) contains(key blockio.BlockKey, off, length int) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.table[key]
	return ok && covers(b.validOff, b.validLen, off, length)
}

// writeSpan is WriteSpan for keys routed to this shard. tenant is charged
// if the write dirties a clean block (see Manager.WriteSpanTenant).
func (s *shard) writeSpan(key blockio.BlockKey, owner, off int, src []byte, markDirty bool, tenant uint32) Outcome {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.table[key]
	if !ok {
		// Writes always admit (must): rejecting one would stall the writer
		// behind the write-through escape hatch for no memory saved — the
		// dirty data has to live somewhere until it reaches the iod.
		b = s.allocate(key, owner, true, false)
		if b == nil {
			s.ctrs.writeNoSpace.Inc()
			return OutcomeNoSpace
		}
		copy(b.data[off:], src)
		b.validOff, b.validLen = off, len(src)
		if markDirty {
			s.markDirty(b, off, len(src), tenant)
		} else {
			s.noteWritten(b)
		}
		s.touchInsert(b)
		return OutcomeOK
	}
	// Merging with resident data: the write must touch the valid interval,
	// otherwise an unknown gap would sit inside the flush hull.
	if b.validLen > 0 && !touches(b.validOff, b.validLen, off, len(src)) {
		s.ctrs.writeRMW.Inc()
		return OutcomeNeedFetch
	}
	copy(b.data[off:], src)
	b.validOff, b.validLen = hull(b.validOff, b.validLen, off, len(src))
	if markDirty {
		s.markDirty(b, off, len(src), tenant)
	} else {
		s.noteWritten(b)
	}
	s.touch(b)
	return OutcomeOK
}

// noteWritten advances the block's write stamp for a non-dirtying (sync)
// write: the bytes changed even though nothing is queued for flushing, so
// in-flight fetch images predating the write must be refused at install.
func (s *shard) noteWritten(b *block) {
	b.written = true
	s.stamps[b.key]++
}

// insertClean is InsertClean for keys routed to this shard.
func (s *shard) insertClean(key blockio.BlockKey, owner int, data []byte, must bool) Outcome {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.insertCleanLocked(key, owner, data, must)
}

// installFetched is InstallFetched for keys routed to this shard: check
// the fetcher's stamp, patch the caller's image with the resident valid
// bytes, then install it, all under one lock so the stamp check, the
// installed copy, and the handed-out copy cannot diverge in between.
func (s *shard) installFetched(key blockio.BlockKey, owner int, data []byte, must bool, stamp uint32) Outcome {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.stamps[key] != stamp {
		s.ctrs.staleInstalls.Inc()
		return OutcomeStale
	}
	// data is a whole block (Manager.InstallFetched enforces it), so the
	// valid interval always fits.
	if b, ok := s.table[key]; ok && b.validLen > 0 {
		copy(data[b.validOff:], b.data[b.validOff:b.validOff+b.validLen])
	}
	return s.insertCleanLocked(key, owner, data, must)
}

// overlaySpan is OverlaySpan for keys routed to this shard.
func (s *shard) overlaySpan(key blockio.BlockKey, off int, dst []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.table[key]
	if !ok || b.validLen == 0 {
		return
	}
	lo, hi := max(b.validOff, off), min(b.validOff+b.validLen, off+len(dst))
	if lo < hi {
		copy(dst[lo-off:], b.data[lo:hi])
	}
}

// patchResident is PatchResident for keys routed to this shard.
func (s *shard) patchResident(key blockio.BlockKey, data []byte, stamp uint32) Outcome {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.stamps[key] != stamp {
		s.ctrs.staleInstalls.Inc()
		return OutcomeStale
	}
	if b, ok := s.table[key]; ok && b.validLen > 0 {
		copy(data[b.validOff:], b.data[b.validOff:b.validOff+b.validLen])
	}
	return OutcomeOK
}

// writeStamp is WriteStamp for keys routed to this shard.
func (s *shard) writeStamp(key blockio.BlockKey) uint32 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stamps[key]
}

// insertCleanLocked is insertClean's body (s.mu held).
func (s *shard) insertCleanLocked(key blockio.BlockKey, owner int, data []byte, must bool) Outcome {
	b, ok := s.table[key]
	if !ok {
		b = s.allocate(key, owner, must, must)
		if b == nil {
			s.ctrs.insertNoSpace.Inc()
			return OutcomeNoSpace
		}
		n := copy(b.data, data)
		zero(b.data[n:])
		b.validOff, b.validLen = 0, s.cfg.BlockSize
		s.touchInsert(b)
		return OutcomeOK
	}
	// Merge: resident valid bytes win — they are this node's newest view
	// of the block (its own unflushed writes, or bytes whose flush may
	// have landed after the fetch was served). The fetch only fills the
	// invalid remainder; foreign writers are handled by coherence
	// invalidation, which would have dropped the block before this merge.
	vo, ve := b.validOff, b.validOff+b.validLen
	head := vo
	if head > len(data) {
		head = len(data)
	}
	copy(b.data[:head], data[:head])
	zero(b.data[head:vo])
	if len(data) > ve {
		n := ve + copy(b.data[ve:], data[ve:])
		zero(b.data[n:])
	} else {
		zero(b.data[ve:])
	}
	b.validOff, b.validLen = 0, s.cfg.BlockSize
	s.touch(b)
	return OutcomeOK
}

// takeDirty snapshots up to max dirty blocks of this shard, oldest first.
// max <= 0 means no bound.
func (s *shard) takeDirty(max int) []FlushItem {
	s.mu.Lock()
	defer s.mu.Unlock()
	if max <= 0 {
		max = s.dirtyFIFO.Len()
	}
	items := make([]FlushItem, 0, min(max, s.dirtyFIFO.Len()))
	for el := s.dirtyFIFO.Front(); el != nil && len(items) < max; el = el.Next() {
		b := el.Value.(*block)
		if b.flushing {
			continue
		}
		items = append(items, s.snapshotForFlush(b))
	}
	return items
}

// collectDirtyCandidates appends up to max (seq, key) pairs for this
// shard's oldest eligible (non-flushing) dirty blocks onto out, in FIFO
// order, without copying any data. max <= 0 collects them all; owner
// filters to blocks stored by one iod (anyOwner disables the filter).
func (s *shard) collectDirtyCandidates(max, shardIdx, owner int, out []dirtyCand) []dirtyCand {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for el := s.dirtyFIFO.Front(); el != nil && (max <= 0 || n < max); el = el.Next() {
		b := el.Value.(*block)
		if b.flushing || (owner != anyOwner && b.owner != owner) {
			continue
		}
		out = append(out, dirtyCand{seq: b.dirtySeq, key: b.key, shard: shardIdx, tenant: b.tenant})
		n++
	}
	return out
}

// oldestDirty returns the owner and age stamp of this shard's oldest
// eligible (non-flushing) dirty block.
func (s *shard) oldestDirty() (owner int, seq uint64, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for el := s.dirtyFIFO.Front(); el != nil; el = el.Next() {
		b := el.Value.(*block)
		if b.flushing {
			continue
		}
		return b.owner, b.dirtySeq, true
	}
	return 0, 0, false
}

// takeKeys snapshots the listed blocks for flushing, skipping any that
// were cleaned, invalidated, re-owned (invalidated and re-written from a
// different iod — an owner-filtered take must not route a block to the
// wrong flush port), or claimed by a concurrent round since they were
// collected. Snapshots land in sink keyed by block.
func (s *shard) takeKeys(keys []blockio.BlockKey, owner int, sink map[blockio.BlockKey]FlushItem) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, key := range keys {
		b, ok := s.table[key]
		if !ok || b.flushing || !b.dirty() || (owner != anyOwner && b.owner != owner) {
			continue
		}
		sink[key] = s.snapshotForFlush(b)
	}
}

// snapshotForFlush marks b in flight and copies its dirty span (s.mu held).
func (s *shard) snapshotForFlush(b *block) FlushItem {
	b.flushing = true
	data := make([]byte, b.dirtyLen)
	copy(data, b.data[b.dirtyOff:b.dirtyOff+b.dirtyLen])
	return FlushItem{
		Key:   b.key,
		Owner: b.owner,
		Off:   b.dirtyOff,
		Data:  data,
		gen:   b.flushGen,
	}
}

// flushDone marks one snapshot item's block clean unless re-dirtied.
func (s *shard) flushDone(it FlushItem) {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.table[it.Key]
	if !ok {
		return // evicted or invalidated meanwhile
	}
	b.flushing = false
	if b.flushGen != it.gen {
		return // re-dirtied during flight
	}
	s.markClean(b)
}

// flushFailed clears the in-flight mark without cleaning.
func (s *shard) flushFailed(it FlushItem) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if b, ok := s.table[it.Key]; ok {
		b.flushing = false
	}
}

// invalidate drops one block of this shard. Any ghost memory of the key is
// dropped too — an invalidated block's history must not later count as
// proof of reuse (no resurrection of invalidated keys).
func (s *shard) invalidate(key blockio.BlockKey) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ghostForget(key)
	b, ok := s.table[key]
	if !ok {
		return false
	}
	s.removeBlock(b)
	s.ctrs.invalidations.Inc()
	return true
}

// invalidateClean is invalidate restricted to blocks with no unflushed
// writes; dirty or in-flight blocks survive (see Manager.InvalidateClean).
func (s *shard) invalidateClean(key blockio.BlockKey) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.table[key]
	if !ok {
		s.ghostForget(key)
		return false
	}
	if b.dirtyEl != nil || b.flushing {
		return false
	}
	s.ghostForget(key)
	s.removeBlock(b)
	s.ctrs.invalidations.Inc()
	return true
}

// invalidateFile drops every resident block of a file from this shard,
// along with the file's ghost entries (see invalidate).
func (s *shard) invalidateFile(file blockio.FileID) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ghostForgetFile(file)
	var victims []*block
	for key, b := range s.table {
		if key.File == file {
			victims = append(victims, b)
		}
	}
	for _, b := range victims {
		s.removeBlock(b)
	}
	return len(victims)
}

// needsHarvest reports whether this shard's free list fell below its low
// watermark.
func (s *shard) needsHarvest() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.free) < s.lowWater
}

// harvest evicts clean blocks until the shard's free list reaches its high
// watermark or no evictable block remains. A shard still above its own low
// watermark is left alone: one starved shard must not cost every other
// shard its warm blocks (the low/high hysteresis the single-mutex manager
// had, applied per stripe).
func (s *shard) harvest() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.free) >= s.lowWater {
		return 0
	}
	freed := 0
	for len(s.free) < s.highWater {
		v := s.pickVictim()
		if v == nil {
			break
		}
		s.evictBlock(v)
		freed++
	}
	return freed
}

// --- internal (s.mu held) ---

// allocate pops a free frame or inline-evicts a clean block. It returns nil
// when neither is possible (everything resident is dirty or flushing) —
// or, under PolicyGhost, when the admission gate turns the newcomer away:
// an unproven block (no ghost hit, no must override) may only displace
// probationary frames, never the protected working set. must forces
// admission (writes, must-cache hints); pin additionally admits straight
// into the protected segment (must-cache: reuse asserted, not proven).
func (s *shard) allocate(key blockio.BlockKey, owner int, must, pin bool) *block {
	ghostPolicy := s.cfg.Policy == PolicyGhost
	proven := false
	if ghostPolicy {
		proven = s.ghostTake(key)
		if proven {
			s.ghostHits.Add(1)
			s.ctrs.ghostHits.Inc()
		}
	}
	var b *block
	if n := len(s.free); n > 0 {
		b = s.free[n-1]
		s.free = s.free[:n-1]
	} else {
		v := s.pickVictim()
		if v == nil {
			return nil
		}
		if ghostPolicy && v.protected && !must && !proven {
			s.admissionRejects.Add(1)
			s.ctrs.admissionRejects.Inc()
			return nil
		}
		s.evictBlock(v)
		b = s.free[len(s.free)-1]
		s.free = s.free[:len(s.free)-1]
	}
	b.key = key
	b.owner = owner
	b.tenant = 0
	b.validOff, b.validLen = 0, 0
	b.dirtyOff, b.dirtyLen = 0, 0
	b.written = false
	b.flushGen = 0
	b.flushing = false
	b.ref = false
	s.table[key] = b
	b.lruEl = s.lru.PushFront(b)
	b.clockEl = s.clockRing.PushBack(b)
	if ghostPolicy {
		s.segInsert(b, proven || pin)
	}
	return b
}

// evictBlock counts and performs one eviction, recording the key in the
// ghost list under PolicyGhost (eviction is the only way into the ghost
// list: invalidated blocks are forgotten, not remembered).
func (s *shard) evictBlock(v *block) {
	if s.cfg.Policy == PolicyGhost {
		if v.protected {
			s.protectedEvictions.Add(1)
			s.ctrs.protectedEvictions.Inc()
		}
		s.ghostRecord(v.key)
	}
	s.removeBlock(v)
	s.evictions.Add(1)
	s.ctrs.evictions.Inc()
}

// removeBlock detaches a block from every structure and returns its frame
// to the free list.
func (s *shard) removeBlock(b *block) {
	if b.written {
		// A written block leaving the table advances its write stamp: an
		// in-flight fetch that was issued while (or before) this residency
		// held newer bytes can no longer be patched from it, so its image
		// must not be installed (see Manager.WriteStamp).
		s.stamps[b.key]++
	}
	delete(s.table, b.key)
	if b.lruEl != nil {
		s.lru.Remove(b.lruEl)
		b.lruEl = nil
	}
	if b.clockEl != nil {
		if s.clockHand == b.clockEl {
			s.clockHand = b.clockEl.Next()
		}
		s.clockRing.Remove(b.clockEl)
		b.clockEl = nil
	}
	if b.dirtyEl != nil {
		s.dirtyFIFO.Remove(b.dirtyEl)
		b.dirtyEl = nil
		s.tenantRelease(b.tenant)
	}
	s.segRemove(b)
	b.dirtyOff, b.dirtyLen = 0, 0
	b.validOff, b.validLen = 0, 0
	s.free = append(s.free, b)
}

// touch refreshes replacement state after a genuine re-access of a
// resident block. Under PolicyGhost that re-access is the proof of reuse
// that promotes a probationary block into the protected segment.
func (s *shard) touch(b *block) {
	b.ref = true
	s.lru.MoveToFront(b.lruEl)
	if b.segEl != nil {
		s.segTouch(b)
	}
}

// touchInsert refreshes replacement state for the access that installed
// the block. It deliberately skips segment promotion: the installing
// access is the block's first, not a reuse.
func (s *shard) touchInsert(b *block) {
	b.ref = true
	s.lru.MoveToFront(b.lruEl)
}

// markDirty extends the block's dirty hull and enqueues it for flushing,
// stamping it with the manager-wide dirty age so cross-shard flush batches
// drain oldest-first. The clean→dirty transition charges tenant; a block
// already dirty keeps its original attribution (first-dirtier pays).
func (s *shard) markDirty(b *block, off, length int, tenant uint32) {
	b.dirtyOff, b.dirtyLen = hull(b.dirtyOff, b.dirtyLen, off, length)
	b.written = true
	b.flushGen++
	s.stamps[b.key]++
	if b.dirtyEl == nil {
		b.dirtySeq = s.seq.Add(1)
		b.dirtyEl = s.dirtyFIFO.PushBack(b)
		b.tenant = tenant
		s.dirtyByTenant[tenant]++
	}
}

// markClean clears the dirty state after a successful flush, releasing the
// tenant's dirty charge.
func (s *shard) markClean(b *block) {
	b.dirtyOff, b.dirtyLen = 0, 0
	if b.dirtyEl != nil {
		s.dirtyFIFO.Remove(b.dirtyEl)
		b.dirtyEl = nil
		s.tenantRelease(b.tenant)
	}
}

// tenantRelease decrements one tenant's dirty count, deleting the entry at
// zero so DirtyByTenant never reports departed tenants.
func (s *shard) tenantRelease(tenant uint32) {
	if n := s.dirtyByTenant[tenant]; n <= 1 {
		delete(s.dirtyByTenant, tenant)
	} else {
		s.dirtyByTenant[tenant] = n - 1
	}
}

// pickVictim chooses a clean, non-flushing resident block according to the
// policy, or nil if none exists.
func (s *shard) pickVictim() *block {
	if s.cfg.Policy == PolicyGhost {
		return s.pickVictimGhost()
	}
	if s.cfg.Policy == PolicyLRU {
		for el := s.lru.Back(); el != nil; el = el.Prev() {
			b := el.Value.(*block)
			if !b.dirty() && !b.flushing {
				return b
			}
		}
		return nil
	}
	// Clock (second chance), preferring clean blocks: sweep at most two
	// full revolutions. First revolution gives referenced blocks a second
	// chance; the second picks any clean block.
	n := s.clockRing.Len()
	if n == 0 {
		return nil
	}
	advance := func(el *list.Element) *list.Element {
		if el == nil || el.Next() == nil {
			return s.clockRing.Front()
		}
		return el.Next()
	}
	if s.clockHand == nil {
		s.clockHand = s.clockRing.Front()
	}
	for pass := 0; pass < 2; pass++ {
		for i := 0; i < n; i++ {
			el := s.clockHand
			s.clockHand = advance(el)
			b := el.Value.(*block)
			if b.dirty() || b.flushing {
				continue
			}
			if pass == 0 && b.ref {
				b.ref = false
				continue
			}
			return b
		}
	}
	return nil
}

// checkConsistency verifies this shard's structural invariants (under the
// shard lock). shardIdx and mask validate that every resident key routes
// here.
func (s *shard) checkConsistency(shardIdx int, mask uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	resident := len(s.table)
	if got := len(s.free) + resident; got != s.capacity {
		return fmt.Errorf("shard %d: free(%d)+resident(%d) = %d, want capacity %d",
			shardIdx, len(s.free), resident, got, s.capacity)
	}
	if s.lru.Len() != resident || s.clockRing.Len() != resident {
		return fmt.Errorf("shard %d: lru=%d clock=%d, want resident %d",
			shardIdx, s.lru.Len(), s.clockRing.Len(), resident)
	}
	dirty := 0
	byTenant := make(map[uint32]int)
	for key, b := range s.table {
		if b.key != key {
			return fmt.Errorf("shard %d: table key %v holds block keyed %v", shardIdx, key, b.key)
		}
		if (key.Mix()>>32)&mask != uint64(shardIdx) {
			return fmt.Errorf("shard %d: block %v routed to wrong shard", shardIdx, key)
		}
		if b.lruEl == nil || b.lruEl.Value.(*block) != b {
			return fmt.Errorf("shard %d: block %v detached from lru", shardIdx, key)
		}
		if b.clockEl == nil || b.clockEl.Value.(*block) != b {
			return fmt.Errorf("shard %d: block %v detached from clock ring", shardIdx, key)
		}
		if b.dirty() != (b.dirtyEl != nil) {
			return fmt.Errorf("shard %d: block %v dirtyLen=%d but dirtyEl=%v",
				shardIdx, key, b.dirtyLen, b.dirtyEl != nil)
		}
		if b.dirty() {
			dirty++
			byTenant[b.tenant]++
			if !covers(b.validOff, b.validLen, b.dirtyOff, b.dirtyLen) {
				return fmt.Errorf("shard %d: block %v dirty [%d,%d) outside valid [%d,%d)",
					shardIdx, key, b.dirtyOff, b.dirtyOff+b.dirtyLen, b.validOff, b.validOff+b.validLen)
			}
		}
	}
	if s.dirtyFIFO.Len() != dirty {
		return fmt.Errorf("shard %d: dirtyFIFO=%d, want %d dirty blocks", shardIdx, s.dirtyFIFO.Len(), dirty)
	}
	// Per-tenant dirty conservation: the quota gate's account must equal a
	// recount from the blocks themselves, in both directions, with no
	// lingering zero entries.
	for t, n := range byTenant {
		if s.dirtyByTenant[t] != n {
			return fmt.Errorf("shard %d: tenant %d dirty account %d, recount %d",
				shardIdx, t, s.dirtyByTenant[t], n)
		}
	}
	for t, n := range s.dirtyByTenant {
		if n <= 0 {
			return fmt.Errorf("shard %d: tenant %d holds non-positive dirty account %d", shardIdx, t, n)
		}
		if byTenant[t] != n {
			return fmt.Errorf("shard %d: tenant %d dirty account %d but recount %d",
				shardIdx, t, n, byTenant[t])
		}
	}
	for _, b := range s.free {
		if b.dirtyLen != 0 || b.dirtyEl != nil || b.lruEl != nil || b.clockEl != nil {
			return fmt.Errorf("shard %d: free frame retains list state", shardIdx)
		}
		if b.segEl != nil || b.protected {
			return fmt.Errorf("shard %d: free frame retains segment state", shardIdx)
		}
	}
	return s.checkGhostConsistency(shardIdx, mask)
}
