package buffer

import (
	"container/list"
	"fmt"

	"pvfscache/internal/blockio"
)

// PolicyGhost — scan-resistant discretionary admission.
//
// Residents are split into two LRU segments per shard:
//
//	probation: blocks seen once. Inserted at the front, evicted from the
//	           back. Every unproven newcomer lands here and every victim
//	           is taken from here first, so a scan only ever fights other
//	           scan blocks for frames.
//	protected: blocks that proved reuse — a second access while resident
//	           (touch promotes), a ghost hit on re-admission, or a
//	           must-cache hint. Bounded by protCap; overflow demotes the
//	           protected tail back to probation rather than evicting it,
//	           so proven blocks get one more chance to re-prove.
//
// The ghost list is the admission filter's memory: a bounded FIFO-ish LRU
// of recently *evicted* keys (metadata only — one key, no data). A miss
// whose key is still remembered is re-admitted straight into the protected
// segment: it was evicted while still being used, the classic sign that
// the scan working through probation is bigger than the cache but this
// block is not part of it. Invalidation (coherence or truncation) forgets
// the key instead of remembering it — an invalidated block's history must
// never count as proof.
//
// The admission gate is the discretionary part: when the only victims left
// are protected blocks, an unproven newcomer is refused admission
// (OutcomeNoSpace to the caller, which every fetch path already tolerates
// by serving the data uncached) rather than allowed to displace the
// working set. Writes and must-cache opens override the gate.
//
// State diagram (DESIGN.md §7 reproduces this with the bypass path):
//
//	            miss, admit                     touch
//	  absent ────────────────▶ probation ────────────────▶ protected
//	    ▲                         │  ▲                        │ │
//	    │ ghost LRU overflow      │  │ protCap overflow       │ │
//	    │ or invalidate           │  └────────────────────────┘ │
//	    │                  evict  │                      evict  │
//	  ghost ◀─────────────────────┴─────────────────────────────┘
//	    │
//	    └── miss on remembered key ──▶ protected (ghost hit)

// segInsert places a newly allocated block on its segment (s.mu held).
func (s *shard) segInsert(b *block, protected bool) {
	if protected && s.protCap > 0 {
		b.protected = true
		b.segEl = s.protList.PushFront(b)
		s.demoteOverflow()
		return
	}
	b.protected = false
	b.segEl = s.probList.PushFront(b)
}

// segTouch refreshes a block's segment position on re-access, promoting
// probationary blocks that just proved reuse (s.mu held).
func (s *shard) segTouch(b *block) {
	if b.protected {
		s.protList.MoveToFront(b.segEl)
		return
	}
	s.probList.Remove(b.segEl)
	b.protected = true
	b.segEl = s.protList.PushFront(b)
	s.demoteOverflow()
}

// segRemove detaches a block from its segment (s.mu held).
func (s *shard) segRemove(b *block) {
	if b.segEl == nil {
		return
	}
	if b.protected {
		s.protList.Remove(b.segEl)
	} else {
		s.probList.Remove(b.segEl)
	}
	b.segEl = nil
	b.protected = false
}

// demoteOverflow keeps the protected segment within protCap by demoting
// its tail to the probation front (s.mu held). Demotion is pure list
// bookkeeping — a dirty or flushing block may demote freely, eviction
// still skips it.
func (s *shard) demoteOverflow() {
	for s.protList.Len() > s.protCap {
		el := s.protList.Back()
		b := el.Value.(*block)
		s.protList.Remove(el)
		b.protected = false
		b.segEl = s.probList.PushFront(b)
	}
}

// pickVictimGhost chooses a clean, non-flushing victim: probation back to
// front first, the protected tail only when probation has nothing to give
// (s.mu held). The caller's admission gate decides whether a protected
// victim may actually be taken.
func (s *shard) pickVictimGhost() *block {
	for el := s.probList.Back(); el != nil; el = el.Prev() {
		b := el.Value.(*block)
		if !b.dirty() && !b.flushing {
			return b
		}
	}
	for el := s.protList.Back(); el != nil; el = el.Prev() {
		b := el.Value.(*block)
		if !b.dirty() && !b.flushing {
			return b
		}
	}
	return nil
}

// ghostRecord remembers an evicted key, evicting the ghost list's own LRU
// tail when full (s.mu held).
func (s *shard) ghostRecord(key blockio.BlockKey) {
	if s.ghostCap <= 0 {
		return
	}
	if el, ok := s.ghostIdx[key]; ok {
		s.ghost.MoveToFront(el)
		return
	}
	for s.ghost.Len() >= s.ghostCap {
		old := s.ghost.Back()
		delete(s.ghostIdx, old.Value.(blockio.BlockKey))
		s.ghost.Remove(old)
	}
	s.ghostIdx[key] = s.ghost.PushFront(key)
}

// ghostTake consumes the ghost entry for key, reporting whether one
// existed (s.mu held). Consuming keeps the list an eviction history: once
// a key is re-admitted its old eviction no longer argues for anything.
func (s *shard) ghostTake(key blockio.BlockKey) bool {
	el, ok := s.ghostIdx[key]
	if !ok {
		return false
	}
	delete(s.ghostIdx, key)
	s.ghost.Remove(el)
	return true
}

// ghostForget drops any ghost memory of key (s.mu held).
func (s *shard) ghostForget(key blockio.BlockKey) {
	if el, ok := s.ghostIdx[key]; ok {
		delete(s.ghostIdx, key)
		s.ghost.Remove(el)
	}
}

// ghostForgetFile drops every ghost entry of a file (s.mu held).
func (s *shard) ghostForgetFile(file blockio.FileID) {
	var next *list.Element
	for el := s.ghost.Front(); el != nil; el = next {
		next = el.Next()
		if key := el.Value.(blockio.BlockKey); key.File == file {
			delete(s.ghostIdx, key)
			s.ghost.Remove(el)
		}
	}
}

// checkGhostConsistency verifies the PolicyGhost invariants (s.mu held):
// the two segments partition exactly the residents, every block's
// protected flag matches its list, the protected segment respects protCap,
// and the ghost list is a bounded, indexed set of non-resident keys that
// route to this shard.
func (s *shard) checkGhostConsistency(shardIdx int, mask uint64) error {
	if s.cfg.Policy != PolicyGhost {
		if s.probList.Len() != 0 || s.protList.Len() != 0 || s.ghost.Len() != 0 {
			return fmt.Errorf("shard %d: ghost-policy state populated under %v",
				shardIdx, s.cfg.Policy)
		}
		return nil
	}
	if got := s.probList.Len() + s.protList.Len(); got != len(s.table) {
		return fmt.Errorf("shard %d: probation(%d)+protected(%d) = %d, want resident %d",
			shardIdx, s.probList.Len(), s.protList.Len(), got, len(s.table))
	}
	if s.protList.Len() > s.protCap {
		return fmt.Errorf("shard %d: protected segment %d exceeds cap %d",
			shardIdx, s.protList.Len(), s.protCap)
	}
	for el := s.probList.Front(); el != nil; el = el.Next() {
		b := el.Value.(*block)
		if b.protected || b.segEl != el || s.table[b.key] != b {
			return fmt.Errorf("shard %d: probation entry %v inconsistent", shardIdx, b.key)
		}
	}
	for el := s.protList.Front(); el != nil; el = el.Next() {
		b := el.Value.(*block)
		if !b.protected || b.segEl != el || s.table[b.key] != b {
			return fmt.Errorf("shard %d: protected entry %v inconsistent", shardIdx, b.key)
		}
	}
	if s.ghost.Len() != len(s.ghostIdx) {
		return fmt.Errorf("shard %d: ghost list %d entries but index has %d",
			shardIdx, s.ghost.Len(), len(s.ghostIdx))
	}
	if s.ghostCap >= 0 && s.ghost.Len() > s.ghostCap {
		return fmt.Errorf("shard %d: ghost list %d exceeds cap %d",
			shardIdx, s.ghost.Len(), s.ghostCap)
	}
	for el := s.ghost.Front(); el != nil; el = el.Next() {
		key := el.Value.(blockio.BlockKey)
		if s.ghostIdx[key] != el {
			return fmt.Errorf("shard %d: ghost key %v not indexed to its element", shardIdx, key)
		}
		if (key.Mix()>>32)&mask != uint64(shardIdx) {
			return fmt.Errorf("shard %d: ghost key %v routed to wrong shard", shardIdx, key)
		}
		if _, resident := s.table[key]; resident {
			return fmt.Errorf("shard %d: ghost key %v is still resident", shardIdx, key)
		}
	}
	return nil
}
