package buffer

import (
	"sync"
	"testing"
	"time"

	"pvfscache/internal/blockio"
)

// countByFile tallies flush items per file, which the tenant tests use as
// a proxy for the owning tenant (each tenant writes its own file).
func countByFile(items []FlushItem, file int) int {
	n := 0
	for _, it := range items {
		if it.Key.File == blockio.FileID(file) {
			n++
		}
	}
	return n
}

// TestTenantDirtyAttribution pins the per-tenant accounting rules:
// first-dirtier-pays, sync writes charge nobody, and both flush and
// invalidation release the charge.
func TestTenantDirtyAttribution(t *testing.T) {
	m := mgr(16, PolicyClock)
	for i := 0; i < 2; i++ {
		if out := m.WriteSpanTenant(key(1, i), 0, 0, fill(1, 64), true, 7); out != OutcomeOK {
			t.Fatalf("write %d: outcome %v", i, out)
		}
	}
	if out := m.WriteSpanTenant(key(2, 0), 0, 0, fill(2, 64), true, 9); out != OutcomeOK {
		t.Fatalf("tenant 9 write: outcome %v", out)
	}
	if got := m.DirtyCountTenant(7); got != 2 {
		t.Fatalf("tenant 7 dirty = %d, want 2", got)
	}
	if got := m.DirtyCountTenant(9); got != 1 {
		t.Fatalf("tenant 9 dirty = %d, want 1", got)
	}

	// Re-dirtying an already-dirty block under another tenant must not
	// move the charge: the first dirtier pays until the block cleans.
	if out := m.WriteSpanTenant(key(1, 0), 0, 0, fill(3, 64), true, 9); out != OutcomeOK {
		t.Fatalf("re-dirty: outcome %v", out)
	}
	if got := m.DirtyCountTenant(7); got != 2 {
		t.Fatalf("tenant 7 dirty after re-dirty = %d, want 2 (first dirtier pays)", got)
	}
	if got := m.DirtyCountTenant(9); got != 1 {
		t.Fatalf("tenant 9 dirty after re-dirty = %d, want 1", got)
	}

	// A sync write (markDirty=false) never charges a quota.
	if out := m.WriteSpanTenant(key(3, 0), 0, 0, fill(4, 64), false, 7); out != OutcomeOK {
		t.Fatalf("sync write: outcome %v", out)
	}
	if got := m.DirtyCountTenant(7); got != 2 {
		t.Fatalf("tenant 7 dirty after sync write = %d, want 2", got)
	}

	// Flushing releases every charge.
	items := m.TakeDirty(0)
	if len(items) != 3 {
		t.Fatalf("TakeDirty drained %d items, want 3", len(items))
	}
	m.FlushDone(items)
	if by := m.DirtyByTenant(); len(by) != 0 {
		t.Fatalf("DirtyByTenant after flush = %v, want empty", by)
	}

	// Invalidation releases the charge too (the dirty data is gone, so
	// the quota slot must come back).
	if out := m.WriteSpanTenant(key(4, 0), 0, 0, fill(5, 64), true, 7); out != OutcomeOK {
		t.Fatalf("pre-invalidate write: outcome %v", out)
	}
	m.Invalidate(key(4, 0))
	if got := m.DirtyCountTenant(7); got != 0 {
		t.Fatalf("tenant 7 dirty after invalidate = %d, want 0", got)
	}
	if err := m.CheckConsistency(); err != nil {
		t.Fatalf("CheckConsistency: %v", err)
	}
}

// TestTenantWeightedTake pins the weighted flush-batch split: when the
// dirty backlog exceeds the batch, each tenant gets slots proportional to
// its registered weight instead of pure age order.
func TestTenantWeightedTake(t *testing.T) {
	// Unweighted baseline: selection is purely by age, so a batch of 8
	// comes entirely from the older tenant's blocks.
	m := mgr(64, PolicyClock)
	for i := 0; i < 16; i++ {
		m.WriteSpanTenant(key(1, i), 0, 0, fill(1, 64), true, 1)
	}
	for i := 0; i < 16; i++ {
		m.WriteSpanTenant(key(2, i), 0, 0, fill(2, 64), true, 2)
	}
	items := m.TakeDirty(8)
	if got := countByFile(items, 1); got != 8 {
		t.Fatalf("unweighted take: %d of 8 from the older tenant, want all 8", got)
	}
	m.FlushDone(items)

	// Weighted: tenant 2 at weight 3 earns 3/4 of the batch even though
	// tenant 1's blocks are older.
	m2 := mgr(64, PolicyClock)
	m2.SetTenantWeight(1, 1)
	m2.SetTenantWeight(2, 3)
	for i := 0; i < 16; i++ {
		m2.WriteSpanTenant(key(1, i), 0, 0, fill(1, 64), true, 1)
	}
	for i := 0; i < 16; i++ {
		m2.WriteSpanTenant(key(2, i), 0, 0, fill(2, 64), true, 2)
	}
	items = m2.TakeDirty(8)
	if len(items) != 8 {
		t.Fatalf("weighted take returned %d items, want 8", len(items))
	}
	if got := countByFile(items, 2); got != 6 {
		t.Fatalf("weighted take: tenant 2 got %d of 8 slots, want 6 (weight 3 of 4)", got)
	}
	if got := countByFile(items, 1); got != 2 {
		t.Fatalf("weighted take: tenant 1 got %d of 8 slots, want 2 (weight 1 of 4)", got)
	}
	m2.FlushDone(items)
	if err := m2.CheckConsistency(); err != nil {
		t.Fatalf("CheckConsistency: %v", err)
	}
}

// TestTenantConservationStorm hammers the per-tenant counters from
// concurrent writers, a flusher that randomly fails batches, and an
// invalidator, while CheckConsistency audits the books live. Run under
// -race this is the conservation proof the QoS quotas depend on: a leaked
// or double-released charge would starve or unbound a tenant forever.
func TestTenantConservationStorm(t *testing.T) {
	m := New(Config{BlockSize: 64, Capacity: 256, Shards: 4})
	const tenants = 3
	stop := make(chan struct{})
	var wg sync.WaitGroup

	// Writers: each goroutine is one tenant hammering its own files.
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			tenant := uint32(g%tenants + 1)
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				m.WriteSpanTenant(key(g+1, i%48), 0, 0, fill(byte(i), 64), true, tenant)
			}
		}(g)
	}

	// Flusher: alternates success and failure so both release paths and
	// the requeue path stay hot.
	wg.Add(1)
	go func() {
		defer wg.Done()
		fail := false
		for {
			select {
			case <-stop:
				return
			default:
			}
			items := m.TakeDirty(32)
			if len(items) == 0 {
				continue
			}
			if fail {
				m.FlushFailed(items)
			} else {
				m.FlushDone(items)
			}
			fail = !fail
		}
	}()

	// Invalidator: coherence-style drops of blocks in every state.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			m.Invalidate(key(i%6+1, i%48))
		}
	}()

	// Audit the books while the storm runs.
	for i := 0; i < 50; i++ {
		if err := m.CheckConsistency(); err != nil {
			close(stop)
			wg.Wait()
			t.Fatalf("CheckConsistency during storm: %v", err)
		}
		time.Sleep(time.Millisecond)
	}
	close(stop)
	wg.Wait()

	// Drain everything; every tenant's ledger must return to zero.
	for {
		items := m.TakeDirty(0)
		if len(items) == 0 {
			break
		}
		m.FlushDone(items)
	}
	if err := m.CheckConsistency(); err != nil {
		t.Fatalf("CheckConsistency after drain: %v", err)
	}
	for tenant, n := range m.DirtyByTenant() {
		t.Errorf("tenant %d still charged %d dirty blocks after full drain", tenant, n)
	}
	if got := m.DirtyCount(); got != 0 {
		t.Errorf("DirtyCount after drain = %d, want 0", got)
	}
}
