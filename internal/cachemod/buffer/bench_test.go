package buffer

// Scaling benchmark pair for the lock-striped manager: the same workload
// against the sharded manager and the Shards=1 (single-mutex) ablation.
// Run with several goroutines (RunParallel honours -cpu, and the parallel
// variants force at least 8 workers) to see the striping win; the
// single-goroutine pair bounds the routing overhead a shard lookup adds to
// a hit.

import (
	"sync/atomic"
	"testing"

	"pvfscache/internal/blockio"
)

// benchHitManager preloads a manager at half load so every ReadSpan is a
// hit — the paper's hot path. Half load keeps hash skew from overflowing
// any single shard's frame slice (a full-capacity working set would evict
// from the fullest shard and turn the benchmark into a miss benchmark).
func benchHitManager(b *testing.B, shards int) *Manager {
	b.Helper()
	m := New(Config{BlockSize: 4096, Capacity: 2048, Shards: shards})
	data := make([]byte, 4096)
	for i := 0; i < 1024; i++ {
		if m.InsertClean(blockio.BlockKey{File: 1, Index: int64(i)}, 0, data) != OutcomeOK {
			b.Fatal("preload failed")
		}
	}
	return m
}

// benchReadSpanParallel measures concurrent cache hits: 8+ goroutines each
// scanning a distinct slice of the resident blocks, so with striping the
// lock acquisitions spread across shards while the single-mutex ablation
// serializes every 4 KB copy.
func benchReadSpanParallel(b *testing.B, shards int) {
	m := benchHitManager(b, shards)
	b.SetParallelism(8) // ≥8 goroutines even on small GOMAXPROCS
	var worker atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		w := worker.Add(1)
		dst := make([]byte, 4096)
		i := int64(0)
		for pb.Next() {
			// Each worker walks its own arithmetic progression so workers
			// touch different blocks (and therefore different shards) at
			// any instant.
			idx := (w*131 + i*7) % 1024
			i++
			if !m.ReadSpan(blockio.BlockKey{File: 1, Index: idx}, 0, dst) {
				b.Fatal("unexpected miss")
			}
		}
	})
	b.SetBytes(4096)
}

// BenchmarkReadSpanParallelSharded is the striped manager (8 shards).
func BenchmarkReadSpanParallelSharded(b *testing.B) { benchReadSpanParallel(b, 8) }

// BenchmarkReadSpanParallelSingleShard is the Shards=1 ablation: the
// pre-sharding single global mutex.
func BenchmarkReadSpanParallelSingleShard(b *testing.B) { benchReadSpanParallel(b, 1) }

// benchMixedParallel adds writes and flusher activity to the storm: 7 of 8
// operations are hits, every 8th dirties a block, and the flusher drains
// concurrently — closer to the live module's steady state than pure reads.
func benchMixedParallel(b *testing.B, shards int) {
	m := benchHitManager(b, shards)
	stop := make(chan struct{})
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
				m.FlushDone(m.TakeDirty(64))
			}
		}
	}()
	defer close(stop)
	b.SetParallelism(8)
	var worker atomic.Int64
	src := make([]byte, 4096)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		w := worker.Add(1)
		dst := make([]byte, 4096)
		i := int64(0)
		for pb.Next() {
			idx := (w*131 + i*7) % 1024
			i++
			key := blockio.BlockKey{File: 1, Index: idx}
			if i%8 == 0 {
				m.WriteSpan(key, 0, 0, src, true)
			} else {
				m.ReadSpan(key, 0, dst)
			}
		}
	})
	b.SetBytes(4096)
}

// BenchmarkMixedParallelSharded is the mixed read/write storm, striped.
func BenchmarkMixedParallelSharded(b *testing.B) { benchMixedParallel(b, 8) }

// BenchmarkMixedParallelSingleShard is the same storm on one mutex.
func BenchmarkMixedParallelSingleShard(b *testing.B) { benchMixedParallel(b, 1) }

// benchReadSpanSerial is the single-goroutine control: the sharded
// manager's hit must stay within noise of the single mutex (one mix hash
// and mask per operation is the only added work).
func benchReadSpanSerial(b *testing.B, shards int) {
	m := benchHitManager(b, shards)
	dst := make([]byte, 4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !m.ReadSpan(blockio.BlockKey{File: 1, Index: int64(i % 1024)}, 0, dst) {
			b.Fatal("unexpected miss")
		}
	}
	b.SetBytes(4096)
}

// BenchmarkReadSpanSerialSharded measures routing overhead, striped.
func BenchmarkReadSpanSerialSharded(b *testing.B) { benchReadSpanSerial(b, 8) }

// BenchmarkReadSpanSerialSingleShard is the serial single-mutex baseline.
func BenchmarkReadSpanSerialSingleShard(b *testing.B) { benchReadSpanSerial(b, 1) }
