package buffer

import (
	"testing"
)

// TestTakeDirtyOwnedFiltersAndOrders: an owner-filtered take returns only
// that iod's blocks, ordered by (file, index) so adjacent dirty blocks
// coalesce into runs, while blocks of other owners stay untouched and
// flushable by their own streams.
func TestTakeDirtyOwnedFiltersAndOrders(t *testing.T) {
	for _, shards := range []int{1, 4} {
		m := New(Config{BlockSize: 64, Capacity: 32, Shards: shards})
		// Interleave dirtying order across owners and files so age order
		// and run order differ.
		m.WriteSpan(key(2, 5), 1, 0, fill(1, 64), true)
		m.WriteSpan(key(1, 3), 0, 0, fill(2, 64), true)
		m.WriteSpan(key(1, 1), 1, 0, fill(3, 64), true)
		m.WriteSpan(key(1, 2), 0, 0, fill(4, 64), true)
		m.WriteSpan(key(1, 0), 1, 0, fill(5, 64), true)

		items := m.TakeDirtyOwned(1, 0)
		if len(items) != 3 {
			t.Fatalf("shards=%d: owner-1 items = %d, want 3", shards, len(items))
		}
		want := []struct {
			file, idx int
		}{{1, 0}, {1, 1}, {2, 5}}
		for i, w := range want {
			if items[i].Key != key(w.file, w.idx) {
				t.Fatalf("shards=%d: item %d = %v, want file %d idx %d",
					shards, i, items[i].Key, w.file, w.idx)
			}
			if items[i].Owner != 1 {
				t.Fatalf("shards=%d: item %d owner = %d", shards, i, items[i].Owner)
			}
		}
		// Owner 0's blocks are untouched (still dirty, not in flight).
		other := m.TakeDirtyOwned(0, 0)
		if len(other) != 2 {
			t.Fatalf("shards=%d: owner-0 items = %d, want 2", shards, len(other))
		}
		m.FlushDone(items)
		m.FlushDone(other)
		if n := m.DirtyCount(); n != 0 {
			t.Fatalf("shards=%d: %d dirty after both owners drained", shards, n)
		}
		if err := m.CheckConsistency(); err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
	}
}

// TestTakeDirtyOwnedMaxKeepsOldest: the max bound must select the oldest
// blocks of the owner (age priority), even though the batch is then
// re-ordered by (file, index).
func TestTakeDirtyOwnedMaxKeepsOldest(t *testing.T) {
	m := New(Config{BlockSize: 64, Capacity: 32, Shards: 1})
	for i := 0; i < 6; i++ {
		// Dirty in descending index order: oldest dirty = highest index.
		m.WriteSpan(key(1, 5-i), 0, 0, fill(byte(i), 64), true)
	}
	items := m.TakeDirtyOwned(0, 2)
	if len(items) != 2 {
		t.Fatalf("items = %d, want 2", len(items))
	}
	// Oldest two by age are indices 5 and 4; run order returns them
	// ascending.
	if items[0].Key != key(1, 4) || items[1].Key != key(1, 5) {
		t.Fatalf("items = %v, %v; want idx 4 then 5", items[0].Key, items[1].Key)
	}
	m.FlushFailed(items)
}

// TestOldestDirtyOwner: pressure kicks must target the stream owning the
// oldest dirty data, skipping blocks already in flight.
func TestOldestDirtyOwner(t *testing.T) {
	for _, shards := range []int{1, 4} {
		m := New(Config{BlockSize: 64, Capacity: 32, Shards: shards})
		if _, ok := m.OldestDirtyOwner(); ok {
			t.Fatalf("shards=%d: clean cache reported a dirty owner", shards)
		}
		m.WriteSpan(key(1, 0), 2, 0, fill(1, 64), true) // oldest, owner 2
		m.WriteSpan(key(1, 1), 0, 0, fill(2, 64), true)
		owner, ok := m.OldestDirtyOwner()
		if !ok || owner != 2 {
			t.Fatalf("shards=%d: owner = %d ok=%v, want 2", shards, owner, ok)
		}
		// Take owner 2's block in flight: the probe falls through to the
		// next-oldest eligible block.
		items := m.TakeDirtyOwned(2, 0)
		owner, ok = m.OldestDirtyOwner()
		if !ok || owner != 0 {
			t.Fatalf("shards=%d: owner after take = %d ok=%v, want 0", shards, owner, ok)
		}
		// A failed flush re-queues with the original age: owner 2 is the
		// oldest again.
		m.FlushFailed(items)
		owner, ok = m.OldestDirtyOwner()
		if !ok || owner != 2 {
			t.Fatalf("shards=%d: owner after requeue = %d ok=%v, want 2", shards, owner, ok)
		}
	}
}

// TestFlushFailedKeepsAgePriority pins the re-queue contract the flush
// streams rely on: a failed block is retried with its original priority —
// a younger block dirtied during the failed flight must not overtake it.
func TestFlushFailedKeepsAgePriority(t *testing.T) {
	m := New(Config{BlockSize: 64, Capacity: 32, Shards: 4})
	m.WriteSpan(key(1, 7), 0, 0, fill(1, 64), true)
	items := m.TakeDirtyOwned(0, 0)
	m.WriteSpan(key(2, 0), 0, 0, fill(2, 64), true) // younger
	m.FlushFailed(items)
	retry := m.TakeDirtyOwned(0, 1)
	if len(retry) != 1 || retry[0].Key != key(1, 7) {
		t.Fatalf("retry = %v, want the re-queued block (file 1, idx 7)", retry)
	}
	m.FlushFailed(retry)
}
