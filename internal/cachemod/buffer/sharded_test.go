package buffer

// Tests for the lock-striped sharded manager: shard sizing, key routing,
// cross-shard aggregation (flush-age order, stats, invalidation sweeps),
// and a full-API concurrency storm verified by the structural consistency
// checker. The single-shard (ablation) behaviour is covered by
// buffer_test.go.

import (
	"bytes"
	"math/rand"
	"runtime"
	"sync"
	"testing"

	"pvfscache/internal/blockio"
	"pvfscache/internal/testseed"
)

func TestShardCountDefaults(t *testing.T) {
	auto := New(Config{BlockSize: 64, Capacity: 1024})
	want := runtime.GOMAXPROCS(0)
	if want < 4 {
		want = 4
	}
	want = ceilPow2(want)
	if got := auto.ShardCount(); got != want {
		t.Errorf("auto shards = %d, want %d", got, want)
	}
	cases := []struct {
		shards, capacity, want int
	}{
		{1, 64, 1},   // explicit ablation setting
		{3, 64, 4},   // rounded up to a power of two
		{8, 64, 8},   // explicit power of two kept
		{16, 5, 4},   // capped: every shard needs at least one frame
		{-1, 64, 0},  // negative = auto (checked below)
		{1024, 8, 8}, // capped at capacity
		{2, 1, 1},    // degenerate one-frame cache
	}
	for _, c := range cases {
		m := New(Config{BlockSize: 64, Capacity: c.capacity, Shards: c.shards})
		if c.want == 0 {
			if m.ShardCount() < 1 {
				t.Errorf("Shards=%d: got %d shards", c.shards, m.ShardCount())
			}
			continue
		}
		if got := m.ShardCount(); got != c.want {
			t.Errorf("Shards=%d Capacity=%d: got %d shards, want %d",
				c.shards, c.capacity, got, c.want)
		}
	}
}

func TestShardCapacityPartition(t *testing.T) {
	// 10 frames over 4 shards: 3+3+2+2, watermarks pro rata and clamped.
	m := New(Config{BlockSize: 64, Capacity: 10, LowWater: 2, HighWater: 5, Shards: 4})
	total, low, high := 0, 0, 0
	for _, s := range m.shards {
		if s.capacity < 1 {
			t.Fatalf("shard with %d frames", s.capacity)
		}
		if s.highWater > s.capacity || s.lowWater > s.highWater {
			t.Fatalf("shard watermarks low=%d high=%d capacity=%d",
				s.lowWater, s.highWater, s.capacity)
		}
		total += s.capacity
		low += s.lowWater
		high += s.highWater
	}
	if total != 10 {
		t.Fatalf("shard capacities sum to %d", total)
	}
	if err := m.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

func TestShardRoutingUsesMixHash(t *testing.T) {
	m := New(Config{BlockSize: 64, Capacity: 64, Shards: 8})
	for f := 1; f <= 5; f++ {
		for b := 0; b < 20; b++ {
			k := key(f, b)
			want := m.shards[(k.Mix()>>32)&m.mask]
			if got := m.shardFor(k); got != want {
				t.Fatalf("key %v routed inconsistently", k)
			}
		}
	}
	// The mix hash must actually spread consecutive blocks of one file:
	// a file scan that serialized on one shard would defeat the striping.
	seen := make(map[uint64]bool)
	for b := 0; b < 64; b++ {
		seen[(key(1, b).Mix()>>32)&m.mask] = true
	}
	if len(seen) < 4 {
		t.Fatalf("64 consecutive blocks landed on only %d of 8 shards", len(seen))
	}
}

// TestShardRoutingIndependentOfGlobalCacheHome guards the bit split
// between the two consumers of the mix hash: the global cache homes a
// block by the LOW bits (Mix % peers), shards route by the HIGH 32 bits.
// If both used the low bits, a peer count divisible by the shard count
// would collapse every block homed at one node into a single shard of
// that node — all of its PeerGet/PeerPut traffic back on one mutex.
func TestShardRoutingIndependentOfGlobalCacheHome(t *testing.T) {
	const peers = 4 // divisible by shards: the pathological configuration
	m := New(Config{BlockSize: 64, Capacity: 4096, Shards: 4})
	for home := 0; home < peers; home++ {
		seen := make(map[uint64]int)
		for f := 1; f <= 8; f++ {
			for b := 0; b < 512; b++ {
				k := key(f, b)
				if int(k.Mix()%peers) != home {
					continue
				}
				seen[(k.Mix()>>32)&m.mask]++
			}
		}
		if len(seen) < 3 {
			t.Fatalf("blocks homed at node %d landed on only %d of 4 shards: %v",
				home, len(seen), seen)
		}
	}
}

func TestTakeDirtyMergesOldestFirstAcrossShards(t *testing.T) {
	m := New(Config{BlockSize: 64, Capacity: 64, Shards: 8})
	// Dirty 20 blocks in a known global order; they scatter over shards.
	var order []int
	for i := 0; i < 20; i++ {
		if m.WriteSpan(key(1, i), 0, 0, fill(byte(i), 64), true) != OutcomeOK {
			t.Fatal("write failed")
		}
		order = append(order, i)
	}
	items := m.TakeDirty(0)
	if len(items) != 20 {
		t.Fatalf("took %d items, want 20", len(items))
	}
	for i, it := range items {
		if int(it.Key.Index) != order[i] {
			t.Fatalf("item %d is block %d, want %d (age order broken)",
				i, it.Key.Index, order[i])
		}
	}
	m.FlushDone(items)

	// A bounded take drains the oldest blocks first, regardless of shard.
	for i := 0; i < 10; i++ {
		m.WriteSpan(key(2, i), 0, 0, fill(byte(i), 64), true)
	}
	batch := m.TakeDirty(4)
	if len(batch) != 4 {
		t.Fatalf("bounded take got %d", len(batch))
	}
	for i, it := range batch {
		if int(it.Key.Index) != i {
			t.Fatalf("bounded item %d is block %d, want %d", i, it.Key.Index, i)
		}
	}
	m.FlushDone(batch)
	if m.DirtyCount() != 6 {
		t.Fatalf("dirty = %d, want 6", m.DirtyCount())
	}
}

func TestInvalidateFileSweepsAllShards(t *testing.T) {
	m := New(Config{BlockSize: 64, Capacity: 128, Shards: 8})
	for b := 0; b < 50; b++ {
		m.InsertClean(key(1, b), 0, fill(1, 64))
	}
	for b := 0; b < 10; b++ {
		m.InsertClean(key(2, b), 0, fill(2, 64))
	}
	if n := m.InvalidateFile(1); n != 50 {
		t.Fatalf("invalidated %d, want 50", n)
	}
	for b := 0; b < 10; b++ {
		if !m.Contains(key(2, b), 0, 64) {
			t.Fatalf("other file's block %d dropped", b)
		}
	}
	if err := m.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

func TestStatsAggregateAcrossShards(t *testing.T) {
	m := New(Config{BlockSize: 64, Capacity: 64, Shards: 8})
	dst := make([]byte, 64)
	for b := 0; b < 32; b++ {
		m.InsertClean(key(1, b), 0, fill(byte(b), 64))
	}
	for b := 0; b < 32; b++ {
		if !m.ReadSpan(key(1, b), 0, dst) {
			t.Fatal("unexpected miss")
		}
	}
	m.ReadSpan(key(9, 9), 0, dst) // one miss
	st := m.Stats()
	if st.Hits != 32 || st.Misses != 1 {
		t.Fatalf("hits=%d misses=%d, want 32/1", st.Hits, st.Misses)
	}
	if st.Resident != 32 || st.Free != 32 {
		t.Fatalf("resident=%d free=%d, want 32/32", st.Resident, st.Free)
	}
}

// keysForShard returns n distinct keys of one file that route to the
// given shard.
func keysForShard(m *Manager, shardIdx, n int) []blockio.BlockKey {
	var keys []blockio.BlockKey
	for b := 0; len(keys) < n && b < 100000; b++ {
		k := key(1, b)
		if (k.Mix()>>32)&m.mask == uint64(shardIdx) {
			keys = append(keys, k)
		}
	}
	return keys
}

func TestHarvestLeavesHealthyShardsAlone(t *testing.T) {
	// 2 shards × 16 frames, per-shard low 4 / high 8. Starve shard 0
	// (free < 4) while shard 1 holds a couple of warm blocks far above
	// its own low watermark: harvesting must refill shard 0 only.
	m := New(Config{BlockSize: 64, Capacity: 32, Shards: 2, LowWater: 8, HighWater: 16})
	starved := keysForShard(m, 0, 13)
	if len(starved) < 13 {
		t.Fatal("not enough keys routed to shard 0")
	}
	for _, k := range starved {
		if m.InsertClean(k, 0, fill(1, 64)) != OutcomeOK {
			t.Fatal("insert failed")
		}
	}
	warm := keysForShard(m, 1, 2)
	for _, k := range warm {
		m.InsertClean(k, 0, fill(2, 64))
	}
	if !m.NeedsHarvest() {
		t.Fatal("starved shard should trigger harvest")
	}
	if freed := m.Harvest(); freed == 0 {
		t.Fatal("harvest freed nothing")
	}
	for _, k := range warm {
		if !m.Contains(k, 0, 64) {
			t.Fatal("harvest evicted a block from a shard above its low watermark")
		}
	}
	if m.NeedsHarvest() {
		t.Fatal("harvest did not clear the starved shard's trigger")
	}
}

func TestOneFrameShardsDoNotChurn(t *testing.T) {
	// 4 shards × 1 frame: low and high collapse to 0, disabling the
	// harvester there (allocation falls back to inline eviction). Without
	// that, low ≥ 1 with high == capacity would make every resident block
	// re-trigger the harvester, which would immediately evict it.
	m := New(Config{BlockSize: 64, Capacity: 4, Shards: 4, LowWater: 1, HighWater: 4})
	for b := 0; b < 64; b++ {
		m.InsertClean(key(1, b), 0, fill(byte(b), 64))
	}
	st := m.Stats()
	if st.Resident != 4 {
		t.Fatalf("resident = %d, want every one-frame shard full", st.Resident)
	}
	if m.NeedsHarvest() {
		t.Fatal("full one-frame shards must not demand harvesting")
	}
	if freed := m.Harvest(); freed != 0 {
		t.Fatalf("harvest churned %d blocks out of one-frame shards", freed)
	}
	if m.Stats().Resident != 4 {
		t.Fatal("harvest evicted from one-frame shards")
	}
}

// TestShardedEquivalence replays one random operation sequence against a
// single-shard and an 8-shard manager sized so that no shard ever runs out
// of frames: outside of replacement pressure the two must agree on every
// read's outcome and bytes — sharding is a locking change, not a policy
// change.
func TestShardedEquivalence(t *testing.T) {
	one := New(Config{BlockSize: 64, Capacity: 1024, Shards: 1})
	many := New(Config{BlockSize: 64, Capacity: 1024, Shards: 8})
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 5000; i++ {
		k := key(1+rng.Intn(3), rng.Intn(96))
		switch rng.Intn(4) {
		case 0:
			off := rng.Intn(64)
			length := 1 + rng.Intn(64-off)
			data := fill(byte(rng.Intn(256)), length)
			if got, want := many.WriteSpan(k, 0, off, data, true), one.WriteSpan(k, 0, off, data, true); got != want {
				t.Fatalf("op %d: WriteSpan outcome %v vs %v", i, got, want)
			}
		case 1:
			off := rng.Intn(64)
			length := 1 + rng.Intn(64-off)
			a := make([]byte, length)
			b := make([]byte, length)
			hitA := many.ReadSpan(k, off, a)
			hitB := one.ReadSpan(k, off, b)
			if hitA != hitB {
				t.Fatalf("op %d: hit %v vs %v for %v", i, hitA, hitB, k)
			}
			if hitA && !bytes.Equal(a, b) {
				t.Fatalf("op %d: byte mismatch for %v", i, k)
			}
		case 2:
			data := fill(byte(rng.Intn(256)), 64)
			if got, want := many.InsertClean(k, 0, data), one.InsertClean(k, 0, data); got != want {
				t.Fatalf("op %d: InsertClean outcome %v vs %v", i, got, want)
			}
		case 3:
			if got, want := many.Invalidate(k), one.Invalidate(k); got != want {
				t.Fatalf("op %d: Invalidate %v vs %v", i, got, want)
			}
		}
	}
	if one.DirtyCount() != many.DirtyCount() {
		t.Fatalf("dirty counts diverged: %d vs %d", one.DirtyCount(), many.DirtyCount())
	}
	if err := many.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

// TestShardedStorm is the buffer-level half of the concurrency test wall:
// readers, writers, a flusher, a harvester and invalidators hammer one
// sharded manager from many goroutines (run under -race in CI). After the
// storm the frame-accounting invariants must hold: free + resident ==
// capacity, the structural consistency check passes, and — because dirty
// blocks are never evictable — every block dirtied and not invalidated or
// flushed is still present with its bytes intact.
func TestShardedStorm(t *testing.T) {
	seed := testseed.Base(t)
	const capacity = 64
	m := New(Config{BlockSize: 64, Capacity: capacity, Shards: 8})
	var stop sync.WaitGroup
	done := make(chan struct{})

	// Flusher: drain dirty blocks in batches, randomly failing some.
	stop.Add(1)
	go func() {
		defer stop.Done()
		rng := rand.New(rand.NewSource(seed + 1))
		for {
			select {
			case <-done:
				return
			default:
			}
			items := m.TakeDirty(8)
			if rng.Intn(4) == 0 {
				m.FlushFailed(items)
			} else {
				m.FlushDone(items)
			}
		}
	}()
	// Harvester.
	stop.Add(1)
	go func() {
		defer stop.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			if m.NeedsHarvest() {
				m.Harvest()
			}
		}
	}()
	// Invalidator: single blocks and whole-file sweeps.
	stop.Add(1)
	go func() {
		defer stop.Done()
		rng := rand.New(rand.NewSource(seed + 2))
		for {
			select {
			case <-done:
				return
			default:
			}
			if rng.Intn(16) == 0 {
				m.InvalidateFile(3)
			} else {
				m.Invalidate(key(1+rng.Intn(3), rng.Intn(256)))
			}
		}
	}()
	// Readers and writers over a working set 4x the cache.
	var work sync.WaitGroup
	for g := 0; g < 8; g++ {
		work.Add(1)
		go func(g int) {
			defer work.Done()
			rng := rand.New(rand.NewSource(seed + int64(100+g)))
			dst := make([]byte, 64)
			for i := 0; i < 3000; i++ {
				k := key(1+rng.Intn(3), rng.Intn(256))
				switch rng.Intn(3) {
				case 0:
					m.WriteSpan(k, 0, 0, fill(byte(i), 64), true)
				case 1:
					if m.ReadSpan(k, 0, dst) {
						// A hit must return a whole untorn block: every
						// writer writes uniform fill patterns, so a mix of
						// byte values means a read raced a write inside
						// one shard lock.
						for _, v := range dst {
							if v != dst[0] {
								t.Errorf("torn read on %v", k)
								return
							}
						}
					}
				case 2:
					m.InsertClean(k, 0, fill(byte(i), 64))
				}
			}
		}(g)
	}
	work.Wait()
	close(done)
	stop.Wait()

	st := m.Stats()
	if st.Resident+st.Free != capacity {
		t.Fatalf("frames leaked: resident=%d free=%d capacity=%d",
			st.Resident, st.Free, capacity)
	}
	if err := m.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	// Drain and re-check: the storm must not have wedged any flushing flag.
	for m.DirtyCount() > 0 {
		items := m.TakeDirty(0)
		if len(items) == 0 {
			t.Fatalf("%d dirty blocks but none takeable (stuck flushing flag)", m.DirtyCount())
		}
		m.FlushDone(items)
	}
	if err := m.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}
