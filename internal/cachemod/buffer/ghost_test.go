package buffer

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"pvfscache/internal/blockio"
	"pvfscache/internal/testseed"
)

// ghostMgr returns a single-shard PolicyGhost manager (deterministic
// segment order; sharded behaviour is covered by the storm test below).
func ghostMgr(capacity int) *Manager {
	return New(Config{BlockSize: 64, Capacity: capacity, Policy: PolicyGhost, Shards: 1})
}

// touchAll re-reads each key once, promoting residents to protected.
func touchAll(t *testing.T, m *Manager, keys ...blockio.BlockKey) {
	t.Helper()
	dst := make([]byte, 64)
	for _, k := range keys {
		if !m.ReadSpan(k, 0, dst) {
			t.Fatalf("touch of %v missed", k)
		}
	}
}

func TestGhostListBounded(t *testing.T) {
	m := ghostMgr(8) // GhostFrac defaults to 1.0: ghostCap == capacity
	// Stream far more blocks than capacity+ghostCap through the cache.
	for i := 0; i < 100; i++ {
		m.InsertClean(key(1, i), 0, fill(byte(i), 64))
	}
	st := m.Stats()
	if st.Ghosts == 0 {
		t.Fatal("evictions recorded no ghosts")
	}
	if st.Ghosts > 8 {
		t.Fatalf("ghost list grew to %d entries, cap is 8", st.Ghosts)
	}
	if err := m.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

func TestGhostFracSizesAndDisables(t *testing.T) {
	m := New(Config{BlockSize: 64, Capacity: 8, Policy: PolicyGhost, Shards: 1, GhostFrac: 0.5})
	for i := 0; i < 50; i++ {
		m.InsertClean(key(1, i), 0, fill(1, 64))
	}
	if st := m.Stats(); st.Ghosts > 4 {
		t.Fatalf("GhostFrac 0.5 of 8 frames kept %d ghosts, want <= 4", st.Ghosts)
	}
	// Negative disables the history entirely (pure two-segment ablation).
	m2 := New(Config{BlockSize: 64, Capacity: 8, Policy: PolicyGhost, Shards: 1, GhostFrac: -1})
	for i := 0; i < 50; i++ {
		m2.InsertClean(key(1, i), 0, fill(1, 64))
	}
	if st := m2.Stats(); st.Ghosts != 0 {
		t.Fatalf("negative GhostFrac still kept %d ghosts", st.Ghosts)
	}
	for _, m := range []*Manager{m, m2} {
		if err := m.CheckConsistency(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestGhostHitReAdmitsProtected is the policy's core promise: a block
// evicted while still in use re-enters straight into the protected
// segment on its next admission and then survives a scan that flushes
// probation many times over.
func TestGhostHitReAdmitsProtected(t *testing.T) {
	m := ghostMgr(4)
	a := key(1, 0)
	m.InsertClean(a, 0, fill(0xAA, 64))
	// A short scan evicts A (everything is unproven probation at this
	// point) while A's ghost entry is still remembered — the ghost list
	// is bounded, so a long enough scan would flush the history too.
	for i := 100; i < 104; i++ {
		m.InsertClean(key(1, i), 0, fill(1, 64))
	}
	dst := make([]byte, 64)
	if m.ReadSpan(a, 0, dst) {
		t.Fatal("scan failed to evict the victim")
	}
	// Re-admission hits A's ghost entry.
	m.InsertClean(a, 0, fill(0xAB, 64))
	if st := m.Stats(); st.GhostHits != 1 {
		t.Fatalf("ghost_hits = %d, want 1", st.GhostHits)
	}
	// A second, longer scan: A is protected now and must survive it.
	for i := 200; i < 230; i++ {
		m.InsertClean(key(1, i), 0, fill(2, 64))
	}
	if !m.ReadSpan(a, 0, dst) {
		t.Fatal("ghost-promoted block did not survive the scan")
	}
	if !bytes.Equal(dst, fill(0xAB, 64)) {
		t.Fatal("ghost-promoted block has wrong data")
	}
	if err := m.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

// TestGhostNoResurrectionOfInvalidatedKeys: invalidation (coherence,
// truncation) must erase ghost history — an invalidated block's past
// reuse is no longer evidence about its bytes.
func TestGhostNoResurrectionOfInvalidatedKeys(t *testing.T) {
	m := ghostMgr(4)
	a := key(1, 0)
	m.InsertClean(a, 0, fill(0xAA, 64))
	for i := 100; i < 104; i++ {
		m.InsertClean(key(1, i), 0, fill(1, 64)) // evict A into the ghost list
	}
	m.Invalidate(a)
	m.InsertClean(a, 0, fill(0xAB, 64))
	if st := m.Stats(); st.GhostHits != 0 {
		t.Fatalf("invalidated key resurrected as a ghost hit (%d)", st.GhostHits)
	}

	// Same through the per-file path.
	b := key(2, 0)
	m.InsertClean(b, 0, fill(0xBB, 64))
	for i := 300; i < 304; i++ {
		m.InsertClean(key(1, i), 0, fill(3, 64))
	}
	m.InvalidateFile(2)
	m.InsertClean(b, 0, fill(0xBC, 64))
	if st := m.Stats(); st.GhostHits != 0 {
		t.Fatalf("InvalidateFile left ghost history behind (%d hits)", st.GhostHits)
	}
	if err := m.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

// TestGhostTouchPromotesWorkingSetOverScan: blocks that prove reuse while
// resident are promoted and a pure scan cannot displace them.
func TestGhostTouchPromotesWorkingSetOverScan(t *testing.T) {
	m := ghostMgr(8) // protCap = 8 - 8/4 = 6
	ws := []blockio.BlockKey{key(1, 0), key(1, 1), key(1, 2)}
	for i, k := range ws {
		m.InsertClean(k, 0, fill(byte(0xA0+i), 64))
	}
	touchAll(t, m, ws...) // second access: probation -> protected
	for i := 0; i < 100; i++ {
		m.InsertClean(key(9, i), 0, fill(5, 64))
	}
	dst := make([]byte, 64)
	for i, k := range ws {
		if !m.ReadSpan(k, 0, dst) {
			t.Fatalf("working-set block %v evicted by the scan", k)
		}
		if !bytes.Equal(dst, fill(byte(0xA0+i), 64)) {
			t.Fatalf("working-set block %v corrupted", k)
		}
	}
	if err := m.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

// TestGhostAdmissionGateRejectsUnproven: when every evictable frame is
// protected, an unproven clean insert is refused (OutcomeNoSpace) — but a
// write must still be admitted, evicting protected if it has to.
func TestGhostAdmissionGateRejectsUnproven(t *testing.T) {
	m := ghostMgr(4) // protCap = 3
	keys := []blockio.BlockKey{key(1, 0), key(1, 1), key(1, 2)}
	for _, k := range keys {
		m.InsertClean(k, 0, fill(1, 64))
	}
	touchAll(t, m, keys...) // all three protected
	// The last frame is dirty probation: not evictable at all.
	if got := m.WriteSpan(key(1, 3), 0, 0, fill(2, 64), true); got != OutcomeOK {
		t.Fatalf("dirty fill write = %v", got)
	}
	// Unproven newcomer: only protected victims remain -> rejected.
	if got := m.InsertClean(key(2, 0), 0, fill(3, 64)); got != OutcomeNoSpace {
		t.Fatalf("unproven insert over protected set = %v, want OutcomeNoSpace", got)
	}
	st := m.Stats()
	if st.AdmissionRejects == 0 {
		t.Fatal("admission_rejects not counted")
	}
	if st.ProtectedEvictions != 0 {
		t.Fatalf("rejected insert still evicted %d protected blocks", st.ProtectedEvictions)
	}
	// A write overrides the gate (writes may block but not vanish): it
	// takes a protected victim.
	if got := m.WriteSpan(key(2, 1), 0, 0, fill(4, 64), true); got != OutcomeOK {
		t.Fatalf("must-admit write = %v", got)
	}
	if st := m.Stats(); st.ProtectedEvictions != 1 {
		t.Fatalf("protected_evictions = %d, want 1", st.ProtectedEvictions)
	}
	// A must-cache install (per-open hint) also overrides, landing
	// pinned-protected.
	if got := m.InstallFetchedAdmit(key(2, 2), 0, fill(5, 64), true, m.WriteStamp(key(2, 2))); got != OutcomeOK {
		t.Fatalf("must-cache install = %v", got)
	}
	if err := m.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

// TestGhostProtectedOverflowDemotes: the protected segment is bounded;
// promoting more than protCap blocks demotes the stalest back to
// probation instead of growing without bound (verified indirectly: the
// demoted blocks become evictable again and CheckConsistency enforces
// protList <= protCap).
func TestGhostProtectedOverflowDemotes(t *testing.T) {
	m := ghostMgr(8) // protCap = 6
	var keys []blockio.BlockKey
	for i := 0; i < 8; i++ {
		k := key(1, i)
		keys = append(keys, k)
		m.InsertClean(k, 0, fill(byte(i), 64))
	}
	touchAll(t, m, keys...) // try to promote all 8; only 6 may stay
	if err := m.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	// The cache is still fully writable: demotion keeps frames evictable.
	for i := 100; i < 104; i++ {
		if got := m.WriteSpan(key(2, i), 0, 0, fill(9, 64), true); got != OutcomeOK {
			t.Fatalf("write after overflow = %v", got)
		}
	}
	if err := m.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

func TestGhostPatchResidentAndNoteBypass(t *testing.T) {
	m := ghostMgr(4)
	a := key(1, 0)
	// Dirty resident bytes must win over a bypassed fetch's image.
	if got := m.WriteSpan(a, 0, 0, fill(0xDD, 16), true); got != OutcomeOK {
		t.Fatalf("write = %v", got)
	}
	img := fill(0x11, 64)
	m.PatchResident(a, img, m.WriteStamp(a))
	if !bytes.Equal(img[:16], fill(0xDD, 16)) {
		t.Fatal("PatchResident did not overlay resident dirty bytes")
	}
	if !bytes.Equal(img[16:], fill(0x11, 48)) {
		t.Fatal("PatchResident touched bytes the cache does not hold")
	}
	// A non-resident key leaves the image alone and installs nothing.
	img2 := fill(0x22, 64)
	m.PatchResident(key(3, 7), img2, m.WriteStamp(key(3, 7)))
	if !bytes.Equal(img2, fill(0x22, 64)) {
		t.Fatal("PatchResident modified the image of an uncached key")
	}
	dst := make([]byte, 64)
	if m.ReadSpan(key(3, 7), 0, dst) {
		t.Fatal("PatchResident installed a block")
	}
	m.NoteBypass(a)
	m.NoteBypass(key(3, 7))
	if st := m.Stats(); st.BypassReads != 2 {
		t.Fatalf("bypass_reads = %d, want 2", st.BypassReads)
	}
	if err := m.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

func TestParsePolicy(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Policy
	}{{"clock", PolicyClock}, {"lru", PolicyLRU}, {"ghost", PolicyGhost}} {
		got, err := ParsePolicy(tc.in)
		if err != nil || got != tc.want {
			t.Fatalf("ParsePolicy(%q) = %v, %v", tc.in, got, err)
		}
		if got.String() != tc.in {
			t.Fatalf("round trip %q -> %q", tc.in, got.String())
		}
	}
	if _, err := ParsePolicy("arc4random"); err == nil {
		t.Fatal("unknown policy parsed")
	}
}

// TestGhostStorm mixes a scanner, working-set readers, a writer and an
// invalidator against a sharded ghost-policy manager; run with -race.
// The oracle is CheckConsistency (segment partition, protCap, ghost
// bounds and non-residency) plus working-set data integrity.
func TestGhostStorm(t *testing.T) {
	// The storm has no PRNG of its own; the logged seed staggers the
	// readers' walk phases so different seeds explore different
	// interleavings against the scanner.
	seed := testseed.Base(t)
	m := New(Config{BlockSize: 64, Capacity: 128, Policy: PolicyGhost, Shards: 4})
	ws := make([]blockio.BlockKey, 16)
	for i := range ws {
		ws[i] = key(1, i)
		if got := m.InsertClean(ws[i], 0, fill(byte(i), 64)); got != OutcomeOK {
			t.Fatalf("seed insert = %v", got)
		}
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	fail := make(chan string, 8)
	// Working-set readers: re-touch constantly (promotion churn) and
	// verify bytes; a miss is legal (the set can be evicted before it
	// proves itself), silent corruption is not.
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func(phase int) {
			defer wg.Done()
			dst := make([]byte, 64)
			for n := 0; ; n++ {
				select {
				case <-stop:
					return
				default:
				}
				i := (n + phase) % len(ws)
				if m.ReadSpan(ws[i], 0, dst) && !bytes.Equal(dst, fill(byte(i), 64)) {
					fail <- fmt.Sprintf("working-set block %d corrupted", i)
					return
				}
				if !m.ReadSpan(ws[i], 0, dst) {
					m.InsertClean(ws[i], 0, fill(byte(i), 64)) // re-prove via ghost
				}
			}
		}(r + int(seed%int64(len(ws))))
	}
	// Scanner: a huge one-pass stream of clean inserts.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for n := 0; ; n++ {
			select {
			case <-stop:
				return
			default:
			}
			m.InsertClean(key(9, n%4096), 0, fill(0x55, 64))
		}
	}()
	// Writer: dirties and re-cleans a rotating set (must-admit path).
	wg.Add(1)
	go func() {
		defer wg.Done()
		for n := 0; ; n++ {
			select {
			case <-stop:
				return
			default:
			}
			k := key(7, n%64)
			if m.WriteSpan(k, 0, 0, fill(0x77, 64), true) == OutcomeOK {
				if blocks := m.TakeDirtyOwned(0, 8); len(blocks) > 0 {
					m.FlushDone(blocks)
				}
			}
		}
	}()
	// Invalidator: kills ghost history and residents alike.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for n := 0; ; n++ {
			select {
			case <-stop:
				return
			default:
			}
			m.Invalidate(key(9, n%4096))
			if n%1024 == 0 {
				m.InvalidateFile(7)
			}
		}
	}()
	for i := 0; i < 40; i++ {
		if err := m.CheckConsistency(); err != nil {
			close(stop)
			wg.Wait()
			t.Fatal(err)
		}
		select {
		case msg := <-fail:
			close(stop)
			wg.Wait()
			t.Fatal(msg)
		default:
		}
	}
	close(stop)
	wg.Wait()
	if err := m.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	st := m.Stats()
	if st.GhostHits == 0 {
		t.Log("storm produced no ghost hits (legal but unusual)")
	}
}
