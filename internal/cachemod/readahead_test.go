package cachemod

import (
	"bytes"
	"testing"
	"time"

	"pvfscache/internal/blockio"
	"pvfscache/internal/metrics"
	"pvfscache/internal/wire"
)

// raModule builds a bare module sufficient for driving the sequential
// detector directly (no network, no background threads).
func raModule(window int) *Module {
	return &Module{
		cfg: Config{ReadaheadWindow: window, Registry: metrics.NewRegistry()},
		ra:  make(map[blockio.FileID]*raState),
	}
}

func TestNoteAccessWindowAdvances(t *testing.T) {
	m := raModule(8)

	// The first raMinStreak-1 gap-free requests only establish the scan:
	// short chains (common under re-read locality) never prefetch.
	for i := int64(0); i < raMinStreak-1; i++ {
		if lo, hi := m.noteAccess(1, 2*i, 2*i+1); hi > lo {
			t.Fatalf("request %d prefetched [%d,%d)", i, lo, hi)
		}
	}
	// Request raMinStreak opens the window after the scan's last block.
	lo, hi := m.noteAccess(1, 6, 7)
	if lo != 8 || hi != 16 {
		t.Fatalf("window = [%d,%d), want [8,16)", lo, hi)
	}
	// Batched refill: with blocks 8..15 in flight and the scan at 9, more
	// than half the window is still ahead — no new prefetch yet.
	if lo, hi = m.noteAccess(1, 8, 9); hi > lo {
		t.Fatalf("refilled too early: [%d,%d)", lo, hi)
	}
	// Once the scan eats through half the window, it tops up in one piece.
	lo, hi = m.noteAccess(1, 10, 11)
	if lo != 16 || hi != 20 {
		t.Fatalf("refill window = [%d,%d), want [16,20)", lo, hi)
	}
	// A scan that catches up to its window keeps the full depth ahead.
	lo, hi = m.noteAccess(1, 12, 19)
	if lo != 20 || hi != 28 {
		t.Fatalf("caught-up window = [%d,%d), want [20,28)", lo, hi)
	}
}

func TestNoteAccessResetsOnRandomAccess(t *testing.T) {
	m := raModule(8)
	establish := func(base int64) {
		t.Helper()
		opened := false
		for i := int64(0); i < raMinStreak; i++ {
			if lo, hi := m.noteAccess(1, base+2*i, base+2*i+1); hi > lo {
				opened = true
			}
		}
		if !opened {
			t.Fatal("scan not established")
		}
	}
	establish(0)
	// A jump breaks the streak: no prefetch, and the issued high-water
	// clears so a new scan starts from scratch.
	if lo, hi := m.noteAccess(1, 100, 101); hi > lo {
		t.Fatalf("random access prefetched [%d,%d)", lo, hi)
	}
	if got := m.cfg.Registry.Counter("module.readahead_resets").Value(); got != 1 {
		t.Fatalf("readahead_resets = %d, want 1", got)
	}
	// Continuing from the jump re-establishes a fresh streak and resumes
	// prefetching from the new position.
	establish(102)
}

func TestNoteAccessPerFileIndependent(t *testing.T) {
	m := raModule(4)
	for i := int64(0); i < raMinStreak-1; i++ {
		m.noteAccess(1, i, i)
		m.noteAccess(2, 50+i, 50+i)
	}
	n := int64(raMinStreak)
	if lo, hi := m.noteAccess(1, n-1, n-1); lo != n || hi != n+4 {
		t.Fatalf("file 1 window = [%d,%d), want [%d,%d)", lo, hi, n, n+4)
	}
	if lo, hi := m.noteAccess(2, 50+n-1, 50+n-1); lo != 50+n || hi != 50+n+4 {
		t.Fatalf("file 2 window = [%d,%d), want [%d,%d)", lo, hi, 50+n, 50+n+4)
	}
}

// TestNoteAccessUnalignedScan: a scan whose request size is not a block
// multiple re-touches the previous request's tail block each time; that
// overlap must count as continuation, not a reset.
func TestNoteAccessUnalignedScan(t *testing.T) {
	m := raModule(8)
	// 6 KB requests over 4 KB blocks: block ranges [0,1], [1,2], [2,3]...
	var lo, hi int64
	for i := int64(0); i < raMinStreak+1; i++ {
		l, h := m.noteAccess(1, i, i+1)
		if h > hi {
			lo, hi = l, h
		}
	}
	if hi <= lo {
		t.Fatal("unaligned sequential scan never opened a window")
	}
	if got := m.cfg.Registry.Counter("module.readahead_resets").Value(); got != 0 {
		t.Fatalf("unaligned scan counted %d resets", got)
	}
	// A genuine re-read of an old range still resets.
	if l, h := m.noteAccess(1, 0, 1); h > l {
		t.Fatal("backward jump prefetched")
	}
}

// TestNoteAccessSubBlockScan: requests smaller than one block revisit
// the same block several times before crossing into the next; the
// revisits must be neutral (no reset) so the streak builds on block
// crossings and the scan still engages readahead.
func TestNoteAccessSubBlockScan(t *testing.T) {
	m := raModule(8)
	var lo, hi int64
	// 1 KB reads over 4 KB blocks: four requests per block, block range
	// (b,b) each, advancing one block every fourth request.
	for req := 0; req < 4*(raMinStreak+1); req++ {
		b := int64(req / 4)
		l, h := m.noteAccess(1, b, b)
		if h > hi {
			lo, hi = l, h
		}
	}
	if hi <= lo {
		t.Fatal("sub-block sequential scan never opened a window")
	}
	if got := m.cfg.Registry.Counter("module.readahead_resets").Value(); got != 0 {
		t.Fatalf("sub-block scan counted %d resets", got)
	}
}

func TestNoteAccessDisabled(t *testing.T) {
	m := raModule(0) // fillDefaults maps negative config here
	for i := int64(0); i < 2*raMinStreak; i++ {
		if lo, hi := m.noteAccess(1, i, i); hi > lo {
			t.Fatal("disabled readahead still prefetched")
		}
	}
}

// waitCounter polls a counter until it reaches want (prefetch is
// asynchronous by design).
func waitCounter(t *testing.T, reg *metrics.Registry, name string, want int64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for reg.Counter(name).Value() < want {
		if time.Now().After(deadline) {
			t.Fatalf("%s = %d, want >= %d", name, reg.Counter(name).Value(), want)
		}
		time.Sleep(time.Millisecond)
	}
}

// hintAll routes every block of the file to iod 0 (one strip covering the
// whole test file), mirroring what libpvfs would announce.
func hintAll(tr *CachedTransport, file blockio.FileID) {
	tr.StripeHint(file, wire.FileMeta{Size: 1 << 20, Base: 0, PCount: 1, SSize: 1 << 20}, 2)
}

// readSeq performs one application-level read the way libpvfs does:
// report the whole request to the sequential detector, then send the
// piece.
func readSeq(t *testing.T, tr *CachedTransport, file blockio.FileID, off, length int64) wire.Message {
	t.Helper()
	tr.NoteRead(file, off, length)
	return sendRecv(t, tr, 0, &wire.Read{File: file, Offset: off, Length: length})
}

func TestReadaheadPrefetchesSequentialScan(t *testing.T) {
	r := newRig(t, nil)
	const file = 30
	data := bytes.Repeat([]byte{0x5A}, 16*4096)
	r.seed(0, file, 0, data)

	tr := r.mod.NewTransport()
	hintAll(tr, file)

	// raMinStreak gap-free ascending reads establish the scan; the last
	// one triggers a prefetch of the next 8 blocks (4..11).
	for i := int64(0); i < raMinStreak; i++ {
		readSeq(t, tr, file, i*4096, 4096)
	}
	waitCounter(t, r.reg, "module.prefetch_blocks", 8)

	// The scan's continuation is served entirely from prefetched blocks:
	// no demand fetch reaches the network, and every block counts as a
	// prefetch hit.
	before := r.reg.Snapshot()
	resp := readSeq(t, tr, file, raMinStreak*4096, 8*4096).(*wire.ReadResp)
	if !bytes.Equal(resp.Data, data[raMinStreak*4096:(raMinStreak+8)*4096]) {
		t.Fatal("prefetched data wrong")
	}
	d := r.reg.Snapshot().Diff(before)
	if d["module.read_full_hits"] != 1 {
		t.Fatalf("read_full_hits = %d, want 1 (no demand fetch)", d["module.read_full_hits"])
	}
	if d["module.prefetch_hits"] != 8 {
		t.Fatalf("prefetch_hits = %d, want 8", d["module.prefetch_hits"])
	}
	if d["module.read_subrequests"] != 0 {
		t.Fatalf("read_subrequests = %d, want 0", d["module.read_subrequests"])
	}
}

func TestReadaheadResetsOnRandomAccessLive(t *testing.T) {
	r := newRig(t, nil)
	const file = 31
	data := bytes.Repeat([]byte{0x11}, 64*4096)
	r.seed(0, file, 0, data)

	tr := r.mod.NewTransport()
	hintAll(tr, file)

	for i := int64(0); i < raMinStreak; i++ {
		readSeq(t, tr, file, i*4096, 4096)
	}
	waitCounter(t, r.reg, "module.prefetch_issued", 1)

	issued := r.reg.Counter("module.prefetch_issued").Value()
	// A random jump must not prefetch.
	readSeq(t, tr, file, 40*4096, 4096)
	if got := r.reg.Counter("module.readahead_resets").Value(); got != 1 {
		t.Fatalf("readahead_resets = %d, want 1", got)
	}
	if got := r.reg.Counter("module.prefetch_issued").Value(); got != issued {
		t.Fatalf("random access issued a prefetch (%d -> %d)", issued, got)
	}
}

func TestReadaheadNeedsStripeHint(t *testing.T) {
	r := newRig(t, nil)
	const file = 32
	r.seed(0, file, 0, bytes.Repeat([]byte{0x22}, 16*4096))

	// No StripeHint: the module cannot know which iod holds upcoming
	// blocks, so it must not prefetch (a misrouted prefetch would cache
	// another daemon's sparse zeros as data).
	tr := r.mod.NewTransport()
	for i := int64(0); i < raMinStreak+1; i++ {
		readSeq(t, tr, file, i*4096, 4096)
	}
	time.Sleep(20 * time.Millisecond) // would be plenty for a prefetch to land
	if got := r.reg.Counter("module.prefetch_issued").Value(); got != 0 {
		t.Fatalf("prefetch_issued = %d without a stripe hint", got)
	}
}

func TestReadaheadDisabledByConfig(t *testing.T) {
	r := newRig(t, func(c *Config) { c.ReadaheadWindow = -1 })
	const file = 33
	r.seed(0, file, 0, bytes.Repeat([]byte{0x33}, 16*4096))

	tr := r.mod.NewTransport()
	hintAll(tr, file)
	for i := int64(0); i < raMinStreak+1; i++ {
		readSeq(t, tr, file, i*4096, 4096)
	}
	time.Sleep(20 * time.Millisecond)
	if got := r.reg.Counter("module.prefetch_issued").Value(); got != 0 {
		t.Fatalf("prefetch_issued = %d with readahead disabled", got)
	}
}

// TestPrefetchJoinCountsAsHit covers the in-flight case: a demand read
// arriving while a prefetch is still on the wire joins it rather than
// fetching again, and still counts as a prefetch hit. The prefetch's
// fetch-table entry is staged by hand so the interleaving is
// deterministic: claim, demand read joins, prefetch publishes.
func TestPrefetchJoinCountsAsHit(t *testing.T) {
	r := newRig(t, nil)
	const file = 34
	data := bytes.Repeat([]byte{0x44}, 4096)
	r.seed(0, file, 0, data)

	tr := r.mod.NewTransport()
	key := blockio.BlockKey{File: file, Index: 0}
	st := &fetchState{done: make(chan struct{}), prefetch: true}
	r.mod.fetchMu.Lock()
	r.mod.fetches[key] = st
	r.mod.fetchMu.Unlock()

	// The demand read finds the in-flight prefetch and becomes a join.
	id, err := tr.Send(0, &wire.Read{File: file, Offset: 0, Length: 4096})
	if err != nil {
		t.Fatal(err)
	}
	// Publish exactly as prefetchIOD does.
	block := make([]byte, 4096)
	copy(block, data)
	r.mod.buf.InsertClean(key, 0, block)
	st.data = block
	r.mod.fetchMu.Lock()
	delete(r.mod.fetches, key)
	r.mod.fetchMu.Unlock()
	r.mod.raMu.Lock()
	r.mod.prefetched[key] = struct{}{}
	r.mod.prefetchMarks.Add(1)
	r.mod.raMu.Unlock()
	close(st.done)

	resp, err := tr.Recv(id)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(resp.(*wire.ReadResp).Data, data) {
		t.Fatal("joined data wrong")
	}
	if got := r.reg.Counter("module.prefetch_hits").Value(); got != 1 {
		t.Fatalf("prefetch_hits = %d, want 1", got)
	}
	if got := r.reg.Counter("module.fetch_joins").Value(); got != 1 {
		t.Fatalf("fetch_joins = %d, want 1", got)
	}
}
