package cachemod

import (
	"bytes"
	"testing"
	"time"

	"pvfscache/internal/blockio"
	"pvfscache/internal/chaos/waitfor"
	"pvfscache/internal/metrics"
	"pvfscache/internal/wire"
)

// raModule builds a bare module sufficient for driving the pattern
// detector directly (no network, no background threads).
func raModule(window int) *Module {
	return &Module{
		cfg: Config{ReadaheadWindow: window, Registry: metrics.NewRegistry()},
		ra:  make(map[blockio.FileID]*raState),
	}
}

// window collapses a contiguous prediction list to its [lo, hi) range —
// the shape the ascending-scan tests reason in. Gaps are a test failure.
func window(t *testing.T, pred []int64) (lo, hi int64) {
	t.Helper()
	if len(pred) == 0 {
		return 0, 0
	}
	for i := 1; i < len(pred); i++ {
		if pred[i] != pred[i-1]+1 {
			t.Fatalf("prediction %v not contiguous", pred)
		}
	}
	return pred[0], pred[len(pred)-1] + 1
}

func TestNoteAccessWindowAdvances(t *testing.T) {
	m := raModule(8)

	// The first raMinStreak-1 gap-free requests only establish the scan:
	// short chains (common under re-read locality) never prefetch.
	for i := int64(0); i < raMinStreak-1; i++ {
		if pred := m.noteAccess(1, 2*i, 2*i+1); len(pred) != 0 {
			t.Fatalf("request %d prefetched %v", i, pred)
		}
	}
	// Request raMinStreak opens the window after the scan's last block.
	lo, hi := window(t, m.noteAccess(1, 6, 7))
	if lo != 8 || hi != 16 {
		t.Fatalf("window = [%d,%d), want [8,16)", lo, hi)
	}
	// Batched refill: with blocks 8..15 in flight and the scan at 9, more
	// than half the window is still ahead — no new prefetch yet.
	if pred := m.noteAccess(1, 8, 9); len(pred) != 0 {
		t.Fatalf("refilled too early: %v", pred)
	}
	// Once the scan eats through half the window, it tops up in one piece.
	lo, hi = window(t, m.noteAccess(1, 10, 11))
	if lo != 16 || hi != 20 {
		t.Fatalf("refill window = [%d,%d), want [16,20)", lo, hi)
	}
	// A scan that catches up to its window keeps the full depth ahead.
	lo, hi = window(t, m.noteAccess(1, 12, 19))
	if lo != 20 || hi != 28 {
		t.Fatalf("caught-up window = [%d,%d), want [20,28)", lo, hi)
	}
}

func TestNoteAccessResetsOnRandomAccess(t *testing.T) {
	m := raModule(8)
	establish := func(base int64) {
		t.Helper()
		opened := false
		for i := int64(0); i < raMinStreak; i++ {
			if len(m.noteAccess(1, base+2*i, base+2*i+1)) != 0 {
				opened = true
			}
		}
		if !opened {
			t.Fatal("scan not established")
		}
	}
	establish(0)
	// A jump breaks the streak: no prefetch, and the issued high-water
	// clears so a new scan starts from scratch.
	if pred := m.noteAccess(1, 100, 101); len(pred) != 0 {
		t.Fatalf("random access prefetched %v", pred)
	}
	if got := m.cfg.Registry.Counter("module.readahead_resets").Value(); got != 1 {
		t.Fatalf("readahead_resets = %d, want 1", got)
	}
	// Continuing from the jump re-establishes a fresh streak and resumes
	// prefetching from the new position.
	establish(102)
}

func TestNoteAccessPerFileIndependent(t *testing.T) {
	m := raModule(4)
	for i := int64(0); i < raMinStreak-1; i++ {
		m.noteAccess(1, i, i)
		m.noteAccess(2, 50+i, 50+i)
	}
	n := int64(raMinStreak)
	if lo, hi := window(t, m.noteAccess(1, n-1, n-1)); lo != n || hi != n+4 {
		t.Fatalf("file 1 window = [%d,%d), want [%d,%d)", lo, hi, n, n+4)
	}
	if lo, hi := window(t, m.noteAccess(2, 50+n-1, 50+n-1)); lo != 50+n || hi != 50+n+4 {
		t.Fatalf("file 2 window = [%d,%d), want [%d,%d)", lo, hi, 50+n, 50+n+4)
	}
}

// TestNoteAccessUnalignedScan: a scan whose request size is not a block
// multiple re-touches the previous request's tail block each time; that
// overlap must count as continuation, not a reset.
func TestNoteAccessUnalignedScan(t *testing.T) {
	m := raModule(8)
	// 6 KB requests over 4 KB blocks: block ranges [0,1], [1,2], [2,3]...
	opened := false
	for i := int64(0); i < raMinStreak+1; i++ {
		if len(m.noteAccess(1, i, i+1)) != 0 {
			opened = true
		}
	}
	if !opened {
		t.Fatal("unaligned sequential scan never opened a window")
	}
	if got := m.cfg.Registry.Counter("module.readahead_resets").Value(); got != 0 {
		t.Fatalf("unaligned scan counted %d resets", got)
	}
	// A genuine re-read of an old range still resets.
	if pred := m.noteAccess(1, 0, 1); len(pred) != 0 {
		t.Fatal("backward jump prefetched")
	}
}

// TestNoteAccessSubBlockScan: requests smaller than one block revisit
// the same block several times before crossing into the next; the
// revisits must be neutral (no reset) so the streak builds on block
// crossings and the scan still engages readahead.
func TestNoteAccessSubBlockScan(t *testing.T) {
	m := raModule(8)
	opened := false
	// 1 KB reads over 4 KB blocks: four requests per block, block range
	// (b,b) each, advancing one block every fourth request.
	for req := 0; req < 4*(raMinStreak+1); req++ {
		b := int64(req / 4)
		if len(m.noteAccess(1, b, b)) != 0 {
			opened = true
		}
	}
	if !opened {
		t.Fatal("sub-block sequential scan never opened a window")
	}
	if got := m.cfg.Registry.Counter("module.readahead_resets").Value(); got != 0 {
		t.Fatalf("sub-block scan counted %d resets", got)
	}
}

func TestNoteAccessDisabled(t *testing.T) {
	m := raModule(0) // fillDefaults maps negative config here
	for i := int64(0); i < 2*raMinStreak; i++ {
		if pred := m.noteAccess(1, i, i); len(pred) != 0 {
			t.Fatal("disabled readahead still prefetched")
		}
	}
}

// TestNoteAccessStridedScan: the regression test for the detector reset
// bug — the old machine reset to streak=1 on every non-ascending access,
// so a constant-stride scan (e.g. reading one column of a row-major
// matrix) could never establish itself. Strides now share the streak
// machine: the streak builds delta by delta and predictions replay the
// stride ahead of the scan.
func TestNoteAccessStridedScan(t *testing.T) {
	m := raModule(8)
	const stride = 10
	// Single-block reads at 0, 10, 20, ...: the second access seeds the
	// stride (two points), so the streak hits raMinStreak one access
	// earlier than an ascending scan's would.
	var pred []int64
	for i := int64(0); i < raMinStreak; i++ {
		pred = m.noteAccess(1, i*stride, i*stride)
		if i+2 <= raMinStreak && len(pred) != 0 {
			t.Fatalf("access %d predicted %v before the streak was proven", i, pred)
		}
	}
	if len(pred) == 0 {
		t.Fatal("strided scan never predicted")
	}
	last := (raMinStreak - 1) * int64(stride)
	for i, idx := range pred {
		if want := last + int64(i+1)*stride; idx != want {
			t.Fatalf("prediction[%d] = %d, want %d (pred %v)", i, idx, want, pred)
		}
	}
	if got := m.cfg.Registry.Counter("module.readahead_resets").Value(); got != 0 {
		t.Fatalf("strided scan counted %d resets", got)
	}
	// Steady state: each further access predicts one stride step beyond
	// the farthest already issued — no re-predictions, no stalls.
	next := m.noteAccess(1, raMinStreak*stride, raMinStreak*stride)
	if len(next) != 1 || next[0] != pred[len(pred)-1]+stride {
		t.Fatalf("steady-state prediction = %v, want [%d]", next, pred[len(pred)-1]+stride)
	}
}

// TestNoteAccessBackwardScan: a descending scan is a strided scan with a
// negative delta. Predictions run toward the file's front, stop at block
// zero, and come back sorted ascending (the fetch path requires it).
func TestNoteAccessBackwardScan(t *testing.T) {
	m := raModule(4)
	// Single-block reads at 100, 99, 98, 97: stride -1.
	var pred []int64
	for i := int64(0); i < raMinStreak; i++ {
		pred = m.noteAccess(1, 100-i, 100-i)
	}
	if len(pred) == 0 {
		t.Fatal("backward scan never predicted")
	}
	for i := 1; i < len(pred); i++ {
		if pred[i] <= pred[i-1] {
			t.Fatalf("backward predictions not sorted ascending: %v", pred)
		}
	}
	lowest := 100 - (raMinStreak - 1) // the scan's current position
	for _, idx := range pred {
		if idx >= int64(lowest) {
			t.Fatalf("prediction %d not ahead of the backward scan (at %d)", idx, lowest)
		}
	}
	if got := m.cfg.Registry.Counter("module.readahead_resets").Value(); got != 0 {
		t.Fatalf("backward scan counted %d resets", got)
	}

	// Near the file's front the predictions clip at block zero instead of
	// going negative.
	m2 := raModule(4)
	var p2 []int64
	for i := int64(0); i < raMinStreak; i++ {
		p2 = m2.noteAccess(1, raMinStreak-1-i, raMinStreak-1-i)
	}
	for _, idx := range p2 {
		if idx < 0 {
			t.Fatalf("backward scan predicted negative block %d (%v)", idx, p2)
		}
	}
}

// TestNoteAccessStridedToAscending: a pattern change from strided to
// dense ascending re-proves itself through the shared machine rather
// than being stuck with stale stride evidence.
func TestNoteAccessStridedToAscending(t *testing.T) {
	m := raModule(8)
	for i := int64(0); i < raMinStreak; i++ {
		m.noteAccess(1, i*7, i*7)
	}
	base := int64((raMinStreak - 1) * 7)
	opened := false
	// The first access after the strided run continues densely; the
	// ascending streak must rebuild and eventually predict again.
	for i := int64(1); i < raMinStreak+2; i++ {
		if len(m.noteAccess(1, base+i, base+i)) != 0 {
			opened = true
		}
	}
	if !opened {
		t.Fatal("ascending continuation after a strided run never predicted")
	}
}

// TestStreamStreak: the bypass decision's input tracks the detector.
func TestStreamStreak(t *testing.T) {
	m := raModule(8)
	m.cfg.BypassThreshold = raMinStreak
	if got := m.streamStreak(1); got != 0 {
		t.Fatalf("streak = %d before any access", got)
	}
	for i := int64(0); i < raMinStreak; i++ {
		m.noteAccess(1, i, i)
	}
	if got := m.streamStreak(1); got < raMinStreak {
		t.Fatalf("streak = %d after %d ascending reads", got, raMinStreak)
	}
	if mode := m.readAdmitMode(1); mode != admitNever {
		t.Fatalf("admit mode = %v over threshold, want bypass", mode)
	}
	// A random jump (delta seeds a new stride candidate) drops below the
	// threshold again.
	m.noteAccess(1, 1000, 1000)
	if mode := m.readAdmitMode(1); mode != admitDefault {
		t.Fatalf("admit mode = %v after pattern break, want default", mode)
	}
}

// TestNoteAccessDetectorRunsForBypass: with readahead disabled but a
// bypass threshold set, the detector still tracks streaks (it must — the
// bypass keys on them) while predicting nothing.
func TestNoteAccessDetectorRunsForBypass(t *testing.T) {
	m := raModule(0)
	m.cfg.BypassThreshold = raMinStreak
	for i := int64(0); i < 2*raMinStreak; i++ {
		if pred := m.noteAccess(1, i, i); len(pred) != 0 {
			t.Fatal("disabled readahead still predicted")
		}
	}
	if got := m.streamStreak(1); got < raMinStreak {
		t.Fatalf("streak = %d, want >= %d with bypass enabled", got, raMinStreak)
	}
}

// waitCounter polls a counter until it reaches want (prefetch is
// asynchronous by design).
func waitCounter(t *testing.T, reg *metrics.Registry, name string, want int64) {
	t.Helper()
	waitfor.Until(t, 5*time.Second, func() bool {
		return reg.Counter(name).Value() >= want
	}, "%s reaching %d (at %d)", name, want, reg.Counter(name).Value())
}

// hintAll routes every block of the file to iod 0 (one strip covering the
// whole test file), mirroring what libpvfs would announce.
func hintAll(tr *CachedTransport, file blockio.FileID) {
	tr.StripeHint(file, wire.FileMeta{Size: 1 << 20, Base: 0, PCount: 1, SSize: 1 << 20}, 2)
}

// readSeq performs one application-level read the way libpvfs does:
// report the whole request to the sequential detector, then send the
// piece.
func readSeq(t *testing.T, tr *CachedTransport, file blockio.FileID, off, length int64) wire.Message {
	t.Helper()
	tr.NoteRead(file, off, length)
	return sendRecv(t, tr, 0, &wire.Read{File: file, Offset: off, Length: length})
}

func TestReadaheadPrefetchesSequentialScan(t *testing.T) {
	r := newRig(t, nil)
	const file = 30
	data := bytes.Repeat([]byte{0x5A}, 16*4096)
	r.seed(0, file, 0, data)

	tr := r.mod.NewTransport()
	hintAll(tr, file)

	// raMinStreak gap-free ascending reads establish the scan; the last
	// one triggers a prefetch of the next 8 blocks (4..11).
	for i := int64(0); i < raMinStreak; i++ {
		readSeq(t, tr, file, i*4096, 4096)
	}
	waitCounter(t, r.reg, "module.prefetch_blocks", 8)

	// The scan's continuation is served entirely from prefetched blocks:
	// no demand fetch reaches the network, and every block counts as a
	// prefetch hit.
	before := r.reg.Snapshot()
	resp := readSeq(t, tr, file, raMinStreak*4096, 8*4096).(*wire.ReadResp)
	if !bytes.Equal(resp.Data, data[raMinStreak*4096:(raMinStreak+8)*4096]) {
		t.Fatal("prefetched data wrong")
	}
	d := r.reg.Snapshot().Diff(before)
	if d["module.read_full_hits"] != 1 {
		t.Fatalf("read_full_hits = %d, want 1 (no demand fetch)", d["module.read_full_hits"])
	}
	if d["module.prefetch_hits"] != 8 {
		t.Fatalf("prefetch_hits = %d, want 8", d["module.prefetch_hits"])
	}
	if d["module.read_subrequests"] != 0 {
		t.Fatalf("read_subrequests = %d, want 0", d["module.read_subrequests"])
	}
}

func TestReadaheadResetsOnRandomAccessLive(t *testing.T) {
	r := newRig(t, nil)
	const file = 31
	data := bytes.Repeat([]byte{0x11}, 64*4096)
	r.seed(0, file, 0, data)

	tr := r.mod.NewTransport()
	hintAll(tr, file)

	for i := int64(0); i < raMinStreak; i++ {
		readSeq(t, tr, file, i*4096, 4096)
	}
	waitCounter(t, r.reg, "module.prefetch_issued", 1)

	issued := r.reg.Counter("module.prefetch_issued").Value()
	// A random jump must not prefetch.
	readSeq(t, tr, file, 40*4096, 4096)
	if got := r.reg.Counter("module.readahead_resets").Value(); got != 1 {
		t.Fatalf("readahead_resets = %d, want 1", got)
	}
	if got := r.reg.Counter("module.prefetch_issued").Value(); got != issued {
		t.Fatalf("random access issued a prefetch (%d -> %d)", issued, got)
	}
}

func TestReadaheadNeedsStripeHint(t *testing.T) {
	r := newRig(t, nil)
	const file = 32
	r.seed(0, file, 0, bytes.Repeat([]byte{0x22}, 16*4096))

	// No StripeHint: the module cannot know which iod holds upcoming
	// blocks, so it must not prefetch (a misrouted prefetch would cache
	// another daemon's sparse zeros as data).
	tr := r.mod.NewTransport()
	for i := int64(0); i < raMinStreak+1; i++ {
		readSeq(t, tr, file, i*4096, 4096)
	}
	waitfor.Stable(t, 20*time.Millisecond, func() bool {
		return r.reg.Counter("module.prefetch_issued").Value() == 0
	}, "no prefetch issued without a stripe hint")
}

func TestReadaheadDisabledByConfig(t *testing.T) {
	r := newRig(t, func(c *Config) { c.ReadaheadWindow = -1 })
	const file = 33
	r.seed(0, file, 0, bytes.Repeat([]byte{0x33}, 16*4096))

	tr := r.mod.NewTransport()
	hintAll(tr, file)
	for i := int64(0); i < raMinStreak+1; i++ {
		readSeq(t, tr, file, i*4096, 4096)
	}
	waitfor.Stable(t, 20*time.Millisecond, func() bool {
		return r.reg.Counter("module.prefetch_issued").Value() == 0
	}, "no prefetch issued with readahead disabled")
}

// TestPrefetchJoinCountsAsHit covers the in-flight case: a demand read
// arriving while a prefetch is still on the wire joins it rather than
// fetching again, and still counts as a prefetch hit. The prefetch's
// fetch-table entry is staged by hand so the interleaving is
// deterministic: claim, demand read joins, prefetch publishes.
func TestPrefetchJoinCountsAsHit(t *testing.T) {
	r := newRig(t, nil)
	const file = 34
	data := bytes.Repeat([]byte{0x44}, 4096)
	r.seed(0, file, 0, data)

	tr := r.mod.NewTransport()
	key := blockio.BlockKey{File: file, Index: 0}
	st := &fetchState{done: make(chan struct{}), prefetch: true}
	r.mod.fetchMu.Lock()
	r.mod.fetches[key] = st
	r.mod.fetchMu.Unlock()

	// The demand read finds the in-flight prefetch and becomes a join.
	id, err := tr.Send(0, &wire.Read{File: file, Offset: 0, Length: 4096})
	if err != nil {
		t.Fatal(err)
	}
	// Publish exactly as prefetchIOD does.
	block := make([]byte, 4096)
	copy(block, data)
	r.mod.buf.InsertClean(key, 0, block)
	st.data = block
	r.mod.fetchMu.Lock()
	delete(r.mod.fetches, key)
	r.mod.fetchMu.Unlock()
	r.mod.raMu.Lock()
	r.mod.prefetched[key] = struct{}{}
	r.mod.prefetchMarks.Add(1)
	r.mod.raMu.Unlock()
	close(st.done)

	resp, err := tr.Recv(id)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(resp.(*wire.ReadResp).Data, data) {
		t.Fatal("joined data wrong")
	}
	if got := r.reg.Counter("module.prefetch_hits").Value(); got != 1 {
		t.Fatalf("prefetch_hits = %d, want 1", got)
	}
	if got := r.reg.Counter("module.fetch_joins").Value(); got != 1 {
		t.Fatalf("fetch_joins = %d, want 1", got)
	}
}
