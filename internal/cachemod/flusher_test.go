package cachemod

// Tests for the pipelined write-behind engine (flusher.go): run
// coalescing, failure isolation between streams, and a -race storm of
// concurrent writers against the windowed drain.

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pvfscache/internal/blockio"
	"pvfscache/internal/cachemod/buffer"
	"pvfscache/internal/chaos/waitfor"
	"pvfscache/internal/iod"
	"pvfscache/internal/metrics"
	"pvfscache/internal/pvfs"
	"pvfscache/internal/rpc"
	"pvfscache/internal/transport"
	"pvfscache/internal/wire"
)

// item builds a FlushItem for buildFlushChunks tests.
func item(file, idx, off, n int) buffer.FlushItem {
	return buffer.FlushItem{
		Key:  blockio.BlockKey{File: blockio.FileID(file), Index: int64(idx)},
		Off:  off,
		Data: bytes.Repeat([]byte{byte(idx + 1)}, n),
	}
}

func TestBuildFlushChunksCoalescesRuns(t *testing.T) {
	const bs = 4096
	items := []buffer.FlushItem{
		// Blocks 0-2 of file 1: full, full, head-partial — one run.
		item(1, 0, 0, bs), item(1, 1, 0, bs), item(1, 2, 0, 100),
		// Block 4 (gap after 2) is full and block 5 starts at 0, so the
		// 4|5 boundary tiles and they merge; block 5's span stops short
		// of its block end, so the 5|6 boundary does not.
		item(1, 4, 0, bs), item(1, 5, 0, bs-1),
		item(1, 6, 0, bs),
		// Block 7 starts at off 8 — the left boundary tiles only when the
		// right block starts at 0, so 6|7 must not merge.
		item(1, 7, 8, 100),
		// File 2 always opens a new chunk (one file per Flush frame).
		item(2, 0, 0, bs),
	}
	chunks := buildFlushChunks(9, items, bs)
	if len(chunks) != 2 {
		t.Fatalf("chunks = %d, want 2 (one per file)", len(chunks))
	}
	c0 := chunks[0]
	if c0.msg.File != 1 || c0.msg.Client != 9 || len(c0.items) != 7 {
		t.Fatalf("chunk 0: file=%v client=%d items=%d", c0.msg.File, c0.msg.Client, len(c0.items))
	}
	var got []string
	for _, b := range c0.msg.Blocks {
		got = append(got, fmt.Sprintf("%d+%d:%d", b.Index, b.Off, len(b.Data)))
	}
	want := []string{
		fmt.Sprintf("0+0:%d", 2*bs+100), // blocks 0-2 coalesced
		fmt.Sprintf("4+0:%d", 2*bs-1),   // blocks 4-5 coalesced
		fmt.Sprintf("6+0:%d", bs),
		"7+8:100",
	}
	if len(got) != len(want) {
		t.Fatalf("runs = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("run %d = %s, want %s (all: %v)", i, got[i], want[i], got)
		}
	}
	// The coalesced run's bytes are the blocks' bytes in order.
	run := c0.msg.Blocks[0].Data
	if !bytes.Equal(run[:bs], bytes.Repeat([]byte{1}, bs)) ||
		!bytes.Equal(run[bs:2*bs], bytes.Repeat([]byte{2}, bs)) ||
		!bytes.Equal(run[2*bs:], bytes.Repeat([]byte{3}, 100)) {
		t.Fatal("coalesced run bytes out of order")
	}
	if chunks[1].msg.File != 2 || len(chunks[1].items) != 1 {
		t.Fatalf("chunk 1: %+v", chunks[1].msg)
	}
}

func TestBuildFlushChunksSplitsAtTarget(t *testing.T) {
	const bs = 4096
	// Enough full blocks of one file to exceed the chunk target twice.
	n := 2*flushChunkTarget/bs + 3
	items := make([]buffer.FlushItem, 0, n)
	for i := 0; i < n; i++ {
		items = append(items, item(1, i, 0, bs))
	}
	chunks := buildFlushChunks(1, items, bs)
	if len(chunks) < 3 {
		t.Fatalf("chunks = %d, want >= 3 for %d bytes", len(chunks), n*bs)
	}
	total := 0
	for _, c := range chunks {
		accounted := 0
		for _, b := range c.msg.Blocks {
			accounted += len(b.Data) + wire.FlushBlockOverhead
		}
		if accounted > flushChunkTarget {
			t.Fatalf("chunk accounted bytes %d exceed target %d", accounted, flushChunkTarget)
		}
		total += len(c.items)
	}
	if total != n {
		t.Fatalf("items across chunks = %d, want %d", total, n)
	}
}

// flushRig is a three-iod harness whose middle iod's flush port can be
// taken down (connections drop) and brought back.
type flushRig struct {
	net   *transport.MemNetwork
	reg   *metrics.Registry
	iods  []*iod.Server
	mod   *Module
	down  atomic.Bool
	calls atomic.Int64 // flush frames that reached iod 1's port
}

func newFlushRig(t *testing.T, cfgEdit func(*Config)) *flushRig {
	t.Helper()
	r := &flushRig{net: transport.NewMem(), reg: metrics.NewRegistry()}
	var dataAddrs, flushAddrs []string
	for i := 0; i < 3; i++ {
		d := iod.New(i, 4096, r.net, r.reg)
		r.iods = append(r.iods, d)
		dl, err := r.net.Listen("")
		if err != nil {
			t.Fatal(err)
		}
		fl, err := r.net.Listen("")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { dl.Close(); fl.Close() })
		go d.ServeData(dl)
		if i == 1 {
			// iod 1's flush port: a gate in front of the real daemon.
			// While down, frames kill their connection (the daemon is
			// unreachable); when up, the write is applied like the real
			// flush handler would.
			d := d
			srv := rpc.NewServer(rpc.HandlerFunc(func(msg wire.Message) wire.Message {
				fm, ok := msg.(*wire.Flush)
				if !ok {
					return nil
				}
				r.calls.Add(1)
				if r.down.Load() {
					return nil // drop the connection: iod down
				}
				for _, blk := range fm.Blocks {
					d.Store().WriteAt(fm.File, blk.Index*4096+int64(blk.Off), blk.Data)
				}
				return &wire.FlushAck{Status: wire.StatusOK}
			}), rpc.ServerConfig{})
			go srv.Serve(fl)
			t.Cleanup(func() { srv.Close() })
		} else {
			go d.ServeFlush(fl)
		}
		dataAddrs = append(dataAddrs, dl.Addr())
		flushAddrs = append(flushAddrs, fl.Addr())
	}
	cfg := Config{
		Network:       r.net,
		ClientID:      1,
		IODDataAddrs:  dataAddrs,
		IODFlushAddrs: flushAddrs,
		Buffer:        buffer.Config{BlockSize: 4096, Capacity: 128},
		FlushPeriod:   time.Hour, // only kicks and FlushAll drive the streams
		Registry:      r.reg,
	}
	if cfgEdit != nil {
		cfgEdit(&cfg)
	}
	mod, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { mod.Close() })
	r.mod = mod
	return r
}

// TestFlushStreamFailureIsolation is the failure-isolation regression:
// with one iod's flush port down, the other streams must drain their
// backlog, the down iod's chunks must re-queue (not be lost, not block
// the others), and once the iod recovers FlushAll must succeed with every
// byte durable.
func TestFlushStreamFailureIsolation(t *testing.T) {
	r := newFlushRig(t, nil)
	r.down.Store(true)

	const blocks = 16
	tr := r.mod.NewTransport()
	payload := func(iodIdx, blk int) []byte {
		return bytes.Repeat([]byte{byte(1 + iodIdx*3 + blk*7)}, 4096)
	}
	// One file per iod, written whole-block through the cache.
	for iodIdx := 0; iodIdx < 3; iodIdx++ {
		file := blockio.FileID(10 + iodIdx)
		for blk := 0; blk < blocks; blk++ {
			resp := sendRecv(t, tr, iodIdx, &wire.Write{
				File: file, Offset: int64(blk) * 4096, Data: payload(iodIdx, blk),
			})
			if ack := resp.(*wire.WriteAck); ack.Status != wire.StatusOK {
				t.Fatalf("write ack %v", ack.Status)
			}
		}
	}
	if got := r.mod.Buffer().DirtyCount(); got != 3*blocks {
		t.Fatalf("dirty = %d, want %d", got, 3*blocks)
	}

	// Kick everything; the healthy iods must drain while iod 1 is down.
	waitfor.Until(t, 10*time.Second, func() bool {
		r.mod.kickAllStreams()
		return r.mod.Buffer().DirtyCount() <= blocks
	}, "healthy streams draining around the down iod")
	// Only iod 1's blocks remain, re-queued and intact — repeated kicks
	// must not lose (or duplicate) them while the port stays down.
	waitfor.Stable(t, 40*time.Millisecond, func() bool {
		r.mod.kickAllStreams()
		return r.mod.Buffer().DirtyCount() == blocks
	}, "down iod's backlog of %d dirty blocks surviving repeated kicks", blocks)
	for iodIdx := 0; iodIdx < 3; iodIdx += 2 {
		got := make([]byte, 4096)
		for blk := 0; blk < blocks; blk++ {
			if n, _ := r.iods[iodIdx].Store().ReadAt(blockio.FileID(10+iodIdx), int64(blk)*4096, got); n != 4096 ||
				!bytes.Equal(got, payload(iodIdx, blk)) {
				t.Fatalf("iod %d block %d not durable while iod 1 was down", iodIdx, blk)
			}
		}
	}
	snap := r.reg.Snapshot()
	if snap.Counters["module.flush_errors"] == 0 {
		t.Fatal("no flush errors counted for the down iod")
	}
	if snap.Counters["module.flush_requeued"] == 0 {
		t.Fatal("no re-queued blocks counted for the down iod")
	}

	// Recovery: the backlog drains and every byte is durable.
	r.down.Store(false)
	if err := r.mod.FlushAll(); err != nil {
		t.Fatalf("FlushAll after recovery: %v", err)
	}
	got := make([]byte, 4096)
	for blk := 0; blk < blocks; blk++ {
		if n, _ := r.iods[1].Store().ReadAt(blockio.FileID(11), int64(blk)*4096, got); n != 4096 ||
			!bytes.Equal(got, payload(1, blk)) {
			t.Fatalf("recovered iod block %d not durable (n=%d)", blk, n)
		}
	}
	if err := r.mod.Buffer().CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

// TestPressureKickNotStarvedByFailingStream: the directed pressure kick
// targets the stream owning the oldest dirty data — but when that
// stream's iod is down, pinning every kick on it would let healthy
// backlogs idle behind it (writers would stall the full WriteStall and
// degrade to write-through even though draining the other iods frees
// space immediately). Once the target stream is failing, kickFlusher
// must fall back to waking every stream.
func TestPressureKickNotStarvedByFailingStream(t *testing.T) {
	r := newFlushRig(t, nil)
	r.down.Store(true)
	tr := r.mod.NewTransport()
	block := bytes.Repeat([]byte{0x77}, 4096)

	// iod 1's block is dirtied first: the oldest, so every directed kick
	// resolves to stream 1.
	sendRecv(t, tr, 1, &wire.Write{File: 11, Offset: 0, Data: block})
	// Let stream 1 fail once so it is marked failing.
	r.mod.streams[1].kickStream()
	waitfor.Until(t, 10*time.Second, func() bool {
		return r.mod.streams[1].failing.Load()
	}, "stream 1 entering the failing state")

	// Younger dirty data on the healthy iods.
	sendRecv(t, tr, 0, &wire.Write{File: 10, Offset: 0, Data: block})
	sendRecv(t, tr, 2, &wire.Write{File: 12, Offset: 0, Data: block})

	// Only directed pressure kicks — the fallback must reach the healthy
	// streams even though the oldest dirty block belongs to iod 1.
	waitfor.Until(t, 10*time.Second, func() bool {
		r.mod.kickFlusher()
		return r.mod.Buffer().DirtyCount() <= 1
	}, "healthy streams draining past the failing one")
	got := make([]byte, 4096)
	if n, _ := r.iods[0].Store().ReadAt(10, 0, got); n != 4096 || !bytes.Equal(got, block) {
		t.Fatal("iod 0's block not durable")
	}
	if n, _ := r.iods[2].Store().ReadAt(12, 0, got); n != 4096 || !bytes.Equal(got, block) {
		t.Fatal("iod 2's block not durable")
	}
	// Bring iod 1 back so the Close-time FlushAll drains its block
	// instead of riding the stall timeout.
	r.down.Store(false)
}

// TestPressureKickWithStreamlessOwner: with mismatched data/flush
// address lists (more data iods than flush ports), blocks owned by a
// streamless iod can become the oldest dirty data. A pressure kick
// resolving to that owner must fall back to waking every stream — the
// flushable owners' backlog still frees space — rather than silently
// dropping the kick and stalling writers into WriteStall.
func TestPressureKickWithStreamlessOwner(t *testing.T) {
	net := transport.NewMem()
	reg := metrics.NewRegistry()
	var dataAddrs []string
	var flushAddr string
	iods := make([]*iod.Server, 2)
	for i := 0; i < 2; i++ {
		d := iod.New(i, 4096, net, reg)
		iods[i] = d
		dl, err := net.Listen("")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { dl.Close() })
		go d.ServeData(dl)
		dataAddrs = append(dataAddrs, dl.Addr())
		if i == 0 {
			fl, err := net.Listen("")
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { fl.Close() })
			go d.ServeFlush(fl)
			flushAddr = fl.Addr()
		}
	}
	mod, err := New(Config{
		Network:          net,
		ClientID:         1,
		IODDataAddrs:     dataAddrs,
		IODFlushAddrs:    []string{flushAddr}, // iod 1 has no flush stream
		Buffer:           buffer.Config{BlockSize: 4096, Capacity: 32},
		FlushPeriod:      time.Hour, // only kicks drive the stream
		DisableCoherence: true,
		Registry:         reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	block := bytes.Repeat([]byte{0x21}, 4096)
	tr := mod.NewTransport()
	// iod 1's (streamless) block first: it is the oldest dirty data.
	sendRecv(t, tr, 1, &wire.Write{File: 21, Offset: 0, Data: block})
	sendRecv(t, tr, 0, &wire.Write{File: 20, Offset: 0, Data: block})

	waitfor.Until(t, 10*time.Second, func() bool {
		mod.kickFlusher()
		got := make([]byte, 4096)
		n, _ := iods[0].Store().ReadAt(20, 0, got)
		return n == 4096 && bytes.Equal(got, block)
	}, "iod 0 draining despite the streamless oldest owner")
	// iod 1's block is permanently stuck (no flush port) — Close's
	// FlushAll would ride the 30 s stall timeout, so drop the block
	// first and close manually.
	mod.Buffer().Invalidate(blockio.BlockKey{File: 21, Index: 0})
	if err := mod.Close(); err != nil {
		t.Fatalf("Close after draining the flushable owner: %v", err)
	}
}

// TestPipelinedFlushStorm races concurrent writers (re-dirtying blocks
// mid-flight), invalidations of blocks being flushed, and the windowed
// multi-stream drain, then asserts the buffer manager's structural
// invariants and a byte oracle: after FlushAll, every block's durable
// bytes at its iod equal the last generation its writer wrote. Run under
// -race in CI.
func TestPipelinedFlushStorm(t *testing.T) {
	r := newRig(t, func(c *Config) {
		c.Buffer = buffer.Config{BlockSize: 4096, Capacity: 96, Shards: 8}
		c.FlushPeriod = time.Millisecond // streams churn constantly
		c.FlushBatch = 8                 // small chunks: deep windows
		c.FlushWindow = 4
	})
	mod := r.mod

	const (
		writers   = 4
		blocksPer = 16
		rounds    = 150
	)
	pattern := func(w, blk, gen int) byte { return byte(w*53 + blk*17 + gen*29 + 1) }
	lastGen := make([][]int, writers)

	// A sacrificial file whose blocks get invalidated while in flight:
	// flushDone/flushFailed on evicted blocks must be no-ops, not
	// corruption. Its bytes carry no oracle.
	const invalFile = blockio.FileID(40)
	invTr := mod.NewTransport()
	for blk := 0; blk < 8; blk++ {
		sendRecv(t, invTr, 0, &wire.Write{
			File: invalFile, Offset: int64(blk) * 4096, Data: bytes.Repeat([]byte{0xEE}, 4096),
		})
	}

	var writersWG, auxWG sync.WaitGroup
	stopInval := make(chan struct{})
	auxWG.Add(1)
	go func() { // invalidator: races Invalidate against in-flight flushes
		defer auxWG.Done()
		rng := rand.New(rand.NewSource(7))
		for {
			select {
			case <-stopInval:
				return
			default:
			}
			blk := int64(rng.Intn(8))
			mod.Buffer().Invalidate(blockio.BlockKey{File: invalFile, Index: blk})
			// Re-dirty it so there is always something in flight to race.
			sendRecvNoT(invTr, 0, &wire.Write{
				File: invalFile, Offset: blk * 4096, Data: bytes.Repeat([]byte{0xEE}, 4096),
			})
		}
	}()

	for w := 0; w < writers; w++ {
		lastGen[w] = make([]int, blocksPer)
		writersWG.Add(1)
		go func(w int) {
			defer writersWG.Done()
			tr := mod.NewTransport()
			rng := rand.New(rand.NewSource(int64(w)))
			file := blockio.FileID(20 + w)
			iodIdx := w % 2
			for g := 1; g <= rounds; g++ {
				blk := rng.Intn(blocksPer)
				data := bytes.Repeat([]byte{pattern(w, blk, g)}, 4096)
				if err := sendRecvNoT(tr, iodIdx, &wire.Write{
					File: file, Offset: int64(blk) * 4096, Data: data,
				}); err != nil {
					t.Errorf("writer %d: %v", w, err)
					return
				}
				lastGen[w][blk] = g
			}
		}(w)
	}
	// Writers finish first so lastGen is final before the oracle reads
	// it; the invalidator keeps racing until they do.
	done := make(chan struct{})
	go func() {
		writersWG.Wait()
		close(stopInval)
		auxWG.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("storm did not finish")
	}

	if err := mod.FlushAll(); err != nil {
		t.Fatalf("FlushAll: %v", err)
	}
	if err := mod.Buffer().CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 4096)
	for w := 0; w < writers; w++ {
		file := blockio.FileID(20 + w)
		iodIdx := w % 2
		for blk := 0; blk < blocksPer; blk++ {
			g := lastGen[w][blk]
			if g == 0 {
				continue // never written
			}
			want := bytes.Repeat([]byte{pattern(w, blk, g)}, 4096)
			if n, _ := r.iods[iodIdx].Store().ReadAt(file, int64(blk)*4096, got); n != 4096 || !bytes.Equal(got, want) {
				t.Fatalf("writer %d block %d: durable bytes are not generation %d", w, blk, g)
			}
		}
	}
	snap := r.reg.Snapshot()
	if snap.Counters["module.flushed_blocks"] == 0 {
		t.Fatal("storm flushed nothing")
	}
}

// sendRecvNoT is sendRecv without the test helper (usable from goroutines
// that must not call t.Fatal).
func sendRecvNoT(tr pvfs.Transport, iodIdx int, req wire.Message) error {
	id, err := tr.Send(iodIdx, req)
	if err != nil {
		return err
	}
	resp, err := tr.Recv(id)
	if err != nil {
		return err
	}
	if ack, ok := resp.(*wire.WriteAck); ok && ack.Status != wire.StatusOK {
		return fmt.Errorf("write ack status %v", ack.Status)
	}
	return nil
}
