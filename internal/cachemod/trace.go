package cachemod

import (
	"fmt"
	"strings"
	"time"

	"pvfscache/internal/blockio"
)

// Per-request trace mode: the admin endpoint arms N traces and the next N
// requests entering the module's FSM each log their hops — classification,
// fetch round trips, sheds, joins — with millisecond timings relative to
// the request's start. Captured traces sit in a bounded ring until drained
// by TraceText, so an armed-but-idle daemon holds at most traceRingSize
// logs. Tracing costs nothing when disarmed: the request path pays one
// atomic load.

// traceRingSize bounds the captured-trace ring.
const traceRingSize = 32

// ArmTrace arms trace mode for the next n requests (n <= 0 disarms).
func (m *Module) ArmTrace(n int) {
	if n < 0 {
		n = 0
	}
	m.traceArm.Store(int64(n))
}

// TraceArmed reports how many requests are still to be traced.
func (m *Module) TraceArmed() int { return int(m.traceArm.Load()) }

// TraceText drains the captured traces as a human-readable log, oldest
// first; it returns "" when nothing was captured.
func (m *Module) TraceText() string {
	m.traceMu.Lock()
	defer m.traceMu.Unlock()
	if len(m.traces) == 0 {
		return ""
	}
	out := strings.Join(m.traces, "\n---\n") + "\n"
	m.traces = nil
	return out
}

// reqTrace is one traced request's hop log. A nil *reqTrace is the
// disarmed case: hop and finish are no-ops on it, so the request path
// calls them unconditionally.
type reqTrace struct {
	m     *Module
	start time.Time
	steps []string
}

// traceStart claims one armed trace slot, or returns nil when disarmed.
func (m *Module) traceStart(op string, file blockio.FileID, off, length int64) *reqTrace {
	for {
		n := m.traceArm.Load()
		if n <= 0 {
			return nil
		}
		if m.traceArm.CompareAndSwap(n, n-1) {
			break
		}
	}
	rt := &reqTrace{m: m, start: time.Now()}
	rt.hop("%s file=%d off=%d len=%d", op, file, off, length)
	return rt
}

// hop appends one timestamped step. Safe on a nil receiver.
func (rt *reqTrace) hop(format string, args ...any) {
	if rt == nil {
		return
	}
	elapsed := float64(time.Since(rt.start).Microseconds()) / 1000
	rt.steps = append(rt.steps, fmt.Sprintf("%9.3fms %s", elapsed, fmt.Sprintf(format, args...)))
}

// finish records the outcome and publishes the trace to the module's ring.
// Safe on a nil receiver.
func (rt *reqTrace) finish(outcome string) {
	if rt == nil {
		return
	}
	rt.hop("done: %s", outcome)
	text := strings.Join(rt.steps, "\n")
	m := rt.m
	m.traceMu.Lock()
	m.traces = append(m.traces, text)
	if len(m.traces) > traceRingSize {
		m.traces = m.traces[len(m.traces)-traceRingSize:]
	}
	m.traceMu.Unlock()
}
