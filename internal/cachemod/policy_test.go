package cachemod

// Live tests for the discretionary-admission surface: per-open
// cache-policy hints (don't-cache / must-cache) and the streaming bypass
// that routes detected scans around the cache.

import (
	"bytes"
	"testing"

	"pvfscache/internal/blockio"
	"pvfscache/internal/cachemod/buffer"
	"pvfscache/internal/pvfs"
	"pvfscache/internal/wire"
)

func TestCacheNoneReadAround(t *testing.T) {
	r := newRig(t, nil)
	const file = 40
	data := bytes.Repeat([]byte{0x61}, 8192)
	r.seed(0, file, 0, data)

	tr := r.mod.NewTransport()
	tr.CachePolicyHint(file, pvfs.CacheNone)

	for pass := 0; pass < 2; pass++ {
		before := r.reg.Snapshot()
		resp := sendRecv(t, tr, 0, &wire.Read{File: file, Offset: 0, Length: 8192}).(*wire.ReadResp)
		if !bytes.Equal(resp.Data, data) {
			t.Fatalf("pass %d wrong data", pass)
		}
		// Every pass reaches the iod: nothing was admitted.
		if d := r.reg.Snapshot().Diff(before); d["iod.reads"] == 0 {
			t.Fatalf("pass %d served from cache despite don't-cache", pass)
		}
	}
	if r.mod.buf.Contains(blockio.BlockKey{File: file, Index: 0}, 0, 4096) {
		t.Fatal("don't-cache block became resident")
	}
	if st := r.mod.buf.Stats(); st.BypassReads == 0 {
		t.Fatal("bypass_reads not counted")
	}
	// Clearing the hint restores normal admission.
	tr.CachePolicyHint(file, pvfs.CacheDefault)
	sendRecv(t, tr, 0, &wire.Read{File: file, Offset: 0, Length: 8192})
	if !r.mod.buf.Contains(blockio.BlockKey{File: file, Index: 0}, 0, 4096) {
		t.Fatal("default policy no longer admits")
	}
}

func TestCacheNoneWriteAround(t *testing.T) {
	r := newRig(t, nil)
	const file = 41
	tr := r.mod.NewTransport()
	tr.CachePolicyHint(file, pvfs.CacheNone)

	payload := bytes.Repeat([]byte{0x62}, 4096)
	ack := sendRecv(t, tr, 0, &wire.Write{File: file, Offset: 0, Data: payload}).(*wire.WriteAck)
	if ack.Status != wire.StatusOK {
		t.Fatalf("write-around status %v", ack.Status)
	}
	if got := r.reg.Counter("module.write_around").Value(); got != 1 {
		t.Fatalf("write_around = %d, want 1", got)
	}
	if got := r.reg.Counter("module.writes_buffered").Value(); got != 0 {
		t.Fatalf("writes_buffered = %d, want 0", got)
	}
	if n := r.mod.buf.DirtyCount(); n != 0 {
		t.Fatalf("%d dirty blocks after a write-around", n)
	}
	// The iod has the bytes already — no flush needed.
	got := make([]byte, 4096)
	if n, _ := r.iods[0].Store().ReadAt(file, 0, got); n != len(got) || !bytes.Equal(got, payload) {
		t.Fatal("write-around bytes did not reach the iod")
	}
}

func TestCacheMustPinsWorkingSet(t *testing.T) {
	// A must-cache file's blocks are admitted pinned-protected under the
	// ghost policy: a one-pass scan many times the cache size cannot
	// displace them, even though the must-cache blocks were only ever
	// read once.
	r := newRig(t, func(c *Config) {
		c.Buffer.Policy = buffer.PolicyGhost
		c.Buffer.Capacity = 16
		c.ReadaheadWindow = -1
	})
	const hot, cold = 44, 45
	hotData := bytes.Repeat([]byte{0x65}, 4096)
	r.seed(0, hot, 0, hotData)
	r.seed(0, cold, 0, bytes.Repeat([]byte{0x66}, 64*4096))

	tr := r.mod.NewTransport()
	tr.CachePolicyHint(hot, pvfs.CacheMust)
	sendRecv(t, tr, 0, &wire.Read{File: hot, Offset: 0, Length: 4096})
	for i := int64(0); i < 64; i++ {
		sendRecv(t, tr, 0, &wire.Read{File: cold, Offset: i * 4096, Length: 4096})
	}
	if !r.mod.buf.Contains(blockio.BlockKey{File: hot, Index: 0}, 0, 4096) {
		t.Fatal("must-cache block displaced by a scan")
	}
	before := r.reg.Snapshot()
	resp := sendRecv(t, tr, 0, &wire.Read{File: hot, Offset: 0, Length: 4096}).(*wire.ReadResp)
	if !bytes.Equal(resp.Data, hotData) {
		t.Fatal("pinned block has wrong data")
	}
	if d := r.reg.Snapshot().Diff(before); d["iod.reads"] != 0 {
		t.Fatal("pinned block re-read hit the network")
	}
	if err := r.mod.buf.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

func TestStreamingBypassKicksInMidScan(t *testing.T) {
	r := newRig(t, func(c *Config) {
		c.ReadaheadWindow = -1 // isolate the bypass from prefetch traffic
		c.BypassThreshold = raMinStreak
	})
	const file = 42
	data := bytes.Repeat([]byte{0x63}, 16*4096)
	r.seed(0, file, 0, data)

	tr := r.mod.NewTransport()
	for i := int64(0); i < 8; i++ {
		resp := readSeq(t, tr, file, i*4096, 4096).(*wire.ReadResp)
		if !bytes.Equal(resp.Data, data[i*4096:(i+1)*4096]) {
			t.Fatalf("block %d wrong data", i)
		}
	}
	// The scan's head (streak below threshold) was admitted; its tail was
	// served read-around.
	if !r.mod.buf.Contains(blockio.BlockKey{File: file, Index: 0}, 0, 4096) {
		t.Fatal("pre-threshold block not cached")
	}
	if r.mod.buf.Contains(blockio.BlockKey{File: file, Index: 7}, 0, 4096) {
		t.Fatal("post-threshold stream block was admitted")
	}
	if st := r.mod.buf.Stats(); st.BypassReads == 0 {
		t.Fatal("bypass_reads not counted")
	}
	if got := r.reg.Counter("module.stream_bypasses").Value(); got == 0 {
		t.Fatal("stream_bypasses not counted")
	}
	// A must-cache hint overrides the bypass even mid-stream.
	tr.CachePolicyHint(file, pvfs.CacheMust)
	readSeq(t, tr, file, 8*4096, 4096)
	if !r.mod.buf.Contains(blockio.BlockKey{File: file, Index: 8}, 0, 4096) {
		t.Fatal("must-cache hint did not override the stream bypass")
	}
}

func TestBypassedStreamStillCorrectWithDirtyOverlay(t *testing.T) {
	// The read-around path must still overlay resident dirty bytes on the
	// fetched image: a buffered write followed by a bypassed stream read
	// of the same block returns the written bytes, not the iod's stale
	// copy.
	r := newRig(t, func(c *Config) {
		c.ReadaheadWindow = -1
		c.BypassThreshold = raMinStreak
	})
	const file = 43
	data := bytes.Repeat([]byte{0x64}, 16*4096)
	r.seed(0, file, 0, data)

	tr := r.mod.NewTransport()
	// Dirty the first 16 bytes of block 6 via write-behind.
	dirty := bytes.Repeat([]byte{0xEE}, 16)
	if ack := sendRecv(t, tr, 0, &wire.Write{File: file, Offset: 6 * 4096, Data: dirty}).(*wire.WriteAck); ack.Status != wire.StatusOK {
		t.Fatal("write failed")
	}
	// Scan up to and past block 6; by then the stream is bypassed.
	for i := int64(0); i < 8; i++ {
		resp := readSeq(t, tr, file, i*4096, 4096).(*wire.ReadResp)
		want := data[i*4096 : (i+1)*4096]
		if i == 6 {
			want = append(append([]byte{}, dirty...), data[6*4096+16:(6+1)*4096]...)
		}
		if !bytes.Equal(resp.Data, want) {
			t.Fatalf("block %d wrong data under bypass", i)
		}
	}
}
