// Package metrics provides the lightweight counters, gauges and histograms
// used by every component of the system: the buffer manager counts hits and
// misses, the iods count serviced bytes, the flusher counts flush rounds,
// and the simulator exports virtual-time latencies.
//
// A Registry is safe for concurrent use. Counters and gauges are lock-free;
// histograms take a short mutex. Snapshots are cheap and used by tests and
// the experiment harness to diff activity across a run.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing 64-bit counter.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by delta. Negative deltas are rejected.
func (c *Counter) Add(delta int64) {
	if delta < 0 {
		panic("metrics: negative delta on counter")
	}
	c.v.Add(delta)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a 64-bit value that can move in both directions.
type Gauge struct{ v atomic.Int64 }

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adjusts the gauge by delta (may be negative).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram accumulates observations into power-of-two buckets.
// Bucket i counts observations v with 2^(i-1) < v <= 2^i (bucket 0 counts
// v <= 1). It also tracks sum, count, min and max exactly.
type Histogram struct {
	mu      sync.Mutex
	buckets [64]int64
	count   int64
	sum     int64
	min     int64
	max     int64
}

// Observe records one observation. Negative values are clamped to zero.
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	h.buckets[bucketFor(v)]++
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
}

func bucketFor(v int64) int {
	if v <= 1 {
		return 0
	}
	return 64 - int(leadingZeros64(uint64(v-1)))
}

func leadingZeros64(x uint64) uint {
	if x == 0 {
		return 64
	}
	n := uint(0)
	for x&(1<<63) == 0 {
		x <<= 1
		n++
	}
	return n
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Sum returns the sum of observations.
func (h *Histogram) Sum() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// Mean returns the arithmetic mean, or 0 with no observations.
func (h *Histogram) Mean() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// Min returns the smallest observation, or 0 with no observations.
func (h *Histogram) Min() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.min
}

// Max returns the largest observation, or 0 with no observations.
func (h *Histogram) Max() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.max
}

// Quantile returns an upper bound for the q-quantile (0 <= q <= 1) using
// the bucket boundaries. It returns 0 with no observations.
func (h *Histogram) Quantile(q float64) int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := int64(math.Ceil(q * float64(h.count)))
	if target == 0 {
		target = 1
	}
	var seen int64
	for i, n := range h.buckets {
		seen += n
		if seen >= target {
			if i == 0 {
				return 1
			}
			return 1 << uint(i)
		}
	}
	return h.max
}

// Registry is a named collection of metrics. The zero value is not usable;
// call NewRegistry.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// Counter returns the counter with the given name, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge with the given name, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the histogram with the given name, creating it on first
// use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		h = &Histogram{}
		r.histograms[name] = h
	}
	return h
}

// Snapshot is a point-in-time copy of counter and gauge values plus
// histogram counts.
type Snapshot struct {
	Counters   map[string]int64
	Gauges     map[string]int64
	HistCounts map[string]int64
	HistSums   map[string]int64
}

// Snapshot captures the current values of every metric in the registry.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Snapshot{
		Counters:   make(map[string]int64, len(r.counters)),
		Gauges:     make(map[string]int64, len(r.gauges)),
		HistCounts: make(map[string]int64, len(r.histograms)),
		HistSums:   make(map[string]int64, len(r.histograms)),
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.histograms {
		s.HistCounts[name] = h.Count()
		s.HistSums[name] = h.Sum()
	}
	return s
}

// Diff returns the counter deltas between an earlier snapshot and this one.
// Counters absent from the earlier snapshot are treated as starting at zero.
func (s Snapshot) Diff(earlier Snapshot) map[string]int64 {
	out := make(map[string]int64, len(s.Counters))
	for name, v := range s.Counters {
		out[name] = v - earlier.Counters[name]
	}
	return out
}

// String renders the snapshot sorted by metric name, one per line.
func (s Snapshot) String() string {
	var names []string
	for n := range s.Counters {
		names = append(names, "counter/"+n)
	}
	for n := range s.Gauges {
		names = append(names, "gauge/"+n)
	}
	for n := range s.HistCounts {
		names = append(names, "hist/"+n)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, n := range names {
		switch {
		case strings.HasPrefix(n, "counter/"):
			fmt.Fprintf(&b, "%s = %d\n", n, s.Counters[strings.TrimPrefix(n, "counter/")])
		case strings.HasPrefix(n, "gauge/"):
			fmt.Fprintf(&b, "%s = %d\n", n, s.Gauges[strings.TrimPrefix(n, "gauge/")])
		default:
			base := strings.TrimPrefix(n, "hist/")
			fmt.Fprintf(&b, "%s: count=%d sum=%d\n", n, s.HistCounts[base], s.HistSums[base])
		}
	}
	return b.String()
}
