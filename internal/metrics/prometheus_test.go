package metrics

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// goldenRegistry builds a registry exercising every encoder edge: dotted
// names, multiple labeled series under one base, label-value escaping,
// name sanitization (dashes, leading digits), and both labeled and
// unlabeled histograms.
func goldenRegistry() *Registry {
	r := NewRegistry()
	r.Counter("cache.hits").Add(42)
	r.Counter(Labeled("module.tenant_writes", "tenant", "1")).Add(7)
	r.Counter(Labeled("module.tenant_writes", "tenant", "2")).Add(9)
	r.Counter(Labeled("module.tenant_writes", "tenant", "a\\b\"c\nd")).Inc()
	r.Gauge("cache.free-frames").Set(-3)
	r.Gauge("9lives").Set(5)
	h := r.Histogram("op.latency_us")
	for _, v := range []int64{1, 3, 3, 9} {
		h.Observe(v)
	}
	r.Histogram(Labeled("op.latency_us", "node", "0")).Observe(1)
	return r
}

func TestWritePrometheusGolden(t *testing.T) {
	var b strings.Builder
	if err := goldenRegistry().WritePrometheus(&b); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	got := b.String()

	path := filepath.Join("testdata", "golden.prom")
	if *updateGolden {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatalf("update golden: %v", err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden: %v", err)
	}
	if got != string(want) {
		t.Errorf("encoding drifted from golden file (run with -update to accept)\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestWritePrometheusShape asserts structural invariants independent of the
// golden bytes: one TYPE line per base name, cumulative buckets, and
// monotone ordering.
func TestWritePrometheusShape(t *testing.T) {
	var b strings.Builder
	if err := goldenRegistry().WritePrometheus(&b); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	types := map[string]int{}
	for _, line := range strings.Split(b.String(), "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			fields := strings.Fields(line)
			if len(fields) != 4 {
				t.Fatalf("malformed TYPE line %q", line)
			}
			types[fields[2]]++
		}
	}
	for name, n := range types {
		if n != 1 {
			t.Errorf("base %q declared %d times, want 1", name, n)
		}
	}
	if types["module_tenant_writes"] != 1 {
		t.Errorf("labeled counter family missing its TYPE line: %v", types)
	}
	out := b.String()
	if !strings.Contains(out, `op_latency_us_bucket{le="+Inf"} 4`) {
		t.Errorf("missing +Inf bucket:\n%s", out)
	}
	if !strings.Contains(out, `op_latency_us_bucket{node="0",le="+Inf"} 1`) {
		t.Errorf("labeled histogram lost its labels:\n%s", out)
	}
}

func TestLabeledEscaping(t *testing.T) {
	got := Labeled("x", "k", "a\\b\"c\nd")
	want := `x{k="a\\b\"c\nd"}`
	if got != want {
		t.Errorf("Labeled escaping: got %s want %s", got, want)
	}
	if Labeled("plain") != "plain" {
		t.Errorf("Labeled with no pairs should return base")
	}
}
