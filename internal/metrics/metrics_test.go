package metrics

import (
	"strings"
	"sync"
	"testing"
	"testing/quick"
)

func TestCounterBasics(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Errorf("value = %d, want 5", c.Value())
	}
}

func TestCounterRejectsNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on negative delta")
		}
	}()
	var c Counter
	c.Add(-1)
}

func TestGauge(t *testing.T) {
	var g Gauge
	g.Set(10)
	g.Add(-3)
	if g.Value() != 7 {
		t.Errorf("value = %d, want 7", g.Value())
	}
}

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if c.Value() != 16000 {
		t.Errorf("value = %d, want 16000", c.Value())
	}
}

func TestHistogramStats(t *testing.T) {
	var h Histogram
	for _, v := range []int64{1, 2, 3, 100} {
		h.Observe(v)
	}
	if h.Count() != 4 || h.Sum() != 106 {
		t.Errorf("count=%d sum=%d", h.Count(), h.Sum())
	}
	if h.Min() != 1 || h.Max() != 100 {
		t.Errorf("min=%d max=%d", h.Min(), h.Max())
	}
	if got := h.Mean(); got != 26.5 {
		t.Errorf("mean = %v", got)
	}
}

func TestHistogramNegativeClamped(t *testing.T) {
	var h Histogram
	h.Observe(-10)
	if h.Min() != 0 || h.Max() != 0 || h.Sum() != 0 {
		t.Error("negative observation should clamp to zero")
	}
}

func TestHistogramQuantile(t *testing.T) {
	var h Histogram
	if h.Quantile(0.5) != 0 {
		t.Error("empty histogram quantile should be 0")
	}
	for i := int64(1); i <= 100; i++ {
		h.Observe(i)
	}
	// Median of 1..100 lies in bucket covering 64; the bound must be >= 50
	// and a power of two.
	q := h.Quantile(0.5)
	if q < 50 {
		t.Errorf("median bound %d < 50", q)
	}
	if h.Quantile(0) < 1 {
		t.Error("q=0 should return at least 1")
	}
	if h.Quantile(1) < 100 {
		t.Errorf("q=1 bound %d < max", h.Quantile(1))
	}
	// Out-of-range q values are clamped, not panics.
	_ = h.Quantile(-1)
	_ = h.Quantile(2)
}

// Property: bucketFor returns a bucket whose bound covers v.
func TestBucketForProperty(t *testing.T) {
	f := func(raw uint32) bool {
		v := int64(raw)
		b := bucketFor(v)
		if b < 0 || b >= 64 {
			return false
		}
		bound := int64(1) << uint(b)
		if v > bound {
			return false
		}
		if b > 0 {
			lower := int64(1) << uint(b-1)
			return v > lower
		}
		return v <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRegistryReuse(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("hits")
	b := r.Counter("hits")
	if a != b {
		t.Error("same name should return same counter")
	}
	a.Inc()
	if r.Counter("hits").Value() != 1 {
		t.Error("counter state lost")
	}
	if r.Gauge("g") != r.Gauge("g") {
		t.Error("gauge identity")
	}
	if r.Histogram("h") != r.Histogram("h") {
		t.Error("histogram identity")
	}
}

func TestSnapshotAndDiff(t *testing.T) {
	r := NewRegistry()
	r.Counter("reads").Add(10)
	r.Gauge("dirty").Set(3)
	r.Histogram("lat").Observe(5)

	before := r.Snapshot()
	r.Counter("reads").Add(7)
	after := r.Snapshot()

	d := after.Diff(before)
	if d["reads"] != 7 {
		t.Errorf("diff reads = %d, want 7", d["reads"])
	}
	if after.Gauges["dirty"] != 3 {
		t.Errorf("gauge = %d", after.Gauges["dirty"])
	}
	if after.HistCounts["lat"] != 1 || after.HistSums["lat"] != 5 {
		t.Error("histogram snapshot wrong")
	}
}

func TestSnapshotDiffMissingEarlier(t *testing.T) {
	r := NewRegistry()
	empty := r.Snapshot()
	r.Counter("new").Add(4)
	d := r.Snapshot().Diff(empty)
	if d["new"] != 4 {
		t.Errorf("diff new = %d", d["new"])
	}
}

func TestSnapshotString(t *testing.T) {
	r := NewRegistry()
	r.Counter("b").Inc()
	r.Counter("a").Inc()
	r.Gauge("z").Set(2)
	s := r.Snapshot().String()
	if !strings.Contains(s, "counter/a = 1") || !strings.Contains(s, "gauge/z = 2") {
		t.Errorf("render:\n%s", s)
	}
	// sorted: a before b
	if strings.Index(s, "counter/a") > strings.Index(s, "counter/b") {
		t.Error("output not sorted")
	}
}
