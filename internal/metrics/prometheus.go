// Prometheus text exposition for a Registry.
//
// Registry names are dotted ("module.flush_errors") and may carry an
// inline label block built by Labeled ("module.tenant_dirty{tenant=\"3\"}").
// WritePrometheus renders the registry in the Prometheus text format
// (version 0.0.4): dots become underscores, any other character outside
// [a-zA-Z0-9_:] becomes an underscore, series sharing a base name are
// grouped under one # TYPE line, and histograms expose their power-of-two
// buckets as cumulative `le` series plus _sum and _count.
package metrics

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Labeled builds a registry metric name carrying a Prometheus-style label
// block: Labeled("module.tenant_dirty", "tenant", "3") returns
// `module.tenant_dirty{tenant="3"}`. Label values are escaped per the
// exposition format (backslash, double-quote and newline). Pairs must come
// in key/value couples; a dangling key panics, since it is a programming
// error at the call site.
func Labeled(base string, kv ...string) string {
	if len(kv) == 0 {
		return base
	}
	if len(kv)%2 != 0 {
		panic("metrics: Labeled requires key/value pairs")
	}
	var b strings.Builder
	b.WriteString(base)
	b.WriteByte('{')
	for i := 0; i < len(kv); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(kv[i])
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(kv[i+1]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// splitSeries splits a registry name into its sanitized base name and the
// label block (including braces, empty if unlabeled). Only the base is
// sanitized: label values were already escaped by Labeled.
func splitSeries(name string) (base, labels string) {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return sanitizeName(name[:i]), name[i:]
	}
	return sanitizeName(name), ""
}

func sanitizeName(s string) string {
	var b strings.Builder
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
			b.WriteRune(r)
		case r >= '0' && r <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// series is one exportable time series: a sanitized base name, an optional
// label block, and the raw registry name to read the value back out.
type series struct {
	base   string
	labels string
	raw    string
}

func collectSeries(names map[string]struct{}) []series {
	out := make([]series, 0, len(names))
	for raw := range names {
		base, labels := splitSeries(raw)
		out = append(out, series{base: base, labels: labels, raw: raw})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].base != out[j].base {
			return out[i].base < out[j].base
		}
		return out[i].labels < out[j].labels
	})
	return out
}

// WritePrometheus renders every metric in the registry in the Prometheus
// text exposition format. Output is deterministic: series are sorted by
// sanitized name then label block, and each base name gets exactly one
// # TYPE line even when many labeled series share it.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	counters := make(map[string]struct{}, len(r.counters))
	cvals := make(map[string]int64, len(r.counters))
	for name, c := range r.counters {
		counters[name] = struct{}{}
		cvals[name] = c.Value()
	}
	gauges := make(map[string]struct{}, len(r.gauges))
	gvals := make(map[string]int64, len(r.gauges))
	for name, g := range r.gauges {
		gauges[name] = struct{}{}
		gvals[name] = g.Value()
	}
	hists := make(map[string]struct{}, len(r.histograms))
	hrefs := make(map[string]*Histogram, len(r.histograms))
	for name, h := range r.histograms {
		hists[name] = struct{}{}
		hrefs[name] = h
	}
	r.mu.Unlock()

	lastType := ""
	emitType := func(base, typ string) error {
		key := typ + "\x00" + base
		if key == lastType {
			return nil
		}
		lastType = key
		_, err := fmt.Fprintf(w, "# TYPE %s %s\n", base, typ)
		return err
	}

	for _, s := range collectSeries(counters) {
		if err := emitType(s.base, "counter"); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s%s %d\n", s.base, s.labels, cvals[s.raw]); err != nil {
			return err
		}
	}
	for _, s := range collectSeries(gauges) {
		if err := emitType(s.base, "gauge"); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s%s %d\n", s.base, s.labels, gvals[s.raw]); err != nil {
			return err
		}
	}
	for _, s := range collectSeries(hists) {
		if err := emitType(s.base, "histogram"); err != nil {
			return err
		}
		if err := writeHistogram(w, s, hrefs[s.raw]); err != nil {
			return err
		}
	}
	return nil
}

// writeHistogram emits the cumulative buckets of h. The registry's buckets
// are power-of-two (bucket i counts 2^(i-1) < v <= 2^i; bucket 0 counts
// v <= 1), so the `le` bounds are 1, 2, 4, ... up to the highest non-empty
// bucket, followed by +Inf. An extra `le` label is appended to any label
// block the series already carries.
func writeHistogram(w io.Writer, s series, h *Histogram) error {
	h.mu.Lock()
	buckets := h.buckets
	count := h.count
	sum := h.sum
	h.mu.Unlock()

	top := -1
	for i, n := range buckets {
		if n != 0 {
			top = i
		}
	}
	var cum int64
	for i := 0; i <= top; i++ {
		cum += buckets[i]
		bound := "1"
		if i > 0 {
			bound = fmt.Sprintf("%d", int64(1)<<uint(i))
		}
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", s.base, withLabel(s.labels, "le", bound), cum); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", s.base, withLabel(s.labels, "le", "+Inf"), count); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %d\n", s.base, s.labels, sum); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", s.base, s.labels, count)
	return err
}

// withLabel merges one extra label into an existing (possibly empty) label
// block.
func withLabel(labels, key, val string) string {
	pair := key + `="` + escapeLabelValue(val) + `"`
	if labels == "" {
		return "{" + pair + "}"
	}
	return labels[:len(labels)-1] + "," + pair + "}"
}
