package pvfs

import (
	"fmt"

	"pvfscache/internal/blockio"
	"pvfscache/internal/wire"
)

// Piece is the part of a request that one iod serves: a contiguous
// file-space extent that lies entirely within strips held by that iod,
// plus the extent's position within the caller's buffer.
type Piece struct {
	IOD int // global iod index
	Ext blockio.Extent
	Pos int64 // offset of this piece within the request buffer
}

// PiecesFor splits the byte range [offset, offset+length) of a striped file
// into per-iod pieces, in increasing file-offset order. The file is striped
// round-robin in units of meta.SSize over meta.PCount iods starting at
// meta.Base (all indices into the cluster's iod list of size totalIODs).
//
// The metadata arrives from the wire (an OpenResp or StatResp), so invalid
// geometry is an input error, not a programming error: a hostile or corrupt
// mgr response must not be able to crash the client.
func PiecesFor(file blockio.FileID, meta wire.FileMeta, totalIODs int, offset, length int64) ([]Piece, error) {
	if length <= 0 {
		return nil, nil
	}
	ssize := int64(meta.SSize)
	pcount := int64(meta.PCount)
	if ssize <= 0 || pcount <= 0 || totalIODs <= 0 {
		return nil, fmt.Errorf("pvfs: invalid striping metadata (ssize=%d pcount=%d iods=%d): %w",
			ssize, pcount, totalIODs, wire.ErrBadRequest)
	}
	var pieces []Piece
	pos := int64(0)
	cur := offset
	end := offset + length
	for cur < end {
		strip := cur / ssize
		stripEnd := (strip + 1) * ssize
		pieceEnd := end
		if stripEnd < pieceEnd {
			pieceEnd = stripEnd
		}
		iod := (int64(meta.Base) + strip%pcount) % int64(totalIODs)
		pieces = append(pieces, Piece{
			IOD: int(iod),
			Ext: blockio.Extent{File: file, Offset: cur, Length: pieceEnd - cur},
			Pos: pos,
		})
		pos += pieceEnd - cur
		cur = pieceEnd
	}
	return pieces, nil
}

// IODsFor returns the distinct iod indices a file with the given metadata
// is striped over.
func IODsFor(meta wire.FileMeta, totalIODs int) []int {
	n := int(meta.PCount)
	if n > totalIODs {
		n = totalIODs
	}
	out := make([]int, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, (int(meta.Base)+i)%totalIODs)
	}
	return out
}
