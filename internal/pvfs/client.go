// Package pvfs implements the client side of the parallel file system: the
// equivalent of libpvfs. A Client resolves names against the metadata
// server and moves data to and from the I/O daemons, striping requests over
// the daemons that hold each file; when several striping pieces of one
// read land on the same daemon they travel as one vectored request
// (wire.ReadBlocks) rather than one round trip each. All data traffic
// flows through a Transport; installing the cache module's transport adds
// per-node shared caching without the library (or the application)
// noticing — the transparency property the paper's design is built
// around. The library announces each file's striping geometry to
// transports that want it (StripeHinter), which is what lets the cache
// module's readahead prefetcher route upcoming blocks to the right
// daemons.
package pvfs

import (
	"errors"
	"fmt"
	"io"
	"time"

	"pvfscache/internal/blockio"
	"pvfscache/internal/rpc"
	"pvfscache/internal/transport"
	"pvfscache/internal/wire"
)

// StripeSpec controls file striping at create time. Zero values select the
// cluster defaults (stripe over all iods, 64 KB strips, base 0).
type StripeSpec struct {
	Base   uint32
	PCount uint32
	SSize  uint32
}

// Config assembles a client.
type Config struct {
	// Network connects to mgr (and to the iods when Transport is nil).
	Network transport.Network
	// MgrAddr is the metadata server's address.
	MgrAddr string
	// IODAddrs lists every iod data-port address, in cluster order.
	IODAddrs []string
	// ClientID identifies this client's node cache to the iods (0 means
	// anonymous: no coherence tracking).
	ClientID uint32
	// Transport overrides the data path. Nil builds a DirectTransport —
	// the original, uncached PVFS behaviour.
	Transport Transport
	// OverloadRetries bounds how many times an operation shed with
	// wire.StatusOverload is retried before the error surfaces to the
	// application. 0 takes the default (5); negative disables retrying.
	OverloadRetries int
	// OverloadBackoff is the first retry's sleep; it doubles per attempt
	// up to a 100 ms cap. 0 takes the default (2 ms).
	OverloadBackoff time.Duration
}

// Client is one application process's handle on the file system. It is not
// safe for concurrent use, matching a single-threaded PVFS process; run one
// Client per simulated process.
type Client struct {
	cfg   Config
	data  Transport
	mgr   *rpc.Client
	files map[blockio.FileID]*File
}

// NewClient validates cfg and returns a client. Connections are dialed
// lazily.
func NewClient(cfg Config) (*Client, error) {
	if cfg.Network == nil {
		return nil, errors.New("pvfs: Config.Network is required")
	}
	if cfg.MgrAddr == "" {
		return nil, errors.New("pvfs: Config.MgrAddr is required")
	}
	if len(cfg.IODAddrs) == 0 {
		return nil, errors.New("pvfs: Config.IODAddrs is required")
	}
	data := cfg.Transport
	if data == nil {
		data = NewDirectTransport(cfg.Network, cfg.IODAddrs)
	}
	// Metadata traffic is light; one pooled connection suffices.
	mgr := rpc.NewClient(rpc.ClientConfig{Network: cfg.Network, Addr: cfg.MgrAddr, Conns: 1})
	return &Client{cfg: cfg, data: data, mgr: mgr, files: make(map[blockio.FileID]*File)}, nil
}

// mgrCall performs one synchronous metadata round trip. Metadata replies
// carry no bulk payload, so the result never holds a lease.
func (c *Client) mgrCall(req wire.Message) (wire.Message, error) {
	res := c.mgr.Call(req)
	if res.Err != nil {
		return nil, fmt.Errorf("pvfs: mgr call: %w", res.Err)
	}
	return res.Msg, nil
}

// Create makes a new file and returns an open handle on it.
func (c *Client) Create(name string, spec StripeSpec) (*File, error) {
	resp, err := c.mgrCall(&wire.Create{Name: name, Base: spec.Base, PCount: spec.PCount, SSize: spec.SSize})
	if err != nil {
		return nil, err
	}
	cr, ok := resp.(*wire.CreateResp)
	if !ok {
		return nil, fmt.Errorf("pvfs: unexpected create reply %v", resp.WireType())
	}
	if err := cr.Status.Err(); err != nil {
		return nil, fmt.Errorf("pvfs: create %q: %w", name, err)
	}
	return c.newFile(name, cr.File, cr.Meta), nil
}

// Open resolves an existing file.
func (c *Client) Open(name string) (*File, error) {
	resp, err := c.mgrCall(&wire.Open{Name: name})
	if err != nil {
		return nil, err
	}
	or, ok := resp.(*wire.OpenResp)
	if !ok {
		return nil, fmt.Errorf("pvfs: unexpected open reply %v", resp.WireType())
	}
	if err := or.Status.Err(); err != nil {
		return nil, fmt.Errorf("pvfs: open %q: %w", name, err)
	}
	return c.newFile(name, or.File, or.Meta), nil
}

// OpenWithPolicy resolves an existing file and attaches a cache-policy
// hint — the paper's discretionary-caching knob at the application
// boundary. The hint reaches transports that implement CachePolicyHinter
// (the cache module's); others ignore it. It is advisory and node-wide
// per file: the last open's hint wins, like a POSIX advise.
func (c *Client) OpenWithPolicy(name string, policy CachePolicy) (*File, error) {
	f, err := c.Open(name)
	if err != nil {
		return nil, err
	}
	f.HintCachePolicy(policy)
	return f, nil
}

// OpenWithTenant resolves an existing file and tags it with a tenant
// (principal) ID and flush-scheduling weight — the QoS knob at the
// application boundary. On a caching transport the tag charges the file's
// dirty frames and in-flight fetches to that tenant's quota and budget;
// see TenantHinter. Like OpenWithPolicy, the hint is advisory and
// node-wide per file: the last open's tag wins.
func (c *Client) OpenWithTenant(name string, tenant uint32, weight int) (*File, error) {
	f, err := c.Open(name)
	if err != nil {
		return nil, err
	}
	f.HintTenant(tenant, weight)
	return f, nil
}

// retryOverload runs op, retrying (with doubling, capped backoff) while it
// fails with wire.ErrOverload — a shed request whose state the daemon
// discarded, so re-issuing the whole operation is safe. Retries exhaust
// after cfg.OverloadRetries attempts and the overload error surfaces.
func (c *Client) retryOverload(op func() error) error {
	retries := c.cfg.OverloadRetries
	if retries == 0 {
		retries = 5
	}
	backoff := c.cfg.OverloadBackoff
	if backoff <= 0 {
		backoff = 2 * time.Millisecond
	}
	const maxBackoff = 100 * time.Millisecond
	for attempt := 0; ; attempt++ {
		err := op()
		if err == nil || !errors.Is(err, wire.ErrOverload) || attempt >= retries {
			return err
		}
		time.Sleep(backoff)
		if backoff < maxBackoff {
			backoff *= 2
			if backoff > maxBackoff {
				backoff = maxBackoff
			}
		}
	}
}

func (c *Client) newFile(name string, id blockio.FileID, meta wire.FileMeta) *File {
	f := &File{client: c, name: name, id: id, meta: meta}
	c.files[id] = f
	c.hintStripe(f)
	return f
}

// hintStripe forwards the file's striping geometry to the transport when
// it wants one (see StripeHinter); the cache module's readahead needs it
// to route prefetched blocks to the right daemons.
func (c *Client) hintStripe(f *File) {
	if h, ok := c.data.(StripeHinter); ok {
		h.StripeHint(f.id, f.meta, len(c.cfg.IODAddrs))
	}
}

// Unlink removes a file from the namespace. Strip data at the iods is left
// for the store to garbage collect (PVFS semantics are similar: iods clean
// up out of band).
func (c *Client) Unlink(name string) error {
	resp, err := c.mgrCall(&wire.Unlink{Name: name})
	if err != nil {
		return err
	}
	sm, ok := resp.(*wire.StatusMsg)
	if !ok {
		return fmt.Errorf("pvfs: unexpected unlink reply %v", resp.WireType())
	}
	if err := sm.Status.Err(); err != nil {
		return fmt.Errorf("pvfs: unlink %q: %w", name, err)
	}
	return nil
}

// List returns every name in the cluster namespace.
func (c *Client) List() ([]string, error) {
	resp, err := c.mgrCall(&wire.List{})
	if err != nil {
		return nil, err
	}
	lr, ok := resp.(*wire.ListResp)
	if !ok {
		return nil, fmt.Errorf("pvfs: unexpected list reply %v", resp.WireType())
	}
	return lr.Names, lr.Status.Err()
}

// Close shuts down the data transport and the mgr connection.
func (c *Client) Close() error {
	err := c.data.Close()
	c.mgr.Close()
	return err
}

// File is an open handle. Offsets are explicit (pread/pwrite style), which
// is how the paper's micro-benchmark drives the system.
type File struct {
	client *Client
	name   string
	id     blockio.FileID
	meta   wire.FileMeta
}

// Name returns the path the file was opened with.
func (f *File) Name() string { return f.name }

// ID returns the cluster-wide file ID.
func (f *File) ID() blockio.FileID { return f.id }

// Meta returns the striping metadata (size as of the last refresh).
func (f *File) Meta() wire.FileMeta { return f.meta }

// Size returns the file size as known locally (updated by this handle's
// writes and by Refresh).
func (f *File) Size() int64 { return f.meta.Size }

// HintCachePolicy forwards a cache-policy hint for this file to the
// transport (see CachePolicy). A no-op on transports without a cache.
func (f *File) HintCachePolicy(policy CachePolicy) {
	if h, ok := f.client.data.(CachePolicyHinter); ok {
		h.CachePolicyHint(f.id, policy)
	}
}

// HintTenant forwards a tenant tag and scheduling weight for this file to
// the transport (see TenantHinter). A no-op on transports without a cache.
func (f *File) HintTenant(tenant uint32, weight int) {
	if h, ok := f.client.data.(TenantHinter); ok {
		h.TenantHint(f.id, tenant, weight)
	}
}

// Refresh re-reads the file's metadata from mgr.
func (f *File) Refresh() error {
	resp, err := f.client.mgrCall(&wire.Stat{File: f.id})
	if err != nil {
		return err
	}
	sr, ok := resp.(*wire.StatResp)
	if !ok {
		return fmt.Errorf("pvfs: unexpected stat reply %v", resp.WireType())
	}
	if err := sr.Status.Err(); err != nil {
		return err
	}
	f.meta = sr.Meta
	f.client.hintStripe(f)
	return nil
}

// ReadAt fills p from the file starting at off. It follows the libpvfs
// protocol: every per-iod request of the operation is sent before any
// response is awaited. When several striping pieces land on the same iod
// (a request spanning multiple striping cycles) they travel as one
// vectored ReadBlocks instead of one Read each, so each daemon serves at
// most one round trip per operation. Reads entirely beyond EOF return
// (0, io.EOF); reads crossing EOF return short. Bytes inside holes of
// sparse files read as zero.
//
// A read shed by a saturated node (wire.ErrOverload) is retried with
// backoff before the error surfaces; see Config.OverloadRetries.
func (f *File) ReadAt(p []byte, off int64) (n int, err error) {
	err = f.client.retryOverload(func() error {
		n, err = f.readAtOnce(p, off)
		return err
	})
	return n, err
}

func (f *File) readAtOnce(p []byte, off int64) (int, error) {
	if off < 0 {
		return 0, fmt.Errorf("pvfs: negative offset %d", off)
	}
	if len(p) == 0 {
		return 0, nil
	}
	size := f.meta.Size
	if off >= size {
		return 0, io.EOF
	}
	want := int64(len(p))
	if off+want > size {
		want = size - off
	}
	pieces, err := PiecesFor(f.id, f.meta, len(f.client.cfg.IODAddrs), off, want)
	if err != nil {
		return 0, err
	}
	pieces = splitOversizedPieces(pieces)
	// Report the request to the transport's sequential detector before
	// the pieces go out, so an established scan's readahead overlaps this
	// request's own fetches.
	if h, ok := f.client.data.(ReadPatternHinter); ok {
		h.NoteRead(f.id, off, want)
	}

	// Group the pieces per iod, preserving first-appearance order, so one
	// daemon gets one (possibly vectored) request — split into several
	// when a huge read would otherwise exceed what one response frame can
	// carry.
	groups := make(map[int][]Piece, len(pieces))
	var order []int
	for _, pc := range pieces {
		if _, ok := groups[pc.IOD]; !ok {
			order = append(order, pc.IOD)
		}
		groups[pc.IOD] = append(groups[pc.IOD], pc)
	}
	type sentGroup struct {
		pieces []Piece
		id     ReqID
		sunk   bool // response scatters straight into p (zero-copy path)
	}
	sinker, canSink := f.client.data.(ReadSinker)
	var sent []sentGroup
	for _, iod := range order {
		for _, grp := range splitVectorGroup(groups[iod]) {
			var req wire.Message
			if len(grp) == 1 {
				req = &wire.Read{
					Client: f.client.cfg.ClientID,
					File:   f.id,
					Offset: grp[0].Ext.Offset,
					Length: grp[0].Ext.Length,
				}
			} else {
				exts := make([]wire.ReadExtent, len(grp))
				for j, pc := range grp {
					exts[j] = wire.ReadExtent{Offset: pc.Ext.Offset, Length: pc.Ext.Length}
				}
				req = &wire.ReadBlocks{Client: f.client.cfg.ClientID, File: f.id, Exts: exts}
			}
			if canSink {
				// Zero-copy: hand the transport the destination regions of
				// the caller's buffer so response bytes land there directly,
				// with no intermediate result buffer or response payload.
				sink := make([][]byte, len(grp))
				for j, pc := range grp {
					sink[j] = p[pc.Pos : pc.Pos+pc.Ext.Length]
				}
				id, ok, err := sinker.SendRead(iod, req, sink)
				if err != nil {
					return 0, err
				}
				if ok {
					sent = append(sent, sentGroup{pieces: grp, id: id, sunk: true})
					continue
				}
				// Declined (e.g. zero-copy disabled): fall back to copying.
			}
			id, err := f.client.data.Send(iod, req)
			if err != nil {
				return 0, err
			}
			sent = append(sent, sentGroup{pieces: grp, id: id})
		}
	}
	for _, sg := range sent {
		if sg.sunk {
			if err := f.recvSunkRead(sg.pieces, sg.id); err != nil {
				return 0, err
			}
			continue
		}
		if err := f.recvReadGroup(p, sg.pieces, sg.id); err != nil {
			return 0, err
		}
	}
	if want < int64(len(p)) {
		return int(want), io.EOF
	}
	return int(want), nil
}

// vectorBudget bounds the byte total of one vectored read's extents: the
// iod rejects requests whose response could not be framed
// (wire.MaxMessageSize/2), and the cache module may round the extents up
// to block boundaries before forwarding, so leave generous slack.
const vectorBudget = wire.MaxMessageSize/2 - (1 << 20)

// splitOversizedPieces subdivides any piece longer than vectorBudget
// (possible with huge strip sizes — SSize is a u32 from the wire) into
// budget-sized pieces on the same iod, so no single request can exceed
// what the iod will serve.
func splitOversizedPieces(pieces []Piece) []Piece {
	oversized := false
	for _, pc := range pieces {
		if pc.Ext.Length > vectorBudget {
			oversized = true
			break
		}
	}
	if !oversized {
		return pieces
	}
	out := make([]Piece, 0, len(pieces)+1)
	for _, pc := range pieces {
		for pc.Ext.Length > vectorBudget {
			out = append(out, Piece{
				IOD: pc.IOD,
				Ext: blockio.Extent{File: pc.Ext.File, Offset: pc.Ext.Offset, Length: vectorBudget},
				Pos: pc.Pos,
			})
			pc.Ext.Offset += vectorBudget
			pc.Ext.Length -= vectorBudget
			pc.Pos += vectorBudget
		}
		out = append(out, pc)
	}
	return out
}

// splitVectorGroup splits one iod's pieces into chunks whose extent
// totals stay within vectorBudget, so a read of any size decomposes into
// servable requests. Each chunk keeps at least one piece (pieces are
// pre-split to at most vectorBudget bytes each).
func splitVectorGroup(grp []Piece) [][]Piece {
	var out [][]Piece
	for len(grp) > 0 {
		n := 1
		bytes := grp[0].Ext.Length
		for n < len(grp) && bytes+grp[n].Ext.Length <= vectorBudget {
			bytes += grp[n].Ext.Length
			n++
		}
		out = append(out, grp[:n])
		grp = grp[n:]
	}
	return out
}

// recvSunkRead completes one iod's zero-copy read request: the transport
// has already scattered every byte into the caller's buffer (data then
// zeros), so only the status remains to be checked.
func (f *File) recvSunkRead(grp []Piece, id ReqID) error {
	resp, err := f.client.data.Recv(id)
	if err != nil {
		return err
	}
	switch rr := resp.(type) {
	case *wire.ReadResp:
		if err := rr.Status.Err(); err != nil {
			return fmt.Errorf("pvfs: read %q @%d: %w", f.name, grp[0].Ext.Offset, err)
		}
		return nil
	case *wire.ReadBlocksResp:
		if err := rr.Status.Err(); err != nil {
			return fmt.Errorf("pvfs: read %q: %w", f.name, err)
		}
		return nil
	default:
		return fmt.Errorf("pvfs: unexpected read reply %v", resp.WireType())
	}
}

// recvReadGroup completes one iod's read request and scatters the served
// bytes to the pieces' positions in the caller's buffer. Sparse or short
// strip data reads as zero.
func (f *File) recvReadGroup(p []byte, grp []Piece, id ReqID) error {
	resp, err := f.client.data.Recv(id)
	if err != nil {
		return err
	}
	fill := func(pc Piece, data []byte) {
		dst := p[pc.Pos : pc.Pos+pc.Ext.Length]
		n := copy(dst, data)
		for j := n; j < len(dst); j++ {
			dst[j] = 0
		}
	}
	switch rr := resp.(type) {
	case *wire.ReadResp:
		if len(grp) != 1 {
			return fmt.Errorf("pvfs: single read reply for %d pieces", len(grp))
		}
		if err := rr.Status.Err(); err != nil {
			return fmt.Errorf("pvfs: read %q @%d: %w", f.name, grp[0].Ext.Offset, err)
		}
		fill(grp[0], rr.Data)
		return nil
	case *wire.ReadBlocksResp:
		if err := rr.Status.Err(); err != nil {
			return fmt.Errorf("pvfs: read %q: %w", f.name, err)
		}
		if len(rr.Lens) != len(grp) {
			return fmt.Errorf("pvfs: vectored read reply has %d extents, want %d", len(rr.Lens), len(grp))
		}
		data := rr.Data
		for j, pc := range grp {
			served := int64(rr.Lens[j])
			if served > pc.Ext.Length || served > int64(len(data)) {
				return fmt.Errorf("pvfs: vectored read extent %d overlong (%d > %d)", j, served, pc.Ext.Length)
			}
			fill(pc, data[:served])
			data = data[served:]
		}
		return nil
	default:
		return fmt.Errorf("pvfs: unexpected read reply %v", resp.WireType())
	}
}

// WriteAt stores p at off using the default (no-coherence) write path and
// extends the file size at mgr when needed.
func (f *File) WriteAt(p []byte, off int64) (int, error) {
	return f.writeAt(p, off, false)
}

// SyncWriteAt is the paper's coherent write: data is propagated to the
// iods, and every other node cache holding the touched blocks is
// invalidated before the call returns.
func (f *File) SyncWriteAt(p []byte, off int64) (int, error) {
	return f.writeAt(p, off, true)
}

// writeAt retries whole shed operations like ReadAt does: an overloaded
// cache module rejects the write before buffering anything, so the
// operation is re-issuable from scratch.
func (f *File) writeAt(p []byte, off int64, sync bool) (n int, err error) {
	err = f.client.retryOverload(func() error {
		n, err = f.writeAtOnce(p, off, sync)
		return err
	})
	return n, err
}

func (f *File) writeAtOnce(p []byte, off int64, sync bool) (int, error) {
	if off < 0 {
		return 0, fmt.Errorf("pvfs: negative offset %d", off)
	}
	if len(p) == 0 {
		return 0, nil
	}
	pieces, err := PiecesFor(f.id, f.meta, len(f.client.cfg.IODAddrs), off, int64(len(p)))
	if err != nil {
		return 0, err
	}
	ids := make([]ReqID, len(pieces))
	for i, pc := range pieces {
		data := p[pc.Pos : pc.Pos+pc.Ext.Length]
		var req wire.Message
		if sync {
			req = &wire.SyncWrite{Client: f.client.cfg.ClientID, File: f.id, Offset: pc.Ext.Offset, Data: data}
		} else {
			req = &wire.Write{Client: f.client.cfg.ClientID, File: f.id, Offset: pc.Ext.Offset, Data: data}
		}
		id, err := f.client.data.Send(pc.IOD, req)
		if err != nil {
			return 0, err
		}
		ids[i] = id
	}
	for i, pc := range pieces {
		resp, err := f.client.data.Recv(ids[i])
		if err != nil {
			return 0, err
		}
		var status wire.Status
		switch ack := resp.(type) {
		case *wire.WriteAck:
			status = ack.Status
		case *wire.SyncWriteAck:
			status = ack.Status
		default:
			return 0, fmt.Errorf("pvfs: unexpected write reply %v", resp.WireType())
		}
		if err := status.Err(); err != nil {
			return 0, fmt.Errorf("pvfs: write %q @%d: %w", f.name, pc.Ext.Offset, err)
		}
	}
	if end := off + int64(len(p)); end > f.meta.Size {
		f.meta.Size = end
		resp, err := f.client.mgrCall(&wire.SetSize{File: f.id, Size: end})
		if err != nil {
			return 0, err
		}
		if sm, ok := resp.(*wire.StatusMsg); !ok || sm.Status != wire.StatusOK {
			return 0, fmt.Errorf("pvfs: extending %q failed", f.name)
		}
	}
	return len(p), nil
}

// Close releases the handle. Data-path connections belong to the Client
// and stay open for other files.
func (f *File) Close() error {
	delete(f.client.files, f.id)
	return nil
}
