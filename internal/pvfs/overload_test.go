package pvfs

import (
	"errors"
	"testing"
	"time"

	"pvfscache/internal/blockio"
	"pvfscache/internal/wire"
)

// shedTransport is a fake Transport whose first shed ops fail with
// StatusOverload, then succeed — the cache module's shedding behaviour
// distilled to its wire contract.
type shedTransport struct {
	shed  int // ops remaining to shed
	sends int // total Sends observed
	next  ReqID
	reqs  map[ReqID]wire.Message
}

func newShedTransport(shed int) *shedTransport {
	return &shedTransport{shed: shed, next: 1, reqs: make(map[ReqID]wire.Message)}
}

func (t *shedTransport) Send(iod int, req wire.Message) (ReqID, error) {
	t.sends++
	id := t.next
	t.next++
	t.reqs[id] = req
	return id, nil
}

func (t *shedTransport) Recv(id ReqID) (wire.Message, error) {
	req, ok := t.reqs[id]
	if !ok {
		return nil, errors.New("unknown req id")
	}
	delete(t.reqs, id)
	status := wire.StatusOK
	if t.shed > 0 {
		t.shed--
		status = wire.StatusOverload
	}
	switch r := req.(type) {
	case *wire.Write:
		return &wire.WriteAck{Status: status}, nil
	case *wire.Read:
		data := make([]byte, r.Length)
		return &wire.ReadResp{Status: status, Data: data}, nil
	default:
		return nil, errors.New("unexpected request type")
	}
}

func (t *shedTransport) Close() error { return nil }

func testClientFile(tr Transport, retries int) (*Client, *File) {
	c := &Client{
		cfg: Config{
			IODAddrs:        []string{"iod0"},
			ClientID:        1,
			OverloadRetries: retries,
			OverloadBackoff: time.Microsecond,
		},
		data:  tr,
		files: make(map[blockio.FileID]*File),
	}
	f := &File{
		client: c,
		name:   "qos-test",
		id:     7,
		meta:   wire.FileMeta{Base: 0, PCount: 1, SSize: 64 << 10, Size: 1 << 20},
	}
	return c, f
}

func TestOverloadRetryWriteSucceeds(t *testing.T) {
	tr := newShedTransport(2)
	_, f := testClientFile(tr, 0) // default retry budget
	// Write within Size so no mgr SetSize round trip is needed.
	if _, err := f.WriteAt(make([]byte, 512), 0); err != nil {
		t.Fatalf("WriteAt after sheds: %v", err)
	}
	if tr.sends != 3 {
		t.Errorf("sends = %d, want 3 (2 sheds + 1 success)", tr.sends)
	}
}

func TestOverloadRetryReadSucceeds(t *testing.T) {
	tr := newShedTransport(1)
	_, f := testClientFile(tr, 0)
	if _, err := f.ReadAt(make([]byte, 512), 0); err != nil {
		t.Fatalf("ReadAt after shed: %v", err)
	}
	if tr.sends != 2 {
		t.Errorf("sends = %d, want 2 (1 shed + 1 success)", tr.sends)
	}
}

func TestOverloadRetryExhausts(t *testing.T) {
	tr := newShedTransport(1 << 30) // sheds forever
	_, f := testClientFile(tr, 3)
	_, err := f.WriteAt(make([]byte, 512), 0)
	if !errors.Is(err, wire.ErrOverload) {
		t.Fatalf("err = %v, want wrapped ErrOverload", err)
	}
	if tr.sends != 4 {
		t.Errorf("sends = %d, want 4 (1 + 3 retries)", tr.sends)
	}
}

func TestOverloadRetryDisabled(t *testing.T) {
	tr := newShedTransport(1)
	_, f := testClientFile(tr, -1)
	if _, err := f.WriteAt(make([]byte, 512), 0); !errors.Is(err, wire.ErrOverload) {
		t.Fatalf("err = %v, want immediate ErrOverload with retries disabled", err)
	}
	if tr.sends != 1 {
		t.Errorf("sends = %d, want 1 (no retries)", tr.sends)
	}
}

// Non-overload errors must not be retried: a genuine IO error surfaces on
// the first attempt.
func TestOverloadRetrySkipsOtherErrors(t *testing.T) {
	tr := &ioErrTransport{}
	_, f := testClientFile(tr, 0)
	if _, err := f.WriteAt(make([]byte, 512), 0); !errors.Is(err, wire.ErrIO) {
		t.Fatalf("err = %v, want ErrIO", err)
	}
	if tr.sends != 1 {
		t.Errorf("sends = %d, want 1 (IO errors are not retried)", tr.sends)
	}
}

type ioErrTransport struct{ sends int }

func (t *ioErrTransport) Send(iod int, req wire.Message) (ReqID, error) {
	t.sends++
	return 1, nil
}

func (t *ioErrTransport) Recv(id ReqID) (wire.Message, error) {
	return &wire.WriteAck{Status: wire.StatusIOError}, nil
}

func (t *ioErrTransport) Close() error { return nil }
