package pvfs

import (
	"testing"
	"testing/quick"

	"pvfscache/internal/blockio"
	"pvfscache/internal/transport"
	"pvfscache/internal/wire"
)

func meta(base, pcount, ssize uint32) wire.FileMeta {
	return wire.FileMeta{Base: base, PCount: pcount, SSize: ssize}
}

func TestPiecesSingleStrip(t *testing.T) {
	pieces := PiecesFor(1, meta(0, 4, 65536), 4, 100, 200)
	if len(pieces) != 1 {
		t.Fatalf("pieces = %d", len(pieces))
	}
	p := pieces[0]
	if p.IOD != 0 || p.Ext.Offset != 100 || p.Ext.Length != 200 || p.Pos != 0 {
		t.Errorf("piece = %+v", p)
	}
}

func TestPiecesSpanStrips(t *testing.T) {
	// 64 KB strips over 4 iods; read 200 KB from offset 0: strips 0,1,2
	// full, strip 3 partial (8 KB).
	pieces := PiecesFor(1, meta(0, 4, 65536), 4, 0, 200<<10)
	if len(pieces) != 4 {
		t.Fatalf("pieces = %d: %+v", len(pieces), pieces)
	}
	for i, p := range pieces {
		if p.IOD != i {
			t.Errorf("piece %d on iod %d", i, p.IOD)
		}
	}
	if pieces[3].Ext.Length != 200<<10-3*(64<<10) {
		t.Errorf("tail length = %d", pieces[3].Ext.Length)
	}
}

func TestPiecesRoundRobinWrap(t *testing.T) {
	// 2 iods, 4 strips: iods alternate 0,1,0,1.
	pieces := PiecesFor(1, meta(0, 2, 4096), 4, 0, 16384)
	want := []int{0, 1, 0, 1}
	if len(pieces) != 4 {
		t.Fatalf("pieces = %d", len(pieces))
	}
	for i, p := range pieces {
		if p.IOD != want[i] {
			t.Errorf("strip %d on iod %d, want %d", i, p.IOD, want[i])
		}
	}
}

func TestPiecesBaseOffsetsIODs(t *testing.T) {
	pieces := PiecesFor(1, meta(2, 2, 4096), 4, 0, 8192)
	if pieces[0].IOD != 2 || pieces[1].IOD != 3 {
		t.Errorf("base=2 pieces on iods %d,%d", pieces[0].IOD, pieces[1].IOD)
	}
	// Base + pcount wraps modulo total iods.
	pieces = PiecesFor(1, meta(3, 2, 4096), 4, 0, 8192)
	if pieces[0].IOD != 3 || pieces[1].IOD != 0 {
		t.Errorf("wrap pieces on iods %d,%d", pieces[0].IOD, pieces[1].IOD)
	}
}

func TestPiecesEmptyAndInvalid(t *testing.T) {
	if got := PiecesFor(1, meta(0, 2, 4096), 4, 0, 0); got != nil {
		t.Errorf("zero length pieces = %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("expected panic on zero strip size")
		}
	}()
	PiecesFor(1, meta(0, 2, 0), 4, 0, 10)
}

// Property: pieces tile the request exactly and each lies within one
// strip of its iod.
func TestPiecesTileProperty(t *testing.T) {
	f := func(off uint32, length uint16, pcount, ssizeExp uint8) bool {
		total := 4
		pc := uint32(pcount%4) + 1
		ssize := uint32(1) << (10 + ssizeExp%7) // 1 KB .. 64 KB
		m := meta(0, pc, ssize)
		offset := int64(off % (1 << 22))
		n := int64(length)
		pieces := PiecesFor(1, m, total, offset, n)
		if n == 0 {
			return pieces == nil
		}
		var sum int64
		cursor := offset
		pos := int64(0)
		for _, p := range pieces {
			if p.Ext.Offset != cursor || p.Pos != pos {
				return false
			}
			// Entirely within one strip.
			strip := p.Ext.Offset / int64(ssize)
			if (p.Ext.Offset+p.Ext.Length-1)/int64(ssize) != strip {
				return false
			}
			// Mapped to the right iod.
			if p.IOD != int((strip%int64(pc)))%total {
				return false
			}
			sum += p.Ext.Length
			cursor += p.Ext.Length
			pos += p.Ext.Length
		}
		return sum == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIODsFor(t *testing.T) {
	got := IODsFor(meta(2, 3, 4096), 4)
	want := []int{2, 3, 0}
	if len(got) != len(want) {
		t.Fatalf("iods = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("iods = %v, want %v", got, want)
		}
	}
	// PCount larger than the cluster clamps.
	if got := IODsFor(meta(0, 9, 4096), 3); len(got) != 3 {
		t.Errorf("clamped iods = %v", got)
	}
}

func TestNewClientValidation(t *testing.T) {
	if _, err := NewClient(Config{}); err == nil {
		t.Error("missing network accepted")
	}
	if _, err := NewClient(Config{Network: fakeNetwork{}}); err == nil {
		t.Error("missing mgr addr accepted")
	}
	if _, err := NewClient(Config{Network: fakeNetwork{}, MgrAddr: "m"}); err == nil {
		t.Error("missing iods accepted")
	}
}

// fakeNetwork satisfies transport.Network without ever connecting; the
// client dials lazily, so construction-time validation tests never touch
// it.
type fakeNetwork struct{}

func (fakeNetwork) Listen(string) (transport.Listener, error) {
	return nil, transport.ErrClosed
}

func (fakeNetwork) Dial(string) (transport.Conn, error) {
	return nil, transport.ErrClosed
}

var _ transport.Network = fakeNetwork{}

func TestFileHelpers(t *testing.T) {
	f := &File{name: "x", id: 7, meta: wire.FileMeta{Size: 100, PCount: 2, SSize: 4096}}
	if f.Name() != "x" || f.ID() != blockio.FileID(7) || f.Size() != 100 {
		t.Error("accessors wrong")
	}
	if f.Meta().PCount != 2 {
		t.Error("meta accessor wrong")
	}
}
