package pvfs

import (
	"testing"
	"testing/quick"

	"pvfscache/internal/blockio"
	"pvfscache/internal/transport"
	"pvfscache/internal/wire"
)

func meta(base, pcount, ssize uint32) wire.FileMeta {
	return wire.FileMeta{Base: base, PCount: pcount, SSize: ssize}
}

func mustPieces(t *testing.T, file blockio.FileID, m wire.FileMeta, total int, off, length int64) []Piece {
	t.Helper()
	pieces, err := PiecesFor(file, m, total, off, length)
	if err != nil {
		t.Fatalf("PiecesFor: %v", err)
	}
	return pieces
}

func TestPiecesSingleStrip(t *testing.T) {
	pieces := mustPieces(t, 1, meta(0, 4, 65536), 4, 100, 200)
	if len(pieces) != 1 {
		t.Fatalf("pieces = %d", len(pieces))
	}
	p := pieces[0]
	if p.IOD != 0 || p.Ext.Offset != 100 || p.Ext.Length != 200 || p.Pos != 0 {
		t.Errorf("piece = %+v", p)
	}
}

func TestPiecesSpanStrips(t *testing.T) {
	// 64 KB strips over 4 iods; read 200 KB from offset 0: strips 0,1,2
	// full, strip 3 partial (8 KB).
	pieces := mustPieces(t, 1, meta(0, 4, 65536), 4, 0, 200<<10)
	if len(pieces) != 4 {
		t.Fatalf("pieces = %d: %+v", len(pieces), pieces)
	}
	for i, p := range pieces {
		if p.IOD != i {
			t.Errorf("piece %d on iod %d", i, p.IOD)
		}
	}
	if pieces[3].Ext.Length != 200<<10-3*(64<<10) {
		t.Errorf("tail length = %d", pieces[3].Ext.Length)
	}
}

func TestPiecesRoundRobinWrap(t *testing.T) {
	// 2 iods, 4 strips: iods alternate 0,1,0,1.
	pieces := mustPieces(t, 1, meta(0, 2, 4096), 4, 0, 16384)
	want := []int{0, 1, 0, 1}
	if len(pieces) != 4 {
		t.Fatalf("pieces = %d", len(pieces))
	}
	for i, p := range pieces {
		if p.IOD != want[i] {
			t.Errorf("strip %d on iod %d, want %d", i, p.IOD, want[i])
		}
	}
}

func TestPiecesBaseOffsetsIODs(t *testing.T) {
	pieces := mustPieces(t, 1, meta(2, 2, 4096), 4, 0, 8192)
	if pieces[0].IOD != 2 || pieces[1].IOD != 3 {
		t.Errorf("base=2 pieces on iods %d,%d", pieces[0].IOD, pieces[1].IOD)
	}
	// Base + pcount wraps modulo total iods.
	pieces = mustPieces(t, 1, meta(3, 2, 4096), 4, 0, 8192)
	if pieces[0].IOD != 3 || pieces[1].IOD != 0 {
		t.Errorf("wrap pieces on iods %d,%d", pieces[0].IOD, pieces[1].IOD)
	}
}

func TestPiecesEmptyAndInvalid(t *testing.T) {
	if got := mustPieces(t, 1, meta(0, 2, 4096), 4, 0, 0); got != nil {
		t.Errorf("zero length pieces = %v", got)
	}
	// Invalid striping metadata arrives from the wire (a hostile or
	// corrupt mgr response): it must surface as an error, never a panic.
	for _, m := range []wire.FileMeta{
		meta(0, 2, 0),    // zero strip size
		meta(0, 0, 4096), // zero pcount
	} {
		if _, err := PiecesFor(1, m, 4, 0, 10); err == nil {
			t.Errorf("meta %+v accepted", m)
		}
	}
	if _, err := PiecesFor(1, meta(0, 2, 4096), 0, 0, 10); err == nil {
		t.Error("zero totalIODs accepted")
	}
}

// Property: pieces tile the request exactly and each lies within one
// strip of its iod.
func TestPiecesTileProperty(t *testing.T) {
	f := func(off uint32, length uint16, pcount, ssizeExp uint8) bool {
		total := 4
		pc := uint32(pcount%4) + 1
		ssize := uint32(1) << (10 + ssizeExp%7) // 1 KB .. 64 KB
		m := meta(0, pc, ssize)
		offset := int64(off % (1 << 22))
		n := int64(length)
		pieces, err := PiecesFor(1, m, total, offset, n)
		if err != nil {
			return false
		}
		if n == 0 {
			return pieces == nil
		}
		var sum int64
		cursor := offset
		pos := int64(0)
		for _, p := range pieces {
			if p.Ext.Offset != cursor || p.Pos != pos {
				return false
			}
			// Entirely within one strip.
			strip := p.Ext.Offset / int64(ssize)
			if (p.Ext.Offset+p.Ext.Length-1)/int64(ssize) != strip {
				return false
			}
			// Mapped to the right iod.
			if p.IOD != int((strip%int64(pc)))%total {
				return false
			}
			sum += p.Ext.Length
			cursor += p.Ext.Length
			pos += p.Ext.Length
		}
		return sum == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestSplitVectorGroup: one iod's pieces must decompose into chunks the
// iod can answer (extent totals within vectorBudget), so arbitrarily
// large reads stay servable.
func TestSplitVectorGroup(t *testing.T) {
	mk := func(lengths ...int64) []Piece {
		out := make([]Piece, len(lengths))
		var off int64
		for i, l := range lengths {
			out[i] = Piece{Ext: blockio.Extent{File: 1, Offset: off, Length: l}}
			off += l
		}
		return out
	}
	small := mk(4096, 4096, 4096)
	if got := splitVectorGroup(small); len(got) != 1 || len(got[0]) != 3 {
		t.Fatalf("small group split to %d chunks", len(got))
	}
	// 40 pieces of 1 MB against a ~31 MB budget: must split, every chunk
	// within budget, nothing lost, order preserved.
	big := mk(func() []int64 {
		l := make([]int64, 40)
		for i := range l {
			l[i] = 1 << 20
		}
		return l
	}()...)
	chunks := splitVectorGroup(big)
	if len(chunks) < 2 {
		t.Fatalf("oversized group not split (%d chunks)", len(chunks))
	}
	total := 0
	var cursor int64
	for _, ch := range chunks {
		var bytes int64
		for _, pc := range ch {
			if pc.Ext.Offset != cursor {
				t.Fatalf("piece order broken at offset %d", pc.Ext.Offset)
			}
			cursor += pc.Ext.Length
			bytes += pc.Ext.Length
			total++
		}
		if bytes > vectorBudget {
			t.Fatalf("chunk carries %d bytes, budget %d", bytes, vectorBudget)
		}
	}
	if total != 40 {
		t.Fatalf("split dropped pieces: %d/40", total)
	}
}

// TestSplitOversizedPieces: a strip larger than the vector budget (SSize
// is a u32 from the wire) must be subdivided so every request stays
// within what an iod will serve.
func TestSplitOversizedPieces(t *testing.T) {
	huge := Piece{IOD: 1, Ext: blockio.Extent{File: 1, Offset: 0, Length: vectorBudget*2 + 100}, Pos: 0}
	tail := Piece{IOD: 2, Ext: blockio.Extent{File: 1, Offset: huge.Ext.Length, Length: 4096}, Pos: huge.Ext.Length}
	out := splitOversizedPieces([]Piece{huge, tail})
	if len(out) != 4 { // budget + budget + 100 + tail
		t.Fatalf("split into %d pieces", len(out))
	}
	var cursor int64
	for _, pc := range out {
		if pc.Ext.Length > vectorBudget {
			t.Fatalf("piece of %d bytes exceeds budget", pc.Ext.Length)
		}
		if pc.Ext.Offset != cursor || pc.Pos != cursor {
			t.Fatalf("piece at offset %d pos %d, want %d", pc.Ext.Offset, pc.Pos, cursor)
		}
		cursor += pc.Ext.Length
	}
	if cursor != huge.Ext.Length+tail.Ext.Length {
		t.Fatalf("split lost bytes: %d", cursor)
	}
	// The common case passes through untouched (no copy).
	small := []Piece{{IOD: 0, Ext: blockio.Extent{File: 1, Length: 4096}}}
	if got := splitOversizedPieces(small); &got[0] != &small[0] {
		t.Fatal("small pieces were copied")
	}
}

func TestIODsFor(t *testing.T) {
	got := IODsFor(meta(2, 3, 4096), 4)
	want := []int{2, 3, 0}
	if len(got) != len(want) {
		t.Fatalf("iods = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("iods = %v, want %v", got, want)
		}
	}
	// PCount larger than the cluster clamps.
	if got := IODsFor(meta(0, 9, 4096), 3); len(got) != 3 {
		t.Errorf("clamped iods = %v", got)
	}
}

func TestNewClientValidation(t *testing.T) {
	if _, err := NewClient(Config{}); err == nil {
		t.Error("missing network accepted")
	}
	if _, err := NewClient(Config{Network: fakeNetwork{}}); err == nil {
		t.Error("missing mgr addr accepted")
	}
	if _, err := NewClient(Config{Network: fakeNetwork{}, MgrAddr: "m"}); err == nil {
		t.Error("missing iods accepted")
	}
}

// fakeNetwork satisfies transport.Network without ever connecting; the
// client dials lazily, so construction-time validation tests never touch
// it.
type fakeNetwork struct{}

func (fakeNetwork) Listen(string) (transport.Listener, error) {
	return nil, transport.ErrClosed
}

func (fakeNetwork) Dial(string) (transport.Conn, error) {
	return nil, transport.ErrClosed
}

var _ transport.Network = fakeNetwork{}

func TestFileHelpers(t *testing.T) {
	f := &File{name: "x", id: 7, meta: wire.FileMeta{Size: 100, PCount: 2, SSize: 4096}}
	if f.Name() != "x" || f.ID() != blockio.FileID(7) || f.Size() != 100 {
		t.Error("accessors wrong")
	}
	if f.Meta().PCount != 2 {
		t.Error("meta accessor wrong")
	}
}
