package pvfs

import (
	"fmt"
	"sync"

	"pvfscache/internal/transport"
	"pvfscache/internal/wire"
)

// ReqID names one outstanding iod request issued through a Transport.
type ReqID uint64

// Transport carries libpvfs's split-phase iod traffic. The library first
// Sends every per-iod request of an operation, then Recvs the responses in
// the same order — exactly the aggregate-then-wait socket discipline the
// paper describes. The cache module implements this interface and
// interposes between the library and the network, just as the kernel
// module interposes on socket calls; DirectTransport is the uncached
// original-PVFS path.
//
// Recv must be called in Send order for requests to the same iod.
// A Transport is intended for a single client process; the cache module's
// shared state behind it is internally synchronized.
type Transport interface {
	Send(iod int, req wire.Message) (ReqID, error)
	Recv(id ReqID) (wire.Message, error)
	Close() error
}

// DirectTransport sends every request straight to the iods over one
// connection per daemon, with no caching: the "no caching version" of the
// paper's experiments.
type DirectTransport struct {
	network transport.Network
	addrs   []string

	mu      sync.Mutex
	conns   []transport.Conn
	pending [][]ReqID     // per-iod FIFO of outstanding request ids
	where   map[ReqID]int // request id -> iod
	next    ReqID
}

// NewDirectTransport returns a transport that dials each iod address
// lazily on first use.
func NewDirectTransport(network transport.Network, iodAddrs []string) *DirectTransport {
	return &DirectTransport{
		network: network,
		addrs:   iodAddrs,
		conns:   make([]transport.Conn, len(iodAddrs)),
		pending: make([][]ReqID, len(iodAddrs)),
		where:   make(map[ReqID]int),
		next:    1,
	}
}

// Send writes req on the iod's connection and registers the request as
// outstanding.
func (t *DirectTransport) Send(iod int, req wire.Message) (ReqID, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	conn, err := t.connLocked(iod)
	if err != nil {
		return 0, err
	}
	if err := wire.WriteMessage(conn, req); err != nil {
		return 0, fmt.Errorf("pvfs: sending %v to iod %d: %w", req.WireType(), iod, err)
	}
	id := t.next
	t.next++
	t.pending[iod] = append(t.pending[iod], id)
	t.where[id] = iod
	return id, nil
}

// Recv reads the response for the given request. Requests to the same iod
// must be received in Send order.
func (t *DirectTransport) Recv(id ReqID) (wire.Message, error) {
	t.mu.Lock()
	iod, ok := t.where[id]
	if !ok {
		t.mu.Unlock()
		return nil, fmt.Errorf("pvfs: unknown request id %d", id)
	}
	q := t.pending[iod]
	if len(q) == 0 || q[0] != id {
		t.mu.Unlock()
		return nil, fmt.Errorf("pvfs: request %d received out of order on iod %d", id, iod)
	}
	t.pending[iod] = q[1:]
	delete(t.where, id)
	conn := t.conns[iod]
	t.mu.Unlock()

	msg, err := wire.ReadMessage(conn)
	if err != nil {
		return nil, fmt.Errorf("pvfs: receiving from iod %d: %w", iod, err)
	}
	return msg, nil
}

func (t *DirectTransport) connLocked(iod int) (transport.Conn, error) {
	if iod < 0 || iod >= len(t.addrs) {
		return nil, fmt.Errorf("pvfs: iod index %d out of range (have %d)", iod, len(t.addrs))
	}
	if t.conns[iod] == nil {
		c, err := t.network.Dial(t.addrs[iod])
		if err != nil {
			return nil, fmt.Errorf("pvfs: dialing iod %d at %s: %w", iod, t.addrs[iod], err)
		}
		t.conns[iod] = c
	}
	return t.conns[iod], nil
}

// Close closes every iod connection.
func (t *DirectTransport) Close() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	var firstErr error
	for i, c := range t.conns {
		if c != nil {
			if err := c.Close(); err != nil && firstErr == nil {
				firstErr = err
			}
			t.conns[i] = nil
		}
	}
	return firstErr
}
