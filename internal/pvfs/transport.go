package pvfs

import (
	"fmt"
	"sync"

	"pvfscache/internal/blockio"
	"pvfscache/internal/rpc"
	"pvfscache/internal/transport"
	"pvfscache/internal/wire"
)

// ReqID names one outstanding iod request issued through a Transport.
type ReqID uint64

// Transport carries libpvfs's split-phase iod traffic. The library first
// Sends every per-iod request of an operation, then Recvs the responses —
// exactly the aggregate-then-wait socket discipline the paper describes.
// The cache module implements this interface and interposes between the
// library and the network, just as the kernel module interposes on socket
// calls; DirectTransport is the uncached original-PVFS path.
//
// Requests may be Recv'd in any order: responses demultiplex by request
// tag (internal/rpc), so a slow iod no longer blocks unrelated requests.
// A Transport is intended for a single client process; the cache module's
// shared state behind it is internally synchronized.
type Transport interface {
	Send(iod int, req wire.Message) (ReqID, error)
	Recv(id ReqID) (wire.Message, error)
	Close() error
}

// StripeHinter is an optional Transport extension: the library announces
// each file's striping geometry when it opens or refreshes the file. A
// caching transport uses the hint to map block indices to the iods that
// store them — the cache module's readahead prefetcher only acts on files
// it has a hint for, because misrouting a prefetch would cache an iod's
// sparse zeros as real data. Transports without cross-request state
// (DirectTransport) simply do not implement it.
type StripeHinter interface {
	StripeHint(file blockio.FileID, meta wire.FileMeta, totalIODs int)
}

// ReadPatternHinter is an optional Transport extension: the library
// reports each application-level read (the whole byte range of one
// ReadAt) before issuing its per-iod pieces. Only the library knows where
// one request ends and the next begins — at the transport the pieces of
// a single striped read arrive as several ascending Sends,
// indistinguishable from a sequential scan — so sequential-readahead
// detection keys on this stream rather than on piece traffic.
type ReadPatternHinter interface {
	NoteRead(file blockio.FileID, offset, length int64)
}

// DirectTransport sends every request straight to the iods with no
// caching — the "no caching version" of the paper's experiments — over one
// pooled, multiplexed rpc client per daemon.
type DirectTransport struct {
	clients []*rpc.Client

	mu      sync.Mutex
	pending map[ReqID]<-chan rpc.Result
	next    ReqID
}

// NewDirectTransport returns a transport that dials each iod lazily on
// first use.
func NewDirectTransport(network transport.Network, iodAddrs []string) *DirectTransport {
	t := &DirectTransport{
		pending: make(map[ReqID]<-chan rpc.Result),
		next:    1,
	}
	for _, addr := range iodAddrs {
		t.clients = append(t.clients, rpc.NewClient(rpc.ClientConfig{Network: network, Addr: addr}))
	}
	return t
}

// Send issues req to the iod and registers the request as outstanding.
func (t *DirectTransport) Send(iod int, req wire.Message) (ReqID, error) {
	if iod < 0 || iod >= len(t.clients) {
		return 0, fmt.Errorf("pvfs: iod index %d out of range (have %d)", iod, len(t.clients))
	}
	ch, err := t.clients[iod].Go(req)
	if err != nil {
		return 0, fmt.Errorf("pvfs: sending %v to iod %d: %w", req.WireType(), iod, err)
	}
	t.mu.Lock()
	id := t.next
	t.next++
	t.pending[id] = ch
	t.mu.Unlock()
	return id, nil
}

// Recv completes the given request, in any order.
func (t *DirectTransport) Recv(id ReqID) (wire.Message, error) {
	t.mu.Lock()
	ch, ok := t.pending[id]
	delete(t.pending, id)
	t.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("pvfs: unknown request id %d", id)
	}
	res := <-ch
	if res.Err != nil {
		return nil, fmt.Errorf("pvfs: receiving: %w", res.Err)
	}
	return res.Msg, nil
}

// Close closes every iod client; outstanding requests fail.
func (t *DirectTransport) Close() error {
	var firstErr error
	for _, c := range t.clients {
		if err := c.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}
