package pvfs

import (
	"fmt"
	"sync"

	"pvfscache/internal/blockio"
	"pvfscache/internal/rpc"
	"pvfscache/internal/transport"
	"pvfscache/internal/wire"
)

// ReqID names one outstanding iod request issued through a Transport.
type ReqID uint64

// Transport carries libpvfs's split-phase iod traffic. The library first
// Sends every per-iod request of an operation, then Recvs the responses —
// exactly the aggregate-then-wait socket discipline the paper describes.
// The cache module implements this interface and interposes between the
// library and the network, just as the kernel module interposes on socket
// calls; DirectTransport is the uncached original-PVFS path.
//
// Requests may be Recv'd in any order: responses demultiplex by request
// tag (internal/rpc), so a slow iod no longer blocks unrelated requests.
// A Transport is intended for a single client process; the cache module's
// shared state behind it is internally synchronized.
type Transport interface {
	Send(iod int, req wire.Message) (ReqID, error)
	Recv(id ReqID) (wire.Message, error)
	Close() error
}

// StripeHinter is an optional Transport extension: the library announces
// each file's striping geometry when it opens or refreshes the file. A
// caching transport uses the hint to map block indices to the iods that
// store them — the cache module's readahead prefetcher only acts on files
// it has a hint for, because misrouting a prefetch would cache an iod's
// sparse zeros as real data. Transports without cross-request state
// (DirectTransport) simply do not implement it.
type StripeHinter interface {
	StripeHint(file blockio.FileID, meta wire.FileMeta, totalIODs int)
}

// ReadPatternHinter is an optional Transport extension: the library
// reports each application-level read (the whole byte range of one
// ReadAt) before issuing its per-iod pieces. Only the library knows where
// one request ends and the next begins — at the transport the pieces of
// a single striped read arrive as several ascending Sends,
// indistinguishable from a sequential scan — so sequential-readahead
// detection keys on this stream rather than on piece traffic.
type ReadPatternHinter interface {
	NoteRead(file blockio.FileID, offset, length int64)
}

// CachePolicy is a per-open caching hint — the paper's discretionary
// knob exposed to applications. It travels from an open flag through the
// transport (CachePolicyHinter) into the cache module's admission
// decisions; DirectTransport has no cache, so the hint is meaningful only
// on caching transports.
type CachePolicy uint8

const (
	// CacheDefault leaves the decision to the cache: the replacement
	// policy admits and the stream detector may bypass.
	CacheDefault CachePolicy = iota
	// CacheNone is don't-cache: reads are served around the cache
	// (read-around) and buffered writes go straight through
	// (write-around). For data the application knows it will not reuse.
	CacheNone
	// CacheMust is must-cache: blocks are always admitted — straight
	// into the protected working set under the ghost policy — and the
	// file is never stream-bypassed.
	CacheMust
)

// String implements fmt.Stringer for logs and flag output.
func (p CachePolicy) String() string {
	switch p {
	case CacheNone:
		return "none"
	case CacheMust:
		return "must"
	default:
		return "default"
	}
}

// CachePolicyHinter is an optional Transport extension: the library
// forwards each file's per-open cache-policy hint so a caching transport
// can apply it to admission decisions. Like the other hinter extensions,
// transports without cross-request state simply do not implement it.
type CachePolicyHinter interface {
	CachePolicyHint(file blockio.FileID, policy CachePolicy)
}

// TenantHinter is an optional Transport extension: the library forwards a
// per-open tenant (principal) tag and scheduling weight so a caching
// transport can charge the file's dirty residency and in-flight fetches to
// that principal and schedule its flush traffic by weight — the QoS
// counterpart of CachePolicyHinter. Tenant 0 is the untagged default;
// weight is clamped to ≥ 1. Like the other hinter extensions, transports
// without cross-request state simply do not implement it.
type TenantHinter interface {
	TenantHint(file blockio.FileID, tenant uint32, weight int)
}

// ReadSinker is an optional Transport extension: the zero-copy read path.
// SendRead issues a read request (a *wire.Read or *wire.ReadBlocks) whose
// response bytes the transport scatters directly into sink — one
// caller-owned destination slice per extent of the request, lengths
// matching — instead of materializing them in a response message. On a
// successful Recv every sink byte has been filled: served data first, the
// remainder zeroed (PVFS sparse semantics), and the response message is
// status-only. The transport may decline a request (ok false, no request
// issued) — zero-copy disabled, unsupported message, mismatched sink —
// and the caller then falls back to the plain Send/Recv path.
type ReadSinker interface {
	SendRead(iod int, req wire.Message, sink [][]byte) (id ReqID, ok bool, err error)
}

// DirectTransport sends every request straight to the iods with no
// caching — the "no caching version" of the paper's experiments — over one
// pooled, multiplexed rpc client per daemon.
type DirectTransport struct {
	clients []*rpc.Client

	mu      sync.Mutex
	pending map[ReqID]*directPending
	next    ReqID
}

// directPending is one outstanding round trip; sink, when non-nil, holds
// the caller-owned destinations of a zero-copy read (see SendRead).
type directPending struct {
	ch   <-chan rpc.Result
	sink [][]byte
}

// NewDirectTransport returns a transport that dials each iod lazily on
// first use.
func NewDirectTransport(network transport.Network, iodAddrs []string) *DirectTransport {
	t := &DirectTransport{
		pending: make(map[ReqID]*directPending),
		next:    1,
	}
	for _, addr := range iodAddrs {
		t.clients = append(t.clients, rpc.NewClient(rpc.ClientConfig{Network: network, Addr: addr}))
	}
	return t
}

// Send issues req to the iod and registers the request as outstanding.
func (t *DirectTransport) Send(iod int, req wire.Message) (ReqID, error) {
	return t.send(iod, req, nil)
}

// SendRead implements ReadSinker: the response's payload is copied from
// its leased frame buffer straight into the sink slices on Recv — no
// intermediate result buffer exists on this path.
func (t *DirectTransport) SendRead(iod int, req wire.Message, sink [][]byte) (ReqID, bool, error) {
	switch req.(type) {
	case *wire.Read, *wire.ReadBlocks:
	default:
		return 0, false, nil
	}
	id, err := t.send(iod, req, sink)
	return id, err == nil, err
}

func (t *DirectTransport) send(iod int, req wire.Message, sink [][]byte) (ReqID, error) {
	if iod < 0 || iod >= len(t.clients) {
		return 0, fmt.Errorf("pvfs: iod index %d out of range (have %d)", iod, len(t.clients))
	}
	ch, err := t.clients[iod].Go(req)
	if err != nil {
		return 0, fmt.Errorf("pvfs: sending %v to iod %d: %w", req.WireType(), iod, err)
	}
	t.mu.Lock()
	id := t.next
	t.next++
	t.pending[id] = &directPending{ch: ch, sink: sink}
	t.mu.Unlock()
	return id, nil
}

// Recv completes the given request, in any order.
func (t *DirectTransport) Recv(id ReqID) (wire.Message, error) {
	t.mu.Lock()
	p, ok := t.pending[id]
	delete(t.pending, id)
	t.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("pvfs: unknown request id %d", id)
	}
	res := <-p.ch
	if res.Err != nil {
		return nil, fmt.Errorf("pvfs: receiving: %w", res.Err)
	}
	if p.sink == nil {
		return res.Msg, nil
	}
	defer res.Release()
	return drainToSink(res.Msg, p.sink)
}

// drainToSink scatters a read response's payload into the sink slices —
// served bytes first, the rest zeroed (sparse semantics) — and strips the
// payload from the returned message: its bytes alias a frame buffer that
// is released when Recv returns.
func drainToSink(msg wire.Message, sink [][]byte) (wire.Message, error) {
	fill := func(dst, data []byte) {
		n := copy(dst, data)
		clear(dst[n:])
	}
	switch rr := msg.(type) {
	case *wire.ReadResp:
		if len(sink) != 1 {
			return nil, fmt.Errorf("pvfs: single read reply for %d sink extents", len(sink))
		}
		if rr.Status == wire.StatusOK {
			if len(rr.Data) > len(sink[0]) {
				return nil, fmt.Errorf("pvfs: read reply overlong (%d > %d)", len(rr.Data), len(sink[0]))
			}
			fill(sink[0], rr.Data)
		}
		rr.Data = nil
		return rr, nil
	case *wire.ReadBlocksResp:
		if rr.Status == wire.StatusOK {
			if len(rr.Lens) != len(sink) {
				return nil, fmt.Errorf("pvfs: vectored read reply has %d extents, want %d", len(rr.Lens), len(sink))
			}
			data := rr.Data
			for i, dst := range sink {
				served := int(rr.Lens[i])
				if served > len(dst) || served > len(data) {
					return nil, fmt.Errorf("pvfs: vectored read extent %d overlong (%d > %d)", i, served, len(dst))
				}
				fill(dst, data[:served])
				data = data[served:]
			}
		}
		rr.Data = nil
		return rr, nil
	default:
		return nil, fmt.Errorf("pvfs: unexpected read reply %v", msg.WireType())
	}
}

// Close closes every iod client; outstanding requests fail.
func (t *DirectTransport) Close() error {
	var firstErr error
	for _, c := range t.clients {
		if err := c.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}
