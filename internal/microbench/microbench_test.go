package microbench

import (
	"math"
	"testing"
)

func baseParams() Params {
	return Params{
		Instances:   2,
		Nodes:       4,
		RequestSize: 8192,
		TotalBytes:  1 << 20,
		Read:        true,
		Locality:    0.5,
		Sharing:     0.5,
		Seed:        1,
	}
}

func TestValidateDefaults(t *testing.T) {
	p := Params{Nodes: 2, RequestSize: 4096}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.Instances != 1 || p.TotalBytes == 0 || p.FileSize == 0 {
		t.Errorf("defaults not filled: %+v", p)
	}
}

func TestValidateRejects(t *testing.T) {
	bad := []Params{
		{Nodes: 0, RequestSize: 1},
		{Nodes: 1, RequestSize: 0},
		{Nodes: 1, RequestSize: 1, Locality: -0.1},
		{Nodes: 1, RequestSize: 1, Locality: 1.1},
		{Nodes: 1, RequestSize: 1, Sharing: 2},
		{Nodes: 4, RequestSize: 1 << 20, FileSize: 1 << 20}, // region < request
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: expected error for %+v", i, p)
		}
	}
}

func TestRequestCountMatchesTotalBytes(t *testing.T) {
	p := baseParams()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	want := int(p.TotalBytes / p.RequestSize)
	if p.Requests() != want {
		t.Errorf("requests = %d, want %d", p.Requests(), want)
	}
	stream := p.Stream(0, 0)
	if len(stream) != want {
		t.Errorf("stream length = %d, want %d", len(stream), want)
	}
}

func TestStreamDeterministic(t *testing.T) {
	p := baseParams()
	a := p.Stream(1, 2)
	b := p.Stream(1, 2)
	if len(a) != len(b) {
		t.Fatal("lengths differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("request %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestStreamStaysInNodeRegion(t *testing.T) {
	p := baseParams()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	region := p.FileSize / int64(p.Nodes)
	for node := 0; node < p.Nodes; node++ {
		for _, r := range p.Stream(0, node) {
			lo := int64(node) * region
			hi := lo + region
			if r.Offset < lo || r.Offset+r.Length > hi {
				t.Fatalf("node %d request [%d,%d) escapes region [%d,%d)",
					node, r.Offset, r.Offset+r.Length, lo, hi)
			}
		}
	}
}

func TestLocalityZeroNeverRepeatsConsecutively(t *testing.T) {
	p := baseParams()
	p.Locality = 0
	reqs := p.Stream(0, 0)
	st := Summarize(reqs)
	if st.RepeatCount != 0 {
		t.Errorf("l=0 produced %d consecutive repeats", st.RepeatCount)
	}
}

func TestLocalityOneAlwaysRepeats(t *testing.T) {
	p := baseParams()
	p.Locality = 1
	reqs := p.Stream(0, 0)
	st := Summarize(reqs)
	// Every request after the first repeats the first.
	if st.RepeatCount != st.Requests-1 {
		t.Errorf("l=1: repeats = %d of %d", st.RepeatCount, st.Requests)
	}
}

func TestLocalityFractionApproximate(t *testing.T) {
	p := baseParams()
	p.Locality = 0.5
	p.TotalBytes = 8 << 20 // more samples
	reqs := p.Stream(0, 0)
	st := Summarize(reqs)
	frac := float64(st.RepeatCount) / float64(st.Requests)
	if math.Abs(frac-0.5) > 0.05 {
		t.Errorf("repeat fraction = %.3f, want ~0.5", frac)
	}
}

func TestSharingFractionApproximate(t *testing.T) {
	p := baseParams()
	p.Sharing = 0.25
	p.Locality = 0
	p.TotalBytes = 8 << 20
	reqs := p.Stream(0, 0)
	st := Summarize(reqs)
	frac := float64(st.SharedCount) / float64(st.Requests)
	if math.Abs(frac-0.25) > 0.05 {
		t.Errorf("shared fraction = %.3f, want ~0.25", frac)
	}
}

func TestSharingExtremes(t *testing.T) {
	p := baseParams()
	p.Sharing = 0
	st := Summarize(p.Stream(0, 0))
	if st.SharedCount != 0 {
		t.Error("s=0 touched shared file")
	}
	p.Sharing = 1
	st = Summarize(p.Stream(0, 0))
	if st.SharedCount != st.Requests {
		t.Error("s=1 touched private file")
	}
}

func TestInstancesWalkSameSharedOffsets(t *testing.T) {
	// The shared-file offsets visited by two instances on the same node
	// must be the same set (that's what makes sharing exploitable).
	p := baseParams()
	p.Sharing = 1
	p.Locality = 0
	seen := func(instance int) map[int64]bool {
		out := make(map[int64]bool)
		for _, r := range p.Stream(instance, 1) {
			out[r.Offset] = true
		}
		return out
	}
	a, b := seen(0), seen(1)
	if len(a) != len(b) {
		t.Fatalf("different offset-set sizes: %d vs %d", len(a), len(b))
	}
	for off := range a {
		if !b[off] {
			t.Fatalf("offset %d visited by instance 0 only", off)
		}
	}
}

func TestPrivateFilesDistinctPerInstance(t *testing.T) {
	p := baseParams()
	p.Sharing = 0
	f0 := p.Stream(0, 0)[0].File
	f1 := p.Stream(1, 0)[0].File
	if f0 == f1 {
		t.Errorf("instances share a private file: %q", f0)
	}
}

func TestCursorWrapsWithinRegion(t *testing.T) {
	p := Params{
		Nodes:       2,
		RequestSize: 1024,
		TotalBytes:  64 << 10, // 64 requests
		FileSize:    8 << 10,  // region 4 KB: forces wrapping
		Read:        true,
		Seed:        3,
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	region := p.FileSize / int64(p.Nodes)
	for _, r := range p.Stream(0, 1) {
		if r.Offset < region || r.Offset+r.Length > 2*region {
			t.Fatalf("request [%d,%d) outside node 1 region", r.Offset, r.Offset+r.Length)
		}
	}
}

func TestFilesInventory(t *testing.T) {
	p := baseParams()
	files := p.Files()
	if _, ok := files[SharedFile]; !ok {
		t.Error("shared file missing")
	}
	if _, ok := files[PrivateFile(0)]; !ok {
		t.Error("private file 0 missing")
	}
	if _, ok := files[PrivateFile(1)]; !ok {
		t.Error("private file 1 missing")
	}
	p.Sharing = 1
	files = p.Files()
	if _, ok := files[PrivateFile(0)]; ok {
		t.Error("s=1 should not list private files")
	}
}

func TestWriteStreams(t *testing.T) {
	p := baseParams()
	p.Read = false
	for _, r := range p.Stream(0, 0)[:10] {
		if r.Read {
			t.Fatal("write stream produced reads")
		}
	}
}
