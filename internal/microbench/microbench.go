// Package microbench generates the paper's customizable micro-benchmark
// workload (§4.1): a parallel application in which processes on p nodes
// issue read/write requests of size d against shared and private files,
// with a controllable degree of locality l (the fraction of requests that
// re-touch recently accessed data, ensuring a pre-specified cache hit
// ratio) and a degree of inter-application data sharing s (the fraction of
// requests that target a file shared between application instances).
//
// Each process accesses a distinct portion of every file — the completely
// data-parallel mode the paper evaluates. The total amount of data
// accessed per process is held constant, so larger request sizes mean
// fewer file-system calls, exactly as in the paper's figures.
package microbench

import (
	"fmt"
	"math/rand"
)

// Params describes one experiment configuration.
type Params struct {
	// Instances is the degree of multiprogramming: the number of
	// application instances (each instance runs one process per node).
	Instances int
	// Nodes is p: the number of nodes each instance is parallelized over.
	Nodes int
	// RequestSize is d: bytes per read/write call.
	RequestSize int64
	// TotalBytes is the amount of data each process accesses across the
	// whole run; the loop count is TotalBytes/RequestSize.
	TotalBytes int64
	// Read selects reads (true) or writes (false).
	Read bool
	// Locality is l in [0,1]: the probability a request re-touches the
	// previous request's data (a guaranteed cache hit in steady state).
	Locality float64
	// Sharing is s in [0,1]: the probability a request targets the shared
	// file rather than the instance's private file.
	Sharing float64
	// FileSize is the size of each file (shared and private). A process's
	// region within a file is FileSize/Nodes. The default (64 x RequestSize
	// x loop fraction) is set by Validate when zero.
	FileSize int64
	// Seed drives the request mix; runs are deterministic per seed.
	Seed int64
}

// Validate fills defaults and rejects inconsistent parameter sets.
func (p *Params) Validate() error {
	if p.Instances <= 0 {
		p.Instances = 1
	}
	if p.Nodes <= 0 {
		return fmt.Errorf("microbench: Nodes must be positive, got %d", p.Nodes)
	}
	if p.RequestSize <= 0 {
		return fmt.Errorf("microbench: RequestSize must be positive, got %d", p.RequestSize)
	}
	if p.TotalBytes <= 0 {
		p.TotalBytes = 4 << 20
	}
	if p.Locality < 0 || p.Locality > 1 {
		return fmt.Errorf("microbench: Locality %v outside [0,1]", p.Locality)
	}
	if p.Sharing < 0 || p.Sharing > 1 {
		return fmt.Errorf("microbench: Sharing %v outside [0,1]", p.Sharing)
	}
	if p.FileSize == 0 {
		// Large enough that an l=0 walk cycles through far more data than
		// the 1.2 MB node cache, so zero locality yields zero reuse.
		p.FileSize = int64(p.Nodes) * 8 << 20
	}
	if p.FileSize/int64(p.Nodes) < p.RequestSize {
		return fmt.Errorf("microbench: per-node region %d smaller than request size %d",
			p.FileSize/int64(p.Nodes), p.RequestSize)
	}
	return nil
}

// Requests returns the loop count per process.
func (p Params) Requests() int {
	n := p.TotalBytes / p.RequestSize
	if n < 1 {
		n = 1
	}
	return int(n)
}

// SharedFile is the name of the file all instances share.
const SharedFile = "mb/shared.dat"

// PrivateFile names instance i's private file.
func PrivateFile(instance int) string { return fmt.Sprintf("mb/private-%d.dat", instance) }

// Request is one file-system call of the benchmark.
type Request struct {
	File   string
	Offset int64
	Length int64
	Read   bool
}

// Stream produces the deterministic request sequence for the process of
// the given instance running on the given node (0 <= node < Nodes).
//
// The process walks its own region of each file with a per-file cursor;
// with probability Locality it re-issues the previous request instead
// (touching data that is certainly cached in steady state), and with
// probability Sharing a request goes to the shared file. Because every
// instance's process on the same node walks the same region of the shared
// file, instances genuinely share those blocks — the inter-application
// locality the paper exploits.
func (p Params) Stream(instance, node int) []Request {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	if node < 0 || node >= p.Nodes {
		panic(fmt.Sprintf("microbench: node %d out of range", node))
	}
	region := p.FileSize / int64(p.Nodes)
	regionStart := int64(node) * region
	// The seed depends on the node but NOT the instance: two instances of
	// the micro-benchmark are two runs of the same program with the same
	// parameters, so their pseudo-random request mixes are identical and
	// their shared-file cursors advance in lockstep. Only the private file
	// they touch differs. This is what makes the paper's degree-of-sharing
	// knob effective: s of the request stream genuinely overlaps.
	rnd := rand.New(rand.NewSource(p.Seed ^ int64(node)*7_777_777))

	sharedCursor, privateCursor := int64(0), int64(0)
	var last *Request
	n := p.Requests()
	reqs := make([]Request, 0, n)
	for i := 0; i < n; i++ {
		if last != nil && rnd.Float64() < p.Locality {
			reqs = append(reqs, *last)
			continue
		}
		var r Request
		r.Length = p.RequestSize
		r.Read = p.Read
		if rnd.Float64() < p.Sharing {
			r.File = SharedFile
			r.Offset = regionStart + sharedCursor
			sharedCursor = advance(sharedCursor, p.RequestSize, region)
		} else {
			r.File = PrivateFile(instance)
			r.Offset = regionStart + privateCursor
			privateCursor = advance(privateCursor, p.RequestSize, region)
		}
		reqs = append(reqs, r)
		cp := r
		last = &cp
	}
	return reqs
}

// advance moves a region cursor by one request, wrapping to the region
// start when the next request would cross the region end.
func advance(cursor, reqSize, region int64) int64 {
	next := cursor + reqSize
	if next+reqSize > region {
		return 0
	}
	return next
}

// Files lists every (name, size) pair the parameter set touches, for
// pre-creation by harnesses.
func (p Params) Files() map[string]int64 {
	out := make(map[string]int64)
	if p.Sharing > 0 || p.Instances > 1 {
		out[SharedFile] = p.FileSize
	}
	for i := 0; i < p.Instances; i++ {
		if p.Sharing < 1 {
			out[PrivateFile(i)] = p.FileSize
		}
	}
	return out
}

// Stats summarizes a stream for tests and reporting.
type Stats struct {
	Requests      int
	SharedCount   int
	RepeatCount   int
	BytesTotal    int64
	DistinctFiles int
}

// Summarize computes stream statistics.
func Summarize(reqs []Request) Stats {
	var st Stats
	files := make(map[string]struct{})
	for i, r := range reqs {
		st.Requests++
		st.BytesTotal += r.Length
		files[r.File] = struct{}{}
		if r.File == SharedFile {
			st.SharedCount++
		}
		if i > 0 && r == reqs[i-1] {
			st.RepeatCount++
		}
	}
	st.DistinctFiles = len(files)
	return st
}
