package harness

import (
	"strings"
	"testing"
	"time"
)

// fastOpts keeps harness tests quick: less data per run than the
// defaults, but enough requests at every d for steady-state behaviour.
func fastOpts() Options {
	return Options{TotalBytes: 8 << 20, IODs: 4, Seed: 1}
}

func values(s Series) []time.Duration {
	out := make([]time.Duration, len(s.Points))
	for i, p := range s.Points {
		out[i] = p.Value
	}
	return out
}

func findSeries(t *testing.T, fig Figure, prefix string) Series {
	t.Helper()
	for _, s := range fig.Series {
		if strings.HasPrefix(s.Label, prefix) {
			return s
		}
	}
	t.Fatalf("figure %s: no series with prefix %q", fig.ID, prefix)
	return Series{}
}

func TestFigure4Shapes(t *testing.T) {
	figs, err := Figure4(fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(figs) != 2 {
		t.Fatalf("got %d figures", len(figs))
	}
	reads, writes := figs[0], figs[1]

	// 4(a): caching overhead small — within 30% of no-caching everywhere.
	cach := values(findSeries(t, reads, "Caching"))
	none := values(findSeries(t, reads, "No Caching"))
	for i := range cach {
		ratio := float64(cach[i]) / float64(none[i])
		if ratio > 1.30 {
			t.Errorf("4a point %d: overhead ratio %.2f", i, ratio)
		}
	}
	// 4(b): caching wins for writes at small/medium d.
	cw := values(findSeries(t, writes, "Caching"))
	nw := values(findSeries(t, writes, "No Caching"))
	for i := 0; i < 3; i++ {
		if cw[i] >= nw[i] {
			t.Errorf("4b point %d: caching %v !< no-caching %v", i, cw[i], nw[i])
		}
	}
}

func TestFigure5Shapes(t *testing.T) {
	figs, err := Figure5(fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	for _, fig := range figs {
		cach := values(findSeries(t, fig, "Caching"))
		none := values(findSeries(t, fig, "No Caching"))
		for i := range cach {
			if cach[i] >= none[i] {
				t.Errorf("%s point %d: caching %v !< no-caching %v", fig.ID, i, cach[i], none[i])
			}
		}
		// Hit ratio must be high at l=1.
		pts := findSeries(t, fig, "Caching").Points
		last := pts[len(pts)-1]
		if fig.ID == "5a" && last.Hits < last.Misses {
			t.Errorf("5a: hits %d < misses %d at l=1", last.Hits, last.Misses)
		}
	}
}

func TestFigure6Shapes(t *testing.T) {
	figs, err := Figure6(fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(figs) != 3 {
		t.Fatalf("got %d panels", len(figs))
	}
	for _, fig := range figs {
		none := values(findSeries(t, fig, "No Caching"))
		s100 := values(findSeries(t, fig, "Caching(100% sharing)"))
		s25 := values(findSeries(t, fig, "Caching(25% sharing)"))
		wins100, wins25, order := 0, 0, 0
		for i := range none {
			if s100[i] < none[i] {
				wins100++
			}
			if s25[i] < none[i] {
				wins25++
			}
			// With locality in play the sharing series converge (the
			// paper's 6(b)/(c) lines nearly coincide); allow 5% slack.
			if float64(s100[i]) <= 1.05*float64(s25[i]) {
				order++
			}
			// Even where 25%% sharing loses (small d, where the paper's own
			// curves cluster), it must stay within 10%% of the baseline.
			if float64(s25[i]) > 1.10*float64(none[i]) {
				t.Errorf("%s point %d: s=25%%%% %v more than 10%%%% above baseline %v",
					fig.ID, i, s25[i], none[i])
			}
		}
		// "caching does better than original PVFS for nearly all non-zero
		// percentages of data sharing": full sharing wins almost everywhere,
		// low sharing wins at a majority of the mid/large sizes.
		if wins100 < len(none)-1 {
			t.Errorf("%s: 100%% sharing beats baseline at only %d/%d points", fig.ID, wins100, len(none))
		}
		if wins25 < 3 {
			t.Errorf("%s: 25%% sharing beats baseline at only %d/%d points", fig.ID, wins25, len(none))
		}
		// More sharing should not hurt: 100% <= 25% (within slack) at most
		// points.
		if order < len(none)-1 {
			t.Errorf("%s: s=100%% <= s=25%% at only %d/%d points", fig.ID, order, len(none))
		}
	}
}

func TestFigure7Shapes(t *testing.T) {
	figs, err := Figure7(fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	// Same qualitative checks as Figure 6 at p=2, plus the paper's claim
	// that benefits are more significant at larger p (checked loosely at
	// l=1: relative caching gain for p=4 >= for p=2).
	fig := figs[2] // l=1 panel
	none := values(findSeries(t, fig, "No Caching"))
	s100 := values(findSeries(t, fig, "Caching(100% sharing)"))
	for i := range none {
		if s100[i] >= none[i] {
			t.Errorf("7c point %d: caching %v !< baseline %v", i, s100[i], none[i])
		}
	}
}

func TestFigure8Crossover(t *testing.T) {
	figs, err := Figure8(fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	l0, l1 := figs[0], figs[2]

	// l=0: spreading beats cached co-location (parallelism wins)...
	spread0 := values(findSeries(t, l0, "No Caching (2 apps on different nodes"))
	coloc0 := values(findSeries(t, l0, "Caching(25% sharing)"))
	same0 := values(findSeries(t, l0, "No Caching (2 apps on same"))
	w := 0
	var spreadSum, colocSum time.Duration
	for i := range spread0 {
		if spread0[i] < coloc0[i] {
			w++
		}
		spreadSum += spread0[i]
		colocSum += coloc0[i]
	}
	if w < 4 {
		t.Errorf("8a: spread beats cached co-location at only %d/%d points", w, len(spread0))
	}
	if spreadSum >= colocSum {
		t.Errorf("8a: spread total %v not below cached co-location total %v", spreadSum, colocSum)
	}
	// ...but caching still beats no-caching on the same nodes at the
	// mid/large sizes where there is network to save.
	w = 0
	for i := 2; i < len(same0); i++ {
		if coloc0[i] < same0[i] {
			w++
		}
	}
	if w < len(same0)-3 {
		t.Errorf("8a: cached co-location beats uncached co-location at only %d/%d mid/large points", w, len(same0)-2)
	}

	// l=1: cached co-location beats even the spread placement.
	spread1 := values(findSeries(t, l1, "No Caching (2 apps on different nodes"))
	coloc1 := values(findSeries(t, l1, "Caching(100% sharing)"))
	for i := range spread1 {
		if coloc1[i] >= spread1[i] {
			t.Errorf("8c point %d: cached co-location %v !< spread %v", i, coloc1[i], spread1[i])
		}
	}
}

func TestAblations(t *testing.T) {
	o := fastOpts()
	ev, err := AblationEviction(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(ev.Series) != 2 {
		t.Fatalf("eviction ablation series = %d", len(ev.Series))
	}
	// Policies should be within 25% of each other (approximate LRU loses
	// little).
	clock := values(ev.Series[0])
	lru := values(ev.Series[1])
	for i := range clock {
		r := float64(clock[i]) / float64(lru[i])
		if r > 1.25 || r < 0.75 {
			t.Errorf("eviction ablation point %d: ratio %.2f", i, r)
		}
	}

	fp, err := AblationFlushPeriod(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(fp.Series) != 3 {
		t.Fatalf("flush ablation series = %d", len(fp.Series))
	}

	wm, err := AblationWatermarks(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(wm.Series) != 3 {
		t.Fatalf("watermark ablation series = %d", len(wm.Series))
	}
}

func TestRender(t *testing.T) {
	fig := Figure{
		ID:     "x",
		Title:  "Test figure",
		YLabel: "time",
		Series: []Series{
			{Label: "A", Points: []Point{{RequestSize: 1024, Value: 1500 * time.Microsecond}}},
			{Label: "Longer label", Points: []Point{{RequestSize: 1024, Value: 2 * time.Second}}},
		},
		Notes: "a note",
	}
	out := Render(fig)
	for _, want := range []string{"Test figure", "1KB", "1.50ms", "2.000s", "a note", "Longer label"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestRenderAllSorted(t *testing.T) {
	figs := []Figure{{ID: "b", Title: "B"}, {ID: "a", Title: "A"}}
	out := RenderAll(figs)
	if strings.Index(out, "A") > strings.Index(out, "B") {
		t.Error("figures not sorted by ID")
	}
}

func TestSizeLabels(t *testing.T) {
	cases := map[int64]string{
		1 << 10: "1KB",
		1 << 20: "1MB",
		500:     "500B",
	}
	for d, want := range cases {
		if got := sizeLabel(d); got != want {
			t.Errorf("sizeLabel(%d) = %q, want %q", d, got, want)
		}
	}
}
