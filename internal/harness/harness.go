// Package harness regenerates every figure of the paper's evaluation
// (Section 4) on the simulated cluster. Each FigureN function runs the
// micro-benchmark configurations behind one published figure and returns
// the same series the paper plots; Render formats them as aligned text
// tables for cmd/experiments.
//
// The experiment index lives in DESIGN.md §9. Absolute values are virtual
// time on the calibrated model — the reproduction target is shape: who
// wins, how the ordering moves with l and s, and where the
// caching-versus-parallelism crossover falls.
package harness

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"pvfscache/internal/cachemod/buffer"
	"pvfscache/internal/microbench"
	"pvfscache/internal/sim"
	"pvfscache/internal/simcluster"
)

// RequestSizes is the x-axis of every figure: request size d in bytes,
// log-spaced from 1 KB to 1 MB as in the paper.
var RequestSizes = []int64{1 << 10, 4 << 10, 16 << 10, 64 << 10, 256 << 10, 1 << 20}

// SmallRequestSizes is the x-axis of Figure 5, which stops below the cache
// size (an individual request cannot exceed the 1.2 MB cache).
var SmallRequestSizes = []int64{1 << 10, 4 << 10, 16 << 10, 64 << 10, 256 << 10}

// Series is one plotted line: a label and one point per request size.
type Series struct {
	Label  string
	Points []Point
}

// Point is one measurement.
type Point struct {
	RequestSize int64
	Value       time.Duration
	// Hits/Misses/Joins carry cache counters for the caching runs.
	Hits, Misses, Joins int64
}

// Figure is a complete reproduced figure.
type Figure struct {
	ID       string
	Title    string
	YLabel   string
	Series   []Series
	Notes    string
	Duration time.Duration // wall-clock cost of regenerating it
}

// Options tunes a harness run.
type Options struct {
	// TotalBytes is the application-level data volume per run (default
	// 8 MB): each of the p processes moves TotalBytes/p, and the loop
	// count is TotalBytes/RequestSize, holding total data constant across
	// request sizes as the paper does.
	TotalBytes int64
	// IODs is the number of I/O daemons (default 4, with 6 total "nodes"
	// echoing the paper's 6-node cluster).
	IODs int
	// Params overrides the hardware calibration (nil = DefaultParams).
	Params *simcluster.Params
	// Seed for the workload generator.
	Seed int64
}

func (o *Options) fill() {
	if o.TotalBytes <= 0 {
		o.TotalBytes = 8 << 20
	}
	if o.IODs <= 0 {
		o.IODs = 4
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
}

func (o Options) params() simcluster.Params {
	if o.Params != nil {
		return *o.Params
	}
	return simcluster.DefaultParams()
}

// runConfig executes one (caching?, placement, params) micro-benchmark
// configuration on a fresh simulated cluster and returns the result.
func runConfig(o Options, mb microbench.Params, caching bool, pl simcluster.Placement, nodes int) (simcluster.Result, error) {
	env := sim.NewEnv()
	c := simcluster.New(env, o.params(), o.IODs, nodes, caching)
	return simcluster.Run(c, mb, pl)
}

// mbParams builds the per-process micro-benchmark parameters for an
// application-level request size d: the paper's benchmark is a parallel
// application, so one call moves d bytes collectively and each of the p
// processes transfers d/p from its own file region. TotalBytes is likewise
// the application-level volume, split across processes.
func mbParams(o Options, instances, p int, d int64, read bool, l, s float64) microbench.Params {
	return microbench.Params{
		Instances:   instances,
		Nodes:       p,
		RequestSize: d / int64(p),
		TotalBytes:  o.TotalBytes / int64(p),
		Read:        read,
		Locality:    l,
		Sharing:     s,
		Seed:        o.Seed,
	}
}

// perRequest converts a result to the per-request mean the paper plots in
// Figures 4 and 5.
func perRequest(r simcluster.Result) time.Duration { return r.MeanRequest }

// total converts a result to the total application time the paper plots in
// Figures 6-8.
func total(r simcluster.Result) time.Duration { return r.MaxInstanceTime() }

// Figure4 reproduces Figure 4: caching overhead with a single application
// instance, p=4, l=0 — per-request read time (a) and write time (b) versus
// request size, caching versus no caching.
func Figure4(o Options) ([]Figure, error) {
	o.fill()
	out := make([]Figure, 0, 2)
	for _, read := range []bool{true, false} {
		kind, id := "reads", "4a"
		if !read {
			kind, id = "writes", "4b"
		}
		fig := Figure{
			ID:     id,
			Title:  fmt.Sprintf("Figure %s: caching overhead for %s (single instance, p=4, l=0)", id, kind),
			YLabel: "time per request",
		}
		start := time.Now()
		var caching, noCaching Series
		caching.Label = "Caching"
		noCaching.Label = "No Caching"
		for _, d := range RequestSizes {
			mb := mbParams(o, 1, 4, d, read, 0, 0)
			withCache, err := runConfig(o, mb, true, simcluster.SameNodes(1, 4), 4)
			if err != nil {
				return nil, fmt.Errorf("figure %s d=%d caching: %w", id, d, err)
			}
			without, err := runConfig(o, mb, false, simcluster.SameNodes(1, 4), 4)
			if err != nil {
				return nil, fmt.Errorf("figure %s d=%d no-caching: %w", id, d, err)
			}
			caching.Points = append(caching.Points, Point{
				RequestSize: d, Value: perRequest(withCache),
				Hits: withCache.Hits, Misses: withCache.Misses, Joins: withCache.Joins,
			})
			noCaching.Points = append(noCaching.Points, Point{RequestSize: d, Value: perRequest(without)})
		}
		fig.Series = []Series{caching, noCaching}
		fig.Duration = time.Since(start)
		if read {
			fig.Notes = "Expected shape: the two curves stay close (small caching overhead with no locality to exploit)."
		} else {
			fig.Notes = "Expected shape: caching wins via write-behind, most prominently at small d; the gap narrows as writes block for cache space."
		}
		out = append(out, fig)
	}
	return out, nil
}

// Figure5 reproduces Figure 5: single instance, p=4, l=1 — per-request
// read (a) and write (b) time with perfect locality.
func Figure5(o Options) ([]Figure, error) {
	o.fill()
	out := make([]Figure, 0, 2)
	for _, read := range []bool{true, false} {
		kind, id := "reads", "5a"
		if !read {
			kind, id = "writes", "5b"
		}
		fig := Figure{
			ID:     id,
			Title:  fmt.Sprintf("Figure %s: caching vs no caching for %s (single instance, p=4, l=1)", id, kind),
			YLabel: "time per request",
		}
		start := time.Now()
		var caching, noCaching Series
		caching.Label = "Caching"
		noCaching.Label = "No Caching"
		for _, d := range SmallRequestSizes {
			mb := mbParams(o, 1, 4, d, read, 1.0, 0)
			withCache, err := runConfig(o, mb, true, simcluster.SameNodes(1, 4), 4)
			if err != nil {
				return nil, fmt.Errorf("figure %s d=%d caching: %w", id, d, err)
			}
			without, err := runConfig(o, mb, false, simcluster.SameNodes(1, 4), 4)
			if err != nil {
				return nil, fmt.Errorf("figure %s d=%d no-caching: %w", id, d, err)
			}
			caching.Points = append(caching.Points, Point{
				RequestSize: d, Value: perRequest(withCache),
				Hits: withCache.Hits, Misses: withCache.Misses, Joins: withCache.Joins,
			})
			noCaching.Points = append(noCaching.Points, Point{RequestSize: d, Value: perRequest(without)})
		}
		fig.Series = []Series{caching, noCaching}
		fig.Duration = time.Since(start)
		fig.Notes = "Expected shape: substantial caching benefit for both reads and writes, growing with request size."
		out = append(out, fig)
	}
	return out, nil
}

// SharingDegrees is the s-axis of Figures 6-8.
var SharingDegrees = []float64{0.25, 0.50, 0.75, 1.00}

// Localities is the per-panel l value of Figures 6-8.
var Localities = []float64{0, 0.5, 1.0}

// figureSharing implements Figures 6 and 7: two instances multiprogrammed
// on the same p nodes, total application time versus request size, one
// caching series per sharing degree plus the no-caching baseline. One
// Figure is returned per locality panel (a, b, c).
func figureSharing(o Options, figNum string, p int) ([]Figure, error) {
	o.fill()
	out := make([]Figure, 0, len(Localities))
	for li, l := range Localities {
		fig := Figure{
			ID:     fmt.Sprintf("%s%c", figNum, 'a'+li),
			Title:  fmt.Sprintf("Figure %s(%c): two instances reading, p=%d, l=%v", figNum, 'a'+li, p, l),
			YLabel: "total time",
		}
		start := time.Now()
		for _, s := range SharingDegrees {
			series := Series{Label: fmt.Sprintf("Caching(%d%% sharing)", int(s*100))}
			for _, d := range RequestSizes {
				mb := mbParams(o, 2, p, d, true, l, s)
				res, err := runConfig(o, mb, true, simcluster.SameNodes(2, p), p)
				if err != nil {
					return nil, fmt.Errorf("figure %s l=%v s=%v d=%d: %w", figNum, l, s, d, err)
				}
				series.Points = append(series.Points, Point{
					RequestSize: d, Value: total(res),
					Hits: res.Hits, Misses: res.Misses, Joins: res.Joins,
				})
			}
			fig.Series = append(fig.Series, series)
		}
		baseline := Series{Label: "No Caching"}
		for _, d := range RequestSizes {
			mb := mbParams(o, 2, p, d, true, l, 0.5) // sharing is irrelevant without caching
			res, err := runConfig(o, mb, false, simcluster.SameNodes(2, p), p)
			if err != nil {
				return nil, fmt.Errorf("figure %s baseline l=%v d=%d: %w", figNum, l, d, err)
			}
			baseline.Points = append(baseline.Points, Point{RequestSize: d, Value: total(res)})
		}
		fig.Series = append(fig.Series, baseline)
		fig.Duration = time.Since(start)
		fig.Notes = "Expected shape: caching beats no-caching for nearly all sharing degrees even at l=0; higher sharing and higher locality widen the gap."
		out = append(out, fig)
	}
	return out, nil
}

// Figure6 reproduces Figure 6 (two instances, p=4).
func Figure6(o Options) ([]Figure, error) { return figureSharing(o, "6", 4) }

// Figure7 reproduces Figure 7 (two instances, p=2).
func Figure7(o Options) ([]Figure, error) { return figureSharing(o, "7", 2) }

// Figure8 reproduces Figure 8: can caching compensate for loss of
// parallelism? Two instances on p=3 nodes: caching co-located (3 nodes)
// versus no-caching co-located (3 nodes) versus no-caching spread
// (6 nodes).
func Figure8(o Options) ([]Figure, error) {
	o.fill()
	const p = 3
	out := make([]Figure, 0, len(Localities))
	for li, l := range Localities {
		fig := Figure{
			ID:     fmt.Sprintf("8%c", 'a'+li),
			Title:  fmt.Sprintf("Figure 8(%c): caching vs parallelism, p=%d, l=%v", 'a'+li, p, l),
			YLabel: "total time",
		}
		start := time.Now()
		for _, s := range SharingDegrees {
			series := Series{Label: fmt.Sprintf("Caching(%d%% sharing)", int(s*100))}
			for _, d := range RequestSizes {
				mb := mbParams(o, 2, p, d, true, l, s)
				res, err := runConfig(o, mb, true, simcluster.SameNodes(2, p), p)
				if err != nil {
					return nil, fmt.Errorf("figure 8 l=%v s=%v d=%d: %w", l, s, d, err)
				}
				series.Points = append(series.Points, Point{
					RequestSize: d, Value: total(res),
					Hits: res.Hits, Misses: res.Misses, Joins: res.Joins,
				})
			}
			fig.Series = append(fig.Series, series)
		}
		for _, spread := range []bool{false, true} {
			label := "No Caching (2 apps on same 3 nodes)"
			pl := simcluster.SameNodes(2, p)
			nodes := p
			if spread {
				label = "No Caching (2 apps on different nodes, 6 total)"
				pl = simcluster.DisjointNodes(2, p)
				nodes = 2 * p
			}
			series := Series{Label: label}
			for _, d := range RequestSizes {
				mb := mbParams(o, 2, p, d, true, l, 0.5)
				res, err := runConfig(o, mb, false, pl, nodes)
				if err != nil {
					return nil, fmt.Errorf("figure 8 baseline spread=%v l=%v d=%d: %w", spread, l, d, err)
				}
				series.Points = append(series.Points, Point{RequestSize: d, Value: total(res)})
			}
			fig.Series = append(fig.Series, series)
		}
		fig.Duration = time.Since(start)
		switch l {
		case 0:
			fig.Notes = "Expected shape: spreading wins at l=0 (parallelism beats inter-application caching), but caching still beats no-caching on the same nodes."
		case 0.5:
			fig.Notes = "Expected shape: caching partially offsets the parallelism loss."
		default:
			fig.Notes = "Expected shape: caching fully offsets the parallelism loss — co-located caching beats even the spread placement."
		}
		out = append(out, fig)
	}
	return out, nil
}

// AblationEviction compares the clock (approximate LRU) policy against
// exact LRU on the Figure 6 workload (DESIGN.md experiment A1).
func AblationEviction(o Options) (Figure, error) {
	o.fill()
	fig := Figure{
		ID:     "A1",
		Title:  "Ablation: clock (approximate LRU) vs exact LRU eviction (2 instances, p=4, l=0.5, s=50%)",
		YLabel: "total time",
	}
	start := time.Now()
	for _, pol := range []buffer.Policy{buffer.PolicyClock, buffer.PolicyLRU} {
		series := Series{Label: "Policy " + pol.String()}
		params := o.params()
		params.Policy = pol
		po := o
		po.Params = &params
		for _, d := range RequestSizes {
			mb := mbParams(o, 2, 4, d, true, 0.5, 0.5)
			res, err := runConfig(po, mb, true, simcluster.SameNodes(2, 4), 4)
			if err != nil {
				return fig, err
			}
			series.Points = append(series.Points, Point{
				RequestSize: d, Value: total(res),
				Hits: res.Hits, Misses: res.Misses, Joins: res.Joins,
			})
		}
		fig.Series = append(fig.Series, series)
	}
	fig.Duration = time.Since(start)
	fig.Notes = "Expected shape: near-identical times — the approximate policy loses little hit ratio, which is why the paper chose it over exact LRU's per-access overhead."
	return fig, nil
}

// AblationFlushPeriod sweeps the flusher period on the Figure 4(b) write
// workload (DESIGN.md experiment A2).
func AblationFlushPeriod(o Options) (Figure, error) {
	o.fill()
	fig := Figure{
		ID:     "A2",
		Title:  "Ablation: flusher period on the write workload (single instance, p=4, l=0)",
		YLabel: "time per request",
	}
	start := time.Now()
	for _, period := range []time.Duration{100 * time.Millisecond, time.Second, 10 * time.Second} {
		series := Series{Label: fmt.Sprintf("FlushPeriod=%v", period)}
		params := o.params()
		params.FlushPeriod = period
		po := o
		po.Params = &params
		for _, d := range RequestSizes {
			mb := mbParams(o, 1, 4, d, false, 0, 0)
			res, err := runConfig(po, mb, true, simcluster.SameNodes(1, 4), 4)
			if err != nil {
				return fig, err
			}
			series.Points = append(series.Points, Point{RequestSize: d, Value: perRequest(res)})
		}
		fig.Series = append(fig.Series, series)
	}
	fig.Duration = time.Since(start)
	fig.Notes = "Expected shape: the period matters little until the cache fills; pressure-driven flushing dominates at large d."
	return fig, nil
}

// AblationWatermarks sweeps the harvester watermarks on the Figure 5 read
// workload (DESIGN.md experiment A3).
func AblationWatermarks(o Options) (Figure, error) {
	o.fill()
	fig := Figure{
		ID:     "A3",
		Title:  "Ablation: harvester watermarks on the l=1 read workload (single instance, p=4)",
		YLabel: "time per request",
	}
	start := time.Now()
	type wm struct{ low, high int }
	for _, w := range []wm{{10, 25}, {30, 75}, {100, 200}} {
		series := Series{Label: fmt.Sprintf("low=%d high=%d", w.low, w.high)}
		params := o.params()
		params.LowWater, params.HighWater = w.low, w.high
		po := o
		po.Params = &params
		for _, d := range SmallRequestSizes {
			mb := mbParams(o, 1, 4, d, true, 1.0, 0)
			res, err := runConfig(po, mb, true, simcluster.SameNodes(1, 4), 4)
			if err != nil {
				return fig, err
			}
			series.Points = append(series.Points, Point{
				RequestSize: d, Value: perRequest(res),
				Hits: res.Hits, Misses: res.Misses,
			})
		}
		fig.Series = append(fig.Series, series)
	}
	fig.Duration = time.Since(start)
	fig.Notes = "Expected shape: aggressive harvesting (high watermarks) evicts blocks the l=1 workload is about to re-touch, lowering the hit ratio; modest watermarks are safe."
	return fig, nil
}

// All regenerates every figure and ablation.
func All(o Options) ([]Figure, error) {
	o.fill()
	var out []Figure
	for _, gen := range []func(Options) ([]Figure, error){Figure4, Figure5, Figure6, Figure7, Figure8} {
		figs, err := gen(o)
		if err != nil {
			return nil, err
		}
		out = append(out, figs...)
	}
	for _, gen := range []func(Options) (Figure, error){AblationEviction, AblationFlushPeriod, AblationWatermarks} {
		fig, err := gen(o)
		if err != nil {
			return nil, err
		}
		out = append(out, fig)
	}
	return out, nil
}

// Render formats a figure as an aligned text table.
func Render(fig Figure) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", fig.Title)
	fmt.Fprintf(&b, "y-axis: %s; x-axis: request size d (bytes)\n", fig.YLabel)

	// Header row: request sizes.
	sizes := make([]int64, 0)
	if len(fig.Series) > 0 {
		for _, pt := range fig.Series[0].Points {
			sizes = append(sizes, pt.RequestSize)
		}
	}
	labelWidth := 0
	for _, s := range fig.Series {
		if len(s.Label) > labelWidth {
			labelWidth = len(s.Label)
		}
	}
	fmt.Fprintf(&b, "%-*s", labelWidth+2, "series")
	for _, d := range sizes {
		fmt.Fprintf(&b, "%12s", sizeLabel(d))
	}
	b.WriteString("\n")
	for _, s := range fig.Series {
		fmt.Fprintf(&b, "%-*s", labelWidth+2, s.Label)
		for _, pt := range s.Points {
			fmt.Fprintf(&b, "%12s", shortDuration(pt.Value))
		}
		b.WriteString("\n")
	}
	if fig.Notes != "" {
		fmt.Fprintf(&b, "note: %s\n", fig.Notes)
	}
	return b.String()
}

// RenderAll renders every figure separated by blank lines, sorted by ID.
func RenderAll(figs []Figure) string {
	sorted := make([]Figure, len(figs))
	copy(sorted, figs)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].ID < sorted[j].ID })
	var b strings.Builder
	for i, f := range sorted {
		if i > 0 {
			b.WriteString("\n")
		}
		b.WriteString(Render(f))
	}
	return b.String()
}

func sizeLabel(d int64) string {
	switch {
	case d >= 1<<20 && d%(1<<20) == 0:
		return fmt.Sprintf("%dMB", d>>20)
	case d >= 1<<10 && d%(1<<10) == 0:
		return fmt.Sprintf("%dKB", d>>10)
	default:
		return fmt.Sprintf("%dB", d)
	}
}

func shortDuration(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.3fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.2fms", float64(d)/float64(time.Millisecond))
	default:
		return fmt.Sprintf("%.0fµs", float64(d)/float64(time.Microsecond))
	}
}
