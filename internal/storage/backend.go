// Package storage defines the iod's persistence seam: the Backend
// interface an I/O daemon stores its strip data behind. Two
// implementations exist — storage/mem wraps the in-memory
// simdisk.Store the system has always run on (tests, benchmarks, and
// the discrete-event model stay bit-identical), and storage/disk is a
// real on-disk engine with a write-ahead journal, an in-memory dirty
// cache flushed on filesystem-friendly boundaries, and crash recovery
// by journal replay (see that package for the format).
//
// The interface is deliberately the simdisk surface plus error
// returns: the in-memory store cannot fail, so the seed's iod had no
// store-error path at all and acknowledged writes it could never have
// persisted. Every method here can report failure, and the iod maps
// those failures onto wire.StatusIOError acks the flush streams treat
// as retryable.
package storage

import "pvfscache/internal/blockio"

// Backend persists the strip data one I/O daemon serves. Files are
// sparse: reads return short past the last written byte, gaps inside
// written data read as zeros, and callers treat absent bytes as zero.
// Implementations must be safe for concurrent use.
//
// Ordering contract (the delete/write race): operations linearize, and
// an operation's linearization point lies between its call and its
// return. In particular a WriteAt that returns nil after a Delete on
// the same file has returned MUST leave its bytes observable (the
// write recreates the file); an acknowledged write may only disappear
// through a Delete that is still concurrent with it or begins after
// it. A backend that lets an in-flight write land on a detached file
// object — acked but never observable, with no delete ordered after
// it — violates the contract. Reads and Size obey the same rule: once
// Delete returns, they observe the file as absent until a later write
// recreates it.
type Backend interface {
	// WriteAt stores p at offset off, growing the file as needed. A nil
	// error acknowledges the bytes: they must be observable by every
	// subsequent ReadAt until overwritten or deleted (see the ordering
	// contract above), and must survive a process crash within the
	// backend's documented durability window.
	WriteAt(id blockio.FileID, off int64, p []byte) error
	// ReadAt copies up to len(p) bytes from offset off into p and
	// returns the number copied. Reads past the stored size return
	// short with a nil error; a missing file reads as zero bytes.
	ReadAt(id blockio.FileID, off int64, p []byte) (int, error)
	// Size returns the stored size of the file (0 if absent): one byte
	// past the highest offset ever written.
	Size(id blockio.FileID) (int64, error)
	// Delete removes the file's data. Deleting an absent file is not an
	// error.
	Delete(id blockio.FileID) error
	// Sync makes every acknowledged write durable regardless of the
	// backend's fsync policy. A no-op for memory backends.
	Sync() error
	// Close releases the backend's resources after making acknowledged
	// writes durable (an implicit Sync).
	Close() error
}

// Crasher is implemented by backends that can simulate a fail-stop:
// Crash drops all volatile state — dirty caches, open handles,
// buffered journal bytes that an operating system would still have
// held for a mere process crash are kept, but nothing is flushed or
// checkpointed — and leaves the backend unusable (every later call
// errors). Reopening from the same state (storage/disk: the same
// directory) must recover every acknowledged write inside the
// documented durability window. The chaos harness's restart fault and
// the recovery tests drive it; production code never calls Crash.
type Crasher interface {
	Crash() error
}
