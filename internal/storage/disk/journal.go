package disk

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
	"io"
)

// The write-ahead journal is a flat stream of self-delimiting records:
//
//	[u32 payloadLen] [payload] [u32 crc32(payload)]   (little-endian)
//	payload = [u8 kind] [u64 fileID] [u64 offset] [data ...]
//
// kinds: recWrite carries the written bytes as data; recDelete carries
// none. The codec is count-guarded in the internal/wire style: a
// declared payload length below the fixed header or above
// maxRecordPayload is rejected before any allocation, so a corrupt or
// adversarial length can't balloon memory. The CRC covers the whole
// payload; replay stops at the first record that is short, fails its
// checksum, or declares an invalid length — everything after a torn
// tail is by definition unacknowledged (WriteAt appends records
// strictly in ack order), so truncating there loses nothing the
// backend promised to keep.
const (
	recWrite  byte = 1
	recDelete byte = 2

	payloadHeader = 1 + 8 + 8 // kind + fileID + offset
	frameOverhead = 4 + 4     // length prefix + trailing CRC

	// maxRecordPayload bounds one record at the largest write the wire
	// layer can carry, with header slack. Anything bigger is garbage.
	maxRecordPayload = payloadHeader + (64 << 20)
)

type record struct {
	kind byte
	id   uint64
	off  int64
	data []byte
}

// errTorn marks the journal's valid prefix ending: a short, corrupt, or
// malformed record. Replay treats it as clean end-of-log.
var errTorn = errors.New("disk journal: torn or corrupt record")

// appendRecord encodes rec onto w. The data bytes are written straight
// from rec.data (no staging copy); w is the store's buffered journal
// writer.
func appendRecord(w io.Writer, rec record) error {
	plen := payloadHeader + len(rec.data)
	if plen > maxRecordPayload {
		return errors.New("disk journal: record exceeds max payload")
	}
	var hdr [4 + payloadHeader]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(plen))
	hdr[4] = rec.kind
	binary.LittleEndian.PutUint64(hdr[5:13], rec.id)
	binary.LittleEndian.PutUint64(hdr[13:21], uint64(rec.off))
	crc := crc32.NewIEEE()
	crc.Write(hdr[4:])
	crc.Write(rec.data)
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if len(rec.data) > 0 {
		if _, err := w.Write(rec.data); err != nil {
			return err
		}
	}
	var tail [4]byte
	binary.LittleEndian.PutUint32(tail[:], crc.Sum32())
	_, err := w.Write(tail[:])
	return err
}

// decodePayload validates and parses one checksummed payload. The
// returned record's data aliases payload.
func decodePayload(payload []byte, sum uint32) (record, error) {
	var rec record
	if crc32.ChecksumIEEE(payload) != sum {
		return rec, errTorn
	}
	rec.kind = payload[0]
	rec.id = binary.LittleEndian.Uint64(payload[1:9])
	rec.off = int64(binary.LittleEndian.Uint64(payload[9:17]))
	rec.data = payload[payloadHeader:]
	switch rec.kind {
	case recWrite:
		if rec.off < 0 {
			return rec, errTorn
		}
	case recDelete:
		if len(rec.data) != 0 || rec.off != 0 {
			return rec, errTorn
		}
	default:
		return rec, errTorn
	}
	return rec, nil
}

// decodeFrame parses one record from the head of b, returning the
// bytes consumed. It is the slice-level twin of readRecord and the
// surface the fuzz target drives.
func decodeFrame(b []byte) (record, int, error) {
	if len(b) < 4 {
		return record{}, 0, errTorn
	}
	plen := int(binary.LittleEndian.Uint32(b[0:4]))
	if plen < payloadHeader || plen > maxRecordPayload {
		return record{}, 0, errTorn
	}
	total := 4 + plen + 4
	if len(b) < total {
		return record{}, 0, errTorn
	}
	sum := binary.LittleEndian.Uint32(b[4+plen : total])
	rec, err := decodePayload(b[4:4+plen], sum)
	if err != nil {
		return record{}, 0, err
	}
	return rec, total, nil
}

// readRecord reads the next record from r. io.EOF means a clean log
// end; errTorn means the valid prefix ended mid-record (crash tail).
func readRecord(r io.Reader) (record, error) {
	var lb [4]byte
	if _, err := io.ReadFull(r, lb[:]); err != nil {
		if err == io.EOF {
			return record{}, io.EOF
		}
		return record{}, errTorn
	}
	plen := int(binary.LittleEndian.Uint32(lb[:]))
	if plen < payloadHeader || plen > maxRecordPayload {
		return record{}, errTorn
	}
	buf := make([]byte, plen+4)
	if _, err := io.ReadFull(r, buf); err != nil {
		return record{}, errTorn
	}
	sum := binary.LittleEndian.Uint32(buf[plen:])
	return decodePayload(buf[:plen], sum)
}
