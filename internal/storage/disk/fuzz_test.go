package disk

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

func writeFile(dir string, b []byte) error {
	return os.WriteFile(filepath.Join(dir, journalName), b, 0o666)
}

// FuzzJournalDecode drives the journal record decoder — the surface a
// crashed machine hands the replay path — with arbitrary bytes. The
// decoder must never panic or over-allocate (the count guard), and any
// frame it accepts must re-encode to the exact bytes it consumed
// (round-trip identity keeps replay deterministic).
func FuzzJournalDecode(f *testing.F) {
	// Seed with valid frames of each kind plus classic mutations.
	var wr bytes.Buffer
	appendRecord(&wr, record{kind: recWrite, id: 7, off: 4096, data: []byte("payload bytes")})
	f.Add(wr.Bytes())
	var del bytes.Buffer
	appendRecord(&del, record{kind: recDelete, id: 9})
	f.Add(del.Bytes())
	var both bytes.Buffer
	appendRecord(&both, record{kind: recWrite, id: 1, off: 0, data: bytes.Repeat([]byte{5}, 64)})
	appendRecord(&both, record{kind: recDelete, id: 1})
	f.Add(both.Bytes())
	f.Add(wr.Bytes()[:wr.Len()/2])                          // torn tail
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 1, 2, 3})          // absurd length
	f.Add([]byte{0x11, 0x00, 0x00, 0x00})                   // length only
	f.Add(append([]byte{}, make([]byte, frameOverhead)...)) // zero frame

	f.Fuzz(func(t *testing.T, b []byte) {
		rest := b
		for len(rest) > 0 {
			rec, n, err := decodeFrame(rest)
			if err != nil {
				break // torn/corrupt: replay stops here, by design
			}
			if n <= 0 || n > len(rest) {
				t.Fatalf("decodeFrame consumed %d of %d", n, len(rest))
			}
			var re bytes.Buffer
			if err := appendRecord(&re, rec); err != nil {
				t.Fatalf("re-encode of accepted record failed: %v", err)
			}
			if !bytes.Equal(re.Bytes(), rest[:n]) {
				t.Fatalf("round-trip mismatch: %x vs %x", re.Bytes(), rest[:n])
			}
			rest = rest[n:]
		}
	})
}

// FuzzJournalReplayBytes goes one level up: an arbitrary journal file
// must never break Open — whatever the bytes, the store opens (possibly
// recovering nothing) and truncates the log.
func FuzzJournalReplayBytes(f *testing.F) {
	var seed bytes.Buffer
	appendRecord(&seed, record{kind: recWrite, id: 3, off: 128, data: []byte("journal")})
	f.Add(seed.Bytes())
	f.Add([]byte("not a journal at all"))
	f.Fuzz(func(t *testing.T, b []byte) {
		if len(b) > 1<<16 {
			return // keep the per-exec file I/O cheap
		}
		dir := t.TempDir()
		if err := writeFile(dir, b); err != nil {
			t.Skip()
		}
		s, err := Open(Options{Dir: dir})
		if err != nil {
			t.Fatalf("Open on fuzzed journal: %v", err)
		}
		s.Close()
	})
}
