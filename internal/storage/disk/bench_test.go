package disk

// Fsync-policy micro-benchmark: the per-ack cost of one journaled 4 KB
// WriteAt under each durability policy. This is the number behind the
// TUNING.md Fsync row — "always" pays an fsync per record, the other two
// pay only the bufio flush to the OS.
//
//	go test -run xxx -bench WriteAtFsync -benchmem ./internal/storage/disk/
import (
	"testing"
	"time"

	"pvfscache/internal/blockio"
)

func benchWriteAt(b *testing.B, pol Policy) {
	s, err := Open(Options{Dir: b.TempDir(), Fsync: pol, FsyncInterval: 10 * time.Millisecond})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { s.Close() })
	buf := make([]byte, 4096)
	b.SetBytes(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Rotate over a 4 MB window so checkpoints stay realistic instead
		// of endlessly overwriting one block.
		off := int64(i%1024) * 4096
		if err := s.WriteAt(blockio.FileID(1), off, buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWriteAtFsyncOnClose(b *testing.B)  { benchWriteAt(b, SyncOnClose) }
func BenchmarkWriteAtFsyncInterval(b *testing.B) { benchWriteAt(b, SyncInterval) }
func BenchmarkWriteAtFsyncAlways(b *testing.B)   { benchWriteAt(b, SyncAlways) }
