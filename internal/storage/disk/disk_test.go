package disk

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
	"time"

	"pvfscache/internal/blockio"
)

func fid(id uint64) blockio.FileID { return blockio.FileID(id) }

func openT(t *testing.T, opts Options) *Store {
	t.Helper()
	s, err := Open(opts)
	if err != nil {
		t.Fatalf("Open(%s): %v", opts.Dir, err)
	}
	return s
}

func readAll(t *testing.T, s *Store, id uint64, off int64, n int) []byte {
	t.Helper()
	buf := make([]byte, n)
	got, err := s.ReadAt(fid(id), off, buf)
	if err != nil {
		t.Fatalf("ReadAt: %v", err)
	}
	return buf[:got]
}

// TestCrashReplayRecoversAckedWrites is the engine's core promise: every
// write acknowledged before a fail-stop is recovered byte-for-byte by
// reopening the directory, even though nothing was checkpointed.
func TestCrashReplayRecoversAckedWrites(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, Options{Dir: dir})
	a := bytes.Repeat([]byte{7}, 4096)
	b := []byte("second file")
	if err := s.WriteAt(fid(1), 0, a); err != nil {
		t.Fatal(err)
	}
	if err := s.WriteAt(fid(1), 8192, a); err != nil { // sparse gap
		t.Fatal(err)
	}
	if err := s.WriteAt(fid(2), 100, b); err != nil {
		t.Fatal(err)
	}
	if err := s.Crash(); err != nil {
		t.Fatal(err)
	}
	if err := s.WriteAt(fid(1), 0, a); err == nil {
		t.Fatal("write after Crash succeeded")
	}

	r := openT(t, Options{Dir: dir})
	defer r.Close()
	if got := r.Recovered(); got != 3 {
		t.Fatalf("Recovered = %d, want 3", got)
	}
	if sz, _ := r.Size(fid(1)); sz != 8192+4096 {
		t.Fatalf("file 1 size = %d", sz)
	}
	if got := readAll(t, r, 1, 0, 4096); !bytes.Equal(got, a) {
		t.Fatal("file 1 head mismatch after replay")
	}
	gap := readAll(t, r, 1, 4096, 4096)
	for i, v := range gap {
		if v != 0 {
			t.Fatalf("gap byte %d = %d after replay", i, v)
		}
	}
	if got := readAll(t, r, 1, 8192, 4096); !bytes.Equal(got, a) {
		t.Fatal("file 1 tail mismatch after replay")
	}
	if got := readAll(t, r, 2, 100, len(b)); !bytes.Equal(got, b) {
		t.Fatalf("file 2 = %q", got)
	}
	// Replay checkpointed: the journal is empty again.
	if fi, err := os.Stat(filepath.Join(dir, journalName)); err != nil || fi.Size() != 0 {
		t.Fatalf("journal after replay: %v, size %d", err, fi.Size())
	}
}

// TestTornTailRecoversValidPrefix simulates a crash mid-append: the
// journal's intact prefix must replay and the torn tail must be
// discarded without error.
func TestTornTailRecoversValidPrefix(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, Options{Dir: dir})
	good := []byte("acknowledged bytes")
	if err := s.WriteAt(fid(1), 0, good); err != nil {
		t.Fatal(err)
	}
	if err := s.Crash(); err != nil {
		t.Fatal(err)
	}

	// Append half of a valid record — the shape a kill leaves when the
	// process dies inside the journal write.
	var tail bytes.Buffer
	if err := appendRecord(&tail, record{kind: recWrite, id: 1, off: 4096, data: bytes.Repeat([]byte{9}, 256)}); err != nil {
		t.Fatal(err)
	}
	j, err := os.OpenFile(filepath.Join(dir, journalName), os.O_WRONLY|os.O_APPEND, 0o666)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := j.Write(tail.Bytes()[:tail.Len()/2]); err != nil {
		t.Fatal(err)
	}
	j.Close()

	r := openT(t, Options{Dir: dir})
	defer r.Close()
	if got := r.Recovered(); got != 1 {
		t.Fatalf("Recovered = %d, want 1 (torn tail must not count)", got)
	}
	if got := readAll(t, r, 1, 0, len(good)); !bytes.Equal(got, good) {
		t.Fatalf("prefix = %q", got)
	}
	// The torn record was never acknowledged, so its absence is correct.
	if sz, _ := r.Size(fid(1)); sz != int64(len(good)) {
		t.Fatalf("size = %d, want %d", sz, len(good))
	}
}

// TestCorruptTailRecoversValidPrefix flips a bit in the last record's
// data: the checksum must reject it and replay must keep the prefix.
func TestCorruptTailRecoversValidPrefix(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, Options{Dir: dir})
	if err := s.WriteAt(fid(1), 0, []byte("first")); err != nil {
		t.Fatal(err)
	}
	if err := s.WriteAt(fid(1), 100, []byte("second")); err != nil {
		t.Fatal(err)
	}
	if err := s.Crash(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, journalName)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-6] ^= 0xFF // inside the second record's payload/crc
	if err := os.WriteFile(path, raw, 0o666); err != nil {
		t.Fatal(err)
	}

	r := openT(t, Options{Dir: dir})
	defer r.Close()
	if got := r.Recovered(); got != 1 {
		t.Fatalf("Recovered = %d, want 1", got)
	}
	if got := readAll(t, r, 1, 0, 5); !bytes.Equal(got, []byte("first")) {
		t.Fatalf("prefix = %q", got)
	}
}

// TestDeleteReplay: delete records replay too — a file deleted before
// the crash stays deleted, and a post-delete write recreates it.
func TestDeleteReplay(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, Options{Dir: dir})
	if err := s.WriteAt(fid(1), 0, []byte("old")); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete(fid(1)); err != nil {
		t.Fatal(err)
	}
	if err := s.WriteAt(fid(1), 0, []byte("new")); err != nil {
		t.Fatal(err)
	}
	if err := s.WriteAt(fid(2), 0, []byte("gone")); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete(fid(2)); err != nil {
		t.Fatal(err)
	}
	if err := s.Crash(); err != nil {
		t.Fatal(err)
	}

	r := openT(t, Options{Dir: dir})
	defer r.Close()
	if got := readAll(t, r, 1, 0, 3); !bytes.Equal(got, []byte("new")) {
		t.Fatalf("file 1 = %q", got)
	}
	if sz, _ := r.Size(fid(2)); sz != 0 {
		t.Fatalf("deleted file 2 came back, size %d", sz)
	}
}

// TestCheckpointTruncatesJournal: crossing the flush threshold applies
// the overlay to the data files and empties the journal, and the data
// survives a crash after the checkpoint with zero replayed records.
func TestCheckpointTruncatesJournal(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, Options{Dir: dir, FlushThreshold: 1024})
	payload := bytes.Repeat([]byte{3}, 2048) // crosses the threshold in one write
	if err := s.WriteAt(fid(1), 0, payload); err != nil {
		t.Fatal(err)
	}
	if fi, err := os.Stat(filepath.Join(dir, journalName)); err != nil || fi.Size() != 0 {
		t.Fatalf("journal not truncated after checkpoint: %v, size %d", err, fi.Size())
	}
	if fi, err := os.Stat(filepath.Join(dir, "f-0000000000000001.dat")); err != nil || fi.Size() != 2048 {
		t.Fatalf("data file: %v, size %d", err, fi.Size())
	}
	if got := readAll(t, s, 1, 0, 2048); !bytes.Equal(got, payload) {
		t.Fatal("read-back after checkpoint mismatch")
	}
	if err := s.Crash(); err != nil {
		t.Fatal(err)
	}
	r := openT(t, Options{Dir: dir, FlushThreshold: 1024})
	defer r.Close()
	if got := r.Recovered(); got != 0 {
		t.Fatalf("Recovered = %d, want 0 (checkpointed state needs no replay)", got)
	}
	if got := readAll(t, r, 1, 0, 2048); !bytes.Equal(got, payload) {
		t.Fatal("checkpointed bytes lost")
	}
}

// TestCloseReopen: a clean Close is the strongest durability point —
// everything lands in the data files regardless of policy.
func TestCloseReopen(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, Options{Dir: dir})
	payload := []byte("closed cleanly")
	if err := s.WriteAt(fid(1), 0, payload); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	r := openT(t, Options{Dir: dir})
	defer r.Close()
	if got := r.Recovered(); got != 0 {
		t.Fatalf("Recovered = %d after clean close", got)
	}
	if got := readAll(t, r, 1, 0, len(payload)); !bytes.Equal(got, payload) {
		t.Fatalf("after reopen: %q", got)
	}
}

func TestPolicies(t *testing.T) {
	cases := []struct {
		in   string
		want Policy
		err  bool
	}{
		{"", SyncOnClose, false},
		{"onclose", SyncOnClose, false},
		{"interval", SyncInterval, false},
		{"osync", SyncAlways, false},
		{"always", SyncAlways, false},
		{"OSYNC", SyncAlways, false},
		{"bogus", SyncOnClose, true},
	}
	for _, c := range cases {
		got, err := ParsePolicy(c.in)
		if (err != nil) != c.err || got != c.want {
			t.Errorf("ParsePolicy(%q) = %v, %v", c.in, got, err)
		}
	}
	for _, p := range []Policy{SyncOnClose, SyncInterval, SyncAlways} {
		rt, err := ParsePolicy(p.String())
		if err != nil || rt != p {
			t.Errorf("round-trip %v: %v, %v", p, rt, err)
		}
	}
}

// TestFsyncPoliciesWriteThrough exercises each policy end to end; the
// test can't power-cycle the machine, so it asserts the shared process-
// crash durability (journal pushed to the OS per ack) holds under all
// three.
func TestFsyncPoliciesWriteThrough(t *testing.T) {
	for _, p := range []Policy{SyncOnClose, SyncInterval, SyncAlways} {
		t.Run(p.String(), func(t *testing.T) {
			dir := t.TempDir()
			s := openT(t, Options{Dir: dir, Fsync: p, FsyncInterval: time.Millisecond})
			payload := []byte("policy bytes")
			if err := s.WriteAt(fid(1), 0, payload); err != nil {
				t.Fatal(err)
			}
			time.Sleep(2 * time.Millisecond)
			if err := s.WriteAt(fid(1), 64, payload); err != nil { // interval path fires here
				t.Fatal(err)
			}
			if err := s.Crash(); err != nil {
				t.Fatal(err)
			}
			r := openT(t, Options{Dir: dir})
			defer r.Close()
			if got := readAll(t, r, 1, 64, len(payload)); !bytes.Equal(got, payload) {
				t.Fatalf("policy %v lost acked bytes: %q", p, got)
			}
		})
	}
}

// TestReopenWriteThenReadSeesDurableBytes is the regression for the
// lazy-open bug: after a clean Close/Open, a small staged write must
// not hide the durable on-disk bytes outside the overlay.
func TestReopenWriteThenReadSeesDurableBytes(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, Options{Dir: dir})
	payload := bytes.Repeat([]byte{5}, 4096)
	if err := s.WriteAt(fid(1), 0, payload); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	r := openT(t, Options{Dir: dir})
	defer r.Close()
	// Stage an overlay write before any read: the data file is not open
	// yet, and the read below must still serve the durable bytes.
	if err := r.WriteAt(fid(1), 10, []byte{0xAA, 0xBB}); err != nil {
		t.Fatal(err)
	}
	want := bytes.Repeat([]byte{5}, 4096)
	want[10], want[11] = 0xAA, 0xBB
	if got := readAll(t, r, 1, 0, 4096); !bytes.Equal(got, want) {
		t.Fatal("durable bytes hidden by post-reopen overlay write")
	}
}

// TestDeleteHeavyWorkloadCheckpoints: delete records must count toward
// the checkpoint trigger so the journal cannot grow without bound on a
// delete-only workload.
func TestDeleteHeavyWorkloadCheckpoints(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, Options{Dir: dir, FlushThreshold: 4 * deleteRecordCost})
	defer s.Close()
	for i := uint64(1); i <= 16; i++ {
		if err := s.WriteAt(fid(i), 0, []byte{1}); err != nil {
			t.Fatal(err)
		}
	}
	for i := uint64(1); i <= 16; i++ {
		if err := s.Delete(fid(i)); err != nil {
			t.Fatal(err)
		}
	}
	fi, err := os.Stat(filepath.Join(dir, journalName))
	if err != nil {
		t.Fatal(err)
	}
	// 16 deletes at FlushThreshold = 4 records: several checkpoints must
	// have fired, so the journal holds at most a threshold's worth.
	if fi.Size() > 4*deleteRecordCost {
		t.Fatalf("journal grew to %d bytes under delete-only load", fi.Size())
	}
}

func TestOpenRequiresDir(t *testing.T) {
	if _, err := Open(Options{}); err == nil {
		t.Fatal("Open without Dir succeeded")
	}
}
