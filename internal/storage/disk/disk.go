// Package disk is the iod's durable storage engine: a real on-disk
// backend behind storage.Backend, built on the BFile pattern — buffered
// writes with an in-memory dirty cache, flushed to shard-per-file data
// files on filesystem-friendly boundaries — fronted by a write-ahead
// journal so a crash mid-flush replays instead of corrupting.
//
// Layout: one directory per backend holding `f-<16 hex>.dat` (one data
// file per PVFS file ID, the shard-per-file split) plus `wal.log`. Every
// WriteAt appends a checksummed journal record and pushes it through the
// buffered writer to the operating system before acknowledging, then
// stages the bytes in an in-memory overlay; once the overlay passes
// Options.FlushThreshold the store checkpoints — applies the overlay to
// the data files with positional writes, fsyncs them, and truncates the
// journal. Reads serve from the data file with the overlay applied on
// top, so acknowledged bytes are always observable.
//
// Durability window: an acknowledged write survives a *process* crash
// unconditionally (its journal record reached the OS before the ack).
// What survives power loss is governed by Options.Fsync: SyncAlways
// fsyncs the journal every record, SyncInterval at most every
// FsyncInterval, SyncOnClose only at checkpoint/Sync/Close. Checkpoint
// always fsyncs data files and the backend directory (shard creations
// and unlinks) before truncating the journal, so the journal is never
// the only durable copy of applied records.
package disk

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"time"

	"pvfscache/internal/blockio"
	"pvfscache/internal/storage"
)

// Policy selects when the journal is fsynced.
type Policy int

const (
	// SyncOnClose (default) fsyncs only at checkpoint, Sync, and Close.
	// Fastest; power-loss window is everything since the last checkpoint.
	SyncOnClose Policy = iota
	// SyncInterval fsyncs the journal opportunistically once
	// Options.FsyncInterval has elapsed since the last sync.
	SyncInterval
	// SyncAlways fsyncs the journal on every write — the paper's O_SYNC
	// shape. Slowest, zero power-loss window.
	SyncAlways
)

// String returns the knob spelling accepted by ParsePolicy.
func (p Policy) String() string {
	switch p {
	case SyncInterval:
		return "interval"
	case SyncAlways:
		return "osync"
	default:
		return "onclose"
	}
}

// ParsePolicy maps the -fsync flag spellings onto a Policy.
func ParsePolicy(s string) (Policy, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "onclose", "on-close":
		return SyncOnClose, nil
	case "interval":
		return SyncInterval, nil
	case "osync", "always":
		return SyncAlways, nil
	}
	return SyncOnClose, fmt.Errorf("disk: unknown fsync policy %q (want osync, interval, or onclose)", s)
}

// Options configures a Store.
type Options struct {
	// Dir is the backend's directory; created if absent.
	Dir string
	// Fsync is the journal fsync policy (default SyncOnClose).
	Fsync Policy
	// FsyncInterval bounds the power-loss window under SyncInterval
	// (default 100ms).
	FsyncInterval time.Duration
	// FlushThreshold is the overlay size (bytes) that triggers a
	// checkpoint to the data files (default 1 MiB — the
	// filesystem-friendly boundary: one large positional write burst
	// per file instead of per-strip dribble).
	FlushThreshold int64
}

const (
	defaultFsyncInterval  = 100 * time.Millisecond
	defaultFlushThreshold = 1 << 20

	journalName = "wal.log"
	dataPrefix  = "f-"
	dataSuffix  = ".dat"
)

// pwrite is one staged overlay write, applied over the data file in
// append order on reads and at checkpoint.
type pwrite struct {
	off  int64
	data []byte
}

// file is the in-memory state for one shard file.
type file struct {
	f       *os.File // lazily opened data file handle
	size    int64    // logical size: data file extent + staged overlay
	pending []pwrite // overlay not yet applied to the data file
}

// Store is the on-disk storage.Backend. All operations serialize on one
// mutex: the iod already fans work out per daemon, and the engine's hot
// cost is the journal append, which must be ordered anyway.
type Store struct {
	mu           sync.Mutex
	dir          string
	opts         Options
	files        map[blockio.FileID]*file
	journal      *os.File
	jw           *bufio.Writer
	pendingBytes int64
	lastSync     time.Time
	recovered    int
	crashed      bool
	closed       bool
}

var (
	_ storage.Backend = (*Store)(nil)
	_ storage.Crasher = (*Store)(nil)
)

// ErrCrashed is returned by every operation after Crash.
var ErrCrashed = errors.New("disk backend: crashed")

// Open opens (or creates) the backend in opts.Dir, replaying any
// journal left by a crash before returning. After Open the journal is
// empty and every recovered byte is durable in the data files.
func Open(opts Options) (*Store, error) {
	if opts.Dir == "" {
		return nil, errors.New("disk: Options.Dir is required")
	}
	if opts.FsyncInterval <= 0 {
		opts.FsyncInterval = defaultFsyncInterval
	}
	if opts.FlushThreshold <= 0 {
		opts.FlushThreshold = defaultFlushThreshold
	}
	if err := os.MkdirAll(opts.Dir, 0o777); err != nil {
		return nil, err
	}
	s := &Store{
		dir:      opts.Dir,
		opts:     opts,
		files:    make(map[blockio.FileID]*file),
		lastSync: time.Now(),
	}
	if err := s.scanDataFiles(); err != nil {
		return nil, err
	}
	j, err := os.OpenFile(filepath.Join(opts.Dir, journalName), os.O_RDWR|os.O_CREATE, 0o666)
	if err != nil {
		s.closeFiles()
		return nil, err
	}
	s.journal = j
	if err := s.replay(); err != nil {
		j.Close()
		s.closeFiles()
		return nil, err
	}
	s.jw = bufio.NewWriter(j)
	return s, nil
}

// scanDataFiles registers every existing shard file and its on-disk
// size.
func (s *Store) scanDataFiles() error {
	ents, err := os.ReadDir(s.dir)
	if err != nil {
		return err
	}
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasPrefix(name, dataPrefix) || !strings.HasSuffix(name, dataSuffix) {
			continue
		}
		hex := strings.TrimSuffix(strings.TrimPrefix(name, dataPrefix), dataSuffix)
		id, err := strconv.ParseUint(hex, 16, 64)
		if err != nil {
			continue // not ours
		}
		info, err := e.Info()
		if err != nil {
			return err
		}
		s.files[blockio.FileID(id)] = &file{size: info.Size()}
	}
	return nil
}

// replay applies the journal's valid prefix to the data files, fsyncs
// them, and truncates the journal. A torn tail (crash mid-append) ends
// the prefix cleanly: every record past it was never acknowledged.
func (s *Store) replay() error {
	if _, err := s.journal.Seek(0, io.SeekStart); err != nil {
		return err
	}
	r := bufio.NewReader(s.journal)
	touched := make(map[blockio.FileID]bool)
	for {
		rec, err := readRecord(r)
		if err == io.EOF || err == errTorn {
			break
		}
		if err != nil {
			return err
		}
		id := blockio.FileID(rec.id)
		switch rec.kind {
		case recWrite:
			f := s.files[id]
			if f == nil {
				f = &file{}
				s.files[id] = f
			}
			df, err := s.ensureData(id, f)
			if err != nil {
				return err
			}
			if _, err := df.WriteAt(rec.data, rec.off); err != nil {
				return err
			}
			if end := rec.off + int64(len(rec.data)); end > f.size {
				f.size = end
			}
			touched[id] = true
		case recDelete:
			if err := s.removeLocked(id); err != nil {
				return err
			}
			delete(touched, id)
		}
		s.recovered++
	}
	for id := range touched {
		if f := s.files[id]; f != nil && f.f != nil {
			if err := f.f.Sync(); err != nil {
				return err
			}
		}
	}
	// Replayed shard creations and unlinks must be durable in the
	// directory before the journal is discarded.
	if err := s.syncDir(); err != nil {
		return err
	}
	if err := s.journal.Truncate(0); err != nil {
		return err
	}
	if _, err := s.journal.Seek(0, io.SeekStart); err != nil {
		return err
	}
	return s.journal.Sync()
}

// Recovered reports how many journal records the last Open replayed.
func (s *Store) Recovered() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.recovered
}

// Dir returns the backend's directory.
func (s *Store) Dir() string { return s.dir }

func (s *Store) dataPath(id blockio.FileID) string {
	return filepath.Join(s.dir, fmt.Sprintf("%s%016x%s", dataPrefix, uint64(id), dataSuffix))
}

// ensureData lazily opens f's shard file.
func (s *Store) ensureData(id blockio.FileID, f *file) (*os.File, error) {
	if f.f != nil {
		return f.f, nil
	}
	df, err := os.OpenFile(s.dataPath(id), os.O_RDWR|os.O_CREATE, 0o666)
	if err != nil {
		return nil, err
	}
	f.f = df
	return df, nil
}

func (s *Store) state() error {
	if s.crashed {
		return ErrCrashed
	}
	if s.closed {
		return os.ErrClosed
	}
	return nil
}

// journalAppend writes one record, pushes it to the OS, and applies the
// fsync policy. Called with s.mu held, before the operation is staged.
func (s *Store) journalAppend(rec record) error {
	if err := appendRecord(s.jw, rec); err != nil {
		return err
	}
	// Flush the bufio layer every record: once the bytes are in the OS
	// the ack survives a process crash regardless of fsync policy.
	if err := s.jw.Flush(); err != nil {
		return err
	}
	switch s.opts.Fsync {
	case SyncAlways:
		if err := s.journal.Sync(); err != nil {
			return err
		}
		s.lastSync = time.Now()
	case SyncInterval:
		if time.Since(s.lastSync) >= s.opts.FsyncInterval {
			if err := s.journal.Sync(); err != nil {
				return err
			}
			s.lastSync = time.Now()
		}
	}
	return nil
}

// WriteAt implements storage.Backend: journal, stage in the overlay,
// checkpoint when the overlay crosses the flush threshold.
func (s *Store) WriteAt(id blockio.FileID, off int64, p []byte) error {
	if len(p) == 0 {
		return nil
	}
	if off < 0 {
		return fmt.Errorf("disk: negative offset %d", off)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.state(); err != nil {
		return err
	}
	if err := s.journalAppend(record{kind: recWrite, id: uint64(id), off: off, data: p}); err != nil {
		return err
	}
	f := s.files[id]
	if f == nil {
		f = &file{}
		s.files[id] = f
	}
	// Copy: the iod hands us pooled buffers it reuses after the ack.
	buf := make([]byte, len(p))
	copy(buf, p)
	f.pending = append(f.pending, pwrite{off: off, data: buf})
	s.pendingBytes += int64(len(buf))
	if end := off + int64(len(p)); end > f.size {
		f.size = end
	}
	if s.pendingBytes >= s.opts.FlushThreshold {
		return s.checkpointLocked()
	}
	return nil
}

// checkpointLocked applies every staged overlay to the data files,
// fsyncs them, and truncates the journal. Order matters: data files
// must be durable before the journal (their only other copy) is
// discarded.
func (s *Store) checkpointLocked() error {
	if s.pendingBytes == 0 {
		// Still sync the journal so Sync()/Close() honor their durability
		// promise even when nothing is staged.
		if err := s.journal.Sync(); err != nil {
			return err
		}
		s.lastSync = time.Now()
		return nil
	}
	touched := make([]*os.File, 0, len(s.files))
	for id, f := range s.files {
		if len(f.pending) == 0 {
			continue
		}
		df, err := s.ensureData(id, f)
		if err != nil {
			return err
		}
		for _, w := range f.pending {
			if _, err := df.WriteAt(w.data, w.off); err != nil {
				return err
			}
		}
		// Settle the counter per file: on a mid-loop error the remaining
		// overlays are still staged and must keep counting toward the
		// next flush, while cleared ones must not.
		s.pendingBytes -= pendingSize(f)
		f.pending = nil
		touched = append(touched, df)
	}
	for _, df := range touched {
		if err := df.Sync(); err != nil {
			return err
		}
	}
	// Shard-file creations and unlinks since the last checkpoint must be
	// durable in the directory before the journal — their only other
	// copy — is discarded.
	if err := s.syncDir(); err != nil {
		return err
	}
	if err := s.journal.Truncate(0); err != nil {
		return err
	}
	if _, err := s.journal.Seek(0, io.SeekStart); err != nil {
		return err
	}
	if err := s.journal.Sync(); err != nil {
		return err
	}
	s.jw.Reset(s.journal)
	// Every overlay was applied and the journal is empty: clear whatever
	// the counter still carries (the nominal delete-record costs).
	s.pendingBytes = 0
	s.lastSync = time.Now()
	return nil
}

// syncDir fsyncs the backend directory so shard-file creations and
// unlinks survive power loss, not just a process crash.
func (s *Store) syncDir() error {
	d, err := os.Open(s.dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// ReadAt implements storage.Backend: data file bytes with the staged
// overlay applied in write order on top. Short reads past the logical
// size, nil error, absent files read zero bytes — simdisk semantics.
func (s *Store) ReadAt(id blockio.FileID, off int64, p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.state(); err != nil {
		return 0, err
	}
	f := s.files[id]
	if f == nil || off >= f.size {
		return 0, nil
	}
	n := len(p)
	if rem := f.size - off; int64(n) > rem {
		n = int(rem)
	}
	out := p[:n]
	clear(out) // sparse gaps and unwritten data-file tail read as zero
	if f.f == nil {
		// The entry may come from the directory scan (reopened store), in
		// which case the shard file holds durable bytes outside the
		// overlay — open it regardless of staged writes. For a brand-new
		// file O_CREATE makes an empty shard, which reads as zeros.
		if _, err := s.ensureData(id, f); err != nil {
			return 0, err
		}
	}
	if _, err := f.f.ReadAt(out, off); err != nil && err != io.EOF {
		return 0, err
	}
	end := off + int64(n)
	for _, w := range f.pending {
		lo, hi := w.off, w.off+int64(len(w.data))
		if lo < off {
			lo = off
		}
		if hi > end {
			hi = end
		}
		if lo < hi {
			copy(out[lo-off:hi-off], w.data[lo-w.off:hi-w.off])
		}
	}
	return n, nil
}

// Size implements storage.Backend.
func (s *Store) Size(id blockio.FileID) (int64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.state(); err != nil {
		return 0, err
	}
	f := s.files[id]
	if f == nil {
		return 0, nil
	}
	return f.size, nil
}

// removeLocked drops a file's in-memory state and its shard file.
func (s *Store) removeLocked(id blockio.FileID) error {
	f := s.files[id]
	if f == nil {
		return nil
	}
	s.pendingBytes -= pendingSize(f)
	if f.f != nil {
		f.f.Close()
	}
	delete(s.files, id)
	if err := os.Remove(s.dataPath(id)); err != nil && !os.IsNotExist(err) {
		return err
	}
	return nil
}

func pendingSize(f *file) int64 {
	var n int64
	for _, w := range f.pending {
		n += int64(len(w.data))
	}
	return n
}

// deleteRecordCost is the nominal weight a delete record adds toward
// the checkpoint trigger. Deletes stage no overlay bytes, but each one
// still grows the journal; without a charge a delete-heavy workload
// would never checkpoint and the journal would grow until Sync/Close.
const deleteRecordCost = 4096

// Delete implements storage.Backend. The mutex linearizes Delete
// against WriteAt, satisfying the ordering contract by construction.
func (s *Store) Delete(id blockio.FileID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.state(); err != nil {
		return err
	}
	if err := s.journalAppend(record{kind: recDelete, id: uint64(id)}); err != nil {
		return err
	}
	if err := s.removeLocked(id); err != nil {
		return err
	}
	s.pendingBytes += deleteRecordCost
	if s.pendingBytes >= s.opts.FlushThreshold {
		return s.checkpointLocked()
	}
	return nil
}

// Sync implements storage.Backend: a full checkpoint, after which every
// acknowledged write is durable in the data files regardless of policy.
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.state(); err != nil {
		return err
	}
	return s.checkpointLocked()
}

func (s *Store) closeFiles() {
	for _, f := range s.files {
		if f.f != nil {
			f.f.Close()
			f.f = nil
		}
	}
}

// Close implements storage.Backend: checkpoint, then release every
// handle.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed || s.crashed {
		return nil
	}
	err := s.checkpointLocked()
	s.closeFiles()
	if cerr := s.journal.Close(); err == nil {
		err = cerr
	}
	s.closed = true
	return err
}

// Crash implements storage.Crasher: fail-stop. Handles close without a
// checkpoint and the overlay is dropped — exactly the state a killed
// process leaves. The journal keeps every acknowledged record (each was
// pushed to the OS before its ack), so Open on the same directory
// recovers byte-for-byte.
func (s *Store) Crash() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.crashed || s.closed {
		return nil
	}
	s.crashed = true
	s.closeFiles()
	s.files = nil
	s.pendingBytes = 0
	return s.journal.Close()
}

// Files returns the number of files with stored data.
func (s *Store) Files() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.files)
}
