package storage_test

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"pvfscache/internal/blockio"
	"pvfscache/internal/storage"
	"pvfscache/internal/storage/disk"
	"pvfscache/internal/storage/mem"
)

// backends returns a factory per implementation; every contract test
// runs against both so the two backends cannot drift apart on
// semantics the iod depends on.
func backends(t *testing.T) map[string]func(t *testing.T) storage.Backend {
	return map[string]func(t *testing.T) storage.Backend{
		"mem": func(t *testing.T) storage.Backend { return mem.New() },
		"disk": func(t *testing.T) storage.Backend {
			s, err := disk.Open(disk.Options{Dir: t.TempDir()})
			if err != nil {
				t.Fatalf("disk.Open: %v", err)
			}
			return s
		},
		// A small flush threshold forces checkpoints mid-test, so reads
		// exercise the data-file + overlay merge path, not just the overlay.
		"disk-tiny-threshold": func(t *testing.T) storage.Backend {
			s, err := disk.Open(disk.Options{Dir: t.TempDir(), FlushThreshold: 512})
			if err != nil {
				t.Fatalf("disk.Open: %v", err)
			}
			return s
		},
	}
}

func runContract(t *testing.T, name string, fn func(t *testing.T, b storage.Backend)) {
	for impl, mk := range backends(t) {
		t.Run(name+"/"+impl, func(t *testing.T) {
			b := mk(t)
			defer b.Close()
			fn(t, b)
		})
	}
}

func TestContractAbsentFile(t *testing.T) {
	runContract(t, "absent", func(t *testing.T, b storage.Backend) {
		buf := make([]byte, 64)
		if n, err := b.ReadAt(99, 0, buf); n != 0 || err != nil {
			t.Fatalf("ReadAt(absent) = %d, %v; want 0, nil", n, err)
		}
		if sz, err := b.Size(99); sz != 0 || err != nil {
			t.Fatalf("Size(absent) = %d, %v; want 0, nil", sz, err)
		}
		if err := b.Delete(99); err != nil {
			t.Fatalf("Delete(absent) = %v; want nil", err)
		}
	})
}

func TestContractSparseGapReadsZero(t *testing.T) {
	runContract(t, "sparse", func(t *testing.T, b storage.Backend) {
		head := []byte("head-bytes")
		tail := []byte("tail-bytes")
		const gapAt = 8192
		if err := b.WriteAt(1, 0, head); err != nil {
			t.Fatal(err)
		}
		if err := b.WriteAt(1, gapAt, tail); err != nil {
			t.Fatal(err)
		}
		if sz, _ := b.Size(1); sz != gapAt+int64(len(tail)) {
			t.Fatalf("Size = %d, want %d", sz, gapAt+len(tail))
		}
		got := make([]byte, gapAt+len(tail))
		for i := range got {
			got[i] = 0xAA // poison: zeros must come from the backend
		}
		n, err := b.ReadAt(1, 0, got)
		if err != nil || n != len(got) {
			t.Fatalf("ReadAt = %d, %v", n, err)
		}
		if !bytes.Equal(got[:len(head)], head) {
			t.Fatalf("head = %q", got[:len(head)])
		}
		for i := len(head); i < gapAt; i++ {
			if got[i] != 0 {
				t.Fatalf("gap byte %d = %#x, want 0", i, got[i])
			}
		}
		if !bytes.Equal(got[gapAt:], tail) {
			t.Fatalf("tail = %q", got[gapAt:])
		}
	})
}

func TestContractShortReadPastEOF(t *testing.T) {
	runContract(t, "shortread", func(t *testing.T, b storage.Backend) {
		data := []byte("0123456789")
		if err := b.WriteAt(2, 0, data); err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, 64)
		if n, err := b.ReadAt(2, 0, buf); n != len(data) || err != nil {
			t.Fatalf("ReadAt over EOF = %d, %v; want %d, nil", n, err, len(data))
		}
		if !bytes.Equal(buf[:len(data)], data) {
			t.Fatalf("data = %q", buf[:len(data)])
		}
		if n, err := b.ReadAt(2, 4, buf); n != len(data)-4 || err != nil {
			t.Fatalf("ReadAt mid = %d, %v; want %d, nil", n, err, len(data)-4)
		}
		if n, err := b.ReadAt(2, int64(len(data)), buf); n != 0 || err != nil {
			t.Fatalf("ReadAt at EOF = %d, %v; want 0, nil", n, err)
		}
		if n, err := b.ReadAt(2, 1000, buf); n != 0 || err != nil {
			t.Fatalf("ReadAt past EOF = %d, %v; want 0, nil", n, err)
		}
	})
}

func TestContractOverwrite(t *testing.T) {
	runContract(t, "overwrite", func(t *testing.T, b storage.Backend) {
		if err := b.WriteAt(3, 0, bytes.Repeat([]byte{1}, 100)); err != nil {
			t.Fatal(err)
		}
		if err := b.WriteAt(3, 25, bytes.Repeat([]byte{2}, 50)); err != nil {
			t.Fatal(err)
		}
		got := make([]byte, 100)
		if n, _ := b.ReadAt(3, 0, got); n != 100 {
			t.Fatalf("n = %d", n)
		}
		for i, v := range got {
			want := byte(1)
			if i >= 25 && i < 75 {
				want = 2
			}
			if v != want {
				t.Fatalf("byte %d = %d, want %d", i, v, want)
			}
		}
		if sz, _ := b.Size(3); sz != 100 {
			t.Fatalf("Size = %d after interior overwrite, want 100", sz)
		}
	})
}

func TestContractConcurrentExtendingWrites(t *testing.T) {
	runContract(t, "concurrent-extend", func(t *testing.T, b storage.Backend) {
		const (
			writers = 4
			chunks  = 32
			chunk   = 1024
		)
		var wg sync.WaitGroup
		for w := 0; w < writers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				buf := make([]byte, chunk)
				for c := 0; c < chunks; c++ {
					idx := c*writers + w // interleaved so extension order races
					for i := range buf {
						buf[i] = byte(idx)
					}
					if err := b.WriteAt(4, int64(idx)*chunk, buf); err != nil {
						t.Errorf("WriteAt(%d): %v", idx, err)
						return
					}
				}
			}(w)
		}
		wg.Wait()
		if t.Failed() {
			return
		}
		total := writers * chunks
		if sz, _ := b.Size(4); sz != int64(total*chunk) {
			t.Fatalf("Size = %d, want %d", sz, total*chunk)
		}
		got := make([]byte, chunk)
		for idx := 0; idx < total; idx++ {
			if n, err := b.ReadAt(4, int64(idx)*chunk, got); n != chunk || err != nil {
				t.Fatalf("ReadAt(%d) = %d, %v", idx, n, err)
			}
			for i, v := range got {
				if v != byte(idx) {
					t.Fatalf("chunk %d byte %d = %d, want %d", idx, i, v, byte(idx))
				}
			}
		}
	})
}

func TestContractSizeDeleteOrdering(t *testing.T) {
	runContract(t, "delete-ordering", func(t *testing.T, b storage.Backend) {
		if err := b.WriteAt(5, 0, []byte("doomed")); err != nil {
			t.Fatal(err)
		}
		if err := b.Delete(5); err != nil {
			t.Fatal(err)
		}
		// Once Delete returned, the file is absent.
		if sz, _ := b.Size(5); sz != 0 {
			t.Fatalf("Size after Delete = %d, want 0", sz)
		}
		buf := make([]byte, 16)
		if n, _ := b.ReadAt(5, 0, buf); n != 0 {
			t.Fatalf("ReadAt after Delete = %d, want 0", n)
		}
		// A write issued after Delete returned recreates the file — the
		// ordering contract's core clause.
		if err := b.WriteAt(5, 0, []byte("reborn")); err != nil {
			t.Fatal(err)
		}
		if n, _ := b.ReadAt(5, 0, buf); n != 6 || !bytes.Equal(buf[:6], []byte("reborn")) {
			t.Fatalf("write after delete not observable: %d %q", n, buf[:n])
		}
	})
}

// TestContractDeleteWriteRaceStress is the cross-backend half of the
// PR 8 delete/write race regression: racing writers and deleters must
// never strand an acknowledged write on a detached object, and a write
// issued after the race quiesces must always be observable.
func TestContractDeleteWriteRaceStress(t *testing.T) {
	runContract(t, "delete-race", func(t *testing.T, b storage.Backend) {
		var wg sync.WaitGroup
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				buf := make([]byte, 128)
				for i := 0; i < 200; i++ {
					switch (g + i) % 3 {
					case 0:
						if err := b.WriteAt(6, int64(i%4)*128, buf); err != nil {
							t.Errorf("WriteAt: %v", err)
							return
						}
					case 1:
						if err := b.Delete(6); err != nil {
							t.Errorf("Delete: %v", err)
							return
						}
					default:
						if _, err := b.ReadAt(6, 0, buf); err != nil {
							t.Errorf("ReadAt: %v", err)
							return
						}
					}
				}
			}(g)
		}
		wg.Wait()
		if t.Failed() {
			return
		}
		final := []byte("must-survive")
		if err := b.WriteAt(6, 0, final); err != nil {
			t.Fatal(err)
		}
		got := make([]byte, len(final))
		if n, _ := b.ReadAt(6, 0, got); n != len(final) || !bytes.Equal(got, final) {
			t.Fatalf("final write vanished: %d %q", n, got[:n])
		}
	})
}

func TestContractManyFiles(t *testing.T) {
	runContract(t, "many-files", func(t *testing.T, b storage.Backend) {
		for id := blockio.FileID(1); id <= 16; id++ {
			payload := []byte(fmt.Sprintf("file-%d", id))
			if err := b.WriteAt(id, int64(id)*32, payload); err != nil {
				t.Fatal(err)
			}
		}
		if err := b.Sync(); err != nil {
			t.Fatalf("Sync: %v", err)
		}
		for id := blockio.FileID(1); id <= 16; id++ {
			want := []byte(fmt.Sprintf("file-%d", id))
			got := make([]byte, len(want))
			if n, err := b.ReadAt(id, int64(id)*32, got); n != len(want) || err != nil || !bytes.Equal(got, want) {
				t.Fatalf("file %d: %d %v %q", id, n, err, got[:n])
			}
		}
	})
}
