package storage

import (
	"sync"

	"pvfscache/internal/blockio"
)

// Faulty wraps a Backend with a switchable error: while SetErr holds a
// non-nil error every write, sync and read fails with it, modelling a
// failing disk. Tests use it to drive the iod's StatusIOError ack path
// and the flush streams' re-queue/backoff machinery — the in-memory
// backend cannot fail on its own.
type Faulty struct {
	inner Backend

	mu  sync.Mutex
	err error
}

// NewFaulty wraps b; the backend starts healthy.
func NewFaulty(b Backend) *Faulty { return &Faulty{inner: b} }

// SetErr installs the error every subsequent operation returns; nil
// heals the backend.
func (f *Faulty) SetErr(err error) {
	f.mu.Lock()
	f.err = err
	f.mu.Unlock()
}

func (f *Faulty) fail() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.err
}

// WriteAt implements Backend.
func (f *Faulty) WriteAt(id blockio.FileID, off int64, p []byte) error {
	if err := f.fail(); err != nil {
		return err
	}
	return f.inner.WriteAt(id, off, p)
}

// ReadAt implements Backend.
func (f *Faulty) ReadAt(id blockio.FileID, off int64, p []byte) (int, error) {
	if err := f.fail(); err != nil {
		return 0, err
	}
	return f.inner.ReadAt(id, off, p)
}

// Size implements Backend.
func (f *Faulty) Size(id blockio.FileID) (int64, error) {
	if err := f.fail(); err != nil {
		return 0, err
	}
	return f.inner.Size(id)
}

// Delete implements Backend.
func (f *Faulty) Delete(id blockio.FileID) error {
	if err := f.fail(); err != nil {
		return err
	}
	return f.inner.Delete(id)
}

// Sync implements Backend.
func (f *Faulty) Sync() error {
	if err := f.fail(); err != nil {
		return err
	}
	return f.inner.Sync()
}

// Close implements Backend. Close always reaches the inner backend so
// tests can clean up a backend they broke.
func (f *Faulty) Close() error { return f.inner.Close() }
