// Package mem adapts simdisk.Store — the in-memory sparse-file store
// the system has always run on — to the storage.Backend interface. It
// is the default backend: tests, benchmarks, and the discrete-event
// simulator keep their bit-identical figures, and none of its
// operations can fail. Durability is explicitly nil: the documented
// durability window of this backend is "until the process exits", and
// Crash models exactly that by discarding the store.
package mem

import (
	"errors"
	"sync/atomic"

	"pvfscache/internal/blockio"
	"pvfscache/internal/simdisk"
	"pvfscache/internal/storage"
)

// Backend wraps a simdisk.Store. The store pointer is swapped
// atomically by Crash so a crashed backend fails fast instead of
// serving stale bytes.
type Backend struct {
	store atomic.Pointer[simdisk.Store]
}

var (
	_ storage.Backend = (*Backend)(nil)
	_ storage.Crasher = (*Backend)(nil)
)

// ErrCrashed is returned by every operation after Crash.
var ErrCrashed = errors.New("mem backend: crashed")

// New returns a backend over a fresh empty store.
func New() *Backend { return Wrap(simdisk.NewStore()) }

// Wrap returns a backend over an existing store (shared with callers
// that still poke the store directly, e.g. DES setup code).
func Wrap(s *simdisk.Store) *Backend {
	b := &Backend{}
	b.store.Store(s)
	return b
}

// Store exposes the underlying simdisk store, or nil after Crash.
func (b *Backend) Store() *simdisk.Store { return b.store.Load() }

// WriteAt implements storage.Backend.
func (b *Backend) WriteAt(id blockio.FileID, off int64, p []byte) error {
	s := b.store.Load()
	if s == nil {
		return ErrCrashed
	}
	s.WriteAt(id, off, p)
	return nil
}

// ReadAt implements storage.Backend.
func (b *Backend) ReadAt(id blockio.FileID, off int64, p []byte) (int, error) {
	s := b.store.Load()
	if s == nil {
		return 0, ErrCrashed
	}
	return s.ReadAt(id, off, p), nil
}

// Size implements storage.Backend.
func (b *Backend) Size(id blockio.FileID) (int64, error) {
	s := b.store.Load()
	if s == nil {
		return 0, ErrCrashed
	}
	return s.Size(id), nil
}

// Delete implements storage.Backend.
func (b *Backend) Delete(id blockio.FileID) error {
	s := b.store.Load()
	if s == nil {
		return ErrCrashed
	}
	s.Delete(id)
	return nil
}

// Sync implements storage.Backend: memory has nothing to make durable.
func (b *Backend) Sync() error {
	if b.store.Load() == nil {
		return ErrCrashed
	}
	return nil
}

// Close implements storage.Backend.
func (b *Backend) Close() error { return nil }

// Crash implements storage.Crasher: the process died and memory is
// gone. Every later operation fails with ErrCrashed; a "restarted"
// daemon gets a fresh empty backend and has lost every byte — which is
// exactly why the chaos restart fault requires the disk backend.
func (b *Backend) Crash() error {
	b.store.Store(nil)
	return nil
}
