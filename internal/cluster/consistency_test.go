package cluster

// End-to-end consistency oracle: a randomized mixed read/write/flush
// workload runs against the live cluster while an in-memory reference
// image of the file is maintained alongside. Every read is checked
// byte-for-byte against the reference, and after a final flush the file is
// re-read through a direct (uncached) client to prove the bytes the iods
// hold equal the reference too. The same seeded workload runs with the
// single-mutex ablation (CacheShards=1) and the lock-striped manager:
// sharding is a locking change, so the two runs must be externally
// indistinguishable — identical bytes at every step.

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"pvfscache/internal/pvfs"
	"pvfscache/internal/testseed"
)

const (
	oracleFileSize = 1 << 20 // 1 MB reference image
	oracleOps      = 400
	oracleMaxIO    = 48 << 10 // up to 48 KB per operation (unaligned)
)

// runConsistencyOracle drives the seeded workload against a cluster with
// the given shard count and returns the final durable file image as read
// back through an uncached client.
func runConsistencyOracle(t *testing.T, shards int, seed int64) []byte {
	return runConsistencyOracleCfg(t, shards, seed, nil)
}

// runConsistencyOracleCfg is runConsistencyOracle with a config hook, so
// the same seeded workload can judge alternative cluster shapes (the
// disk backend, notably) byte-for-byte.
func runConsistencyOracleCfg(t *testing.T, shards int, seed int64, edit func(*Config)) []byte {
	t.Helper()
	cfg := Config{
		IODs:        3, // odd iod count exercises uneven striping
		ClientNodes: 1,
		Caching:     true,
		CacheBlocks: 48, // 192 KB cache against a 1 MB file: heavy eviction
		CacheShards: shards,
		FlushPeriod: 5 * time.Millisecond,
	}
	if edit != nil {
		edit(&cfg)
	}
	c := startTest(t, cfg)
	p, err := c.NewProcess(0)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	name := fmt.Sprintf("oracle-%d.dat", shards)
	f, err := p.Create(name, pvfs.StripeSpec{SSize: 16 << 10})
	if err != nil {
		t.Fatal(err)
	}

	// Pre-size the file with a zero image so random reads never cross EOF;
	// the reference starts as the same zeros.
	ref := make([]byte, oracleFileSize)
	if n, err := f.WriteAt(ref, 0); err != nil || n != oracleFileSize {
		t.Fatalf("pre-size write: n=%d err=%v", n, err)
	}
	rng := rand.New(rand.NewSource(seed))
	scratch := make([]byte, oracleMaxIO)
	for i := 0; i < oracleOps; i++ {
		off := int64(rng.Intn(oracleFileSize - 1))
		length := 1 + rng.Intn(oracleMaxIO)
		if off+int64(length) > oracleFileSize {
			length = int(oracleFileSize - off)
		}
		switch op := rng.Intn(10); {
		case op < 5: // write random bytes, mirrored into the reference
			data := scratch[:length]
			rng.Read(data)
			if n, err := f.WriteAt(data, off); err != nil || n != length {
				t.Fatalf("op %d: write n=%d err=%v", i, n, err)
			}
			copy(ref[off:], data)
		case op < 9: // read and compare byte-for-byte (unwritten bytes are zero)
			got := scratch[:length]
			if n, err := f.ReadAt(got, off); err != nil || n != length {
				t.Fatalf("op %d: read n=%d err=%v", i, n, err)
			}
			if !bytes.Equal(got, ref[off:off+int64(length)]) {
				t.Fatalf("op %d: read at %d+%d diverged from reference (shards=%d)",
					i, off, length, shards)
			}
		default: // flush everything dirty to the iods mid-workload
			if err := c.Module(0).FlushAll(); err != nil {
				t.Fatalf("op %d: flush: %v", i, err)
			}
		}
	}
	if err := c.Module(0).FlushAll(); err != nil {
		t.Fatal(err)
	}

	// Read the durable image back through a direct client — no cache
	// module in the path, so these are the bytes the iods actually hold.
	direct, err := pvfs.NewClient(pvfs.Config{
		Network:  c.Network,
		MgrAddr:  c.MgrAddr,
		IODAddrs: c.IODDataAddrs,
		ClientID: 999,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer direct.Close()
	df, err := direct.Open(name)
	if err != nil {
		t.Fatal(err)
	}
	final := make([]byte, oracleFileSize)
	if _, err := df.ReadAt(final, 0); err != nil {
		t.Fatalf("direct read-back: %v", err)
	}
	if !bytes.Equal(final, ref) {
		t.Fatalf("durable image diverged from reference (shards=%d)", shards)
	}
	return final
}

func TestConsistencyOracleShardedMatchesSingleShard(t *testing.T) {
	seed := testseed.Base(t)
	single := runConsistencyOracle(t, 1, seed)
	sharded := runConsistencyOracle(t, 8, seed)
	if !bytes.Equal(single, sharded) {
		t.Fatal("sharded and single-shard runs produced different bytes")
	}
}
