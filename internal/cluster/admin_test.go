package cluster

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"pvfscache/internal/pvfs"
)

// adminGet fetches one admin endpoint path and returns the body.
func adminGet(t *testing.T, addr, path string) string {
	t.Helper()
	resp, err := http.Get("http://" + addr + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read body: %v", path, err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d: %s", path, resp.StatusCode, body)
	}
	return string(body)
}

// TestAdminScrapeE2E boots a live cluster with admin endpoints on real TCP
// sockets and scrapes it exactly as a Prometheus agent would: per-tenant
// series must appear with labels, /healthz must answer, and trace mode
// must capture a request end to end over HTTP. With METRICS_DUMP_DIR set
// the scraped text is written out as a CI artifact.
func TestAdminScrapeE2E(t *testing.T) {
	c, err := Start(Config{
		IODs:        2,
		ClientNodes: 1,
		Caching:     true,
		FlushPeriod: time.Hour, // keep dirty residency visible at scrape time
		AdminAddr:   "127.0.0.1:0",
	})
	if err != nil {
		if strings.Contains(err.Error(), "admin endpoint") {
			t.Skipf("no TCP loopback available: %v", err)
		}
		t.Fatalf("start: %v", err)
	}
	defer c.Close()
	if len(c.AdminAddrs) != 1 || c.AdminAddrs[0] == "" {
		t.Fatalf("AdminAddrs = %v, want one bound address", c.AdminAddrs)
	}
	addr := c.AdminAddrs[0]

	// Generate tagged traffic so the per-tenant series exist.
	p, err := c.NewProcess(0)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if _, err := p.Create("qos/tagged.dat", pvfs.StripeSpec{}); err != nil {
		t.Fatal(err)
	}
	f, err := p.OpenWithTenant("qos/tagged.dat", 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt(bytes.Repeat([]byte{0xBC}, 16<<10), 0); err != nil {
		t.Fatal(err)
	}

	if got := adminGet(t, addr, "/healthz"); !strings.Contains(got, "ok") {
		t.Fatalf("/healthz = %q", got)
	}

	body := adminGet(t, addr, "/metrics")
	for _, want := range []string{
		`module_tenant_dirty_blocks{node="0",tenant="2"}`,
		`module_dirty_blocks{node="0"}`,
		"module_writes_buffered",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("scrape missing %q; got:\n%s", want, body)
		}
	}

	if dir := os.Getenv("METRICS_DUMP_DIR"); dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatalf("metrics dump dir: %v", err)
		}
		path := filepath.Join(dir, "node0-metrics.prom")
		if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
			t.Fatalf("metrics dump: %v", err)
		}
		t.Logf("scraped metrics written to %s", path)
	}

	// Trace mode over HTTP: arm, run one request, drain.
	if got := adminGet(t, addr, "/trace?arm=2"); !strings.Contains(got, "armed 2") {
		t.Fatalf("/trace?arm=2 = %q", got)
	}
	buf := make([]byte, 4096)
	if _, err := f.ReadAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	trace := adminGet(t, addr, "/trace")
	if !strings.Contains(trace, fmt.Sprintf("file=%d", f.ID())) {
		t.Errorf("trace output missing the traced request:\n%s", trace)
	}
	if !strings.Contains(trace, "done:") {
		t.Errorf("trace output missing completion hop:\n%s", trace)
	}
}
