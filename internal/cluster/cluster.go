// Package cluster assembles a complete live system: one metadata server,
// a set of I/O daemons (each with a data port and a flush port), and a
// cache module per client node. It is the programmatic equivalent of
// booting the paper's 6-node testbed, over either the in-memory transport
// (tests, examples, benchmarks) or TCP (the cmd/ binaries).
package cluster

import (
	"errors"
	"fmt"
	"path/filepath"
	"strconv"
	"time"

	"pvfscache/internal/admin"
	"pvfscache/internal/cachemod"
	"pvfscache/internal/cachemod/buffer"
	"pvfscache/internal/globalcache"
	"pvfscache/internal/iod"
	"pvfscache/internal/metrics"
	"pvfscache/internal/mgr"
	"pvfscache/internal/pvfs"
	"pvfscache/internal/storage"
	"pvfscache/internal/storage/disk"
	"pvfscache/internal/storage/mem"
	"pvfscache/internal/transport"
)

// Config describes the cluster to boot.
type Config struct {
	// Network carries all traffic. Nil uses a fresh in-memory network.
	Network transport.Network
	// NodeNetwork, when set, supplies the Network a given client node's
	// traffic dials through (its cache module's iod connections and its
	// processes' mgr connections). Server listeners and iod-originated
	// dials keep using Network. The chaos harness uses this to give each
	// node a labeled fault-injection view of one underlying fabric, so
	// faults can partition node traffic directionally; outside of fault
	// injection leave it nil.
	NodeNetwork func(node int) transport.Network
	// IODs is the number of I/O daemons (default 4).
	IODs int
	// ClientNodes is the number of compute nodes that may run application
	// processes (default 2). Each gets its own cache module when Caching
	// is set.
	ClientNodes int
	// Caching enables the per-node cache module — the paper's "caching
	// version". When false the cluster behaves like original PVFS.
	Caching bool
	// BlockSize is the cache block size (default 4 KB).
	BlockSize int
	// CacheBlocks is the per-node cache capacity in blocks (default 300,
	// i.e. the paper's 1.2 MB).
	CacheBlocks int
	// CacheShards is the number of lock stripes in each node's buffer
	// manager (see buffer.Config.Shards: 0 picks a power of two ≥
	// GOMAXPROCS; 1 is the single-mutex ablation baseline).
	CacheShards int
	// FlushPeriod overrides the flush streams' interval (default 1s;
	// tests use shorter).
	FlushPeriod time.Duration
	// FlushStreams bounds how many per-iod flush streams drain
	// concurrently in each cache module (default: all iods in parallel;
	// 1 = the serial pre-pipeline drain, for ablation). See
	// cachemod.Config.FlushStreams.
	FlushStreams int
	// FlushWindow is each flush stream's bound on concurrent Flush
	// frames in flight (default 4; 1 = one blocking round trip at a
	// time, for ablation). See cachemod.Config.FlushWindow.
	FlushWindow int
	// Policy selects the replacement policy (default clock).
	Policy buffer.Policy
	// GhostFrac sizes each cache shard's ghost list as a fraction of its
	// capacity under the ghost policy (0 = default 1.0; negative disables
	// the ghost history). See buffer.Config.GhostFrac.
	GhostFrac float64
	// BypassThreshold is the sequential-streak length at which detected
	// streaming reads stop being admitted to the cache and are served
	// read-around instead (0 = disabled; per-open cache-policy hints
	// override it either way). See cachemod.Config.BypassThreshold.
	BypassThreshold int
	// DisableCoherence turns off invalidation listeners and registration.
	DisableCoherence bool
	// GlobalCache enables the cooperative global cache extension: node
	// caches serve each other misses before the iods are consulted. Each
	// module joins the mgr's epoch-versioned membership view, so nodes
	// added later (AddCacheNode) enter the ring live.
	GlobalCache bool
	// GCReplicas is how many ring members may hold a block's pushed copy
	// (0 = membership.DefaultReplicas). Reads fail over along this set.
	GCReplicas int
	// GCVNodes is the virtual nodes per member on the global-cache ring
	// (0 = membership.DefaultVNodes).
	GCVNodes int
	// RPCConns is the rpc connection-pool size each cache module keeps
	// per iod port (default rpc.DefaultConns). Raise it when many
	// processes per node keep independent requests in flight.
	RPCConns int
	// ReadaheadWindow is the cache modules' sequential-readahead depth in
	// blocks (default 8; negative disables readahead).
	ReadaheadWindow int
	// DisableVector reverts the cache modules to the legacy one-Read-per-
	// run miss path (ablation benchmarks).
	DisableVector bool
	// DisableZeroCopy reverts the cache modules to the copying data path:
	// response buffers are freshly allocated and copied into the caller's
	// memory instead of leased from pools and scattered directly (ablation
	// benchmarks).
	DisableZeroCopy bool
	// Backend selects the iods' storage engine: "" or "mem" for the
	// in-memory simdisk store, "disk" for the WAL-backed on-disk engine
	// (requires DataDir).
	Backend string
	// DataDir is the disk backend's root; each iod gets an `iod<N>`
	// subdirectory. Required when Backend is "disk". A directory left by
	// a previous (possibly crashed) cluster is recovered on boot.
	DataDir string
	// Fsync is the disk backend's journal fsync policy: "osync",
	// "interval", or "onclose" (default). See disk.ParsePolicy.
	Fsync string
	// FsyncInterval bounds the power-loss window under Fsync="interval"
	// (default 100ms).
	FsyncInterval time.Duration
	// WriteStall bounds how long a buffered write blocks waiting for cache
	// space before falling back to write-through (0 = cachemod default 2s).
	WriteStall time.Duration
	// TenantDirtyQuota bounds each tagged tenant's share of a node cache's
	// dirty frames; over-quota buffered writes shed with StatusOverload.
	// 0 (the default) disables quotas — required for oracle-checked chaos
	// runs, which assume no op errors without injected faults. See
	// cachemod.Config.TenantDirtyQuota.
	TenantDirtyQuota float64
	// TenantFetchBudget bounds each tagged tenant's in-flight read blocks
	// per node (0 = unlimited). See cachemod.Config.TenantFetchBudget.
	TenantFetchBudget int
	// OverloadStall is how long an over-quota write waits for flush
	// progress before shedding (0 = cachemod default).
	OverloadStall time.Duration
	// AdminAddr, when non-empty, starts one admin HTTP endpoint (metrics,
	// pprof, trace mode; see internal/admin) per caching client node on a
	// real TCP socket — even when the cluster itself runs the in-memory
	// transport. Use "127.0.0.1:0" to let each node pick a free port; the
	// bound addresses land in Cluster.AdminAddrs.
	AdminAddr string
	// Registry collects metrics from every component; nil creates one.
	Registry *metrics.Registry
}

// Cluster is a running system.
type Cluster struct {
	Network transport.Network
	Mgr     *mgr.Server
	IODs    []*iod.Server
	Modules []*cachemod.Module // indexed by client node; nil without caching
	Reg     *metrics.Registry

	// Admins holds each caching node's admin endpoint (nil entries when
	// Config.AdminAddr is empty); AdminAddrs the bound TCP addresses.
	Admins     []*admin.Server
	AdminAddrs []string

	MgrAddr       string
	IODDataAddrs  []string
	IODFlushAddrs []string

	// Backends holds each iod's storage backend; the cluster owns their
	// lifecycle (iod.Close never closes its backend) so CrashIOD /
	// RestartIOD can reboot a daemon onto recovered on-disk state.
	Backends []storage.Backend

	cfg       Config
	listeners []transport.Listener // mgr listener(s)
	iodPorts  []iodPort            // per-iod data + flush listeners
	nextProc  map[int]int
	nodeNet   func(node int) transport.Network
}

type iodPort struct {
	data, flush transport.Listener
}

// newBackend builds iod i's storage backend from the cluster config.
func newBackend(cfg Config, i int) (storage.Backend, error) {
	switch cfg.Backend {
	case "", "mem":
		return mem.New(), nil
	case "disk":
		if cfg.DataDir == "" {
			return nil, errors.New("cluster: Backend \"disk\" requires DataDir")
		}
		pol, err := disk.ParsePolicy(cfg.Fsync)
		if err != nil {
			return nil, err
		}
		return disk.Open(disk.Options{
			Dir:           filepath.Join(cfg.DataDir, fmt.Sprintf("iod%d", i)),
			Fsync:         pol,
			FsyncInterval: cfg.FsyncInterval,
		})
	}
	return nil, fmt.Errorf("cluster: unknown backend %q (want \"mem\" or \"disk\")", cfg.Backend)
}

// nodeNetwork resolves the Network a client node dials through.
func (c *Cluster) nodeNetwork(node int) transport.Network {
	if c.nodeNet != nil {
		if n := c.nodeNet(node); n != nil {
			return n
		}
	}
	return c.Network
}

// Start boots the cluster.
func Start(cfg Config) (*Cluster, error) {
	if cfg.Network == nil {
		cfg.Network = transport.NewMem()
	}
	if cfg.IODs <= 0 {
		cfg.IODs = 4
	}
	if cfg.ClientNodes <= 0 {
		cfg.ClientNodes = 2
	}
	if cfg.Registry == nil {
		cfg.Registry = metrics.NewRegistry()
	}
	c := &Cluster{
		Network:  cfg.Network,
		nodeNet:  cfg.NodeNetwork,
		Reg:      cfg.Registry,
		cfg:      cfg,
		nextProc: make(map[int]int),
	}

	// Metadata server.
	c.Mgr = mgr.New(cfg.IODs, cfg.Registry)
	ml, err := cfg.Network.Listen(":0")
	if err != nil {
		return nil, fmt.Errorf("cluster: mgr listener: %w", err)
	}
	c.listeners = append(c.listeners, ml)
	c.MgrAddr = ml.Addr()
	go c.Mgr.Serve(ml)

	// I/O daemons: a data port and a flush port each, over a storage
	// backend the cluster owns (so a daemon can be crashed and rebooted
	// onto the same backend directory).
	for i := 0; i < cfg.IODs; i++ {
		be, err := newBackend(cfg, i)
		if err != nil {
			c.Close()
			return nil, fmt.Errorf("cluster: iod %d backend: %w", i, err)
		}
		c.Backends = append(c.Backends, be)
		d := iod.NewWithBackend(i, cfg.BlockSize, cfg.Network, cfg.Registry, be)
		c.IODs = append(c.IODs, d)
		dl, err := cfg.Network.Listen(":0")
		if err != nil {
			c.Close()
			return nil, fmt.Errorf("cluster: iod %d data listener: %w", i, err)
		}
		fl, err := cfg.Network.Listen(":0")
		if err != nil {
			dl.Close()
			c.Close()
			return nil, fmt.Errorf("cluster: iod %d flush listener: %w", i, err)
		}
		c.iodPorts = append(c.iodPorts, iodPort{data: dl, flush: fl})
		c.IODDataAddrs = append(c.IODDataAddrs, dl.Addr())
		c.IODFlushAddrs = append(c.IODFlushAddrs, fl.Addr())
		go d.ServeData(dl)
		go d.ServeFlush(fl)
	}

	// Cache modules, one per client node. With the global cache enabled
	// each module joins the mgr's membership view at boot, so the first
	// epochs are the boot joins and later AddCacheNode calls simply keep
	// bumping the same view.
	if cfg.Caching {
		for node := 0; node < cfg.ClientNodes; node++ {
			mod, err := cachemod.New(c.moduleConfig(node))
			if err != nil {
				c.Close()
				return nil, fmt.Errorf("cluster: cache module for node %d: %w", node, err)
			}
			c.Modules = append(c.Modules, mod)
			if err := c.startAdmin(node, mod); err != nil {
				c.Close()
				return nil, err
			}
		}
	} else {
		c.Modules = make([]*cachemod.Module, cfg.ClientNodes)
	}
	return c, nil
}

// startAdmin boots a node's admin endpoint when Config.AdminAddr is set.
// The Collect hook refreshes gauges computed from live module state —
// per-tenant dirty residency above all — at scrape time, so the data path
// never maintains labeled gauges.
func (c *Cluster) startAdmin(node int, mod *cachemod.Module) error {
	if c.cfg.AdminAddr == "" {
		c.Admins = append(c.Admins, nil)
		c.AdminAddrs = append(c.AdminAddrs, "")
		return nil
	}
	nodeTag := strconv.Itoa(node)
	srv, err := admin.Start(c.cfg.AdminAddr, admin.Config{
		Registry: c.Reg,
		Tracer:   mod,
		Collect: func(r *metrics.Registry) {
			for tenant, n := range mod.Buffer().DirtyByTenant() {
				name := metrics.Labeled("module.tenant_dirty_blocks",
					"node", nodeTag, "tenant", strconv.FormatUint(uint64(tenant), 10))
				r.Gauge(name).Set(int64(n))
			}
			r.Gauge(metrics.Labeled("module.dirty_blocks", "node", nodeTag)).
				Set(int64(mod.Buffer().DirtyCount()))
		},
	})
	if err != nil {
		return fmt.Errorf("cluster: admin endpoint for node %d: %w", node, err)
	}
	c.Admins = append(c.Admins, srv)
	c.AdminAddrs = append(c.AdminAddrs, srv.Addr())
	return nil
}

// moduleConfig builds the cache-module config for one client node.
func (c *Cluster) moduleConfig(node int) cachemod.Config {
	cfg := c.cfg
	mc := cachemod.Config{
		Network:         c.nodeNetwork(node),
		ClientID:        uint32(node + 1),
		IODDataAddrs:    c.IODDataAddrs,
		IODFlushAddrs:   c.IODFlushAddrs,
		RPCConns:        cfg.RPCConns,
		ReadaheadWindow: cfg.ReadaheadWindow,
		BypassThreshold: cfg.BypassThreshold,
		DisableVector:   cfg.DisableVector,
		DisableZeroCopy: cfg.DisableZeroCopy,
		Buffer: buffer.Config{
			BlockSize: cfg.BlockSize,
			Capacity:  cfg.CacheBlocks,
			Shards:    cfg.CacheShards,
			Policy:    cfg.Policy,
			GhostFrac: cfg.GhostFrac,
		},
		FlushPeriod:       cfg.FlushPeriod,
		FlushStreams:      cfg.FlushStreams,
		FlushWindow:       cfg.FlushWindow,
		WriteStall:        cfg.WriteStall,
		TenantDirtyQuota:  cfg.TenantDirtyQuota,
		TenantFetchBudget: cfg.TenantFetchBudget,
		OverloadStall:     cfg.OverloadStall,
		DisableCoherence:  cfg.DisableCoherence,
		Registry:          cfg.Registry,
	}
	if cfg.GlobalCache {
		mc.GlobalCache = &globalcache.Options{
			SelfID:   uint32(node),
			MgrAddr:  c.MgrAddr,
			Replicas: cfg.GCReplicas,
			VNodes:   cfg.GCVNodes,
		}
	}
	return mc
}

// AddCacheNode boots one more caching client node after the cluster is
// up: its module joins the live global-cache membership view (bumping the
// epoch), and subsequent pushes and gets spread across the grown ring. It
// returns the new node's index, usable with NewProcess and Module.
func (c *Cluster) AddCacheNode() (int, error) {
	if !c.cfg.Caching {
		return 0, errors.New("cluster: AddCacheNode requires Caching")
	}
	node := len(c.Modules)
	mod, err := cachemod.New(c.moduleConfig(node))
	if err != nil {
		return 0, fmt.Errorf("cluster: cache module for node %d: %w", node, err)
	}
	c.Modules = append(c.Modules, mod)
	if err := c.startAdmin(node, mod); err != nil {
		return 0, err
	}
	return node, nil
}

// NewProcess returns a PVFS client representing one application process on
// the given client node. With caching enabled the process shares the
// node's cache module with every other process on that node; without it
// the process gets direct connections, like original PVFS.
func (c *Cluster) NewProcess(node int) (*pvfs.Client, error) {
	if node < 0 || node >= len(c.Modules) {
		return nil, fmt.Errorf("cluster: node %d out of range", node)
	}
	cfg := pvfs.Config{
		Network:  c.nodeNetwork(node),
		MgrAddr:  c.MgrAddr,
		IODAddrs: c.IODDataAddrs,
		ClientID: uint32(node + 1),
	}
	if mod := c.Modules[node]; mod != nil {
		cfg.Transport = mod.NewTransport()
	}
	return pvfs.NewClient(cfg)
}

// Module returns the cache module of a node (nil without caching).
func (c *Cluster) Module(node int) *cachemod.Module {
	if node < 0 || node >= len(c.Modules) {
		return nil
	}
	return c.Modules[node]
}

// FlushAll drains every node's dirty blocks to the iods.
func (c *Cluster) FlushAll() error {
	var firstErr error
	for _, m := range c.Modules {
		if m == nil {
			continue
		}
		if err := m.FlushAll(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// CrashIOD fail-stops daemon i: both ports close, in-flight requests
// die at the clients, and the backend drops its volatile state exactly
// like a killed process would (a disk backend keeps its directory; the
// mem backend loses everything — that asymmetry is the point). The
// daemon's slots stay in place so RestartIOD can reboot it.
func (c *Cluster) CrashIOD(i int) error {
	if i < 0 || i >= len(c.IODs) {
		return fmt.Errorf("cluster: iod %d out of range", i)
	}
	p := c.iodPorts[i]
	p.data.Close()
	p.flush.Close()
	c.IODs[i].Close()
	be := c.Backends[i]
	if cr, ok := be.(storage.Crasher); ok {
		return cr.Crash()
	}
	return be.Close()
}

// RestartIOD reboots daemon i after CrashIOD: a fresh backend opens
// from the same configuration (the disk backend replays its journal
// from the same directory), and a fresh daemon re-listens on the same
// addresses, so clients and flush streams reconnect without
// reconfiguration. The coherence directory is volatile daemon state and
// starts empty — documented in DESIGN.md §11.
func (c *Cluster) RestartIOD(i int) error {
	if i < 0 || i >= len(c.IODs) {
		return fmt.Errorf("cluster: iod %d out of range", i)
	}
	be, err := newBackend(c.cfg, i)
	if err != nil {
		return fmt.Errorf("cluster: iod %d restart backend: %w", i, err)
	}
	d := iod.NewWithBackend(i, c.cfg.BlockSize, c.Network, c.Reg, be)
	dl, err := c.Network.Listen(c.IODDataAddrs[i])
	if err != nil {
		be.Close()
		return fmt.Errorf("cluster: iod %d data re-listen: %w", i, err)
	}
	fl, err := c.Network.Listen(c.IODFlushAddrs[i])
	if err != nil {
		dl.Close()
		be.Close()
		return fmt.Errorf("cluster: iod %d flush re-listen: %w", i, err)
	}
	c.Backends[i] = be
	c.IODs[i] = d
	c.iodPorts[i] = iodPort{data: dl, flush: fl}
	go d.ServeData(dl)
	go d.ServeFlush(fl)
	return nil
}

// DrainIOD gracefully retires daemon i, in contrast to CrashIOD's
// fail-stop: the daemon first stops admitting new coherence holders, then
// every cache module flushes the dirty blocks it owes the daemon
// (directed at that iod's stream only), the daemon invalidates and drops
// its remaining directory entries, and only then do its ports close. The
// storage backend stays open and keeps its data — a graceful exit hands
// its state off rather than losing it — so RejoinIOD can bring the
// daemon back without recovery. timeout bounds the whole flush wait.
func (c *Cluster) DrainIOD(i int, timeout time.Duration) error {
	if i < 0 || i >= len(c.IODs) {
		return fmt.Errorf("cluster: iod %d out of range", i)
	}
	deadline := time.Now().Add(timeout)
	d := c.IODs[i]
	d.StartDrain()
	var firstErr error
	for _, m := range c.Modules {
		if m == nil {
			continue
		}
		if err := m.DrainIOD(i, deadline); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if _, err := d.DrainHolders(); err != nil && firstErr == nil {
		firstErr = err
	}
	p := c.iodPorts[i]
	p.data.Close()
	p.flush.Close()
	d.Close()
	return firstErr
}

// RejoinIOD brings a drained daemon back: a fresh daemon re-listens on
// the same addresses over the still-open backend DrainIOD handed off, so
// no journal recovery runs and no data moved. (After CrashIOD use
// RestartIOD, which reopens the backend through recovery.)
func (c *Cluster) RejoinIOD(i int) error {
	if i < 0 || i >= len(c.IODs) {
		return fmt.Errorf("cluster: iod %d out of range", i)
	}
	d := iod.NewWithBackend(i, c.cfg.BlockSize, c.Network, c.Reg, c.Backends[i])
	dl, err := c.Network.Listen(c.IODDataAddrs[i])
	if err != nil {
		return fmt.Errorf("cluster: iod %d data re-listen: %w", i, err)
	}
	fl, err := c.Network.Listen(c.IODFlushAddrs[i])
	if err != nil {
		dl.Close()
		return fmt.Errorf("cluster: iod %d flush re-listen: %w", i, err)
	}
	c.IODs[i] = d
	c.iodPorts[i] = iodPort{data: dl, flush: fl}
	go d.ServeData(dl)
	go d.ServeFlush(fl)
	return nil
}

// Close stops admin endpoints, modules, listeners, daemons, and backends.
func (c *Cluster) Close() error {
	var firstErr error
	for _, a := range c.Admins {
		if a == nil {
			continue
		}
		if err := a.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	for _, m := range c.Modules {
		if m == nil {
			continue
		}
		if err := m.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	for _, l := range c.listeners {
		if err := l.Close(); err != nil && !errors.Is(err, transport.ErrClosed) && firstErr == nil {
			firstErr = err
		}
	}
	for _, p := range c.iodPorts {
		for _, l := range []transport.Listener{p.data, p.flush} {
			if err := l.Close(); err != nil && !errors.Is(err, transport.ErrClosed) && firstErr == nil {
				firstErr = err
			}
		}
	}
	for _, d := range c.IODs {
		if err := d.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	for _, be := range c.Backends {
		if err := be.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}
