// Package cluster assembles a complete live system: one metadata server,
// a set of I/O daemons (each with a data port and a flush port), and a
// cache module per client node. It is the programmatic equivalent of
// booting the paper's 6-node testbed, over either the in-memory transport
// (tests, examples, benchmarks) or TCP (the cmd/ binaries).
package cluster

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"pvfscache/internal/cachemod"
	"pvfscache/internal/cachemod/buffer"
	"pvfscache/internal/globalcache"
	"pvfscache/internal/iod"
	"pvfscache/internal/metrics"
	"pvfscache/internal/mgr"
	"pvfscache/internal/pvfs"
	"pvfscache/internal/transport"
)

// clusterSeq makes generated in-memory addresses unique across clusters
// sharing one network.
var clusterSeq atomic.Int64

// Config describes the cluster to boot.
type Config struct {
	// Network carries all traffic. Nil uses a fresh in-memory network.
	Network transport.Network
	// NodeNetwork, when set, supplies the Network a given client node's
	// traffic dials through (its cache module's iod connections and its
	// processes' mgr connections). Server listeners and iod-originated
	// dials keep using Network. The chaos harness uses this to give each
	// node a labeled fault-injection view of one underlying fabric, so
	// faults can partition node traffic directionally; outside of fault
	// injection leave it nil.
	NodeNetwork func(node int) transport.Network
	// IODs is the number of I/O daemons (default 4).
	IODs int
	// ClientNodes is the number of compute nodes that may run application
	// processes (default 2). Each gets its own cache module when Caching
	// is set.
	ClientNodes int
	// Caching enables the per-node cache module — the paper's "caching
	// version". When false the cluster behaves like original PVFS.
	Caching bool
	// BlockSize is the cache block size (default 4 KB).
	BlockSize int
	// CacheBlocks is the per-node cache capacity in blocks (default 300,
	// i.e. the paper's 1.2 MB).
	CacheBlocks int
	// CacheShards is the number of lock stripes in each node's buffer
	// manager (see buffer.Config.Shards: 0 picks a power of two ≥
	// GOMAXPROCS; 1 is the single-mutex ablation baseline).
	CacheShards int
	// FlushPeriod overrides the flush streams' interval (default 1s;
	// tests use shorter).
	FlushPeriod time.Duration
	// FlushStreams bounds how many per-iod flush streams drain
	// concurrently in each cache module (default: all iods in parallel;
	// 1 = the serial pre-pipeline drain, for ablation). See
	// cachemod.Config.FlushStreams.
	FlushStreams int
	// FlushWindow is each flush stream's bound on concurrent Flush
	// frames in flight (default 4; 1 = one blocking round trip at a
	// time, for ablation). See cachemod.Config.FlushWindow.
	FlushWindow int
	// Policy selects the replacement policy (default clock).
	Policy buffer.Policy
	// GhostFrac sizes each cache shard's ghost list as a fraction of its
	// capacity under the ghost policy (0 = default 1.0; negative disables
	// the ghost history). See buffer.Config.GhostFrac.
	GhostFrac float64
	// BypassThreshold is the sequential-streak length at which detected
	// streaming reads stop being admitted to the cache and are served
	// read-around instead (0 = disabled; per-open cache-policy hints
	// override it either way). See cachemod.Config.BypassThreshold.
	BypassThreshold int
	// DisableCoherence turns off invalidation listeners and registration.
	DisableCoherence bool
	// GlobalCache enables the cooperative global cache extension: node
	// caches serve each other misses before the iods are consulted.
	GlobalCache bool
	// RPCConns is the rpc connection-pool size each cache module keeps
	// per iod port (default rpc.DefaultConns). Raise it when many
	// processes per node keep independent requests in flight.
	RPCConns int
	// ReadaheadWindow is the cache modules' sequential-readahead depth in
	// blocks (default 8; negative disables readahead).
	ReadaheadWindow int
	// DisableVector reverts the cache modules to the legacy one-Read-per-
	// run miss path (ablation benchmarks).
	DisableVector bool
	// DisableZeroCopy reverts the cache modules to the copying data path:
	// response buffers are freshly allocated and copied into the caller's
	// memory instead of leased from pools and scattered directly (ablation
	// benchmarks).
	DisableZeroCopy bool
	// Registry collects metrics from every component; nil creates one.
	Registry *metrics.Registry
}

// Cluster is a running system.
type Cluster struct {
	Network transport.Network
	Mgr     *mgr.Server
	IODs    []*iod.Server
	Modules []*cachemod.Module // indexed by client node; nil without caching
	Reg     *metrics.Registry

	MgrAddr       string
	IODDataAddrs  []string
	IODFlushAddrs []string

	listeners []transport.Listener
	nextProc  map[int]int
	nodeNet   func(node int) transport.Network
}

// nodeNetwork resolves the Network a client node dials through.
func (c *Cluster) nodeNetwork(node int) transport.Network {
	if c.nodeNet != nil {
		if n := c.nodeNet(node); n != nil {
			return n
		}
	}
	return c.Network
}

// Start boots the cluster.
func Start(cfg Config) (*Cluster, error) {
	if cfg.Network == nil {
		cfg.Network = transport.NewMem()
	}
	if cfg.IODs <= 0 {
		cfg.IODs = 4
	}
	if cfg.ClientNodes <= 0 {
		cfg.ClientNodes = 2
	}
	if cfg.Registry == nil {
		cfg.Registry = metrics.NewRegistry()
	}
	c := &Cluster{
		Network:  cfg.Network,
		nodeNet:  cfg.NodeNetwork,
		Reg:      cfg.Registry,
		nextProc: make(map[int]int),
	}

	// Metadata server.
	c.Mgr = mgr.New(cfg.IODs, cfg.Registry)
	ml, err := cfg.Network.Listen(":0")
	if err != nil {
		return nil, fmt.Errorf("cluster: mgr listener: %w", err)
	}
	c.listeners = append(c.listeners, ml)
	c.MgrAddr = ml.Addr()
	go c.Mgr.Serve(ml)

	// I/O daemons: a data port and a flush port each.
	for i := 0; i < cfg.IODs; i++ {
		d := iod.New(i, cfg.BlockSize, cfg.Network, cfg.Registry)
		c.IODs = append(c.IODs, d)
		dl, err := cfg.Network.Listen(":0")
		if err != nil {
			c.Close()
			return nil, fmt.Errorf("cluster: iod %d data listener: %w", i, err)
		}
		fl, err := cfg.Network.Listen(":0")
		if err != nil {
			c.Close()
			return nil, fmt.Errorf("cluster: iod %d flush listener: %w", i, err)
		}
		c.listeners = append(c.listeners, dl, fl)
		c.IODDataAddrs = append(c.IODDataAddrs, dl.Addr())
		c.IODFlushAddrs = append(c.IODFlushAddrs, fl.Addr())
		go d.ServeData(dl)
		go d.ServeFlush(fl)
	}

	// Cache modules, one per client node.
	if cfg.Caching {
		var peerAddrs []string
		if cfg.GlobalCache {
			for node := 0; node < cfg.ClientNodes; node++ {
				peerAddrs = append(peerAddrs,
					fmt.Sprintf("gcache-%d-%d", clusterSeq.Add(1), node))
			}
		}
		for node := 0; node < cfg.ClientNodes; node++ {
			var ring *globalcache.Ring
			if cfg.GlobalCache {
				ring = &globalcache.Ring{Peers: peerAddrs, Self: node}
			}
			mod, err := cachemod.New(cachemod.Config{
				GlobalCache:     ring,
				Network:         c.nodeNetwork(node),
				ClientID:        uint32(node + 1),
				IODDataAddrs:    c.IODDataAddrs,
				IODFlushAddrs:   c.IODFlushAddrs,
				RPCConns:        cfg.RPCConns,
				ReadaheadWindow: cfg.ReadaheadWindow,
				BypassThreshold: cfg.BypassThreshold,
				DisableVector:   cfg.DisableVector,
				DisableZeroCopy: cfg.DisableZeroCopy,
				Buffer: buffer.Config{
					BlockSize: cfg.BlockSize,
					Capacity:  cfg.CacheBlocks,
					Shards:    cfg.CacheShards,
					Policy:    cfg.Policy,
					GhostFrac: cfg.GhostFrac,
				},
				FlushPeriod:      cfg.FlushPeriod,
				FlushStreams:     cfg.FlushStreams,
				FlushWindow:      cfg.FlushWindow,
				DisableCoherence: cfg.DisableCoherence,
				Registry:         cfg.Registry,
			})
			if err != nil {
				c.Close()
				return nil, fmt.Errorf("cluster: cache module for node %d: %w", node, err)
			}
			c.Modules = append(c.Modules, mod)
		}
	} else {
		c.Modules = make([]*cachemod.Module, cfg.ClientNodes)
	}
	return c, nil
}

// NewProcess returns a PVFS client representing one application process on
// the given client node. With caching enabled the process shares the
// node's cache module with every other process on that node; without it
// the process gets direct connections, like original PVFS.
func (c *Cluster) NewProcess(node int) (*pvfs.Client, error) {
	if node < 0 || node >= len(c.Modules) {
		return nil, fmt.Errorf("cluster: node %d out of range", node)
	}
	cfg := pvfs.Config{
		Network:  c.nodeNetwork(node),
		MgrAddr:  c.MgrAddr,
		IODAddrs: c.IODDataAddrs,
		ClientID: uint32(node + 1),
	}
	if mod := c.Modules[node]; mod != nil {
		cfg.Transport = mod.NewTransport()
	}
	return pvfs.NewClient(cfg)
}

// Module returns the cache module of a node (nil without caching).
func (c *Cluster) Module(node int) *cachemod.Module {
	if node < 0 || node >= len(c.Modules) {
		return nil
	}
	return c.Modules[node]
}

// FlushAll drains every node's dirty blocks to the iods.
func (c *Cluster) FlushAll() error {
	var firstErr error
	for _, m := range c.Modules {
		if m == nil {
			continue
		}
		if err := m.FlushAll(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Close stops modules, listeners and daemons.
func (c *Cluster) Close() error {
	var firstErr error
	for _, m := range c.Modules {
		if m == nil {
			continue
		}
		if err := m.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	for _, l := range c.listeners {
		if err := l.Close(); err != nil && !errors.Is(err, transport.ErrClosed) && firstErr == nil {
			firstErr = err
		}
	}
	for _, d := range c.IODs {
		if err := d.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}
