package cluster

import (
	"bytes"
	"testing"
	"time"

	"pvfscache/internal/chaos/waitfor"
	"pvfscache/internal/pvfs"
)

// TestDrainIODZeroDirtyHolders is the graceful-retirement acceptance
// test: after a quiescent DrainIOD, no cache module owes the daemon a
// single dirty block, the daemon's coherence directory is empty (its
// entries were handed off with drain-marked invalidations), and the
// drained data survives a RejoinIOD byte for byte.
func TestDrainIODZeroDirtyHolders(t *testing.T) {
	c := startTest(t, Config{
		IODs:        2,
		ClientNodes: 2,
		Caching:     true,
		FlushPeriod: time.Hour, // nothing drains unless the drain kicks it
	})
	p0, err := c.NewProcess(0)
	if err != nil {
		t.Fatal(err)
	}
	defer p0.Close()
	f, err := p0.Create("drain.dat", pvfs.StripeSpec{})
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 128<<10)
	for i := range data {
		data[i] = byte(i*7 + 3)
	}
	if _, err := f.WriteAt(data, 0); err != nil {
		t.Fatal(err)
	}
	if err := c.Module(0).FlushAll(); err != nil {
		t.Fatal(err)
	}
	// A cold read pass on node 1 populates iod 0's coherence directory
	// with real holder entries.
	p1, err := c.NewProcess(1)
	if err != nil {
		t.Fatal(err)
	}
	defer p1.Close()
	f1, err := p1.Open("drain.dat")
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, len(data))
	if _, err := f1.ReadAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	if c.IODs[0].HolderBlocks() == 0 {
		t.Fatal("no holders recorded before the drain; the test is vacuous")
	}
	// Fresh dirty data the drain must flush out (the hour-long flush
	// period means only DrainIOD's directed kicks can drain it).
	if _, err := f.WriteAt(data, 0); err != nil {
		t.Fatal(err)
	}
	if c.Module(0).Buffer().DirtyCountOwned(0) == 0 {
		t.Fatal("no dirty blocks owed to iod 0 before the drain; the test is vacuous")
	}

	before := c.Reg.Snapshot()
	if err := c.DrainIOD(0, 10*time.Second); err != nil {
		t.Fatalf("DrainIOD: %v", err)
	}
	for node := 0; node < 2; node++ {
		if n := c.Module(node).Buffer().DirtyCountOwned(0); n != 0 {
			t.Errorf("node %d still owes iod 0 %d dirty blocks after drain", node, n)
		}
	}
	if n := c.IODs[0].HolderBlocks(); n != 0 {
		t.Errorf("drained iod still records holders for %d blocks", n)
	}
	diff := c.Reg.Snapshot().Diff(before)
	if diff["membership.drain_handoffs"] == 0 {
		t.Error("drain handed off no directory entries")
	}

	// The daemon rejoins on its intact backend and serves the same bytes.
	if err := c.RejoinIOD(0); err != nil {
		t.Fatalf("RejoinIOD: %v", err)
	}
	p2, err := c.NewProcess(1)
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	f2, err := p2.Open("drain.dat")
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if _, err := f2.ReadAt(got, 0); err != nil {
		t.Fatalf("read after rejoin: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("data differs after drain + rejoin")
	}
}

// TestGlobalCacheJoinSpreadsLoad grows the global-cache ring live: a
// third node joins mid-flight, the mgr bumps the membership epoch, every
// node's ring converges on the new view, and subsequent pushes land on
// the newcomer — the load measurably spreads instead of staying on the
// boot-time members.
func TestGlobalCacheJoinSpreadsLoad(t *testing.T) {
	c := startTest(t, Config{
		IODs:        2,
		ClientNodes: 2,
		Caching:     true,
		GlobalCache: true,
	})
	ringsConverged := func(members int) bool {
		for node := 0; node < len(c.Modules); node++ {
			gc := c.Module(node).GlobalCacheNode()
			if gc == nil || len(gc.Ring().Members()) != members {
				return false
			}
		}
		return true
	}
	waitfor.Poll(5*time.Second, func() bool { return ringsConverged(2) })
	if !ringsConverged(2) {
		t.Fatal("boot views never converged on 2 members")
	}
	bumpsBefore := c.Reg.Snapshot().Counters["membership.epoch_bumps"]

	before := c.Reg.Snapshot()
	newNode, err := c.AddCacheNode()
	if err != nil {
		t.Fatalf("AddCacheNode: %v", err)
	}
	waitfor.Poll(5*time.Second, func() bool { return ringsConverged(3) })
	if !ringsConverged(3) {
		t.Fatal("rings never converged on 3 members after the join")
	}
	diff := c.Reg.Snapshot().Diff(before)
	if got := c.Reg.Snapshot().Counters["membership.epoch_bumps"]; got != bumpsBefore+1 {
		t.Errorf("epoch_bumps = %d after join, want %d", got, bumpsBefore+1)
	}
	if diff["membership.epoch_refreshes"] == 0 {
		t.Error("no node refreshed its view to learn about the join")
	}

	// Drive cold reads through node 0: every fetched block is pushed to
	// its ring home, and with three members a visible share of those
	// homes is the newcomer, whose cache fills without it reading a byte.
	p0, err := c.NewProcess(0)
	if err != nil {
		t.Fatal(err)
	}
	defer p0.Close()
	f, err := p0.Create("spread.dat", pvfs.StripeSpec{})
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 512<<10)
	for i := range data {
		data[i] = byte(i * 13)
	}
	if _, err := f.WriteAt(data, 0); err != nil {
		t.Fatal(err)
	}
	if err := c.Module(0).FlushAll(); err != nil {
		t.Fatal(err)
	}
	c.Module(0).Buffer().InvalidateFile(f.ID())
	buf := make([]byte, len(data))
	if _, err := f.ReadAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	waitfor.Poll(5*time.Second, func() bool {
		return c.Module(newNode).Buffer().Stats().Resident > 0
	})
	if n := c.Module(newNode).Buffer().Stats().Resident; n == 0 {
		t.Error("no pushed blocks landed on the joined node; load did not spread")
	}
	if d := c.Reg.Snapshot().Diff(before); d["gcache.push_tx"] == 0 {
		t.Error("no pushes delivered after the join")
	}
}
