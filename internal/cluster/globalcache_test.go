package cluster

import (
	"bytes"
	"testing"
	"time"

	"pvfscache/internal/chaos/waitfor"
	"pvfscache/internal/pvfs"
)

// TestGlobalCacheServesRemoteMisses exercises the global-cache extension
// end to end: node 0 faults a file into cluster memory; node 1's read is
// then served from peer caches instead of the iods.
func TestGlobalCacheServesRemoteMisses(t *testing.T) {
	c := startTest(t, Config{
		IODs:        2,
		ClientNodes: 2,
		Caching:     true,
		GlobalCache: true,
	})
	seed, _ := c.NewProcess(0)
	f, err := seed.Create("gc.dat", pvfs.StripeSpec{})
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 256<<10)
	for i := range data {
		data[i] = byte(i * 31)
	}
	if _, err := f.WriteAt(data, 0); err != nil {
		t.Fatal(err)
	}
	if err := c.Module(0).FlushAll(); err != nil {
		t.Fatal(err)
	}
	seed.Close()
	// Drop the writer's cached copies so node 0's read genuinely fetches
	// from the iods (fetches are what feed the global cache).
	c.Module(0).Buffer().InvalidateFile(f.ID())

	// Node 0 reads the whole file: blocks homed at node 1 are pushed to
	// it in the background.
	p0, _ := c.NewProcess(0)
	defer p0.Close()
	f0, err := p0.Open("gc.dat")
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, len(data))
	if _, err := f0.ReadAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	// Let the asynchronous pushes settle: wait (best effort) until node
	// 1's resident count is nonzero and has held still for a while — the
	// pushes arrive one by one.
	last, stableSince := -1, time.Now()
	waitfor.Poll(5*time.Second, func() bool {
		cur := c.Module(1).Buffer().Stats().Resident
		if cur != last {
			last, stableSince = cur, time.Now()
		}
		return cur > 0 && time.Since(stableSince) > 100*time.Millisecond
	})

	// Node 1's read: every block is either pushed into its own cache
	// (home = node 1) or served by node 0 via peer-get (home = node 0).
	before := c.Reg.Snapshot()
	p1, _ := c.NewProcess(1)
	defer p1.Close()
	f1, err := p1.Open("gc.dat")
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if _, err := f1.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("global-cache read returned wrong data")
	}
	diff := c.Reg.Snapshot().Diff(before)
	totalBlocks := int64(len(data) / 4096)
	if diff["iod.reads"] > totalBlocks/3 {
		t.Errorf("node 1 read caused %d iod reads for %d blocks; global cache ineffective",
			diff["iod.reads"], totalBlocks)
	}
	if diff["module.gcache_hits"] == 0 {
		t.Error("no global-cache hits recorded")
	}
}

// TestGlobalCacheDisabledStillGoesToIODs is the control: without the
// extension, node 1 pays full network misses.
func TestGlobalCacheDisabledStillGoesToIODs(t *testing.T) {
	c := startTest(t, Config{IODs: 2, ClientNodes: 2, Caching: true})
	seed, _ := c.NewProcess(0)
	f, err := seed.Create("ngc.dat", pvfs.StripeSpec{})
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 64<<10)
	if _, err := f.WriteAt(data, 0); err != nil {
		t.Fatal(err)
	}
	if err := c.Module(0).FlushAll(); err != nil {
		t.Fatal(err)
	}
	seed.Close()

	before := c.Reg.Snapshot()
	p1, _ := c.NewProcess(1)
	defer p1.Close()
	f1, _ := p1.Open("ngc.dat")
	buf := make([]byte, len(data))
	if _, err := f1.ReadAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	diff := c.Reg.Snapshot().Diff(before)
	if diff["iod.reads"] == 0 {
		t.Error("without the global cache, node 1 should hit the iods")
	}
}
