package cluster

// Disk-backend cluster tests: the PR 3 consistency oracle re-run against
// the WAL-backed on-disk engine, and crash/restart durability — kill
// every daemon without warning, reboot from the same directories, and
// read the image back byte-for-byte.

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"pvfscache/internal/pvfs"
	"pvfscache/internal/storage/disk"
	"pvfscache/internal/testseed"
)

// TestConsistencyOracleDiskBackend runs the full seeded mixed workload
// over the disk engine and demands the same byte-for-byte verdict the
// mem backend gets — and, since the workload is seeded, the identical
// final image.
func TestConsistencyOracleDiskBackend(t *testing.T) {
	seed := testseed.Base(t)
	memImg := runConsistencyOracle(t, 8, seed)
	dir := t.TempDir()
	diskImg := runConsistencyOracleCfg(t, 8, seed, func(cfg *Config) {
		cfg.Backend = "disk"
		cfg.DataDir = dir
	})
	if !bytes.Equal(memImg, diskImg) {
		t.Fatal("disk-backend run produced different bytes than the mem run")
	}
}

func TestConsistencyOracleDiskBackendOsync(t *testing.T) {
	if testing.Short() {
		t.Skip("osync oracle is fsync-heavy")
	}
	seed := testseed.Base(t)
	runConsistencyOracleCfg(t, 8, seed, func(cfg *Config) {
		cfg.Backend = "disk"
		cfg.DataDir = t.TempDir()
		cfg.Fsync = "osync"
	})
}

// TestDiskClusterCrashRestartDurability: flush a striped file to disk-
// backed iods, fail-stop every daemon, reboot them from their data
// directories, and verify a direct client reads the exact image —
// including journal replay for whatever had not been checkpointed.
func TestDiskClusterCrashRestartDurability(t *testing.T) {
	dir := t.TempDir()
	c := startTest(t, Config{
		IODs:        3,
		ClientNodes: 1,
		Caching:     true,
		CacheBlocks: 64,
		FlushPeriod: time.Hour, // only FlushAll drains
		Backend:     "disk",
		DataDir:     dir,
	})
	p, err := c.NewProcess(0)
	if err != nil {
		t.Fatal(err)
	}
	f, err := p.Create("durable.dat", pvfs.StripeSpec{SSize: 16 << 10})
	if err != nil {
		t.Fatal(err)
	}
	const size = 256 << 10
	img := make([]byte, size)
	for i := range img {
		img[i] = byte(i*7 + i>>9)
	}
	if n, err := f.WriteAt(img, 0); err != nil || n != size {
		t.Fatalf("write: n=%d err=%v", n, err)
	}
	if err := c.FlushAll(); err != nil {
		t.Fatal(err)
	}
	p.Close()

	recovered := 0
	for i := range c.IODs {
		if err := c.CrashIOD(i); err != nil {
			t.Fatalf("CrashIOD(%d): %v", i, err)
		}
		if err := c.RestartIOD(i); err != nil {
			t.Fatalf("RestartIOD(%d): %v", i, err)
		}
		if ds, ok := c.Backends[i].(*disk.Store); ok {
			recovered += ds.Recovered()
		}
	}
	if recovered == 0 {
		t.Fatal("no journal records replayed: the crash exercised nothing")
	}

	direct, err := pvfs.NewClient(pvfs.Config{
		Network:  c.Network,
		MgrAddr:  c.MgrAddr,
		IODAddrs: c.IODDataAddrs,
		ClientID: 999,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer direct.Close()
	df, err := direct.Open("durable.dat")
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, size)
	if n, err := df.ReadAt(got, 0); err != nil || n != size {
		t.Fatalf("read-back: n=%d err=%v", n, err)
	}
	if !bytes.Equal(got, img) {
		for i := range got {
			if got[i] != img[i] {
				t.Fatalf("recovered image diverges at byte %d of %d", i, size)
			}
		}
	}
}

// TestRestartIODServesNewWrites: after a crash/restart cycle the daemon
// is fully live — new writes through a fresh cached client land and
// survive a second restart.
func TestRestartIODServesNewWrites(t *testing.T) {
	c := startTest(t, Config{
		IODs:        2,
		ClientNodes: 1,
		Caching:     true,
		FlushPeriod: time.Hour,
		Backend:     "disk",
		DataDir:     t.TempDir(),
	})
	for cycle := 0; cycle < 2; cycle++ {
		p, err := c.NewProcess(0)
		if err != nil {
			t.Fatal(err)
		}
		name := fmt.Sprintf("cycle-%d.dat", cycle)
		f, err := p.Create(name, pvfs.StripeSpec{SSize: 8 << 10})
		if err != nil {
			t.Fatal(err)
		}
		payload := bytes.Repeat([]byte{byte(10 + cycle)}, 64<<10)
		if n, err := f.WriteAt(payload, 0); err != nil || n != len(payload) {
			t.Fatalf("cycle %d write: n=%d err=%v", cycle, n, err)
		}
		if err := c.FlushAll(); err != nil {
			t.Fatalf("cycle %d flush: %v", cycle, err)
		}
		p.Close()
		for i := range c.IODs {
			if err := c.CrashIOD(i); err != nil {
				t.Fatal(err)
			}
			if err := c.RestartIOD(i); err != nil {
				t.Fatal(err)
			}
		}
	}
	direct, err := pvfs.NewClient(pvfs.Config{
		Network:  c.Network,
		MgrAddr:  c.MgrAddr,
		IODAddrs: c.IODDataAddrs,
		ClientID: 999,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer direct.Close()
	for cycle := 0; cycle < 2; cycle++ {
		df, err := direct.Open(fmt.Sprintf("cycle-%d.dat", cycle))
		if err != nil {
			t.Fatal(err)
		}
		want := bytes.Repeat([]byte{byte(10 + cycle)}, 64<<10)
		got := make([]byte, len(want))
		if n, err := df.ReadAt(got, 0); err != nil || n != len(want) || !bytes.Equal(got, want) {
			t.Fatalf("cycle %d read-back: n=%d err=%v", cycle, n, err)
		}
	}
}
