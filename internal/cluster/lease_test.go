package cluster

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"pvfscache/internal/pvfs"
	"pvfscache/internal/rpc"
	"pvfscache/internal/wire"
)

// The zero-copy data path introduces exactly one new failure mode:
// aliasing-after-release. A payload alias (a decoded message's Data, a
// pooled miss slab, a prefetch block, a leased response frame) that
// outlives its lease gets overwritten by the buffer's next tenant, and a
// served read — or worse, an installed cache frame — silently carries
// another request's bytes. These storms run the full stack with
// poison-on-release enabled (every released buffer is stamped with
// wire.PoisonByte) under -race, and verify every served byte against a
// position-derived pattern: a recycled-buffer alias surfaces as poison or
// a cross-request byte, either of which fails the equality check, and the
// race detector flags the concurrent reuse itself.

// patternAt is the expected byte at file offset off: position-derived, so
// verification needs no reference copy and any shifted/stale/poisoned
// byte is detected, not just "some valid-looking data".
func patternAt(off int64) byte {
	b := byte(off>>13) ^ byte(off>>5) ^ byte(off)
	if b == wire.PoisonByte {
		b ^= 0x55 // never legitimately equal to the poison stamp
	}
	return b
}

func fillPattern(p []byte, off int64) {
	for i := range p {
		p[i] = patternAt(off + int64(i))
	}
}

func checkPattern(p []byte, off int64) error {
	for i := range p {
		if want := patternAt(off + int64(i)); p[i] != want {
			poisoned := ""
			if p[i] == wire.PoisonByte {
				poisoned = " (poison: alias outlived its lease)"
			}
			return fmt.Errorf("byte at offset %d = %#x, want %#x%s", off+int64(i), p[i], want, poisoned)
		}
	}
	return nil
}

// runLeaseStorm drives readers, re-writers and scanners from several
// processes per node over a cache far smaller than the working set, so
// every layer of the zero-copy path cycles its pools under contention:
// vectored miss slabs, fetch joins, readahead blocks, iod response
// buffers, flusher batches — and with two nodes and the global cache
// enabled, the peer get/put path too.
func runLeaseStorm(t *testing.T, cfg Config) {
	t.Helper()
	rpc.SetLeasePoison(true)
	t.Cleanup(func() { rpc.SetLeasePoison(false) })

	c := startTest(t, cfg)
	const (
		fileBytes = 2 << 20
		stripe    = 4096 // single-block strips: reads vector across iods
	)
	seed, err := c.NewProcess(0)
	if err != nil {
		t.Fatal(err)
	}
	f, err := seed.Create("lease.dat", pvfs.StripeSpec{PCount: uint32(len(c.IODs)), SSize: stripe})
	if err != nil {
		t.Fatal(err)
	}
	img := make([]byte, fileBytes)
	fillPattern(img, 0)
	if _, err := f.WriteAt(img, 0); err != nil {
		t.Fatal(err)
	}
	if err := c.FlushAll(); err != nil {
		t.Fatal(err)
	}
	seed.Close()

	deadline := time.Now().Add(2 * time.Second)
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	fail := func(err error) {
		select {
		case errs <- err:
		default:
		}
	}
	for node := 0; node < cfg.ClientNodes; node++ {
		// Random-offset readers: demand misses, hits, and fetch joins.
		for w := 0; w < 3; w++ {
			wg.Add(1)
			go func(node, w int) {
				defer wg.Done()
				p, err := c.NewProcess(node)
				if err != nil {
					fail(err)
					return
				}
				defer p.Close()
				fh, err := p.Open("lease.dat")
				if err != nil {
					fail(err)
					return
				}
				rng := uint64(node*31 + w*7 + 1)
				buf := make([]byte, 24<<10)
				for time.Now().Before(deadline) {
					rng = rng*6364136223846793005 + 1442695040888963407
					off := int64(rng % (fileBytes - uint64(len(buf))))
					n, err := fh.ReadAt(buf, off)
					if err != nil {
						fail(fmt.Errorf("node %d reader %d: %v", node, w, err))
						return
					}
					if err := checkPattern(buf[:n], off); err != nil {
						fail(fmt.Errorf("node %d reader %d: %v", node, w, err))
						return
					}
				}
			}(node, w)
		}
		// A sequential scanner to engage the readahead prefetcher.
		wg.Add(1)
		go func(node int) {
			defer wg.Done()
			p, err := c.NewProcess(node)
			if err != nil {
				fail(err)
				return
			}
			defer p.Close()
			fh, err := p.Open("lease.dat")
			if err != nil {
				fail(err)
				return
			}
			buf := make([]byte, 4096)
			off := int64(0)
			for time.Now().Before(deadline) {
				n, err := fh.ReadAt(buf, off)
				if err != nil {
					fail(fmt.Errorf("node %d scanner: %v", node, err))
					return
				}
				if err := checkPattern(buf[:n], off); err != nil {
					fail(fmt.Errorf("node %d scanner: %v", node, err))
					return
				}
				off += int64(n)
				if off >= fileBytes {
					off = 0
				}
			}
		}(node)
		// A re-writer: writes the same pattern back (idempotent, so
		// readers' expectations hold), keeping the dirty list, flusher
		// and write-behind merge paths hot.
		wg.Add(1)
		go func(node int) {
			defer wg.Done()
			p, err := c.NewProcess(node)
			if err != nil {
				fail(err)
				return
			}
			defer p.Close()
			fh, err := p.Open("lease.dat")
			if err != nil {
				fail(err)
				return
			}
			rng := uint64(node + 99)
			buf := make([]byte, 10<<10)
			for time.Now().Before(deadline) {
				rng = rng*6364136223846793005 + 1442695040888963407
				off := int64(rng % (fileBytes - uint64(len(buf))))
				fillPattern(buf, off)
				if _, err := fh.WriteAt(buf, off); err != nil {
					fail(fmt.Errorf("node %d writer: %v", node, err))
					return
				}
			}
		}(node)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if t.Failed() {
		return
	}

	// Installed-frame oracle: after the storm, re-read the whole file
	// through warm caches on every node. Any cache frame installed from a
	// recycled buffer serves corrupt bytes here even if the storm's own
	// read missed it.
	for node := 0; node < cfg.ClientNodes; node++ {
		p, err := c.NewProcess(node)
		if err != nil {
			t.Fatal(err)
		}
		got := make([]byte, fileBytes)
		fh, err := p.Open("lease.dat")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := fh.ReadAt(got, 0); err != nil {
			t.Fatal(err)
		}
		if err := checkPattern(got, 0); err != nil {
			t.Errorf("node %d post-storm image: %v", node, err)
		}
		p.Close()
	}
}

// TestLeaseLifetimesUnderPoison is the zero-copy lifetime wall: one node,
// many processes, cache 16x smaller than the file, readahead on.
func TestLeaseLifetimesUnderPoison(t *testing.T) {
	runLeaseStorm(t, Config{
		IODs:            4,
		ClientNodes:     1,
		Caching:         true,
		CacheBlocks:     32, // 128 KB vs a 2 MB working set: constant recycling
		ReadaheadWindow: 16,
	})
}

// TestLeaseLifetimesGlobalCachePoison adds a second node and the
// cooperative global cache, so peer get/put leases and push-pool buffers
// recycle under the same poison oracle.
func TestLeaseLifetimesGlobalCachePoison(t *testing.T) {
	runLeaseStorm(t, Config{
		IODs:            2,
		ClientNodes:     2,
		Caching:         true,
		CacheBlocks:     64,
		GlobalCache:     true,
		ReadaheadWindow: 8,
	})
}

// TestLeaseStormCopyingAblation runs the same storm with DisableZeroCopy:
// the copying baseline must obviously pass too, and the pair pins the two
// paths to identical observable behaviour.
func TestLeaseStormCopyingAblation(t *testing.T) {
	runLeaseStorm(t, Config{
		IODs:            4,
		ClientNodes:     1,
		Caching:         true,
		CacheBlocks:     32,
		ReadaheadWindow: 16,
		DisableZeroCopy: true,
	})
}
