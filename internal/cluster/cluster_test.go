package cluster

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"sync"
	"testing"
	"time"

	"pvfscache/internal/chaos/waitfor"
	"pvfscache/internal/pvfs"
)

func startTest(t *testing.T, cfg Config) *Cluster {
	t.Helper()
	if cfg.FlushPeriod == 0 {
		cfg.FlushPeriod = 20 * time.Millisecond
	}
	c, err := Start(cfg)
	if err != nil {
		t.Fatalf("start: %v", err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func writeReadCycle(t *testing.T, c *Cluster, size int) {
	t.Helper()
	p, err := c.NewProcess(0)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	f, err := p.Create("cycle.dat", pvfs.StripeSpec{SSize: 64 << 10})
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, size)
	rnd := rand.New(rand.NewSource(42))
	rnd.Read(data)
	if n, err := f.WriteAt(data, 0); err != nil || n != size {
		t.Fatalf("write: n=%d err=%v", n, err)
	}
	got := make([]byte, size)
	if n, err := f.ReadAt(got, 0); err != nil || n != size {
		t.Fatalf("read: n=%d err=%v", n, err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("data mismatch")
	}
}

func TestWriteReadNoCaching(t *testing.T) {
	c := startTest(t, Config{IODs: 4, ClientNodes: 1})
	writeReadCycle(t, c, 300_000) // striped over several iods
}

// TestDirectReadVectorsPerIOD verifies that a read spanning several
// striping cycles sends each iod one vectored request (its pieces as
// extents) instead of one Read per piece, even on the uncached path.
func TestDirectReadVectorsPerIOD(t *testing.T) {
	c := startTest(t, Config{IODs: 2, ClientNodes: 1})
	p, err := c.NewProcess(0)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	f, err := p.Create("vector.dat", pvfs.StripeSpec{PCount: 2, SSize: 4096})
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 8*4096) // 8 strips: 4 pieces per iod
	rand.New(rand.NewSource(7)).Read(data)
	if _, err := f.WriteAt(data, 0); err != nil {
		t.Fatal(err)
	}
	before := c.Reg.Snapshot()
	got := make([]byte, len(data))
	if _, err := f.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("data mismatch")
	}
	d := c.Reg.Snapshot().Diff(before)
	if d["iod.vector_reads"] != 2 || d["iod.reads"] != 2 {
		t.Fatalf("iod.reads = %d, vector = %d; want one vectored read per iod",
			d["iod.reads"], d["iod.vector_reads"])
	}
	if d["iod.vector_extents"] != 8 {
		t.Fatalf("vector extents = %d, want 8 (4 pieces per iod)", d["iod.vector_extents"])
	}
}

func TestWriteReadCaching(t *testing.T) {
	c := startTest(t, Config{IODs: 4, ClientNodes: 1, Caching: true})
	writeReadCycle(t, c, 300_000)
}

func TestWriteLargerThanCache(t *testing.T) {
	// 1.2 MB cache; write 3 MB. Writes must stall/fall back but complete,
	// and the data must be durable after FlushAll.
	c := startTest(t, Config{IODs: 4, ClientNodes: 1, Caching: true})
	writeReadCycle(t, c, 3<<20)
}

func TestUnalignedOffsetsAndSizes(t *testing.T) {
	c := startTest(t, Config{IODs: 3, ClientNodes: 1, Caching: true})
	p, err := c.NewProcess(0)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	f, err := p.Create("odd.dat", pvfs.StripeSpec{SSize: 8192})
	if err != nil {
		t.Fatal(err)
	}
	rnd := rand.New(rand.NewSource(7))
	ref := make([]byte, 100_000)
	// Write the file in random unaligned chunks.
	for off := 0; off < len(ref); {
		n := 1 + rnd.Intn(9000)
		if off+n > len(ref) {
			n = len(ref) - off
		}
		chunk := make([]byte, n)
		rnd.Read(chunk)
		copy(ref[off:], chunk)
		if _, err := f.WriteAt(chunk, int64(off)); err != nil {
			t.Fatalf("write @%d: %v", off, err)
		}
		off += n
	}
	// Read back in different random unaligned chunks.
	for trial := 0; trial < 50; trial++ {
		off := rnd.Intn(len(ref) - 1)
		n := 1 + rnd.Intn(len(ref)-off)
		got := make([]byte, n)
		rn, err := f.ReadAt(got, int64(off))
		if err != nil && err != io.EOF {
			t.Fatalf("read @%d len %d: %v", off, n, err)
		}
		if rn != n {
			t.Fatalf("read @%d len %d: short %d", off, n, rn)
		}
		if !bytes.Equal(got, ref[off:off+n]) {
			t.Fatalf("mismatch @%d len %d", off, n)
		}
	}
}

func TestReadPastEOF(t *testing.T) {
	c := startTest(t, Config{IODs: 2, ClientNodes: 1, Caching: true})
	p, _ := c.NewProcess(0)
	defer p.Close()
	f, err := p.Create("small.dat", pvfs.StripeSpec{})
	if err != nil {
		t.Fatal(err)
	}
	f.WriteAt([]byte("hello"), 0)

	buf := make([]byte, 10)
	n, err := f.ReadAt(buf, 0)
	if n != 5 || err != io.EOF {
		t.Fatalf("crossing read: n=%d err=%v", n, err)
	}
	n, err = f.ReadAt(buf, 100)
	if n != 0 || err != io.EOF {
		t.Fatalf("beyond read: n=%d err=%v", n, err)
	}
}

func TestDurabilityViaFlusher(t *testing.T) {
	// Write through the cache, wait for the background flusher (no manual
	// FlushAll), then read directly from the iod stores.
	c := startTest(t, Config{IODs: 2, ClientNodes: 1, Caching: true, FlushPeriod: 10 * time.Millisecond})
	p, _ := c.NewProcess(0)
	defer p.Close()
	f, err := p.Create("durable.dat", pvfs.StripeSpec{PCount: 1, SSize: 64 << 10})
	if err != nil {
		t.Fatal(err)
	}
	data := bytes.Repeat([]byte{0xAB}, 20_000)
	if _, err := f.WriteAt(data, 0); err != nil {
		t.Fatal(err)
	}
	waitfor.Until(t, 5*time.Second, func() bool {
		return c.Module(0).Buffer().DirtyCount() == 0
	}, "flusher draining the dirty list")
	// File was created with PCount=1 base 0: all data on iod 0.
	got := make([]byte, len(data))
	n, _ := c.IODs[0].Store().ReadAt(f.ID(), 0, got)
	if n != len(data) || !bytes.Equal(got, data) {
		t.Fatalf("iod store has %d/%d correct bytes", n, len(data))
	}
}

func TestInterProcessSharingOnOneNode(t *testing.T) {
	// Process A reads a file (faulting it into the node cache); process B
	// on the same node must then hit in cache: no additional iod reads.
	c := startTest(t, Config{IODs: 2, ClientNodes: 1, Caching: true})
	seed, _ := c.NewProcess(0)
	f, err := seed.Create("shared.dat", pvfs.StripeSpec{})
	if err != nil {
		t.Fatal(err)
	}
	data := bytes.Repeat([]byte{0x5C}, 64<<10)
	if _, err := f.WriteAt(data, 0); err != nil {
		t.Fatal(err)
	}
	seed.Close()

	procA, _ := c.NewProcess(0)
	defer procA.Close()
	fa, err := procA.Open("shared.dat")
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 64<<10)
	if _, err := fa.ReadAt(buf, 0); err != nil {
		t.Fatal(err)
	}

	before := c.Reg.Snapshot()
	procB, _ := c.NewProcess(0)
	defer procB.Close()
	fb, err := procB.Open("shared.dat")
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 64<<10)
	if _, err := fb.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("process B read wrong data")
	}
	diff := c.Reg.Snapshot().Diff(before)
	if diff["iod.reads"] != 0 {
		t.Errorf("process B caused %d iod reads; want 0 (inter-application hit)", diff["iod.reads"])
	}
	if diff["cache.hits"] == 0 {
		t.Error("no cache hits recorded for process B")
	}
}

func TestConcurrentProcessesSameNode(t *testing.T) {
	c := startTest(t, Config{IODs: 4, ClientNodes: 1, Caching: true})
	seed, _ := c.NewProcess(0)
	f, err := seed.Create("conc.dat", pvfs.StripeSpec{})
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 256<<10)
	rand.New(rand.NewSource(1)).Read(data)
	if _, err := f.WriteAt(data, 0); err != nil {
		t.Fatal(err)
	}
	seed.Close()

	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for pnum := 0; pnum < 8; pnum++ {
		wg.Add(1)
		go func(pnum int) {
			defer wg.Done()
			p, err := c.NewProcess(0)
			if err != nil {
				errs <- err
				return
			}
			defer p.Close()
			f, err := p.Open("conc.dat")
			if err != nil {
				errs <- err
				return
			}
			rnd := rand.New(rand.NewSource(int64(pnum)))
			buf := make([]byte, 8192)
			for i := 0; i < 50; i++ {
				off := rnd.Intn(len(data) - len(buf))
				if _, err := f.ReadAt(buf, int64(off)); err != nil {
					errs <- fmt.Errorf("proc %d read @%d: %w", pnum, off, err)
					return
				}
				if !bytes.Equal(buf, data[off:off+len(buf)]) {
					errs <- fmt.Errorf("proc %d data mismatch @%d", pnum, off)
					return
				}
			}
		}(pnum)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestSyncWriteInvalidatesRemoteCache(t *testing.T) {
	c := startTest(t, Config{IODs: 2, ClientNodes: 2, Caching: true})
	// Node 0 writes and flushes a file.
	w, _ := c.NewProcess(0)
	fw, err := w.Create("coh.dat", pvfs.StripeSpec{PCount: 1})
	if err != nil {
		t.Fatal(err)
	}
	v1 := bytes.Repeat([]byte{1}, 8192)
	if _, err := fw.WriteAt(v1, 0); err != nil {
		t.Fatal(err)
	}
	if err := c.Module(0).FlushAll(); err != nil {
		t.Fatal(err)
	}

	// Node 1 reads the file, caching it.
	r, _ := c.NewProcess(1)
	defer r.Close()
	fr, err := r.Open("coh.dat")
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 8192)
	if _, err := fr.ReadAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	if buf[0] != 1 {
		t.Fatal("node 1 read wrong initial data")
	}

	// Default write from node 0: node 1's cache is NOT invalidated — the
	// paper's default read/write mechanism does not maintain coherence.
	v2 := bytes.Repeat([]byte{2}, 8192)
	if _, err := fw.WriteAt(v2, 0); err != nil {
		t.Fatal(err)
	}
	if err := c.Module(0).FlushAll(); err != nil {
		t.Fatal(err)
	}
	if _, err := fr.ReadAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	if buf[0] != 1 {
		t.Fatalf("plain write unexpectedly invalidated remote cache (got %d)", buf[0])
	}

	// Sync write from node 0: node 1's copy must be invalidated, so the
	// next read fetches the new value.
	v3 := bytes.Repeat([]byte{3}, 8192)
	if _, err := fw.SyncWriteAt(v3, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := fr.ReadAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	if buf[0] != 3 {
		t.Fatalf("sync write did not propagate: node 1 read %d, want 3", buf[0])
	}
	w.Close()
}

func TestLocalityZeroStillCorrect(t *testing.T) {
	// A workload with no reuse (every block read once) must return correct
	// data through the caching path.
	c := startTest(t, Config{IODs: 2, ClientNodes: 1, Caching: true, CacheBlocks: 16})
	p, _ := c.NewProcess(0)
	defer p.Close()
	f, err := p.Create("stream.dat", pvfs.StripeSpec{})
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 512<<10) // far larger than the 64 KB cache
	rand.New(rand.NewSource(3)).Read(data)
	if _, err := f.WriteAt(data, 0); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 4096)
	for off := 0; off < len(data); off += len(got) {
		if _, err := f.ReadAt(got, int64(off)); err != nil {
			t.Fatalf("read @%d: %v", off, err)
		}
		if !bytes.Equal(got, data[off:off+len(got)]) {
			t.Fatalf("mismatch @%d", off)
		}
	}
}

func TestNamespaceOperations(t *testing.T) {
	c := startTest(t, Config{IODs: 2, ClientNodes: 1})
	p, _ := c.NewProcess(0)
	defer p.Close()
	if _, err := p.Create("a", pvfs.StripeSpec{}); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Create("b", pvfs.StripeSpec{}); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Create("a", pvfs.StripeSpec{}); err == nil {
		t.Fatal("duplicate create should fail")
	}
	names, err := p.List()
	if err != nil || len(names) != 2 {
		t.Fatalf("list: %v %v", names, err)
	}
	if err := p.Unlink("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Open("a"); err == nil {
		t.Fatal("open after unlink should fail")
	}
	f, err := p.Open("b")
	if err != nil {
		t.Fatal(err)
	}
	if f.Name() != "b" {
		t.Errorf("name = %q", f.Name())
	}
}

func TestSizePropagationAcrossProcesses(t *testing.T) {
	c := startTest(t, Config{IODs: 2, ClientNodes: 2, Caching: true})
	w, _ := c.NewProcess(0)
	defer w.Close()
	f, err := w.Create("grow.dat", pvfs.StripeSpec{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt(make([]byte, 12345), 0); err != nil {
		t.Fatal(err)
	}
	r, _ := c.NewProcess(1)
	defer r.Close()
	fr, err := r.Open("grow.dat")
	if err != nil {
		t.Fatal(err)
	}
	if fr.Size() != 12345 {
		t.Fatalf("size = %d, want 12345", fr.Size())
	}
	// Extend from node 0, refresh on node 1.
	if _, err := f.WriteAt(make([]byte, 100), 20000); err != nil {
		t.Fatal(err)
	}
	if err := fr.Refresh(); err != nil {
		t.Fatal(err)
	}
	if fr.Size() != 20100 {
		t.Fatalf("size after refresh = %d, want 20100", fr.Size())
	}
}

func TestTwoNodesIndependentCaches(t *testing.T) {
	// Reads on node 0 must not populate node 1's cache.
	c := startTest(t, Config{IODs: 2, ClientNodes: 2, Caching: true})
	p0, _ := c.NewProcess(0)
	defer p0.Close()
	f, err := p0.Create("n0.dat", pvfs.StripeSpec{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt(make([]byte, 8192), 0); err != nil {
		t.Fatal(err)
	}
	if c.Module(1).Buffer().Stats().Resident != 0 {
		t.Error("node 1 cache populated by node 0 activity")
	}
	if c.Module(0).Buffer().Stats().Resident == 0 {
		t.Error("node 0 cache empty after write")
	}
}

func TestCachingOverTCP(t *testing.T) {
	// The same assembly must work over real TCP sockets.
	c := startTest(t, Config{
		Network:     nil, // will be replaced below
		IODs:        2,
		ClientNodes: 1,
		Caching:     true,
	})
	_ = c
	tcp, err := Start(Config{
		Network:     newTCP(t),
		IODs:        2,
		ClientNodes: 1,
		Caching:     true,
		FlushPeriod: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("tcp cluster: %v", err)
	}
	defer tcp.Close()
	writeReadCycle(t, tcp, 200_000)
}
