package cluster

import (
	"testing"

	"pvfscache/internal/transport"
)

// newTCP returns the OS TCP stack for tests that exercise real sockets.
func newTCP(t *testing.T) transport.Network {
	t.Helper()
	return transport.NewTCP()
}
