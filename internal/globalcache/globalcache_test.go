package globalcache

import (
	"bytes"
	"testing"
	"time"

	"pvfscache/internal/blockio"
	"pvfscache/internal/cachemod/buffer"
	"pvfscache/internal/metrics"
	"pvfscache/internal/transport"
	"pvfscache/internal/wire"
)

func TestRingHomeStableAndInRange(t *testing.T) {
	r := Ring{Peers: []string{"a", "b", "c"}, Self: 0}
	seen := make(map[int]int)
	for f := 1; f <= 10; f++ {
		for b := int64(0); b < 100; b++ {
			key := blockio.BlockKey{File: blockio.FileID(f), Index: b}
			h1 := r.Home(key)
			h2 := r.Home(key)
			if h1 != h2 {
				t.Fatalf("home not stable for %v", key)
			}
			if h1 < 0 || h1 >= 3 {
				t.Fatalf("home %d out of range", h1)
			}
			seen[h1]++
		}
	}
	// The hash must actually spread blocks over nodes.
	for n := 0; n < 3; n++ {
		if seen[n] == 0 {
			t.Errorf("node %d homes no blocks", n)
		}
	}
}

func TestRingValidity(t *testing.T) {
	if (Ring{}).Valid() {
		t.Error("empty ring valid")
	}
	if (Ring{Peers: []string{"a"}, Self: 1}).Valid() {
		t.Error("out-of-range self valid")
	}
	if !(Ring{Peers: []string{"a", "b"}, Self: 1}).Valid() {
		t.Error("good ring invalid")
	}
}

// twoNodeRig builds two buffer managers with peer services and clients on
// one in-memory network.
func twoNodeRig(t *testing.T) (bufs [2]*buffer.Manager, clients [2]*Client) {
	t.Helper()
	net := transport.NewMem()
	peers := []string{"gc-0", "gc-1"}
	for i := 0; i < 2; i++ {
		bufs[i] = buffer.New(buffer.Config{BlockSize: 64, Capacity: 32})
		l, err := net.Listen(peers[i])
		if err != nil {
			t.Fatal(err)
		}
		svc := NewService(bufs[i], l, metrics.NewRegistry())
		t.Cleanup(func() { svc.Close() })
	}
	for i := 0; i < 2; i++ {
		c, err := NewClient(Ring{Peers: peers, Self: i}, net, metrics.NewRegistry())
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { c.Close() })
		clients[i] = c
	}
	return bufs, clients
}

// keyHomedAt finds a block key whose home is the given node in a 2-ring.
func keyHomedAt(home int) blockio.BlockKey {
	r := Ring{Peers: []string{"x", "y"}, Self: 0}
	for i := int64(0); ; i++ {
		key := blockio.BlockKey{File: 1, Index: i}
		if r.Home(key) == home {
			return key
		}
	}
}

func TestGetServedFromPeer(t *testing.T) {
	bufs, clients := twoNodeRig(t)
	key := keyHomedAt(1) // home is node 1; node 0 queries it
	data := bytes.Repeat([]byte{0xAB}, 64)
	bufs[1].InsertClean(key, 0, data)

	got := make([]byte, 64)
	n, ok := clients[0].Get(key, got)
	if !ok {
		t.Fatal("peer get missed")
	}
	if n != 64 || !bytes.Equal(got, data) {
		t.Fatal("peer get wrong data")
	}
}

func TestGetMissesWhenPeerCold(t *testing.T) {
	_, clients := twoNodeRig(t)
	if _, ok := clients[0].Get(keyHomedAt(1), make([]byte, 64)); ok {
		t.Fatal("cold peer returned a hit")
	}
}

func TestGetSkipsSelfHomedBlocks(t *testing.T) {
	bufs, clients := twoNodeRig(t)
	key := keyHomedAt(0)
	bufs[0].InsertClean(key, 0, make([]byte, 64))
	// Node 0 is home: Get must not loop back to itself.
	if _, ok := clients[0].Get(key, make([]byte, 64)); ok {
		t.Fatal("self-homed get should report false")
	}
}

func TestPushLandsAtHome(t *testing.T) {
	bufs, clients := twoNodeRig(t)
	key := keyHomedAt(1)
	data := bytes.Repeat([]byte{0x5A}, 64)
	clients[0].Push(key, 3, data)

	deadline := time.Now().Add(2 * time.Second)
	for !bufs[1].Contains(key, 0, 64) {
		if time.Now().After(deadline) {
			t.Fatal("push never arrived at home node")
		}
		time.Sleep(time.Millisecond)
	}
	dst := make([]byte, 64)
	bufs[1].ReadSpan(key, 0, dst)
	if !bytes.Equal(dst, data) {
		t.Fatal("pushed data corrupt")
	}
}

func TestPushToSelfIgnored(t *testing.T) {
	bufs, clients := twoNodeRig(t)
	key := keyHomedAt(0)
	clients[0].Push(key, 0, make([]byte, 64))
	time.Sleep(20 * time.Millisecond)
	if bufs[0].Contains(key, 0, 64) {
		t.Fatal("self push inserted a block")
	}
}

func TestGetUnreachablePeerDegrades(t *testing.T) {
	net := transport.NewMem()
	c, err := NewClient(Ring{Peers: []string{"self", "gone"}, Self: 0}, net, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, ok := c.Get(keyHomedAt(1), make([]byte, 64)); ok {
		t.Fatal("unreachable peer returned a hit")
	}
}

func TestNewClientRejectsBadRing(t *testing.T) {
	if _, err := NewClient(Ring{}, transport.NewMem(), nil); err == nil {
		t.Fatal("invalid ring accepted")
	}
}

// TestOversizedPeerPutRejected checks a hostile PeerPut larger than the
// block size gets a bad-request ack instead of panicking the node.
func TestOversizedPeerPutRejected(t *testing.T) {
	net := transport.NewMem()
	buf := buffer.New(buffer.Config{BlockSize: 4096, Capacity: 8})
	l, err := net.Listen("victim")
	if err != nil {
		t.Fatal(err)
	}
	svc := NewService(buf, l, nil)
	defer svc.Close()
	conn, err := net.Dial("victim")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := wire.WriteMessage(conn, &wire.PeerPut{File: 1, Index: 0, Data: make([]byte, 8192)}); err != nil {
		t.Fatal(err)
	}
	resp, err := wire.ReadMessage(conn)
	if err != nil {
		t.Fatal(err)
	}
	ack, ok := resp.(*wire.PeerPutAck)
	if !ok || ack.Status != wire.StatusBadRequest {
		t.Fatalf("oversized put got %+v", resp)
	}
}
