package globalcache

import (
	"bytes"
	"sync"
	"testing"
	"time"

	"pvfscache/internal/blockio"
	"pvfscache/internal/cachemod/buffer"
	"pvfscache/internal/membership"
	"pvfscache/internal/metrics"
	"pvfscache/internal/rpc"
	"pvfscache/internal/transport"
	"pvfscache/internal/wire"
)

const testBlock = 64

// rig is a static-membership cluster of global-cache nodes on one
// in-memory network.
type rig struct {
	net   transport.Network
	bufs  []*buffer.Manager
	nodes []*Node
	regs  []*metrics.Registry
}

func newRig(t *testing.T, count, replicas int, opts Options) *rig {
	t.Helper()
	r := &rig{net: transport.NewMem()}
	members := make([]membership.Member, count)
	for i := range members {
		members[i] = membership.Member{ID: uint32(i), Addr: addrOf(i)}
	}
	for i := 0; i < count; i++ {
		buf := buffer.New(buffer.Config{BlockSize: testBlock, Capacity: 32})
		l, err := r.net.Listen(addrOf(i))
		if err != nil {
			t.Fatal(err)
		}
		o := opts
		o.SelfID = uint32(i)
		o.Peers = members
		o.Replicas = replicas
		if o.FetchTimeout == 0 {
			o.FetchTimeout = 100 * time.Millisecond
		}
		reg := metrics.NewRegistry()
		n, err := Start(o, buf, l, r.net, reg)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { n.Close() })
		r.bufs = append(r.bufs, buf)
		r.nodes = append(r.nodes, n)
		r.regs = append(r.regs, reg)
	}
	return r
}

func addrOf(i int) string {
	return string(rune('a'+i)) + "-gc"
}

// keyWithReplicas searches for a block key whose replica set (as node
// `from` computes it) starts with the given member indices.
func keyWithReplicas(t *testing.T, n *Node, want ...int) blockio.BlockKey {
	t.Helper()
	var buf [8]int
	for i := int64(0); i < 1<<20; i++ {
		key := blockio.BlockKey{File: 1, Index: i}
		set := n.Ring().ReplicaSet(key, buf[:0])
		if len(set) < len(want) {
			continue
		}
		match := true
		for j, w := range want {
			if set[j] != w {
				match = false
				break
			}
		}
		if match {
			return key
		}
	}
	t.Fatal("no key found with the requested replica set")
	return blockio.BlockKey{}
}

func TestGetServedFromPrimary(t *testing.T) {
	r := newRig(t, 2, 1, Options{})
	key := keyWithReplicas(t, r.nodes[0], 1)
	data := bytes.Repeat([]byte{0xAB}, testBlock)
	r.bufs[1].InsertClean(key, 0, data)

	got := make([]byte, testBlock)
	n, ok := r.nodes[0].Get(key, got)
	if !ok {
		t.Fatal("peer get missed")
	}
	if n != testBlock || !bytes.Equal(got, data) {
		t.Fatal("peer get wrong data")
	}
}

func TestGetMissesWhenPeerCold(t *testing.T) {
	r := newRig(t, 2, 1, Options{})
	if _, ok := r.nodes[0].Get(keyWithReplicas(t, r.nodes[0], 1), make([]byte, testBlock)); ok {
		t.Fatal("cold peer returned a hit")
	}
}

func TestGetSkipsSelfHomedBlocks(t *testing.T) {
	r := newRig(t, 2, 1, Options{})
	key := keyWithReplicas(t, r.nodes[0], 0)
	r.bufs[0].InsertClean(key, 0, make([]byte, testBlock))
	// Node 0 is the primary: Get must not loop back to itself.
	if _, ok := r.nodes[0].Get(key, make([]byte, testBlock)); ok {
		t.Fatal("self-homed get should report false")
	}
}

func TestPushLandsAtPrimary(t *testing.T) {
	r := newRig(t, 2, 1, Options{})
	key := keyWithReplicas(t, r.nodes[0], 1)
	data := bytes.Repeat([]byte{0x5A}, testBlock)
	r.nodes[0].Push(key, 3, data)

	deadline := time.Now().Add(2 * time.Second)
	for !r.bufs[1].Contains(key, 0, testBlock) {
		if time.Now().After(deadline) {
			t.Fatal("push never arrived at the primary")
		}
		time.Sleep(time.Millisecond)
	}
	dst := make([]byte, testBlock)
	r.bufs[1].ReadSpan(key, 0, dst)
	if !bytes.Equal(dst, data) {
		t.Fatal("pushed data corrupt")
	}
}

func TestPushToSelfIgnored(t *testing.T) {
	r := newRig(t, 2, 1, Options{})
	key := keyWithReplicas(t, r.nodes[0], 0)
	r.nodes[0].Push(key, 0, make([]byte, testBlock))
	time.Sleep(20 * time.Millisecond)
	if r.bufs[0].Contains(key, 0, testBlock) {
		t.Fatal("self push inserted a block")
	}
}

// TestFailoverToReplica kills the primary's service and checks a read
// fails over to the secondary replica that holds the block, counting the
// hop in membership.failovers.
func TestFailoverToReplica(t *testing.T) {
	r := newRig(t, 3, 2, Options{FetchTimeout: 50 * time.Millisecond})
	key := keyWithReplicas(t, r.nodes[0], 1, 2)
	data := bytes.Repeat([]byte{0xC3}, testBlock)
	r.bufs[2].InsertClean(key, 0, data)

	r.nodes[1].KillService()

	got := make([]byte, testBlock)
	n, ok := r.nodes[0].Get(key, got)
	if !ok {
		t.Fatal("get did not fail over to the replica")
	}
	if n != testBlock || !bytes.Equal(got, data) {
		t.Fatal("failover served wrong data")
	}
	if r.regs[0].Counter("membership.failovers").Value() == 0 {
		t.Fatal("failover not counted")
	}
}

// TestDeadPeerDegradesInBoundedTime is the regression test for the
// unbounded-hang bug: a blackholed peer (accepts, never answers) must
// cost at most the fetch timeout per replica, not an indefinite hang.
func TestDeadPeerDegradesInBoundedTime(t *testing.T) {
	net := transport.NewMem()
	// A blackhole listener stands in for member 1: accepts and holds.
	bl, err := net.Listen("blackhole")
	if err != nil {
		t.Fatal(err)
	}
	defer bl.Close()
	var held []transport.Conn
	var mu sync.Mutex
	go func() {
		for {
			c, err := bl.Accept()
			if err != nil {
				return
			}
			mu.Lock()
			held = append(held, c)
			mu.Unlock()
		}
	}()
	defer func() {
		mu.Lock()
		defer mu.Unlock()
		for _, c := range held {
			c.Close()
		}
	}()

	buf := buffer.New(buffer.Config{BlockSize: testBlock, Capacity: 8})
	l, err := net.Listen("self-gc")
	if err != nil {
		t.Fatal(err)
	}
	n, err := Start(Options{
		SelfID: 0,
		Peers: []membership.Member{
			{ID: 0, Addr: "self-gc"},
			{ID: 1, Addr: "blackhole"},
		},
		Replicas:     1,
		FetchTimeout: 50 * time.Millisecond,
	}, buf, l, net, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()

	key := keyWithReplicas(t, n, 1)
	start := time.Now()
	if _, ok := n.Get(key, make([]byte, testBlock)); ok {
		t.Fatal("blackholed peer returned a hit")
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("get against a hung peer took %v, want ~the 50ms fetch timeout", d)
	}
}

func TestStartRejectsBadOptions(t *testing.T) {
	net := transport.NewMem()
	buf := buffer.New(buffer.Config{BlockSize: testBlock, Capacity: 8})
	l, err := net.Listen("x")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if _, err := Start(Options{}, buf, l, net, nil); err == nil {
		t.Fatal("no membership mode accepted")
	}
	if _, err := Start(Options{
		Peers:   []membership.Member{{ID: 0, Addr: "x"}},
		MgrAddr: "mgr",
	}, buf, l, net, nil); err == nil {
		t.Fatal("both membership modes accepted")
	}
}

// TestOversizedPeerPutRejected checks a hostile PeerPut larger than the
// block size gets a bad-request ack instead of panicking the node.
func TestOversizedPeerPutRejected(t *testing.T) {
	r := newRig(t, 2, 1, Options{})
	conn, err := r.net.Dial(addrOf(1))
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := wire.WriteMessage(conn, &wire.PeerPut{File: 1, Index: 0, Data: make([]byte, 2*testBlock)}); err != nil {
		t.Fatal(err)
	}
	resp, err := wire.ReadMessage(conn)
	if err != nil {
		t.Fatal(err)
	}
	ack, ok := resp.(*wire.PeerPutAck)
	if !ok || ack.Status != wire.StatusBadRequest {
		t.Fatalf("oversized put got %+v", resp)
	}
}

// fakeMgr answers the membership view protocol from a Tracker — the mgr
// side of dynamic mode without booting a cluster.
func fakeMgr(t *testing.T, net transport.Network, addr string) *membership.Tracker {
	t.Helper()
	tr := membership.NewTracker(nil)
	l, err := net.Listen(addr)
	if err != nil {
		t.Fatal(err)
	}
	s := rpc.NewServer(rpc.HandlerFunc(func(m wire.Message) wire.Message {
		switch m := m.(type) {
		case *wire.ViewGet:
			return membership.ViewToResp(tr.View())
		case *wire.JoinView:
			return membership.ViewToResp(tr.Join(m.ID, m.Addr))
		case *wire.LeaveView:
			return membership.ViewToResp(tr.Leave(m.ID))
		default:
			return nil
		}
	}), rpc.ServerConfig{})
	go s.Serve(l)
	t.Cleanup(func() { l.Close(); s.Close() })
	return tr
}

// TestDynamicJoinAndStaleEpochConvergence boots two nodes against a fake
// mgr with a long refresh interval, so only the stale-epoch protocol can
// reconcile their views: node A joins at epoch 1, node B's join bumps to
// epoch 2, and A learns of it when B's first fetch hits A with a newer
// epoch.
func TestDynamicJoinAndStaleEpochConvergence(t *testing.T) {
	net := transport.NewMem()
	fakeMgr(t, net, "mgr")

	start := func(id uint32, addr string) (*Node, *metrics.Registry) {
		buf := buffer.New(buffer.Config{BlockSize: testBlock, Capacity: 16})
		l, err := net.Listen(addr)
		if err != nil {
			t.Fatal(err)
		}
		reg := metrics.NewRegistry()
		n, err := Start(Options{
			SelfID:          id,
			MgrAddr:         "mgr",
			Replicas:        1,
			FetchTimeout:    50 * time.Millisecond,
			RefreshInterval: time.Hour, // isolate the stale-epoch path
		}, buf, l, net, reg)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { n.Close() })
		return n, reg
	}

	a, aReg := start(0, "node-a")
	if got := a.Ring().Epoch(); got != 1 {
		t.Fatalf("first joiner sees epoch %d, want 1", got)
	}
	b, _ := start(1, "node-b")
	if got := b.Ring().Epoch(); got != 2 {
		t.Fatalf("second joiner sees epoch %d, want 2", got)
	}

	// B routes a get to A carrying epoch 2; A (still at 1) must answer
	// StaleEpoch and refresh itself.
	key := keyWithReplicas(t, b, 0) // primary = member index 0 (node A) in B's ring
	if _, ok := b.Get(key, make([]byte, testBlock)); ok {
		t.Fatal("unexpected hit")
	}
	deadline := time.Now().Add(5 * time.Second)
	for a.Ring().Epoch() != 2 {
		if time.Now().After(deadline) {
			t.Fatalf("node A never converged (epoch %d, stale_epochs=%d)",
				a.Ring().Epoch(), aReg.Counter("membership.stale_epochs").Value())
		}
		time.Sleep(time.Millisecond)
	}
	if aReg.Counter("membership.stale_epochs").Value() == 0 {
		t.Fatal("stale-epoch path never engaged")
	}

	// With views converged, traffic flows: B caches a block homed at A,
	// pushes it, and A-homed gets hit.
	data := bytes.Repeat([]byte{0x7E}, testBlock)
	b.Push(key, 0, data)
	got := make([]byte, testBlock)
	deadline = time.Now().Add(5 * time.Second)
	for {
		if n, ok := b.Get(key, got); ok && n == testBlock && bytes.Equal(got, data) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("pushed block never became fetchable after convergence")
		}
		time.Sleep(time.Millisecond)
	}
}
