// Package globalcache implements the first item of the paper's ongoing
// work (§5): "a global cache that can be shared by all the nodes ...
// before disk operations are really invoked."
//
// Every block has a primary home node plus failover replicas, chosen by
// consistent hashing over an epoch-versioned membership view
// (internal/membership). When a node fetches a block from an iod it
// pushes a copy to the block's primary (PeerPut); when a node misses
// locally it asks the replica set in order (PeerGet) before going to the
// iod. Cluster memory thus acts as a second cache level between the
// per-node caches and the daemons.
//
// Robustness model:
//
//   - Reads walk the replica set: an error, timeout, or ejected peer
//     moves the fetch to the next replica (membership.failovers counts
//     each hop). A clean miss from a reachable peer ends the walk — the
//     common-case miss must not pay replicas × latency.
//   - Every peer RPC is bounded by Options.FetchTimeout and every peer
//     client runs the rpc health breaker, so a dead peer costs a bounded
//     error and is then ejected until a background probe readmits it.
//   - In dynamic mode (Options.MgrAddr set) the node joins the
//     mgr-coordinated view at start, refreshes it periodically, carries
//     the view's epoch on every peer RPC, and answers mismatched epochs
//     with StatusStaleEpoch so both sides converge on the mgr's view.
//     Static mode (Options.Peers) pins an epoch-1 view for ablation and
//     unit tests.
package globalcache

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"pvfscache/internal/blockio"
	"pvfscache/internal/cachemod/buffer"
	"pvfscache/internal/membership"
	"pvfscache/internal/metrics"
	"pvfscache/internal/rpc"
	"pvfscache/internal/transport"
	"pvfscache/internal/wire"
)

// Defaults for the peer data plane. The fetch timeout is far above a
// healthy in-cluster round trip (microseconds to low milliseconds) but
// small enough that degrading to an iod read on a dead peer costs less
// than a human-visible stall.
const (
	DefaultFetchTimeout    = 100 * time.Millisecond
	DefaultProbeInterval   = 100 * time.Millisecond
	DefaultFailThreshold   = 3
	DefaultRefreshInterval = 500 * time.Millisecond
)

// Options assembles a node's view of the global cache. Exactly one of
// Peers (static membership) or MgrAddr (mgr-coordinated membership) must
// be set.
type Options struct {
	// SelfID is this node's stable member ID.
	SelfID uint32
	// SelfAddr is the advertised peer-service address. Empty means "use
	// the listener's address" — the normal dynamic-mode shape, where the
	// node listens on ":0"-style addresses and advertises the result.
	SelfAddr string

	// Peers fixes the member list at boot (static mode, epoch 1).
	Peers []membership.Member
	// MgrAddr selects dynamic mode: join the mgr's view at start, refresh
	// it periodically, leave on Close.
	MgrAddr string

	// VNodes and Replicas shape the consistent-hash ring
	// (membership.DefaultVNodes / DefaultReplicas when zero).
	VNodes   int
	Replicas int

	// FetchTimeout bounds each peer round trip; ProbeInterval and
	// FailThreshold configure the per-peer health breaker;
	// RefreshInterval paces dynamic-mode view refreshes. Zero selects the
	// package defaults.
	FetchTimeout    time.Duration
	ProbeInterval   time.Duration
	FailThreshold   int
	RefreshInterval time.Duration
}

func (o *Options) fetchTimeout() time.Duration {
	if o.FetchTimeout <= 0 {
		return DefaultFetchTimeout
	}
	return o.FetchTimeout
}

func (o *Options) probeInterval() time.Duration {
	if o.ProbeInterval <= 0 {
		return DefaultProbeInterval
	}
	return o.ProbeInterval
}

func (o *Options) refreshInterval() time.Duration {
	if o.RefreshInterval <= 0 {
		return DefaultRefreshInterval
	}
	return o.RefreshInterval
}

// Node is one node's complete global-cache presence: the peer service
// answering PeerGet/PeerPut against the local buffer manager, the client
// side that queries and feeds remote peers, and the membership state
// (current ring, epoch, refresh machinery) both sides share.
type Node struct {
	opts    Options
	buf     *buffer.Manager
	network transport.Network
	reg     *metrics.Registry

	l   transport.Listener
	srv *rpc.Server

	mc   *membership.Client // nil in static mode
	ring atomic.Pointer[membership.Ring]

	refreshMu sync.Mutex // serializes view refreshes (single-flight)
	refreshQ  atomic.Bool

	mu    sync.Mutex
	peers map[string]*rpc.Client // keyed by address; members shift indices across views

	blockBufs rpc.BufPool
	pushBufs  rpc.BufPool
	pushCh    chan wire.PeerPut
	wg        sync.WaitGroup
	stop      chan struct{}
	once      sync.Once
	killed    atomic.Bool
}

// Start brings up a node's global cache on l: serve the local buffer
// manager to peers, join (dynamic mode) or pin (static mode) the
// membership view, and start the push forwarder and view refresher.
func Start(opts Options, buf *buffer.Manager, l transport.Listener, network transport.Network, reg *metrics.Registry) (*Node, error) {
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	if (len(opts.Peers) == 0) == (opts.MgrAddr == "") {
		return nil, errors.New("globalcache: exactly one of Peers and MgrAddr must be set")
	}
	if opts.SelfAddr == "" {
		opts.SelfAddr = l.Addr()
	}
	n := &Node{
		opts:    opts,
		buf:     buf,
		network: network,
		reg:     reg,
		l:       l,
		peers:   make(map[string]*rpc.Client),
		pushCh:  make(chan wire.PeerPut, 256),
		stop:    make(chan struct{}),
	}

	var view membership.View
	if opts.MgrAddr != "" {
		n.mc = membership.NewClient(network, opts.MgrAddr, 0)
		v, err := n.mc.Join(opts.SelfID, opts.SelfAddr)
		if err != nil {
			n.mc.Close()
			return nil, fmt.Errorf("globalcache: joining view via %s: %w", opts.MgrAddr, err)
		}
		view = v
	} else {
		view = membership.View{Epoch: 1, Members: append([]membership.Member(nil), opts.Peers...)}
	}
	n.ring.Store(membership.NewRing(view, opts.VNodes, opts.Replicas))

	n.srv = rpc.NewServer(rpc.HandlerFunc(n.handle), rpc.ServerConfig{AfterWrite: n.recycle})
	go n.srv.Serve(l)

	n.wg.Add(1)
	go n.pushLoop()
	if n.mc != nil {
		n.wg.Add(1)
		go n.refreshLoop()
	}
	return n, nil
}

// Ring returns the node's current ring (test and bench introspection).
func (n *Node) Ring() *membership.Ring { return n.ring.Load() }

// Close leaves the view (dynamic mode), stops the forwarder and
// refresher, and closes the service and every peer connection.
func (n *Node) Close() error {
	n.once.Do(func() { close(n.stop) })
	n.wg.Wait()
	if n.mc != nil {
		// Best-effort deregistration: the mgr drops us from the view so
		// surviving peers stop routing to this address after their next
		// refresh. A dead mgr must not block shutdown.
		n.mc.Leave(n.opts.SelfID) //nolint:errcheck
		n.mc.Close()
	}
	err := n.l.Close()
	n.srv.Close()
	n.mu.Lock()
	defer n.mu.Unlock()
	for _, rc := range n.peers {
		rc.Close()
	}
	n.peers = make(map[string]*rpc.Client)
	return err
}

// KillService fail-stops the peer service only — listener and server die,
// the client side keeps running and the view keeps its entry. It models a
// crashed cache peer for the chaos harness: other nodes' fetches to this
// node start failing and must fail over, while this node's own reads
// degrade to iod traffic.
func (n *Node) KillService() {
	if n.killed.Swap(true) {
		return
	}
	n.l.Close()
	n.srv.Close()
}

// --- service side ---

func (n *Node) handle(msg wire.Message) wire.Message {
	switch m := msg.(type) {
	case *wire.PeerGet:
		if st := n.epochCheck(m.Epoch); st != wire.StatusOK {
			return &wire.PeerGetResp{Status: st}
		}
		data := n.blockBufs.Get(n.buf.BlockSize())
		key := blockio.BlockKey{File: m.File, Index: m.Index}
		if n.buf.ReadSpan(key, 0, data) {
			n.reg.Counter("gcache.serve_hits").Inc()
			return &wire.PeerGetResp{Status: wire.StatusOK, Data: data}
		}
		n.blockBufs.Put(data)
		n.reg.Counter("gcache.serve_misses").Inc()
		return &wire.PeerGetResp{Status: wire.StatusNotFound}
	case *wire.PeerPut:
		if st := n.epochCheck(m.Epoch); st != wire.StatusOK {
			return &wire.PeerPutAck{Status: st}
		}
		// Wire-supplied Data is peer-controlled. Legitimate peers always
		// push whole blocks; an oversize one would panic InsertClean, and
		// a SHORT one would be zero-filled and marked whole-valid — this
		// node would then serve those fabricated zero bytes to the whole
		// cluster as the block's home. Reject anything but a whole block.
		if len(m.Data) != n.buf.BlockSize() {
			return &wire.PeerPutAck{Status: wire.StatusBadRequest}
		}
		key := blockio.BlockKey{File: m.File, Index: m.Index}
		n.buf.InsertClean(key, int(m.Owner), m.Data)
		n.reg.Counter("gcache.puts_rx").Inc()
		return &wire.PeerPutAck{Status: wire.StatusOK}
	default:
		return nil
	}
}

// epochCheck compares a request's epoch against ours. Mismatch answers
// StatusStaleEpoch; when the requester is ahead, we are the stale side
// and kick an async refresh so we catch up without blocking the handler.
func (n *Node) epochCheck(reqEpoch uint64) wire.Status {
	ours := n.ring.Load().Epoch()
	if reqEpoch == 0 || ours == 0 || reqEpoch == ours {
		return wire.StatusOK
	}
	n.reg.Counter("membership.stale_epochs").Inc()
	if reqEpoch > ours {
		n.asyncRefresh()
	}
	return wire.StatusStaleEpoch
}

// recycle returns a served block buffer to the pool after the response
// has been written.
func (n *Node) recycle(resp wire.Message) {
	if gr, ok := resp.(*wire.PeerGetResp); ok {
		n.blockBufs.Put(gr.Data)
	}
}

// --- membership refresh ---

// refreshLoop periodically re-fetches the view so epoch changes propagate
// even to idle nodes (a node that never trips a stale-epoch response
// still learns about joins within RefreshInterval).
func (n *Node) refreshLoop() {
	defer n.wg.Done()
	ticker := time.NewTicker(n.opts.refreshInterval())
	defer ticker.Stop()
	for {
		select {
		case <-n.stop:
			return
		case <-ticker.C:
			n.refreshView()
		}
	}
}

// refreshView fetches the current view and swaps the ring if the epoch
// moved. Concurrent callers collapse onto one fetch.
func (n *Node) refreshView() bool {
	if n.mc == nil {
		return false
	}
	n.refreshMu.Lock()
	defer n.refreshMu.Unlock()
	v, err := n.mc.Fetch()
	if err != nil {
		return false
	}
	cur := n.ring.Load()
	if v.Epoch == cur.Epoch() {
		return false
	}
	n.ring.Store(membership.NewRing(v, n.opts.VNodes, n.opts.Replicas))
	n.reg.Counter("membership.epoch_refreshes").Inc()
	return true
}

// asyncRefresh schedules a refreshView off the caller's goroutine,
// single-flight: one pending refresh at a time.
func (n *Node) asyncRefresh() {
	if n.mc == nil || !n.refreshQ.CompareAndSwap(false, true) {
		return
	}
	go func() {
		defer n.refreshQ.Store(false)
		n.refreshView()
	}()
}

// --- client side ---

// Get fetches a block from its replica set into dst and reports the
// number of payload bytes returned along with whether the get hit. The
// walk is primary-first: an error, timeout, or ejected peer fails over to
// the next replica; a clean miss from a reachable peer (or this node
// itself being the replica) ends the walk — the block is simply not in
// cluster memory. A stale-epoch answer refreshes the view and retries the
// walk once. A healthy peer always serves a whole block; the caller must
// validate n against its block size before trusting dst. The peer's
// response bytes are copied out of their leased frame before this
// returns, so dst is caller-owned plain memory.
func (n *Node) Get(key blockio.BlockKey, dst []byte) (int, bool) {
	var setBuf [8]int
	for attempt := 0; attempt < 2; attempt++ {
		ring := n.ring.Load()
		set := ring.ReplicaSet(key, setBuf[:0])
		members := ring.Members()
		stale := false
		tried := 0
		for _, mi := range set {
			m := members[mi]
			if m.ID == n.opts.SelfID {
				// Our own cache already missed; the block is not here.
				break
			}
			if tried > 0 {
				n.reg.Counter("membership.failovers").Inc()
			}
			tried++
			res, err := n.fetch(m.Addr, &wire.PeerGet{File: key.File, Index: key.Index, Epoch: ring.Epoch()})
			if err != nil {
				continue // next replica
			}
			gr, ok := res.Msg.(*wire.PeerGetResp)
			if !ok {
				res.Release()
				continue
			}
			switch gr.Status {
			case wire.StatusOK:
				nb := len(gr.Data)
				copy(dst, gr.Data)
				res.Release()
				n.reg.Counter("gcache.get_hits").Inc()
				return nb, true
			case wire.StatusStaleEpoch:
				res.Release()
				stale = true
			default:
				res.Release()
			}
			// A reachable peer answered without the block: stop walking.
			break
		}
		if stale && n.refreshView() {
			continue // one retry against the new ring
		}
		break
	}
	n.reg.Counter("gcache.get_misses").Inc()
	return 0, false
}

// Push asynchronously forwards a freshly fetched block to its primary
// home node. Blocks homed at this node are ignored (they are already in
// the local cache). data is copied into a pooled buffer before Push
// returns, so the caller may recycle it immediately.
func (n *Node) Push(key blockio.BlockKey, owner int, data []byte) {
	ring := n.ring.Load()
	p := ring.Primary(key)
	if p < 0 || ring.Members()[p].ID == n.opts.SelfID {
		return
	}
	cp := n.pushBufs.Get(len(data))
	copy(cp, data)
	select {
	case n.pushCh <- wire.PeerPut{File: key.File, Index: key.Index, Owner: uint32(owner), Data: cp}:
	default:
		n.pushBufs.Put(cp)
		n.reg.Counter("gcache.push_dropped").Inc()
	}
}

// pushLoop delivers queued pushes. The primary is re-resolved at send
// time against the current ring (the view may have moved since Push), and
// a stale-epoch answer refreshes the view and retries once against the
// new primary.
func (n *Node) pushLoop() {
	defer n.wg.Done()
	for {
		select {
		case <-n.stop:
			return
		case put := <-n.pushCh:
			n.deliverPush(&put)
			n.pushBufs.Put(put.Data)
		}
	}
}

func (n *Node) deliverPush(put *wire.PeerPut) {
	for attempt := 0; attempt < 2; attempt++ {
		ring := n.ring.Load()
		p := ring.Primary(blockio.BlockKey{File: put.File, Index: put.Index})
		if p < 0 {
			return
		}
		m := ring.Members()[p]
		if m.ID == n.opts.SelfID {
			return
		}
		put.Epoch = ring.Epoch()
		res, err := n.fetch(m.Addr, put)
		if err != nil {
			return // push is best-effort; the block just isn't replicated
		}
		ack, ok := res.Msg.(*wire.PeerPutAck)
		st := wire.StatusOK
		if ok {
			st = ack.Status
		}
		res.Release()
		if st == wire.StatusStaleEpoch && n.refreshView() {
			continue
		}
		if st == wire.StatusOK {
			n.reg.Counter("gcache.push_tx").Inc()
		}
		return
	}
}

// fetch performs one bounded exchange with a peer. A non-timeout failure
// gets one immediate retry so a stale pooled connection can redial;
// timeouts and ejections propagate straight out so the caller fails over
// instead of paying the bound twice.
func (n *Node) fetch(addr string, req wire.Message) (rpc.Result, error) {
	rc := n.peerClient(addr)
	res := rc.Call(req)
	if res.Err != nil && !errors.Is(res.Err, rpc.ErrCallTimeout) && !errors.Is(res.Err, rpc.ErrPeerEjected) {
		res = rc.Call(req)
	}
	if res.Err != nil {
		return rpc.Result{}, fmt.Errorf("globalcache: peer %s unreachable: %w", addr, res.Err)
	}
	return res, nil
}

func (n *Node) peerClient(addr string) *rpc.Client {
	n.mu.Lock()
	defer n.mu.Unlock()
	rc := n.peers[addr]
	if rc == nil {
		rc = rpc.NewClient(rpc.ClientConfig{
			Network:     n.network,
			Addr:        addr,
			CallTimeout: n.opts.fetchTimeout(),
			Health: &rpc.HealthConfig{
				FailThreshold: n.opts.FailThreshold,
				ProbeInterval: n.opts.probeInterval(),
				OnEject:       func() { n.reg.Counter("membership.ejections").Inc() },
				OnReadmit:     func() { n.reg.Counter("membership.readmissions").Inc() },
				OnProbe:       func() { n.reg.Counter("membership.reprobes").Inc() },
			},
		})
		n.peers[addr] = rc
	}
	return rc
}
