// Package globalcache implements the first item of the paper's ongoing
// work (§5): "a global cache that can be shared by all the nodes ...
// before disk operations are really invoked."
//
// Every block has a home node, chosen by hashing its key over the node
// ring. When a node fetches a block from an iod it pushes a copy to the
// block's home (PeerPut); when a node misses locally it asks the home
// (PeerGet) before going to the iod. Cluster memory thus acts as a second
// cache level between the per-node caches and the daemons.
//
// The implementation is deliberately simple cooperative caching — no
// N-chance recirculation, no duplicate avoidance beyond home placement —
// as the paper describes the global cache only as a direction.
package globalcache

import (
	"errors"
	"fmt"
	"sync"

	"pvfscache/internal/blockio"
	"pvfscache/internal/cachemod/buffer"
	"pvfscache/internal/metrics"
	"pvfscache/internal/rpc"
	"pvfscache/internal/transport"
	"pvfscache/internal/wire"
)

// Ring maps blocks to home nodes.
type Ring struct {
	// Peers lists every node's peer-cache service address, in node order.
	Peers []string
	// Self is this node's index in Peers.
	Self int
}

// Valid reports whether the ring is usable.
func (r Ring) Valid() bool { return len(r.Peers) > 0 && r.Self >= 0 && r.Self < len(r.Peers) }

// Home returns the home node index for a block. It routes by the same mix
// hash (blockio.BlockKey.Mix) the buffer manager stripes its shards with.
func (r Ring) Home(key blockio.BlockKey) int {
	return int(key.Mix() % uint64(len(r.Peers)))
}

// Service answers PeerGet and PeerPut requests against a node's buffer
// manager. Run one per node, listening on the node's ring address. It is a
// thin handler over the shared rpc server core: peers keep several
// requests in flight and block buffers are recycled once written.
type Service struct {
	buf *buffer.Manager
	reg *metrics.Registry
	l   transport.Listener
	srv *rpc.Server

	blockBufs rpc.BufPool
}

// NewService starts serving the buffer manager's contents on l.
func NewService(buf *buffer.Manager, l transport.Listener, reg *metrics.Registry) *Service {
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	s := &Service{buf: buf, reg: reg, l: l}
	s.srv = rpc.NewServer(rpc.HandlerFunc(s.handle), rpc.ServerConfig{
		AfterWrite: s.recycle,
	})
	go s.srv.Serve(l)
	return s
}

// Close stops the service and its connections.
func (s *Service) Close() error {
	err := s.l.Close()
	s.srv.Close()
	return err
}

func (s *Service) handle(msg wire.Message) wire.Message {
	switch m := msg.(type) {
	case *wire.PeerGet:
		data := s.blockBufs.Get(s.buf.BlockSize())
		key := blockio.BlockKey{File: m.File, Index: m.Index}
		if s.buf.ReadSpan(key, 0, data) {
			s.reg.Counter("gcache.serve_hits").Inc()
			return &wire.PeerGetResp{Status: wire.StatusOK, Data: data}
		}
		s.blockBufs.Put(data)
		s.reg.Counter("gcache.serve_misses").Inc()
		return &wire.PeerGetResp{Status: wire.StatusNotFound}
	case *wire.PeerPut:
		// Wire-supplied Data is peer-controlled. Legitimate peers always
		// push whole blocks; an oversize one would panic InsertClean, and
		// a SHORT one would be zero-filled and marked whole-valid — this
		// node would then serve those fabricated zero bytes to the whole
		// cluster as the block's home. Reject anything but a whole block.
		if len(m.Data) != s.buf.BlockSize() {
			return &wire.PeerPutAck{Status: wire.StatusBadRequest}
		}
		key := blockio.BlockKey{File: m.File, Index: m.Index}
		s.buf.InsertClean(key, int(m.Owner), m.Data)
		s.reg.Counter("gcache.puts_rx").Inc()
		return &wire.PeerPutAck{Status: wire.StatusOK}
	default:
		return nil
	}
}

// recycle returns a served block buffer to the pool after the response has
// been written.
func (s *Service) recycle(resp wire.Message) {
	if gr, ok := resp.(*wire.PeerGetResp); ok {
		s.blockBufs.Put(gr.Data)
	}
}

// Client queries and feeds the global cache from one node. Peer round
// trips ride the shared rpc core: one pooled, multiplexed rpc.Client per
// peer node. Block copies queued for pushing live in a pool and are
// recycled once the push round trip completes.
type Client struct {
	ring    Ring
	network transport.Network
	reg     *metrics.Registry

	mu    sync.Mutex
	peers map[int]*rpc.Client

	pushBufs rpc.BufPool
	pushCh   chan wire.PeerPut
	wg       sync.WaitGroup
	stop     chan struct{}
	once     sync.Once
}

// NewClient returns a client for the given ring. Pushes are delivered by a
// background forwarder; a full push queue drops pushes rather than
// blocking the read path.
func NewClient(ring Ring, network transport.Network, reg *metrics.Registry) (*Client, error) {
	if !ring.Valid() {
		return nil, errors.New("globalcache: invalid ring")
	}
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	c := &Client{
		ring:    ring,
		network: network,
		reg:     reg,
		peers:   make(map[int]*rpc.Client),
		pushCh:  make(chan wire.PeerPut, 256),
		stop:    make(chan struct{}),
	}
	c.wg.Add(1)
	go c.pushLoop()
	return c, nil
}

// Close stops the forwarder and closes peer connections.
func (c *Client) Close() error {
	c.once.Do(func() { close(c.stop) })
	c.wg.Wait()
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, rc := range c.peers {
		rc.Close()
	}
	c.peers = make(map[int]*rpc.Client)
	return nil
}

// Get fetches a block from its home node's cache into dst and reports the
// number of payload bytes the peer returned along with whether the get
// hit. It returns (0, false) when this node is the home, the home is
// unreachable, or the home misses. A healthy peer always serves a whole
// block; the caller must validate n against its block size before trusting
// dst. The peer's response bytes are copied out of their leased frame
// before this returns, so dst is caller-owned plain memory.
func (c *Client) Get(key blockio.BlockKey, dst []byte) (n int, ok bool) {
	home := c.ring.Home(key)
	if home == c.ring.Self {
		return 0, false
	}
	res, err := c.roundTrip(home, &wire.PeerGet{File: key.File, Index: key.Index})
	if err != nil {
		return 0, false
	}
	defer res.Release()
	gr, ok := res.Msg.(*wire.PeerGetResp)
	if !ok || gr.Status != wire.StatusOK {
		c.reg.Counter("gcache.get_misses").Inc()
		return 0, false
	}
	c.reg.Counter("gcache.get_hits").Inc()
	copy(dst, gr.Data)
	return len(gr.Data), true
}

// Push asynchronously forwards a freshly fetched block to its home node.
// Blocks homed at this node are ignored (they are already in the local
// cache). data is copied into a pooled buffer before Push returns, so the
// caller may recycle it immediately.
func (c *Client) Push(key blockio.BlockKey, owner int, data []byte) {
	home := c.ring.Home(key)
	if home == c.ring.Self {
		return
	}
	cp := c.pushBufs.Get(len(data))
	copy(cp, data)
	select {
	case c.pushCh <- wire.PeerPut{File: key.File, Index: key.Index, Owner: uint32(owner), Data: cp}:
	default:
		c.pushBufs.Put(cp)
		c.reg.Counter("gcache.push_dropped").Inc()
	}
}

func (c *Client) pushLoop() {
	defer c.wg.Done()
	for {
		select {
		case <-c.stop:
			return
		case put := <-c.pushCh:
			home := c.ring.Home(blockio.BlockKey{File: put.File, Index: put.Index})
			if res, err := c.roundTrip(home, &put); err == nil {
				res.Release()
				c.reg.Counter("gcache.push_tx").Inc()
			}
			c.pushBufs.Put(put.Data)
		}
	}
}

// roundTrip performs one synchronous exchange with a peer, retrying once
// so a stale pooled connection gets one redial before the peer is treated
// as unreachable. The caller owns the returned result's lease.
func (c *Client) roundTrip(peer int, req wire.Message) (rpc.Result, error) {
	rc := c.peerClient(peer)
	res := rc.Call(req)
	if res.Err != nil {
		res = rc.Call(req)
	}
	if res.Err != nil {
		return rpc.Result{}, fmt.Errorf("globalcache: peer %d unreachable: %w", peer, res.Err)
	}
	return res, nil
}

func (c *Client) peerClient(peer int) *rpc.Client {
	c.mu.Lock()
	defer c.mu.Unlock()
	rc := c.peers[peer]
	if rc == nil {
		rc = rpc.NewClient(rpc.ClientConfig{Network: c.network, Addr: c.ring.Peers[peer]})
		c.peers[peer] = rc
	}
	return rc
}
