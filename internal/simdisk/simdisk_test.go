package simdisk

import (
	"bytes"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestStoreReadWriteRoundTrip(t *testing.T) {
	s := NewStore()
	data := []byte("the quick brown fox")
	s.WriteAt(1, 100, data)

	buf := make([]byte, len(data))
	n := s.ReadAt(1, 100, buf)
	if n != len(data) || !bytes.Equal(buf, data) {
		t.Fatalf("got %d bytes %q", n, buf[:n])
	}
	if s.Size(1) != 100+int64(len(data)) {
		t.Errorf("size = %d", s.Size(1))
	}
}

func TestStoreSparseReadIsZeroFilled(t *testing.T) {
	s := NewStore()
	s.WriteAt(1, 8192, []byte{0xFF})
	buf := make([]byte, 16)
	n := s.ReadAt(1, 0, buf)
	if n != 16 {
		t.Fatalf("n = %d", n)
	}
	for i, b := range buf {
		if b != 0 {
			t.Fatalf("byte %d = %x, want 0 (sparse hole)", i, b)
		}
	}
}

func TestStoreReadPastEndShort(t *testing.T) {
	s := NewStore()
	s.WriteAt(2, 0, []byte("abc"))
	buf := make([]byte, 10)
	if n := s.ReadAt(2, 0, buf); n != 3 {
		t.Errorf("n = %d, want 3", n)
	}
	if n := s.ReadAt(2, 5, buf); n != 0 {
		t.Errorf("read past end n = %d, want 0", n)
	}
	if n := s.ReadAt(99, 0, buf); n != 0 {
		t.Errorf("read missing file n = %d, want 0", n)
	}
}

func TestStoreOverwrite(t *testing.T) {
	s := NewStore()
	s.WriteAt(1, 0, []byte("aaaaaa"))
	s.WriteAt(1, 2, []byte("BB"))
	buf := make([]byte, 6)
	s.ReadAt(1, 0, buf)
	if string(buf) != "aaBBaa" {
		t.Errorf("got %q", buf)
	}
}

func TestStoreDelete(t *testing.T) {
	s := NewStore()
	s.WriteAt(1, 0, []byte("x"))
	if s.Files() != 1 {
		t.Fatalf("files = %d", s.Files())
	}
	s.Delete(1)
	if s.Files() != 0 || s.Size(1) != 0 {
		t.Error("delete did not remove file")
	}
}

func TestStoreEmptyWriteNoop(t *testing.T) {
	s := NewStore()
	s.WriteAt(1, 100, nil)
	if s.Files() != 0 {
		t.Error("empty write created a file")
	}
}

func TestStoreConcurrentDisjointWriters(t *testing.T) {
	s := NewStore()
	const writers = 8
	const chunk = 1024
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			data := bytes.Repeat([]byte{byte(id + 1)}, chunk)
			s.WriteAt(7, int64(id*chunk), data)
		}(w)
	}
	wg.Wait()
	buf := make([]byte, chunk)
	for w := 0; w < writers; w++ {
		s.ReadAt(7, int64(w*chunk), buf)
		for i, b := range buf {
			if b != byte(w+1) {
				t.Fatalf("writer %d byte %d = %x", w, i, b)
			}
		}
	}
}

// Property: a write followed by a read of the same range returns the data.
func TestStoreWriteReadProperty(t *testing.T) {
	s := NewStore()
	f := func(off uint16, data []byte) bool {
		if len(data) == 0 {
			return true
		}
		s.WriteAt(3, int64(off), data)
		buf := make([]byte, len(data))
		n := s.ReadAt(3, int64(off), buf)
		return n == len(data) && bytes.Equal(buf, data)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestModelSequentialSkipsSeek(t *testing.T) {
	m := DefaultModel()
	first := m.AccessTime(1, 0, 4096)
	second := m.AccessTime(1, 4096, 4096) // continues where first ended
	third := m.AccessTime(1, 1<<20, 4096) // jumps away

	if first <= second {
		t.Errorf("first access %v should pay seek, sequential %v should not", first, second)
	}
	wantSeq := m.TransferTime(4096)
	if second != wantSeq {
		t.Errorf("sequential access = %v, want pure transfer %v", second, wantSeq)
	}
	if third != m.AvgSeek+m.AvgRotation+wantSeq {
		t.Errorf("random access = %v", third)
	}
}

func TestModelDifferentFileBreaksSequentiality(t *testing.T) {
	m := DefaultModel()
	m.AccessTime(1, 0, 4096)
	d := m.AccessTime(2, 4096, 4096)
	if d == m.TransferTime(4096) {
		t.Error("access to a different file must pay positioning time")
	}
}

func TestModelReset(t *testing.T) {
	m := DefaultModel()
	m.AccessTime(1, 0, 4096)
	m.Reset()
	d := m.AccessTime(1, 4096, 4096)
	if d == m.TransferTime(4096) {
		t.Error("reset should clear sequential state")
	}
}

func TestModelTransferTimeScalesLinearly(t *testing.T) {
	m := DefaultModel()
	t1 := m.TransferTime(1 << 20)
	t2 := m.TransferTime(2 << 20)
	if t2 < t1*2-time.Microsecond || t2 > t1*2+time.Microsecond {
		t.Errorf("transfer not linear: %v vs %v", t1, t2)
	}
	if m.TransferTime(0) != 0 || m.TransferTime(-5) != 0 {
		t.Error("non-positive length should cost zero")
	}
}

func TestModelZeroRateNoPanic(t *testing.T) {
	m := &Model{AvgSeek: time.Millisecond}
	if m.TransferTime(100) != 0 {
		t.Error("zero rate should cost zero transfer")
	}
}
