package simdisk

import (
	"sync"
	"time"

	"pvfscache/internal/blockio"
)

// Model computes access times for a single disk. It follows the classic
// seek + rotation + transfer decomposition, with a track-cache shortcut:
// an access that continues exactly where the previous one on the same file
// ended pays transfer time only, matching the sequential read-ahead
// behaviour of the IDE drives in the paper's testbed.
//
// A Model is safe for concurrent use; the sequential-position tracking is
// serialized, which also reflects that one disk services one request at a
// time.
type Model struct {
	// AvgSeek is the average head seek time charged to non-sequential
	// accesses.
	AvgSeek time.Duration
	// AvgRotation is the average rotational latency (half a revolution).
	AvgRotation time.Duration
	// TransferRate is the media transfer rate in bytes per second.
	TransferRate float64

	mu       sync.Mutex
	lastFile blockio.FileID
	lastEnd  int64
	valid    bool
}

// DefaultModel returns a model calibrated to the paper's 20 GB Maxtor IDE
// class drive: ~9 ms average seek, 7200 rpm (4.17 ms average rotational
// latency), 20 MB/s media rate.
func DefaultModel() *Model {
	return &Model{
		AvgSeek:      9 * time.Millisecond,
		AvgRotation:  4170 * time.Microsecond,
		TransferRate: 20e6,
	}
}

// AccessTime returns the service time for reading or writing length bytes
// at the given file offset, updating the sequential-position state.
func (m *Model) AccessTime(file blockio.FileID, offset, length int64) time.Duration {
	if length < 0 {
		length = 0
	}
	m.mu.Lock()
	sequential := m.valid && m.lastFile == file && m.lastEnd == offset
	m.lastFile = file
	m.lastEnd = offset + length
	m.valid = true
	m.mu.Unlock()

	d := m.TransferTime(length)
	if !sequential {
		d += m.AvgSeek + m.AvgRotation
	}
	return d
}

// TransferTime returns the pure media transfer time for length bytes.
func (m *Model) TransferTime(length int64) time.Duration {
	if length <= 0 || m.TransferRate <= 0 {
		return 0
	}
	return time.Duration(float64(length) / m.TransferRate * float64(time.Second))
}

// Reset clears the sequential-position state (e.g. between experiments).
func (m *Model) Reset() {
	m.mu.Lock()
	m.valid = false
	m.mu.Unlock()
}
