package simdisk

import (
	"bytes"
	"sync"
	"testing"
)

// TestDeleteWriteRaceOrdering pins the delete/write race from the PR 8
// bug sweep: a WriteAt that looked the file up, then lost a race with
// Delete before taking the file lock, used to land its bytes on the
// detached buffer — acked but unreachable. With the dead-flag retry the
// delete is ordered before the write, so the write recreates the file
// and its bytes stay observable.
func TestDeleteWriteRaceOrdering(t *testing.T) {
	s := NewStore()
	s.WriteAt(7, 0, []byte("old contents"))

	fired := false
	testHookWriteLookup = func() {
		if fired {
			return
		}
		fired = true
		// Interleave the delete exactly in the window between the writer's
		// map lookup and its file lock.
		s.Delete(7)
	}
	defer func() { testHookWriteLookup = nil }()

	payload := []byte("new contents")
	s.WriteAt(7, 0, payload)
	if !fired {
		t.Fatal("test hook never fired")
	}

	got := make([]byte, len(payload))
	if n := s.ReadAt(7, 0, got); n != len(payload) || !bytes.Equal(got, payload) {
		t.Fatalf("write after delete vanished: read %d bytes %q, want %q", n, got[:n], payload)
	}
	if sz := s.Size(7); sz != int64(len(payload)) {
		t.Fatalf("Size = %d, want %d (old size must not survive the delete)", sz, len(payload))
	}
}

// TestDeleteWriteRaceStress hammers concurrent WriteAt/Delete/ReadAt on
// one file under the race detector; the invariant checked at the end is
// the contract's: the final write (issued after every delete returned)
// is observable.
func TestDeleteWriteRaceStress(t *testing.T) {
	s := NewStore()
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			buf := make([]byte, 64)
			for i := 0; i < 500; i++ {
				switch (g + i) % 3 {
				case 0:
					s.WriteAt(1, int64(i%8)*64, buf)
				case 1:
					s.Delete(1)
				default:
					s.ReadAt(1, 0, buf)
				}
			}
		}(g)
	}
	wg.Wait()

	final := []byte("survivor")
	s.WriteAt(1, 0, final)
	got := make([]byte, len(final))
	if n := s.ReadAt(1, 0, got); n != len(final) || !bytes.Equal(got, final) {
		t.Fatalf("post-stress write not observable: read %d bytes %q", n, got[:n])
	}
}
