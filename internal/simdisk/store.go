// Package simdisk provides the storage substrate for the I/O daemons: an
// in-memory block store with sparse-file semantics, plus a seek/rotation/
// transfer-rate disk timing model calibrated to the paper's 20 GB IDE
// drives. The live system uses the store for bytes only; the discrete-event
// simulator additionally charges Model access times.
package simdisk

import (
	"sync"

	"pvfscache/internal/blockio"
)

// Store holds the strip data an iod serves. Files are sparse: reads past
// written data return short, and callers treat missing bytes as zero.
// A Store is safe for concurrent use.
type Store struct {
	mu    sync.RWMutex
	files map[blockio.FileID]*fileData
}

type fileData struct {
	mu   sync.RWMutex
	data []byte
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{files: make(map[blockio.FileID]*fileData)}
}

func (s *Store) file(id blockio.FileID, create bool) *fileData {
	s.mu.RLock()
	f := s.files[id]
	s.mu.RUnlock()
	if f != nil || !create {
		return f
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if f = s.files[id]; f == nil {
		f = &fileData{}
		s.files[id] = f
	}
	return f
}

// WriteAt stores p at offset off of the file, growing it as needed.
// Growth doubles capacity, so a sequential stream of extending writes —
// the flusher's steady state — costs amortized O(1) reallocations rather
// than re-copying the whole file per write.
func (s *Store) WriteAt(id blockio.FileID, off int64, p []byte) {
	if len(p) == 0 {
		return
	}
	f := s.file(id, true)
	f.mu.Lock()
	defer f.mu.Unlock()
	end := off + int64(len(p))
	if int64(len(f.data)) < end {
		if int64(cap(f.data)) >= end {
			// Capacity reserved by an earlier growth: the extension bytes
			// were zeroed when the backing array was allocated and are
			// untouched since (data never shrinks), so sparse reads of the
			// gap stay zero.
			f.data = f.data[:end]
		} else {
			newCap := int64(2 * cap(f.data))
			if newCap < end {
				newCap = end
			}
			grown := make([]byte, end, newCap)
			copy(grown, f.data)
			f.data = grown
		}
	}
	copy(f.data[off:end], p)
}

// ReadAt copies up to len(p) bytes from offset off into p. It returns the
// number of bytes copied, which is short when the range extends past the
// stored size. It never returns an error: missing data is simply absent.
func (s *Store) ReadAt(id blockio.FileID, off int64, p []byte) int {
	f := s.file(id, false)
	if f == nil {
		return 0
	}
	f.mu.RLock()
	defer f.mu.RUnlock()
	if off >= int64(len(f.data)) {
		return 0
	}
	return copy(p, f.data[off:])
}

// Size returns the stored size of the file (0 if absent).
func (s *Store) Size(id blockio.FileID) int64 {
	f := s.file(id, false)
	if f == nil {
		return 0
	}
	f.mu.RLock()
	defer f.mu.RUnlock()
	return int64(len(f.data))
}

// Delete removes a file's data.
func (s *Store) Delete(id blockio.FileID) {
	s.mu.Lock()
	delete(s.files, id)
	s.mu.Unlock()
}

// Files returns the number of files with stored data.
func (s *Store) Files() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.files)
}
