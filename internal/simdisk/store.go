// Package simdisk provides the storage substrate for the I/O daemons: an
// in-memory block store with sparse-file semantics, plus a seek/rotation/
// transfer-rate disk timing model calibrated to the paper's 20 GB IDE
// drives. The live system uses the store for bytes only; the discrete-event
// simulator additionally charges Model access times.
package simdisk

import (
	"sync"

	"pvfscache/internal/blockio"
)

// Store holds the strip data an iod serves. Files are sparse: reads past
// written data return short, and callers treat missing bytes as zero.
// A Store is safe for concurrent use and honors the storage.Backend
// ordering contract: a WriteAt that returns after a Delete returned
// recreates the file, and never lands on the deleted file's detached
// buffer (see fileData.dead).
type Store struct {
	mu    sync.RWMutex
	files map[blockio.FileID]*fileData
}

// fileData is one file's backing buffer. dead is set (under mu) by
// Delete after the entry leaves the Store map: an operation that
// captured the pointer before the delete re-looks the file up instead
// of touching the orphan, so an acknowledged write can never vanish
// into a buffer no reader can reach.
type fileData struct {
	mu   sync.RWMutex
	data []byte
	dead bool
}

// testHookWriteLookup, when non-nil, runs in WriteAt between the map
// lookup and taking the file lock — the window the delete/write race
// regression test widens deterministically.
var testHookWriteLookup func()

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{files: make(map[blockio.FileID]*fileData)}
}

func (s *Store) file(id blockio.FileID, create bool) *fileData {
	s.mu.RLock()
	f := s.files[id]
	s.mu.RUnlock()
	if f != nil || !create {
		return f
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if f = s.files[id]; f == nil {
		f = &fileData{}
		s.files[id] = f
	}
	return f
}

// WriteAt stores p at offset off of the file, growing it as needed.
// Growth doubles capacity, so a sequential stream of extending writes —
// the flusher's steady state — costs amortized O(1) reallocations rather
// than re-copying the whole file per write.
func (s *Store) WriteAt(id blockio.FileID, off int64, p []byte) {
	if len(p) == 0 {
		return
	}
	for {
		f := s.file(id, true)
		if testHookWriteLookup != nil {
			testHookWriteLookup()
		}
		f.mu.Lock()
		if f.dead {
			// A concurrent Delete detached this buffer after our lookup.
			// Retry: the fresh lookup recreates the file, so the write is
			// observable — the delete is ordered before it.
			f.mu.Unlock()
			continue
		}
		end := off + int64(len(p))
		if int64(len(f.data)) < end {
			if int64(cap(f.data)) >= end {
				// Capacity reserved by an earlier growth: the extension bytes
				// were zeroed when the backing array was allocated and are
				// untouched since (data never shrinks), so sparse reads of the
				// gap stay zero.
				f.data = f.data[:end]
			} else {
				newCap := int64(2 * cap(f.data))
				if newCap < end {
					newCap = end
				}
				grown := make([]byte, end, newCap)
				copy(grown, f.data)
				f.data = grown
			}
		}
		copy(f.data[off:end], p)
		f.mu.Unlock()
		return
	}
}

// ReadAt copies up to len(p) bytes from offset off into p. It returns the
// number of bytes copied, which is short when the range extends past the
// stored size. It never returns an error: missing data is simply absent.
func (s *Store) ReadAt(id blockio.FileID, off int64, p []byte) int {
	for {
		f := s.file(id, false)
		if f == nil {
			return 0
		}
		f.mu.RLock()
		if f.dead {
			f.mu.RUnlock()
			continue
		}
		n := 0
		if off < int64(len(f.data)) {
			n = copy(p, f.data[off:])
		}
		f.mu.RUnlock()
		return n
	}
}

// Size returns the stored size of the file (0 if absent).
func (s *Store) Size(id blockio.FileID) int64 {
	for {
		f := s.file(id, false)
		if f == nil {
			return 0
		}
		f.mu.RLock()
		if f.dead {
			f.mu.RUnlock()
			continue
		}
		n := int64(len(f.data))
		f.mu.RUnlock()
		return n
	}
}

// Delete removes a file's data. The buffer is marked dead after it
// leaves the map so in-flight operations that already hold the pointer
// retry against the live map instead of using the orphan.
func (s *Store) Delete(id blockio.FileID) {
	s.mu.Lock()
	f := s.files[id]
	delete(s.files, id)
	s.mu.Unlock()
	if f != nil {
		f.mu.Lock()
		f.dead = true
		f.mu.Unlock()
	}
}

// Files returns the number of files with stored data.
func (s *Store) Files() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.files)
}
