package chaos

import (
	"errors"
	"os"
	"testing"

	"pvfscache/internal/testseed"
	"pvfscache/internal/workload"
)

// cellParams sizes a matrix cell: small enough that the full matrix
// stays inside tier-1's budget, smaller still under -short.
func cellParams(t *testing.T) workload.Params {
	p := workload.Params{Clients: 4, Nodes: 2, OpsPerClient: 60, FileSize: 128 << 10, MaxIO: 8 << 10}
	if testing.Short() {
		p.Clients = 3
		p.OpsPerClient = 36
	}
	return p
}

func runCell(t *testing.T, scenario, fault string, tcp bool) {
	t.Helper()
	seed := testseed.Base(t)
	res, err := Run(RunConfig{
		Scenario: scenario,
		Fault:    fault,
		Seed:     seed,
		Params:   cellParams(t),
		TCP:      tcp,
		Log:      t.Logf,
	})
	if errors.Is(err, ErrTCPUnavailable) {
		t.Skipf("%v", err)
	}
	if err != nil {
		t.Fatalf("chaos run failed: %v", err)
	}
	if res.Ops == 0 {
		t.Fatal("run recorded no ops")
	}
	// Progress-triggered faults always engage (the threshold is passed at
	// the latest when the run completes); only the traffic-triggered
	// crash may legitimately sit out a run with no flush frames.
	switch fault {
	case "partition", "brownout", "connkill", "killpeer", "join", "drain":
		if res.FaultStart == 0 {
			t.Fatalf("%s fault never engaged", fault)
		}
	}
	if fault == "none" && res.OpErrors != 0 {
		t.Fatalf("fault-free run had %d op errors", res.OpErrors)
	}
	// A dead peer cache or a ring join tears nothing on the data path
	// down: gets fail over inside their bounded timeouts, so these runs
	// tolerate no op errors at all.
	if (fault == "killpeer" || fault == "join") && res.OpErrors != 0 {
		t.Fatalf("%s run had %d op errors; failover must be invisible", fault, res.OpErrors)
	}
}

// TestChaosMatrix is the tentpole entry point: every workload scenario ×
// every fault kind, on the in-memory fabric, each an independently
// runnable subtest (`-run 'TestChaosMatrix/zipfian/crash'`).
func TestChaosMatrix(t *testing.T) {
	for _, sc := range workload.Scenarios() {
		for _, fault := range Faults() {
			t.Run(sc.Name+"/"+fault, func(t *testing.T) {
				runCell(t, sc.Name, fault, false)
			})
		}
	}
}

// TestChaosMembership pairs the membership faults with the global-cache-
// safe scenarios: the cooperative cache runs in mgr-joined mode
// throughout while a peer cache dies, a new node joins the ring, or an
// iod drains and rejoins mid-workload — and the oracle still demands
// byte-for-byte durability with op errors bounded by the fault window.
func TestChaosMembership(t *testing.T) {
	for _, sc := range GCSafeScenarios() {
		for _, fault := range MembershipFaults() {
			t.Run(sc+"/"+fault, func(t *testing.T) {
				runCell(t, sc, fault, false)
			})
		}
	}
}

// TestChaosMatrixTCP runs every fault kind over real sockets — the
// acceptance criterion that the same fault plan serves both transports.
// Two scenarios bracket the space (disjoint streaming writes; shared
// hand-off); the full scenario set runs on the in-memory fabric above.
func TestChaosMatrixTCP(t *testing.T) {
	for _, sc := range []string{"sequential", "prodcons"} {
		for _, fault := range Faults() {
			t.Run(sc+"/"+fault, func(t *testing.T) {
				runCell(t, sc, fault, true)
			})
		}
	}
}

// TestChaosScaleStorm pushes client counts well past the per-node
// handful the rest of the suite uses — the "thousands of clients" axis
// scaled to CI budgets. Gated behind -short to keep tier-1 fast.
func TestChaosScaleStorm(t *testing.T) {
	if testing.Short() {
		t.Skip("scale storm skipped in -short mode")
	}
	seed := testseed.Base(t)
	res, err := Run(RunConfig{
		Scenario: "zipfian",
		Fault:    "connkill",
		Seed:     seed,
		Params: workload.Params{
			Clients: 64, Nodes: 2, OpsPerClient: 30,
			FileSize: 512 << 10, MaxIO: 4 << 10,
		},
		Log: t.Logf,
	})
	if err != nil {
		t.Fatalf("scale storm failed: %v", err)
	}
	t.Logf("storm: %d ops, %d errors, %v", res.Ops, res.OpErrors, res.Elapsed)
}

// TestChaosScaleStormLong is the promoted storm tier: ≥512 clients with a
// daemon restart and a membership drain riding the run — too heavy for
// every CI pass, so it opts in via CHAOS_LONG=1 (the nightly job; see
// docs/TESTING.md). The 64-client TestChaosScaleStorm above stays in the
// regular tier as the CI cell.
func TestChaosScaleStormLong(t *testing.T) {
	if os.Getenv("CHAOS_LONG") == "" {
		t.Skip("set CHAOS_LONG=1 to run the 512-client storm tier")
	}
	cases := []struct{ scenario, fault string }{
		{"zipfian", "restart"},  // shared hot-spot cache over a crash/recover cycle
		{"sequential", "drain"}, // streaming writers while an iod retires and rejoins
	}
	for _, tc := range cases {
		t.Run(tc.scenario+"/"+tc.fault, func(t *testing.T) {
			res, err := Run(RunConfig{
				Scenario: tc.scenario,
				Fault:    tc.fault,
				Seed:     testseed.Base(t),
				Params: workload.Params{
					Clients: 512, Nodes: 4, OpsPerClient: 12,
					FileSize: 4 << 20, MaxIO: 4 << 10,
				},
				Log: t.Logf,
			})
			if err != nil {
				t.Fatalf("long storm failed: %v", err)
			}
			if res.FaultStart == 0 {
				t.Fatalf("%s fault never engaged", tc.fault)
			}
			t.Logf("long storm: %d ops, %d errors, %v", res.Ops, res.OpErrors, res.Elapsed)
		})
	}
}
