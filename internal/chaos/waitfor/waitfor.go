// Package waitfor replaces fixed-sleep test synchronization with
// condition polling: wait until a predicate holds, with a deadline, and
// fail loudly when it never does. Fixed sleeps are either too short
// (flaky under load) or too long (slow suites); polling is both faster
// on the common path and deterministic about what it was waiting for.
package waitfor

import (
	"fmt"
	"testing"
	"time"
)

// Interval is the default polling granularity: coarse enough not to spin
// a starved scheduler, fine enough that waits end promptly.
const Interval = 2 * time.Millisecond

// Poll runs cond every Interval until it returns true or timeout
// elapses, and reports whether it ever held. cond runs at least once
// even with a non-positive timeout.
func Poll(timeout time.Duration, cond func() bool) bool {
	deadline := time.Now().Add(timeout)
	for {
		if cond() {
			return true
		}
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(Interval)
	}
}

// Until fails the test when cond does not hold within timeout. The
// message should name the condition being waited for.
func Until(t testing.TB, timeout time.Duration, cond func() bool, format string, args ...any) {
	t.Helper()
	if !Poll(timeout, cond) {
		t.Fatalf("waitfor: gave up after %v: %s", timeout, fmt.Sprintf(format, args...))
	}
}

// Stable is the inverse guard: it polls cond for the whole window and
// fails if it ever becomes false — for asserting that a state holds
// steadily (e.g. a warm working set stays resident), where a plain sleep
// both overshoots and hides when the violation happened.
func Stable(t testing.TB, window time.Duration, cond func() bool, format string, args ...any) {
	t.Helper()
	deadline := time.Now().Add(window)
	for time.Now().Before(deadline) {
		if !cond() {
			t.Fatalf("waitfor: condition broke within %v window: %s", window, fmt.Sprintf(format, args...))
		}
		time.Sleep(Interval)
	}
}
