package chaos

import (
	"bytes"
	"testing"
	"time"

	"pvfscache/internal/chaos/waitfor"
	"pvfscache/internal/cluster"
	"pvfscache/internal/pvfs"
	"pvfscache/internal/transport"
)

// TestFlushBackoffUnderIODDeath kills one iod's flush port under dirty
// write-behind data and watches the per-stream health surface: the dead
// daemon's stream must enter backoff and keep retrying (errors advance),
// the other streams must stay healthy, and when the daemon returns the
// stream must recover and drain — with the data readable from the
// restored daemon byte for byte.
func TestFlushBackoffUnderIODDeath(t *testing.T) {
	base := transport.NewMem()
	ctl := NewController(base)
	cl, err := cluster.Start(cluster.Config{
		Network:     base,
		NodeNetwork: func(n int) transport.Network { return ctl.View(nodeOrigin(n)) },
		Caching:     true,
		ClientNodes: 1,
		IODs:        2,
		FlushPeriod: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	mod := cl.Module(0)

	health := mod.StreamHealth()
	if len(health) != 2 {
		t.Fatalf("expected 2 flush streams, got %d", len(health))
	}
	for _, h := range health {
		if h.Failing || h.Errors != 0 || h.Backoff != 0 {
			t.Fatalf("stream %d unhealthy before any traffic: %+v", h.IOD, h)
		}
	}

	// Fail-stop iod 0's flush port, then dirty blocks striped over both
	// daemons (default 64 KB strips: the first strip of each cycle is iod
	// 0's).
	ctl.Cut(cl.IODFlushAddrs[0])
	proc, err := cl.NewProcess(0)
	if err != nil {
		t.Fatal(err)
	}
	defer proc.Close()
	f, err := proc.Create("bk/data", pvfs.StripeSpec{})
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 256<<10)
	for i := range data {
		data[i] = byte(i * 131)
	}
	if _, err := f.WriteAt(data, 0); err != nil {
		t.Fatalf("cached write: %v", err)
	}

	// The dead daemon's stream enters backoff and keeps retrying.
	waitfor.Until(t, 5*time.Second, func() bool {
		h := mod.StreamHealth()[0]
		return h.Failing && h.Errors >= 1 && h.Backoff > 0
	}, "stream 0 entering backoff after iod death")
	before := mod.StreamHealth()[0].Errors
	waitfor.Until(t, 5*time.Second, func() bool {
		return mod.StreamHealth()[0].Errors > before
	}, "stream 0 retrying (errors advancing past %d)", before)
	if h := mod.StreamHealth()[1]; h.Failing {
		t.Fatalf("healthy iod's stream went failing: %+v", h)
	}

	// Restore the daemon: the stream must recover, the backlog drain, and
	// the health surface go quiet again.
	ctl.Restore(cl.IODFlushAddrs[0])
	waitfor.Until(t, 10*time.Second, func() bool {
		return mod.FlushAll() == nil
	}, "drain succeeding after restore")
	waitfor.Until(t, 5*time.Second, func() bool {
		h := mod.StreamHealth()[0]
		return !h.Failing && h.Backoff == 0
	}, "stream 0 recovering after restore")

	// Every byte must have survived the outage via requeue.
	direct, err := pvfs.NewClient(pvfs.Config{
		Network: cl.Network, MgrAddr: cl.MgrAddr, IODAddrs: cl.IODDataAddrs,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer direct.Close()
	df, err := direct.Open("bk/data")
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if n, err := df.ReadAt(got, 0); err != nil || n != len(data) {
		t.Fatalf("read back: n=%d err=%v", n, err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("data corrupted across iod death and recovery")
	}
}
