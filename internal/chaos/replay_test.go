package chaos

import (
	"flag"
	"strings"
	"testing"

	"pvfscache/internal/cluster"
	"pvfscache/internal/pvfs"
	"pvfscache/internal/testseed"
	"pvfscache/internal/workload"
)

// -trace replays a saved chaos trace file: the reproduction path a
// failing run prints (`go test ./internal/chaos -run TestChaosReplay
// -trace=<path>`).
var traceFlag = flag.String("trace", "", "chaos trace file to replay")

// TestChaosReplay replays a trace deterministically in-process. With
// -trace it replays that file; without it, it self-tests the loop by
// recording a faulted run and replaying its trace.
func TestChaosReplay(t *testing.T) {
	if *traceFlag != "" {
		tr, err := workload.Load(*traceFlag)
		if err != nil {
			t.Fatalf("loading %s: %v", *traceFlag, err)
		}
		if err := Replay(tr, t.Logf); err != nil {
			t.Fatalf("replay: %v", err)
		}
		return
	}
	seed := testseed.Base(t)
	res, err := Run(RunConfig{
		Scenario: "prodcons",
		Fault:    "connkill",
		Seed:     seed,
		Params:   cellParams(t),
		TraceDir: t.TempDir(),
		Log:      t.Logf,
	})
	if err != nil {
		t.Fatalf("recording run: %v", err)
	}
	if res.TracePath == "" {
		t.Fatal("run saved no trace despite TraceDir")
	}
	tr, err := workload.Load(res.TracePath)
	if err != nil {
		t.Fatalf("loading recorded trace: %v", err)
	}
	if len(tr.Records) != res.Ops {
		t.Fatalf("trace has %d records, run reported %d ops", len(tr.Records), res.Ops)
	}
	if err := Replay(tr, t.Logf); err != nil {
		t.Fatalf("replay of recorded run: %v", err)
	}
}

// TestForcedFailureReplaysFromTrace is the acceptance check for the
// failure loop: corrupt durable bytes behind the oracle's back so the
// run provably fails, then verify the failure (a) prints seed + trace +
// reproduction command, (b) saved a trace whose op sequence regenerates
// bit-for-bit from the seed, and (c) replays cleanly — the op sequence
// was sound; the corruption, not the workload, was the failure.
func TestForcedFailureReplaysFromTrace(t *testing.T) {
	seed := testseed.Base(t)
	res, err := Run(RunConfig{
		Scenario: "sequential",
		Fault:    "partition",
		Seed:     seed,
		Params:   cellParams(t),
		TraceDir: t.TempDir(),
		Log:      t.Logf,
		Meddle: func(c *cluster.Cluster) {
			// Flip durable bytes out-of-band: XOR guarantees every byte
			// differs from whatever the oracle expects there.
			direct, err := pvfs.NewClient(pvfs.Config{
				Network: c.Network, MgrAddr: c.MgrAddr, IODAddrs: c.IODDataAddrs,
			})
			if err != nil {
				t.Fatalf("meddler client: %v", err)
			}
			defer direct.Close()
			f, err := direct.Open("wl/seq.dat")
			if err != nil {
				t.Fatalf("meddler open: %v", err)
			}
			buf := make([]byte, 4096)
			if _, err := f.ReadAt(buf, 0); err != nil {
				t.Fatalf("meddler read: %v", err)
			}
			for i := range buf {
				buf[i] ^= 0x5A
			}
			if _, err := f.WriteAt(buf, 0); err != nil {
				t.Fatalf("meddler write: %v", err)
			}
		},
	})
	if err == nil {
		t.Fatal("corrupted run passed the oracle")
	}
	if !strings.Contains(err.Error(), "durable byte") {
		t.Fatalf("failure is not the injected corruption: %v", err)
	}
	if !strings.Contains(err.Error(), "TestChaosReplay") || !strings.Contains(err.Error(), "-trace=") {
		t.Fatalf("failure does not print the reproduction command: %v", err)
	}
	if res == nil || res.TracePath == "" {
		t.Fatal("failed run saved no trace")
	}
	tr, err := workload.Load(res.TracePath)
	if err != nil {
		t.Fatalf("loading failure trace: %v", err)
	}
	if tr.Params.Seed != seed {
		t.Fatalf("trace carries seed %d, run used %d", tr.Params.Seed, seed)
	}
	// Same op sequence from printed seed + trace: Verify regenerates the
	// scenario from the seed and matches it record for record.
	if err := tr.Verify(); err != nil {
		t.Fatalf("trace diverges from its seed's op sequence: %v", err)
	}
	if err := Replay(tr, t.Logf); err != nil {
		t.Fatalf("clean replay of the failed run's op sequence: %v", err)
	}
}
