package chaos

import (
	"errors"
	"io"
	"sync"
	"testing"
	"time"

	"pvfscache/internal/chaos/waitfor"
	"pvfscache/internal/transport"
)

// echoAccept starts a listener that drains (and discards) everything
// each accepted conn sends.
func drainListener(t *testing.T, net transport.Network) string {
	t.Helper()
	l, err := net.Listen(":0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	go func() {
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			go io.Copy(io.Discard, c)
		}
	}()
	return l.Addr()
}

func TestCutRefusesDialsAndKillsConns(t *testing.T) {
	ctl := NewController(transport.NewMem())
	v := ctl.View("client")
	addr := drainListener(t, v)

	c, err := v.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Write([]byte("ok")); err != nil {
		t.Fatalf("pre-cut write: %v", err)
	}
	ctl.Cut(addr)
	if _, err := v.Dial(addr); !errors.Is(err, ErrInjected) {
		t.Fatalf("dial to cut addr: err=%v, want ErrInjected", err)
	}
	if _, err := c.Write([]byte("dead")); err == nil {
		t.Fatal("write on killed conn succeeded")
	}
	ctl.Restore(addr)
	c2, err := v.Dial(addr)
	if err != nil {
		t.Fatalf("dial after restore: %v", err)
	}
	if _, err := c2.Write([]byte("back")); err != nil {
		t.Fatalf("write after restore: %v", err)
	}
}

func TestPartitionBlocksDirectionallyUntilHeal(t *testing.T) {
	ctl := NewController(transport.NewMem())
	vA, vB := ctl.View("a"), ctl.View("b")
	addr := drainListener(t, vA)

	ca, err := vA.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	cb, err := vB.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	ctl.Partition([]string{"a"}, []string{addr})

	var mu sync.Mutex
	done := false
	go func() {
		ca.Write([]byte("blackholed"))
		mu.Lock()
		done = true
		mu.Unlock()
	}()
	// Origin b is unaffected — directionality.
	if _, err := cb.Write([]byte("flows")); err != nil {
		t.Fatalf("unpartitioned origin blocked: %v", err)
	}
	time.Sleep(20 * time.Millisecond)
	mu.Lock()
	early := done
	mu.Unlock()
	if early {
		t.Fatal("partitioned write completed before heal")
	}
	ctl.Heal()
	waitfor.Until(t, 2*time.Second, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return done
	}, "blackholed write completing after heal")
}

func TestKillUnblocksPartitionedWriter(t *testing.T) {
	ctl := NewController(transport.NewMem())
	v := ctl.View("a")
	addr := drainListener(t, v)
	c, err := v.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	ctl.Partition([]string{"a"}, []string{addr})
	errc := make(chan error, 1)
	go func() {
		_, err := c.Write([]byte("parked"))
		errc <- err
	}()
	time.Sleep(10 * time.Millisecond)
	ctl.Cut(addr) // kills the conn while its writer is parked in the blackhole
	select {
	case err := <-errc:
		if err == nil {
			t.Fatal("killed writer returned success")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("writer still parked after its connection was killed")
	}
}

func TestBrownoutDelaysWrites(t *testing.T) {
	ctl := NewController(transport.NewMem())
	v := ctl.View("a")
	addr := drainListener(t, v)
	c, err := v.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	const delay = 10 * time.Millisecond
	ctl.Brownout(delay, addr)
	start := time.Now()
	if _, err := c.Write([]byte("slow")); err != nil {
		t.Fatal(err)
	}
	if took := time.Since(start); took < delay {
		t.Fatalf("browned-out write took %v, want >= %v", took, delay)
	}
	ctl.Heal()
	start = time.Now()
	if _, err := c.Write([]byte("fast")); err != nil {
		t.Fatal(err)
	}
	if took := time.Since(start); took > delay {
		t.Fatalf("healed write still slow: %v", took)
	}
}

func TestShortWriteDeliversHalfFiresHookKillsConn(t *testing.T) {
	ctl := NewController(transport.NewMem())
	v := ctl.View("a")
	l, err := v.Listen(":0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	got := make(chan []byte, 1)
	go func() {
		c, err := l.Accept()
		if err != nil {
			return
		}
		b, _ := io.ReadAll(c)
		got <- b
	}()

	hooked := make(chan struct{})
	ctl.ArmShortWrite(l.Addr(), 1, func() { close(hooked) })
	c, err := v.Dial(l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Write([]byte("first-ok")); err != nil {
		t.Fatalf("write before the armed count: %v", err)
	}
	payload := []byte("0123456789abcdef")
	n, err := c.Write(payload)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("armed write: n=%d err=%v, want ErrInjected", n, err)
	}
	if n != len(payload)/2 {
		t.Fatalf("armed write delivered %d bytes, want %d", n, len(payload)/2)
	}
	select {
	case <-hooked:
	case <-time.After(time.Second):
		t.Fatal("hook never fired")
	}
	if _, err := c.Write([]byte("x")); err == nil {
		t.Fatal("conn survived the short write")
	}
	// The peer sees exactly the pre-arm bytes plus the torn half frame.
	select {
	case b := <-got:
		want := "first-ok" + "01234567"
		if string(b) != want {
			t.Fatalf("peer received %q, want %q", b, want)
		}
	case <-time.After(time.Second):
		t.Fatal("peer never saw EOF")
	}
	if ctl.Disarm(l.Addr()) {
		t.Fatal("arm still pending after firing")
	}
}

func TestViewsShareOneFabric(t *testing.T) {
	ctl := NewController(transport.NewMem())
	addr := drainListener(t, ctl.View("server"))
	for _, origin := range []string{"node0", "node1"} {
		c, err := ctl.View(origin).Dial(addr)
		if err != nil {
			t.Fatalf("view %s dial: %v", origin, err)
		}
		if _, err := c.Write([]byte(origin)); err != nil {
			t.Fatalf("view %s write: %v", origin, err)
		}
		c.Close()
	}
}
