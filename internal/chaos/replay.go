package chaos

import (
	"fmt"
	"sort"

	"pvfscache/internal/cachemod"
	"pvfscache/internal/cluster"
	"pvfscache/internal/pvfs"
	"pvfscache/internal/workload"
)

// Replay re-executes a recorded chaos trace deterministically in-process:
// it verifies the trace's ops are exactly what its seed + scenario
// regenerate (so a trace file and a seed are interchangeable evidence),
// boots a fresh fault-free cluster, and executes every record in the
// recorded global order on a single thread — same clients, same files,
// same offsets, same payloads (regenerated from the op parameters). The
// oracle judges every read and the final image; with no faults injected
// the run must be byte-perfect, so any disagreement points at a real
// data-path bug rather than at scheduling.
func Replay(tr *workload.Trace, logf func(format string, args ...any)) error {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	if err := tr.Verify(); err != nil {
		return fmt.Errorf("chaos: trace does not match its seed's scenario: %w", err)
	}
	spec, err := tr.Regenerate()
	if err != nil {
		return err
	}
	logf("chaos: replaying %s seed=%d: %d records, %d clients",
		tr.Scenario, tr.Params.Seed, len(tr.Records), len(spec.Ops))

	cl, err := cluster.Start(cluster.Config{
		IODs:        4,
		ClientNodes: spec.Params.Nodes,
		Caching:     true,
	})
	if err != nil {
		return err
	}
	defer cl.Close()

	oracle := NewOracle(tr.Params.Seed, spec.Files)
	setup, err := pvfs.NewClient(pvfs.Config{
		Network: cl.Network, MgrAddr: cl.MgrAddr, IODAddrs: cl.IODDataAddrs,
	})
	if err != nil {
		return err
	}
	defer setup.Close()
	for fi, fs := range spec.Files {
		f, err := setup.Create(fs.Name, pvfs.StripeSpec{SSize: uint32(fs.SSize), PCount: uint32(fs.PCount)})
		if err != nil {
			return fmt.Errorf("chaos: replay setup create %s: %w", fs.Name, err)
		}
		img := oracle.InitImage(fi)
		for off := 0; off < len(img); off += 256 << 10 {
			end := min(off+256<<10, len(img))
			if _, err := f.WriteAt(img[off:end], int64(off)); err != nil {
				return fmt.Errorf("chaos: replay setup write %s: %w", fs.Name, err)
			}
		}
	}

	type clientCtx struct {
		proc  *pvfs.Client
		files []*pvfs.File
		mod   *cachemod.Module
	}
	clients := make([]clientCtx, len(spec.Ops))
	for c := range clients {
		node := spec.Placement[c]
		proc, err := cl.NewProcess(node)
		if err != nil {
			return err
		}
		defer proc.Close()
		cc := clientCtx{proc: proc, mod: cl.Module(node)}
		for _, fs := range spec.Files {
			f, err := proc.Open(fs.Name)
			if err != nil {
				return err
			}
			cc.files = append(cc.files, f)
		}
		clients[c] = cc
	}

	recs := make([]workload.Record, len(tr.Records))
	copy(recs, tr.Records)
	sort.Slice(recs, func(i, j int) bool { return recs[i].Seq < recs[j].Seq })
	buf := make([]byte, spec.Params.MaxIO)
	for _, rec := range recs {
		op := rec.Op
		if op.Client < 0 || op.Client >= len(clients) {
			return fmt.Errorf("chaos: replay record %d names client %d", op.Seq, op.Client)
		}
		cc := clients[op.Client]
		switch op.Kind {
		case workload.KindWrite:
			data := oracle.BeginWrite(op)
			_, err := cc.files[op.File].WriteAt(data, op.Off)
			oracle.EndWrite(op, err)
			if err != nil {
				return fmt.Errorf("chaos: replay write op %d failed without faults: %w", op.Seq, err)
			}
		case workload.KindRead:
			snap := oracle.BeginRead(op)
			n, err := cc.files[op.File].ReadAt(buf[:op.Len], op.Off)
			if err != nil || int64(n) != op.Len {
				return fmt.Errorf("chaos: replay read op %d: n=%d err=%v", op.Seq, n, err)
			}
			if err := oracle.CheckRead(op, snap, buf[:op.Len]); err != nil {
				return fmt.Errorf("chaos: replay diverged: %w", err)
			}
		case workload.KindFlush:
			if err := cc.mod.FlushAll(); err != nil {
				return fmt.Errorf("chaos: replay flush op %d: %w", op.Seq, err)
			}
		case workload.KindBarrier:
			// Single-threaded Seq-order execution makes the rendezvous a
			// no-op: everything before the barrier already ran.
		case workload.KindCreate:
			f, err := cc.proc.Create(scratchName(op.Client, op.File), pvfs.StripeSpec{})
			if err != nil {
				return fmt.Errorf("chaos: replay create op %d: %w", op.Seq, err)
			}
			f.Close()
		case workload.KindUnlink:
			// The original may have failed this op mid-fault (nothing to
			// unlink); replay tolerates the same.
			if err := cc.proc.Unlink(scratchName(op.Client, op.File)); err != nil && rec.Err == "" {
				return fmt.Errorf("chaos: replay unlink op %d: %w", op.Seq, err)
			}
		case workload.KindList:
			if _, err := cc.proc.List(); err != nil {
				return fmt.Errorf("chaos: replay list op %d: %w", op.Seq, err)
			}
		}
	}

	if err := cl.FlushAll(); err != nil {
		return fmt.Errorf("chaos: replay final drain: %w", err)
	}
	final, err := pvfs.NewClient(pvfs.Config{
		Network: cl.Network, MgrAddr: cl.MgrAddr, IODAddrs: cl.IODDataAddrs,
	})
	if err != nil {
		return err
	}
	defer final.Close()
	handles := make([]*pvfs.File, len(spec.Files))
	for fi, fs := range spec.Files {
		if handles[fi], err = final.Open(fs.Name); err != nil {
			return err
		}
	}
	if err := oracle.FinalCheck(func(file int, off int64, p []byte) error {
		n, err := handles[file].ReadAt(p, off)
		if err == nil && n != len(p) {
			err = fmt.Errorf("short read %d of %d", n, len(p))
		}
		return err
	}); err != nil {
		return fmt.Errorf("chaos: replay durable image diverged: %w", err)
	}
	logf("chaos: replay of %d records completed byte-perfect", len(recs))
	return nil
}
