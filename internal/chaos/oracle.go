package chaos

import (
	"fmt"
	"sync"

	"pvfscache/internal/workload"
)

// Oracle is the byte-for-byte consistency model of one chaos run,
// generalized from the PR 3 consistency test with bounded-error
// accounting for faults: every write's payload is a pure function of its
// op record (workload.Fill), so the oracle maintains a reference image
// per file and classifies every observed byte against it.
//
// Fault accounting: an op-level write failure does not mean the bytes
// are absent — the failure may have struck after the data reached the
// cache or the daemon (at-least-once semantics at the transport). Failed
// writes therefore move to an *in-doubt* list: each affected byte may
// durably read as either the old value or the doubted value, and nothing
// else. A later successful write to the same bytes resolves the doubt
// (write-behind keeps newest-wins ordering in the cache), so doubt
// entries are clipped as successor writes complete. The bound: the
// final image may differ from the reference only at bytes covered by
// in-doubt writes, and only with those writes' values.
//
// Read acceptance is per byte against five sources — the reference
// snapshot when the read began, the reference at check time, any pending
// (in-flight) or in-doubt write covering the byte, and any write that was
// applied to the reference while the read was in flight. The last source
// closes a window-accounting hole: a read concurrent with two
// back-to-back writes to the same byte may legally return the first
// write's value, yet by check time both writes have been applied, so the
// value matches neither the begin snapshot nor the current reference and
// has left the pending set. Together these accept every legal
// interleaving of concurrent writers (scenarios keep write regions
// disjoint per client, so "legal" is well defined byte-wise) while still
// catching lost updates, stale reads of flushed data, and torn
// multi-block writes with wrong content: a stale value predating the
// read's window is never admitted.
type Oracle struct {
	seed int64

	mu      sync.Mutex
	files   [][]byte // reference images, index = Spec file index
	pending map[uint64]writeRec
	doubt   []writeRec

	// applyTick counts reference-image applications; reads record it at
	// begin so window holds exactly the values that became current (or
	// left the doubt list) while some read was in flight.
	applyTick uint64
	window    []appliedRec
	reads     map[uint64]uint64 // active read Seq -> applyTick at begin
}

// appliedRec is one write (or clipped doubt fragment) that entered or
// left the legal-value set at tick, kept while a concurrent read that
// could have observed it is still unchecked.
type appliedRec struct {
	tick uint64
	rec  writeRec
}

type writeRec struct {
	seq  uint64
	file int
	off  int64
	data []byte
}

// NewOracle builds reference images for the spec's files, initialized to
// the deterministic setup pattern (Fill with seq 0). The harness writes
// InitImage's bytes during setup so images and cluster agree from byte
// zero.
func NewOracle(seed int64, files []workload.FileSpec) *Oracle {
	o := &Oracle{seed: seed, pending: make(map[uint64]writeRec), reads: make(map[uint64]uint64)}
	for i, fs := range files {
		img := make([]byte, fs.Size)
		workload.Fill(img, seed, i, 0, 0)
		o.files = append(o.files, img)
	}
	return o
}

// InitImage returns a copy of file's initial reference image for the
// setup writer.
func (o *Oracle) InitImage(file int) []byte {
	o.mu.Lock()
	defer o.mu.Unlock()
	img := make([]byte, len(o.files[file]))
	copy(img, o.files[file])
	return img
}

// BeginWrite registers op as in flight and returns the payload to write.
// op must already carry its Seq stamp.
func (o *Oracle) BeginWrite(op workload.Op) []byte {
	data := make([]byte, op.Len)
	workload.Fill(data, o.seed, op.File, op.Off, op.Seq)
	o.mu.Lock()
	o.pending[op.Seq] = writeRec{seq: op.Seq, file: op.File, off: op.Off, data: data}
	o.mu.Unlock()
	return data
}

// EndWrite resolves an in-flight write: success applies it to the
// reference image and clips any older doubt it overwrote; failure moves
// it to the in-doubt list.
func (o *Oracle) EndWrite(op workload.Op, err error) {
	o.mu.Lock()
	defer o.mu.Unlock()
	rec, ok := o.pending[op.Seq]
	if !ok {
		return
	}
	delete(o.pending, op.Seq)
	if err != nil {
		o.doubt = append(o.doubt, rec)
		return
	}
	o.applyTick++
	if len(o.reads) > 0 {
		o.window = append(o.window, appliedRec{tick: o.applyTick, rec: rec})
	}
	copy(o.files[rec.file][rec.off:], rec.data)
	o.clipDoubtLocked(rec.file, rec.off, rec.off+int64(len(rec.data)))
}

// clipDoubtLocked removes [start, end) of the given file from every
// doubt entry, splitting entries the range lands inside. While reads are
// in flight the clipped fragments move to the window log: they were legal
// values until this instant, and a concurrent read may have seen one.
func (o *Oracle) clipDoubtLocked(file int, start, end int64) {
	var out []writeRec
	for _, d := range o.doubt {
		dEnd := d.off + int64(len(d.data))
		if d.file != file || dEnd <= start || d.off >= end {
			out = append(out, d)
			continue
		}
		if len(o.reads) > 0 {
			cs, ce := max64(d.off, start), min64(dEnd, end)
			o.window = append(o.window, appliedRec{tick: o.applyTick,
				rec: writeRec{seq: d.seq, file: d.file, off: cs, data: d.data[cs-d.off : ce-d.off]}})
		}
		if d.off < start {
			out = append(out, writeRec{seq: d.seq, file: d.file, off: d.off, data: d.data[:start-d.off]})
		}
		if dEnd > end {
			out = append(out, writeRec{seq: d.seq, file: d.file, off: end, data: d.data[end-d.off:]})
		}
	}
	o.doubt = out
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// BeginRead snapshots the reference bytes a read may legally observe
// from the moment it starts and opens its concurrency window: writes
// applied from here until CheckRead (or AbortRead) are also legal.
func (o *Oracle) BeginRead(op workload.Op) []byte {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.reads[op.Seq] = o.applyTick
	snap := make([]byte, op.Len)
	copy(snap, o.files[op.File][op.Off:op.Off+op.Len])
	return snap
}

// AbortRead closes a read's window without checking it — the op failed,
// so the harness accounts it as a fault-window error instead.
func (o *Oracle) AbortRead(op workload.Op) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.finishReadLocked(op.Seq)
}

// finishReadLocked retires one read's window and trims the window log to
// what the remaining active reads can still observe.
func (o *Oracle) finishReadLocked(seq uint64) {
	delete(o.reads, seq)
	if len(o.reads) == 0 {
		o.window = o.window[:0]
		return
	}
	oldest := o.applyTick
	for _, begin := range o.reads {
		if begin < oldest {
			oldest = begin
		}
	}
	keep := o.window[:0]
	for _, a := range o.window {
		if a.tick > oldest {
			keep = append(keep, a)
		}
	}
	o.window = keep
}

// CheckRead validates the bytes a completed read returned. A nil error
// means every byte matches an acceptable source; otherwise the first
// offending byte is described. Failed reads (op error) are not checked —
// the harness accounts them as fault-window errors instead.
func (o *Oracle) CheckRead(op workload.Op, snap, got []byte) error {
	o.mu.Lock()
	defer o.mu.Unlock()
	begin, ok := o.reads[op.Seq]
	if !ok {
		begin = o.applyTick // no recorded window: only begin/now/pending apply
	}
	defer o.finishReadLocked(op.Seq)
	ref := o.files[op.File]
	for i := range got {
		abs := op.Off + int64(i)
		b := got[i]
		if b == snap[i] || b == ref[abs] {
			continue
		}
		if o.coveredLocked(op.File, abs, b) {
			continue
		}
		if o.appliedDuringLocked(op.File, abs, b, begin) {
			continue
		}
		return fmt.Errorf("chaos: read op %d (client %d, file %d) byte @%d = 0x%02x, want 0x%02x (begin) or 0x%02x (now), no write in the read's window explains it",
			op.Seq, op.Client, op.File, abs, b, snap[i], ref[abs])
	}
	return nil
}

// appliedDuringLocked reports whether a write applied after tick `since`
// (i.e. during the checking read's window) covered abs with value b.
func (o *Oracle) appliedDuringLocked(file int, abs int64, b byte, since uint64) bool {
	for _, a := range o.window {
		if a.tick <= since {
			continue
		}
		d := a.rec
		if d.file == file && abs >= d.off && abs < d.off+int64(len(d.data)) &&
			d.data[abs-d.off] == b {
			return true
		}
	}
	return false
}

// coveredLocked reports whether some pending or in-doubt write of file
// covers abs with value b.
func (o *Oracle) coveredLocked(file int, abs int64, b byte) bool {
	match := func(d writeRec) bool {
		return d.file == file && abs >= d.off && abs < d.off+int64(len(d.data)) &&
			d.data[abs-d.off] == b
	}
	for _, d := range o.pending {
		if match(d) {
			return true
		}
	}
	for _, d := range o.doubt {
		if match(d) {
			return true
		}
	}
	return false
}

// DoubtStats reports the bounded-error budget actually consumed: how
// many failed writes remain unresolved and how many bytes they cover.
func (o *Oracle) DoubtStats() (writes int, bytes int64) {
	o.mu.Lock()
	defer o.mu.Unlock()
	for _, d := range o.doubt {
		bytes += int64(len(d.data))
	}
	return len(o.doubt), bytes
}

// FinalCheck verifies the durable state after the run healed and every
// cache drained: read re-fetches [off, off+len) of a file through an
// independent, uncached path. Every byte must equal the reference, or an
// in-doubt value covering it — the bounded-error acceptance. Remaining
// pending entries (ops aborted mid-run) are treated as in-doubt.
func (o *Oracle) FinalCheck(read func(file int, off int64, p []byte) error) error {
	o.mu.Lock()
	for _, d := range o.pending {
		o.doubt = append(o.doubt, d)
	}
	o.pending = make(map[uint64]writeRec)
	o.mu.Unlock()

	const chunk = 256 << 10
	buf := make([]byte, chunk)
	for fi := range o.files {
		size := int64(len(o.files[fi]))
		for off := int64(0); off < size; off += chunk {
			n := size - off
			if n > chunk {
				n = chunk
			}
			if err := read(fi, off, buf[:n]); err != nil {
				return fmt.Errorf("chaos: final read-back of file %d @%d: %w", fi, off, err)
			}
			o.mu.Lock()
			ref := o.files[fi]
			for i := int64(0); i < n; i++ {
				abs := off + i
				b := buf[i]
				if b == ref[abs] || o.coveredLocked(fi, abs, b) {
					continue
				}
				o.mu.Unlock()
				return fmt.Errorf("chaos: durable byte file %d @%d = 0x%02x, want 0x%02x and no in-doubt write explains it",
					fi, abs, b, ref[abs])
			}
			o.mu.Unlock()
		}
	}
	return nil
}
