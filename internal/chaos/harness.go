package chaos

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"pvfscache/internal/cachemod"
	"pvfscache/internal/chaos/waitfor"
	"pvfscache/internal/cluster"
	"pvfscache/internal/pvfs"
	"pvfscache/internal/transport"
	"pvfscache/internal/workload"
)

// Faults lists the injectable fault kinds.
//
//   - none: baseline, zero tolerated op errors
//   - connkill: every connection to one random iod is torn down once;
//     the rpc pools must redial and no data may be lost
//   - crash: an iod fail-stops mid-flush — a flush frame is cut short
//     halfway, both daemon ports go down, and the daemon returns later;
//     flush streams must back off, requeue, and drain after restore
//   - partition: one iod becomes unreachable from every client node
//     (directional blackhole, writes stall rather than fail) until heal
//   - brownout: one iod serves with per-write latency injected (slow
//     node); no errors tolerated, only slowness
//   - restart: an iod fail-stops mid-flush like crash, but the daemon
//     process actually dies (ports closed, backend volatile state gone)
//     and reboots from the same data directory — so the run exercises
//     journal replay, not just reconnection. Forces the disk backend.
func Faults() []string {
	return []string{"none", "connkill", "crash", "partition", "brownout", "restart"}
}

// MembershipFaults lists the global-cache membership faults. They are
// deliberately kept out of Faults(): they force GlobalCache on, and a
// cooperative cache is only coherent for scenarios that never rewrite a
// block other nodes may re-read later (a copy pushed to its ring home
// goes stale when the block is rewritten and flushed), so the full
// scenario×fault matrix must not auto-pair them. Pair them only with the
// scenarios GCSafeScenarios lists.
//
//   - killpeer: one node's global-cache service fail-stops mid-run; the
//     other nodes' gets must fail over (replicas, then the iods) within
//     their bounded fetch timeouts and no op may error
//   - join: a new caching node joins the live ring mid-run — the mgr
//     bumps the epoch, peers refetch the view on stale-epoch answers —
//     with no op errors
//   - drain: one iod is gracefully drained (modules flush what they owe
//     it, remaining holders are handed off) and rejoined; op errors are
//     bounded by the down window exactly as for a crash
func MembershipFaults() []string { return []string{"killpeer", "join", "drain"} }

// GCSafeScenarios are the workload scenarios whose block-sharing shape
// keeps the global cache coherent: no node ever re-reads a block another
// node rewrote after it was pushed to the ring.
func GCSafeScenarios() []string { return []string{"sequential", "prodcons"} }

// ErrTCPUnavailable marks environments where TCP sockets cannot be used;
// tests skip rather than fail on it.
var ErrTCPUnavailable = errors.New("chaos: tcp unavailable in this environment")

// errGrace is how long after a fault window closes op errors are still
// attributed to it (in-flight requests surface their failures slightly
// late; rpc pools redial on the next call).
const errGrace = time.Second

// RunConfig describes one chaos run.
type RunConfig struct {
	// Scenario names a workload scenario (workload.Scenarios).
	Scenario string
	// Fault names a fault kind (Faults). "" = none.
	Fault string
	// Seed drives the workload, the fault plan, and every payload.
	Seed int64
	// Params sizes the workload; zero fields take workload defaults.
	Params workload.Params
	// TCP runs over real sockets instead of the in-memory network.
	TCP bool
	// IODs is the daemon count (default 4).
	IODs int
	// FlushPeriod is the write-behind interval (default 5ms: fast enough
	// that a crash lands mid-flush within the run).
	FlushPeriod time.Duration
	// GlobalCache boots the cluster with the cooperative global cache in
	// mgr-joined membership mode. Forced on by the membership faults;
	// only the GCSafeScenarios workloads may run with it.
	GlobalCache bool
	// Backend selects the iods' storage engine ("", "mem", "disk" — see
	// cluster.Config.Backend). The restart fault requires disk and
	// defaults to it: a mem-backed daemon forgets every acknowledged
	// byte when it dies, so rebooting one can never pass the oracle.
	Backend string
	// DataDir is the disk backend's root directory. Empty: a fresh
	// directory is created under CHAOS_ARTIFACT_DIR (or the system temp
	// dir), removed when the run passes and kept — journals included —
	// as a failure artifact otherwise.
	DataDir string
	// TraceDir receives the run's trace file. Empty: the trace is saved
	// only when the run fails, into CHAOS_ARTIFACT_DIR or the system
	// temp directory.
	TraceDir string
	// Log receives progress lines (nil = silent).
	Log func(format string, args ...any)
	// Meddle, when set, is invoked after the workload drains and before
	// the durable check — a test hook for out-of-band interference (e.g.
	// corrupting stored bytes behind the oracle's back) used to prove
	// the harness catches and reproduces real failures.
	Meddle func(c *cluster.Cluster)
}

// RunResult reports one run's outcome; valid even when Run errors.
type RunResult struct {
	Trace       *workload.Trace
	TracePath   string        // saved trace ("" if not written)
	Ops         int           // ops executed
	OpErrors    int           // ops that returned an error (all must be fault-bounded)
	DoubtWrites int           // failed writes unresolved at final check
	DoubtBytes  int64         // bytes those may have changed
	FaultStart  time.Duration // fault window relative to run start (0,0 = never fired)
	FaultEnd    time.Duration
	Elapsed     time.Duration
	DataDir     string // disk-backend data root ("" for mem; kept on failure)
}

// Run executes one seeded chaos run: boot a live cluster behind a fault
// controller, generate the scenario from the seed, drive every client
// concurrently with all ops recorded, inject the fault plan, heal, drain
// every cache, and judge the durable image with the oracle. Any oracle
// violation, unbounded op error, or drain failure returns an error; the
// trace is saved so the failure replays deterministically (see
// TestChaosReplay).
func Run(cfg RunConfig) (*RunResult, error) {
	if cfg.Fault == "" {
		cfg.Fault = "none"
	}
	if !validFault(cfg.Fault) {
		return nil, fmt.Errorf("chaos: unknown fault %q (have %v and %v)",
			cfg.Fault, Faults(), MembershipFaults())
	}
	if isMembershipFault(cfg.Fault) {
		cfg.GlobalCache = true
	}
	if cfg.GlobalCache && !gcSafeScenario(cfg.Scenario) {
		return nil, fmt.Errorf("chaos: scenario %q is not global-cache safe (have %v)",
			cfg.Scenario, GCSafeScenarios())
	}
	if cfg.IODs <= 0 {
		cfg.IODs = 4
	}
	if cfg.FlushPeriod <= 0 {
		cfg.FlushPeriod = 5 * time.Millisecond
	}
	if cfg.Log == nil {
		cfg.Log = func(string, ...any) {}
	}
	sc, err := workload.Lookup(cfg.Scenario)
	if err != nil {
		return nil, err
	}
	cfg.Params.Seed = cfg.Seed
	spec, err := sc.Generate(cfg.Params)
	if err != nil {
		return nil, err
	}

	// Network fabric behind the fault controller. Every client node dials
	// through its own labeled view so partitions can target node traffic;
	// servers and the harness's own setup/read-back clients use the raw
	// fabric and are never faulted.
	var base transport.Network = transport.NewMem()
	if cfg.TCP {
		probe, err := transport.NewTCP().Listen("127.0.0.1:0")
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrTCPUnavailable, err)
		}
		probe.Close()
		base = transport.NewTCP()
	}
	ctl := NewController(base)

	// Storage backend: the restart fault reboots a daemon from its data
	// directory, which only means anything on the disk engine.
	backend := cfg.Backend
	if cfg.Fault == "restart" && backend == "" {
		backend = "disk"
	}
	if cfg.Fault == "restart" && backend != "disk" {
		return nil, fmt.Errorf("chaos: the restart fault requires Backend \"disk\", got %q", backend)
	}
	dataDir := cfg.DataDir
	cleanupData := false
	if backend == "disk" && dataDir == "" {
		root := os.Getenv("CHAOS_ARTIFACT_DIR")
		if root == "" {
			root = os.TempDir()
		}
		if err := os.MkdirAll(root, 0o755); err != nil {
			return nil, err
		}
		dataDir, err = os.MkdirTemp(root, fmt.Sprintf("chaos-data-%s-seed%d-", cfg.Fault, cfg.Seed))
		if err != nil {
			return nil, err
		}
		cleanupData = true
	}

	cl, err := cluster.Start(cluster.Config{
		Network:     base,
		NodeNetwork: func(node int) transport.Network { return ctl.View(nodeOrigin(node)) },
		IODs:        cfg.IODs,
		ClientNodes: spec.Params.Nodes,
		Caching:     true,
		GlobalCache: cfg.GlobalCache,
		FlushPeriod: cfg.FlushPeriod,
		Backend:     backend,
		DataDir:     dataDir,
	})
	if err != nil {
		return nil, err
	}
	defer cl.Close()

	r := &runner{cfg: cfg, spec: spec, ctl: ctl, cl: cl}
	res, err := r.run()
	if res != nil {
		res.DataDir = dataDir
	}
	if err != nil && res != nil && res.TracePath != "" {
		err = fmt.Errorf("%w\nreproduce: seed=%d trace=%s\n  go test ./internal/chaos -run TestChaosReplay -trace=%s",
			err, cfg.Seed, res.TracePath, res.TracePath)
	}
	if cleanupData {
		if err == nil {
			os.RemoveAll(dataDir)
			if res != nil {
				res.DataDir = ""
			}
		} else {
			// Keep the directory — journals and shard files are the crash
			// forensics — and point the failure at it.
			err = fmt.Errorf("%w\ndisk backend data kept at %s", err, dataDir)
		}
	}
	return res, err
}

func validFault(f string) bool {
	for _, k := range Faults() {
		if k == f {
			return true
		}
	}
	return isMembershipFault(f)
}

func isMembershipFault(f string) bool {
	for _, k := range MembershipFaults() {
		if k == f {
			return true
		}
	}
	return false
}

func gcSafeScenario(s string) bool {
	for _, k := range GCSafeScenarios() {
		if k == s {
			return true
		}
	}
	return false
}

func nodeOrigin(node int) string { return fmt.Sprintf("node%d", node) }

type runner struct {
	cfg  RunConfig
	spec *workload.Spec
	ctl  *Controller
	cl   *cluster.Cluster

	oracle *Oracle
	rec    *workload.Recorder

	violMu sync.Mutex
	viols  []error
}

func (r *runner) violation(err error) {
	r.violMu.Lock()
	if len(r.viols) < 8 {
		r.viols = append(r.viols, err)
	}
	r.violMu.Unlock()
}

func (r *runner) run() (*RunResult, error) {
	spec, cfg := r.spec, r.cfg
	r.oracle = NewOracle(cfg.Seed, spec.Files)

	// Setup: create every file at full size with the deterministic
	// initial pattern, through a direct (uncached) client on the raw
	// fabric, so the cluster and the oracle's reference images agree
	// before any client starts.
	setup, err := pvfs.NewClient(pvfs.Config{
		Network: r.cl.Network, MgrAddr: r.cl.MgrAddr, IODAddrs: r.cl.IODDataAddrs,
	})
	if err != nil {
		return nil, err
	}
	defer setup.Close()
	for fi, fs := range spec.Files {
		f, err := setup.Create(fs.Name, pvfs.StripeSpec{SSize: uint32(fs.SSize), PCount: uint32(fs.PCount)})
		if err != nil {
			return nil, fmt.Errorf("chaos: setup create %s: %w", fs.Name, err)
		}
		img := r.oracle.InitImage(fi)
		for off := 0; off < len(img); off += 256 << 10 {
			end := min(off+256<<10, len(img))
			if _, err := f.WriteAt(img[off:end], int64(off)); err != nil {
				return nil, fmt.Errorf("chaos: setup write %s @%d: %w", fs.Name, off, err)
			}
		}
	}

	// Per-client processes and open handles, placed per the spec.
	type clientCtx struct {
		proc  *pvfs.Client
		files []*pvfs.File
		mod   *cachemod.Module
	}
	clients := make([]clientCtx, len(spec.Ops))
	for c := range clients {
		node := spec.Placement[c]
		proc, err := r.cl.NewProcess(node)
		if err != nil {
			return nil, err
		}
		defer proc.Close()
		cc := clientCtx{proc: proc, mod: r.cl.Module(node)}
		for _, fs := range spec.Files {
			f, err := proc.Open(fs.Name)
			if err != nil {
				return nil, fmt.Errorf("chaos: client %d open %s: %w", c, fs.Name, err)
			}
			cc.files = append(cc.files, f)
		}
		clients[c] = cc
	}

	r.rec = workload.NewRecorder()
	plan := newFaultPlan(r)
	go plan.run()

	bar := newBarrier(len(clients))
	var wg sync.WaitGroup
	for c := range clients {
		wg.Add(1)
		go func(c int, cc clientCtx) {
			defer wg.Done()
			buf := make([]byte, spec.Params.MaxIO)
			for _, op := range spec.Ops[c] {
				op = r.rec.Begin(op)
				switch op.Kind {
				case workload.KindWrite:
					data := r.oracle.BeginWrite(op)
					_, err := cc.files[op.File].WriteAt(data, op.Off)
					r.oracle.EndWrite(op, err)
					r.rec.End(op, err)
				case workload.KindRead:
					snap := r.oracle.BeginRead(op)
					n, err := cc.files[op.File].ReadAt(buf[:op.Len], op.Off)
					if err == nil && int64(n) != op.Len {
						err = fmt.Errorf("chaos: short read %d of %d", n, op.Len)
					}
					if err == nil {
						if cerr := r.oracle.CheckRead(op, snap, buf[:op.Len]); cerr != nil {
							r.violation(cerr)
							err = cerr
						}
					} else {
						r.oracle.AbortRead(op)
					}
					r.rec.End(op, err)
				case workload.KindFlush:
					// A flush op must eventually succeed — faults heal well
					// inside the deadline, and producer-consumer hand-offs
					// depend on durability before the barrier.
					var ferr error
					waitfor.Poll(20*time.Second, func() bool {
						ferr = cc.mod.FlushAll()
						return ferr == nil
					})
					r.rec.End(op, ferr)
				case workload.KindBarrier:
					bar.wait()
					r.rec.End(op, nil)
				case workload.KindCreate:
					f, err := cc.proc.Create(scratchName(c, op.File), pvfs.StripeSpec{})
					if f != nil {
						f.Close()
					}
					r.rec.End(op, err)
				case workload.KindUnlink:
					r.rec.End(op, cc.proc.Unlink(scratchName(c, op.File)))
				case workload.KindList:
					_, err := cc.proc.List()
					r.rec.End(op, err)
				default:
					r.rec.End(op, fmt.Errorf("chaos: unexecutable op kind %v", op.Kind))
				}
			}
		}(c, clients[c])
	}
	wg.Wait()
	plan.finish()

	// Heal everything that could still be in force, then drain every
	// cache so the durable check sees the whole run.
	r.ctl.Heal()
	var drainErr error
	waitfor.Poll(20*time.Second, func() bool {
		drainErr = r.cl.FlushAll()
		return drainErr == nil
	})
	if cfg.Meddle != nil {
		cfg.Meddle(r.cl)
	}

	trace := r.rec.Trace(spec.Scenario, spec.Params)
	res := &RunResult{
		Trace:      trace,
		Ops:        len(trace.Records),
		FaultStart: time.Duration(plan.startNS.Load()),
		FaultEnd:   time.Duration(plan.endNS.Load()),
		Elapsed:    time.Duration(r.rec.Since()),
	}

	var failure error
	fail := func(format string, args ...any) {
		if failure == nil {
			failure = fmt.Errorf(format, args...)
		}
	}
	if drainErr != nil {
		fail("chaos: final drain never succeeded: %v", drainErr)
	}

	// Durable image check through a fresh direct client.
	if failure == nil {
		final, err := pvfs.NewClient(pvfs.Config{
			Network: r.cl.Network, MgrAddr: r.cl.MgrAddr, IODAddrs: r.cl.IODDataAddrs,
		})
		if err != nil {
			return res, err
		}
		defer final.Close()
		handles := make([]*pvfs.File, len(spec.Files))
		for fi, fs := range spec.Files {
			if handles[fi], err = final.Open(fs.Name); err != nil {
				return res, fmt.Errorf("chaos: final open %s: %w", fs.Name, err)
			}
		}
		if err := r.oracle.FinalCheck(func(file int, off int64, p []byte) error {
			n, err := handles[file].ReadAt(p, off)
			if err == nil && n != len(p) {
				err = fmt.Errorf("short read %d of %d", n, len(p))
			}
			return err
		}); err != nil {
			fail("%v", err)
		}
	}
	res.DoubtWrites, res.DoubtBytes = r.oracle.DoubtStats()

	// Bounded-error accounting: every op error must fall inside the
	// fault window (plus grace), and a fault-free run tolerates none.
	winStart, winEnd := plan.startNS.Load(), plan.endNS.Load()
	for _, rec := range trace.Records {
		if rec.Err == "" {
			continue
		}
		res.OpErrors++
		if winStart == 0 {
			fail("chaos: op %d errored with no fault active: %s", rec.Seq, rec.Err)
			continue
		}
		end := winEnd
		if end == 0 {
			end = r.rec.Since() // window forced open until run end
		}
		if rec.T < winStart-int64(10*time.Millisecond) || rec.T > end+int64(errGrace) {
			fail("chaos: op %d errored at t=%v outside fault window [%v, %v]: %s",
				rec.Seq, time.Duration(rec.T), time.Duration(winStart), time.Duration(end), rec.Err)
		}
	}
	r.violMu.Lock()
	for _, v := range r.viols {
		fail("%v", v)
	}
	r.violMu.Unlock()

	// Persist the trace: always when a directory was asked for, and on
	// failure so the printed path reproduces the run.
	if cfg.TraceDir != "" || failure != nil {
		dir := cfg.TraceDir
		if dir == "" {
			dir = os.Getenv("CHAOS_ARTIFACT_DIR")
		}
		if dir == "" {
			dir = os.TempDir()
		}
		if err := os.MkdirAll(dir, 0o755); err == nil {
			path := filepath.Join(dir, fmt.Sprintf("chaos-%s-%s-seed%d.trace",
				spec.Scenario, cfg.Fault, cfg.Seed))
			if err := trace.Save(path); err == nil {
				res.TracePath = path
			} else {
				cfg.Log("chaos: saving trace: %v", err)
			}
		}
	}
	cfg.Log("chaos: %s/%s seed=%d: %d ops, %d errors, doubt %d writes/%d bytes, fault [%v,%v], %v",
		spec.Scenario, cfg.Fault, cfg.Seed, res.Ops, res.OpErrors,
		res.DoubtWrites, res.DoubtBytes, res.FaultStart, res.FaultEnd, res.Elapsed)
	return res, failure
}

func scratchName(client, id int) string {
	return fmt.Sprintf("wl/scratch-c%d-%d", client, id)
}

// barrier is a cyclic rendezvous for the client goroutines.
type barrier struct {
	mu      sync.Mutex
	n       int
	arrived int
	ch      chan struct{}
}

func newBarrier(n int) *barrier {
	return &barrier{n: n, ch: make(chan struct{})}
}

func (b *barrier) wait() {
	b.mu.Lock()
	b.arrived++
	if b.arrived == b.n {
		b.arrived = 0
		close(b.ch)
		b.ch = make(chan struct{})
		b.mu.Unlock()
		return
	}
	ch := b.ch
	b.mu.Unlock()
	<-ch
}

// faultPlan schedules one seeded fault against the running workload. The
// trigger is progress-based (a fraction of the run's ops completed)
// rather than wall-clock, so the fault reliably lands mid-run however
// fast the machine is; crash is traffic-triggered instead (the armed
// short write fires on real flush frames).
type faultPlan struct {
	r    *runner
	rng  *rand.Rand
	stop chan struct{}
	done chan struct{}

	startNS, endNS atomic.Int64
}

func newFaultPlan(r *runner) *faultPlan {
	return &faultPlan{
		r: r,
		// Offset the seed so the fault draw is independent of the
		// workload's own draws.
		rng:  rand.New(rand.NewSource(r.cfg.Seed ^ 0x6368616F73)),
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
}

func (p *faultPlan) markStart() { p.startNS.Store(p.r.rec.Since()) }
func (p *faultPlan) markEnd()   { p.endNS.Store(p.r.rec.Since()) }

// waitProgress blocks until the given fraction of the run's ops have
// completed; it reports whether the threshold was hit. A finished run
// has trivially passed any threshold, so the fault still engages (and
// then exercises the drain) when the workload outruns the first poll.
func (p *faultPlan) waitProgress(frac float64) bool {
	total := p.r.spec.TotalOps()
	want := int(frac * float64(total))
	for {
		if p.r.rec.Count() >= want {
			return true
		}
		select {
		case <-p.stop:
			return p.r.rec.Count() >= want
		case <-time.After(waitfor.Interval):
		}
	}
}

// hold keeps the fault in force for its full duration — even when the
// ops finish first, so the final drain runs against the fault too (the
// harness's drain loop retries until well past any heal).
func (p *faultPlan) hold(d time.Duration) {
	time.Sleep(d)
}

func (p *faultPlan) run() {
	defer close(p.done)
	r := p.r
	kind := r.cfg.Fault
	if kind == "none" {
		return
	}
	iod := p.rng.Intn(len(r.cl.IODDataAddrs))
	dataAddr := r.cl.IODDataAddrs[iod]
	flushAddr := r.cl.IODFlushAddrs[iod]
	startFrac := 0.1 + 0.25*p.rng.Float64()
	dur := time.Duration(30+p.rng.Intn(60)) * time.Millisecond
	origins := make([]string, r.spec.Params.Nodes)
	for i := range origins {
		origins[i] = nodeOrigin(i)
	}

	switch kind {
	case "connkill":
		if !p.waitProgress(startFrac) {
			return
		}
		p.markStart()
		r.ctl.KillConns(dataAddr, flushAddr)
		p.markEnd()
		r.cfg.Log("chaos: killed conns to iod %d", iod)

	case "partition":
		if !p.waitProgress(startFrac) {
			return
		}
		p.markStart()
		r.ctl.Partition(origins, []string{dataAddr, flushAddr})
		r.cfg.Log("chaos: partitioned iod %d from %v", iod, origins)
		p.hold(dur)
		r.ctl.Heal()
		p.markEnd()

	case "brownout":
		if !p.waitProgress(startFrac) {
			return
		}
		p.markStart()
		r.ctl.Brownout(2*time.Millisecond, dataAddr, flushAddr)
		r.cfg.Log("chaos: brownout on iod %d", iod)
		p.hold(dur)
		r.ctl.Heal()
		p.markEnd()

	case "crash":
		trig := make(chan struct{})
		r.ctl.ArmShortWrite(flushAddr, p.rng.Intn(2), func() {
			p.markStart()
			r.ctl.Cut(dataAddr, flushAddr)
			close(trig)
		})
		r.cfg.Log("chaos: armed crash of iod %d on its flush port", iod)
		if !p.awaitTrigger(trig, flushAddr) {
			return // never fired: fault skipped this run
		}
		p.hold(dur)
		r.ctl.Restore(dataAddr, flushAddr)
		p.markEnd()
		r.cfg.Log("chaos: restored iod %d", iod)

	case "killpeer":
		// Fail-stop one node's global-cache service. No heal: the run must
		// pass with the peer gone — gets fail over to replicas and then
		// the iods inside their bounded timeouts, so no op ever errors.
		if !p.waitProgress(startFrac) {
			return
		}
		node := p.rng.Intn(r.spec.Params.Nodes)
		p.markStart()
		r.cl.Module(node).KillPeerService()
		p.markEnd()
		r.cfg.Log("chaos: killed global-cache service on node %d", node)

	case "join":
		// Grow the ring mid-run: the mgr bumps the epoch and peers chase
		// it via stale-epoch answers. Nothing is torn down, so no op may
		// error here either.
		if !p.waitProgress(startFrac) {
			return
		}
		p.markStart()
		node, err := r.cl.AddCacheNode()
		if err != nil {
			r.violation(fmt.Errorf("chaos: AddCacheNode: %w", err))
		}
		p.markEnd()
		r.cfg.Log("chaos: node %d joined the global-cache ring", node)

	case "drain":
		// Graceful rolling restart of one iod: flush everything the
		// modules owe it, hand off its remaining holders, close, rejoin.
		// The drain wait is bounded by the writers finishing their
		// passes; op errors are confined to the closed window.
		if !p.waitProgress(startFrac) {
			return
		}
		p.markStart()
		if err := r.cl.DrainIOD(iod, 15*time.Second); err != nil {
			r.violation(fmt.Errorf("chaos: DrainIOD(%d): %w", iod, err))
		}
		r.cfg.Log("chaos: drained iod %d", iod)
		p.hold(dur)
		if err := r.cl.RejoinIOD(iod); err != nil {
			r.violation(fmt.Errorf("chaos: RejoinIOD(%d): %w", iod, err))
		}
		p.markEnd()
		r.cfg.Log("chaos: rejoined iod %d", iod)

	case "restart":
		// Same mid-flush trigger as crash, but the daemon really dies:
		// ports close, the backend fail-stops (dirty cache and buffered
		// state gone), and a fresh daemon reboots from the same directory
		// — journal replay under live traffic. The controller Cut keeps
		// clients from racing the reboot; Restore lifts it only after the
		// new daemon is listening.
		trig := make(chan struct{})
		r.ctl.ArmShortWrite(flushAddr, p.rng.Intn(2), func() {
			p.markStart()
			r.ctl.Cut(dataAddr, flushAddr)
			close(trig)
		})
		r.cfg.Log("chaos: armed kill-and-restart of iod %d on its flush port", iod)
		if !p.awaitTrigger(trig, flushAddr) {
			return
		}
		if err := r.cl.CrashIOD(iod); err != nil {
			r.violation(fmt.Errorf("chaos: CrashIOD(%d): %w", iod, err))
		}
		r.cfg.Log("chaos: killed iod %d", iod)
		p.hold(dur)
		if err := r.cl.RestartIOD(iod); err != nil {
			r.violation(fmt.Errorf("chaos: RestartIOD(%d): %w", iod, err))
		}
		r.ctl.Restore(dataAddr, flushAddr)
		p.markEnd()
		r.cfg.Log("chaos: rebooted iod %d from its data dir", iod)
	}
}

// awaitTrigger waits for an armed short-write to fire, giving it one
// last chance after the workload drains (dirty data still flushes on
// the period). It reports false when the arm never fired and was
// disarmed — the fault sat the run out.
func (p *faultPlan) awaitTrigger(trig chan struct{}, flushAddr string) bool {
	select {
	case <-trig:
		return true
	case <-p.stop:
		select {
		case <-trig:
			return true
		case <-time.After(2 * p.r.cfg.FlushPeriod):
			if p.r.ctl.Disarm(flushAddr) {
				return false
			}
			<-trig // fired concurrently with the disarm race
			return true
		}
	}
}

// finish ends the plan: signals the run is over, waits for the scheduler
// to heal/restore whatever it applied, and leaves the window marks set.
func (p *faultPlan) finish() {
	close(p.stop)
	<-p.done
}
