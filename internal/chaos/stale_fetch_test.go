package chaos

import (
	"testing"

	"pvfscache/internal/testseed"
	"pvfscache/internal/workload"
)

// TestStaleFetchStorm is the regression test for the stale-fetch-install
// race: a demand fetch issued while a block is absent can complete after
// a newer write to that block was applied, flushed, and evicted entirely
// within the fetch's flight — at which point the install's "resident
// bytes win" patch has nothing left to patch from, and the fetched
// (older) image would silently shadow the write. The write-stamp check
// in buffer.InstallFetched rejects such installs (OutcomeStale) and the
// module re-reads.
//
// The race needs real pressure to open: enough concurrent clients that
// fetch goroutines get descheduled across a full flush+evict cycle.
// 512 zipfian clients against a 4-node cluster reproduced it in roughly
// one run in three before the fix (the oracle reported reads returning
// an overwritten image); with the fix the stale installs are detected —
// typically dozens per run, visible in cache.stale_installs /
// module.fetch_stale_retries — retried, and the oracle stays quiet.
// No fault injection: the race is native to the fetch path.
func TestStaleFetchStorm(t *testing.T) {
	res, err := Run(RunConfig{
		Scenario: "zipfian",
		Fault:    "none",
		Seed:     testseed.Base(t),
		Params: workload.Params{
			Clients: 512, Nodes: 4, OpsPerClient: 12,
			FileSize: 4 << 20, MaxIO: 4 << 10,
		},
		Log: t.Logf,
	})
	if err != nil {
		t.Fatalf("storm failed: %v", err)
	}
	t.Logf("storm: %d ops, %d errors", res.Ops, res.OpErrors)
}
