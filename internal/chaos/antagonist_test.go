package chaos

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pvfscache/internal/cluster"
	"pvfscache/internal/metrics"
	"pvfscache/internal/pvfs"
	"pvfscache/internal/transport"
	"pvfscache/internal/wire"
)

// Antagonist-wall tuning. The victim's quota-on p99 must stay within
// degradeFactor × its solo baseline (with a floor absorbing scheduler
// noise on sub-millisecond baselines) — that factor is the documented
// bounded-degradation contract of the tenant dirty quotas.
const (
	antagCacheBlocks  = 300  // the paper's 1.2 MB node cache
	antagQuota        = 0.25 // antagonist may dirty 75 of 300 frames
	degradeFactor     = 10
	degradeFloor      = 10 * time.Millisecond
	antagQuotaBlocks  = int(antagQuota * antagCacheBlocks)
	antagOccupancyCap = 2 * antagQuotaBlocks // on: stay under; off: must exceed
)

// p99 returns the 99th-percentile sample.
func p99(samples []time.Duration) time.Duration {
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	return samples[(len(samples)*99)/100]
}

// antagonistRun boots one caching node over a browned-out flush path,
// runs a solo victim baseline, then lets antagonist writers saturate the
// shared cache while the victim keeps issuing small writes. It returns
// the victim's solo and under-load p99 latencies, the peak dirty-frame
// occupancy the antagonist tenant reached, and the node's registry.
func antagonistRun(t *testing.T, quota float64) (solo, loaded time.Duration, maxDirty int, reg *metrics.Registry) {
	t.Helper()
	base := transport.NewMem()
	ctl := NewController(base)
	cl, err := cluster.Start(cluster.Config{
		Network:     base,
		NodeNetwork: func(node int) transport.Network { return ctl.View(nodeOrigin(node)) },
		IODs:        2,
		ClientNodes: 1,
		Caching:     true,
		CacheBlocks: antagCacheBlocks,
		FlushPeriod: 2 * time.Millisecond,
		FlushWindow: 1, // serialize flush frames so the brownout paces the drain

		WriteStall:       300 * time.Millisecond,
		OverloadStall:    5 * time.Millisecond,
		TenantDirtyQuota: quota,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	reg = cl.Reg

	// Slow every flush-port write: the drain becomes the bottleneck, so
	// the antagonist's dirty backlog actually accumulates instead of
	// vanishing into an infinitely fast in-memory iod.
	ctl.Brownout(5*time.Millisecond, cl.IODFlushAddrs...)
	defer ctl.Heal() // runs before cl.Close: the final FlushAll drains at full speed

	proc, err := cl.NewProcess(0)
	if err != nil {
		t.Fatal(err)
	}
	defer proc.Close()
	const antagSize = 2 << 20 // 512 blocks: deeper than the whole cache
	const victimSize = 256 << 10
	if _, err := proc.Create("qos/victim.dat", pvfs.StripeSpec{}); err != nil {
		t.Fatal(err)
	}
	if _, err := proc.Create("qos/antag.dat", pvfs.StripeSpec{}); err != nil {
		t.Fatal(err)
	}
	victim, err := proc.OpenWithTenant("qos/victim.dat", 1, 1)
	if err != nil {
		t.Fatal(err)
	}

	victimPass := func(n int) []time.Duration {
		data := bytes.Repeat([]byte{0x5A}, 4096)
		lats := make([]time.Duration, 0, n)
		for i := 0; i < n; i++ {
			off := int64(i) * 4096 % victimSize
			start := time.Now()
			if _, err := victim.WriteAt(data, off); err != nil {
				t.Errorf("victim write %d: %v", i, err)
			}
			lats = append(lats, time.Since(start))
			time.Sleep(500 * time.Microsecond)
		}
		return lats
	}

	// Phase 1: the victim alone on the node.
	solo = p99(victimPass(100))

	// Phase 2: antagonist writers saturate the shared cache.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 2; g++ {
		// One Client per goroutine: pvfs.Client is not safe for
		// concurrent use (it models a single-threaded PVFS process), so
		// each antagonist writer is its own simulated process.
		aproc, err := cl.NewProcess(0)
		if err != nil {
			t.Fatalf("antagonist process: %v", err)
		}
		defer aproc.Close()
		f, err := aproc.OpenWithTenant("qos/antag.dat", 2, 1)
		if err != nil {
			t.Fatalf("antagonist open: %v", err)
		}
		wg.Add(1)
		go func(g int, f *pvfs.File) {
			defer wg.Done()
			data := bytes.Repeat([]byte{byte(g)}, 64<<10)
			for off := int64(g) * (64 << 10); ; off = (off + 64<<10) % antagSize {
				select {
				case <-stop:
					return
				default:
				}
				// Overload sheds surface after the client's bounded
				// retries; for the antagonist that is throttling working
				// as intended, not a failure.
				if _, err := f.WriteAt(data, off); err != nil && !errors.Is(err, wire.ErrOverload) {
					t.Errorf("antagonist write: %v", err)
					return
				}
			}
		}(g, f)
	}
	var peak atomic.Int64
	wg.Add(1)
	go func() {
		defer wg.Done()
		buf := cl.Module(0).Buffer()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if n := int64(buf.DirtyCountTenant(2)); n > peak.Load() {
				peak.Store(n)
			}
			time.Sleep(500 * time.Microsecond)
		}
	}()
	time.Sleep(150 * time.Millisecond) // let the backlog build

	loaded = p99(victimPass(60))
	close(stop)
	wg.Wait()
	return solo, loaded, int(peak.Load()), reg
}

// TestAntagonistBoundedDegradation is the noisy-neighbour wall. With
// tenant dirty quotas on, a saturating antagonist may cost the victim at
// most degradeFactor × its solo p99 (floored at degradeFloor), and the
// antagonist's dirty residency stays pinned near its quota. The ablation
// runs the identical storm with quotas off and shows the unbounded shape:
// the antagonist's backlog blows straight through the quota line and owns
// the cache.
func TestAntagonistBoundedDegradation(t *testing.T) {
	if testing.Short() {
		t.Skip("antagonist wall needs real wall-clock phases; skipped in -short")
	}

	solo, loaded, maxDirty, reg := antagonistRun(t, antagQuota)
	bound := degradeFactor * solo
	if floor := time.Duration(degradeFactor) * degradeFloor; bound < floor {
		bound = floor
	}
	t.Logf("quotas on: victim p99 solo=%v loaded=%v (bound %v), antagonist peak dirty %d/%d blocks",
		solo, loaded, bound, maxDirty, antagQuotaBlocks)
	if loaded > bound {
		t.Errorf("victim p99 %v exceeds the bounded-degradation contract %v (%d× solo %v)",
			loaded, bound, degradeFactor, solo)
	}
	if maxDirty > antagOccupancyCap {
		t.Errorf("antagonist peak dirty occupancy %d blocks blew past quota %d (cap %d): quota not engaged",
			maxDirty, antagQuotaBlocks, antagOccupancyCap)
	}
	if v := reg.Counter(metrics.Labeled("module.tenant_write_sheds", "tenant", "2")).Value(); v == 0 {
		t.Error("antagonist was never shed: the storm did not engage the quota")
	}
	if dir := os.Getenv("METRICS_DUMP_DIR"); dir != "" {
		// CI artifact: the quota-on run's full registry, Prometheus text.
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatalf("metrics dump dir: %v", err)
		}
		var buf bytes.Buffer
		if err := reg.WritePrometheus(&buf); err != nil {
			t.Fatalf("metrics dump render: %v", err)
		}
		path := filepath.Join(dir, "antagonist-metrics.prom")
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatalf("metrics dump: %v", err)
		}
		t.Logf("antagonist metrics written to %s", path)
	}

	// Ablation: same storm, quotas off. The victim's latency is still
	// softened by the write-through fallback, but the occupancy shape is
	// unbounded — the antagonist's backlog dwarfs the quota line.
	soloOff, loadedOff, maxDirtyOff, _ := antagonistRun(t, 0)
	t.Logf("quotas off: victim p99 solo=%v loaded=%v, antagonist peak dirty %d blocks",
		soloOff, loadedOff, maxDirtyOff)
	if maxDirtyOff <= antagOccupancyCap {
		t.Errorf("ablation: antagonist peaked at %d dirty blocks, expected the unbounded shape (> %d)",
			maxDirtyOff, antagOccupancyCap)
	}
}
