package chaos

// The PR 8 headline test: kill an iod mid-flush — a flush frame is cut
// short halfway by the armed short write, the daemon's ports close, and
// its backend fail-stops with un-checkpointed state — then reboot the
// daemon from the same data directory and demand the consistency
// oracle's FinalCheck byte-for-byte. Every acknowledged byte must be
// served after journal replay; unacknowledged writes fall under the
// oracle's bounded-doubt accounting, exactly as for the other faults.

import (
	"errors"
	"testing"
	"time"

	"pvfscache/internal/testseed"
	"pvfscache/internal/workload"
)

// runEngagedRestart runs a restart cell and retries over derived seeds
// until the traffic-triggered fault actually fires (a seed whose flush
// timing never trips the arm proves nothing). A handful of attempts is
// plenty: the workload flushes constantly at a 5ms period.
func runEngagedRestart(t *testing.T, scenario string, tcp bool) *RunResult {
	t.Helper()
	base := testseed.Base(t)
	for attempt := 0; attempt < 5; attempt++ {
		seed := base + int64(attempt)*7919
		res, err := Run(RunConfig{
			Scenario: scenario,
			Fault:    "restart",
			Seed:     seed,
			Params:   cellParams(t),
			TCP:      tcp,
			Log:      t.Logf,
		})
		if errors.Is(err, ErrTCPUnavailable) {
			t.Skipf("%v", err)
		}
		if err != nil {
			t.Fatalf("restart run failed (seed %d): %v", seed, err)
		}
		if res.FaultStart != 0 {
			return res
		}
		t.Logf("seed %d: restart never triggered, retrying", seed)
	}
	t.Fatal("restart fault never engaged across 5 seeds")
	return nil
}

// TestDiskRecoveryMidFlushCrash is the acceptance-criteria run: one
// scenario, fault forced to engage, oracle green. The full scenario
// matrix also covers restart via TestChaosMatrix.
func TestDiskRecoveryMidFlushCrash(t *testing.T) {
	res := runEngagedRestart(t, "sequential", false)
	if res.FaultEnd == 0 {
		t.Fatal("fault window never closed: the daemon did not come back")
	}
	if res.DataDir != "" {
		t.Fatalf("passing run left its data dir behind: %s", res.DataDir)
	}
	t.Logf("recovered: %d ops, %d fault-bounded errors, window [%v, %v]",
		res.Ops, res.OpErrors, res.FaultStart, res.FaultEnd)
}

// TestDiskRecoveryProdCons drives the producer/consumer hand-off across
// a kill-and-restart: consumers on another node read bytes whose
// durability crossed the reboot.
func TestDiskRecoveryProdCons(t *testing.T) {
	if testing.Short() {
		t.Skip("one engaged-restart scenario is enough under -short")
	}
	runEngagedRestart(t, "prodcons", false)
}

// TestDiskRecoveryMidFlushCrashTCP repeats the headline run over real
// sockets: the rebooted daemon re-binds its exact TCP addresses.
func TestDiskRecoveryMidFlushCrashTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("tcp restart cell skipped under -short")
	}
	runEngagedRestart(t, "sequential", true)
}

// TestRestartRequiresDiskBackend pins the config guard: rebooting a
// mem-backed daemon would silently pass only by losing data, so the
// harness must refuse the combination outright.
func TestRestartRequiresDiskBackend(t *testing.T) {
	_, err := Run(RunConfig{
		Scenario: "sequential",
		Fault:    "restart",
		Backend:  "mem",
		Seed:     1,
		Params:   workload.Params{Clients: 2, Nodes: 1, OpsPerClient: 4, FileSize: 64 << 10, MaxIO: 4 << 10},
	})
	if err == nil {
		t.Fatal("restart over the mem backend was accepted")
	}
}

// TestChaosMatrixRestartShort is the -short gated cell the chaos-short
// CI job runs: one scenario × restart over the in-memory fabric, fast
// but end-to-end (boot, kill, replay, oracle).
func TestChaosMatrixRestartShort(t *testing.T) {
	if !testing.Short() {
		t.Skip("covered by TestChaosMatrix and the dedicated recovery tests in full mode")
	}
	seed := testseed.Base(t)
	res, err := Run(RunConfig{
		Scenario:    "sequential",
		Fault:       "restart",
		Seed:        seed,
		Params:      cellParams(t),
		FlushPeriod: 3 * time.Millisecond,
		Log:         t.Logf,
	})
	if err != nil {
		t.Fatalf("short restart cell failed: %v", err)
	}
	if res.Ops == 0 {
		t.Fatal("run recorded no ops")
	}
}
