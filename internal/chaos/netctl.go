// Package chaos injects seeded faults into the transport seam and judges
// the survivors: a Controller wraps any transport.Network (in-memory or
// TCP) with connection kill, directional partition, brownout latency,
// short writes and crash hooks; an Oracle extends the byte-for-byte
// consistency check with bounded-error accounting for ops in flight at
// fault time; and the harness (harness.go) runs internal/workload
// scenarios against a live cluster under a seeded fault plan, recording
// a replayable trace of every run.
package chaos

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"pvfscache/internal/transport"
)

// ErrInjected marks every error the fault layer originates, so tests can
// tell injected failures from real bugs.
var ErrInjected = errors.New("chaos: injected fault")

// Controller wraps one underlying Network with fault state shared by all
// of its views. Faults act on the dialer side only: a labeled View's
// dials and the writes of the connections they return pass through the
// fault rules, while listeners and accepted connections stay raw. That
// one-sided design still kills both directions of a connection (closing
// the dial side tears down the peer on TCP and the in-memory pipe alike)
// and is what lets the same Controller serve MemNetwork and TCP without
// either knowing.
type Controller struct {
	under transport.Network

	mu    sync.Mutex
	cond  *sync.Cond // broadcast on every rule change: wakes blackholed writers
	cut   map[string]bool
	drop  map[string]map[string]bool // origin -> addr -> blackhole
	slow  map[string]time.Duration   // addr -> per-write delay
	arms  map[string]*shortArm       // addr -> armed short write
	conns map[*faultConn]struct{}
}

type shortArm struct {
	count int
	hook  func()
}

// NewController wraps a network.
func NewController(under transport.Network) *Controller {
	c := &Controller{
		under: under,
		cut:   make(map[string]bool),
		drop:  make(map[string]map[string]bool),
		slow:  make(map[string]time.Duration),
		arms:  make(map[string]*shortArm),
		conns: make(map[*faultConn]struct{}),
	}
	c.cond = sync.NewCond(&c.mu)
	return c
}

// View returns a Network whose dials carry the given origin label.
// Partition rules select traffic by (origin, dialed addr); every view
// shares the controller's fault state and underlying network.
func (c *Controller) View(origin string) transport.Network {
	return &view{ctl: c, origin: origin}
}

type view struct {
	ctl    *Controller
	origin string
}

func (v *view) Listen(addr string) (transport.Listener, error) {
	return v.ctl.under.Listen(addr)
}

func (v *view) Dial(addr string) (transport.Conn, error) {
	c := v.ctl
	c.mu.Lock()
	refused := c.cut[addr]
	c.mu.Unlock()
	if refused {
		return nil, fmt.Errorf("%w: dial %s refused (cut)", ErrInjected, addr)
	}
	raw, err := c.under.Dial(addr)
	if err != nil {
		return nil, err
	}
	fc := &faultConn{ctl: c, origin: v.origin, addr: addr, raw: raw}
	c.mu.Lock()
	c.conns[fc] = struct{}{}
	c.mu.Unlock()
	return fc, nil
}

// Cut fail-stops an address: new dials are refused and every existing
// connection to it (from any view) is killed. Restore undoes it; the rpc
// layer's redial-on-next-call then recovers automatically.
func (c *Controller) Cut(addrs ...string) {
	c.mu.Lock()
	var victims []*faultConn
	for _, a := range addrs {
		c.cut[a] = true
		for fc := range c.conns {
			if fc.addr == a {
				victims = append(victims, fc)
			}
		}
	}
	c.cond.Broadcast()
	c.mu.Unlock()
	for _, fc := range victims {
		fc.kill()
	}
}

// Restore lifts a Cut.
func (c *Controller) Restore(addrs ...string) {
	c.mu.Lock()
	for _, a := range addrs {
		delete(c.cut, a)
	}
	c.cond.Broadcast()
	c.mu.Unlock()
}

// Partition blackholes traffic from the given origins to the given
// addresses: writes on matching connections block (like frames dropped
// under TCP retransmission) until Heal, so no errors surface — just
// stalls. Directional: only origin→addr traffic is affected.
func (c *Controller) Partition(origins, addrs []string) {
	c.mu.Lock()
	for _, o := range origins {
		m := c.drop[o]
		if m == nil {
			m = make(map[string]bool)
			c.drop[o] = m
		}
		for _, a := range addrs {
			m[a] = true
		}
	}
	c.cond.Broadcast()
	c.mu.Unlock()
}

// Brownout delays every write to the given addresses by d — the
// slow-node fault.
func (c *Controller) Brownout(d time.Duration, addrs ...string) {
	c.mu.Lock()
	for _, a := range addrs {
		c.slow[a] = d
	}
	c.mu.Unlock()
}

// Heal clears all partition and brownout rules and wakes blocked
// writers. Cuts are not healed — use Restore.
func (c *Controller) Heal() {
	c.mu.Lock()
	c.drop = make(map[string]map[string]bool)
	c.slow = make(map[string]time.Duration)
	c.cond.Broadcast()
	c.mu.Unlock()
}

// KillConns abruptly closes every connection dialed to the given
// addresses without refusing future dials — the transient connection
// loss fault.
func (c *Controller) KillConns(addrs ...string) {
	set := make(map[string]bool, len(addrs))
	for _, a := range addrs {
		set[a] = true
	}
	c.mu.Lock()
	var victims []*faultConn
	for fc := range c.conns {
		if set[fc.addr] {
			victims = append(victims, fc)
		}
	}
	c.mu.Unlock()
	for _, fc := range victims {
		fc.kill()
	}
}

// ArmShortWrite arms a one-shot fault on an address: the (after+1)-th
// write to it delivers only half its bytes, fires hook, and kills the
// connection. Arming the flush port of an iod and cutting the daemon
// from the hook is the "iod crashes mid-flush" scenario: the stream sees
// a torn frame exactly as a crashed peer would leave it. Disarm cancels
// a pending arm; it reports whether the arm was still pending.
func (c *Controller) ArmShortWrite(addr string, after int, hook func()) {
	c.mu.Lock()
	c.arms[addr] = &shortArm{count: after + 1, hook: hook}
	c.mu.Unlock()
}

// Disarm cancels a pending ArmShortWrite.
func (c *Controller) Disarm(addr string) bool {
	c.mu.Lock()
	_, ok := c.arms[addr]
	delete(c.arms, addr)
	c.mu.Unlock()
	return ok
}

// faultConn is the dial-side wrapper applying the controller's rules.
type faultConn struct {
	ctl    *Controller
	origin string
	addr   string
	raw    transport.Conn

	killMu sync.Mutex
	killed bool
}

func (fc *faultConn) Read(p []byte) (int, error) { return fc.raw.Read(p) }

func (fc *faultConn) Write(p []byte) (int, error) {
	c := fc.ctl
	c.mu.Lock()
	for c.blackholedLocked(fc.origin, fc.addr) && !c.cut[fc.addr] && !fc.isKilled() {
		c.cond.Wait()
	}
	if c.cut[fc.addr] || fc.isKilled() {
		c.mu.Unlock()
		return 0, fmt.Errorf("%w: write to %s (connection killed)", ErrInjected, fc.addr)
	}
	delay := c.slow[fc.addr]
	var fire *shortArm
	if arm := c.arms[fc.addr]; arm != nil {
		arm.count--
		if arm.count <= 0 {
			delete(c.arms, fc.addr)
			fire = arm
		}
	}
	c.mu.Unlock()

	if delay > 0 {
		time.Sleep(delay)
	}
	if fire != nil {
		n, _ := fc.raw.Write(p[:len(p)/2])
		if fire.hook != nil {
			fire.hook()
		}
		fc.kill()
		return n, fmt.Errorf("%w: short write to %s (%d of %d bytes, peer crashed)",
			ErrInjected, fc.addr, n, len(p))
	}
	return fc.raw.Write(p)
}

func (fc *faultConn) Close() error { return fc.kill() }

// kill tears the connection down in both directions and unblocks any
// writer parked in a blackhole. The killed flag is set before the
// broadcast so a woken writer's re-check observes it.
func (fc *faultConn) kill() error {
	err := fc.kill0()
	fc.ctl.mu.Lock()
	delete(fc.ctl.conns, fc)
	fc.ctl.cond.Broadcast()
	fc.ctl.mu.Unlock()
	return err
}

func (fc *faultConn) kill0() error {
	fc.killMu.Lock()
	already := fc.killed
	fc.killed = true
	fc.killMu.Unlock()
	if already {
		return nil
	}
	return fc.raw.Close()
}

func (fc *faultConn) isKilled() bool {
	fc.killMu.Lock()
	defer fc.killMu.Unlock()
	return fc.killed
}

func (c *Controller) blackholedLocked(origin, addr string) bool {
	if m := c.drop[origin]; m != nil && m[addr] {
		return true
	}
	return false
}
