package sim

import (
	"testing"
	"time"
)

func TestScheduleOrdering(t *testing.T) {
	e := NewEnv()
	var order []int
	e.Schedule(2*time.Millisecond, func() { order = append(order, 2) })
	e.Schedule(1*time.Millisecond, func() { order = append(order, 1) })
	e.Schedule(3*time.Millisecond, func() { order = append(order, 3) })
	end := e.Run()
	if end != 3*time.Millisecond {
		t.Errorf("end = %v", end)
	}
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("order = %v", order)
	}
}

func TestEqualTimesFIFO(t *testing.T) {
	e := NewEnv()
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		e.Schedule(time.Millisecond, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("order = %v", order)
		}
	}
}

func TestProcSleepAdvancesTime(t *testing.T) {
	e := NewEnv()
	var at []time.Duration
	e.Go("p", func(p *Proc) {
		at = append(at, e.Now())
		p.Sleep(10 * time.Millisecond)
		at = append(at, e.Now())
		p.Sleep(5 * time.Millisecond)
		at = append(at, e.Now())
	})
	e.Run()
	want := []time.Duration{0, 10 * time.Millisecond, 15 * time.Millisecond}
	for i := range want {
		if at[i] != want[i] {
			t.Errorf("at[%d] = %v, want %v", i, at[i], want[i])
		}
	}
}

func TestTwoProcsInterleaveDeterministically(t *testing.T) {
	run := func() []string {
		e := NewEnv()
		var trace []string
		e.Go("a", func(p *Proc) {
			for i := 0; i < 3; i++ {
				p.Sleep(2 * time.Millisecond)
				trace = append(trace, "a")
			}
		})
		e.Go("b", func(p *Proc) {
			for i := 0; i < 2; i++ {
				p.Sleep(3 * time.Millisecond)
				trace = append(trace, "b")
			}
		})
		e.Run()
		return trace
	}
	first := run()
	// a@2, b@3, a@4, then both at t=6: b's wake was scheduled at t=3,
	// a's at t=4, so b fires first (FIFO by scheduling order).
	want := []string{"a", "b", "a", "b", "a"}
	if len(first) != len(want) {
		t.Fatalf("trace = %v", first)
	}
	for i := range want {
		if first[i] != want[i] {
			t.Fatalf("trace = %v, want %v", first, want)
		}
	}
	// Determinism across runs.
	for trial := 0; trial < 5; trial++ {
		again := run()
		for i := range first {
			if again[i] != first[i] {
				t.Fatalf("nondeterministic trace: %v vs %v", first, again)
			}
		}
	}
}

func TestSignalWakesAllWaiters(t *testing.T) {
	e := NewEnv()
	s := e.NewSignal()
	woken := 0
	for i := 0; i < 3; i++ {
		e.Go("w", func(p *Proc) {
			s.Wait(p)
			woken++
		})
	}
	e.Go("firer", func(p *Proc) {
		p.Sleep(5 * time.Millisecond)
		if s.Waiters() != 3 {
			t.Errorf("waiters = %d", s.Waiters())
		}
		s.Fire()
	})
	e.Run()
	if woken != 3 {
		t.Errorf("woken = %d", woken)
	}
	if e.Deadlocked() != 0 {
		t.Errorf("deadlocked = %d", e.Deadlocked())
	}
}

func TestSignalWaitersResumeAtFireTime(t *testing.T) {
	e := NewEnv()
	s := e.NewSignal()
	var resumed time.Duration
	e.Go("w", func(p *Proc) {
		s.Wait(p)
		resumed = e.Now()
	})
	e.Go("f", func(p *Proc) {
		p.Sleep(7 * time.Millisecond)
		s.Fire()
	})
	e.Run()
	if resumed != 7*time.Millisecond {
		t.Errorf("resumed at %v", resumed)
	}
}

func TestResourceSerializes(t *testing.T) {
	e := NewEnv()
	r := e.NewResource("disk", 1)
	var done []time.Duration
	for i := 0; i < 3; i++ {
		e.Go("u", func(p *Proc) {
			r.Use(p, 10*time.Millisecond)
			done = append(done, e.Now())
		})
	}
	e.Run()
	want := []time.Duration{10 * time.Millisecond, 20 * time.Millisecond, 30 * time.Millisecond}
	for i := range want {
		if done[i] != want[i] {
			t.Errorf("done[%d] = %v, want %v", i, done[i], want[i])
		}
	}
	if r.Waits != 2 {
		t.Errorf("waits = %d", r.Waits)
	}
	if r.Busy != 30*time.Millisecond {
		t.Errorf("busy = %v", r.Busy)
	}
}

func TestResourceCapacityTwoRunsPairs(t *testing.T) {
	e := NewEnv()
	r := e.NewResource("cpu", 2)
	var done []time.Duration
	for i := 0; i < 4; i++ {
		e.Go("u", func(p *Proc) {
			r.Use(p, 10*time.Millisecond)
			done = append(done, e.Now())
		})
	}
	e.Run()
	// Two run in [0,10), two in [10,20).
	if done[0] != 10*time.Millisecond || done[1] != 10*time.Millisecond {
		t.Errorf("first pair = %v", done[:2])
	}
	if done[2] != 20*time.Millisecond || done[3] != 20*time.Millisecond {
		t.Errorf("second pair = %v", done[2:])
	}
}

func TestResourceFIFOOrder(t *testing.T) {
	e := NewEnv()
	r := e.NewResource("x", 1)
	var order []string
	spawn := func(name string, delay time.Duration) {
		e.Go(name, func(p *Proc) {
			p.Sleep(delay)
			r.Acquire(p)
			p.Sleep(5 * time.Millisecond)
			order = append(order, name)
			r.Release(p)
		})
	}
	spawn("first", 0)
	spawn("second", 1*time.Millisecond)
	spawn("third", 2*time.Millisecond)
	e.Run()
	if order[0] != "first" || order[1] != "second" || order[2] != "third" {
		t.Errorf("order = %v", order)
	}
}

func TestReleaseByNonHolderPanics(t *testing.T) {
	e := NewEnv()
	r := e.NewResource("x", 1)
	panicked := false
	e.Go("p", func(p *Proc) {
		defer func() {
			if recover() != nil {
				panicked = true
			}
		}()
		r.Release(p)
	})
	e.Run()
	if !panicked {
		t.Error("expected panic on bad release")
	}
}

func TestRunUntilStopsAtBoundary(t *testing.T) {
	e := NewEnv()
	fired := 0
	e.Schedule(5*time.Millisecond, func() { fired++ })
	e.Schedule(15*time.Millisecond, func() { fired++ })
	e.RunUntil(10 * time.Millisecond)
	if fired != 1 {
		t.Errorf("fired = %d", fired)
	}
	if e.Now() != 10*time.Millisecond {
		t.Errorf("now = %v", e.Now())
	}
	e.Run()
	if fired != 2 {
		t.Errorf("fired = %d after Run", fired)
	}
}

func TestBlockedProcessReported(t *testing.T) {
	e := NewEnv()
	s := e.NewSignal()
	e.Go("stuck", func(p *Proc) { s.Wait(p) })
	e.Run()
	if e.Deadlocked() != 1 {
		t.Errorf("deadlocked = %d, want 1", e.Deadlocked())
	}
}

func TestNegativeDelayClampedToNow(t *testing.T) {
	e := NewEnv()
	var at time.Duration
	e.Schedule(5*time.Millisecond, func() {
		e.Schedule(-time.Second, func() { at = e.Now() })
	})
	e.Run()
	if at != 5*time.Millisecond {
		t.Errorf("at = %v", at)
	}
}

// A producer/consumer chain built from signals: verifies handoff stability
// under repeated wake/sleep cycles.
func TestPingPong(t *testing.T) {
	e := NewEnv()
	ping := e.NewSignal()
	pong := e.NewSignal()
	count := 0
	e.Go("ping", func(p *Proc) {
		for i := 0; i < 10; i++ {
			p.Sleep(time.Millisecond)
			ping.Fire()
			pong.Wait(p)
		}
	})
	e.Go("pong", func(p *Proc) {
		for i := 0; i < 10; i++ {
			ping.Wait(p)
			count++
			pong.Fire()
		}
	})
	e.Run()
	if count != 10 {
		t.Errorf("count = %d", count)
	}
	if e.Deadlocked() != 0 {
		t.Errorf("deadlocked = %d", e.Deadlocked())
	}
}

func TestManyProcsStress(t *testing.T) {
	e := NewEnv()
	r := e.NewResource("r", 3)
	finished := 0
	for i := 0; i < 200; i++ {
		e.Go("p", func(p *Proc) {
			for j := 0; j < 10; j++ {
				r.Use(p, time.Microsecond*100)
			}
			finished++
		})
	}
	e.Run()
	if finished != 200 {
		t.Errorf("finished = %d", finished)
	}
	// 2000 total uses of 100us over capacity 3.
	wantMin := time.Duration(2000/3) * 100 * time.Microsecond
	if e.Now() < wantMin {
		t.Errorf("end time %v implausibly small", e.Now())
	}
}
