// Package sim is a deterministic, process-oriented discrete-event
// simulation kernel (in the style of SimPy or CSIM). Model code is written
// as ordinary sequential Go functions running in simulated processes;
// virtual time advances only through Sleep, resource waits and signal
// waits. Exactly one process executes at any instant — the kernel hands
// control between goroutines explicitly — so runs are fully deterministic
// for a given model and seed.
//
// The cluster model in package simcluster uses this kernel to reproduce
// the paper's figures in virtual time on calibrated 2002-era hardware
// parameters.
package sim

import (
	"container/heap"
	"fmt"
	"time"
)

// Env is one simulation universe: a virtual clock and an event queue.
// Create with NewEnv; not safe for use from multiple OS threads except
// through the process API.
type Env struct {
	now    time.Duration
	events eventHeap
	seq    uint64

	yield   chan struct{} // running process -> scheduler
	procs   int           // live processes
	blocked int           // processes waiting on signals/resources
}

// NewEnv returns an empty environment at time zero.
func NewEnv() *Env {
	return &Env{yield: make(chan struct{})}
}

// Now returns the current virtual time.
func (e *Env) Now() time.Duration { return e.now }

// event is a scheduled callback.
type event struct {
	at  time.Duration
	seq uint64
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	*h = old[:n-1]
	return ev
}

// Schedule runs fn after delay of virtual time. Events at equal times fire
// in scheduling order. fn executes in scheduler context and must not block.
func (e *Env) Schedule(delay time.Duration, fn func()) {
	if delay < 0 {
		delay = 0
	}
	e.seq++
	heap.Push(&e.events, event{at: e.now + delay, seq: e.seq, fn: fn})
}

// Proc is a simulated process. Its methods may only be called from within
// the process's own function.
type Proc struct {
	env  *Env
	name string
	wake chan struct{}
}

// Name returns the process name given to Go.
func (p *Proc) Name() string { return p.name }

// Env returns the owning environment.
func (p *Proc) Env() *Env { return p.env }

// Go spawns a process that starts at the current virtual time.
func (e *Env) Go(name string, fn func(p *Proc)) {
	p := &Proc{env: e, name: name, wake: make(chan struct{})}
	e.procs++
	e.Schedule(0, func() {
		go func() {
			<-p.wake // wait for the scheduler's handoff
			fn(p)
			e.procs--
			e.yield <- struct{}{} // final yield: process done
		}()
		e.handoff(p)
	})
}

// handoff transfers control to p and blocks the scheduler until p yields.
func (e *Env) handoff(p *Proc) {
	p.wake <- struct{}{}
	<-e.yield
}

// yieldToScheduler parks the calling process until its next wake event.
func (p *Proc) yieldToScheduler() {
	p.env.yield <- struct{}{}
	<-p.wake
}

// Sleep advances the process by d of virtual time.
func (p *Proc) Sleep(d time.Duration) {
	e := p.env
	e.Schedule(d, func() { e.handoff(p) })
	p.yieldToScheduler()
}

// Run executes events until the queue is empty. It returns the final
// virtual time. Blocked processes that can never be woken are reported by
// Deadlocked afterwards.
func (e *Env) Run() time.Duration {
	for len(e.events) > 0 {
		ev := heap.Pop(&e.events).(event)
		e.now = ev.at
		ev.fn()
	}
	return e.now
}

// RunUntil executes events with timestamps <= t, then sets the clock to t.
func (e *Env) RunUntil(t time.Duration) {
	for len(e.events) > 0 && e.events[0].at <= t {
		ev := heap.Pop(&e.events).(event)
		e.now = ev.at
		ev.fn()
	}
	if e.now < t {
		e.now = t
	}
}

// Deadlocked returns the number of processes still blocked after Run
// drained the event queue (0 for a clean termination; background daemons
// parked on signals also count, so interpret with model knowledge).
func (e *Env) Deadlocked() int { return e.blocked }

// Signal is a broadcast condition: processes Wait on it; Fire wakes every
// current waiter at the current virtual time.
type Signal struct {
	env     *Env
	waiters []*Proc
}

// NewSignal returns a signal bound to the environment.
func (e *Env) NewSignal() *Signal { return &Signal{env: e} }

// Wait parks the process until the next Fire.
func (s *Signal) Wait(p *Proc) {
	s.waiters = append(s.waiters, p)
	p.env.blocked++
	p.yieldToScheduler()
}

// Fire wakes every waiting process. Waiters resume at the current time, in
// wait order, after the firing process next yields.
func (s *Signal) Fire() {
	waiters := s.waiters
	s.waiters = nil
	for _, p := range waiters {
		p := p
		s.env.blocked--
		s.env.Schedule(0, func() { s.env.handoff(p) })
	}
}

// Waiters returns the number of processes currently parked on the signal.
func (s *Signal) Waiters() int { return len(s.waiters) }

// Resource is a FIFO server pool with fixed capacity: Acquire blocks (in
// virtual time) while all units are held. It models disks, NICs, the
// shared hub, and time-shared CPUs.
type Resource struct {
	env      *Env
	name     string
	capacity int
	inUse    int
	queue    []*Proc

	// Busy accumulates total held time across all units (utilization).
	Busy time.Duration
	// Waits counts acquisitions that had to queue.
	Waits int
	held  map[*Proc]time.Duration
}

// NewResource returns a resource with the given capacity (units).
func (e *Env) NewResource(name string, capacity int) *Resource {
	if capacity <= 0 {
		panic(fmt.Sprintf("sim: resource %q capacity %d", name, capacity))
	}
	return &Resource{env: e, name: name, capacity: capacity, held: make(map[*Proc]time.Duration)}
}

// Acquire obtains one unit, queueing FIFO if none is free.
func (r *Resource) Acquire(p *Proc) {
	if r.inUse < r.capacity {
		r.inUse++
		r.held[p] = r.env.now
		return
	}
	r.Waits++
	r.queue = append(r.queue, p)
	r.env.blocked++
	p.yieldToScheduler()
	// Woken by Release, which already accounted the unit to us.
	r.held[p] = r.env.now
}

// Release returns the unit held by p and hands it to the oldest waiter.
func (r *Resource) Release(p *Proc) {
	start, ok := r.held[p]
	if !ok {
		panic(fmt.Sprintf("sim: release of %q by non-holder %q", r.name, p.name))
	}
	delete(r.held, p)
	r.Busy += r.env.now - start
	if len(r.queue) > 0 {
		next := r.queue[0]
		r.queue = r.queue[1:]
		r.env.blocked--
		r.env.Schedule(0, func() { r.env.handoff(next) })
		return
	}
	r.inUse--
}

// Use acquires the resource, sleeps for d, and releases it: the common
// "hold a server for a service time" idiom.
func (r *Resource) Use(p *Proc, d time.Duration) {
	r.Acquire(p)
	p.Sleep(d)
	r.Release(p)
}

// InUse returns the number of held units.
func (r *Resource) InUse() int { return r.inUse }

// QueueLen returns the number of queued processes.
func (r *Resource) QueueLen() int { return len(r.queue) }
