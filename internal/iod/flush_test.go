package iod

import (
	"bytes"
	"sync"
	"testing"

	"pvfscache/internal/blockio"
	"pvfscache/internal/rpc"
	"pvfscache/internal/wire"
)

// TestFlushRunCoversEveryBlock: a coalesced FlushBlock run spanning
// several cache blocks must land byte-exactly in the store, and the
// coherence directory must record the flusher as a holder of EVERY
// covered block — a sync-writer touching any of them must invalidate the
// flusher's cache.
func TestFlushRunCoversEveryBlock(t *testing.T) {
	s, net, _, flush := testDaemon(t)
	conn, err := net.Dial(flush)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	// A run starting mid-block 2 and covering blocks 2..5 (tail partial).
	run := make([]byte, 3*4096+100)
	for i := range run {
		run[i] = byte(i * 7)
	}
	ack := call(t, conn, &wire.Flush{
		Client: 9,
		File:   4,
		Blocks: []wire.FlushBlock{{Index: 2, Off: 1000, Data: run}},
	}).(*wire.FlushAck)
	if ack.Status != wire.StatusOK {
		t.Fatalf("flush status %d", ack.Status)
	}
	got := make([]byte, len(run))
	if n, _ := s.Store().ReadAt(4, 2*4096+1000, got); n != len(run) || !bytes.Equal(got, run) {
		t.Fatalf("run not durable: n=%d", n)
	}
	for idx := int64(2); idx <= 5; idx++ {
		holders := s.Holders(blockio.BlockKey{File: 4, Index: idx})
		if len(holders) != 1 || holders[0] != 9 {
			t.Fatalf("block %d holders = %v, want [9]", idx, holders)
		}
	}
	if s.Holders(blockio.BlockKey{File: 4, Index: 6}) != nil {
		t.Fatal("holder recorded past the run's end")
	}
}

// TestFlushConcurrentFramesFromOneClient pins the property the pipelined
// write-behind engine relies on: one client's window of Flush frames —
// disjoint runs, served on parallel server goroutines — applies without
// corruption, and every frame's bytes are durable and its blocks
// holder-tracked once all acks are in.
func TestFlushConcurrentFramesFromOneClient(t *testing.T) {
	s, net, _, flush := testDaemon(t)
	// A tagged rpc client gets concurrent out-of-order service — the same
	// path the cache module's flush streams use.
	rc := rpc.NewClient(rpc.ClientConfig{Network: net, Addr: flush, Conns: 2})
	defer rc.Close()

	const frames = 16
	const blocksPerFrame = 4
	pattern := func(frame, i int) byte { return byte(frame*31 + i*7 + 1) }

	var wg sync.WaitGroup
	errs := make(chan error, frames)
	for f := 0; f < frames; f++ {
		wg.Add(1)
		go func(f int) {
			defer wg.Done()
			msg := &wire.Flush{Client: 3, File: 8}
			for b := 0; b < blocksPerFrame; b++ {
				idx := int64(f*blocksPerFrame + b)
				data := bytes.Repeat([]byte{pattern(f, b)}, 4096)
				msg.Blocks = append(msg.Blocks, wire.FlushBlock{Index: idx, Data: data})
			}
			res := rc.Call(msg)
			if res.Err != nil {
				errs <- res.Err
				return
			}
			if ack, ok := res.Msg.(*wire.FlushAck); !ok || ack.Status != wire.StatusOK {
				errs <- res.Err
			}
		}(f)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	buf := make([]byte, 4096)
	for f := 0; f < frames; f++ {
		for b := 0; b < blocksPerFrame; b++ {
			idx := int64(f*blocksPerFrame + b)
			if n, _ := s.Store().ReadAt(8, idx*4096, buf); n != 4096 {
				t.Fatalf("block %d short read %d", idx, n)
			}
			if !bytes.Equal(buf, bytes.Repeat([]byte{pattern(f, b)}, 4096)) {
				t.Fatalf("block %d corrupted under concurrent frames", idx)
			}
			holders := s.Holders(blockio.BlockKey{File: 8, Index: idx})
			if len(holders) != 1 || holders[0] != 3 {
				t.Fatalf("block %d holders = %v", idx, holders)
			}
		}
	}
}
