package iod

import (
	"sync"
	"testing"

	"pvfscache/internal/blockio"
	"pvfscache/internal/sharing"
	"pvfscache/internal/wire"
)

// TestObserverFeedsSharingClassifier wires a sharing.Tracker into an iod
// and verifies a producer-consumer access sequence is classified.
func TestObserverFeedsSharingClassifier(t *testing.T) {
	s, net, data, flush := testDaemon(t)
	tracker := sharing.NewTracker()
	var mu sync.Mutex
	s.SetObserver(func(client uint32, file blockio.FileID, block int64, write bool) {
		mu.Lock()
		tracker.Observe(sharing.Event{Client: client, File: file, Block: block, Write: write})
		mu.Unlock()
	})

	conn, _ := net.Dial(data)
	defer conn.Close()
	fconn, _ := net.Dial(flush)
	defer fconn.Close()

	// Client 1 produces two blocks (one via write, one via flush).
	call(t, conn, &wire.Write{Client: 1, File: 5, Offset: 0, Data: make([]byte, 4096)})
	call(t, fconn, &wire.Flush{Client: 1, File: 5, Blocks: []wire.FlushBlock{
		{Index: 1, Data: make([]byte, 4096)},
	}})
	// Client 2 consumes both.
	call(t, conn, &wire.Read{Client: 2, File: 5, Offset: 0, Length: 8192})

	sums := tracker.Summarize()
	if len(sums) != 1 {
		t.Fatalf("summaries = %d", len(sums))
	}
	if sums[0].Dominant != sharing.ProducerConsumer {
		t.Errorf("dominant = %v, want producer-consumer", sums[0].Dominant)
	}
	if sums[0].Blocks != 2 {
		t.Errorf("blocks = %d", sums[0].Blocks)
	}
}

func TestObserverIgnoresAnonymousClients(t *testing.T) {
	s, net, data, _ := testDaemon(t)
	count := 0
	s.SetObserver(func(uint32, blockio.FileID, int64, bool) { count++ })
	conn, _ := net.Dial(data)
	defer conn.Close()
	call(t, conn, &wire.Write{Client: 0, File: 1, Offset: 0, Data: make([]byte, 4096)})
	call(t, conn, &wire.Read{Client: 0, File: 1, Offset: 0, Length: 4096})
	if count != 0 {
		t.Errorf("anonymous traffic observed %d times", count)
	}
}

func TestObserverSyncWrite(t *testing.T) {
	s, net, data, _ := testDaemon(t)
	var events []bool
	s.SetObserver(func(_ uint32, _ blockio.FileID, _ int64, write bool) {
		events = append(events, write)
	})
	conn, _ := net.Dial(data)
	defer conn.Close()
	call(t, conn, &wire.SyncWrite{Client: 3, File: 2, Offset: 0, Data: make([]byte, 8192)})
	if len(events) != 2 || !events[0] || !events[1] {
		t.Errorf("sync write events = %v, want two writes", events)
	}
}
