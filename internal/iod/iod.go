// Package iod implements the PVFS I/O daemon: the per-node data server
// that stores file strips and answers read/write requests from libpvfs
// clients. In addition to the plain PVFS data port, the daemon carries the
// two server-side pieces the paper adds:
//
//   - a separate flush port, served by the "server version of the flusher
//     thread", which accepts batched dirty-block flushes from the per-node
//     cache modules and writes them with local file-system calls; and
//   - a per-block coherence directory used by sync-writes: the directory
//     records which client caches hold a copy of each block, and a
//     sync-write invalidates every other holder before it is acknowledged.
package iod

import (
	"errors"
	"fmt"
	"sync"

	"pvfscache/internal/blockio"
	"pvfscache/internal/metrics"
	"pvfscache/internal/simdisk"
	"pvfscache/internal/transport"
	"pvfscache/internal/wire"
)

// Server is one I/O daemon.
type Server struct {
	id        int
	blockSize int
	store     *simdisk.Store
	reg       *metrics.Registry
	network   transport.Network

	mu      sync.Mutex
	clients map[uint32]string              // client id -> invalidation listener address
	inval   map[uint32]*invalChannel       // lazily dialed invalidation connections
	dir     map[blockio.BlockKey]holderSet // coherence directory

	observer AccessObserver
}

// AccessObserver receives one callback per block touched by client
// traffic. It feeds the sharing-pattern classifier (internal/sharing) —
// the paper's "classify different sharing patterns" ongoing-work item.
// Callbacks run on request-serving goroutines and must be fast and
// thread-safe.
type AccessObserver func(client uint32, file blockio.FileID, block int64, write bool)

type holderSet map[uint32]struct{}

// invalChannel serializes invalidation round trips to one client.
type invalChannel struct {
	mu   sync.Mutex
	conn transport.Conn
}

// New returns an iod with the given index in the cluster's iod list.
// network is used to dial client invalidation listeners; it may be nil when
// sync-writes are not used. reg may be nil.
func New(id int, blockSize int, network transport.Network, reg *metrics.Registry) *Server {
	if blockSize <= 0 {
		blockSize = blockio.DefaultBlockSize
	}
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	return &Server{
		id:        id,
		blockSize: blockSize,
		store:     simdisk.NewStore(),
		reg:       reg,
		network:   network,
		clients:   make(map[uint32]string),
		inval:     make(map[uint32]*invalChannel),
		dir:       make(map[blockio.BlockKey]holderSet),
	}
}

// ID returns the daemon's index in the cluster iod list.
func (s *Server) ID() int { return s.id }

// Store exposes the daemon's backing store (tests and the simulator seed
// data through it).
func (s *Server) Store() *simdisk.Store { return s.store }

// ServeData accepts data-port connections until the listener closes.
func (s *Server) ServeData(l transport.Listener) error { return s.serve(l, s.handleData) }

// ServeFlush accepts flush-port connections until the listener closes.
// This is the server half of the flusher protocol.
func (s *Server) ServeFlush(l transport.Listener) error { return s.serve(l, s.handleFlush) }

func (s *Server) serve(l transport.Listener, handler func(wire.Message) wire.Message) error {
	for {
		conn, err := l.Accept()
		if err != nil {
			if errors.Is(err, transport.ErrClosed) {
				return nil
			}
			return err
		}
		go func() {
			defer conn.Close()
			for {
				msg, err := wire.ReadMessage(conn)
				if err != nil {
					return
				}
				resp := handler(msg)
				if resp == nil {
					return
				}
				if err := wire.WriteMessage(conn, resp); err != nil {
					return
				}
			}
		}()
	}
}

// handleData dispatches one data-port request.
func (s *Server) handleData(msg wire.Message) wire.Message {
	switch m := msg.(type) {
	case *wire.Read:
		return s.read(m)
	case *wire.Write:
		return s.write(m)
	case *wire.SyncWrite:
		return s.syncWrite(m)
	case *wire.Register:
		s.RegisterClient(m.Client, m.Addr)
		return &wire.RegisterAck{Status: wire.StatusOK}
	default:
		return nil
	}
}

// handleFlush dispatches one flush-port request.
func (s *Server) handleFlush(msg wire.Message) wire.Message {
	m, ok := msg.(*wire.Flush)
	if !ok {
		return nil
	}
	return s.flush(m)
}

// SetObserver installs the access observer. Call before serving traffic.
func (s *Server) SetObserver(obs AccessObserver) { s.observer = obs }

// observe reports every block of a range to the observer, if any.
func (s *Server) observe(client uint32, file blockio.FileID, off, length int64, write bool) {
	if s.observer == nil || client == 0 {
		return
	}
	first, count := blockio.BlockRange(off, length, s.blockSize)
	for i := int64(0); i < count; i++ {
		s.observer(client, file, first+i, write)
	}
}

// RegisterClient records the invalidation address for a client cache.
// Re-registering replaces the address and drops any cached connection.
func (s *Server) RegisterClient(client uint32, addr string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.clients[client] = addr
	if ch := s.inval[client]; ch != nil {
		ch.mu.Lock()
		if ch.conn != nil {
			ch.conn.Close()
			ch.conn = nil
		}
		ch.mu.Unlock()
	}
	delete(s.inval, client)
}

func (s *Server) read(m *wire.Read) *wire.ReadResp {
	if m.Length < 0 || m.Length > wire.MaxMessageSize/2 {
		return &wire.ReadResp{Status: wire.StatusBadRequest}
	}
	buf := make([]byte, m.Length)
	n := s.store.ReadAt(m.File, m.Offset, buf)
	s.reg.Counter("iod.reads").Inc()
	s.reg.Counter("iod.read_bytes").Add(int64(n))
	if m.Track && m.Client != 0 {
		s.trackHolders(m.Client, m.File, m.Offset, m.Length)
	}
	s.observe(m.Client, m.File, m.Offset, m.Length, false)
	return &wire.ReadResp{Status: wire.StatusOK, Data: buf[:n]}
}

func (s *Server) write(m *wire.Write) *wire.WriteAck {
	s.store.WriteAt(m.File, m.Offset, m.Data)
	s.reg.Counter("iod.writes").Inc()
	s.reg.Counter("iod.write_bytes").Add(int64(len(m.Data)))
	s.observe(m.Client, m.File, m.Offset, int64(len(m.Data)), true)
	return &wire.WriteAck{Status: wire.StatusOK}
}

func (s *Server) flush(m *wire.Flush) *wire.FlushAck {
	for _, blk := range m.Blocks {
		s.store.WriteAt(m.File, blk.Index*int64(s.blockSize)+int64(blk.Off), blk.Data)
		// Flushed blocks stay resident (clean) in the flusher's cache.
		if m.Client != 0 {
			s.addHolder(m.Client, blockio.BlockKey{File: m.File, Index: blk.Index})
		}
	}
	s.reg.Counter("iod.flushes").Inc()
	s.reg.Counter("iod.flush_blocks").Add(int64(len(m.Blocks)))
	if s.observer != nil && m.Client != 0 {
		for _, blk := range m.Blocks {
			s.observer(m.Client, m.File, blk.Index, true)
		}
	}
	return &wire.FlushAck{Status: wire.StatusOK}
}

// syncWrite performs the paper's coherent write: persist, then invalidate
// every other cache holding any touched block, then acknowledge.
func (s *Server) syncWrite(m *wire.SyncWrite) *wire.SyncWriteAck {
	s.store.WriteAt(m.File, m.Offset, m.Data)
	s.reg.Counter("iod.sync_writes").Inc()
	s.observe(m.Client, m.File, m.Offset, int64(len(m.Data)), true)

	victims := s.collectVictims(m.Client, m.File, m.Offset, int64(len(m.Data)))
	invalidated := uint32(0)
	for client, indices := range victims {
		if err := s.sendInvalidate(client, m.File, indices); err == nil {
			invalidated++
		}
		// Whether or not delivery succeeded, the directory entry is gone:
		// an unreachable cache is treated as departed.
	}
	// The writer keeps a current copy.
	if m.Client != 0 {
		s.trackHolders(m.Client, m.File, m.Offset, int64(len(m.Data)))
	}
	return &wire.SyncWriteAck{Status: wire.StatusOK, Invalidated: invalidated}
}

// trackHolders registers client as a holder of every block in the range.
func (s *Server) trackHolders(client uint32, file blockio.FileID, off, length int64) {
	first, count := blockio.BlockRange(off, length, s.blockSize)
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := int64(0); i < count; i++ {
		key := blockio.BlockKey{File: file, Index: first + i}
		hs := s.dir[key]
		if hs == nil {
			hs = make(holderSet)
			s.dir[key] = hs
		}
		hs[client] = struct{}{}
	}
}

func (s *Server) addHolder(client uint32, key blockio.BlockKey) {
	s.mu.Lock()
	defer s.mu.Unlock()
	hs := s.dir[key]
	if hs == nil {
		hs = make(holderSet)
		s.dir[key] = hs
	}
	hs[client] = struct{}{}
}

// collectVictims removes every holder other than writer from the directory
// entries covering the range and returns them grouped by client.
func (s *Server) collectVictims(writer uint32, file blockio.FileID, off, length int64) map[uint32][]int64 {
	first, count := blockio.BlockRange(off, length, s.blockSize)
	victims := make(map[uint32][]int64)
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := int64(0); i < count; i++ {
		key := blockio.BlockKey{File: file, Index: first + i}
		for client := range s.dir[key] {
			if client == writer {
				continue
			}
			victims[client] = append(victims[client], key.Index)
			delete(s.dir[key], client)
		}
		if len(s.dir[key]) == 0 {
			delete(s.dir, key)
		}
	}
	return victims
}

// Holders returns the clients the directory currently records for a block
// (test hook).
func (s *Server) Holders(key blockio.BlockKey) []uint32 {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []uint32
	for c := range s.dir[key] {
		out = append(out, c)
	}
	return out
}

// sendInvalidate delivers one Invalidate round trip to a client cache.
func (s *Server) sendInvalidate(client uint32, file blockio.FileID, indices []int64) error {
	ch, addr, err := s.invalChannelFor(client)
	if err != nil {
		return err
	}
	ch.mu.Lock()
	defer ch.mu.Unlock()
	if ch.conn == nil {
		if s.network == nil {
			return fmt.Errorf("iod %d: no network to reach client %d", s.id, client)
		}
		conn, err := s.network.Dial(addr)
		if err != nil {
			return fmt.Errorf("iod %d: dialing invalidation listener of client %d: %w", s.id, client, err)
		}
		ch.conn = conn
	}
	if err := wire.WriteMessage(ch.conn, &wire.Invalidate{File: file, Indices: indices}); err != nil {
		ch.conn.Close()
		ch.conn = nil
		return err
	}
	resp, err := wire.ReadMessage(ch.conn)
	if err != nil {
		ch.conn.Close()
		ch.conn = nil
		return err
	}
	if _, ok := resp.(*wire.InvalidAck); !ok {
		ch.conn.Close()
		ch.conn = nil
		return fmt.Errorf("iod %d: unexpected invalidation reply %v", s.id, resp.WireType())
	}
	s.reg.Counter("iod.invalidations").Inc()
	return nil
}

func (s *Server) invalChannelFor(client uint32) (*invalChannel, string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	addr, ok := s.clients[client]
	if !ok {
		return nil, "", fmt.Errorf("iod %d: client %d not registered", s.id, client)
	}
	ch := s.inval[client]
	if ch == nil {
		ch = &invalChannel{}
		s.inval[client] = ch
	}
	return ch, addr, nil
}
