// Package iod implements the PVFS I/O daemon: the per-node data server
// that stores file strips and answers read/write requests from libpvfs
// clients. Requests arrive through the shared rpc core (internal/rpc), so
// tagged clients get concurrent, out-of-order service while legacy peers
// fall back to FIFO. Besides plain reads, the data port serves vectored
// reads (wire.ReadBlocks): all requested extents of a connection's
// request in one pass, packed into a single pooled buffer that is
// recycled once the response hits the wire. In addition, the daemon
// carries the two server-side pieces the paper adds:
//
//   - a separate flush port, served by the "server version of the flusher
//     thread", which accepts batched dirty-block flushes from the per-node
//     cache modules and writes them with local file-system calls; and
//   - a per-block coherence directory used by sync-writes: the directory
//     records which client caches hold a copy of each block, and a
//     sync-write invalidates every other holder before it is acknowledged.
package iod

import (
	"fmt"
	"sync"
	"sync/atomic"

	"pvfscache/internal/blockio"
	"pvfscache/internal/metrics"
	"pvfscache/internal/rpc"
	"pvfscache/internal/storage"
	"pvfscache/internal/storage/mem"
	"pvfscache/internal/transport"
	"pvfscache/internal/wire"
)

// Server is one I/O daemon.
type Server struct {
	id        int
	blockSize int
	store     storage.Backend
	reg       *metrics.Registry
	network   transport.Network

	// draining, once set, stops the coherence directory from admitting
	// new holders: reads still serve data but are no longer tracked, so
	// the directory only shrinks while the daemon is being retired.
	draining atomic.Bool

	mu      sync.Mutex
	clients map[uint32]string              // client id -> invalidation listener address
	inval   map[uint32]*rpc.Client         // lazily dialed invalidation clients
	dir     map[blockio.BlockKey]holderSet // coherence directory

	srvMu   sync.Mutex
	servers []*rpc.Server

	readBufs rpc.BufPool // read buffers, recycled after each response is written

	observer AccessObserver
}

// AccessObserver receives one callback per block touched by client
// traffic. It feeds the sharing-pattern classifier (internal/sharing) —
// the paper's "classify different sharing patterns" ongoing-work item.
// Callbacks run on request-serving goroutines and must be fast and
// thread-safe.
type AccessObserver func(client uint32, file blockio.FileID, block int64, write bool)

type holderSet map[uint32]struct{}

// New returns an iod with the given index in the cluster's iod list,
// backed by the in-memory storage backend. network is used to dial client
// invalidation listeners; it may be nil when sync-writes are not used.
// reg may be nil.
func New(id int, blockSize int, network transport.Network, reg *metrics.Registry) *Server {
	return NewWithBackend(id, blockSize, network, reg, mem.New())
}

// NewWithBackend returns an iod serving strip data from the given
// storage backend. The caller owns the backend's lifecycle: iod.Close
// does not close it, so a crashed-and-restarted daemon can reopen the
// same on-disk state.
func NewWithBackend(id int, blockSize int, network transport.Network, reg *metrics.Registry, store storage.Backend) *Server {
	if blockSize <= 0 {
		blockSize = blockio.DefaultBlockSize
	}
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	return &Server{
		id:        id,
		blockSize: blockSize,
		store:     store,
		reg:       reg,
		network:   network,
		clients:   make(map[uint32]string),
		inval:     make(map[uint32]*rpc.Client),
		dir:       make(map[blockio.BlockKey]holderSet),
	}
}

// ID returns the daemon's index in the cluster iod list.
func (s *Server) ID() int { return s.id }

// Store exposes the daemon's backing storage backend (tests and the
// simulator seed data through it).
func (s *Server) Store() storage.Backend { return s.store }

// ServeData accepts data-port connections until the listener closes.
func (s *Server) ServeData(l transport.Listener) error { return s.serve(l, s.handleData) }

// ServeFlush accepts flush-port connections until the listener closes.
// This is the server half of the flusher protocol.
func (s *Server) ServeFlush(l transport.Listener) error { return s.serve(l, s.handleFlush) }

// serve runs one rpc.Server over the listener. Tagged clients (the cache
// modules and libpvfs) get concurrent out-of-order service; untagged
// legacy clients are served FIFO. Read buffers return to the pool once
// each response hits the wire.
func (s *Server) serve(l transport.Listener, handler func(wire.Message) wire.Message) error {
	srv := rpc.NewServer(rpc.HandlerFunc(handler), rpc.ServerConfig{
		AfterWrite: s.recycleReadBuf,
	})
	s.srvMu.Lock()
	s.servers = append(s.servers, srv)
	s.srvMu.Unlock()
	return srv.Serve(l)
}

// recycleReadBuf returns a written read response's buffer to the pool.
// Vectored responses carry all their extents in one backing buffer, so
// they recycle exactly like plain reads.
func (s *Server) recycleReadBuf(resp wire.Message) {
	switch rr := resp.(type) {
	case *wire.ReadResp:
		s.readBufs.Put(rr.Data)
	case *wire.ReadBlocksResp:
		s.readBufs.Put(rr.Data)
	}
}

// Close drops every open connection; in-flight requests fail at the
// clients, which redial. Listeners belong to the caller.
func (s *Server) Close() error {
	s.srvMu.Lock()
	servers := s.servers
	s.servers = nil
	s.srvMu.Unlock()
	for _, srv := range servers {
		srv.Close()
	}
	s.mu.Lock()
	inval := s.inval
	s.inval = make(map[uint32]*rpc.Client)
	s.mu.Unlock()
	for _, c := range inval {
		c.Close()
	}
	return nil
}

// handleData dispatches one data-port request.
func (s *Server) handleData(msg wire.Message) wire.Message {
	switch m := msg.(type) {
	case *wire.Read:
		return s.read(m)
	case *wire.ReadBlocks:
		return s.readBlocks(m)
	case *wire.Write:
		return s.write(m)
	case *wire.SyncWrite:
		return s.syncWrite(m)
	case *wire.Register:
		s.RegisterClient(m.Client, m.Addr)
		return &wire.RegisterAck{Status: wire.StatusOK}
	default:
		return nil
	}
}

// handleFlush dispatches one flush-port request.
func (s *Server) handleFlush(msg wire.Message) wire.Message {
	m, ok := msg.(*wire.Flush)
	if !ok {
		return nil
	}
	return s.flush(m)
}

// SetObserver installs the access observer. Call before serving traffic.
func (s *Server) SetObserver(obs AccessObserver) { s.observer = obs }

// observe reports every block of a range to the observer, if any.
func (s *Server) observe(client uint32, file blockio.FileID, off, length int64, write bool) {
	if s.observer == nil || client == 0 {
		return
	}
	first, count := blockio.BlockRange(off, length, s.blockSize)
	for i := int64(0); i < count; i++ {
		s.observer(client, file, first+i, write)
	}
}

// RegisterClient records the invalidation address for a client cache.
// Re-registering replaces the address and drops any cached connection.
func (s *Server) RegisterClient(client uint32, addr string) {
	s.mu.Lock()
	old := s.inval[client]
	s.clients[client] = addr
	delete(s.inval, client)
	s.mu.Unlock()
	if old != nil {
		old.Close()
	}
}

func (s *Server) read(m *wire.Read) *wire.ReadResp {
	// The wire length field is attacker-controlled: reject anything that
	// could not be framed back in a response rather than allocating it.
	if m.Length < 0 || m.Length > wire.MaxMessageSize/2 {
		return &wire.ReadResp{Status: wire.StatusBadRequest}
	}
	buf := s.readBufs.Get(int(m.Length))
	n, err := s.store.ReadAt(m.File, m.Offset, buf)
	if err != nil {
		s.readBufs.Put(buf)
		s.reg.Counter("iod.io_errors").Inc()
		return &wire.ReadResp{Status: wire.StatusFor(err)}
	}
	s.reg.Counter("iod.reads").Inc()
	s.reg.Counter("iod.read_bytes").Add(int64(n))
	if m.Track && m.Client != 0 {
		s.trackHolders(m.Client, m.File, m.Offset, m.Length)
	}
	s.observe(m.Client, m.File, m.Offset, m.Length, false)
	return &wire.ReadResp{Status: wire.StatusOK, Data: buf[:n]}
}

// readBlocks serves a vectored read: every requested extent of the
// connection's request in one pass over the store, packed densely into a
// single pooled buffer (recycled by recycleReadBuf once the response has
// hit the wire). Extent lengths are attacker-controlled, so each one and
// their sum are bounded before any allocation.
func (s *Server) readBlocks(m *wire.ReadBlocks) *wire.ReadBlocksResp {
	total, ok := wire.ValidateExtents(m.Exts)
	if !ok {
		return &wire.ReadBlocksResp{Status: wire.StatusBadRequest}
	}
	buf := s.readBufs.Get(int(total))
	lens := make([]uint32, len(m.Exts))
	pos := 0
	for i, e := range m.Exts {
		n, err := s.store.ReadAt(m.File, e.Offset, buf[pos:pos+int(e.Length)])
		if err != nil {
			s.readBufs.Put(buf)
			s.reg.Counter("iod.io_errors").Inc()
			return &wire.ReadBlocksResp{Status: wire.StatusFor(err)}
		}
		lens[i] = uint32(n)
		pos += n
		s.reg.Counter("iod.read_bytes").Add(int64(n))
		if m.Track && m.Client != 0 {
			s.trackHolders(m.Client, m.File, e.Offset, e.Length)
		}
		s.observe(m.Client, m.File, e.Offset, e.Length, false)
	}
	s.reg.Counter("iod.reads").Inc()
	s.reg.Counter("iod.vector_reads").Inc()
	s.reg.Counter("iod.vector_extents").Add(int64(len(m.Exts)))
	return &wire.ReadBlocksResp{Status: wire.StatusOK, Lens: lens, Data: buf[:pos]}
}

func (s *Server) write(m *wire.Write) *wire.WriteAck {
	// The ack is the durability promise: a backend failure must surface as
	// a non-OK status, never as an OK for bytes that were not stored (the
	// seed's silent-data-loss bug — simdisk could not fail, so no error
	// path existed).
	if err := s.store.WriteAt(m.File, m.Offset, m.Data); err != nil {
		s.reg.Counter("iod.io_errors").Inc()
		return &wire.WriteAck{Status: wire.StatusFor(err)}
	}
	s.reg.Counter("iod.writes").Inc()
	s.reg.Counter("iod.write_bytes").Add(int64(len(m.Data)))
	s.observe(m.Client, m.File, m.Offset, int64(len(m.Data)), true)
	return &wire.WriteAck{Status: wire.StatusOK}
}

// flush applies one Flush frame. Each FlushBlock is a contiguous dirty
// run that may span several cache blocks (the client flusher coalesces
// adjacent dirty blocks before framing), written with a single store
// call; the coherence directory records the flusher as a holder of every
// covered block — the flushed blocks stay resident (clean) in its cache.
//
// Concurrency: the pipelined write-behind engine keeps several Flush
// frames from one client in flight concurrently, and rpc.Server serves
// them on parallel goroutines. Within one window that is safe: the runs
// are disjoint (the buffer manager's in-flight mark prevents a block
// from being taken twice), simdisk.Store serializes per-file writes
// internally, and the directory update takes s.mu. Delivery is
// at-least-once — a frame whose ack is lost is re-sent after its blocks
// re-queue — and re-applying a frame is idempotent. The retry boundary
// is where a residual ordering race lives (inherited from the seed's
// serial retry loop, not introduced by the window): a frame whose
// connection died after delivery can still be executing here when the
// retried frame carrying newer bytes lands, and nothing orders the two
// stores. Closing that hole needs per-block generations on the wire so
// stale frames can be rejected; until then the client's backoff merely
// narrows the window.
func (s *Server) flush(m *wire.Flush) *wire.FlushAck {
	bs := int64(s.blockSize)
	blocks := int64(0)
	for _, blk := range m.Blocks {
		off := blk.Index*bs + int64(blk.Off)
		if err := s.store.WriteAt(m.File, off, blk.Data); err != nil {
			// Stop at the first failed run and fail the whole frame: the
			// client re-queues every block it carried (FlushFailed) and
			// re-sends after backoff, and re-applying the runs that did land
			// is idempotent. Acking here would silently lose the bytes.
			s.reg.Counter("iod.io_errors").Inc()
			return &wire.FlushAck{Status: wire.StatusFor(err)}
		}
		first, count := blockio.BlockRange(off, int64(len(blk.Data)), s.blockSize)
		blocks += count
		for i := int64(0); i < count; i++ {
			if m.Client != 0 {
				s.addHolder(m.Client, blockio.BlockKey{File: m.File, Index: first + i})
			}
			if s.observer != nil && m.Client != 0 {
				s.observer(m.Client, m.File, first+i, true)
			}
		}
	}
	s.reg.Counter("iod.flushes").Inc()
	s.reg.Counter("iod.flush_blocks").Add(blocks)
	s.reg.Counter("iod.flush_runs").Add(int64(len(m.Blocks)))
	return &wire.FlushAck{Status: wire.StatusOK}
}

// syncWrite performs the paper's coherent write: persist, then invalidate
// every other cache holding any touched block, then acknowledge.
func (s *Server) syncWrite(m *wire.SyncWrite) *wire.SyncWriteAck {
	if err := s.store.WriteAt(m.File, m.Offset, m.Data); err != nil {
		// Fail before touching the directory: no invalidations go out for
		// bytes that were never persisted.
		s.reg.Counter("iod.io_errors").Inc()
		return &wire.SyncWriteAck{Status: wire.StatusFor(err)}
	}
	s.reg.Counter("iod.sync_writes").Inc()
	s.observe(m.Client, m.File, m.Offset, int64(len(m.Data)), true)

	victims := s.collectVictims(m.Client, m.File, m.Offset, int64(len(m.Data)))
	invalidated := uint32(0)
	for client, indices := range victims {
		if err := s.sendInvalidate(client, m.File, indices); err == nil {
			invalidated++
		}
		// Whether or not delivery succeeded, the directory entry is gone:
		// an unreachable cache is treated as departed.
	}
	// The writer keeps a current copy.
	if m.Client != 0 {
		s.trackHolders(m.Client, m.File, m.Offset, int64(len(m.Data)))
	}
	return &wire.SyncWriteAck{Status: wire.StatusOK, Invalidated: invalidated}
}

// StartDrain puts the daemon in drain mode: it keeps serving but stops
// recording new coherence-directory holders. Call it before flushing the
// clients so the directory cannot grow behind the drain's back.
func (s *Server) StartDrain() { s.draining.Store(true) }

// Draining reports whether StartDrain has been called.
func (s *Server) Draining() bool { return s.draining.Load() }

// HolderBlocks returns how many blocks the coherence directory currently
// records holders for.
func (s *Server) HolderBlocks() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.dir)
}

// DrainHolders hands off the remaining coherence state: every directory
// entry is invalidated at its holders and dropped, leaving the directory
// empty so the daemon can exit without orphaning cached copies. It
// returns the number of blocks handed off; delivery errors to individual
// clients (already-gone nodes) do not abort the sweep — their entries
// are dropped regardless, exactly as a sync-write's invalidation would.
func (s *Server) DrainHolders() (int, error) {
	s.draining.Store(true)
	s.mu.Lock()
	dir := s.dir
	s.dir = make(map[blockio.BlockKey]holderSet)
	s.mu.Unlock()

	victims := make(map[uint32]map[blockio.FileID][]int64)
	for key, hs := range dir {
		for client := range hs {
			files := victims[client]
			if files == nil {
				files = make(map[blockio.FileID][]int64)
				victims[client] = files
			}
			files[key.File] = append(files[key.File], key.Index)
		}
	}
	var firstErr error
	for client, files := range victims {
		for file, indices := range files {
			if err := s.sendInvalidateMode(client, file, indices, true); err != nil && firstErr == nil {
				firstErr = err
			}
		}
	}
	s.reg.Counter("membership.drain_handoffs").Add(int64(len(dir)))
	return len(dir), firstErr
}

// trackHolders registers client as a holder of every block in the range.
func (s *Server) trackHolders(client uint32, file blockio.FileID, off, length int64) {
	if s.draining.Load() {
		return
	}
	first, count := blockio.BlockRange(off, length, s.blockSize)
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := int64(0); i < count; i++ {
		key := blockio.BlockKey{File: file, Index: first + i}
		hs := s.dir[key]
		if hs == nil {
			hs = make(holderSet)
			s.dir[key] = hs
		}
		hs[client] = struct{}{}
	}
}

func (s *Server) addHolder(client uint32, key blockio.BlockKey) {
	if s.draining.Load() {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	hs := s.dir[key]
	if hs == nil {
		hs = make(holderSet)
		s.dir[key] = hs
	}
	hs[client] = struct{}{}
}

// collectVictims removes every holder other than writer from the directory
// entries covering the range and returns them grouped by client.
func (s *Server) collectVictims(writer uint32, file blockio.FileID, off, length int64) map[uint32][]int64 {
	first, count := blockio.BlockRange(off, length, s.blockSize)
	victims := make(map[uint32][]int64)
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := int64(0); i < count; i++ {
		key := blockio.BlockKey{File: file, Index: first + i}
		for client := range s.dir[key] {
			if client == writer {
				continue
			}
			victims[client] = append(victims[client], key.Index)
			delete(s.dir[key], client)
		}
		if len(s.dir[key]) == 0 {
			delete(s.dir, key)
		}
	}
	return victims
}

// Holders returns the clients the directory currently records for a block
// (test hook).
func (s *Server) Holders(key blockio.BlockKey) []uint32 {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []uint32
	for c := range s.dir[key] {
		out = append(out, c)
	}
	return out
}

// sendInvalidate delivers one Invalidate round trip to a client cache
// through a pooled rpc client (dialed lazily, redialed after failures).
func (s *Server) sendInvalidate(client uint32, file blockio.FileID, indices []int64) error {
	return s.sendInvalidateMode(client, file, indices, false)
}

// sendInvalidateMode is sendInvalidate with the drain flag exposed: a
// drain-marked invalidation lets the client keep blocks it has dirtied.
func (s *Server) sendInvalidateMode(client uint32, file blockio.FileID, indices []int64, drain bool) error {
	rc, err := s.invalClientFor(client)
	if err != nil {
		return err
	}
	res := rc.Call(&wire.Invalidate{File: file, Indices: indices, Drain: drain})
	if res.Err != nil {
		return res.Err
	}
	if _, ok := res.Msg.(*wire.InvalidAck); !ok {
		return fmt.Errorf("iod %d: unexpected invalidation reply %v", s.id, res.Msg.WireType())
	}
	s.reg.Counter("iod.invalidations").Inc()
	return nil
}

func (s *Server) invalClientFor(client uint32) (*rpc.Client, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	addr, ok := s.clients[client]
	if !ok {
		return nil, fmt.Errorf("iod %d: client %d not registered", s.id, client)
	}
	rc := s.inval[client]
	if rc == nil {
		if s.network == nil {
			return nil, fmt.Errorf("iod %d: no network to reach client %d", s.id, client)
		}
		// Invalidations are one serial round trip per victim, so the
		// untagged compat mode costs nothing and keeps legacy
		// invalidation listeners reachable.
		rc = rpc.NewClient(rpc.ClientConfig{Network: s.network, Addr: addr, Conns: 1, Untagged: true})
		s.inval[client] = rc
	}
	return rc, nil
}
