package iod

import (
	"bytes"
	"errors"
	"testing"

	"pvfscache/internal/metrics"
	"pvfscache/internal/storage"
	"pvfscache/internal/storage/mem"
	"pvfscache/internal/transport"
	"pvfscache/internal/wire"
)

// faultyDaemon starts an iod whose backend can be switched to fail, for
// driving the StatusIOError ack paths the seed never had.
func faultyDaemon(t *testing.T) (*storage.Faulty, transport.Network) {
	t.Helper()
	net := transport.NewMem()
	fb := storage.NewFaulty(mem.New())
	s := NewWithBackend(0, 4096, net, metrics.NewRegistry(), fb)
	dl, err := net.Listen("iod-data")
	if err != nil {
		t.Fatal(err)
	}
	fl, err := net.Listen("iod-flush")
	if err != nil {
		t.Fatal(err)
	}
	go s.ServeData(dl)
	go s.ServeFlush(fl)
	t.Cleanup(func() { dl.Close(); fl.Close(); s.Close() })
	return fb, net
}

// TestBackendErrorsBecomeIOErrorAcks pins the silent-data-loss fix:
// when the backend fails a write, the ack must carry StatusIOError —
// never StatusOK for bytes that were not stored — and reads against a
// failing backend must not fabricate data. Healing the backend restores
// OK service on the same connections.
func TestBackendErrorsBecomeIOErrorAcks(t *testing.T) {
	fb, net := faultyDaemon(t)
	dc, err := net.Dial("iod-data")
	if err != nil {
		t.Fatal(err)
	}
	defer dc.Close()
	fc, err := net.Dial("iod-flush")
	if err != nil {
		t.Fatal(err)
	}
	defer fc.Close()

	payload := bytes.Repeat([]byte{7}, 512)
	fb.SetErr(errors.New("disk on fire"))

	wa := call(t, dc, &wire.Write{Client: 1, File: 3, Offset: 0, Data: payload}).(*wire.WriteAck)
	if wa.Status != wire.StatusIOError {
		t.Fatalf("Write ack status = %v, want StatusIOError", wa.Status)
	}
	sa := call(t, dc, &wire.SyncWrite{Client: 1, File: 3, Offset: 0, Data: payload}).(*wire.SyncWriteAck)
	if sa.Status != wire.StatusIOError {
		t.Fatalf("SyncWrite ack status = %v, want StatusIOError", sa.Status)
	}
	if sa.Invalidated != 0 {
		t.Fatalf("failed sync-write invalidated %d caches", sa.Invalidated)
	}
	fa := call(t, fc, &wire.Flush{Client: 1, File: 3, Blocks: []wire.FlushBlock{
		{Index: 0, Off: 0, Data: payload},
	}}).(*wire.FlushAck)
	if fa.Status != wire.StatusIOError {
		t.Fatalf("Flush ack status = %v, want StatusIOError", fa.Status)
	}
	rr := call(t, dc, &wire.Read{Client: 1, File: 3, Offset: 0, Length: 512}).(*wire.ReadResp)
	if rr.Status != wire.StatusIOError || len(rr.Data) != 0 {
		t.Fatalf("Read resp = %v with %d bytes, want StatusIOError and none", rr.Status, len(rr.Data))
	}
	br := call(t, dc, &wire.ReadBlocks{Client: 1, File: 3, Exts: []wire.ReadExtent{{Offset: 0, Length: 512}}}).(*wire.ReadBlocksResp)
	if br.Status != wire.StatusIOError {
		t.Fatalf("ReadBlocks resp = %v, want StatusIOError", br.Status)
	}

	// The wire layer maps the status to a retryable error for clients.
	if err := fa.Status.Err(); err == nil {
		t.Fatal("StatusIOError must map to a non-nil client error")
	}

	fb.SetErr(nil)
	wa = call(t, dc, &wire.Write{Client: 1, File: 3, Offset: 0, Data: payload}).(*wire.WriteAck)
	if wa.Status != wire.StatusOK {
		t.Fatalf("post-heal write status = %v", wa.Status)
	}
	rr = call(t, dc, &wire.Read{Client: 1, File: 3, Offset: 0, Length: 512}).(*wire.ReadResp)
	if rr.Status != wire.StatusOK || !bytes.Equal(rr.Data, payload) {
		t.Fatalf("post-heal read: %v, %d bytes", rr.Status, len(rr.Data))
	}
}

// TestFlushPartialFailureFailsWholeFrame: a multi-run flush frame whose
// backend fails partway must fail the frame (the client re-queues all
// of it; re-applying the landed runs is idempotent).
func TestFlushPartialFailureFailsWholeFrame(t *testing.T) {
	fb, net := faultyDaemon(t)
	fc, err := net.Dial("iod-flush")
	if err != nil {
		t.Fatal(err)
	}
	defer fc.Close()

	// Healthy first, then broken: the frame below writes run 0 fine and
	// trips on run 1 only if the error lands between — instead, break it
	// up front so run 0 itself fails; either way the ack must be non-OK.
	fb.SetErr(errors.New("enospc"))
	fa := call(t, fc, &wire.Flush{Client: 1, File: 5, Blocks: []wire.FlushBlock{
		{Index: 0, Off: 0, Data: bytes.Repeat([]byte{1}, 4096)},
		{Index: 1, Off: 0, Data: bytes.Repeat([]byte{2}, 4096)},
	}}).(*wire.FlushAck)
	if fa.Status == wire.StatusOK {
		t.Fatal("flush frame acked OK despite backend failure")
	}

	// Retry after heal: idempotent re-apply, everything lands.
	fb.SetErr(nil)
	fa = call(t, fc, &wire.Flush{Client: 1, File: 5, Blocks: []wire.FlushBlock{
		{Index: 0, Off: 0, Data: bytes.Repeat([]byte{1}, 4096)},
		{Index: 1, Off: 0, Data: bytes.Repeat([]byte{2}, 4096)},
	}}).(*wire.FlushAck)
	if fa.Status != wire.StatusOK {
		t.Fatalf("retried flush status = %v", fa.Status)
	}
}
