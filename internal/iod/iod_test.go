package iod

import (
	"bytes"
	"testing"

	"pvfscache/internal/blockio"
	"pvfscache/internal/metrics"
	"pvfscache/internal/transport"
	"pvfscache/internal/wire"
)

// testDaemon starts an iod with data and flush listeners on a fresh
// in-memory network and returns a dialer helper.
func testDaemon(t *testing.T) (*Server, transport.Network, string, string) {
	t.Helper()
	net := transport.NewMem()
	s := New(0, 4096, net, metrics.NewRegistry())
	dl, err := net.Listen("iod-data")
	if err != nil {
		t.Fatal(err)
	}
	fl, err := net.Listen("iod-flush")
	if err != nil {
		t.Fatal(err)
	}
	go s.ServeData(dl)
	go s.ServeFlush(fl)
	t.Cleanup(func() { dl.Close(); fl.Close() })
	return s, net, "iod-data", "iod-flush"
}

func call(t *testing.T, conn transport.Conn, req wire.Message) wire.Message {
	t.Helper()
	if err := wire.WriteMessage(conn, req); err != nil {
		t.Fatal(err)
	}
	resp, err := wire.ReadMessage(conn)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func TestWriteThenRead(t *testing.T) {
	_, net, data, _ := testDaemon(t)
	conn, err := net.Dial(data)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	payload := bytes.Repeat([]byte{0x42}, 1000)
	wa := call(t, conn, &wire.Write{Client: 1, File: 7, Offset: 500, Data: payload}).(*wire.WriteAck)
	if wa.Status != wire.StatusOK {
		t.Fatalf("write status %d", wa.Status)
	}
	rr := call(t, conn, &wire.Read{Client: 1, File: 7, Offset: 500, Length: 1000}).(*wire.ReadResp)
	if rr.Status != wire.StatusOK || !bytes.Equal(rr.Data, payload) {
		t.Fatalf("read: status=%d len=%d", rr.Status, len(rr.Data))
	}
}

func TestReadShortPastEnd(t *testing.T) {
	_, net, data, _ := testDaemon(t)
	conn, _ := net.Dial(data)
	defer conn.Close()
	call(t, conn, &wire.Write{File: 1, Offset: 0, Data: []byte("abc")})
	rr := call(t, conn, &wire.Read{File: 1, Offset: 0, Length: 100}).(*wire.ReadResp)
	if len(rr.Data) != 3 {
		t.Fatalf("short read returned %d bytes", len(rr.Data))
	}
	rr = call(t, conn, &wire.Read{File: 1, Offset: 50, Length: 10}).(*wire.ReadResp)
	if len(rr.Data) != 0 {
		t.Fatalf("read past end returned %d bytes", len(rr.Data))
	}
}

func TestReadRejectsBadLength(t *testing.T) {
	_, net, data, _ := testDaemon(t)
	conn, _ := net.Dial(data)
	defer conn.Close()
	rr := call(t, conn, &wire.Read{File: 1, Offset: 0, Length: -5}).(*wire.ReadResp)
	if rr.Status != wire.StatusBadRequest {
		t.Fatalf("negative length status %d", rr.Status)
	}
}

func TestVectoredReadServesAllExtents(t *testing.T) {
	_, net, data, _ := testDaemon(t)
	conn, _ := net.Dial(data)
	defer conn.Close()
	payload := bytes.Repeat([]byte{0xA5}, 16<<10)
	call(t, conn, &wire.Write{Client: 1, File: 3, Offset: 0, Data: payload})

	rr := call(t, conn, &wire.ReadBlocks{Client: 1, File: 3, Exts: []wire.ReadExtent{
		{Offset: 0, Length: 4096},
		{Offset: 8192, Length: 4096},
		{Offset: 15 << 10, Length: 4096}, // crosses end of data: short
		{Offset: 64 << 10, Length: 4096}, // entirely past end: empty
	}}).(*wire.ReadBlocksResp)
	if rr.Status != wire.StatusOK {
		t.Fatalf("status %d", rr.Status)
	}
	wantLens := []uint32{4096, 4096, 1 << 10, 0}
	if len(rr.Lens) != len(wantLens) {
		t.Fatalf("lens = %v", rr.Lens)
	}
	pos := 0
	for i, want := range wantLens {
		if rr.Lens[i] != want {
			t.Fatalf("extent %d served %d bytes, want %d", i, rr.Lens[i], want)
		}
		for _, b := range rr.Data[pos : pos+int(want)] {
			if b != 0xA5 {
				t.Fatalf("extent %d data corrupt", i)
			}
		}
		pos += int(want)
	}
	if pos != len(rr.Data) {
		t.Fatalf("data has %d trailing bytes", len(rr.Data)-pos)
	}
}

func TestVectoredReadRejectsHostileExtents(t *testing.T) {
	_, net, data, _ := testDaemon(t)
	conn, _ := net.Dial(data)
	defer conn.Close()
	for _, exts := range [][]wire.ReadExtent{
		{{Offset: 0, Length: -1}},
		{{Offset: -1, Length: 4096}},
		{{Offset: 0, Length: wire.MaxMessageSize}},
		{{Offset: 0, Length: wire.MaxMessageSize / 2}, {Offset: 0, Length: wire.MaxMessageSize / 2}},
	} {
		rr := call(t, conn, &wire.ReadBlocks{File: 1, Exts: exts}).(*wire.ReadBlocksResp)
		if rr.Status != wire.StatusBadRequest {
			t.Fatalf("extents %v: status %d, want BadRequest", exts, rr.Status)
		}
	}
}

func TestVectoredReadTracksHolders(t *testing.T) {
	s, net, data, _ := testDaemon(t)
	conn, _ := net.Dial(data)
	defer conn.Close()
	call(t, conn, &wire.Write{Client: 1, File: 5, Offset: 0, Data: make([]byte, 12<<10)})
	call(t, conn, &wire.ReadBlocks{Client: 9, File: 5, Track: true, Exts: []wire.ReadExtent{
		{Offset: 0, Length: 4096},
		{Offset: 8192, Length: 4096},
	}})
	for _, idx := range []int64{0, 2} {
		if h := s.Holders(blockio.BlockKey{File: 5, Index: idx}); len(h) != 1 || h[0] != 9 {
			t.Fatalf("block %d holders = %v", idx, h)
		}
	}
	if h := s.Holders(blockio.BlockKey{File: 5, Index: 1}); len(h) != 0 {
		t.Fatalf("untouched block holders = %v", h)
	}
}

func TestFlushPortWritesBlocks(t *testing.T) {
	s, net, _, flush := testDaemon(t)
	conn, _ := net.Dial(flush)
	defer conn.Close()

	fa := call(t, conn, &wire.Flush{
		Client: 3,
		File:   9,
		Blocks: []wire.FlushBlock{
			{Index: 0, Off: 0, Data: bytes.Repeat([]byte{1}, 4096)},
			{Index: 2, Off: 100, Data: []byte("partial")},
		},
	}).(*wire.FlushAck)
	if fa.Status != wire.StatusOK {
		t.Fatalf("flush status %d", fa.Status)
	}
	buf := make([]byte, 4096)
	if n, _ := s.Store().ReadAt(9, 0, buf); n != 4096 || buf[0] != 1 {
		t.Fatalf("block 0 not stored: n=%d", n)
	}
	got := make([]byte, 7)
	s.Store().ReadAt(9, 2*4096+100, got)
	if string(got) != "partial" {
		t.Fatalf("partial flush stored %q", got)
	}
	// Flushed blocks register the client as a holder.
	holders := s.Holders(blockio.BlockKey{File: 9, Index: 0})
	if len(holders) != 1 || holders[0] != 3 {
		t.Fatalf("holders = %v", holders)
	}
}

func TestFlushPortRejectsDataMessages(t *testing.T) {
	_, net, _, flush := testDaemon(t)
	conn, _ := net.Dial(flush)
	defer conn.Close()
	if err := wire.WriteMessage(conn, &wire.Read{File: 1, Length: 4}); err != nil {
		t.Fatal(err)
	}
	if _, err := wire.ReadMessage(conn); err == nil {
		t.Fatal("flush port served a data message")
	}
}

func TestTrackOnlyWhenRequested(t *testing.T) {
	s, net, data, _ := testDaemon(t)
	conn, _ := net.Dial(data)
	defer conn.Close()
	call(t, conn, &wire.Write{File: 4, Offset: 0, Data: make([]byte, 8192)})

	call(t, conn, &wire.Read{Client: 5, File: 4, Offset: 0, Length: 4096, Track: false})
	if h := s.Holders(blockio.BlockKey{File: 4, Index: 0}); len(h) != 0 {
		t.Fatalf("untracked read registered holders %v", h)
	}
	call(t, conn, &wire.Read{Client: 5, File: 4, Offset: 0, Length: 8192, Track: true})
	if h := s.Holders(blockio.BlockKey{File: 4, Index: 1}); len(h) != 1 || h[0] != 5 {
		t.Fatalf("tracked read holders %v", h)
	}
	// Anonymous clients (id 0) are never tracked.
	call(t, conn, &wire.Read{Client: 0, File: 4, Offset: 0, Length: 4096, Track: true})
	for _, h := range s.Holders(blockio.BlockKey{File: 4, Index: 0}) {
		if h == 0 {
			t.Fatal("anonymous client tracked")
		}
	}
}

// invalListener runs a minimal client-side invalidation handler and
// records what it was asked to drop.
func invalListener(t *testing.T, net transport.Network, addr string) *[]int64 {
	t.Helper()
	l, err := net.Listen(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	var got []int64
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			go func() {
				defer conn.Close()
				for {
					msg, err := wire.ReadMessage(conn)
					if err != nil {
						return
					}
					inv, ok := msg.(*wire.Invalidate)
					if !ok {
						return
					}
					got = append(got, inv.Indices...)
					if err := wire.WriteMessage(conn, &wire.InvalidAck{Status: wire.StatusOK}); err != nil {
						return
					}
				}
			}()
		}
	}()
	return &got
}

func TestSyncWriteInvalidatesOtherHolders(t *testing.T) {
	s, net, data, _ := testDaemon(t)
	dropped := invalListener(t, net, "client2-inval")
	s.RegisterClient(2, "client2-inval")

	conn, _ := net.Dial(data)
	defer conn.Close()
	call(t, conn, &wire.Write{File: 6, Offset: 0, Data: make([]byte, 8192)})
	// Client 2 reads blocks 0 and 1 with tracking.
	call(t, conn, &wire.Read{Client: 2, File: 6, Offset: 0, Length: 8192, Track: true})

	// Client 1 sync-writes block 0: client 2 must be invalidated.
	ack := call(t, conn, &wire.SyncWrite{Client: 1, File: 6, Offset: 0, Data: make([]byte, 4096)}).(*wire.SyncWriteAck)
	if ack.Status != wire.StatusOK {
		t.Fatalf("sync write status %d", ack.Status)
	}
	if ack.Invalidated != 1 {
		t.Fatalf("invalidated %d caches, want 1", ack.Invalidated)
	}
	if len(*dropped) != 1 || (*dropped)[0] != 0 {
		t.Fatalf("client 2 asked to drop %v, want [0]", *dropped)
	}
	// Block 1 was untouched: client 2 still holds it.
	if h := s.Holders(blockio.BlockKey{File: 6, Index: 1}); len(h) != 1 || h[0] != 2 {
		t.Fatalf("block 1 holders %v", h)
	}
	// Block 0: the writer is now the holder.
	h := s.Holders(blockio.BlockKey{File: 6, Index: 0})
	if len(h) != 1 || h[0] != 1 {
		t.Fatalf("block 0 holders %v", h)
	}
}

func TestSyncWriteByHolderDoesNotSelfInvalidate(t *testing.T) {
	s, net, data, _ := testDaemon(t)
	dropped := invalListener(t, net, "client7-inval")
	s.RegisterClient(7, "client7-inval")

	conn, _ := net.Dial(data)
	defer conn.Close()
	call(t, conn, &wire.Write{File: 2, Offset: 0, Data: make([]byte, 4096)})
	call(t, conn, &wire.Read{Client: 7, File: 2, Offset: 0, Length: 4096, Track: true})
	ack := call(t, conn, &wire.SyncWrite{Client: 7, File: 2, Offset: 0, Data: make([]byte, 4096)}).(*wire.SyncWriteAck)
	if ack.Invalidated != 0 {
		t.Fatalf("writer invalidated itself: %d", ack.Invalidated)
	}
	if len(*dropped) != 0 {
		t.Fatalf("writer received invalidations %v", *dropped)
	}
}

func TestSyncWriteUnreachableClientDegradesGracefully(t *testing.T) {
	s, net, data, _ := testDaemon(t)
	s.RegisterClient(9, "nowhere") // never listening

	conn, _ := net.Dial(data)
	defer conn.Close()
	call(t, conn, &wire.Read{Client: 9, File: 3, Offset: 0, Length: 4096, Track: true})
	ack := call(t, conn, &wire.SyncWrite{Client: 1, File: 3, Offset: 0, Data: make([]byte, 4096)}).(*wire.SyncWriteAck)
	if ack.Status != wire.StatusOK {
		t.Fatalf("sync write should succeed despite unreachable cache: %d", ack.Status)
	}
	if ack.Invalidated != 0 {
		t.Fatalf("invalidated = %d", ack.Invalidated)
	}
	// The departed cache is dropped from the directory.
	if h := s.Holders(blockio.BlockKey{File: 3, Index: 0}); len(h) != 1 || h[0] != 1 {
		t.Fatalf("holders = %v", h)
	}
}

func TestRegisterClientReplacesAddress(t *testing.T) {
	s, net, data, _ := testDaemon(t)
	// Register at a dead address first, then re-register at a live one.
	s.RegisterClient(4, "dead")
	dropped := invalListener(t, net, "live")
	s.RegisterClient(4, "live")

	conn, _ := net.Dial(data)
	defer conn.Close()
	call(t, conn, &wire.Read{Client: 4, File: 1, Offset: 0, Length: 4096, Track: true})
	ack := call(t, conn, &wire.SyncWrite{Client: 1, File: 1, Offset: 0, Data: make([]byte, 4096)}).(*wire.SyncWriteAck)
	if ack.Invalidated != 1 {
		t.Fatalf("invalidated = %d", ack.Invalidated)
	}
	if len(*dropped) != 1 {
		t.Fatalf("live listener got %v", *dropped)
	}
}

func TestDefaultBlockSizeApplied(t *testing.T) {
	s := New(0, 0, nil, nil)
	if s.blockSize != blockio.DefaultBlockSize {
		t.Errorf("block size = %d", s.blockSize)
	}
}

func TestRegisterOverWire(t *testing.T) {
	s, net, data, _ := testDaemon(t)
	conn, _ := net.Dial(data)
	defer conn.Close()
	ra := call(t, conn, &wire.Register{Client: 11, Addr: "somewhere"}).(*wire.RegisterAck)
	if ra.Status != wire.StatusOK {
		t.Fatalf("register status %d", ra.Status)
	}
	s.mu.Lock()
	addr := s.clients[11]
	s.mu.Unlock()
	if addr != "somewhere" {
		t.Fatalf("registered addr %q", addr)
	}
}
