// Package testseed derives the PRNG seed for randomized tests: a
// stable hash of the test's name, XORed with the optional CHAOS_SEED
// environment base. Plain `go test` is therefore repeatable run to run,
// while CI sets CHAOS_SEED per run to walk the whole randomized suite
// through fresh seeds over time. The seed is logged, so a failure is
// reproducible from its log line alone (CHAOS_SEED=<base> re-runs it).
package testseed

import (
	"hash/fnv"
	"os"
	"strconv"
	"testing"
)

// Base returns (and logs) the seed for the calling test.
func Base(t testing.TB) int64 {
	var base int64 = 1
	if env := os.Getenv("CHAOS_SEED"); env != "" {
		if v, err := strconv.ParseInt(env, 10, 64); err == nil {
			base = v
		}
	}
	h := fnv.New64a()
	h.Write([]byte(t.Name()))
	seed := (base ^ int64(h.Sum64())) & (1<<62 - 1)
	t.Logf("prng seed=%d (rotate with CHAOS_SEED=<base>)", seed)
	return seed
}
