// Package sharing classifies inter-application data-sharing patterns —
// the second item of the paper's ongoing work (§5): "classify different
// sharing patterns and develop different I/O optimizations for each type
// of pattern."
//
// A Tracker ingests block-level access events (which client touched which
// block, read or write) — fed from the iods' request streams or from a
// trace — and classifies every block, and by aggregation every file, into
// one of four patterns:
//
//	Private          one client only
//	ReadShared       several readers, no writer conflicts
//	ProducerConsumer one writer produced the data, other clients read it
//	                 afterwards (the analysis-cycle pipeline of Figure 1)
//	WriteShared      writes interleaved with other clients' accesses
//
// Each pattern maps to the optimization the paper sketches: read-shared
// data is worth caching and replicating aggressively, producer-consumer
// data is worth forwarding/prefetching to the consumer, and write-shared
// data needs sync-writes (coherence).
package sharing

import (
	"fmt"
	"sort"
	"sync"

	"pvfscache/internal/blockio"
)

// Pattern classifies how a block (or file) is shared.
type Pattern int

// Patterns, ordered by increasing coordination cost.
const (
	Unaccessed Pattern = iota
	Private
	ReadShared
	ProducerConsumer
	WriteShared
)

// String names the pattern.
func (p Pattern) String() string {
	switch p {
	case Unaccessed:
		return "unaccessed"
	case Private:
		return "private"
	case ReadShared:
		return "read-shared"
	case ProducerConsumer:
		return "producer-consumer"
	case WriteShared:
		return "write-shared"
	default:
		return fmt.Sprintf("Pattern(%d)", int(p))
	}
}

// Advice returns the optimization the paper's taxonomy suggests for the
// pattern.
func (p Pattern) Advice() string {
	switch p {
	case Private:
		return "cache without coherence; no cross-node traffic needed"
	case ReadShared:
		return "cache and replicate aggressively; consider the global cache"
	case ProducerConsumer:
		return "forward or prefetch producer output to consumer nodes"
	case WriteShared:
		return "use sync-writes; consider combining or serializing writers"
	default:
		return "no data"
	}
}

// Event is one block access.
type Event struct {
	Client uint32
	File   blockio.FileID
	Block  int64
	Write  bool
}

// blockState accumulates per-block evidence.
type blockState struct {
	readers     map[uint32]struct{}
	writers     map[uint32]struct{}
	firstWriter uint32
	// foreignRead is set once a client other than the writer read the
	// block; a write after that means interleaved write sharing rather
	// than produce-then-consume.
	foreignRead bool
	interleaved bool
}

// Tracker ingests events and classifies blocks. Safe for concurrent use.
type Tracker struct {
	mu     sync.Mutex
	blocks map[blockio.BlockKey]*blockState
}

// NewTracker returns an empty tracker.
func NewTracker() *Tracker {
	return &Tracker{blocks: make(map[blockio.BlockKey]*blockState)}
}

// Observe ingests one access event.
func (t *Tracker) Observe(ev Event) {
	key := blockio.BlockKey{File: ev.File, Index: ev.Block}
	t.mu.Lock()
	defer t.mu.Unlock()
	st := t.blocks[key]
	if st == nil {
		st = &blockState{
			readers: make(map[uint32]struct{}),
			writers: make(map[uint32]struct{}),
		}
		t.blocks[key] = st
	}
	if ev.Write {
		if len(st.writers) == 0 {
			st.firstWriter = ev.Client
		}
		st.writers[ev.Client] = struct{}{}
		if st.foreignRead {
			// Writing after another client consumed the data: the block
			// is actively write-shared, not a one-shot hand-off.
			st.interleaved = true
		}
	} else {
		st.readers[ev.Client] = struct{}{}
		if len(st.writers) > 0 && ev.Client != st.firstWriter {
			st.foreignRead = true
		}
	}
}

// classify derives the pattern from accumulated state.
func (st *blockState) classify() Pattern {
	clients := make(map[uint32]struct{}, len(st.readers)+len(st.writers))
	for c := range st.readers {
		clients[c] = struct{}{}
	}
	for c := range st.writers {
		clients[c] = struct{}{}
	}
	switch {
	case len(clients) == 0:
		return Unaccessed
	case len(clients) == 1:
		return Private
	case len(st.writers) == 0:
		return ReadShared
	case len(st.writers) == 1 && !st.interleaved:
		return ProducerConsumer
	default:
		return WriteShared
	}
}

// BlockPattern returns the pattern of one block.
func (t *Tracker) BlockPattern(key blockio.BlockKey) Pattern {
	t.mu.Lock()
	defer t.mu.Unlock()
	st := t.blocks[key]
	if st == nil {
		return Unaccessed
	}
	return st.classify()
}

// FileSummary aggregates a file's block patterns.
type FileSummary struct {
	File     blockio.FileID
	Blocks   int
	ByKind   map[Pattern]int
	Dominant Pattern
}

// String renders the summary for reports.
func (s FileSummary) String() string {
	return fmt.Sprintf("file %d: %d blocks, dominant %v (%s)",
		s.File, s.Blocks, s.Dominant, s.Dominant.Advice())
}

// Summarize classifies every observed file. Results are sorted by file ID.
func (t *Tracker) Summarize() []FileSummary {
	t.mu.Lock()
	defer t.mu.Unlock()
	byFile := make(map[blockio.FileID]*FileSummary)
	for key, st := range t.blocks {
		s := byFile[key.File]
		if s == nil {
			s = &FileSummary{File: key.File, ByKind: make(map[Pattern]int)}
			byFile[key.File] = s
		}
		s.Blocks++
		s.ByKind[st.classify()]++
	}
	out := make([]FileSummary, 0, len(byFile))
	for _, s := range byFile {
		s.Dominant = dominant(s.ByKind)
		out = append(out, *s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].File < out[j].File })
	return out
}

// dominant picks the pattern covering the most blocks; ties break toward
// the costlier (more conservative) pattern.
func dominant(byKind map[Pattern]int) Pattern {
	best, bestN := Unaccessed, -1
	for _, p := range []Pattern{Private, ReadShared, ProducerConsumer, WriteShared} {
		if n := byKind[p]; n > bestN || (n == bestN && p > best) {
			best, bestN = p, n
		}
	}
	if bestN <= 0 {
		return Unaccessed
	}
	return best
}

// Reset clears all accumulated state.
func (t *Tracker) Reset() {
	t.mu.Lock()
	t.blocks = make(map[blockio.BlockKey]*blockState)
	t.mu.Unlock()
}
