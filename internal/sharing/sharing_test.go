package sharing

import (
	"sync"
	"testing"

	"pvfscache/internal/blockio"
)

func key(f, b int) blockio.BlockKey {
	return blockio.BlockKey{File: blockio.FileID(f), Index: int64(b)}
}

func TestUnaccessed(t *testing.T) {
	tr := NewTracker()
	if got := tr.BlockPattern(key(1, 0)); got != Unaccessed {
		t.Errorf("pattern = %v", got)
	}
}

func TestPrivateReadAndWrite(t *testing.T) {
	tr := NewTracker()
	tr.Observe(Event{Client: 1, File: 1, Block: 0, Write: true})
	tr.Observe(Event{Client: 1, File: 1, Block: 0})
	tr.Observe(Event{Client: 1, File: 1, Block: 0, Write: true})
	if got := tr.BlockPattern(key(1, 0)); got != Private {
		t.Errorf("pattern = %v, want private", got)
	}
}

func TestReadShared(t *testing.T) {
	tr := NewTracker()
	tr.Observe(Event{Client: 1, File: 2, Block: 5})
	tr.Observe(Event{Client: 2, File: 2, Block: 5})
	tr.Observe(Event{Client: 3, File: 2, Block: 5})
	if got := tr.BlockPattern(key(2, 5)); got != ReadShared {
		t.Errorf("pattern = %v, want read-shared", got)
	}
}

func TestProducerConsumer(t *testing.T) {
	tr := NewTracker()
	// Client 1 writes, then clients 2 and 3 read — the Figure 1 pipeline.
	tr.Observe(Event{Client: 1, File: 3, Block: 0, Write: true})
	tr.Observe(Event{Client: 1, File: 3, Block: 0, Write: true})
	tr.Observe(Event{Client: 2, File: 3, Block: 0})
	tr.Observe(Event{Client: 3, File: 3, Block: 0})
	if got := tr.BlockPattern(key(3, 0)); got != ProducerConsumer {
		t.Errorf("pattern = %v, want producer-consumer", got)
	}
	// The producer may re-read its own output without demoting the
	// pattern.
	tr.Observe(Event{Client: 1, File: 3, Block: 0})
	if got := tr.BlockPattern(key(3, 0)); got != ProducerConsumer {
		t.Errorf("pattern after producer re-read = %v", got)
	}
}

func TestWriteAfterForeignReadIsWriteShared(t *testing.T) {
	tr := NewTracker()
	tr.Observe(Event{Client: 1, File: 4, Block: 0, Write: true})
	tr.Observe(Event{Client: 2, File: 4, Block: 0})
	// Producer writes again after the consumer read: interleaved.
	tr.Observe(Event{Client: 1, File: 4, Block: 0, Write: true})
	if got := tr.BlockPattern(key(4, 0)); got != WriteShared {
		t.Errorf("pattern = %v, want write-shared", got)
	}
}

func TestMultipleWritersAreWriteShared(t *testing.T) {
	tr := NewTracker()
	tr.Observe(Event{Client: 1, File: 5, Block: 0, Write: true})
	tr.Observe(Event{Client: 2, File: 5, Block: 0, Write: true})
	if got := tr.BlockPattern(key(5, 0)); got != WriteShared {
		t.Errorf("pattern = %v, want write-shared", got)
	}
}

func TestSummarizeDominantAndSorted(t *testing.T) {
	tr := NewTracker()
	// File 1: 3 read-shared blocks, 1 private.
	for b := 0; b < 3; b++ {
		tr.Observe(Event{Client: 1, File: 1, Block: int64(b)})
		tr.Observe(Event{Client: 2, File: 1, Block: int64(b)})
	}
	tr.Observe(Event{Client: 1, File: 1, Block: 99})
	// File 2: producer-consumer.
	tr.Observe(Event{Client: 1, File: 2, Block: 0, Write: true})
	tr.Observe(Event{Client: 2, File: 2, Block: 0})

	sums := tr.Summarize()
	if len(sums) != 2 {
		t.Fatalf("summaries = %d", len(sums))
	}
	if sums[0].File != 1 || sums[1].File != 2 {
		t.Fatal("summaries not sorted by file")
	}
	if sums[0].Dominant != ReadShared {
		t.Errorf("file 1 dominant = %v", sums[0].Dominant)
	}
	if sums[0].Blocks != 4 || sums[0].ByKind[Private] != 1 {
		t.Errorf("file 1 counts: %+v", sums[0])
	}
	if sums[1].Dominant != ProducerConsumer {
		t.Errorf("file 2 dominant = %v", sums[1].Dominant)
	}
	if sums[0].String() == "" || sums[1].String() == "" {
		t.Error("empty summary strings")
	}
}

func TestDominantTieBreaksConservative(t *testing.T) {
	byKind := map[Pattern]int{ReadShared: 2, WriteShared: 2}
	if got := dominant(byKind); got != WriteShared {
		t.Errorf("tie broke to %v, want write-shared", got)
	}
	if got := dominant(map[Pattern]int{}); got != Unaccessed {
		t.Errorf("empty dominant = %v", got)
	}
}

func TestPatternStringsAndAdvice(t *testing.T) {
	for _, p := range []Pattern{Unaccessed, Private, ReadShared, ProducerConsumer, WriteShared} {
		if p.String() == "" || p.Advice() == "" {
			t.Errorf("pattern %d has empty text", p)
		}
	}
	if Pattern(99).String() == "" {
		t.Error("unknown pattern renders empty")
	}
}

func TestReset(t *testing.T) {
	tr := NewTracker()
	tr.Observe(Event{Client: 1, File: 1, Block: 0})
	tr.Reset()
	if got := tr.BlockPattern(key(1, 0)); got != Unaccessed {
		t.Errorf("pattern after reset = %v", got)
	}
}

func TestConcurrentObserve(t *testing.T) {
	tr := NewTracker()
	var wg sync.WaitGroup
	for c := uint32(1); c <= 4; c++ {
		wg.Add(1)
		go func(c uint32) {
			defer wg.Done()
			for b := int64(0); b < 100; b++ {
				tr.Observe(Event{Client: c, File: 1, Block: b})
			}
		}(c)
	}
	wg.Wait()
	sums := tr.Summarize()
	if len(sums) != 1 || sums[0].Blocks != 100 || sums[0].Dominant != ReadShared {
		t.Fatalf("summary = %+v", sums)
	}
}
