// Package admin is the daemon observability endpoint: one small HTTP
// server per daemon (cache node, iod, or mgr) exposing the process's
// metrics registry in Prometheus text format, live pprof profiling, and
// the cache module's per-request trace mode. It is deliberately separate
// from the wire protocol — operators curl it, scrapers poll it, and none
// of its traffic shares a connection (or a failure domain) with data-path
// RPC. The server binds a real TCP socket even when the cluster itself
// runs on the in-memory test transport, which is what lets an e2e test
// scrape a live cluster exactly as a Prometheus agent would.
package admin

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"

	"pvfscache/internal/metrics"
)

// Tracer is the per-request trace seam (implemented by cachemod.Module):
// arm n traces, then drain what was captured.
type Tracer interface {
	ArmTrace(n int)
	TraceArmed() int
	TraceText() string
}

// Config assembles an admin endpoint.
type Config struct {
	// Registry is scraped by /metrics. Required.
	Registry *metrics.Registry
	// Collect, when non-nil, runs before each /metrics scrape so gauges
	// computed from live state (per-tenant dirty counts, stream health)
	// are fresh at scrape time rather than maintained on the hot path.
	Collect func(*metrics.Registry)
	// Tracer, when non-nil, backs the /trace endpoint.
	Tracer Tracer
}

// Handler returns the admin HTTP mux: /metrics, /healthz, /trace, and
// live /debug/pprof/*.
func Handler(cfg Config) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		if cfg.Collect != nil {
			cfg.Collect(cfg.Registry)
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := cfg.Registry.WritePrometheus(w); err != nil {
			// Headers are gone; all we can do is drop the connection.
			return
		}
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if cfg.Tracer == nil {
			http.Error(w, "trace mode unavailable: no cache module behind this endpoint", http.StatusNotFound)
			return
		}
		if arm := r.URL.Query().Get("arm"); arm != "" {
			n, err := strconv.Atoi(arm)
			if err != nil || n < 0 {
				http.Error(w, "arm must be a non-negative integer", http.StatusBadRequest)
				return
			}
			cfg.Tracer.ArmTrace(n)
			fmt.Fprintf(w, "armed %d traces\n", n)
			return
		}
		text := cfg.Tracer.TraceText()
		if text == "" {
			fmt.Fprintf(w, "no traces captured (%d still armed); arm with /trace?arm=N\n", cfg.Tracer.TraceArmed())
			return
		}
		fmt.Fprint(w, text)
	})
	// Live profiling: the stdlib pprof handlers, mounted on this mux
	// rather than http.DefaultServeMux so daemons sharing a process
	// (tests, the cluster harness) do not fight over global routes.
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Server is one live admin endpoint.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Start listens on addr (host:port; ":0" picks a free port) and serves the
// admin endpoint until Close.
func Start(addr string, cfg Config) (*Server, error) {
	if cfg.Registry == nil {
		return nil, fmt.Errorf("admin: Config.Registry is required")
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("admin: listen %s: %w", addr, err)
	}
	s := &Server{
		ln: ln,
		srv: &http.Server{
			Handler:           Handler(cfg),
			ReadHeaderTimeout: 5 * time.Second,
		},
	}
	go s.srv.Serve(ln)
	return s, nil
}

// Addr returns the bound address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the server; in-flight scrapes are cut off.
func (s *Server) Close() error { return s.srv.Close() }
