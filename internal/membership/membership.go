// Package membership is the cluster's elastic-membership core: who is in
// the global-cache ring, which epoch of the view a node believes in, and
// how blocks map onto members when the ring grows or shrinks.
//
// The seed fixed the ring at boot and mapped blocks with a bare
// `Mix % len(peers)` — adding or removing one node remapped nearly every
// block and a dead peer stayed a routing target forever. This package
// replaces that with:
//
//   - View: an epoch-stamped member list. The mgr owns the authoritative
//     view (Tracker) and bumps the epoch on every join/leave; nodes carry
//     the epoch on peer RPCs so disagreement is detected, not silently
//     acted on (wire.StatusStaleEpoch → refetch → retry).
//   - Ring: a consistent-hash ring with virtual nodes and N-way
//     replication. A membership change moves only ~1/n of the keyspace,
//     and every key has an ordered replica set so reads can fail over
//     when the primary is down.
//
// Hash-range discipline: blockio.BlockKey.Mix dedicates its low 32 bits
// to global-cache placement and its high 32 bits to the buffer manager's
// shard choice. The ring positions keys with the low half only, and the
// replica set is the clockwise successor walk from that point — so
// replica choice stays inside the home bit range and conditioning on a
// block's home (or any of its replicas) cannot collapse the shard spread.
package membership

import (
	"sort"
	"sync"

	"pvfscache/internal/blockio"
)

// Defaults for the ring geometry. 64 virtual nodes keep the per-member
// load share within a few percent of uniform at small cluster sizes;
// 2 replicas give every block one failover target without multiplying
// push traffic (pushes still go to the primary only).
const (
	DefaultVNodes   = 64
	DefaultReplicas = 2
)

// Member is one global-cache peer: a stable ID and the address of its
// peer-cache service.
type Member struct {
	ID   uint32
	Addr string
}

// View is an epoch-stamped snapshot of the membership. Members are sorted
// by ID. Epoch 0 means "no view yet"; every change bumps the epoch, so two
// nodes holding the same epoch hold the same member list.
type View struct {
	Epoch   uint64
	Members []Member
}

// Clone returns a deep copy (the member slice is private to the copy).
func (v View) Clone() View {
	out := View{Epoch: v.Epoch, Members: make([]Member, len(v.Members))}
	copy(out.Members, v.Members)
	return out
}

// IndexOf returns the position of the member with the given ID, or -1.
func (v View) IndexOf(id uint32) int {
	for i, m := range v.Members {
		if m.ID == id {
			return i
		}
	}
	return -1
}

// StaticView builds a fixed epoch-1 view from an ordered address list;
// member i gets ID i. It is the bootstrap shape for clusters that never
// change membership (unit tests, ablation benchmarks).
func StaticView(addrs []string) View {
	v := View{Epoch: 1, Members: make([]Member, len(addrs))}
	for i, a := range addrs {
		v.Members[i] = Member{ID: uint32(i), Addr: a}
	}
	return v
}

// mix64 is splitmix64's finalizer — the same avalanche the rest of the
// system hashes with (blockio.BlockKey.Mix, buffer shard routing).
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// pointHash places virtual node j of member id on the ring. Only the low
// 32 bits are used: ring positions live in the same bit range as the keys
// they serve (see the package comment's hash-range discipline).
func pointHash(id uint32, j int) uint32 {
	return uint32(mix64(uint64(id)*0x9E3779B97F4A7C15 ^ uint64(j)*0xD1B54A32D192ED03))
}

// ringPoint is one virtual node: a position and the member it belongs to.
type ringPoint struct {
	hash   uint32
	member int32 // index into view.Members
}

// Ring maps blocks onto a view's members by consistent hashing. A Ring is
// immutable once built — a new view builds a new Ring — so lookups need no
// lock and a node swaps rings atomically on epoch change.
type Ring struct {
	view     View
	replicas int
	points   []ringPoint // sorted by hash
}

// NewRing builds the ring for a view. vnodes and replicas fall back to the
// package defaults when non-positive; replicas is capped at the member
// count.
func NewRing(v View, vnodes, replicas int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	if replicas <= 0 {
		replicas = DefaultReplicas
	}
	r := &Ring{view: v.Clone(), replicas: replicas}
	r.points = make([]ringPoint, 0, len(v.Members)*vnodes)
	for mi, m := range r.view.Members {
		for j := 0; j < vnodes; j++ {
			r.points = append(r.points, ringPoint{hash: pointHash(m.ID, j), member: int32(mi)})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		a, b := r.points[i], r.points[j]
		if a.hash != b.hash {
			return a.hash < b.hash
		}
		// Ties break by member so the sort (and therefore the mapping) is
		// deterministic across nodes.
		return a.member < b.member
	})
	return r
}

// View returns the view the ring was built from.
func (r *Ring) View() View { return r.view }

// Epoch returns the view's epoch.
func (r *Ring) Epoch() uint64 { return r.view.Epoch }

// Members returns the view's member list. The caller must not mutate it.
func (r *Ring) Members() []Member { return r.view.Members }

// Replicas returns the number of replicas the ring was built with.
func (r *Ring) Replicas() int { return r.replicas }

// ReplicaSet appends the ordered replica set for key to dst and returns
// it: up to Replicas distinct member indices, primary first, chosen by the
// clockwise successor walk from the key's ring position. Empty when the
// ring has no members.
func (r *Ring) ReplicaSet(key blockio.BlockKey, dst []int) []int {
	dst = dst[:0]
	n := len(r.points)
	if n == 0 {
		return dst
	}
	h := uint32(key.Mix()) // low 32 bits: the home bit range
	// First point at or after h, wrapping.
	i := sort.Search(n, func(i int) bool { return r.points[i].hash >= h })
	if i == n {
		i = 0
	}
	for scanned := 0; scanned < n && len(dst) < r.replicas; scanned++ {
		mi := int(r.points[i].member)
		if !containsInt(dst, mi) {
			dst = append(dst, mi)
		}
		i++
		if i == n {
			i = 0
		}
	}
	return dst
}

// Primary returns the index of the key's primary member, or -1 on an
// empty ring.
func (r *Ring) Primary(key blockio.BlockKey) int {
	var buf [1]int
	set := r.replicaPrefix(key, buf[:0], 1)
	if len(set) == 0 {
		return -1
	}
	return set[0]
}

// replicaPrefix is ReplicaSet bounded to the first want members.
func (r *Ring) replicaPrefix(key blockio.BlockKey, dst []int, want int) []int {
	n := len(r.points)
	if n == 0 {
		return dst
	}
	h := uint32(key.Mix())
	i := sort.Search(n, func(i int) bool { return r.points[i].hash >= h })
	if i == n {
		i = 0
	}
	for scanned := 0; scanned < n && len(dst) < want; scanned++ {
		mi := int(r.points[i].member)
		if !containsInt(dst, mi) {
			dst = append(dst, mi)
		}
		i++
		if i == n {
			i = 0
		}
	}
	return dst
}

func containsInt(s []int, v int) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

// Tracker is the mgr-side membership authority: a member table and the
// epoch counter. Every effective change (a new member, a changed address,
// a departure) bumps the epoch; idempotent re-joins do not, so a node
// re-registering after a reconnect cannot churn the cluster's view.
type Tracker struct {
	mu      sync.Mutex
	epoch   uint64
	members map[uint32]string
	onBump  func(epoch uint64)
}

// NewTracker returns an empty tracker (epoch 0). onBump, if non-nil, is
// called after every epoch bump with the new epoch — the mgr wires it to
// the membership.epoch_bumps counter.
func NewTracker(onBump func(epoch uint64)) *Tracker {
	return &Tracker{members: make(map[uint32]string), onBump: onBump}
}

// Join adds (or re-addresses) a member and returns the resulting view.
func (t *Tracker) Join(id uint32, addr string) View {
	t.mu.Lock()
	if old, ok := t.members[id]; !ok || old != addr {
		t.members[id] = addr
		t.epoch++
		t.bumpLocked()
	}
	v := t.viewLocked()
	t.mu.Unlock()
	return v
}

// Leave removes a member and returns the resulting view. Removing an
// absent member is a no-op (no bump).
func (t *Tracker) Leave(id uint32) View {
	t.mu.Lock()
	if _, ok := t.members[id]; ok {
		delete(t.members, id)
		t.epoch++
		t.bumpLocked()
	}
	v := t.viewLocked()
	t.mu.Unlock()
	return v
}

// View returns the current view.
func (t *Tracker) View() View {
	t.mu.Lock()
	v := t.viewLocked()
	t.mu.Unlock()
	return v
}

func (t *Tracker) bumpLocked() {
	if t.onBump != nil {
		t.onBump(t.epoch)
	}
}

func (t *Tracker) viewLocked() View {
	v := View{Epoch: t.epoch, Members: make([]Member, 0, len(t.members))}
	for id, addr := range t.members {
		v.Members = append(v.Members, Member{ID: id, Addr: addr})
	}
	sort.Slice(v.Members, func(i, j int) bool { return v.Members[i].ID < v.Members[j].ID })
	return v
}
