package membership

import (
	"testing"

	"pvfscache/internal/blockio"
)

func testKeys(n int) []blockio.BlockKey {
	keys := make([]blockio.BlockKey, 0, n)
	for f := 1; len(keys) < n; f++ {
		for i := 0; i < 64 && len(keys) < n; i++ {
			keys = append(keys, blockio.BlockKey{File: blockio.FileID(f), Index: int64(i)})
		}
	}
	return keys
}

func addrs(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = "peer"
	}
	return out
}

func TestReplicaSetShape(t *testing.T) {
	r := NewRing(StaticView(addrs(5)), 64, 3)
	var buf [8]int
	for _, key := range testKeys(2000) {
		set := r.ReplicaSet(key, buf[:0])
		if len(set) != 3 {
			t.Fatalf("key %v: got %d replicas, want 3", key, len(set))
		}
		seen := map[int]bool{}
		for _, m := range set {
			if m < 0 || m >= 5 {
				t.Fatalf("key %v: member %d out of range", key, m)
			}
			if seen[m] {
				t.Fatalf("key %v: duplicate member %d in %v", key, m, set)
			}
			seen[m] = true
		}
		if p := r.Primary(key); p != set[0] {
			t.Fatalf("key %v: Primary=%d but ReplicaSet[0]=%d", key, p, set[0])
		}
	}
}

func TestReplicaSetCappedByMembers(t *testing.T) {
	r := NewRing(StaticView(addrs(2)), 32, 3)
	var buf [8]int
	set := r.ReplicaSet(blockio.BlockKey{File: 1, Index: 1}, buf[:0])
	if len(set) != 2 {
		t.Fatalf("2-member ring with replicas=3: got %d replicas, want 2", len(set))
	}
	empty := NewRing(View{}, 32, 2)
	if set := empty.ReplicaSet(blockio.BlockKey{File: 1}, buf[:0]); len(set) != 0 {
		t.Fatalf("empty ring returned replicas %v", set)
	}
	if p := empty.Primary(blockio.BlockKey{File: 1}); p != -1 {
		t.Fatalf("empty ring Primary = %d, want -1", p)
	}
}

// TestBalance checks the vnode count keeps primary load reasonably even:
// no member should own more than ~2x its fair share.
func TestBalance(t *testing.T) {
	const members, keys = 4, 8000
	r := NewRing(StaticView(addrs(members)), DefaultVNodes, 1)
	counts := make([]int, members)
	for _, key := range testKeys(keys) {
		counts[r.Primary(key)]++
	}
	fair := keys / members
	for m, c := range counts {
		if c > 2*fair || c < fair/3 {
			t.Fatalf("member %d owns %d of %d keys (fair share %d): %v", m, c, keys, fair, counts)
		}
	}
}

// TestMinimalDisruption: adding one member to an n-member ring must move
// roughly 1/(n+1) of the keyspace and never remap a key between two
// surviving members — the consistent-hashing property the modulo ring
// lacked.
func TestMinimalDisruption(t *testing.T) {
	const keys = 8000
	before := NewRing(StaticView(addrs(4)), DefaultVNodes, 1)
	after := NewRing(StaticView(addrs(5)), DefaultVNodes, 1)
	moved := 0
	for _, key := range testKeys(keys) {
		a, b := before.Primary(key), after.Primary(key)
		if a == b {
			continue
		}
		if b != 4 {
			t.Fatalf("key %v moved between surviving members %d -> %d", key, a, b)
		}
		moved++
	}
	// Expect ~keys/5 moved; allow a wide band for hash variance.
	if moved < keys/10 || moved > keys/2 {
		t.Fatalf("adding 5th member moved %d of %d keys, want ~%d", moved, keys, keys/5)
	}
}

func TestRingDeterminism(t *testing.T) {
	v := StaticView([]string{"a", "b", "c"})
	r1 := NewRing(v, 64, 2)
	r2 := NewRing(v, 64, 2)
	var b1, b2 [4]int
	for _, key := range testKeys(500) {
		s1 := r1.ReplicaSet(key, b1[:0])
		s2 := r2.ReplicaSet(key, b2[:0])
		if len(s1) != len(s2) {
			t.Fatalf("key %v: %v vs %v", key, s1, s2)
		}
		for i := range s1 {
			if s1[i] != s2[i] {
				t.Fatalf("key %v: %v vs %v", key, s1, s2)
			}
		}
	}
}

func TestTrackerEpochs(t *testing.T) {
	var bumps int
	tr := NewTracker(func(uint64) { bumps++ })
	if v := tr.View(); v.Epoch != 0 || len(v.Members) != 0 {
		t.Fatalf("fresh tracker view = %+v", v)
	}
	v := tr.Join(1, "a")
	if v.Epoch != 1 || len(v.Members) != 1 {
		t.Fatalf("after first join: %+v", v)
	}
	// Idempotent re-join: no bump.
	if v = tr.Join(1, "a"); v.Epoch != 1 {
		t.Fatalf("idempotent join bumped epoch: %+v", v)
	}
	// Re-address: bump.
	if v = tr.Join(1, "a2"); v.Epoch != 2 {
		t.Fatalf("re-address did not bump: %+v", v)
	}
	v = tr.Join(0, "z")
	if v.Epoch != 3 || len(v.Members) != 2 || v.Members[0].ID != 0 || v.Members[1].ID != 1 {
		t.Fatalf("members not sorted by ID: %+v", v)
	}
	if v = tr.Leave(1); v.Epoch != 4 || len(v.Members) != 1 {
		t.Fatalf("after leave: %+v", v)
	}
	// Absent leave: no bump.
	if v = tr.Leave(7); v.Epoch != 4 {
		t.Fatalf("absent leave bumped: %+v", v)
	}
	if bumps != 4 {
		t.Fatalf("onBump fired %d times, want 4", bumps)
	}
}

func TestViewRespRoundTrip(t *testing.T) {
	tr := NewTracker(nil)
	tr.Join(3, "c")
	tr.Join(1, "a")
	v := tr.View()
	got := ViewFromResp(ViewToResp(v))
	if got.Epoch != v.Epoch || len(got.Members) != len(v.Members) {
		t.Fatalf("round trip: %+v vs %+v", got, v)
	}
	for i := range v.Members {
		if got.Members[i] != v.Members[i] {
			t.Fatalf("member %d: %+v vs %+v", i, got.Members[i], v.Members[i])
		}
	}
}
