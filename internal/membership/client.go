package membership

import (
	"fmt"
	"time"

	"pvfscache/internal/rpc"
	"pvfscache/internal/transport"
	"pvfscache/internal/wire"
)

// DefaultMgrTimeout bounds each view RPC against the mgr. View traffic is
// tiny control-plane metadata; a second of patience is generous and keeps
// a dead mgr from hanging a join or a stale-epoch refresh forever.
const DefaultMgrTimeout = time.Second

// Client speaks the membership view protocol to the mgr: Join on boot,
// Fetch on stale-epoch refresh, Leave on drain. It is safe for concurrent
// use.
type Client struct {
	rc *rpc.Client
}

// NewClient returns a view client for the mgr at addr. timeout bounds each
// round trip (<=0 selects DefaultMgrTimeout).
func NewClient(network transport.Network, addr string, timeout time.Duration) *Client {
	if timeout <= 0 {
		timeout = DefaultMgrTimeout
	}
	return &Client{rc: rpc.NewClient(rpc.ClientConfig{
		Network:     network,
		Addr:        addr,
		Conns:       1,
		CallTimeout: timeout,
	})}
}

// Join registers (or re-addresses) member id at addr and returns the
// resulting view.
func (c *Client) Join(id uint32, addr string) (View, error) {
	return c.roundTrip(&wire.JoinView{ID: id, Addr: addr})
}

// Leave deregisters member id and returns the resulting view.
func (c *Client) Leave(id uint32) (View, error) {
	return c.roundTrip(&wire.LeaveView{ID: id})
}

// Fetch returns the mgr's current view.
func (c *Client) Fetch() (View, error) {
	return c.roundTrip(&wire.ViewGet{})
}

// Close releases the underlying connection pool.
func (c *Client) Close() error { return c.rc.Close() }

func (c *Client) roundTrip(req wire.Message) (View, error) {
	res := c.rc.Call(req)
	if res.Err != nil {
		return View{}, res.Err
	}
	defer res.Release()
	vr, ok := res.Msg.(*wire.ViewResp)
	if !ok {
		return View{}, fmt.Errorf("membership: unexpected %v reply to %v", res.Msg.WireType(), req.WireType())
	}
	if err := vr.Status.Err(); err != nil {
		return View{}, err
	}
	return ViewFromResp(vr), nil
}

// ViewFromResp decodes a wire view into a View.
func ViewFromResp(vr *wire.ViewResp) View {
	v := View{Epoch: vr.Epoch, Members: make([]Member, len(vr.IDs))}
	for i := range vr.IDs {
		v.Members[i] = Member{ID: vr.IDs[i], Addr: vr.Addrs[i]}
	}
	return v
}

// ViewToResp encodes a View as a wire reply (the mgr side of
// ViewFromResp).
func ViewToResp(v View) *wire.ViewResp {
	vr := &wire.ViewResp{Status: wire.StatusOK, Epoch: v.Epoch}
	vr.IDs = make([]uint32, len(v.Members))
	vr.Addrs = make([]string, len(v.Members))
	for i, m := range v.Members {
		vr.IDs[i] = m.ID
		vr.Addrs[i] = m.Addr
	}
	return vr
}
