package rpc

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pvfscache/internal/transport"
	"pvfscache/internal/wire"
)

// blackhole accepts connections and never answers — the shape of a hung
// (not crashed) peer. The returned stop function closes the listener and
// drops every held conn.
func blackhole(t *testing.T, net transport.Network, addr string) func() {
	t.Helper()
	l, err := net.Listen(addr)
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var conns []transport.Conn
	go func() {
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			mu.Lock()
			conns = append(conns, c)
			mu.Unlock()
		}
	}()
	return func() {
		l.Close()
		mu.Lock()
		defer mu.Unlock()
		for _, c := range conns {
			c.Close()
		}
		conns = nil
	}
}

// TestCallTimeoutOnHungPeer: a peer that accepts but never replies must
// cost one bounded timeout per call, not a hung caller.
func TestCallTimeoutOnHungPeer(t *testing.T) {
	net := transport.NewMem()
	stop := blackhole(t, net, "hung")
	defer stop()

	c := NewClient(ClientConfig{Network: net, Addr: "hung", Conns: 1, CallTimeout: 50 * time.Millisecond})
	defer c.Close()

	start := time.Now()
	res := c.Call(&wire.Read{Offset: 1})
	if !errors.Is(res.Err, ErrCallTimeout) {
		t.Fatalf("err = %v, want ErrCallTimeout", res.Err)
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("timeout took %v, want ~50ms", d)
	}
}

// TestConnDeathMidCall kills the pooled connection while a call is in
// flight: the in-flight call must fail fast with a retryable error (not
// hang, not ErrClosed), and the next call must re-dial and succeed once
// the peer is back.
func TestConnDeathMidCall(t *testing.T) {
	mem := &countingNetwork{Network: transport.NewMem()}
	stop := blackhole(t, mem, "flaky")

	c := NewClient(ClientConfig{Network: mem, Addr: "flaky", Conns: 1})
	defer c.Close()

	ch, err := c.Go(&wire.Read{Offset: 7})
	if err != nil {
		t.Fatal(err)
	}
	dialsBefore := mem.dials.Load()

	// Kill the server side of the connection mid-call.
	stop()
	select {
	case res := <-ch:
		if res.Err == nil {
			t.Fatal("in-flight call succeeded against a killed conn")
		}
		if errors.Is(res.Err, ErrClosed) {
			t.Fatalf("in-flight call failed with ErrClosed (not retryable): %v", res.Err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("in-flight call hung after its connection died")
	}

	// Revive the peer on the same address; the next call must re-dial.
	l, err := mem.Network.Listen("flaky")
	if err != nil {
		t.Fatal(err)
	}
	s := NewServer(echoHandler(), ServerConfig{})
	go s.Serve(l)
	defer func() { l.Close(); s.Close() }()

	res := c.Call(&wire.Read{Offset: 9})
	if res.Err != nil {
		t.Fatalf("call after revival failed: %v", res.Err)
	}
	if got := echoed(t, res); got != 9 {
		t.Fatalf("wrong echo after re-dial: %d", got)
	}
	if mem.dials.Load() <= dialsBefore {
		t.Fatal("client reused the dead connection instead of re-dialing")
	}
}

// TestEjectAndReadmit drives the breaker end to end: consecutive dial
// failures eject the peer (calls fail fast without dialing), the prober
// readmits it once it accepts connections again, and traffic resumes.
func TestEjectAndReadmit(t *testing.T) {
	mem := &countingNetwork{Network: transport.NewMem()}
	var ejects, readmits, probes atomic.Int64
	c := NewClient(ClientConfig{
		Network: mem,
		Addr:    "peer",
		Conns:   1,
		Health: &HealthConfig{
			FailThreshold: 2,
			ProbeInterval: 5 * time.Millisecond,
			OnEject:       func() { ejects.Add(1) },
			OnReadmit:     func() { readmits.Add(1) },
			OnProbe:       func() { probes.Add(1) },
		},
	})
	defer c.Close()

	// No listener: two dial failures open the breaker.
	for i := 0; i < 2; i++ {
		if res := c.Call(&wire.Read{Offset: 1}); res.Err == nil {
			t.Fatal("call succeeded with no listener")
		}
	}
	if !c.Ejected() {
		t.Fatal("peer not ejected after FailThreshold failures")
	}
	if ejects.Load() != 1 {
		t.Fatalf("OnEject fired %d times, want 1", ejects.Load())
	}

	// Ejected: calls fail fast with ErrPeerEjected and do not dial. The
	// prober's own dials keep running, so compare client-path dials via the
	// error identity rather than the dial count.
	res := c.Call(&wire.Read{Offset: 2})
	if !errors.Is(res.Err, ErrPeerEjected) {
		t.Fatalf("ejected-peer call err = %v, want ErrPeerEjected", res.Err)
	}

	// Revive the peer: the prober readmits within a few intervals.
	l, err := mem.Network.Listen("peer")
	if err != nil {
		t.Fatal(err)
	}
	s := NewServer(echoHandler(), ServerConfig{})
	go s.Serve(l)
	defer func() { l.Close(); s.Close() }()

	deadline := time.Now().Add(5 * time.Second)
	for c.Ejected() {
		if time.Now().After(deadline) {
			t.Fatalf("peer never readmitted (probes=%d)", probes.Load())
		}
		time.Sleep(time.Millisecond)
	}
	if readmits.Load() != 1 {
		t.Fatalf("OnReadmit fired %d times, want 1", readmits.Load())
	}
	if probes.Load() == 0 {
		t.Fatal("readmitted without a probe")
	}
	res = c.Call(&wire.Read{Offset: 3})
	if res.Err != nil {
		t.Fatalf("call after readmission failed: %v", res.Err)
	}
	if got := echoed(t, res); got != 3 {
		t.Fatalf("wrong echo after readmission: %d", got)
	}
}

// TestProbeStopsOnClose closes the client while ejected and checks the
// prober exits instead of dialing forever.
func TestProbeStopsOnClose(t *testing.T) {
	mem := &countingNetwork{Network: transport.NewMem()}
	c := NewClient(ClientConfig{
		Network: mem,
		Addr:    "gone",
		Health:  &HealthConfig{FailThreshold: 1, ProbeInterval: time.Millisecond},
	})
	if res := c.Call(&wire.Read{Offset: 1}); res.Err == nil {
		t.Fatal("call succeeded with no listener")
	}
	if !c.Ejected() {
		t.Fatal("not ejected at threshold 1")
	}
	c.Close()
	time.Sleep(5 * time.Millisecond)
	quiesced := mem.dials.Load()
	time.Sleep(20 * time.Millisecond)
	if d := mem.dials.Load(); d != quiesced {
		t.Fatalf("prober still dialing after Close (%d -> %d)", quiesced, d)
	}
}
