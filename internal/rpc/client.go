// Package rpc is the framed request/response core shared by every layer of
// the system. The seed implemented the same dial/queue/redial machinery
// three times — pvfs.DirectTransport, cachemod's rpcClient, and the
// globalcache peer protocol — each strictly FIFO over a single connection,
// which serialized independent requests behind one another. This package
// replaces all of them:
//
//   - Client keeps a small pool of connections per peer and tags every
//     request (see wire.WriteTagged), so responses demultiplex by tag and
//     complete out of order: a slow read no longer blocks unrelated
//     requests sharing the connection.
//   - Server is a shared accept/dispatch loop with a Handler interface and
//     bounded per-connection worker concurrency, replacing the hand-rolled
//     loops in internal/iod, internal/mgr, and internal/globalcache.
//
// Compatibility: an untagged (legacy) peer never sets the tag bit, and
// Server falls back to serial FIFO service on such connections. Client can
// likewise be configured Untagged to speak the legacy FIFO protocol to an
// old server.
//
// Buffers move zero-copy: requests and responses are decoded with their
// bulk payload fields aliasing the connection's pooled frame buffer. On
// the server the frame is released when the Handler returns (handlers
// consume payloads, never retain them); on the client the frame travels
// with the Result as a Lease that the consumer releases once the payload
// bytes are dead. SetLeasePoison enables the debug mode that stamps
// released buffers so aliasing-after-release bugs surface loudly.
package rpc

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"pvfscache/internal/transport"
	"pvfscache/internal/wire"
)

// DefaultConns is the connection-pool size per peer when ClientConfig
// leaves Conns zero. Two connections already let one slow response stream
// overlap with an unrelated request, and pools stay cheap on clusters with
// many peers.
const DefaultConns = 2

// ErrClosed is returned by calls on a closed client.
var ErrClosed = errors.New("rpc: client closed")

// Result is one completed round trip. Responses are decoded zero-copy:
// when Msg carries bulk payload bytes (ReadResp.Data and friends), those
// bytes alias the pooled frame buffer owned by Lease, and the consumer
// must call Release once they are dead — copy out first, release after.
// For payload-free responses Lease is nil and Release is a no-op.
type Result struct {
	Msg   wire.Message
	Err   error
	Lease *Lease
}

// Release recycles the frame buffer backing Msg's payload fields, if any.
func (r Result) Release() { r.Lease.Release() }

// ClientConfig assembles a Client.
type ClientConfig struct {
	// Network dials the peer.
	Network transport.Network
	// Addr is the peer's address.
	Addr string
	// Conns is the connection-pool size (default DefaultConns).
	Conns int
	// Untagged selects the legacy FIFO protocol: requests carry no tag and
	// responses must arrive in request order on each connection. Use it to
	// talk to servers that predate tagged framing.
	Untagged bool
	// CallTimeout bounds each synchronous Call round trip (zero = no
	// bound). On expiry the connection the request rode is torn down —
	// every waiter on it fails with ErrCallTimeout and the next call
	// re-dials — so a hung peer costs one timeout, not a hung caller.
	// Go is not subject to the timeout; async callers own their waits.
	CallTimeout time.Duration
	// Health, when non-nil, enables per-peer circuit breaking (see
	// HealthConfig): consecutive failures eject the peer, calls on an
	// ejected peer fail fast with ErrPeerEjected, and a background prober
	// readmits it.
	Health *HealthConfig
}

// Client issues concurrent round trips to one peer over a pool of
// connections. Connections are dialed lazily, redialed on the call after a
// failure (the failure itself is sticky: every request in flight on the
// broken connection fails), and shared by any number of goroutines.
type Client struct {
	cfg    ClientConfig
	closed atomic.Bool
	hs     health
	stop   chan struct{} // closed by Close; stops the health prober

	mu    sync.Mutex
	conns []*clientConn
}

// clientConn is one pooled connection and its in-flight bookkeeping.
//
// Lock discipline: writeMu serializes dials and wire writes and is never
// held by the read loop; mu guards the bookkeeping and is only ever held
// briefly (never across a blocking write or dial), so the read loop can
// always acquire it to deliver responses — a writer blocked on a full
// transport buffer therefore cannot stop the reader from draining the
// other direction, which is what breaks the pipe-full deadlock.
type clientConn struct {
	client *Client

	writeMu sync.Mutex // dials + wire writes; taken before mu, never by readLoop

	mu       sync.Mutex
	conn     transport.Conn
	err      error                  // sticky until the next call redials
	pending  map[uint64]chan Result // tag -> waiter (tagged mode)
	fifo     []chan Result          // waiters in request order (untagged mode)
	inflight int
	nextTag  uint64
}

// NewClient returns a client for the peer at cfg.Addr. No connection is
// opened until the first call.
func NewClient(cfg ClientConfig) *Client {
	if cfg.Conns <= 0 {
		cfg.Conns = DefaultConns
	}
	c := &Client{cfg: cfg, conns: make([]*clientConn, cfg.Conns), stop: make(chan struct{})}
	for i := range c.conns {
		c.conns[i] = &clientConn{client: c}
	}
	return c
}

// Addr returns the peer address the client dials.
func (c *Client) Addr() string { return c.cfg.Addr }

// Go sends req and returns a channel that receives exactly one Result when
// the response arrives (or the connection fails). Requests issued
// concurrently may complete in any order.
func (c *Client) Go(req wire.Message) (<-chan Result, error) {
	cc, err := c.pick()
	if err != nil {
		return nil, err
	}
	ch, _, err := cc.send(req)
	return ch, err
}

// Call is the synchronous form of Go, bounded by ClientConfig.CallTimeout
// when one is set. The caller owns the returned Result's lease (see
// Result.Release).
func (c *Client) Call(req wire.Message) Result {
	cc, err := c.pick()
	if err != nil {
		return Result{Err: err}
	}
	ch, conn, err := cc.send(req)
	if err != nil {
		return Result{Err: err}
	}
	if c.cfg.CallTimeout <= 0 {
		return <-ch
	}
	timer := time.NewTimer(c.cfg.CallTimeout)
	defer timer.Stop()
	select {
	case r := <-ch:
		return r
	case <-timer.C:
		// Fail the connection the request rode — but only if it is still
		// the live one; if it was already replaced, our waiter was failed
		// with it and the result below is immediate. After failLocked the
		// waiter is guaranteed a result (the response that raced in, or
		// ErrCallTimeout), so this receive cannot block.
		cc.mu.Lock()
		if cc.conn == conn {
			cc.failLocked(ErrCallTimeout)
		}
		cc.mu.Unlock()
		return <-ch
	}
}

// pick chooses the pooled connection with the fewest requests in flight.
func (c *Client) pick() (*clientConn, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed.Load() {
		return nil, ErrClosed
	}
	if c.hs.ejected.Load() {
		return nil, ErrPeerEjected
	}
	best := c.conns[0]
	bestN := best.load()
	for _, cc := range c.conns[1:] {
		if n := cc.load(); n < bestN {
			best, bestN = cc, n
		}
	}
	return best, nil
}

// Close fails every in-flight request and closes the pool.
func (c *Client) Close() error {
	if c.closed.Swap(true) {
		return nil
	}
	close(c.stop)
	// The flag is set before any conn lock is taken, and send re-checks it
	// under the conn lock, so a send racing with Close either fails with
	// ErrClosed or registers its connection before failLocked reaps it —
	// never a leaked dial.
	for _, cc := range c.conns {
		cc.mu.Lock()
		cc.failLocked(ErrClosed)
		cc.mu.Unlock()
	}
	return nil
}

func (cc *clientConn) load() int {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	return cc.inflight
}

// send writes req on this connection, dialing or redialing first if
// needed, and registers a waiter for the response. The waiter is
// registered before the write so the read loop can deliver (or failLocked
// can abort) no matter where the write blocks. The transport.Conn the
// request rode is returned so Call's timeout can fail exactly that
// connection and no newer one.
func (cc *clientConn) send(req wire.Message) (<-chan Result, transport.Conn, error) {
	ch := make(chan Result, 1)
	cc.writeMu.Lock()
	defer cc.writeMu.Unlock()

	cc.mu.Lock()
	if cc.client.closed.Load() {
		cc.mu.Unlock()
		return nil, nil, ErrClosed
	}
	if cc.err != nil {
		// One redial attempt per call after a failure.
		cc.err = nil
	}
	if cc.conn == nil {
		// Dial without holding mu (writeMu already excludes concurrent
		// dialers), so a slow dial does not stall response delivery or
		// load inspection on the pool.
		cc.mu.Unlock()
		conn, err := cc.client.cfg.Network.Dial(cc.client.cfg.Addr)
		if err != nil {
			cc.client.noteFailure()
			return nil, nil, fmt.Errorf("rpc: dialing %s: %w", cc.client.cfg.Addr, err)
		}
		cc.mu.Lock()
		if cc.client.closed.Load() {
			cc.mu.Unlock()
			conn.Close()
			return nil, nil, ErrClosed
		}
		cc.conn = conn
		cc.err = nil
		cc.pending = make(map[uint64]chan Result)
		cc.fifo = nil
		go cc.readLoop(conn)
	}
	conn := cc.conn
	var tag uint64
	if cc.client.cfg.Untagged {
		// writeMu makes registration order equal write order, which the
		// FIFO protocol requires.
		cc.fifo = append(cc.fifo, ch)
	} else {
		cc.nextTag++
		tag = cc.nextTag
		cc.pending[tag] = ch
	}
	cc.inflight++
	cc.mu.Unlock()

	var werr error
	if cc.client.cfg.Untagged {
		werr = wire.WriteMessage(conn, req)
	} else {
		werr = wire.WriteTagged(conn, tag, req)
	}
	if werr != nil {
		cc.mu.Lock()
		if errors.Is(werr, wire.ErrTooLarge) {
			// Encode-side rejection: no byte reached the wire, the
			// connection is still aligned. Withdraw only this waiter.
			cc.withdrawLocked(tag, ch)
		} else if cc.conn == conn {
			cc.failLocked(werr)
		}
		cc.mu.Unlock()
		return nil, nil, fmt.Errorf("rpc: sending %v to %s: %w", req.WireType(), cc.client.cfg.Addr, werr)
	}
	return ch, conn, nil
}

// withdrawLocked removes a waiter whose request never hit the wire. In
// untagged mode the waiter is the fifo tail: writeMu is still held, so no
// later registration can have happened.
func (cc *clientConn) withdrawLocked(tag uint64, ch chan Result) {
	if cc.client.cfg.Untagged {
		if n := len(cc.fifo); n > 0 && cc.fifo[n-1] == ch {
			cc.fifo = cc.fifo[:n-1]
			cc.inflight--
		}
		return
	}
	if cc.pending[tag] == ch {
		delete(cc.pending, tag)
		cc.inflight--
	}
}

// readLoop demultiplexes responses from conn to their waiters until the
// connection fails or is replaced.
func (cc *clientConn) readLoop(conn transport.Conn) {
	for {
		tag, tagged, msg, payload, err := wire.ReadFrameAliased(conn)
		cc.mu.Lock()
		if cc.conn != conn {
			// A newer connection replaced this one; stop quietly.
			cc.mu.Unlock()
			wire.ReleasePayload(payload)
			return
		}
		if err != nil {
			cc.failLocked(err)
			cc.mu.Unlock()
			return
		}
		var ch chan Result
		if cc.client.cfg.Untagged {
			if tagged || len(cc.fifo) == 0 {
				cc.failLocked(fmt.Errorf("rpc: unsolicited %v from %s", msg.WireType(), cc.client.cfg.Addr))
				cc.mu.Unlock()
				wire.ReleasePayload(payload)
				return
			}
			ch = cc.fifo[0]
			cc.fifo = cc.fifo[1:]
		} else {
			if !tagged {
				cc.failLocked(fmt.Errorf("rpc: untagged %v from tagged peer %s", msg.WireType(), cc.client.cfg.Addr))
				cc.mu.Unlock()
				wire.ReleasePayload(payload)
				return
			}
			ch = cc.pending[tag]
			if ch == nil {
				cc.failLocked(fmt.Errorf("rpc: unknown response tag %d from %s", tag, cc.client.cfg.Addr))
				cc.mu.Unlock()
				wire.ReleasePayload(payload)
				return
			}
			delete(cc.pending, tag)
		}
		cc.inflight--
		cc.mu.Unlock()
		cc.client.noteSuccess()
		ch <- Result{Msg: msg, Lease: newLease(payload)}
	}
}

// failLocked tears the connection down and fails every waiter. Every
// failure except our own shutdown counts against the peer's health (one
// count per connection failure, not per waiter).
func (cc *clientConn) failLocked(err error) {
	if !errors.Is(err, ErrClosed) {
		cc.client.noteFailure()
	}
	if cc.conn != nil {
		cc.conn.Close()
		cc.conn = nil
	}
	cc.err = err
	for _, ch := range cc.pending {
		ch <- Result{Err: err}
	}
	for _, ch := range cc.fifo {
		ch <- Result{Err: err}
	}
	cc.pending = nil
	cc.fifo = nil
	cc.inflight = 0
}
