package rpc

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pvfscache/internal/transport"
	"pvfscache/internal/wire"
)

// echoHandler answers a Read with a ReadResp whose Data encodes the
// request's Offset, so callers can match responses to requests.
func echoHandler() Handler {
	return HandlerFunc(func(m wire.Message) wire.Message {
		r, ok := m.(*wire.Read)
		if !ok {
			return nil
		}
		data := binary.BigEndian.AppendUint64(nil, uint64(r.Offset))
		return &wire.ReadResp{Status: wire.StatusOK, Data: data}
	})
}

func echoed(t *testing.T, res Result) int64 {
	t.Helper()
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	rr, ok := res.Msg.(*wire.ReadResp)
	if !ok {
		t.Fatalf("unexpected reply %v", res.Msg.WireType())
	}
	v := int64(binary.BigEndian.Uint64(rr.Data))
	res.Release() // rr.Data aliases the leased frame; dead after decoding
	return v
}

func startServer(t *testing.T, net transport.Network, h Handler, cfg ServerConfig) (*Server, string) {
	t.Helper()
	l, err := net.Listen(":0")
	if err != nil {
		t.Fatal(err)
	}
	s := NewServer(h, cfg)
	go s.Serve(l)
	t.Cleanup(func() { l.Close(); s.Close() })
	return s, l.Addr()
}

// TestOutOfOrderCompletion blocks the first request inside the handler
// until the second one has been served: with tag demultiplexing the second
// response overtakes the first on the same connection.
func TestOutOfOrderCompletion(t *testing.T) {
	net := transport.NewMem()
	release := make(chan struct{})
	h := HandlerFunc(func(m wire.Message) wire.Message {
		r := m.(*wire.Read)
		switch r.Offset {
		case 1:
			<-release // held until request 2 completes
		case 2:
			defer close(release)
		}
		data := binary.BigEndian.AppendUint64(nil, uint64(r.Offset))
		return &wire.ReadResp{Status: wire.StatusOK, Data: data}
	})
	_, addr := startServer(t, net, h, ServerConfig{})
	// A single pooled connection forces both requests onto one stream.
	c := NewClient(ClientConfig{Network: net, Addr: addr, Conns: 1})
	defer c.Close()

	ch1, err := c.Go(&wire.Read{Offset: 1})
	if err != nil {
		t.Fatal(err)
	}
	ch2, err := c.Go(&wire.Read{Offset: 2})
	if err != nil {
		t.Fatal(err)
	}
	select {
	case res := <-ch2:
		if got := echoed(t, res); got != 2 {
			t.Fatalf("second response echoed %d", got)
		}
	case res := <-ch1:
		t.Fatalf("first (blocked) request completed first: %+v", res)
	}
	if got := echoed(t, <-ch1); got != 1 {
		t.Fatalf("first response echoed %d", got)
	}
}

// countingNetwork counts dials so tests can assert pool reuse.
type countingNetwork struct {
	transport.Network
	dials atomic.Int64
}

func (n *countingNetwork) Dial(addr string) (transport.Conn, error) {
	n.dials.Add(1)
	return n.Network.Dial(addr)
}

// TestConnectionPoolReuse issues many sequential calls and checks the
// client never dials more than its pool size.
func TestConnectionPoolReuse(t *testing.T) {
	net := &countingNetwork{Network: transport.NewMem()}
	_, addr := startServer(t, net, echoHandler(), ServerConfig{})
	c := NewClient(ClientConfig{Network: net, Addr: addr, Conns: 2})
	defer c.Close()
	for i := 0; i < 32; i++ {
		res := c.Call(&wire.Read{Offset: int64(i)})
		if res.Err != nil {
			t.Fatal(res.Err)
		}
		if got := echoed(t, res); got != int64(i) {
			t.Fatalf("call %d: wrong echo", i)
		}
	}
	if d := net.dials.Load(); d > 2 {
		t.Fatalf("dialed %d times for a pool of 2", d)
	}
}

// TestRedialAfterPeerCrash kills the server mid-conversation and checks
// the client fails in-flight calls, then recovers once a new server
// listens on the same address.
func TestRedialAfterPeerCrash(t *testing.T) {
	mem := transport.NewMem()
	l, err := mem.Listen("peer")
	if err != nil {
		t.Fatal(err)
	}
	s := NewServer(echoHandler(), ServerConfig{})
	go s.Serve(l)

	c := NewClient(ClientConfig{Network: mem, Addr: "peer", Conns: 2})
	defer c.Close()
	if res := c.Call(&wire.Read{Offset: 1}); res.Err != nil {
		t.Fatal(res.Err)
	} else {
		res.Release()
	}

	// Crash: close the listener and every server-side connection.
	l.Close()
	s.Close()

	// Calls now fail (possibly after one or two attempts while the broken
	// pool drains), and must NOT hang.
	failed := false
	for i := 0; i < 10; i++ {
		res := c.Call(&wire.Read{Offset: 2})
		res.Release()
		if res.Err != nil {
			failed = true
			break
		}
	}
	if !failed {
		t.Fatal("no call failed after peer crash")
	}

	// Revive the peer on the same address: the client redials.
	l2, err := mem.Listen("peer")
	if err != nil {
		t.Fatal(err)
	}
	s2 := NewServer(echoHandler(), ServerConfig{})
	go s2.Serve(l2)
	defer func() { l2.Close(); s2.Close() }()

	var lastErr error
	for i := 0; i < 10; i++ {
		res := c.Call(&wire.Read{Offset: 3})
		if res.Err != nil {
			lastErr = res.Err
			continue
		}
		if got := echoed(t, res); got != 3 {
			t.Fatal("wrong echo after redial")
		}
		return
	}
	t.Fatalf("client never recovered after peer revival: %v", lastErr)
}

// TestUntaggedCompatMode runs the client in legacy FIFO mode against the
// server, which must answer untagged frames in request order.
func TestUntaggedCompatMode(t *testing.T) {
	net := transport.NewMem()
	_, addr := startServer(t, net, echoHandler(), ServerConfig{})
	c := NewClient(ClientConfig{Network: net, Addr: addr, Conns: 1, Untagged: true})
	defer c.Close()
	var chans []<-chan Result
	for i := 0; i < 8; i++ {
		ch, err := c.Go(&wire.Read{Offset: int64(i)})
		if err != nil {
			t.Fatal(err)
		}
		chans = append(chans, ch)
	}
	for i, ch := range chans {
		if got := echoed(t, <-ch); got != int64(i) {
			t.Fatalf("FIFO response %d echoed %d", i, got)
		}
	}
}

// TestLegacyRawClient drives the server with bare wire.WriteMessage /
// ReadMessage calls — the exact protocol the seed's clients spoke.
func TestLegacyRawClient(t *testing.T) {
	net := transport.NewMem()
	_, addr := startServer(t, net, echoHandler(), ServerConfig{})
	conn, err := net.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	for i := 0; i < 4; i++ {
		if err := wire.WriteMessage(conn, &wire.Read{Offset: int64(i)}); err != nil {
			t.Fatal(err)
		}
		m, err := wire.ReadMessage(conn)
		if err != nil {
			t.Fatal(err)
		}
		rr := m.(*wire.ReadResp)
		if int64(binary.BigEndian.Uint64(rr.Data)) != int64(i) {
			t.Fatalf("legacy round trip %d: wrong echo", i)
		}
	}
}

// TestHandlerNilClosesConnection checks the protocol-error path: a
// handler returning nil drops the connection and fails the caller instead
// of hanging it.
func TestHandlerNilClosesConnection(t *testing.T) {
	net := transport.NewMem()
	_, addr := startServer(t, net, echoHandler(), ServerConfig{})
	c := NewClient(ClientConfig{Network: net, Addr: addr, Conns: 1})
	defer c.Close()
	if res := c.Call(&wire.Stat{File: 1}); res.Err == nil {
		t.Fatal("expected error for message the handler rejects")
	}
}

// TestConcurrentStress hammers one client from many goroutines; run with
// -race. Payload echoes verify no response is delivered to the wrong
// caller under concurrency.
func TestConcurrentStress(t *testing.T) {
	net := transport.NewMem()
	h := HandlerFunc(func(m wire.Message) wire.Message {
		w, ok := m.(*wire.Write)
		if !ok {
			return nil
		}
		// Echo the payload back so callers can verify routing. The request
		// payload aliases the connection's frame buffer and is released
		// when Handle returns, so the echo must be a copy.
		return &wire.ReadResp{Status: wire.StatusOK, Data: append([]byte(nil), w.Data...)}
	})
	_, addr := startServer(t, net, h, ServerConfig{Concurrency: 4})
	c := NewClient(ClientConfig{Network: net, Addr: addr, Conns: 3})
	defer c.Close()

	const (
		goroutines = 16
		calls      = 200
	)
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			payload := make([]byte, 12)
			for i := 0; i < calls; i++ {
				binary.BigEndian.PutUint32(payload[0:4], uint32(g))
				binary.BigEndian.PutUint64(payload[4:12], uint64(i))
				res := c.Call(&wire.Write{Offset: int64(i), Data: payload})
				if res.Err != nil {
					errs <- fmt.Errorf("goroutine %d call %d: %w", g, i, res.Err)
					return
				}
				rr, ok := res.Msg.(*wire.ReadResp)
				if !ok || !bytes.Equal(rr.Data, payload) {
					errs <- fmt.Errorf("goroutine %d call %d: response routed to wrong caller", g, i)
					return
				}
				res.Release()
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestLeasePoisonRoundTrips drives the complete leased-buffer cycle with
// poison-on-release enabled: the server builds responses in pooled
// buffers recycled by AfterWrite after the vectored frame write, the
// client decodes them zero-copy into leased frames and releases after
// verification. Any buffer recycled while still aliased — on either side
// — surfaces as a poisoned or cross-request byte in the verification, and
// as a data race under -race.
func TestLeasePoisonRoundTrips(t *testing.T) {
	SetLeasePoison(true)
	defer SetLeasePoison(false)

	net := transport.NewMem()
	var pool BufPool
	h := HandlerFunc(func(m wire.Message) wire.Message {
		r, ok := m.(*wire.Read)
		if !ok {
			return nil
		}
		// An 8 KB pooled response stamped with a per-request byte, large
		// enough that the vectored (scatter-gather) encoder engages.
		data := pool.Get(8 << 10)
		fill := byte(r.Offset)
		if fill == wire.PoisonByte {
			fill ^= 0x55
		}
		for i := range data {
			data[i] = fill
		}
		return &wire.ReadResp{Status: wire.StatusOK, Data: data}
	})
	_, addr := startServer(t, net, h, ServerConfig{
		Concurrency: 4,
		AfterWrite: func(resp wire.Message) {
			if rr, ok := resp.(*wire.ReadResp); ok {
				pool.Put(rr.Data)
			}
		},
	})
	c := NewClient(ClientConfig{Network: net, Addr: addr, Conns: 2})
	defer c.Close()

	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				off := int64(g*100 + i)
				res := c.Call(&wire.Read{Offset: off})
				if res.Err != nil {
					errs <- res.Err
					return
				}
				rr := res.Msg.(*wire.ReadResp)
				want := byte(off)
				if want == wire.PoisonByte {
					want ^= 0x55
				}
				for j, b := range rr.Data {
					if b != want {
						errs <- fmt.Errorf("goroutine %d call %d: byte %d = %#x, want %#x (recycled under a live alias?)",
							g, i, j, b, want)
						res.Release()
						return
					}
				}
				res.Release()
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestLargeFramesNoDeadlock floods one connection with requests and
// responses far larger than the transport's 64 KB buffer. A writer that
// held the bookkeeping lock across a blocking write would deadlock here
// (reader unable to drain while the writer waits for buffer space).
func TestLargeFramesNoDeadlock(t *testing.T) {
	net := transport.NewMem()
	h := HandlerFunc(func(m wire.Message) wire.Message {
		w, ok := m.(*wire.Write)
		if !ok {
			return nil
		}
		return &wire.ReadResp{Status: wire.StatusOK, Data: make([]byte, len(w.Data))}
	})
	_, addr := startServer(t, net, h, ServerConfig{Concurrency: 8})
	c := NewClient(ClientConfig{Network: net, Addr: addr, Conns: 1})
	defer c.Close()

	done := make(chan struct{})
	go func() {
		defer close(done)
		var wg sync.WaitGroup
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				payload := make([]byte, 128<<10)
				for i := 0; i < 4; i++ {
					res := c.Call(&wire.Write{Data: payload})
					if res.Err != nil {
						t.Error(res.Err)
						return
					}
					if rr := res.Msg.(*wire.ReadResp); len(rr.Data) != len(payload) {
						t.Error("short echo")
						return
					}
					res.Release()
				}
			}()
		}
		wg.Wait()
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("deadlock: large-frame traffic did not complete")
	}
}
