package rpc

import (
	"testing"
	"time"

	"pvfscache/internal/transport"
	"pvfscache/internal/wire"
)

// benchServer answers reads after a simulated 100 µs service time (disk or
// remote-peer latency), which is what makes request overlap matter: a FIFO
// connection serializes the waits, a multiplexed pool overlaps them.
func benchServer(b *testing.B, net transport.Network) string {
	b.Helper()
	l, err := net.Listen(":0")
	if err != nil {
		b.Fatal(err)
	}
	h := HandlerFunc(func(m wire.Message) wire.Message {
		if _, ok := m.(*wire.Read); !ok {
			return nil
		}
		time.Sleep(100 * time.Microsecond)
		return &wire.ReadResp{Status: wire.StatusOK, Data: make([]byte, 4096)}
	})
	s := NewServer(h, ServerConfig{Concurrency: 16})
	go s.Serve(l)
	b.Cleanup(func() { l.Close(); s.Close() })
	return l.Addr()
}

func benchCalls(b *testing.B, c *Client) {
	b.Helper()
	b.SetParallelism(8)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			res := c.Call(&wire.Read{Offset: 0, Length: 4096})
			if res.Err != nil {
				b.Error(res.Err)
				return
			}
			res.Release()
		}
	})
}

// BenchmarkFIFOSingleConn is the seed's shape: one connection, responses
// strictly in request order, every concurrent caller queued behind the
// slowest in-flight request.
func BenchmarkFIFOSingleConn(b *testing.B) {
	net := transport.NewMem()
	addr := benchServer(b, net)
	c := NewClient(ClientConfig{Network: net, Addr: addr, Conns: 1, Untagged: true})
	defer c.Close()
	benchCalls(b, c)
}

// BenchmarkMultiplexedPool is the refactored path: tagged requests over a
// small pool complete out of order, so concurrent callers overlap their
// service times.
func BenchmarkMultiplexedPool(b *testing.B) {
	net := transport.NewMem()
	addr := benchServer(b, net)
	c := NewClient(ClientConfig{Network: net, Addr: addr, Conns: 2})
	defer c.Close()
	benchCalls(b, c)
}
