package rpc

import (
	"errors"
	"sync"

	"pvfscache/internal/transport"
	"pvfscache/internal/wire"
)

// DefaultConcurrency bounds how many tagged requests one connection may
// have in service at once when ServerConfig leaves Concurrency zero.
const DefaultConcurrency = 8

// Handler serves one request. Returning nil closes the connection: it
// marks a message the handler does not speak, which on a request/response
// stream is protocol corruption.
//
// Requests are decoded zero-copy: bulk payload fields (Write.Data, flush
// block data, ...) alias the connection's pooled frame buffer, which the
// server recycles as soon as Handle returns. A handler must therefore
// consume payload bytes before returning (copy them, write them to a
// store) and never retain them.
type Handler interface {
	Handle(req wire.Message) wire.Message
}

// HandlerFunc adapts a function to Handler.
type HandlerFunc func(req wire.Message) wire.Message

// Handle implements Handler.
func (f HandlerFunc) Handle(req wire.Message) wire.Message { return f(req) }

// ServerConfig tunes a Server.
type ServerConfig struct {
	// Concurrency bounds in-service requests per connection in tagged mode
	// (default DefaultConcurrency). Untagged (legacy) connections are
	// always served serially, preserving FIFO response order.
	Concurrency int
	// AfterWrite, when non-nil, runs after each response has been written
	// to the wire. Handlers use it to recycle response buffers (e.g. the
	// iod's read buffers) once the frame encoder is done with them.
	AfterWrite func(resp wire.Message)
}

// Server accepts connections and dispatches framed requests to a Handler.
// Tagged requests on one connection are served concurrently (bounded by
// Concurrency) and their responses carry the request's tag, so they may
// complete out of order; untagged connections get the legacy serial FIFO
// service. One Server may serve any number of listeners.
type Server struct {
	h   Handler
	cfg ServerConfig

	mu     sync.Mutex
	conns  map[transport.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// NewServer returns a server dispatching to h.
func NewServer(h Handler, cfg ServerConfig) *Server {
	if cfg.Concurrency <= 0 {
		cfg.Concurrency = DefaultConcurrency
	}
	return &Server{h: h, cfg: cfg, conns: make(map[transport.Conn]struct{})}
}

// Serve accepts connections on l until the listener closes. It returns nil
// on a clean listener close. Call it from its own goroutine; one server
// may serve several listeners concurrently.
func (s *Server) Serve(l transport.Listener) error {
	for {
		conn, err := l.Accept()
		if err != nil {
			if errors.Is(err, transport.ErrClosed) {
				return nil
			}
			return err
		}
		if !s.track(conn) {
			conn.Close()
			return nil
		}
		go s.serveConn(conn)
	}
}

// Close drops every open connection and makes subsequent accepts shut
// down. Listeners are owned by the caller and must be closed separately.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	conns := make([]transport.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
	s.wg.Wait()
	return nil
}

// track registers a connection and reserves its waitgroup slot atomically
// with the closed check, so Close's wg.Wait can never race a late Add.
func (s *Server) track(conn transport.Conn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false
	}
	s.conns[conn] = struct{}{}
	s.wg.Add(1)
	return true
}

func (s *Server) untrack(conn transport.Conn) {
	s.mu.Lock()
	delete(s.conns, conn)
	s.mu.Unlock()
}

// serveConn reads frames until the connection fails. Tagged requests fan
// out to bounded workers; untagged requests are served inline so their
// responses keep request order.
func (s *Server) serveConn(conn transport.Conn) {
	defer s.wg.Done()
	defer s.untrack(conn)

	var (
		writeMu sync.Mutex
		workers sync.WaitGroup
		sem     = make(chan struct{}, s.cfg.Concurrency)
	)
	// LIFO: close the connection first so workers blocked writing to a
	// peer that stopped reading fail out, then wait for them.
	defer workers.Wait()
	defer conn.Close()
	for {
		// Zero-copy request decode: the message's payload fields alias
		// payload, released as soon as the handler has consumed them (the
		// Handler contract forbids retaining request bytes past Handle).
		tag, tagged, msg, payload, err := wire.ReadFrameAliased(conn)
		if err != nil {
			return
		}
		if !tagged {
			resp := s.h.Handle(msg)
			wire.ReleasePayload(payload)
			if resp == nil {
				return
			}
			// A peer may mix tagged and untagged frames on one
			// connection; share the write lock with the tagged workers
			// so frames never interleave.
			writeMu.Lock()
			err := wire.WriteMessage(conn, resp)
			writeMu.Unlock()
			if err != nil {
				return
			}
			if s.cfg.AfterWrite != nil {
				s.cfg.AfterWrite(resp)
			}
			continue
		}
		sem <- struct{}{}
		workers.Add(1)
		go func(tag uint64, msg wire.Message, payload []byte) {
			defer workers.Done()
			defer func() { <-sem }()
			resp := s.h.Handle(msg)
			wire.ReleasePayload(payload)
			if resp == nil {
				conn.Close() // protocol error: unblock the read loop
				return
			}
			writeMu.Lock()
			err := wire.WriteTagged(conn, tag, resp)
			writeMu.Unlock()
			if err != nil {
				conn.Close()
				return
			}
			if s.cfg.AfterWrite != nil {
				s.cfg.AfterWrite(resp)
			}
		}(tag, msg, payload)
	}
}
