package rpc

import "sync"

// defaultBufCap bounds the capacity of buffers a BufPool retains (1 MB),
// so one oversized response cannot pin memory forever.
const defaultBufCap = 1 << 20

// BufPool recycles response payload buffers. Servers that build responses
// around large byte slices (iod reads, global-cache blocks) take buffers
// from a BufPool in their handler and return them from the Server's
// AfterWrite hook once the frame encoder is done with them.
//
// The zero value is ready to use.
type BufPool struct {
	// MaxCap overrides the retained-capacity bound (default 1 MB).
	MaxCap int
	pool   sync.Pool
}

// Get returns an n-byte buffer, reusing a pooled one when large enough.
func (p *BufPool) Get(n int) []byte {
	if b, ok := p.pool.Get().(*[]byte); ok && cap(*b) >= n {
		return (*b)[:n]
	}
	return make([]byte, n)
}

// Put returns a buffer for reuse. Nil and oversized buffers are dropped.
func (p *BufPool) Put(b []byte) {
	max := p.MaxCap
	if max <= 0 {
		max = defaultBufCap
	}
	if b == nil || cap(b) > max {
		return
	}
	b = b[:0]
	p.pool.Put(&b)
}
