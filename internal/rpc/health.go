package rpc

import (
	"errors"
	"sync/atomic"
	"time"
)

// Health errors. Both are retryable by design: ErrPeerEjected means the
// breaker is open and the caller should route around the peer (the
// global-cache client fails over to the next replica); ErrCallTimeout
// means one round trip exceeded ClientConfig.CallTimeout and the
// connection it rode was torn down, so the next call re-dials.
var (
	ErrPeerEjected  = errors.New("rpc: peer ejected by health checker")
	ErrCallTimeout  = errors.New("rpc: call timed out")
	errProbeStopped = errors.New("rpc: probe stopped")
)

// HealthConfig turns on per-peer circuit breaking for a Client. After
// FailThreshold consecutive connection-level failures the peer is
// ejected: every call fails fast with ErrPeerEjected instead of paying a
// dial or timeout, while a background prober re-dials the peer every
// ProbeInterval and readmits it on the first successful dial.
//
// A probe only proves the peer accepts connections — a half-dead peer
// that accepts but never answers will be readmitted and re-ejected after
// another FailThreshold timeouts. That oscillation is bounded by
// ProbeInterval and is the cost of keeping probes protocol-free.
type HealthConfig struct {
	// FailThreshold is the number of consecutive failures that opens the
	// breaker (default 3).
	FailThreshold int
	// ProbeInterval is the re-dial period while ejected (default 250ms).
	ProbeInterval time.Duration
	// OnEject, OnReadmit, and OnProbe are observability hooks (metrics
	// counters). They may be invoked from request goroutines and from the
	// prober and must not call back into the Client.
	OnEject   func()
	OnReadmit func()
	OnProbe   func()
}

func (h *HealthConfig) failThreshold() int {
	if h.FailThreshold <= 0 {
		return 3
	}
	return h.FailThreshold
}

func (h *HealthConfig) probeInterval() time.Duration {
	if h.ProbeInterval <= 0 {
		return 250 * time.Millisecond
	}
	return h.ProbeInterval
}

// health is the breaker state embedded in Client.
type health struct {
	consecFails atomic.Int32
	ejected     atomic.Bool
}

// Ejected reports whether the health checker currently has the peer
// ejected (always false without a HealthConfig).
func (c *Client) Ejected() bool { return c.hs.ejected.Load() }

// noteSuccess records a completed round trip: the failure streak resets.
func (c *Client) noteSuccess() {
	if c.cfg.Health == nil {
		return
	}
	c.hs.consecFails.Store(0)
}

// noteFailure records a connection-level failure and opens the breaker at
// the threshold. Failures that say nothing about the peer's health — an
// encode-side ErrTooLarge never reaches the wire, ErrClosed is our own
// shutdown — must not be counted; callers filter them.
func (c *Client) noteFailure() {
	h := c.cfg.Health
	if h == nil {
		return
	}
	n := c.hs.consecFails.Add(1)
	if int(n) >= h.failThreshold() && c.hs.ejected.CompareAndSwap(false, true) {
		if h.OnEject != nil {
			h.OnEject()
		}
		go c.probeLoop()
	}
}

// probeLoop re-dials the ejected peer until a dial succeeds (readmit) or
// the client closes. One loop runs per ejection; CompareAndSwap in
// noteFailure guarantees that.
func (c *Client) probeLoop() {
	h := c.cfg.Health
	ticker := time.NewTicker(h.probeInterval())
	defer ticker.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-ticker.C:
		}
		if h.OnProbe != nil {
			h.OnProbe()
		}
		conn, err := c.cfg.Network.Dial(c.cfg.Addr)
		if err != nil {
			continue
		}
		conn.Close()
		c.hs.consecFails.Store(0)
		c.hs.ejected.Store(false)
		if h.OnReadmit != nil {
			h.OnReadmit()
		}
		return
	}
}
