package rpc

import (
	"sync/atomic"

	"pvfscache/internal/wire"
)

// Lease owns one pooled frame buffer whose bytes a zero-copy-decoded
// message's payload fields alias (see wire.ReadFrameAliased). Whoever ends
// up holding the last alias must call Release exactly when that alias
// dies; the buffer then returns to the frame pool for the next request.
// Releasing early is the failure mode zero-copy introduces — a recycled
// buffer would be overwritten under a live alias — so debug builds can
// enable poison-on-release (SetLeasePoison) to make any such bug read an
// unmistakable pattern instead of stale-but-plausible bytes.
type Lease struct {
	buf      []byte
	released atomic.Bool
}

// newLease wraps a payload buffer from wire.ReadFrameAliased; nil buffers
// (no alias retained) yield a nil lease, whose Release is a no-op.
func newLease(buf []byte) *Lease {
	if buf == nil {
		return nil
	}
	return &Lease{buf: buf}
}

// Release returns the leased frame buffer to the pool. It is idempotent
// and nil-safe; after the first call every alias into the buffer is dead.
func (l *Lease) Release() {
	if l == nil || l.released.Swap(true) {
		return
	}
	wire.ReleasePayload(l.buf)
}

// SetLeasePoison toggles the lease protocol's debug mode: every released
// frame buffer is overwritten with wire.PoisonByte before recycling, so a
// payload alias used after its lease was released reads poison (and the
// race detector flags the concurrent reuse). Tests enable it around
// zero-copy lifetime storms.
func SetLeasePoison(on bool) { wire.SetPoisonReleased(on) }
