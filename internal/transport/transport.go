// Package transport abstracts the byte-stream connections the system runs
// over. The live cluster uses TCP; tests and in-process examples use an
// in-memory network with identical semantics (ordered, reliable, duplex
// byte streams). The cache module interposes on these connections exactly
// where the paper's kernel module interposes on socket calls.
package transport

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
)

// Conn is an ordered, reliable duplex byte stream.
type Conn interface {
	io.Reader
	io.Writer
	io.Closer
}

// Listener accepts inbound connections on one address.
type Listener interface {
	Accept() (Conn, error)
	Close() error
	// Addr returns the address peers should dial, which may differ from
	// the requested address (e.g. ":0" resolves to a concrete port).
	Addr() string
}

// Network can both listen and dial. One Network value represents one
// interconnect (a TCP stack, or one in-memory fabric).
type Network interface {
	Listen(addr string) (Listener, error)
	Dial(addr string) (Conn, error)
}

// ErrClosed is returned by operations on closed listeners and connections.
var ErrClosed = errors.New("transport: closed")

// --- TCP ---

// TCPNetwork implements Network over the operating system's TCP stack.
type TCPNetwork struct{}

// NewTCP returns a TCP-backed network.
func NewTCP() *TCPNetwork { return &TCPNetwork{} }

// Listen opens a TCP listener on addr (host:port; use ":0" for an ephemeral
// port).
func (*TCPNetwork) Listen(addr string) (Listener, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &tcpListener{l: l}, nil
}

// Dial connects to a TCP address.
func (*TCPNetwork) Dial(addr string) (Conn, error) {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	if tc, ok := c.(*net.TCPConn); ok {
		// The protocol is request/response with small framed messages;
		// disable Nagle as PVFS does.
		_ = tc.SetNoDelay(true)
	}
	return c, nil
}

type tcpListener struct{ l net.Listener }

func (t *tcpListener) Accept() (Conn, error) {
	c, err := t.l.Accept()
	if err != nil {
		return nil, err
	}
	if tc, ok := c.(*net.TCPConn); ok {
		_ = tc.SetNoDelay(true)
	}
	return c, nil
}

func (t *tcpListener) Close() error { return t.l.Close() }
func (t *tcpListener) Addr() string { return t.l.Addr().String() }

// --- in-memory ---

// MemNetwork is an in-process Network. Addresses are arbitrary strings.
// Connections are buffered duplex pipes: writers block only when the peer's
// receive buffer (64 KB) is full, mirroring a TCP socket buffer, which keeps
// the request/response and background-flush traffic deadlock-free.
type MemNetwork struct {
	mu        sync.Mutex
	listeners map[string]*memListener
	nextAuto  int
}

// NewMem returns an empty in-memory network.
func NewMem() *MemNetwork {
	return &MemNetwork{listeners: make(map[string]*memListener)}
}

// Listen registers a listener on addr. An empty addr or ":0" suffix
// allocates a unique address.
func (n *MemNetwork) Listen(addr string) (Listener, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if addr == "" || addr == ":0" {
		n.nextAuto++
		addr = fmt.Sprintf("mem:%d", n.nextAuto)
	}
	if _, exists := n.listeners[addr]; exists {
		return nil, fmt.Errorf("transport: address %q in use", addr)
	}
	l := &memListener{net: n, addr: addr}
	l.cond = sync.NewCond(&l.mu)
	n.listeners[addr] = l
	return l, nil
}

// Dial connects to a registered listener.
func (n *MemNetwork) Dial(addr string) (Conn, error) {
	n.mu.Lock()
	l, ok := n.listeners[addr]
	n.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("transport: connection refused to %q", addr)
	}
	client, server := Pipe()
	if err := l.enqueue(server); err != nil {
		return nil, err
	}
	return client, nil
}

func (n *MemNetwork) remove(addr string) {
	n.mu.Lock()
	delete(n.listeners, addr)
	n.mu.Unlock()
}

// memBacklog bounds the pending-accept queue, like a socket backlog.
const memBacklog = 16

type memListener struct {
	net    *MemNetwork
	addr   string
	mu     sync.Mutex
	cond   *sync.Cond
	queue  []Conn
	closed bool
}

func (l *memListener) Accept() (Conn, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for len(l.queue) == 0 && !l.closed {
		l.cond.Wait()
	}
	if l.closed {
		return nil, ErrClosed
	}
	c := l.queue[0]
	l.queue = l.queue[1:]
	l.cond.Broadcast() // room freed: wake dialers blocked on a full backlog
	return c, nil
}

// enqueue hands a dialed server half to the accept queue, blocking while
// the backlog is full. The closed check and the append happen under one
// lock, so a conn is either queued before Close (which then resets it)
// or refused — never orphaned.
func (l *memListener) enqueue(server Conn) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	for len(l.queue) >= memBacklog && !l.closed {
		l.cond.Wait()
	}
	if l.closed {
		return ErrClosed
	}
	l.queue = append(l.queue, server)
	l.cond.Broadcast()
	return nil
}

func (l *memListener) Close() error {
	l.mu.Lock()
	if !l.closed {
		l.closed = true
		// Reset the backlog, as a TCP listener close does: dialers that
		// already "connected" see errors on use rather than a silent hang.
		for _, c := range l.queue {
			c.Close()
		}
		l.queue = nil
		l.net.remove(l.addr)
		l.cond.Broadcast()
	}
	l.mu.Unlock()
	return nil
}

func (l *memListener) Addr() string { return l.addr }

// Pipe returns two connected in-memory Conns. Bytes written to one side are
// readable from the other. Each direction has an independent 64 KB buffer.
func Pipe() (Conn, Conn) {
	ab := newHalf()
	ba := newHalf()
	return &pipeConn{r: ba, w: ab}, &pipeConn{r: ab, w: ba}
}

const pipeBufSize = 64 << 10

// half is one direction of a pipe: a bounded byte queue over a single
// fixed backing array. buf is the window of unread bytes within arr; it
// slides forward as the reader drains and snaps back to the start of arr
// whenever it empties (or is compacted when a write needs the freed
// prefix), so steady-state traffic never allocates — one 64 KB array
// serves the connection for its lifetime, like a real socket buffer.
type half struct {
	mu     sync.Mutex
	cond   *sync.Cond
	arr    []byte // backing storage, allocated once
	buf    []byte // unread bytes: a subslice of arr
	closed bool
}

func newHalf() *half {
	h := &half{arr: make([]byte, pipeBufSize)}
	h.buf = h.arr[:0]
	h.cond = sync.NewCond(&h.mu)
	return h
}

func (h *half) write(p []byte) (int, error) {
	total := 0
	for len(p) > 0 {
		h.mu.Lock()
		for len(h.buf) >= pipeBufSize && !h.closed {
			h.cond.Wait()
		}
		if h.closed {
			h.mu.Unlock()
			return total, ErrClosed
		}
		room := pipeBufSize - len(h.buf)
		n := len(p)
		if n > room {
			n = room
		}
		if cap(h.buf)-len(h.buf) < n {
			// The unread window sits too far into arr to hold n more
			// bytes: slide it back to the start (overlap-safe copy).
			m := copy(h.arr, h.buf)
			h.buf = h.arr[:m]
		}
		h.buf = append(h.buf, p[:n]...)
		h.cond.Broadcast()
		h.mu.Unlock()
		p = p[n:]
		total += n
	}
	return total, nil
}

func (h *half) read(p []byte) (int, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	for len(h.buf) == 0 && !h.closed {
		h.cond.Wait()
	}
	if len(h.buf) == 0 {
		return 0, io.EOF
	}
	n := copy(p, h.buf)
	h.buf = h.buf[n:]
	if len(h.buf) == 0 {
		h.buf = h.arr[:0] // empty: recycle the array from the top
	}
	h.cond.Broadcast()
	return n, nil
}

func (h *half) close() {
	h.mu.Lock()
	h.closed = true
	h.cond.Broadcast()
	h.mu.Unlock()
}

type pipeConn struct {
	r, w      *half
	closeOnce sync.Once
}

func (c *pipeConn) Read(p []byte) (int, error)  { return c.r.read(p) }
func (c *pipeConn) Write(p []byte) (int, error) { return c.w.write(p) }

func (c *pipeConn) Close() error {
	c.closeOnce.Do(func() {
		c.w.close()
		c.r.close()
	})
	return nil
}
