package transport

import (
	"bytes"
	"io"
	"sync"
	"testing"
)

func testNetwork(t *testing.T, n Network) {
	t.Helper()
	l, err := n.Listen(":0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	defer l.Close()

	done := make(chan error, 1)
	go func() {
		c, err := l.Accept()
		if err != nil {
			done <- err
			return
		}
		defer c.Close()
		buf := make([]byte, 5)
		if _, err := io.ReadFull(c, buf); err != nil {
			done <- err
			return
		}
		_, err = c.Write(append([]byte("echo:"), buf...))
		done <- err
	}()

	c, err := n.Dial(l.Addr())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()
	if _, err := c.Write([]byte("hello")); err != nil {
		t.Fatalf("write: %v", err)
	}
	buf := make([]byte, 10)
	if _, err := io.ReadFull(c, buf); err != nil {
		t.Fatalf("read: %v", err)
	}
	if string(buf) != "echo:hello" {
		t.Errorf("got %q", buf)
	}
	if err := <-done; err != nil {
		t.Fatalf("server: %v", err)
	}
}

func TestTCPNetwork(t *testing.T)     { testNetwork(t, NewTCP()) }
func TestMemNetworkEcho(t *testing.T) { testNetwork(t, NewMem()) }

func TestMemDialUnknownAddr(t *testing.T) {
	n := NewMem()
	if _, err := n.Dial("mem:nowhere"); err == nil {
		t.Fatal("expected connection refused")
	}
}

func TestMemListenDuplicate(t *testing.T) {
	n := NewMem()
	l, err := n.Listen("svc")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if _, err := n.Listen("svc"); err == nil {
		t.Fatal("expected address-in-use error")
	}
}

func TestMemListenerCloseUnblocksAccept(t *testing.T) {
	n := NewMem()
	l, err := n.Listen("svc")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := l.Accept()
		done <- err
	}()
	l.Close()
	if err := <-done; err != ErrClosed {
		t.Fatalf("accept returned %v, want ErrClosed", err)
	}
	// Dialing a closed listener fails.
	if _, err := n.Dial("svc"); err == nil {
		t.Fatal("dial after close should fail")
	}
	// The address is free again.
	l2, err := n.Listen("svc")
	if err != nil {
		t.Fatalf("relisten: %v", err)
	}
	l2.Close()
}

func TestMemAutoAddressesUnique(t *testing.T) {
	n := NewMem()
	l1, err := n.Listen("")
	if err != nil {
		t.Fatal(err)
	}
	defer l1.Close()
	l2, err := n.Listen(":0")
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if l1.Addr() == l2.Addr() {
		t.Errorf("auto addresses collide: %q", l1.Addr())
	}
}

func TestPipeBidirectional(t *testing.T) {
	a, b := Pipe()
	defer a.Close()
	defer b.Close()

	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		a.Write([]byte("from-a"))
	}()
	go func() {
		defer wg.Done()
		b.Write([]byte("from-b"))
	}()
	bufA := make([]byte, 6)
	bufB := make([]byte, 6)
	if _, err := io.ReadFull(a, bufA); err != nil {
		t.Fatal(err)
	}
	if _, err := io.ReadFull(b, bufB); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if string(bufA) != "from-b" || string(bufB) != "from-a" {
		t.Errorf("got %q / %q", bufA, bufB)
	}
}

func TestPipeLargeTransferExceedingBuffer(t *testing.T) {
	a, b := Pipe()
	defer a.Close()
	defer b.Close()
	payload := bytes.Repeat([]byte{0xC7}, pipeBufSize*3+123)

	go func() {
		a.Write(payload)
		a.Close()
	}()
	got, err := io.ReadAll(b)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("got %d bytes, want %d", len(got), len(payload))
	}
}

func TestPipeCloseGivesEOFThenErrClosed(t *testing.T) {
	a, b := Pipe()
	a.Write([]byte("tail"))
	a.Close()

	buf := make([]byte, 4)
	if _, err := io.ReadFull(b, buf); err != nil {
		t.Fatalf("draining buffered data: %v", err)
	}
	if _, err := b.Read(buf); err != io.EOF {
		t.Fatalf("read after close = %v, want EOF", err)
	}
	if _, err := b.Write([]byte("x")); err != ErrClosed {
		// write into closed peer direction: b's write half is a's read half,
		// which a.Close closed.
		t.Fatalf("write after close = %v, want ErrClosed", err)
	}
}

func TestPipeConcurrentWritersNoCorruption(t *testing.T) {
	// Many goroutines each write a distinct 64-byte record; the reader
	// must see exactly writers*records records (frame integrity is the
	// caller's job, byte count is the pipe's).
	a, b := Pipe()
	const writers, records, recSize = 8, 50, 64
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(id byte) {
			defer wg.Done()
			rec := bytes.Repeat([]byte{id}, recSize)
			for i := 0; i < records; i++ {
				if _, err := a.Write(rec); err != nil {
					t.Errorf("write: %v", err)
					return
				}
			}
		}(byte(w))
	}
	go func() {
		wg.Wait()
		a.Close()
	}()
	got, err := io.ReadAll(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != writers*records*recSize {
		t.Fatalf("got %d bytes, want %d", len(got), writers*records*recSize)
	}
}
