package transport

import (
	"bytes"
	"io"
	"sync"
	"testing"
)

func testNetwork(t *testing.T, n Network) {
	t.Helper()
	l, err := n.Listen(":0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	defer l.Close()

	done := make(chan error, 1)
	go func() {
		c, err := l.Accept()
		if err != nil {
			done <- err
			return
		}
		defer c.Close()
		buf := make([]byte, 5)
		if _, err := io.ReadFull(c, buf); err != nil {
			done <- err
			return
		}
		_, err = c.Write(append([]byte("echo:"), buf...))
		done <- err
	}()

	c, err := n.Dial(l.Addr())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()
	if _, err := c.Write([]byte("hello")); err != nil {
		t.Fatalf("write: %v", err)
	}
	buf := make([]byte, 10)
	if _, err := io.ReadFull(c, buf); err != nil {
		t.Fatalf("read: %v", err)
	}
	if string(buf) != "echo:hello" {
		t.Errorf("got %q", buf)
	}
	if err := <-done; err != nil {
		t.Fatalf("server: %v", err)
	}
}

func TestTCPNetwork(t *testing.T)     { testNetwork(t, NewTCP()) }
func TestMemNetworkEcho(t *testing.T) { testNetwork(t, NewMem()) }

func TestMemDialUnknownAddr(t *testing.T) {
	n := NewMem()
	if _, err := n.Dial("mem:nowhere"); err == nil {
		t.Fatal("expected connection refused")
	}
}

func TestMemListenDuplicate(t *testing.T) {
	n := NewMem()
	l, err := n.Listen("svc")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if _, err := n.Listen("svc"); err == nil {
		t.Fatal("expected address-in-use error")
	}
}

func TestMemListenerCloseUnblocksAccept(t *testing.T) {
	n := NewMem()
	l, err := n.Listen("svc")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := l.Accept()
		done <- err
	}()
	l.Close()
	if err := <-done; err != ErrClosed {
		t.Fatalf("accept returned %v, want ErrClosed", err)
	}
	// Dialing a closed listener fails.
	if _, err := n.Dial("svc"); err == nil {
		t.Fatal("dial after close should fail")
	}
	// The address is free again.
	l2, err := n.Listen("svc")
	if err != nil {
		t.Fatalf("relisten: %v", err)
	}
	l2.Close()
}

func TestMemDialRacingListenerClose(t *testing.T) {
	// Dial racing the listener's Close must resolve like TCP: the dial
	// fails, or it succeeds and the conn is live end-to-end, or it
	// succeeds against the closing backlog and the conn is reset —
	// erroring on first use. It must never hand out a conn that silently
	// hangs. Run many close/dial races.
	n := NewMem()
	for i := 0; i < 200; i++ {
		l, err := n.Listen("svc")
		if err != nil {
			t.Fatal(err)
		}
		accepted := make(chan Conn, 1)
		go func() {
			c, err := l.Accept()
			if err == nil {
				accepted <- c
			}
			close(accepted)
		}()
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			l.Close()
		}()
		c, err := n.Dial("svc")
		wg.Wait()
		srv, ok := <-accepted
		if err == nil {
			_, werr := c.Write([]byte("ping"))
			switch {
			case ok && werr == nil:
				// Live end-to-end: the peer must see the bytes.
				buf := make([]byte, 4)
				if _, err := io.ReadFull(srv, buf); err != nil {
					t.Fatalf("iter %d: server read: %v", i, err)
				}
			case !ok && werr != nil:
				// Backlog reset by Close — dial "succeeded" but the conn
				// errors on use, like a RST TCP connection. Fine.
			case !ok && werr == nil:
				t.Fatalf("iter %d: dial succeeded, accept saw nothing, yet the conn writes cleanly", i)
			}
			c.Close()
		}
		if ok {
			srv.Close()
		}
	}
}

func TestMemConcurrentListenSameAddr(t *testing.T) {
	// N goroutines race to claim one address: exactly one wins, the rest
	// get address-in-use, and after the winner closes the address is
	// claimable again.
	n := NewMem()
	const racers = 16
	var wg sync.WaitGroup
	results := make(chan Listener, racers)
	for i := 0; i < racers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if l, err := n.Listen("contested"); err == nil {
				results <- l
			}
		}()
	}
	wg.Wait()
	close(results)
	var winners []Listener
	for l := range results {
		winners = append(winners, l)
	}
	if len(winners) != 1 {
		t.Fatalf("%d listeners claimed the same address, want exactly 1", len(winners))
	}
	winners[0].Close()
	l, err := n.Listen("contested")
	if err != nil {
		t.Fatalf("relisten after winner closed: %v", err)
	}
	l.Close()
}

func TestMemConnCloseRacingWrite(t *testing.T) {
	// A writer hammering a conn while the peer (or the writer itself)
	// closes it must settle into a persistent error — never a panic, a
	// hang, or a write that reports success after ErrClosed.
	for i := 0; i < 50; i++ {
		a, b := Pipe()
		go io.Copy(io.Discard, b)
		errs := make(chan error, 1)
		go func() {
			var failed bool
			for j := 0; j < 1000; j++ {
				_, err := a.Write([]byte("racing-payload"))
				if failed && err == nil {
					errs <- io.ErrShortWrite // stand-in: success after failure
					return
				}
				if err != nil {
					failed = true
				}
			}
			if !failed {
				errs <- nil
				return
			}
			errs <- ErrClosed
		}()
		if i%2 == 0 {
			b.Close() // peer closes the read half under the writer
		} else {
			a.Close() // writer's own conn closed under it
		}
		switch err := <-errs; err {
		case nil, ErrClosed:
		default:
			t.Fatalf("iter %d: write succeeded after a prior close error", i)
		}
		a.Close()
		b.Close()
	}
}

func TestMemAutoAddressesUnique(t *testing.T) {
	n := NewMem()
	l1, err := n.Listen("")
	if err != nil {
		t.Fatal(err)
	}
	defer l1.Close()
	l2, err := n.Listen(":0")
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if l1.Addr() == l2.Addr() {
		t.Errorf("auto addresses collide: %q", l1.Addr())
	}
}

func TestPipeBidirectional(t *testing.T) {
	a, b := Pipe()
	defer a.Close()
	defer b.Close()

	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		a.Write([]byte("from-a"))
	}()
	go func() {
		defer wg.Done()
		b.Write([]byte("from-b"))
	}()
	bufA := make([]byte, 6)
	bufB := make([]byte, 6)
	if _, err := io.ReadFull(a, bufA); err != nil {
		t.Fatal(err)
	}
	if _, err := io.ReadFull(b, bufB); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if string(bufA) != "from-b" || string(bufB) != "from-a" {
		t.Errorf("got %q / %q", bufA, bufB)
	}
}

func TestPipeLargeTransferExceedingBuffer(t *testing.T) {
	a, b := Pipe()
	defer a.Close()
	defer b.Close()
	payload := bytes.Repeat([]byte{0xC7}, pipeBufSize*3+123)

	go func() {
		a.Write(payload)
		a.Close()
	}()
	got, err := io.ReadAll(b)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("got %d bytes, want %d", len(got), len(payload))
	}
}

func TestPipeCloseGivesEOFThenErrClosed(t *testing.T) {
	a, b := Pipe()
	a.Write([]byte("tail"))
	a.Close()

	buf := make([]byte, 4)
	if _, err := io.ReadFull(b, buf); err != nil {
		t.Fatalf("draining buffered data: %v", err)
	}
	if _, err := b.Read(buf); err != io.EOF {
		t.Fatalf("read after close = %v, want EOF", err)
	}
	if _, err := b.Write([]byte("x")); err != ErrClosed {
		// write into closed peer direction: b's write half is a's read half,
		// which a.Close closed.
		t.Fatalf("write after close = %v, want ErrClosed", err)
	}
}

func TestPipeConcurrentWritersNoCorruption(t *testing.T) {
	// Many goroutines each write a distinct 64-byte record; the reader
	// must see exactly writers*records records (frame integrity is the
	// caller's job, byte count is the pipe's).
	a, b := Pipe()
	const writers, records, recSize = 8, 50, 64
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(id byte) {
			defer wg.Done()
			rec := bytes.Repeat([]byte{id}, recSize)
			for i := 0; i < records; i++ {
				if _, err := a.Write(rec); err != nil {
					t.Errorf("write: %v", err)
					return
				}
			}
		}(byte(w))
	}
	go func() {
		wg.Wait()
		a.Close()
	}()
	got, err := io.ReadAll(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != writers*records*recSize {
		t.Fatalf("got %d bytes, want %d", len(got), writers*records*recSize)
	}
}
