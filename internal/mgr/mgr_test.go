package mgr

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"testing/quick"

	"pvfscache/internal/metrics"
	"pvfscache/internal/transport"
	"pvfscache/internal/wire"
)

func newServer(t *testing.T) *Server {
	t.Helper()
	return New(4, metrics.NewRegistry())
}

func TestCreateAssignsDistinctIDs(t *testing.T) {
	s := newServer(t)
	seen := make(map[uint64]bool)
	for i := 0; i < 10; i++ {
		id, _, err := s.Create(fmt.Sprintf("f%d", i), 0, 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		if seen[uint64(id)] {
			t.Fatalf("duplicate id %d", id)
		}
		seen[uint64(id)] = true
	}
}

func TestCreateDefaults(t *testing.T) {
	s := newServer(t)
	_, meta, err := s.Create("f", 0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if meta.PCount != 4 {
		t.Errorf("pcount = %d, want all 4 iods", meta.PCount)
	}
	if meta.SSize != DefaultStripSize {
		t.Errorf("ssize = %d", meta.SSize)
	}
	if meta.Size != 0 {
		t.Errorf("new file size = %d", meta.Size)
	}
}

func TestCreateClampsParameters(t *testing.T) {
	s := newServer(t)
	_, meta, err := s.Create("f", 9, 99, 8192)
	if err != nil {
		t.Fatal(err)
	}
	if meta.Base != 9%4 {
		t.Errorf("base = %d", meta.Base)
	}
	if meta.PCount != 4 {
		t.Errorf("pcount = %d (should clamp to iod count)", meta.PCount)
	}
	if meta.SSize != 8192 {
		t.Errorf("ssize = %d", meta.SSize)
	}
}

func TestCreateDuplicateAndEmptyName(t *testing.T) {
	s := newServer(t)
	if _, _, err := s.Create("f", 0, 0, 0); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Create("f", 0, 0, 0); !errors.Is(err, wire.ErrExists) {
		t.Errorf("duplicate create: %v", err)
	}
	if _, _, err := s.Create("", 0, 0, 0); !errors.Is(err, wire.ErrBadRequest) {
		t.Errorf("empty name: %v", err)
	}
}

func TestOpenStatUnlink(t *testing.T) {
	s := newServer(t)
	id, _, err := s.Create("f", 1, 2, 4096)
	if err != nil {
		t.Fatal(err)
	}
	oid, meta, err := s.Open("f")
	if err != nil || oid != id {
		t.Fatalf("open: id=%d err=%v", oid, err)
	}
	if meta.PCount != 2 || meta.Base != 1 {
		t.Errorf("meta = %+v", meta)
	}
	if _, err := s.Stat(id); err != nil {
		t.Errorf("stat: %v", err)
	}
	if err := s.Unlink("f"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Open("f"); !errors.Is(err, wire.ErrNotFound) {
		t.Errorf("open after unlink: %v", err)
	}
	if _, err := s.Stat(id); !errors.Is(err, wire.ErrNotFound) {
		t.Errorf("stat after unlink: %v", err)
	}
	if err := s.Unlink("f"); !errors.Is(err, wire.ErrNotFound) {
		t.Errorf("double unlink: %v", err)
	}
}

func TestSetSizeMonotonic(t *testing.T) {
	s := newServer(t)
	id, _, _ := s.Create("f", 0, 0, 0)
	if err := s.SetSize(id, 100); err != nil {
		t.Fatal(err)
	}
	// Shrinking is ignored: concurrent extenders must not regress.
	if err := s.SetSize(id, 50); err != nil {
		t.Fatal(err)
	}
	meta, _ := s.Stat(id)
	if meta.Size != 100 {
		t.Errorf("size = %d, want 100", meta.Size)
	}
	if err := s.SetSize(id, -1); !errors.Is(err, wire.ErrBadRequest) {
		t.Errorf("negative size: %v", err)
	}
	if err := s.SetSize(999, 10); !errors.Is(err, wire.ErrNotFound) {
		t.Errorf("missing file: %v", err)
	}
}

func TestListSorted(t *testing.T) {
	s := newServer(t)
	for _, n := range []string{"zebra", "alpha", "mid"} {
		if _, _, err := s.Create(n, 0, 0, 0); err != nil {
			t.Fatal(err)
		}
	}
	got := s.List()
	want := []string{"alpha", "mid", "zebra"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("list = %v", got)
		}
	}
}

func TestConcurrentCreates(t *testing.T) {
	s := newServer(t)
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				if _, _, err := s.Create(fmt.Sprintf("g%d-f%d", g, i), 0, 0, 0); err != nil {
					errs <- err
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got := len(s.List()); got != 64 {
		t.Errorf("files = %d, want 64", got)
	}
}

// Property: create→open round-trips metadata for arbitrary striping
// parameters.
func TestCreateOpenProperty(t *testing.T) {
	s := New(7, nil)
	i := 0
	f := func(base, pcount, ssize uint32) bool {
		i++
		name := fmt.Sprintf("p%d", i)
		id, cmeta, err := s.Create(name, base, pcount, ssize)
		if err != nil {
			return false
		}
		oid, ometa, err := s.Open(name)
		if err != nil || oid != id {
			return false
		}
		if ometa != cmeta {
			return false
		}
		// Invariants: base within range, pcount in [1, iods], ssize set.
		return ometa.Base < 7 && ometa.PCount >= 1 && ometa.PCount <= 7 && ometa.SSize > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestServeOverNetwork(t *testing.T) {
	net := transport.NewMem()
	l, err := net.Listen("mgr")
	if err != nil {
		t.Fatal(err)
	}
	s := newServer(t)
	go s.Serve(l)
	defer l.Close()

	conn, err := net.Dial("mgr")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	call := func(req wire.Message) wire.Message {
		t.Helper()
		if err := wire.WriteMessage(conn, req); err != nil {
			t.Fatal(err)
		}
		resp, err := wire.ReadMessage(conn)
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	cr := call(&wire.Create{Name: "net-file", SSize: 4096}).(*wire.CreateResp)
	if cr.Status != wire.StatusOK {
		t.Fatalf("create status %d", cr.Status)
	}
	or := call(&wire.Open{Name: "net-file"}).(*wire.OpenResp)
	if or.Status != wire.StatusOK || or.File != cr.File {
		t.Fatalf("open: %+v", or)
	}
	sm := call(&wire.SetSize{File: cr.File, Size: 12345}).(*wire.StatusMsg)
	if sm.Status != wire.StatusOK {
		t.Fatalf("setsize status %d", sm.Status)
	}
	sr := call(&wire.Stat{File: cr.File}).(*wire.StatResp)
	if sr.Meta.Size != 12345 {
		t.Fatalf("stat size %d", sr.Meta.Size)
	}
	lr := call(&wire.List{}).(*wire.ListResp)
	if len(lr.Names) != 1 || lr.Names[0] != "net-file" {
		t.Fatalf("list %v", lr.Names)
	}
	um := call(&wire.Unlink{Name: "net-file"}).(*wire.StatusMsg)
	if um.Status != wire.StatusOK {
		t.Fatalf("unlink status %d", um.Status)
	}
	or2 := call(&wire.Open{Name: "net-file"}).(*wire.OpenResp)
	if or2.Status != wire.StatusNotFound {
		t.Fatalf("open after unlink status %d", or2.Status)
	}
}

func TestServeDropsConnOnGarbage(t *testing.T) {
	net := transport.NewMem()
	l, err := net.Listen("mgr")
	if err != nil {
		t.Fatal(err)
	}
	s := newServer(t)
	go s.Serve(l)
	defer l.Close()

	conn, err := net.Dial("mgr")
	if err != nil {
		t.Fatal(err)
	}
	// A data-port message is not served by mgr: connection closes.
	if err := wire.WriteMessage(conn, &wire.Read{File: 1, Length: 4}); err != nil {
		t.Fatal(err)
	}
	if _, err := wire.ReadMessage(conn); err == nil {
		t.Fatal("expected connection drop on non-mgr message")
	}
	conn.Close()
	// The server keeps serving new connections.
	conn2, err := net.Dial("mgr")
	if err != nil {
		t.Fatal(err)
	}
	defer conn2.Close()
	if err := wire.WriteMessage(conn2, &wire.List{}); err != nil {
		t.Fatal(err)
	}
	if _, err := wire.ReadMessage(conn2); err != nil {
		t.Fatalf("server died after bad client: %v", err)
	}
}

func TestNewPanicsOnZeroIODs(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	New(0, nil)
}
