// Package mgr implements the PVFS metadata server. A single mgr instance
// runs per cluster; libpvfs sends it all metadata traffic (create, open,
// stat, unlink, size updates). Data traffic never touches mgr — and, as in
// the paper, the cache module never caches metadata: every metadata request
// goes to the server.
package mgr

import (
	"fmt"
	"log"
	"sort"
	"sync"

	"pvfscache/internal/blockio"
	"pvfscache/internal/membership"
	"pvfscache/internal/metrics"
	"pvfscache/internal/rpc"
	"pvfscache/internal/transport"
	"pvfscache/internal/wire"
)

// DefaultStripSize is the strip size assigned when a create request leaves
// it zero: 64 KB, PVFS's historical default.
const DefaultStripSize = 64 << 10

// Server is the metadata server. Construct with New, then Serve on a
// listener (live mode) or call the exported Create/Open/... methods
// directly (in-process mode: the simulator and tests skip the socket).
type Server struct {
	iodCount uint32
	reg      *metrics.Registry
	members  *membership.Tracker

	mu     sync.Mutex
	byName map[string]*entry
	byID   map[blockio.FileID]*entry
	nextID blockio.FileID
}

type entry struct {
	name string
	id   blockio.FileID
	meta wire.FileMeta
}

// New returns a metadata server for a cluster with iodCount data servers.
// reg may be nil, in which case a private registry is used.
func New(iodCount int, reg *metrics.Registry) *Server {
	if iodCount <= 0 {
		panic("mgr: iodCount must be positive")
	}
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	s := &Server{
		iodCount: uint32(iodCount),
		reg:      reg,
		byName:   make(map[string]*entry),
		byID:     make(map[blockio.FileID]*entry),
		nextID:   1,
	}
	s.members = membership.NewTracker(func(uint64) {
		s.reg.Counter("membership.epoch_bumps").Inc()
	})
	return s
}

// Members is the mgr's authoritative global-cache membership view: nodes
// Join/Leave it over the wire (see handle) and in-process callers may use
// it directly.
func (s *Server) Members() *membership.Tracker { return s.members }

// IODCount returns the number of data servers in the cluster.
func (s *Server) IODCount() int { return int(s.iodCount) }

// Create adds a file to the namespace. A zero PCount stripes over every
// iod; a zero SSize uses DefaultStripSize. Base is taken modulo the iod
// count. It fails with wire.ErrExists if the name is taken.
func (s *Server) Create(name string, base, pcount, ssize uint32) (blockio.FileID, wire.FileMeta, error) {
	if name == "" {
		return 0, wire.FileMeta{}, fmt.Errorf("%w: empty name", wire.ErrBadRequest)
	}
	if pcount == 0 || pcount > s.iodCount {
		pcount = s.iodCount
	}
	if ssize == 0 {
		ssize = DefaultStripSize
	}
	base %= s.iodCount

	s.mu.Lock()
	defer s.mu.Unlock()
	if _, taken := s.byName[name]; taken {
		return 0, wire.FileMeta{}, fmt.Errorf("create %q: %w", name, wire.ErrExists)
	}
	e := &entry{
		name: name,
		id:   s.nextID,
		meta: wire.FileMeta{Base: base, PCount: pcount, SSize: ssize},
	}
	s.nextID++
	s.byName[name] = e
	s.byID[e.id] = e
	s.reg.Counter("mgr.creates").Inc()
	return e.id, e.meta, nil
}

// Open resolves a name.
func (s *Server) Open(name string) (blockio.FileID, wire.FileMeta, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.byName[name]
	if !ok {
		return 0, wire.FileMeta{}, fmt.Errorf("open %q: %w", name, wire.ErrNotFound)
	}
	s.reg.Counter("mgr.opens").Inc()
	return e.id, e.meta, nil
}

// Stat returns current metadata for a file ID.
func (s *Server) Stat(id blockio.FileID) (wire.FileMeta, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.byID[id]
	if !ok {
		return wire.FileMeta{}, fmt.Errorf("stat %d: %w", id, wire.ErrNotFound)
	}
	s.reg.Counter("mgr.stats").Inc()
	return e.meta, nil
}

// Unlink removes a name.
func (s *Server) Unlink(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.byName[name]
	if !ok {
		return fmt.Errorf("unlink %q: %w", name, wire.ErrNotFound)
	}
	delete(s.byName, name)
	delete(s.byID, e.id)
	s.reg.Counter("mgr.unlinks").Inc()
	return nil
}

// SetSize grows the recorded size of a file. Shrinking is ignored: writes
// only ever extend, and concurrent extenders must not clobber each other.
func (s *Server) SetSize(id blockio.FileID, size int64) error {
	if size < 0 {
		return fmt.Errorf("setsize %d: %w", id, wire.ErrBadRequest)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.byID[id]
	if !ok {
		return fmt.Errorf("setsize %d: %w", id, wire.ErrNotFound)
	}
	if size > e.meta.Size {
		e.meta.Size = size
	}
	return nil
}

// List returns all file names, sorted.
func (s *Server) List() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	names := make([]string, 0, len(s.byName))
	for n := range s.byName {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Serve accepts connections on l and answers metadata requests until l is
// closed, dispatching through the shared rpc server core: tagged clients
// may have several metadata requests in flight per connection.
func (s *Server) Serve(l transport.Listener) error {
	srv := rpc.NewServer(rpc.HandlerFunc(func(msg wire.Message) wire.Message {
		resp := s.handle(msg)
		if resp == nil {
			log.Printf("mgr: unexpected message %v", msg.WireType())
		}
		return resp
	}), rpc.ServerConfig{})
	return srv.Serve(l)
}

// handle dispatches one request message and returns the reply, or nil for
// message types mgr does not serve.
func (s *Server) handle(msg wire.Message) wire.Message {
	switch m := msg.(type) {
	case *wire.Create:
		id, meta, err := s.Create(m.Name, m.Base, m.PCount, m.SSize)
		return &wire.CreateResp{Status: wire.StatusFor(err), File: id, Meta: meta}
	case *wire.Open:
		id, meta, err := s.Open(m.Name)
		return &wire.OpenResp{Status: wire.StatusFor(err), File: id, Meta: meta}
	case *wire.Stat:
		meta, err := s.Stat(m.File)
		return &wire.StatResp{Status: wire.StatusFor(err), Meta: meta}
	case *wire.Unlink:
		return &wire.StatusMsg{Status: wire.StatusFor(s.Unlink(m.Name))}
	case *wire.SetSize:
		return &wire.StatusMsg{Status: wire.StatusFor(s.SetSize(m.File, m.Size))}
	case *wire.List:
		return &wire.ListResp{Status: wire.StatusOK, Names: s.List()}
	case *wire.ViewGet:
		return membership.ViewToResp(s.members.View())
	case *wire.JoinView:
		return membership.ViewToResp(s.members.Join(m.ID, m.Addr))
	case *wire.LeaveView:
		return membership.ViewToResp(s.members.Leave(m.ID))
	default:
		return nil
	}
}
