package simcluster

import (
	"fmt"
	"sort"
	"time"

	"pvfscache/internal/blockio"
	"pvfscache/internal/microbench"
	"pvfscache/internal/sim"
	"pvfscache/internal/wire"
)

// Placement maps each application instance to the cluster nodes its
// processes run on. InstanceNodes[i][k] is the node hosting process k of
// instance i; every instance must list exactly mb.Nodes entries.
type Placement struct {
	InstanceNodes [][]int
}

// SameNodes places every instance's processes on nodes 0..p-1 — the
// multiprogrammed placement of Figures 6 and 7.
func SameNodes(instances, p int) Placement {
	pl := Placement{}
	for i := 0; i < instances; i++ {
		nodes := make([]int, p)
		for k := range nodes {
			nodes[k] = k
		}
		pl.InstanceNodes = append(pl.InstanceNodes, nodes)
	}
	return pl
}

// DisjointNodes gives each instance its own p nodes — the spread placement
// of Figure 8's parallelism arm.
func DisjointNodes(instances, p int) Placement {
	pl := Placement{}
	for i := 0; i < instances; i++ {
		nodes := make([]int, p)
		for k := range nodes {
			nodes[k] = i*p + k
		}
		pl.InstanceNodes = append(pl.InstanceNodes, nodes)
	}
	return pl
}

// MaxNode returns the highest node index used.
func (pl Placement) MaxNode() int {
	max := 0
	for _, nodes := range pl.InstanceNodes {
		for _, n := range nodes {
			if n > max {
				max = n
			}
		}
	}
	return max
}

// Result summarizes one workload run.
type Result struct {
	// InstanceTimes is each instance's completion time (max over its
	// processes).
	InstanceTimes []time.Duration
	// MeanRequest is the average per-request latency across every process.
	MeanRequest time.Duration
	// Requests is the total number of application calls issued.
	Requests int
	// Hits and Misses are the node-cache counters summed over the run
	// (zero without caching).
	Hits, Misses int64
	// Joins counts requests that piggybacked on another process's
	// in-flight fetch of the same block — the other face of
	// inter-application sharing when two instances run in lockstep.
	Joins int64
}

// MaxInstanceTime returns the slowest instance's completion time — the
// "total time for the application to complete" on the paper's y-axes.
func (r Result) MaxInstanceTime() time.Duration {
	var max time.Duration
	for _, t := range r.InstanceTimes {
		if t > max {
			max = t
		}
	}
	return max
}

// Run executes the micro-benchmark described by mb on the cluster with the
// given placement and returns timing results. The cluster must have at
// least pl.MaxNode()+1 nodes. Run drives the simulation to completion.
func Run(c *Cluster, mb microbench.Params, pl Placement) (Result, error) {
	if err := mb.Validate(); err != nil {
		return Result{}, err
	}
	if len(pl.InstanceNodes) != mb.Instances {
		return Result{}, fmt.Errorf("simcluster: placement has %d instances, params %d",
			len(pl.InstanceNodes), mb.Instances)
	}
	if pl.MaxNode() >= len(c.Nodes) {
		return Result{}, fmt.Errorf("simcluster: placement needs node %d, cluster has %d nodes",
			pl.MaxNode(), len(c.Nodes))
	}

	// Create every file the workload touches. Reads run against warm
	// daemons (the dataset was produced earlier and is page-cache
	// resident); written files start cold.
	names := make([]string, 0)
	for name := range mb.Files() {
		names = append(names, name)
	}
	sort.Strings(names)
	type fh struct {
		id   blockio.FileID
		meta wire.FileMeta
	}
	handles := make(map[string]fh)
	for _, name := range names {
		id := c.CreateFile(name, mb.FileSize, mb.Read)
		fid, meta := c.Lookup(name)
		_ = id
		handles[name] = fh{id: fid, meta: meta}
	}

	res := Result{InstanceTimes: make([]time.Duration, mb.Instances)}
	var totalLatency time.Duration
	totalReqs := 0
	remaining := 0

	for inst := 0; inst < mb.Instances; inst++ {
		inst := inst
		for k, nodeID := range pl.InstanceNodes[inst] {
			k := k
			node := c.Nodes[nodeID]
			stream := mb.Stream(inst, k)
			remaining++
			c.Env.Go(fmt.Sprintf("app%d.proc%d", inst, k), func(p *sim.Proc) {
				start := c.Env.Now()
				for _, req := range stream {
					h := handles[req.File]
					t0 := c.Env.Now()
					if req.Read {
						c.Read(p, node, h.id, h.meta, req.Offset, req.Length)
					} else {
						c.Write(p, node, h.id, h.meta, req.Offset, req.Length)
					}
					totalLatency += c.Env.Now() - t0
					totalReqs++
				}
				elapsed := c.Env.Now() - start
				if elapsed > res.InstanceTimes[inst] {
					res.InstanceTimes[inst] = elapsed
				}
				remaining--
				if remaining == 0 {
					c.Finish()
				}
			})
		}
	}

	c.Env.Run()
	if remaining != 0 {
		return Result{}, fmt.Errorf("simcluster: %d processes never finished (deadlock?)", remaining)
	}
	res.Requests = totalReqs
	if totalReqs > 0 {
		res.MeanRequest = totalLatency / time.Duration(totalReqs)
	}
	snap := c.Reg.Snapshot()
	res.Hits = snap.Counters["cache.hits"]
	res.Misses = snap.Counters["cache.misses"]
	res.Joins = snap.Counters["sim.fetch_joins"]
	return res, nil
}
