package simcluster

import (
	"fmt"
	"sort"
	"time"

	"pvfscache/internal/blockio"
	"pvfscache/internal/cachemod/buffer"
	"pvfscache/internal/metrics"
	"pvfscache/internal/pvfs"
	"pvfscache/internal/sim"
	"pvfscache/internal/simdisk"
	"pvfscache/internal/wire"
)

// Cluster is one simulated system: client nodes, I/O daemons, and the hub
// joining them. Data content is not simulated — only timing and the cache
// policy state, which uses the same buffer.Manager as the live system.
type Cluster struct {
	Env     *sim.Env
	P       Params
	Caching bool
	IODs    []*IOD
	Nodes   []*Node
	Reg     *metrics.Registry

	files    map[string]fileEntry
	nextFile blockio.FileID
	nicOrder map[*sim.Resource]int
	done     bool

	zeroBlock []byte
	scratch   []byte
}

type fileEntry struct {
	id   blockio.FileID
	meta wire.FileMeta
}

// IOD is one simulated I/O daemon: a single-threaded server with a disk
// and an OS page cache, plus the flush-port peer and the per-block
// coherence directory of the paper.
type IOD struct {
	c    *Cluster
	id   int
	CPU  *sim.Resource
	NIC  *sim.Resource
	Disk *sim.Resource
	dm   *simdisk.Model

	pageCache map[blockio.BlockKey]struct{}
	pageFIFO  []blockio.BlockKey

	dir map[blockio.BlockKey]map[int]struct{} // block -> holder node ids
}

// Node is one simulated client node: a CPU, and (when caching) the shared
// cache module state: buffer manager, fetch table, flusher daemon.
type Node struct {
	c     *Cluster
	id    int
	CPU   *sim.Resource
	NIC   *sim.Resource
	Cache *buffer.Manager

	fetches   map[blockio.BlockKey]*sim.Signal
	space     *sim.Signal
	lastFlush time.Duration
	dirtyHint bool
}

// New builds a simulated cluster. With caching=false the model reproduces
// original PVFS (every request goes to the network).
func New(env *sim.Env, p Params, nIODs, nNodes int, caching bool) *Cluster {
	c := &Cluster{
		Env:       env,
		P:         p,
		Caching:   caching,
		Reg:       metrics.NewRegistry(),
		files:     make(map[string]fileEntry),
		nextFile:  1,
		nicOrder:  make(map[*sim.Resource]int),
		zeroBlock: make([]byte, p.BlockSize),
		scratch:   make([]byte, p.BlockSize),
	}
	for i := 0; i < nIODs; i++ {
		io := &IOD{
			c:    c,
			id:   i,
			CPU:  env.NewResource(fmt.Sprintf("iod%d.cpu", i), 1),
			NIC:  env.NewResource(fmt.Sprintf("iod%d.nic", i), 1),
			Disk: env.NewResource(fmt.Sprintf("iod%d.disk", i), 1),
			dm: &simdisk.Model{
				AvgSeek:      p.DiskSeek,
				AvgRotation:  p.DiskRotation,
				TransferRate: p.DiskRate,
			},
			pageCache: make(map[blockio.BlockKey]struct{}),
			dir:       make(map[blockio.BlockKey]map[int]struct{}),
		}
		c.nicOrder[io.NIC] = len(c.nicOrder)
		c.IODs = append(c.IODs, io)
	}
	for n := 0; n < nNodes; n++ {
		node := &Node{
			c:       c,
			id:      n,
			CPU:     env.NewResource(fmt.Sprintf("node%d.cpu", n), 1),
			NIC:     env.NewResource(fmt.Sprintf("node%d.nic", n), 1),
			fetches: make(map[blockio.BlockKey]*sim.Signal),
			space:   env.NewSignal(),
		}
		if caching {
			shards := p.CacheShards
			if shards == 0 {
				shards = 1 // keep zero-valued Params deterministic
			}
			node.Cache = buffer.New(buffer.Config{
				BlockSize: p.BlockSize,
				Capacity:  p.CacheBlocks,
				Shards:    shards,
				LowWater:  p.LowWater,
				HighWater: p.HighWater,
				Policy:    p.Policy,
				GhostFrac: p.GhostFrac,
				Registry:  c.Reg,
			})
			env.Go(fmt.Sprintf("node%d.flusher", n), node.flusherDaemon)
		}
		c.nicOrder[node.NIC] = len(c.nicOrder)
		c.Nodes = append(c.Nodes, node)
	}
	return c
}

// Finish marks the workload complete so the background daemons exit and
// Env.Run can terminate.
func (c *Cluster) Finish() { c.done = true }

// CreateFile registers a file striped over all iods and returns its ID.
// warm pre-loads the daemons' page caches with the file's blocks,
// representing a dataset written earlier and still memory-resident (the
// steady state the paper measures reads in).
func (c *Cluster) CreateFile(name string, size int64, warm bool) blockio.FileID {
	if fe, ok := c.files[name]; ok {
		return fe.id
	}
	id := c.nextFile
	c.nextFile++
	meta := wire.FileMeta{
		Size:   size,
		Base:   0,
		PCount: uint32(len(c.IODs)),
		SSize:  c.P.StripSize,
	}
	c.files[name] = fileEntry{id: id, meta: meta}
	if warm {
		bs := int64(c.P.BlockSize)
		for off := int64(0); off < size; off += bs {
			pieces := c.pieces(id, meta, off, bs)
			for _, pc := range pieces {
				key := blockio.BlockKey{File: id, Index: pc.Ext.Offset / bs}
				c.IODs[pc.IOD].pageInsert(key)
			}
		}
	}
	return id
}

// Lookup resolves a registered file.
func (c *Cluster) Lookup(name string) (blockio.FileID, wire.FileMeta) {
	fe, ok := c.files[name]
	if !ok {
		panic("simcluster: unknown file " + name)
	}
	return fe.id, fe.meta
}

// transfer moves one message from the src port to the dst port. Ethernet
// pipelines frames, so the message occupies both NICs concurrently for one
// wire time rather than store-and-forwarding the whole message per hop.
// NICs are acquired in a fixed global order to avoid deadlock between
// opposite-direction transfers.
func (c *Cluster) transfer(p *sim.Proc, src, dst *sim.Resource, payload int64) {
	t := c.P.wireTime(payload)
	first, second := src, dst
	if c.nicOrder[first] > c.nicOrder[second] {
		first, second = second, first
	}
	first.Acquire(p)
	second.Acquire(p)
	p.Sleep(t)
	second.Release(p)
	first.Release(p)
	c.Reg.Counter("sim.messages").Inc()
	c.Reg.Counter("sim.wire_bytes").Add(payload + c.P.MsgHeader)
}

// --- IOD model ---

func (io *IOD) pageInsert(key blockio.BlockKey) {
	if _, ok := io.pageCache[key]; ok {
		return
	}
	if len(io.pageFIFO) >= io.c.P.IODPageCacheBlocks {
		old := io.pageFIFO[0]
		io.pageFIFO = io.pageFIFO[1:]
		delete(io.pageCache, old)
	}
	io.pageCache[key] = struct{}{}
	io.pageFIFO = append(io.pageFIFO, key)
}

// serveRead charges the daemon-side cost of reading [off, off+length) of a
// file: page-cache copies for resident blocks, a disk access otherwise.
func (io *IOD) serveRead(p *sim.Proc, file blockio.FileID, off, length int64) {
	io.CPU.Acquire(p)
	bs := io.c.P.BlockSize
	first, count := blockio.BlockRange(off, length, bs)
	allWarm := true
	for i := int64(0); i < count; i++ {
		if _, ok := io.pageCache[blockio.BlockKey{File: file, Index: first + i}]; !ok {
			allWarm = false
			break
		}
	}
	service := io.c.P.IODService
	if allWarm {
		service += io.c.P.memTime(length)
	} else {
		io.Disk.Acquire(p)
		p.Sleep(io.dm.AccessTime(file, off, length))
		io.Disk.Release(p)
		for i := int64(0); i < count; i++ {
			io.pageInsert(blockio.BlockKey{File: file, Index: first + i})
		}
	}
	p.Sleep(service)
	io.CPU.Release(p)
	io.c.Reg.Counter("sim.iod_reads").Inc()
}

// serveWrite charges the daemon-side cost of absorbing a write into its
// page cache (the write-back to disk happens off the critical path, as
// under Linux).
func (io *IOD) serveWrite(p *sim.Proc, file blockio.FileID, off, length int64) {
	io.CPU.Acquire(p)
	p.Sleep(io.c.P.IODService + io.c.P.memTime(length))
	bs := io.c.P.BlockSize
	first, count := blockio.BlockRange(off, length, bs)
	for i := int64(0); i < count; i++ {
		io.pageInsert(blockio.BlockKey{File: file, Index: first + i})
	}
	io.CPU.Release(p)
	io.c.Reg.Counter("sim.iod_writes").Inc()
}

// track records that a node's cache holds the blocks of a range.
func (io *IOD) track(node int, file blockio.FileID, off, length int64) {
	first, count := blockio.BlockRange(off, length, io.c.P.BlockSize)
	for i := int64(0); i < count; i++ {
		key := blockio.BlockKey{File: file, Index: first + i}
		hs := io.dir[key]
		if hs == nil {
			hs = make(map[int]struct{})
			io.dir[key] = hs
		}
		hs[node] = struct{}{}
	}
}

// victims removes and returns every holder of the range except writer.
func (io *IOD) victims(writer int, file blockio.FileID, off, length int64) map[int][]int64 {
	first, count := blockio.BlockRange(off, length, io.c.P.BlockSize)
	out := make(map[int][]int64)
	for i := int64(0); i < count; i++ {
		key := blockio.BlockKey{File: file, Index: first + i}
		for n := range io.dir[key] {
			if n != writer {
				out[n] = append(out[n], key.Index)
				delete(io.dir[key], n)
			}
		}
	}
	return out
}

// --- client request paths ---

// rpc performs one request/response round trip from a node process to an
// iod, with serve charging the daemon-side time.
func (c *Cluster) rpc(p *sim.Proc, node *Node, io *IOD, reqPayload, respPayload int64, serve func(*sim.Proc)) {
	node.CPU.Use(p, c.P.MsgOverhead)
	c.transfer(p, node.NIC, io.NIC, reqPayload)
	serve(p)
	c.transfer(p, io.NIC, node.NIC, respPayload)
	node.CPU.Use(p, c.P.MsgOverhead)
}

// pieces splits a byte range over the iods. The model constructs every
// FileMeta itself, so invalid geometry here is a modelling bug, not wire
// input.
func (c *Cluster) pieces(file blockio.FileID, meta wire.FileMeta, off, length int64) []pvfs.Piece {
	ps, err := pvfs.PiecesFor(file, meta, len(c.IODs), off, length)
	if err != nil {
		panic(err)
	}
	return ps
}

// Read performs one application read call of [off, off+length) against the
// named file, advancing virtual time by its full cost.
func (c *Cluster) Read(p *sim.Proc, node *Node, file blockio.FileID, meta wire.FileMeta, off, length int64) {
	node.CPU.Use(p, c.P.ReqOverhead)
	pieces := c.pieces(file, meta, off, length)
	for _, pc := range pieces {
		if node.Cache == nil {
			io := c.IODs[pc.IOD]
			ext := pc.Ext
			c.rpc(p, node, io, 0, ext.Length, func(p *sim.Proc) { io.serveRead(p, file, ext.Offset, ext.Length) })
			continue
		}
		node.cachedRead(p, pc.IOD, pc.Ext)
	}
	c.Reg.Counter("sim.app_reads").Inc()
}

// Write performs one application write call.
func (c *Cluster) Write(p *sim.Proc, node *Node, file blockio.FileID, meta wire.FileMeta, off, length int64) {
	node.CPU.Use(p, c.P.ReqOverhead)
	pieces := c.pieces(file, meta, off, length)
	for _, pc := range pieces {
		if node.Cache == nil {
			io := c.IODs[pc.IOD]
			ext := pc.Ext
			c.rpc(p, node, io, ext.Length, 0, func(p *sim.Proc) { io.serveWrite(p, file, ext.Offset, ext.Length) })
			continue
		}
		node.cachedWrite(p, pc.IOD, pc.Ext)
	}
	c.Reg.Counter("sim.app_writes").Inc()
}

// SyncWrite performs one coherent write call: data to cache and iod, with
// the iod invalidating every other holder before acknowledging.
func (c *Cluster) SyncWrite(p *sim.Proc, node *Node, file blockio.FileID, meta wire.FileMeta, off, length int64) {
	node.CPU.Use(p, c.P.ReqOverhead)
	pieces := c.pieces(file, meta, off, length)
	for _, pc := range pieces {
		io := c.IODs[pc.IOD]
		ext := pc.Ext
		if node.Cache != nil {
			node.cacheCleanSpans(p, pc.IOD, ext)
		}
		c.rpc(p, node, io, ext.Length, 0, func(p *sim.Proc) {
			io.serveWrite(p, file, ext.Offset, ext.Length)
			// Invalidation fan-out before the ack, in deterministic
			// victim order.
			vict := io.victims(node.id, file, ext.Offset, ext.Length)
			ids := make([]int, 0, len(vict))
			for v := range vict {
				ids = append(ids, v)
			}
			sort.Ints(ids)
			for _, victim := range ids {
				idxs := vict[victim]
				vn := c.Nodes[victim]
				c.transfer(p, io.NIC, vn.NIC, int64(len(idxs))*12)
				if vn.Cache != nil {
					for _, idx := range idxs {
						vn.Cache.Invalidate(blockio.BlockKey{File: file, Index: idx})
					}
				}
				c.transfer(p, vn.NIC, io.NIC, 0)
				c.Reg.Counter("sim.invalidations").Inc()
			}
			io.track(node.id, file, ext.Offset, ext.Length)
		})
	}
	c.Reg.Counter("sim.app_syncwrites").Inc()
}
