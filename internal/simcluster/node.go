package simcluster

import (
	"fmt"
	"sort"
	"time"

	"pvfscache/internal/blockio"
	"pvfscache/internal/cachemod/buffer"
	"pvfscache/internal/sim"
	"pvfscache/internal/wire"
)

// copyCost scales the per-block lookup+copy cost to a span's length.
func (c *Cluster) copyCost(spanLen int) time.Duration {
	return time.Duration(float64(c.P.HitCopy) * float64(spanLen) / float64(c.P.BlockSize))
}

// cachedRead services one per-iod piece of a read through the node cache:
// hits are copied at memory speed, misses are grouped into runs of
// consecutive blocks and fetched with one sub-request per run (a cached
// block in the middle splits the request), and blocks other processes are
// already fetching are joined rather than re-fetched.
func (n *Node) cachedRead(p *sim.Proc, iod int, ext blockio.Extent) {
	c := n.c
	bs := c.P.BlockSize
	spans := blockio.Spans(ext.File, ext.Offset, ext.Length, bs)
	n.CPU.Use(p, c.P.MissCheck)

	var hitCost time.Duration
	var missing, waits []blockio.Span
	for _, sp := range spans {
		if n.Cache.ReadSpan(sp.Key, sp.Off, c.scratch[:sp.Len]) {
			hitCost += c.copyCost(sp.Len)
			continue
		}
		if _, inFlight := n.fetches[sp.Key]; inFlight {
			waits = append(waits, sp)
			continue
		}
		n.fetches[sp.Key] = c.Env.NewSignal()
		missing = append(missing, sp)
	}
	if hitCost > 0 {
		n.CPU.Use(p, hitCost)
	}

	io := c.IODs[iod]
	for start := 0; start < len(missing); {
		end := start + 1
		for end < len(missing) && missing[end].Key.Index == missing[end-1].Key.Index+1 {
			end++
		}
		run := missing[start:end]
		// The sub-request carries only the missing bytes, exactly as the
		// paper states ("the external request is for only the missing
		// data"): consecutive spans tile a contiguous byte range.
		runOff := run[0].FileOffset(bs)
		var runLen int64
		for _, sp := range run {
			runLen += int64(sp.Len)
		}
		c.rpc(p, n, io, 0, runLen, func(p *sim.Proc) { io.serveRead(p, ext.File, runOff, runLen) })
		c.Reg.Counter("sim.read_subrequests").Inc()
		for _, sp := range run {
			n.insertSpan(p, sp, iod)
			if sig := n.fetches[sp.Key]; sig != nil {
				delete(n.fetches, sp.Key)
				sig.Fire()
			}
		}
		io.track(n.id, ext.File, runOff, runLen)
		start = end
	}

	for _, sp := range waits {
		if sig, still := n.fetches[sp.Key]; still {
			sig.Wait(p)
		}
		c.Reg.Counter("sim.fetch_joins").Inc()
		if n.Cache.ReadSpan(sp.Key, sp.Off, c.scratch[:sp.Len]) {
			n.CPU.Use(p, c.copyCost(sp.Len))
			continue
		}
		// The owner fetched a different part of the block (or its insert
		// was bypassed): fetch our span ourselves.
		spanOff := sp.FileOffset(bs)
		spanLen := int64(sp.Len)
		c.rpc(p, n, io, 0, spanLen, func(p *sim.Proc) { io.serveRead(p, ext.File, spanOff, spanLen) })
		n.insertSpan(p, sp, iod)
	}
}

// insertSpan installs a fetched span as valid clean data, waiting briefly
// for space when the cache is saturated with dirty blocks and bypassing
// the cache if the pressure persists (the data still reaches the
// application either way).
func (n *Node) insertSpan(p *sim.Proc, sp blockio.Span, iod int) {
	c := n.c
	for attempt := 0; attempt < 2; attempt++ {
		switch n.Cache.WriteSpan(sp.Key, iod, sp.Off, c.zeroBlock[:sp.Len], false) {
		case buffer.OutcomeOK:
			n.CPU.Use(p, c.P.InsertCost)
			return
		case buffer.OutcomeNeedFetch:
			// Disjoint from resident valid data; not worth merging on the
			// read path — serve without caching this span.
			c.Reg.Counter("sim.insert_bypass").Inc()
			return
		case buffer.OutcomeNoSpace:
			n.dirtyHint = true
			n.space.Wait(p)
		}
	}
	c.Reg.Counter("sim.insert_bypass").Inc()
}

// cachedWrite services one per-iod piece of a write through the node
// cache: the data is copied into cache blocks, marked dirty, and the call
// returns — the flusher propagates it later. When the cache is full of
// dirty blocks the writer blocks until the flusher frees space, which is
// precisely the behaviour that erodes the write-behind advantage at large
// request sizes in the paper's Figure 4(b).
func (n *Node) cachedWrite(p *sim.Proc, iod int, ext blockio.Extent) {
	c := n.c
	bs := c.P.BlockSize
	spans := blockio.Spans(ext.File, ext.Offset, ext.Length, bs)
	n.CPU.Use(p, c.P.MissCheck)
	io := c.IODs[iod]
	for _, sp := range spans {
		for {
			outcome := n.Cache.WriteSpan(sp.Key, iod, sp.Off, c.zeroBlock[:sp.Len], true)
			if outcome == buffer.OutcomeOK {
				n.CPU.Use(p, c.copyCost(sp.Len))
				break
			}
			if outcome == buffer.OutcomeNeedFetch {
				// Read-modify-write: fetch the whole block first.
				blockOff := sp.Key.Index * int64(bs)
				c.rpc(p, n, io, 0, int64(bs), func(p *sim.Proc) { io.serveRead(p, ext.File, blockOff, int64(bs)) })
				n.Cache.InsertClean(sp.Key, iod, c.zeroBlock)
				c.Reg.Counter("sim.write_rmw").Inc()
				continue
			}
			// OutcomeNoSpace: stall until the flusher makes room.
			n.dirtyHint = true
			c.Reg.Counter("sim.write_stalls").Inc()
			n.space.Wait(p)
		}
	}
}

// cacheCleanSpans updates the cache with sync-written data (valid but
// clean: the iod receives the same bytes synchronously).
func (n *Node) cacheCleanSpans(p *sim.Proc, iod int, ext blockio.Extent) {
	c := n.c
	spans := blockio.Spans(ext.File, ext.Offset, ext.Length, c.P.BlockSize)
	for _, sp := range spans {
		if n.Cache.WriteSpan(sp.Key, iod, sp.Off, c.zeroBlock[:sp.Len], false) == buffer.OutcomeOK {
			n.CPU.Use(p, c.copyCost(sp.Len))
		}
	}
}

// flushGroup is one flush message: dirty blocks of one file bound for one
// iod.
type flushGroup struct {
	owner int
	file  blockio.FileID
	items []buffer.FlushItem
}

// flusherDaemon is the node's flusher thread: every FlushTick it checks
// for period expiry or space pressure, drains the dirty list to the iods'
// flush ports, runs the harvester, and wakes any stalled writers.
func (n *Node) flusherDaemon(p *sim.Proc) {
	c := n.c
	for !c.done {
		p.Sleep(c.P.FlushTick)
		period := c.Env.Now()-n.lastFlush >= c.P.FlushPeriod
		pressure := n.dirtyHint || n.Cache.NeedsHarvest() ||
			n.Cache.DirtyCount() > c.P.CacheBlocks/2
		if !period && !pressure {
			continue
		}
		n.lastFlush = c.Env.Now()
		n.dirtyHint = false
		n.flushOnce(p)
		if n.Cache.NeedsHarvest() {
			freed := n.Cache.Harvest()
			c.Reg.Counter("sim.harvested").Add(int64(freed))
		}
		n.space.Fire()
	}
}

// simFlushChunkBlocks bounds the blocks per simulated flush message,
// mirroring the live engine's FlushBatch-sized frames so FlushWindow has
// message granularity to overlap even when one file holds all the dirty
// data.
const simFlushChunkBlocks = 64

// flushOnce drains the entire dirty list in deterministic order. With
// Params.FlushStreams and Params.FlushWindow at their calibration
// default (1), each (iod, file) chunk drains as one serial message —
// the pre-pipeline model the figures assume. Larger values model the
// live system's pipelined write-behind engine in virtual time: up to
// FlushStreams iods drain concurrently, each with up to FlushWindow
// messages in flight, overlapping the per-message wire and daemon
// service times exactly as the live streams overlap real round trips.
func (n *Node) flushOnce(p *sim.Proc) {
	c := n.c
	items := n.Cache.TakeDirty(0)
	if len(items) == 0 {
		return
	}
	byKey := make(map[[2]int64][]buffer.FlushItem)
	for _, it := range items {
		k := [2]int64{int64(it.Owner), int64(it.Key.File)}
		byKey[k] = append(byKey[k], it)
	}
	keys := make([][2]int64, 0, len(byKey))
	for k := range byKey {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	// Chunk each (iod, file) group and collect the chunks per iod, in
	// deterministic order.
	perIOD := make(map[int][]flushGroup)
	var iods []int
	for _, k := range keys {
		owner := int(k[0])
		group := byKey[k]
		if _, seen := perIOD[owner]; !seen {
			iods = append(iods, owner)
		}
		for len(group) > 0 {
			nn := min(simFlushChunkBlocks, len(group))
			perIOD[owner] = append(perIOD[owner], flushGroup{
				owner: owner, file: blockio.FileID(k[1]), items: group[:nn],
			})
			group = group[nn:]
		}
	}
	streams := max(c.P.FlushStreams, 1)
	window := max(c.P.FlushWindow, 1)
	if streams == 1 && window == 1 {
		// Seed shape: one blocking message at a time, serially across iods.
		for _, owner := range iods {
			for _, g := range perIOD[owner] {
				n.sendFlushGroup(p, g)
			}
		}
		return
	}
	streamRes := c.Env.NewResource(fmt.Sprintf("node%d.flushstreams", n.id), streams)
	done := c.Env.NewSignal()
	left := len(iods)
	for _, owner := range iods {
		gs := perIOD[owner]
		c.Env.Go(fmt.Sprintf("node%d.flushstream%d", n.id, owner), func(sp *sim.Proc) {
			streamRes.Acquire(sp)
			if window == 1 || len(gs) == 1 {
				for _, g := range gs {
					n.sendFlushGroup(sp, g)
				}
			} else {
				winRes := c.Env.NewResource(fmt.Sprintf("node%d.flushwin%d", n.id, owner), window)
				innerDone := c.Env.NewSignal()
				innerLeft := len(gs)
				for gi, g := range gs {
					c.Env.Go(fmt.Sprintf("node%d.flushchunk%d.%d", n.id, owner, gi), func(cp *sim.Proc) {
						winRes.Acquire(cp)
						n.sendFlushGroup(cp, g)
						winRes.Release(cp)
						innerLeft--
						if innerLeft == 0 {
							innerDone.Fire()
						}
					})
				}
				if innerLeft > 0 {
					innerDone.Wait(sp)
				}
			}
			streamRes.Release(sp)
			left--
			if left == 0 {
				done.Fire()
			}
		})
	}
	if left > 0 {
		done.Wait(p)
	}
}

// sendFlushGroup charges one flush message's round trip and marks its
// blocks clean on acknowledgment.
func (n *Node) sendFlushGroup(p *sim.Proc, g flushGroup) {
	c := n.c
	io := c.IODs[g.owner]
	var payload int64
	for _, it := range g.items {
		payload += int64(len(it.Data)) + wire.FlushBlockOverhead
	}
	c.rpc(p, n, io, payload, 0, func(p *sim.Proc) { io.serveFlush(p, n.id, g) })
	n.Cache.FlushDone(g.items)
	c.Reg.Counter("sim.flush_rounds").Inc()
	c.Reg.Counter("sim.flushed_blocks").Add(int64(len(g.items)))
}

// serveFlush charges the iod-side cost of absorbing one flush message and
// records the flusher's node as a holder of the flushed blocks.
func (io *IOD) serveFlush(p *sim.Proc, node int, g flushGroup) {
	io.CPU.Acquire(p)
	var total int64
	for _, it := range g.items {
		total += int64(len(it.Data))
	}
	p.Sleep(io.c.P.IODService + io.c.P.memTime(total))
	for _, it := range g.items {
		io.pageInsert(it.Key)
		hs := io.dir[it.Key]
		if hs == nil {
			hs = make(map[int]struct{})
			io.dir[it.Key] = hs
		}
		hs[node] = struct{}{}
	}
	io.CPU.Release(p)
}
